package profile

import (
	"fmt"
	"sort"

	"repro/internal/rulers"
)

// SensitivityCurve is an application's degradation as a function of Ruler
// intensity in one sharing dimension — the "sensitivity curve" of
// Section III-B1. The paper's profiling-cost argument rests on these
// curves being near-linear: two end-point samples bound the curve, so
// characterization stays in the order of seconds per application.
type SensitivityCurve struct {
	App string
	Dim rulers.Dimension
	// Intensities are ascending in (0, 1]; Degradations[i] is the
	// application's degradation under the Ruler at Intensities[i].
	Intensities  []float64
	Degradations []float64
}

// MeasureCurve samples an application's sensitivity curve at `points`
// evenly spaced Ruler intensities (minimum 2). Points are measured
// sequentially and memoise the solo run.
func (p *Profiler) MeasureCurve(job Job, dim rulers.Dimension, points int, placement Placement) (SensitivityCurve, error) {
	if points < 2 {
		points = 2
	}
	solo, err := p.SoloRun(job)
	if err != nil {
		return SensitivityCurve{}, err
	}
	base := rulers.For(p.cfg, dim)
	c := SensitivityCurve{App: job.Name(), Dim: dim}
	for i := 1; i <= points; i++ {
		intensity := float64(i) / float64(points)
		r := base.WithIntensity(intensity)
		res, err := Colocate(p.cfg, job, Rulers(r, job.Instances()), placement, p.opts)
		if err != nil {
			return SensitivityCurve{}, err
		}
		c.Intensities = append(c.Intensities, intensity)
		c.Degradations = append(c.Degradations, Degradation(solo.AppIPC, res.AppIPC))
	}
	return c, nil
}

// Validate checks the curve's structural invariants.
func (c SensitivityCurve) Validate() error {
	if len(c.Intensities) != len(c.Degradations) {
		return fmt.Errorf("profile: curve for %s: %d intensities vs %d degradations", c.App, len(c.Intensities), len(c.Degradations))
	}
	if len(c.Intensities) < 2 {
		return fmt.Errorf("profile: curve for %s needs at least 2 points", c.App)
	}
	if !sort.Float64sAreSorted(c.Intensities) {
		return fmt.Errorf("profile: curve for %s has unsorted intensities", c.App)
	}
	return nil
}

// At evaluates the curve at an arbitrary intensity by piecewise-linear
// interpolation (clamped at the measured range's ends).
func (c SensitivityCurve) At(intensity float64) float64 {
	n := len(c.Intensities)
	if n == 0 {
		return 0
	}
	if intensity <= c.Intensities[0] {
		return c.Degradations[0]
	}
	if intensity >= c.Intensities[n-1] {
		return c.Degradations[n-1]
	}
	i := sort.SearchFloat64s(c.Intensities, intensity)
	x0, x1 := c.Intensities[i-1], c.Intensities[i]
	y0, y1 := c.Degradations[i-1], c.Degradations[i]
	f := (intensity - x0) / (x1 - x0)
	return y0*(1-f) + y1*f
}

// TwoPoint returns the end-point approximation of the curve — what the
// paper's fast profiling actually measures.
func (c SensitivityCurve) TwoPoint() SensitivityCurve {
	n := len(c.Intensities)
	if n < 2 {
		return c
	}
	return SensitivityCurve{
		App:          c.App,
		Dim:          c.Dim,
		Intensities:  []float64{c.Intensities[0], c.Intensities[n-1]},
		Degradations: []float64{c.Degradations[0], c.Degradations[n-1]},
	}
}

// MaxTwoPointError is the largest absolute gap between the dense curve and
// its two-point approximation across the measured points — the profiling
// error the linearity assumption trades for speed.
func (c SensitivityCurve) MaxTwoPointError() float64 {
	tp := c.TwoPoint()
	worst := 0.0
	for i, x := range c.Intensities {
		d := c.Degradations[i] - tp.At(x)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
