// Package drift is the leaf half of the closed loop (DESIGN.md §14): a
// dependency-free windowed CUSUM drift detector shared by the live
// controller (internal/ctrl, which wires it to timeline observations and
// the re-characterization sources) and the discrete-event simulator
// (internal/cluster's PolicyClosedLoop, which embeds one per scheduling
// shard). It sits below both so neither import direction cycles.
package drift

import "math"

// Config parameterises the drift detector. The zero value picks the
// defaults below.
type Config struct {
	// MinSamples is the minimum number of (finite) observations a cell
	// must accumulate before drift can be confirmed, regardless of how
	// large the accumulated excess is — the structural guarantee that one
	// noisy sample never triggers re-characterization. Values below 2 are
	// raised to 2; zero means DefaultMinSamples.
	MinSamples int
	// Allowance is the per-sample leak of the CUSUM score: prediction
	// error beyond the certified bound is tolerated up to this much per
	// observation before it accumulates. Zero means DefaultAllowance;
	// negative disables the leak.
	Allowance float64
	// Threshold is the accumulated excess at which drift is confirmed.
	// Zero means DefaultThreshold.
	Threshold float64
}

// Detector defaults: confirmation needs at least 4 samples whose
// beyond-bound error exceeds the 1-point-per-sample allowance by a
// cumulative 10 degradation points.
const (
	DefaultMinSamples = 4
	DefaultAllowance  = 0.01
	DefaultThreshold  = 0.10
)

func (c Config) withDefaults() Config {
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MinSamples < 2 {
		c.MinSamples = 2
	}
	switch {
	case c.Allowance == 0:
		c.Allowance = DefaultAllowance
	case c.Allowance < 0:
		c.Allowance = 0
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	return c
}

// Stats counts a detector's lifetime activity.
type Stats struct {
	// Observations counts finite samples fed to Observe; Ignored counts
	// NaN/Inf samples dropped without touching any cell state.
	Observations, Ignored int
	// Detections counts cells transitioning into the confirmed state.
	Detections int
}

// cellState is one cell's windowed CUSUM accumulator.
type cellState struct {
	samples   int
	score     float64
	confirmed bool
}

// Detector is a per-cell windowed CUSUM test over the closed loop's
// misprediction signal. Each observation compares the observed
// degradation against the prediction ± its error bound; only the error
// *beyond* the bound (less the per-sample allowance) accumulates:
//
//	score = max(0, score + |observed − predicted| − bound − allowance)
//
// A cell confirms drift when its score reaches the threshold AND it has
// seen at least MinSamples observations — so a single noisy sample can
// never trigger, and sustained in-bound prediction decays the score back
// to zero. Non-finite observations are counted and dropped.
//
// A Detector is not safe for concurrent use; give each scheduling cell
// (shard) its own, or wrap it in a ctrl.Controller, which locks.
type Detector struct {
	cfg   Config
	cells map[int]*cellState
	stats Stats
}

// New builds a detector with the (defaulted) config.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), cells: make(map[int]*cellState)}
}

// Config returns the detector's normalised configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe feeds one sample for a cell and reports whether this sample
// confirmed drift (the cell's transition into the confirmed state; later
// samples on an already-confirmed cell return false until Reset).
func (d *Detector) Observe(cell int, observed, predicted, bound float64) bool {
	if !finite(observed) || !finite(predicted) || !finite(bound) {
		d.stats.Ignored++
		return false
	}
	st := d.cells[cell]
	if st == nil {
		st = &cellState{}
		d.cells[cell] = st
	}
	d.stats.Observations++
	st.samples++
	st.score += math.Abs(observed-predicted) - math.Abs(bound) - d.cfg.Allowance
	if st.score < 0 {
		st.score = 0
	}
	if st.confirmed {
		return false
	}
	if st.samples >= d.cfg.MinSamples && st.score >= d.cfg.Threshold {
		st.confirmed = true
		d.stats.Detections++
		return true
	}
	return false
}

// Confirmed reports whether a cell is in the confirmed-drift state.
func (d *Detector) Confirmed(cell int) bool {
	st := d.cells[cell]
	return st != nil && st.confirmed
}

// Score returns a cell's accumulated excess (0 for unseen cells).
func (d *Detector) Score(cell int) float64 {
	if st := d.cells[cell]; st != nil {
		return st.score
	}
	return 0
}

// Reset clears one cell's accumulator — called after the cell's
// application has been re-characterized, so detection restarts from a
// clean slate against the refreshed prediction.
func (d *Detector) Reset(cell int) {
	delete(d.cells, cell)
}

// Stats returns the lifetime counters.
func (d *Detector) Stats() Stats { return d.stats }

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
