package smite

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/rulers"
)

// The paper's deployment story (Section III-D) has the cluster scheduler
// characterize each application once — in the order of seconds — and keep
// the resulting profile for every future placement decision. These helpers
// give the profiles and the trained model a durable JSON form.

// Load failures are typed so callers can react per class — the qosd
// serving layer maps all three to HTTP 422 with a distinguishing error
// code. Match with errors.Is.
var (
	// ErrCorrupt wraps syntactically broken input: invalid or truncated
	// JSON, wrong top-level shape.
	ErrCorrupt = errors.New("smite: corrupt persisted data")
	// ErrVersionSkew marks a file whose format version this build does not
	// understand.
	ErrVersionSkew = errors.New("smite: unsupported format version")
	// ErrDimensionMismatch marks a file measured under a different sharing
	// dimension layout (count, order, or coefficient arity) than this
	// build's — loading it would silently mis-assign every vector slot.
	ErrDimensionMismatch = errors.New("smite: sharing-dimension layout mismatch")
)

// profileFile is the on-disk envelope for characterizations.
type profileFile struct {
	// Version guards the format; Dimensions pins the dimension order the
	// vectors were measured in.
	Version    int      `json:"version"`
	Dimensions []string `json:"dimensions"`

	Profiles []Characterization `json:"profiles"`
}

// modelFile is the on-disk envelope for a trained model.
type modelFile struct {
	Version    int       `json:"version"`
	Dimensions []string  `json:"dimensions"`
	Coef       []float64 `json:"coefficients"`
	Intercept  float64   `json:"intercept"`
}

func dimensionNames() []string {
	out := make([]string, NumDimensions)
	for d := Dimension(0); d < NumDimensions; d++ {
		out[d] = d.String()
	}
	return out
}

func checkDimensions(got []string) error {
	want := dimensionNames()
	if len(got) != len(want) {
		return fmt.Errorf("%w: stored file has %d dimensions, this build has %d", ErrDimensionMismatch, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%w: stored dimension %d is %q, this build expects %q", ErrDimensionMismatch, i, got[i], want[i])
		}
	}
	return nil
}

// SaveProfiles writes characterizations as JSON.
func SaveProfiles(w io.Writer, chars []Characterization) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profileFile{
		Version:    1,
		Dimensions: dimensionNames(),
		Profiles:   chars,
	})
}

// LoadProfiles reads characterizations written by SaveProfiles, verifying
// the dimension layout matches this build.
func LoadProfiles(r io.Reader) ([]Characterization, error) {
	var f profileFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("%w: decoding profiles: %v", ErrCorrupt, err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("%w: profile version %d", ErrVersionSkew, f.Version)
	}
	if err := checkDimensions(f.Dimensions); err != nil {
		return nil, err
	}
	return f.Profiles, nil
}

// SaveModel writes a trained model as JSON.
func SaveModel(w io.Writer, m Model) error {
	coef, c0 := m.Coefficients()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelFile{
		Version:    1,
		Dimensions: dimensionNames(),
		Coef:       coef[:],
		Intercept:  c0,
	})
}

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (Model, error) {
	var f modelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return Model{}, fmt.Errorf("%w: decoding model: %v", ErrCorrupt, err)
	}
	if f.Version != 1 {
		return Model{}, fmt.Errorf("%w: model version %d", ErrVersionSkew, f.Version)
	}
	if err := checkDimensions(f.Dimensions); err != nil {
		return Model{}, err
	}
	if len(f.Coef) != int(rulers.NumDimensions) {
		return Model{}, fmt.Errorf("%w: model has %d coefficients, want %d", ErrDimensionMismatch, len(f.Coef), rulers.NumDimensions)
	}
	var inner model.Smite
	copy(inner.Coef[:], f.Coef)
	inner.Intercept = f.Intercept
	return Model{inner: inner}, nil
}
