package surrogate

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// DefaultIntensities is the standard training grid: four duty cycles
// spanning light to full Ruler pressure. Four points over-determine the
// three-coefficient curves, so the recorded residuals are honest fit error
// rather than interpolation zeros.
var DefaultIntensities = []float64{0.25, 0.5, 0.75, 1.0}

// DefaultRidge is the Tikhonov damping applied to the curve fits — just
// enough to keep the tiny normal equations well-conditioned without
// visibly biasing coefficients.
const DefaultRidge = 1e-9

// FitOptions parameterize a fit.
type FitOptions struct {
	// Intensities is the training grid (normalized per profile.SweepGrid:
	// clamped into (0, 1], deduplicated, ascending, 1.0 always included).
	// Nil means DefaultIntensities.
	Intensities []float64
	// Ridge is the least-squares damping; 0 means DefaultRidge.
	Ridge float64
}

// grid returns the normalized training grid.
func (fo FitOptions) grid() []float64 {
	xs := fo.Intensities
	if xs == nil {
		xs = DefaultIntensities
	}
	return profile.SweepGrid(xs)
}

func (fo FitOptions) ridge() float64 {
	if fo.Ridge == 0 {
		return DefaultRidge
	}
	return fo.Ridge
}

// fitCurve least-squares-fits one response curve over the (intensity,
// value) samples and records its training residuals.
func fitCurve(xs, ys []float64, ridge float64) (Curve, error) {
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = []float64{x, math.Sqrt(x), x * x}
	}
	coef, err := linalg.LeastSquares(rows, ys, ridge)
	if err != nil {
		return Curve{}, fmt.Errorf("surrogate: curve fit failed: %w", err)
	}
	var c Curve
	copy(c.Coef[:], coef)
	for i, x := range xs {
		r := math.Abs(c.At(x) - ys[i])
		c.MaxAbsErr = math.Max(c.MaxAbsErr, r)
		c.MeanAbsErr += r
	}
	c.MeanAbsErr /= float64(len(xs))
	return c, nil
}

// Fit samples each application's (dimension, intensity) grid through the
// engine — one batched CharacterizeSweep over the profiler's worker pool —
// and fits the per-dimension surrogate curves. The grid must hold at least
// three points so the three-coefficient curves are determined by data.
func Fit(ctx context.Context, p *profile.Profiler, specs []*workload.Spec, placement profile.Placement, fo FitOptions) (*Set, error) {
	xs := fo.grid()
	if len(xs) < 3 {
		return nil, fmt.Errorf("surrogate: intensity grid %v has %d points; need at least 3 to fit 3-coefficient curves", xs, len(xs))
	}
	jobs := make([]profile.Job, len(specs))
	for i, s := range specs {
		jobs[i] = p.JobFor(s, placement)
	}
	sweeps, err := p.CharacterizeSweepContext(ctx, jobs, placement, xs)
	if err != nil {
		return nil, err
	}
	set := &Set{
		Machine:   p.Config().Name,
		Placement: placement,
		Models:    make(map[string]*Model, len(specs)),
	}
	for i, sw := range sweeps {
		m, err := fitModel(sw, placement, xs, fo.ridge())
		if err != nil {
			return nil, fmt.Errorf("surrogate: fitting %s: %w", specs[i].Name, err)
		}
		set.Models[m.App] = m
	}
	return set, nil
}

// fitModel turns one sweep grid into a fitted Model.
func fitModel(sw profile.SweepResult, placement profile.Placement, xs []float64, ridge float64) (*Model, error) {
	m := &Model{
		App:         sw.Characterization.App,
		Placement:   placement,
		SoloIPC:     sw.Characterization.SoloIPC,
		SoloPMU:     sw.Characterization.SoloPMU,
		Intensities: append([]float64(nil), xs...),
	}
	sen := make([]float64, len(xs))
	con := make([]float64, len(xs))
	for d := range sw.Samples {
		if len(sw.Samples[d]) != len(xs) {
			return nil, fmt.Errorf("dimension %d: sweep returned %d samples for a %d-point grid", d, len(sw.Samples[d]), len(xs))
		}
		for i, s := range sw.Samples[d] {
			sen[i], con[i] = s.Sen, s.Con
		}
		var err error
		if m.Sen[d], err = fitCurve(xs, sen, ridge); err != nil {
			return nil, fmt.Errorf("dimension %d sensitivity: %w", d, err)
		}
		if m.Con[d], err = fitCurve(xs, con, ridge); err != nil {
			return nil, fmt.Errorf("dimension %d contentiousness: %w", d, err)
		}
	}
	return m, nil
}

// KeyFor content-addresses one application's fitted model: the key covers
// everything that determines the fit — machine configuration, placement,
// measurement options (sans the non-semantic Cache/Parallelism/Progress/
// Sampler fields), the normalized training grid, the ridge, and the job's
// workload fingerprint — so a profstore entry can never be stale for
// changed inputs. The format is pinned by a golden test; bump the version
// tag when the fit semantics change.
func KeyFor(p *profile.Profiler, spec *workload.Spec, placement profile.Placement, fo FitOptions) simcache.Key {
	opts := p.Options()
	opts.Cache = nil
	opts.Parallelism = 0
	opts.Progress = nil
	opts.Sampler = nil
	fp := "<unfingerprintable>"
	if f, ok := p.JobFor(spec, placement).(profile.Fingerprinter); ok {
		fp = f.Fingerprint()
	}
	return simcache.KeyOf("surrogate/fit/v1", p.Config(), placement, opts, fo.grid(), fo.ridge(), fp)
}

// StoreStats reports how a FitWithStore call was served.
type StoreStats struct {
	// Hits counts models loaded from the store; Misses counts models
	// fitted through the engine (and then stored).
	Hits, Misses int
}

// FitWithStore is Fit with a warm-start: models already present in the
// store under their content address are loaded instead of re-fitted, and
// freshly fitted models are written back. Corrupt or version-skewed
// entries are treated as misses and healed by the write-back; only I/O
// and fit errors propagate.
func FitWithStore(ctx context.Context, st *profstore.Store, p *profile.Profiler, specs []*workload.Spec, placement profile.Placement, fo FitOptions) (*Set, StoreStats, error) {
	set := &Set{
		Machine:   p.Config().Name,
		Placement: placement,
		Models:    make(map[string]*Model, len(specs)),
	}
	var stats StoreStats
	var missing []*workload.Spec
	for _, spec := range specs {
		var m Model
		err := st.Get(KeyFor(p, spec, placement, fo), &m)
		switch {
		case err == nil:
			set.Models[m.App] = &m
			stats.Hits++
		case errors.Is(err, profstore.ErrNotFound),
			errors.Is(err, profstore.ErrCorrupt),
			errors.Is(err, profstore.ErrVersionSkew):
			missing = append(missing, spec)
			stats.Misses++
		default:
			return nil, stats, err
		}
	}
	if len(missing) > 0 {
		fitted, err := Fit(ctx, p, missing, placement, fo)
		if err != nil {
			return nil, stats, err
		}
		for i, spec := range missing {
			m, ok := fitted.Models[spec.Name]
			if !ok {
				return nil, stats, fmt.Errorf("surrogate: fit returned no model for %q", missing[i].Name)
			}
			if err := st.Put(KeyFor(p, spec, placement, fo), m); err != nil {
				return nil, stats, err
			}
			set.Models[m.App] = m
		}
	}
	return set, stats, nil
}

// TrainEq3 measures engine ground-truth degradations for every distinct
// pair among specs and trains the Equation 3 model (non-negative least
// squares, as the paper fits it) on the set's surrogate feature vectors,
// embedding the result so Set.Predict works. Needs at least 4 specs: each
// unordered pair yields two observations and the model has 9 parameters.
func (s *Set) TrainEq3(ctx context.Context, p *profile.Profiler, specs []*workload.Spec) error {
	pairs, err := p.MeasurePairsContext(ctx, specs, specs, s.Placement)
	if err != nil {
		return err
	}
	obs, err := model.BuildObservations(s.Characterizations(), pairs)
	if err != nil {
		return err
	}
	m, err := model.TrainSmiteNNLS(obs)
	if err != nil {
		return err
	}
	s.Eq3 = &m
	return nil
}
