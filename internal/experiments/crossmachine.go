package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/workload"
)

// CrossMachineResult asks a question the paper leaves implicit by
// evaluating on both Table I machines: do the Equation 3 coefficients
// learned on one microarchitecture transfer to another, given that
// characterizations are always measured natively? If the coefficients
// mostly encode how sharing dimensions weigh against each other (rather
// than machine-specific constants), transfer should cost little accuracy.
type CrossMachineResult struct {
	// NativeErr is the test error of a model trained and tested on the
	// Ivy Bridge machine; TransferErr tests Ivy-trained coefficients on
	// Sandy Bridge-EN pairs with Sandy Bridge characterizations;
	// RetrainedErr is the Sandy Bridge-native reference.
	NativeErr    float64
	TransferErr  float64
	RetrainedErr float64
}

// CrossMachine runs the transfer study on the SPEC even/odd protocol.
func (l *Lab) CrossMachine() (CrossMachineResult, error) {
	return l.CrossMachineContext(context.Background())
}

// CrossMachineContext is CrossMachine with cooperative cancellation.
func (l *Lab) CrossMachineContext(ctx context.Context) (CrossMachineResult, error) {
	train := l.specSet(workload.EvenSPEC())
	test := l.specSet(workload.OddSPEC())
	all := append(append([]*workload.Spec{}, train...), test...)

	build := func(m Machine) (trainObs, testObs []model.PairObs, err error) {
		chars, err := l.CharacterizationsContext(ctx, m, profile.SMT, all, fmt.Sprintf("spec-%d", len(all)))
		if err != nil {
			return nil, nil, err
		}
		p := l.Profiler(m)
		trainPairs, err := p.MeasurePairsContext(ctx, train, train, profile.SMT)
		if err != nil {
			return nil, nil, err
		}
		testPairs, err := p.MeasurePairsContext(ctx, test, test, profile.SMT)
		if err != nil {
			return nil, nil, err
		}
		trainObs, err = model.BuildObservations(chars, trainPairs)
		if err != nil {
			return nil, nil, err
		}
		testObs, err = model.BuildObservations(chars, testPairs)
		return trainObs, testObs, err
	}

	ivbTrain, ivbTest, err := build(IvyBridge)
	if err != nil {
		return CrossMachineResult{}, err
	}
	snbTrain, snbTest, err := build(SandyBridgeEN)
	if err != nil {
		return CrossMachineResult{}, err
	}

	ivbModel, err := model.TrainSmiteNNLS(ivbTrain)
	if err != nil {
		return CrossMachineResult{}, err
	}
	snbModel, err := model.TrainSmiteNNLS(snbTrain)
	if err != nil {
		return CrossMachineResult{}, err
	}

	return CrossMachineResult{
		NativeErr:    model.Evaluate(ivbModel, ivbTest).MeanAbsError,
		TransferErr:  model.Evaluate(ivbModel, snbTest).MeanAbsError,
		RetrainedErr: model.Evaluate(snbModel, snbTest).MeanAbsError,
	}, nil
}

// String renders the study.
func (r CrossMachineResult) String() string {
	var b strings.Builder
	b.WriteString("Cross-machine coefficient transfer (SPEC even-train/odd-test, SMT)\n")
	t := newTable("configuration", "test error")
	t.row("trained on IVB, tested on IVB (native)", pct(r.NativeErr))
	t.row("trained on IVB, tested on SNB-EN (transfer)", pct(r.TransferErr))
	t.row("trained on SNB-EN, tested on SNB-EN (retrained)", pct(r.RetrainedErr))
	b.WriteString(t.String())
	b.WriteString("characterizations are always measured on the target machine; only Eq.3 coefficients move\n")
	return b.String()
}
