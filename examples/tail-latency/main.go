// Tail latency: the paper's Section III-C3 extension. Average-performance
// degradation understates the damage co-location does to percentile
// latency, because queueing delay grows super-linearly as the service rate
// erodes. This example predicts a memcached-like service's 90th-percentile
// latency under increasing interference with the closed-form M/M/1 model
// (Equation 6) and validates it against a discrete-event queue simulation.
//
// Run with:
//
//	go run ./examples/tail-latency
package main

import (
	"fmt"
	"log"

	"repro/smite"
)

func main() {
	// A data-caching-like service: 5,000 requests/s capacity per worker
	// thread, offered 2,500 requests/s (50% load), per-thread queues.
	const (
		mu         = 5000.0
		lambda     = 2500.0
		percentile = 0.90
	)

	fmt.Println("90th-percentile latency vs co-location degradation")
	fmt.Printf("%-14s %-18s %-18s %s\n", "degradation", "Eq.6 prediction", "simulated queue", "latency inflation")
	base, err := smite.PredictTailLatency(percentile, mu, lambda, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, deg := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40} {
		pred, err := smite.PredictTailLatency(percentile, mu, lambda, deg)
		if err != nil {
			log.Fatal(err)
		}
		// The DES plays the role of the real system: exponential service
		// at the degraded rate, Poisson arrivals.
		q := smite.MM1{Lambda: lambda, Mu: (1 - deg) * mu}
		sim, err := q.Simulate(200_000, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%13.0f%% %15.3f ms %15.3f ms %10.2fx\n",
			deg*100, pred*1000, sim.P90*1000, pred/base)
	}

	fmt.Println()
	fmt.Println("note how 30% average degradation more than doubles the tail —")
	fmt.Println("this is why the scale-out study admits far fewer co-locations")
	fmt.Println("under a tail-latency QoS than under an average-performance QoS.")
}
