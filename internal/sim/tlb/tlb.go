// Package tlb implements a small set-associative data TLB with LRU
// replacement.
//
// The PMU baseline model in the paper (Equation 9) consumes
// dTLB-load-misses/cycle and dTLB-store-misses/cycle, so the simulator
// models the DTLB explicitly: each data access translates its page, and a
// miss adds a page-walk penalty to the access latency. Co-located contexts
// share the structure, so large-footprint neighbours evict translations —
// another minor interference channel absorbed by SMiTe's constant term.
package tlb

// ways is the associativity of the TLB (4-way, as on Sandy Bridge DTLBs).
const ways = 4

// TLB is a set-associative translation buffer with LRU replacement.
// It is not safe for concurrent use.
type TLB struct {
	pages     []uint64 // invalidPage marks an empty entry
	stamp     []uint64
	clock     uint64
	setMask   uint64
	pageShift uint

	hits   uint64
	misses uint64
}

// invalidPage marks an empty entry. A real page number is addr >> pageShift
// and cannot reach it for any address the engine generates.
const invalidPage = ^uint64(0)

// New builds a TLB with the given entry count (rounded down to a multiple
// of the associativity, minimum one set) over pages of pageBytes, which
// must be a power of two.
func New(entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic("tlb: entries must be positive")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("tlb: page size must be a positive power of two")
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	shift := uint(0)
	for p := pageBytes; p > 1; p >>= 1 {
		shift++
	}
	n := sets * ways
	t := &TLB{
		pages:     make([]uint64, n),
		stamp:     make([]uint64, n),
		setMask:   uint64(sets - 1),
		pageShift: shift,
	}
	for i := range t.pages {
		t.pages[i] = invalidPage
	}
	return t
}

// Entries returns the total entry count.
func (t *TLB) Entries() int { return len(t.pages) }

// Access translates addr, filling on a miss, and returns true on a hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	page := addr >> t.pageShift
	base := int(page&t.setMask) * ways
	pages := t.pages[base : base+ways]
	for i, p := range pages {
		if p == page {
			t.hits++
			t.stamp[base+i] = t.clock
			return true
		}
	}
	t.misses++
	// Victim: first invalid entry, else first-oldest stamp (the same
	// choice the former combined scan made).
	victim := base
	haveInvalid := false
	for i, p := range pages {
		if p == invalidPage {
			victim = base + i
			haveInvalid = true
			break
		}
	}
	if !haveInvalid {
		oldest := ^uint64(0)
		stamps := t.stamp[base : base+ways]
		for i, s := range stamps {
			if s < oldest {
				victim = base + i
				oldest = s
			}
		}
	}
	t.pages[victim] = page
	t.stamp[victim] = t.clock
	return false
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// ResetStats zeroes the counters, keeping resident translations.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }

// Flush invalidates all entries and zeroes statistics.
func (t *TLB) Flush() {
	for i := range t.pages {
		t.pages[i] = invalidPage
		t.stamp[i] = 0
	}
	t.clock = 0
	t.ResetStats()
}
