package cluster

// Summary is the stable machine-readable aggregate of a discrete-event
// run, emitted by `clustersim -summary-json`. Its schema is versioned and
// pinned by a test so future benchci entries can gate fleet-level metrics
// (utilisation, SLO violations) on it without chasing field renames:
// additions bump nothing, renames/removals bump SummarySchemaVersion.
type Summary struct {
	SchemaVersion int     `json:"schema_version"`
	Policy        string  `json:"policy"`
	QoS           string  `json:"qos"`
	Target        float64 `json:"target"`

	Machines struct {
		Start int `json:"start"`
		End   int `json:"end"`
		Ups   int `json:"ups"`
		Downs int `json:"downs"`
	} `json:"machines"`

	Events struct {
		Total    int `json:"total"`
		Arrived  int `json:"arrived"`
		Placed   int `json:"placed"`
		Rejected int `json:"rejected"`
		Departed int `json:"departed"`
		Evicted  int `json:"evicted"`
	} `json:"events"`

	Utilization struct {
		Baseline float64 `json:"baseline"`
		Mean     float64 `json:"mean"`
		Peak     float64 `json:"peak"`
	} `json:"utilization"`

	SLO struct {
		Violations    int     `json:"violations"`
		ViolationFrac float64 `json:"violation_frac"`
	} `json:"slo"`
}

// SummarySchemaVersion identifies the Summary JSON schema.
const SummarySchemaVersion = 1

// Summary reduces the result to its stable serialisable aggregate.
func (r SimResult) Summary() Summary {
	var s Summary
	s.SchemaVersion = SummarySchemaVersion
	s.Policy = r.Policy.String()
	s.QoS = r.QoS.String()
	s.Target = r.Target
	s.Machines.Start = r.MachinesStart
	s.Machines.End = r.MachinesEnd
	s.Machines.Ups = r.MachineUps
	s.Machines.Downs = r.MachineDowns
	s.Events.Total = r.Events
	s.Events.Arrived = r.Arrived
	s.Events.Placed = r.Placed
	s.Events.Rejected = r.Rejected
	s.Events.Departed = r.Departed
	s.Events.Evicted = r.Evicted
	s.Utilization.Baseline = r.BaselineUtilization
	s.Utilization.Mean = r.MeanUtilization
	s.Utilization.Peak = r.PeakUtilization
	s.SLO.Violations = r.Violations
	s.SLO.ViolationFrac = r.ViolationFrac
	return s
}
