package simcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// A cancelled leader must not poison followers: the follower with a live
// context retries, becomes the new leader, and computes successfully.
func TestDoContextCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	c := New[int]()
	k := KeyOf("leader-cancel")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(leaderCtx, k, func(ctx context.Context) (int, error) {
			close(leaderIn)
			<-ctx.Done() // simulate in-flight work aborted by the request deadline
			return 0, ctx.Err()
		})
		leaderDone <- err
	}()
	<-leaderIn // the leader holds the flight

	followerDone := make(chan int, 1)
	go func() {
		v, _, err := c.DoContext(context.Background(), k, func(context.Context) (int, error) {
			return 42, nil
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerDone <- v
	}()

	time.Sleep(10 * time.Millisecond) // let the follower block on the flight
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	select {
	case v := <-followerDone:
		if v != 42 {
			t.Fatalf("follower got %d, want 42 (own computation)", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never recovered from the cancelled leader's flight")
	}
	if v, ok := c.Get(k); !ok || v != 42 {
		t.Fatalf("cache holds (%d, %v), want the follower's 42", v, ok)
	}
}

// A cancelled waiter stops waiting even while another request's flight is
// still in progress, and the flight itself is unaffected.
func TestDoContextCancelledWaiterReleases(t *testing.T) {
	c := New[int]()
	k := KeyOf("waiter-cancel")

	release := make(chan struct{})
	leaderIn := make(chan struct{})
	leaderDone := make(chan int, 1)
	go func() {
		v, _, err := c.DoContext(context.Background(), k, func(context.Context) (int, error) {
			close(leaderIn)
			<-release
			return 7, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- v
	}()
	<-leaderIn

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.DoContext(waiterCtx, k, func(context.Context) (int, error) {
			t.Error("waiter must never compute while the flight is live")
			return 0, nil
		})
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelWaiter()

	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter stayed blocked on the in-flight computation")
	}

	close(release)
	if v := <-leaderDone; v != 7 {
		t.Fatalf("leader got %d, want 7", v)
	}
}

// A pre-cancelled context computes nothing and leaves the cache untouched.
func TestDoContextPreCancelled(t *testing.T) {
	c := New[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.DoContext(ctx, KeyOf("dead"), func(context.Context) (int, error) {
		t.Error("compute ran under a dead context")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("dead context touched the cache: %+v", st)
	}
}

// Do remains a thin wrapper: values flow and single-flight still holds.
func TestDoDelegatesToDoContext(t *testing.T) {
	c := New[int]()
	k := KeyOf("wrap")
	var computes int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(k, func() (int, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return 9, nil
			})
			if err != nil || v != 9 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1 (single-flight)", computes)
	}
}
