package qosd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/queueing"
	"repro/internal/service"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/smite"
)

// maxBodyBytes bounds request bodies; profile uploads are the largest
// legitimate payload and stay far below this.
const maxBodyBytes = 8 << 20

// latencyWindow is the sliding-window size of the request-latency metric.
const latencyWindow = 1024

// Config tunes the server's production plumbing. The zero value picks
// sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrently-served requests; excess requests
	// queue until a slot frees or their timeout fires (then 429).
	// Defaults to 64.
	MaxInFlight int
	// RequestTimeout bounds each request end to end, including queueing
	// for a concurrency slot. Defaults to 5s.
	RequestTimeout time.Duration
	// Logger receives one structured line per request. Nil disables
	// request logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// System, when set, enables POST /v1/characterize: the daemon
	// simulates the Ruler sweep in-process under the request's context,
	// so the per-request timeout genuinely cancels in-flight simulation.
	// Nil disables the endpoint (501).
	System *smite.System
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	return c
}

// Server serves placement decisions from a Registry over HTTP/JSON.
// Construct with NewServer and mount Handler on an http.Server.
type Server struct {
	cfg      Config
	reg      *Registry
	mux      *http.ServeMux
	inflight chan struct{}
	// memo collapses repeated identical predictions (a scheduler asks the
	// same pair many times as machines churn). Keys include the registry
	// generation, so uploads invalidate it wholesale.
	memo    *simcache.Cache[float64]
	metrics *serverMetrics
}

// NewServer builds a Server over the registry.
func NewServer(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		memo:     simcache.New[float64](),
		metrics:  newServerMetrics(),
	}
	s.mux.HandleFunc("/healthz", s.method(http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.method(http.MethodGet, s.handleMetrics))
	s.mux.HandleFunc("/v1/predict", s.method(http.MethodPost, s.handlePredict))
	s.mux.HandleFunc("/v1/colocate", s.method(http.MethodPost, s.handleColocate))
	s.mux.HandleFunc("/v1/batch", s.method(http.MethodPost, s.handleBatch))
	s.mux.HandleFunc("/v1/profiles", s.method(http.MethodPost, s.handleProfiles))
	s.mux.HandleFunc("/v1/characterize", s.method(http.MethodPost, s.handleCharacterize))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &APIError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no route %s", r.URL.Path)})
	})
	return s
}

// Registry returns the server's registry (for in-process loading).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the full middleware stack: instrumentation (logging +
// metrics) around the per-request timeout around the concurrency gate
// around the routes.
func (s *Server) Handler() http.Handler {
	h := http.Handler(s.mux)
	h = s.limitConcurrency(h)
	h = s.withTimeout(h)
	h = s.instrument(h)
	return h
}

// method gates a route on one HTTP method, answering anything else with
// the typed 405 envelope (the stdlib mux would answer in plain text).
func (s *Server) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			writeError(w, &APIError{Status: http.StatusMethodNotAllowed, Code: CodeMethodNotAllowed,
				Message: fmt.Sprintf("%s requires %s", r.URL.Path, want)})
			return
		}
		h(w, r)
	}
}

// withTimeout bounds every request with the configured deadline. Handlers
// are cheap; the deadline's real job is bounding time queued at the
// concurrency gate.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// limitConcurrency admits at most MaxInFlight requests at once. A request
// that cannot get a slot before its deadline is answered 429 so a loaded
// daemon degrades by shedding, not by queue collapse.
func (s *Server) limitConcurrency(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		case <-r.Context().Done():
			writeError(w, &APIError{Status: http.StatusTooManyRequests, Code: CodeOverloaded,
				Message: fmt.Sprintf("no capacity within %v (%d in flight)", s.cfg.RequestTimeout, s.cfg.MaxInFlight)})
		}
	})
}

// instrument records metrics and emits one structured log line per
// request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		route := routeLabel(r)
		s.metrics.record(route, rec.code(), elapsed)
		if s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.code()),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// routeLabel buckets a request for metrics: known routes individually,
// pprof and everything else in catch-all buckets.
func routeLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/healthz", "/metrics", "/v1/predict", "/v1/colocate", "/v1/batch", "/v1/profiles", "/v1/characterize":
		return r.Method + " " + r.URL.Path
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		return "pprof"
	}
	return "other"
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) code() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}

// serverMetrics aggregates request counts per route and a sliding window
// of request latencies.
type serverMetrics struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*RouteMetrics
	window [latencyWindow]float64 // milliseconds, ring buffer
	idx    int
	count  int
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now(), routes: make(map[string]*RouteMetrics)}
}

func (m *serverMetrics) record(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[route]
	if rm == nil {
		rm = &RouteMetrics{}
		m.routes[route] = rm
	}
	rm.Total++
	switch {
	case status >= 200 && status < 300:
		rm.Status2xx++
	case status >= 400 && status < 500:
		rm.Status4xx++
	case status >= 500 && status < 600:
		rm.Status5xx++
	default:
		rm.StatusElse++
	}
	m.window[m.idx] = float64(d) / float64(time.Millisecond)
	m.idx = (m.idx + 1) % latencyWindow
	if m.count < latencyWindow {
		m.count++
	}
}

func (m *serverMetrics) snapshot() (map[string]RouteMetrics, LatencyMetrics, float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make(map[string]RouteMetrics, len(m.routes))
	for k, v := range m.routes {
		routes[k] = *v
	}
	samples := append([]float64(nil), m.window[:m.count]...)
	lat := LatencyMetrics{
		Window: m.count,
		P50:    stats.Percentile(samples, 0.50),
		P90:    stats.Percentile(samples, 0.90),
		P99:    stats.Percentile(samples, 0.99),
		Max:    stats.Max(samples),
	}
	return routes, lat, time.Since(m.start).Seconds()
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, hasModel := s.reg.Model()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Profiles:    s.reg.Len(),
		ModelLoaded: hasModel,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	routes, lat, uptime := s.metrics.snapshot()
	cs := s.memo.Stats()
	_, hasModel := s.reg.Model()
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeSeconds: uptime,
		Requests:      routes,
		Latency:       lat,
		Profiles:      s.reg.Len(),
		ModelLoaded:   hasModel,
		PredictionCache: CacheMetrics{
			Hits:    cs.Hits,
			Misses:  cs.Misses,
			Entries: cs.Entries,
		},
		MaxInFlight: s.cfg.MaxInFlight,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	deg, apiErr := s.predict(r.Context(), req.Victim, req.Aggressor, req.Instances, req.Threads)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Victim:      req.Victim,
		Aggressor:   req.Aggressor,
		Degradation: deg,
	})
}

func (s *Server) handleColocate(w http.ResponseWriter, r *http.Request) {
	var req ColocateRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.QoSTarget <= 0 || req.QoSTarget > 1 {
		writeError(w, invalidArgument("qos_target %g outside (0,1]", req.QoSTarget))
		return
	}
	var p float64
	if req.Queue != nil {
		q := req.Queue
		if q.Mu <= 0 || q.Lambda <= 0 {
			writeError(w, invalidArgument("queue rates must be positive (mu=%g, lambda=%g)", q.Mu, q.Lambda))
			return
		}
		p = q.Percentile
		if p == 0 {
			p = 0.90
		}
		if p <= 0 || p >= 1 {
			writeError(w, invalidArgument("queue percentile %g outside (0,1)", q.Percentile))
			return
		}
	}
	deg, apiErr := s.predict(r.Context(), req.Victim, req.Aggressor, req.Instances, req.Threads)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	// Same comparison as Model.SafeColocation, on the (possibly partial)
	// predicted degradation.
	resp := ColocateResponse{
		Victim:      req.Victim,
		Aggressor:   req.Aggressor,
		Degradation: deg,
		QoS:         service.AvgQoS(deg),
		Safe:        1-deg >= req.QoSTarget,
	}
	if req.Queue != nil {
		t := queueing.DegradedPercentile(p, req.Queue.Mu, req.Queue.Lambda, deg)
		if math.IsInf(t, 1) {
			// The degradation pushed the queue past stability; the closed
			// form saturates to +Inf, which JSON cannot carry.
			resp.Saturated = true
		} else {
			resp.TailLatency = &t
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.QoSTarget < 0 || req.QoSTarget > 1 {
		writeError(w, invalidArgument("qos_target %g outside [0,1]", req.QoSTarget))
		return
	}
	resp := BatchResponse{Victim: req.Victim, Results: make([]BatchResult, 0, len(req.Candidates))}
	for i, c := range req.Candidates {
		deg, apiErr := s.predict(r.Context(), req.Victim, c.Aggressor, c.Instances, req.Threads)
		if apiErr != nil {
			apiErr.Message = fmt.Sprintf("candidate %d: %s", i, apiErr.Message)
			writeError(w, apiErr)
			return
		}
		res := BatchResult{Aggressor: c.Aggressor, Instances: c.Instances, Degradation: deg}
		if req.QoSTarget > 0 {
			safe := 1-deg >= req.QoSTarget
			res.Safe = &safe
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	added, err := s.reg.LoadProfiles(r.Body)
	if err != nil {
		writeError(w, uploadError(err))
		return
	}
	writeJSON(w, http.StatusOK, ProfilesResponse{Added: added, Total: s.reg.Len()})
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req CharacterizeRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if s.cfg.System == nil {
		writeError(w, &APIError{Status: http.StatusNotImplemented, Code: CodeSimulationDisabled,
			Message: "daemon started without a simulation system (run smited with -simulate)"})
		return
	}
	var placement smite.Placement
	switch strings.ToLower(req.Placement) {
	case "", "smt":
		placement = smite.SMT
	case "cmp":
		placement = smite.CMP
	default:
		writeError(w, invalidArgument("placement %q is not smt or cmp", req.Placement))
		return
	}
	spec, err := smite.WorkloadByName(req.App)
	if err != nil {
		writeError(w, &APIError{Status: http.StatusNotFound, Code: CodeUnknownProfile,
			Message: err.Error()})
		return
	}
	char, err := s.cfg.System.CharacterizeContext(r.Context(), spec, placement)
	if err != nil {
		if apiErr := ctxError(err); apiErr != nil {
			writeError(w, apiErr)
			return
		}
		writeError(w, &APIError{Status: http.StatusInternalServerError, Code: "internal",
			Message: err.Error()})
		return
	}
	resp := CharacterizeResponse{App: req.App, Placement: placement.String(), Profile: char}
	if req.Register {
		s.reg.AddProfiles([]smite.Characterization{char})
		resp.Registered = true
		resp.Total = s.reg.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// predict is the shared prediction core: resolve profiles and model under
// one registry snapshot, validate the partial-occupancy arguments, and
// memoize by (generation, pair, occupancy). The context bounds the memo
// wait: a request whose deadline fires while another request computes the
// same key stops waiting instead of burning its remaining budget.
func (s *Server) predict(ctx context.Context, victim, aggressor string, instances, threads int) (float64, *APIError) {
	if victim == "" {
		return 0, invalidArgument("victim must be set")
	}
	if aggressor == "" {
		return 0, invalidArgument("aggressor must be set")
	}
	if threads < 0 || instances < 0 {
		return 0, invalidArgument("instances (%d) and threads (%d) must be non-negative", instances, threads)
	}
	if threads == 0 && instances > 0 {
		return 0, invalidArgument("instances (%d) set without threads", instances)
	}
	if threads > 0 && (instances < 1 || instances > threads) {
		return 0, invalidArgument("instances (%d) outside [1, threads=%d]", instances, threads)
	}
	v, a, m, gen, apiErr := s.reg.snapshot(victim, aggressor)
	if apiErr != nil {
		return 0, apiErr
	}
	key := simcache.KeyOf("qosd/predict/v1", gen, victim, aggressor, instances, threads)
	deg, _, err := s.memo.DoContext(ctx, key, func(context.Context) (float64, error) {
		// threads == 0 degenerates to the plain Equation 3 pair prediction.
		return m.PredictPartial(v, a, instances, threads), nil
	})
	if err != nil {
		if apiErr := ctxError(err); apiErr != nil {
			return 0, apiErr
		}
		// The compute function cannot fail; kept for the Do contract.
		return 0, &APIError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	return deg, nil
}

// ---- helpers ----

// ctxError maps a context cancellation onto the 504 envelope, or nil if
// the error is not a cancellation. Both deadline expiry and client
// disconnects land here; either way the simulation work was stopped.
func ctxError(err error) *APIError {
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		return nil
	}
	return &APIError{Status: http.StatusGatewayTimeout, Code: CodeDeadlineExceeded,
		Message: fmt.Sprintf("request cancelled while computing: %v", err)}
}

func invalidArgument(format string, args ...any) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
		Message: fmt.Sprintf(format, args...)}
}

// uploadError maps a profile-load failure onto the 422 envelope. All of
// smite's typed load errors (ErrCorrupt, ErrVersionSkew,
// ErrDimensionMismatch) land here, as do transport-level truncations;
// the message keeps the specific class visible to the caller.
func uploadError(err error) *APIError {
	return &APIError{Status: http.StatusUnprocessableEntity, Code: CodeUnprocessable,
		Message: err.Error()}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *APIError {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		return &APIError{Status: http.StatusBadRequest, Code: CodeBadJSON,
			Message: fmt.Sprintf("decoding request body: %v", err)}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, e *APIError) {
	writeJSON(w, e.Status, errorEnvelope{Error: e})
}
