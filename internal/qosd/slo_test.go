package qosd

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/isol"
)

func TestParseSLOClasses(t *testing.T) {
	t.Run("canonical spec", func(t *testing.T) {
		classes, err := ParseSLOClasses("critical:20ms:0.95,standard:60ms:0.95,sheddable:150ms:0.90")
		if err != nil {
			t.Fatal(err)
		}
		want := DefaultSLOClasses()
		if len(classes) != len(want) {
			t.Fatalf("parsed %d classes, want %d", len(classes), len(want))
		}
		for i := range classes {
			if classes[i] != want[i] {
				t.Errorf("class %d = %+v, want %+v", i, classes[i], want[i])
			}
		}
	})
	t.Run("percentile defaults", func(t *testing.T) {
		classes, err := ParseSLOClasses("gold: 1500ms ")
		if err != nil {
			t.Fatal(err)
		}
		if classes[0].Name != "gold" || classes[0].Budget != 1.5 || classes[0].Percentile != 0.95 {
			t.Errorf("parsed %+v", classes[0])
		}
	})

	malformed := []struct {
		name, spec, frag string
	}{
		{"empty spec", "", "empty SLO class spec"},
		{"blank spec", "   ", "empty SLO class spec"},
		{"empty entry", "a:20ms,,b:30ms", "empty class entry"},
		{"missing budget", "critical", "name:budget"},
		{"too many fields", "a:20ms:0.95:x", "name:budget"},
		{"empty name", ":20ms", "empty name"},
		{"duplicate name", "a:20ms,a:40ms", "duplicate class"},
		{"bad duration", "a:bogus", "budget"},
		{"bare number budget", "a:20", "budget"},
		{"zero budget", "a:0s", "must be positive"},
		{"negative budget", "a:-5ms", "must be positive"},
		{"bad percentile", "a:20ms:fast", "percentile"},
		{"percentile zero", "a:20ms:0", "outside (0,1)"},
		{"percentile one", "a:20ms:1", "outside (0,1)"},
	}
	for _, tc := range malformed {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSLOClasses(tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("ParseSLOClasses(%q) = %v, want mention of %q", tc.spec, err, tc.frag)
			}
		})
	}
}

func TestSLOConfigValidate(t *testing.T) {
	base := func() SLOConfig {
		return SLOConfig{Classes: DefaultSLOClasses()}.withDefaults()
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*SLOConfig)
	}{
		{"empty class name", func(c *SLOConfig) { c.Classes[0].Name = "" }},
		{"duplicate class", func(c *SLOConfig) { c.Classes[1].Name = c.Classes[0].Name }},
		{"zero budget", func(c *SLOConfig) { c.Classes[0].Budget = 0 }},
		{"infinite budget", func(c *SLOConfig) { c.Classes[0].Budget = math.Inf(1) }},
		{"NaN budget", func(c *SLOConfig) { c.Classes[0].Budget = math.NaN() }},
		{"percentile at one", func(c *SLOConfig) { c.Classes[0].Percentile = 1 }},
		{"negative headroom", func(c *SLOConfig) { c.Headroom = -0.1 }},
		{"headroom at one", func(c *SLOConfig) { c.Headroom = 1 }},
		{"thresholds inverted", func(c *SLOConfig) { c.ScaleUpThreshold, c.ScaleDownThreshold = 0.05, 0.2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestEvaluateAdmission(t *testing.T) {
	class := SLOClass{Name: "critical", Budget: 0.020, Percentile: 0.95}
	// Solo tail at mu=1000, lambda=600: -ln(0.05)/400 ≈ 7.5ms, well under
	// the 18ms effective budget at 10% headroom.
	t.Run("clean admit", func(t *testing.T) {
		d := EvaluateAdmission(0.05, 0, 1000, 600, class, 0.1)
		if !d.Admitted || d.Reason != AdmitReasonOK || d.Saturated {
			t.Fatalf("decision %+v", d)
		}
		if math.Abs(d.EffectiveBudget-0.018) > 1e-12 {
			t.Errorf("effective budget %g, want 0.018", d.EffectiveBudget)
		}
		if d.Tail <= 0 || d.Tail > d.EffectiveBudget {
			t.Errorf("tail %g outside (0, %g]", d.Tail, d.EffectiveBudget)
		}
	})
	t.Run("budget exceeded", func(t *testing.T) {
		// deg 0.3 leaves mu' = 700: tail ≈ 3.0/100 = 30ms > 18ms.
		d := EvaluateAdmission(0.3, 0, 1000, 600, class, 0.1)
		if d.Admitted || d.Reason != AdmitReasonBudgetExceeded || d.Saturated {
			t.Fatalf("decision %+v", d)
		}
	})
	t.Run("bound inflation flips the decision", func(t *testing.T) {
		// deg 0.2 alone admits (mu'=800, tail ≈ 15ms); a 0.1 bound pushes
		// the effective degradation to 0.3 and the tail past the budget.
		clean := EvaluateAdmission(0.2, 0, 1000, 600, class, 0.1)
		if !clean.Admitted {
			t.Fatalf("unbounded decision %+v", clean)
		}
		inflated := EvaluateAdmission(0.2, 0.1, 1000, 600, class, 0.1)
		if inflated.Admitted || math.Abs(inflated.EffectiveDegradation-0.3) > 1e-12 {
			t.Fatalf("inflated decision %+v", inflated)
		}
	})
	t.Run("saturated never admits", func(t *testing.T) {
		for _, deg := range []float64{0.4, 1.0, 1.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
			// deg 0.4 at mu=1000, lambda=600 puts mu' exactly at lambda.
			d := EvaluateAdmission(deg, 0, 1000, 600, class, 0.1)
			if d.Admitted || !d.Saturated || d.Reason != AdmitReasonSaturated {
				t.Errorf("deg=%v: decision %+v", deg, d)
			}
			if !math.IsInf(d.Tail, 1) {
				t.Errorf("deg=%v: tail %v, want +Inf", deg, d.Tail)
			}
		}
	})
	t.Run("zero headroom uses the full budget", func(t *testing.T) {
		d := EvaluateAdmission(0.05, 0, 1000, 600, class, 0)
		if d.EffectiveBudget != class.Budget {
			t.Errorf("effective budget %g, want %g", d.EffectiveBudget, class.Budget)
		}
	})
	t.Run("garbage headroom clamps to zero", func(t *testing.T) {
		for _, h := range []float64{-0.5, math.NaN()} {
			d := EvaluateAdmission(0.05, 0, 1000, 600, class, h)
			if d.EffectiveBudget != class.Budget {
				t.Errorf("headroom %v: effective budget %g, want %g", h, d.EffectiveBudget, class.Budget)
			}
		}
	})
}

func TestSuggestIsolation(t *testing.T) {
	class := SLOClass{Name: "critical", Budget: 0.020, Percentile: 0.95}
	t.Run("rejection remedied by the weakest clearing level", func(t *testing.T) {
		// deg 0.3 is rejected outright (tail ≈ 30ms > 18ms); ways-half
		// scales it to 0.21 (mu'=790, tail ≈ 15.8ms), which fits.
		base := EvaluateAdmission(0.3, 0, 1000, 600, class, 0.1)
		if base.Admitted {
			t.Fatalf("base decision %+v", base)
		}
		rem := SuggestIsolation(0.3, 0, 1000, 600, class, 0.1, nil)
		if rem == nil {
			t.Fatal("no remedy for a ladder-recoverable rejection")
		}
		if rem.Level != 1 || rem.Setting.Name != "ways-half" {
			t.Errorf("remedy %+v, want level 1 (ways-half)", rem)
		}
		check := EvaluateAdmission(0.3*rem.Setting.DegScale, 0, 1000, 600, class, 0.1)
		if !check.Admitted || check.Tail != rem.TailLatency || check.EffectiveDegradation != rem.EffectiveDegradation {
			t.Errorf("remedy numbers %+v do not match re-evaluation %+v", rem, check)
		}
	})
	t.Run("bound scales with the level", func(t *testing.T) {
		// deg+bound = 0.3 rejects; ways-half scales both to 0.21 total.
		rem := SuggestIsolation(0.2, 0.1, 1000, 600, class, 0.1, nil)
		if rem == nil || rem.Level != 1 {
			t.Fatalf("remedy %+v", rem)
		}
		if math.Abs(rem.EffectiveDegradation-0.3*rem.Setting.DegScale) > 1e-12 {
			t.Errorf("effective degradation %g, want %g", rem.EffectiveDegradation, 0.3*rem.Setting.DegScale)
		}
	})
	t.Run("deep saturation escalates past the weak levels", func(t *testing.T) {
		// deg 0.9: ways-half leaves 0.63 (saturated), ways-3q+throttle
		// leaves 0.45 (saturated at mu'=550 < 600? no: 550<600 saturated),
		// clamp leaves 0.315 (mu'=685, tail ≈ 35ms > 18ms) — no remedy.
		if rem := SuggestIsolation(0.9, 0, 1000, 600, class, 0.1, nil); rem != nil {
			t.Errorf("unrecoverable rejection got remedy %+v", rem)
		}
		// A looser class recovers at the clamp level.
		loose := SLOClass{Name: "standard", Budget: 0.060, Percentile: 0.95}
		rem := SuggestIsolation(0.9, 0, 1000, 600, loose, 0.1, nil)
		if rem == nil || rem.Setting.Name != "clamp" {
			t.Fatalf("remedy %+v, want clamp", rem)
		}
	})
	t.Run("ladder with only the identity yields nothing", func(t *testing.T) {
		levels := isol.DefaultSettings()[:1]
		if rem := SuggestIsolation(0.3, 0, 1000, 600, class, 0.1, levels); rem != nil {
			t.Errorf("identity-only ladder got remedy %+v", rem)
		}
	})
}

func TestSaturationSignal(t *testing.T) {
	cases := []struct {
		rate float64
		want string
	}{
		{0, SignalScaleDown},
		{0.05, SignalScaleDown}, // at the scale-down threshold
		{0.051, SignalSteady},
		{0.19, SignalSteady},
		{0.2, SignalScaleUp}, // at the scale-up threshold
		{0.9, SignalScaleUp},
	}
	for _, tc := range cases {
		if got := SaturationSignal(tc.rate, 0.2, 0.05); got != tc.want {
			t.Errorf("SaturationSignal(%g) = %s, want %s", tc.rate, got, tc.want)
		}
	}
}

// TestAdmitEndToEnd drives POST /v1/admit against the in-process
// admission math: for every class the served decision must equal
// EvaluateAdmission on the served prediction, and the acceptance
// property holds — no co-location whose inflated tail exceeds the
// effective class budget is ever admitted.
func TestAdmitEndToEnd(t *testing.T) {
	slo := &SLOConfig{Classes: DefaultSLOClasses(), Headroom: 0.1}
	s, c := newTestServer(t, Config{SLO: slo})
	ctx := context.Background()

	pred, err := c.Predict(ctx, PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	queues := []QueueSpec{
		{Mu: 1000, Lambda: 600},
		{Mu: 1000, Lambda: 950},
		{Mu: 200, Lambda: 199},
		{Mu: 50, Lambda: 10},
	}
	for _, q := range queues {
		for _, class := range s.cfg.SLO.Classes {
			got, err := c.Admit(ctx, AdmitRequest{
				Victim: "web-search", Aggressor: "429.mcf", Class: class.Name, Queue: q,
			})
			if err != nil {
				t.Fatalf("%s mu=%g lambda=%g: %v", class.Name, q.Mu, q.Lambda, err)
			}
			want := EvaluateAdmission(pred.Degradation, pred.ErrorBound, q.Mu, q.Lambda, class, s.cfg.SLO.Headroom)
			if got.Admitted != want.Admitted || got.Reason != want.Reason || got.Saturated != want.Saturated {
				t.Errorf("%s mu=%g lambda=%g: served (%v,%s,sat=%v), want (%v,%s,sat=%v)",
					class.Name, q.Mu, q.Lambda,
					got.Admitted, got.Reason, got.Saturated,
					want.Admitted, want.Reason, want.Saturated)
			}
			if got.EffectiveBudget != want.EffectiveBudget || got.EffectiveDegradation != want.EffectiveDegradation {
				t.Errorf("%s mu=%g lambda=%g: budget/deg (%g,%g), want (%g,%g)",
					class.Name, q.Mu, q.Lambda,
					got.EffectiveBudget, got.EffectiveDegradation,
					want.EffectiveBudget, want.EffectiveDegradation)
			}
			// The acceptance property, asserted on the wire values alone.
			if got.Admitted && (got.TailLatency == nil || *got.TailLatency > got.EffectiveBudget) {
				t.Errorf("%s mu=%g lambda=%g: admitted over budget: %+v", class.Name, q.Mu, q.Lambda, got)
			}
			if !got.Admitted && got.Reason == string(AdmitReasonOK) {
				t.Errorf("rejection carries reason ok: %+v", got)
			}
			if got.Saturated && got.TailLatency != nil {
				t.Errorf("saturated response carries a tail: %+v", got)
			}
			// Remedy contract: never on admits, and when present it must
			// actually flip the decision at the suggested level.
			if got.Admitted && got.IsolationRemedy != nil {
				t.Errorf("admitted response carries an isolation remedy: %+v", got)
			}
			if rem := got.IsolationRemedy; rem != nil {
				scale := rem.Setting.DegScale
				check := EvaluateAdmission(pred.Degradation*scale, pred.ErrorBound*scale,
					q.Mu, q.Lambda, class, s.cfg.SLO.Headroom)
				if !check.Admitted {
					t.Errorf("%s mu=%g lambda=%g: remedy level %d does not admit: %+v",
						class.Name, q.Mu, q.Lambda, rem.Level, check)
				}
			}
		}
	}
}

// TestAdmitSurrogateBoundInflates pins the tier interplay: when the
// surrogate tier serves the prediction, /v1/admit checks the budget at
// deg + bound, so a surrogate answer can be rejected where the exact
// engine answer would be admitted.
func TestAdmitSurrogateBoundInflates(t *testing.T) {
	// A large recorded curve error makes the bound dominate the check.
	set := testSurrogate(0.5)
	slo := &SLOConfig{Classes: []SLOClass{{Name: "critical", Budget: 0.020, Percentile: 0.95}}}
	_, c := newTestServer(t, Config{Surrogate: set, SurrogateThreshold: 100, SLO: slo})
	ctx := context.Background()
	queue := QueueSpec{Mu: 1000, Lambda: 600}

	got, err := c.Admit(ctx, AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "critical", Queue: queue,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != TierSurrogate || got.ErrorBound <= 0 {
		t.Fatalf("admission not served from the surrogate tier: %+v", got)
	}
	if got.EffectiveDegradation != got.Degradation+got.ErrorBound {
		t.Errorf("effective degradation %g, want deg %g + bound %g",
			got.EffectiveDegradation, got.Degradation, got.ErrorBound)
	}
	if got.Admitted {
		t.Errorf("inflated degradation %g admitted against a 20ms budget: %+v", got.EffectiveDegradation, got)
	}

	// The same pair through an engine-only daemon carries no bound and is
	// admitted: the inflation, not the prediction, flipped the decision.
	_, engineClient := newTestServer(t, Config{SLO: slo})
	eng, err := engineClient.Admit(ctx, AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "critical", Queue: queue,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Tier != TierEngine || eng.ErrorBound != 0 {
		t.Fatalf("engine daemon served tier %q bound %g", eng.Tier, eng.ErrorBound)
	}
	if !eng.Admitted {
		t.Fatalf("engine answer rejected; the inflation test needs an admissible base case: %+v", eng)
	}
}

// TestAdmitRequestValidation pins the error surface of /v1/admit.
func TestAdmitRequestValidation(t *testing.T) {
	slo := &SLOConfig{Classes: DefaultSLOClasses()}
	_, c := newTestServer(t, Config{SLO: slo})
	ctx := context.Background()
	queue := QueueSpec{Mu: 1000, Lambda: 600}

	cases := []struct {
		name string
		req  AdmitRequest
		code string
	}{
		{"missing class", AdmitRequest{Victim: "web-search", Aggressor: "429.mcf", Queue: queue}, CodeInvalidArgument},
		{"unknown class", AdmitRequest{Victim: "web-search", Aggressor: "429.mcf", Class: "bronze", Queue: queue}, CodeUnknownClass},
		{"missing queue", AdmitRequest{Victim: "web-search", Aggressor: "429.mcf", Class: "critical"}, CodeInvalidArgument},
		{"negative lambda", AdmitRequest{Victim: "web-search", Aggressor: "429.mcf", Class: "critical",
			Queue: QueueSpec{Mu: 1000, Lambda: -1}}, CodeInvalidArgument},
		{"percentile set", AdmitRequest{Victim: "web-search", Aggressor: "429.mcf", Class: "critical",
			Queue: QueueSpec{Mu: 1000, Lambda: 600, Percentile: 0.99}}, CodeInvalidArgument},
		{"unknown victim", AdmitRequest{Victim: "nope", Aggressor: "429.mcf", Class: "critical", Queue: queue}, CodeUnknownProfile},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Admit(ctx, tc.req)
			var ae *APIError
			if !errors.As(err, &ae) || ae.Code != tc.code {
				t.Errorf("Admit(%+v) = %v, want code %s", tc.req, err, tc.code)
			}
		})
	}
}

// TestAdmitDisabled pins the 501 when the daemon has no SLO config.
func TestAdmitDisabled(t *testing.T) {
	_, c := newTestServer(t, Config{})
	_, err := c.Admit(context.Background(), AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "critical",
		Queue: QueueSpec{Mu: 1000, Lambda: 600},
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeSLODisabled {
		t.Errorf("Admit on SLO-less daemon = %v, want code %s", err, CodeSLODisabled)
	}
}

// TestAdmitMetrics pins the analyzer surface: per-class counters, the
// windowed rejection rate, and the saturation signal on /metrics.
func TestAdmitMetrics(t *testing.T) {
	slo := &SLOConfig{
		Classes: []SLOClass{{Name: "critical", Budget: 0.020, Percentile: 0.95}},
		Window:  8,
	}
	_, c := newTestServer(t, Config{SLO: slo})
	ctx := context.Background()

	admits, rejects := 0, 0
	for _, lambda := range []float64{100, 600, 950, 999} {
		got, err := c.Admit(ctx, AdmitRequest{
			Victim: "web-search", Aggressor: "429.mcf", Class: "critical",
			Queue: QueueSpec{Mu: 1000, Lambda: lambda},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Admitted {
			admits++
		} else {
			rejects++
		}
	}
	if admits == 0 || rejects == 0 {
		t.Fatalf("test queues produced a one-sided decision mix (%d/%d)", admits, rejects)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SLO == nil {
		t.Fatal("metrics carry no SLO report")
	}
	cm, ok := m.SLO.Classes["critical"]
	if !ok {
		t.Fatalf("no per-class counters in %+v", m.SLO.Classes)
	}
	if cm.Admitted != uint64(admits) || cm.Rejected != uint64(rejects) {
		t.Errorf("class counters %+v, want %d/%d", cm, admits, rejects)
	}
	wantRate := float64(rejects) / float64(admits+rejects)
	if m.SLO.Saturation.RejectionRate != wantRate {
		t.Errorf("rejection rate %g, want %g", m.SLO.Saturation.RejectionRate, wantRate)
	}
	wantSignal := SaturationSignal(wantRate, m.SLO.Saturation.ScaleUpThreshold, m.SLO.Saturation.ScaleDownThreshold)
	if m.SLO.Saturation.Signal != wantSignal {
		t.Errorf("signal %q, want %q", m.SLO.Saturation.Signal, wantSignal)
	}
	// Window reports the decisions currently inside the ring, not its
	// capacity: four decisions into an 8-slot window.
	if m.SLO.Saturation.Window != admits+rejects {
		t.Errorf("window %d, want %d", m.SLO.Saturation.Window, admits+rejects)
	}

	// The SLO-less daemon reports no SLO block at all.
	_, plain := newTestServer(t, Config{})
	pm, err := plain.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pm.SLO != nil {
		t.Errorf("SLO-less daemon reports %+v", pm.SLO)
	}
}

// The windowed rejection rate must be computed over the decisions
// actually observed, not the ring capacity. Before the fix a
// freshly-started analyzer with a handful of decisions divided by the
// full window size, under-reporting the rate by window/filled and
// keeping the signal pinned at SignalScaleDown during warm-up.
func TestSaturationRateOverObservedNotCapacity(t *testing.T) {
	a := newSLOAnalyzer(SLOConfig{Classes: DefaultSLOClasses(), Window: 8}.withDefaults())
	rate, window := a.rejectionRate()
	if rate != 0 || window != 0 {
		t.Fatalf("empty analyzer: rate=%g window=%d, want 0, 0", rate, window)
	}
	// 3 decisions into a window of 8: 2 rejections / 3 observed, not /8.
	a.record("critical", true)
	a.record("critical", false)
	a.record("critical", false)
	rate, window = a.rejectionRate()
	if window != 3 {
		t.Fatalf("window = %d, want 3 (observed decisions, not capacity)", window)
	}
	if want := 2.0 / 3.0; rate != want {
		t.Fatalf("rate = %g, want %g (rejections over observed, not over capacity)", rate, want)
	}
}

// Once the ring wraps, the rate covers exactly the last Window
// decisions: older ones fall out, and overwritten slots are not
// double-counted.
func TestSaturationRateWrappedRing(t *testing.T) {
	a := newSLOAnalyzer(SLOConfig{Classes: DefaultSLOClasses(), Window: 4}.withDefaults())
	// 4 rejections fill the ring...
	for i := 0; i < 4; i++ {
		a.record("critical", false)
	}
	if rate, window := a.rejectionRate(); rate != 1 || window != 4 {
		t.Fatalf("full ring: rate=%g window=%d, want 1, 4", rate, window)
	}
	// ...then 3 admissions overwrite the oldest three. Window stays at
	// capacity and the rate reflects the surviving mix: 1 rejection / 4.
	for i := 0; i < 3; i++ {
		a.record("critical", true)
	}
	rate, window := a.rejectionRate()
	if window != 4 {
		t.Fatalf("wrapped window = %d, want 4", window)
	}
	if want := 1.0 / 4.0; rate != want {
		t.Fatalf("wrapped rate = %g, want %g", rate, want)
	}
	// Lifetime counters are unaffected by the ring wrapping.
	r := a.report()
	c := r.Classes["critical"]
	if c.Admitted != 3 || c.Rejected != 4 {
		t.Fatalf("lifetime counters = %+v, want 3 admitted / 4 rejected", c)
	}
}
