package qosd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/smite"
)

// Client talks to a smited daemon. The zero value is not usable;
// construct with NewClient. Methods return *APIError for daemon-reported
// failures, so callers can inspect the code with errors.As.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). Pass nil to use http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(base, "/"), hc: hc}
}

// Healthz checks daemon liveness.
func (c *Client) Healthz(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.call(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the daemon's operational counters.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.call(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// Predict asks for one pair's predicted degradation.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	var out PredictResponse
	err := c.call(ctx, http.MethodPost, "/v1/predict", req, &out)
	return out, err
}

// Colocate runs the admission check.
func (c *Client) Colocate(ctx context.Context, req ColocateRequest) (ColocateResponse, error) {
	var out ColocateResponse
	err := c.call(ctx, http.MethodPost, "/v1/colocate", req, &out)
	return out, err
}

// Admit runs the predictive SLO admission check: the daemon predicts the
// pair's degradation, inflates it by the surrogate error bound when the
// surrogate tier answered, and admits only if the Eq. 6 tail estimate at
// the class percentile fits the class budget minus the configured
// headroom. Requires a daemon started with SLO classes (-slo-config);
// otherwise the typed error carries CodeSLODisabled.
func (c *Client) Admit(ctx context.Context, req AdmitRequest) (AdmitResponse, error) {
	var out AdmitResponse
	err := c.call(ctx, http.MethodPost, "/v1/admit", req, &out)
	return out, err
}

// Batch scores a candidate set.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.call(ctx, http.MethodPost, "/v1/batch", req, &out)
	return out, err
}

// Characterize asks the daemon to simulate a workload's Ruler sweep
// in-process. Requires a daemon started with a simulation System; the
// sweep is cancelled if ctx (or the daemon's per-request timeout) fires.
func (c *Client) Characterize(ctx context.Context, req CharacterizeRequest) (CharacterizeResponse, error) {
	var out CharacterizeResponse
	err := c.call(ctx, http.MethodPost, "/v1/characterize", req, &out)
	return out, err
}

// UploadProfiles registers characterizations with the daemon by encoding
// them in the persisted-profile format (the same bytes `smited -profiles`
// reads from disk), exercising the full persist round-trip.
func (c *Client) UploadProfiles(ctx context.Context, chars []smite.Characterization) (ProfilesResponse, error) {
	var body bytes.Buffer
	if err := smite.SaveProfiles(&body, chars); err != nil {
		return ProfilesResponse{}, fmt.Errorf("qosd: encoding profiles: %w", err)
	}
	var out ProfilesResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/profiles", &body, &out)
	return out, err
}

// call JSON-encodes in (when non-nil) and decodes the response into out.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(in); err != nil {
			return fmt.Errorf("qosd: encoding %s request: %w", path, err)
		}
		body = &buf
	}
	return c.roundTrip(ctx, method, path, body, out)
}

func (c *Client) roundTrip(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("qosd: building %s request: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("qosd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("qosd: decoding %s response: %w", path, err)
	}
	return nil
}

// decodeError reconstructs the daemon's typed error; a malformed error
// body degrades to a generic status error.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.Status = resp.StatusCode
		return env.Error
	}
	return fmt.Errorf("qosd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
}
