package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/isol"
)

// synthGenTable builds one generation's prediction table on its
// generation-specific synthetic world, through the full Predictor seam.
func synthGenTable(tb testing.TB, gen string, seed uint64) *PredTable {
	tb.Helper()
	const nLat, nBatch, maxInst = 3, 4, 6
	set, tbl, err := SyntheticGenWorld(gen, nLat, nBatch, maxInst, seed)
	if err != nil {
		tb.Fatal(err)
	}
	pred := NewTieredPredictor(
		&SurrogatePredictor{Set: set, Capacity: maxInst},
		&TablePredictor{Table: tbl},
	)
	pt, err := BuildPredTable(context.Background(), tbl, nil, QoSAvg, pred, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return pt
}

// synthGenConfig assembles a heterogeneous two-generation fleet: a 3:2 mix
// of "snb" machines at the default geometry and wider "ivb" machines, each
// with its own degradation surface.
func synthGenConfig(tb testing.TB, machines int, horizon float64, seed uint64) SimConfig {
	tb.Helper()
	cfg := synthSimConfig(tb, machines, horizon, seed)
	cfg.Table = nil
	cfg.MachineGens = []MachineGenSpec{
		{Name: "snb", Count: 3, Table: synthGenTable(tb, "snb", seed)},
		{Name: "ivb", Count: 2, Threads: 8, Contexts: 16, Table: synthGenTable(tb, "ivb", seed)},
	}
	return cfg
}

func TestAllocPolicyRegistry(t *testing.T) {
	for _, p := range AllocPolicies() {
		got, err := AllocPolicyByName(p.Name)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if got.Name != p.Name || got.Score == nil {
			t.Errorf("%s resolved to %+v", p.Name, got)
		}
	}
	if def, err := AllocPolicyByName(""); err != nil || def.Name != "bestfit" {
		t.Errorf("empty name resolved to %q, %v (want bestfit)", def.Name, err)
	}
	if _, err := AllocPolicyByName("worstfit"); err == nil {
		t.Error("unknown alloc policy accepted")
	}
}

// TestIsolationConfigValidation rejects every degenerate isolation and
// heterogeneity configuration with a typed or descriptive error instead of
// a panic or livelock downstream.
func TestIsolationConfigValidation(t *testing.T) {
	base := func() SimConfig { return synthSimConfig(t, 20, 1, 5) }
	hetero := func() SimConfig { return synthGenConfig(t, 20, 1, 5) }
	cases := []struct {
		name string
		mut  func(*SimConfig)
		want string
	}{
		{"isol params without the policy", func(c *SimConfig) { c.Isol = &IsolSimParams{} }, "isolation parameters need policy"},
		{"isolation policy without SLO", func(c *SimConfig) { c.Policy = PolicyIsolation }, "needs SLO parameters"},
		{"unknown alloc", func(c *SimConfig) { c.Alloc = "worstfit" }, "unknown alloc policy"},
		{"alloc under random", func(c *SimConfig) { c.Policy = PolicyRandom; c.Alloc = "spread" }, "no effect under policy Random"},
		{"isolation with drift", func(c *SimConfig) {
			c.Policy = PolicyIsolation
			c.SLO = sloSimParams()
			c.Drift = &DriftSpec{At: 0.5, Factor: 2}
		}, "does not compose with drift"},
		{"bad ladder", func(c *SimConfig) {
			c.Policy = PolicyIsolation
			c.SLO = sloSimParams()
			c.Isol = &IsolSimParams{Levels: []isol.Setting{{Name: "off", DegScale: 0.5}}}
		}, "level 0 must be the identity"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Degenerate ladders surface isol's typed error.
	cfg := base()
	cfg.Policy = PolicyIsolation
	cfg.SLO = sloSimParams()
	cfg.Isol = &IsolSimParams{Levels: []isol.Setting{{Name: "off", DegScale: 1, ThrottleFrac: 1}, {Name: "zero", DegScale: 0}}}
	var ce *isol.ConfigError
	if err := cfg.Validate(); !errors.As(err, &ce) {
		t.Errorf("degenerate ladder error %v is not a *isol.ConfigError", err)
	}

	genCases := []struct {
		name string
		mut  func(*SimConfig)
		want string
	}{
		{"gens with table", func(c *SimConfig) { c.Table = c.MachineGens[0].Table }, "leave Table nil"},
		{"unnamed gen", func(c *SimConfig) { c.MachineGens[0].Name = "" }, "has no name"},
		{"duplicate gen", func(c *SimConfig) { c.MachineGens[1].Name = c.MachineGens[0].Name }, "duplicate machine generation"},
		{"zero count", func(c *SimConfig) { c.MachineGens[0].Count = 0 }, "must be positive"},
		{"no idle contexts", func(c *SimConfig) { c.MachineGens[1].Contexts = c.MachineGens[1].Threads }, "leaves no idle context"},
		{"closed loop over gens", func(c *SimConfig) {
			c.Policy = PolicyClosedLoop
			c.SLO = sloSimParams()
		}, "does not support heterogeneous"},
		{"drift over gens", func(c *SimConfig) { c.Drift = &DriftSpec{At: 0.5, Factor: 2} }, "does not support heterogeneous"},
		{"mismatched shapes", func(c *SimConfig) {
			pt := *c.MachineGens[1].Table
			pt.MaxInstances = 3
			pt.PredQoS = pt.PredQoS[:len(pt.LatencyApps)*len(pt.BatchApps)*3]
			pt.ActualQoS = pt.ActualQoS[:len(pt.PredQoS)]
			pt.PredDeg = pt.PredDeg[:len(pt.PredQoS)]
			pt.ActualDeg = pt.ActualDeg[:len(pt.PredQoS)]
			pt.PredBound = pt.PredBound[:len(pt.PredQoS)]
			c.MachineGens[1].Table = &pt
		}, "table shape differs"},
	}
	for _, tc := range genCases {
		cfg := hetero()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestHeterogeneousSim smoke-tests a mixed-generation fleet: the run
// completes, places work on both generations (machine generation is a pure
// function of the global id), and is bit-identical across worker counts.
func TestHeterogeneousSim(t *testing.T) {
	cfg := synthGenConfig(t, 60, 2, 7)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 {
		t.Fatal("heterogeneous run placed nothing")
	}
	// Recover each placement's generation from the machine id and check
	// both generations took work.
	total := 0
	for _, g := range cfg.MachineGens {
		total += g.Count
	}
	placedByGen := make([]int, len(cfg.MachineGens))
	for _, p := range res.Log {
		if p.Machine < 0 || p.Kind != "" {
			continue
		}
		slot := int(p.Machine % int64(total))
		gen := 0
		if slot >= cfg.MachineGens[0].Count {
			gen = 1
		}
		placedByGen[gen]++
	}
	for gi, n := range placedByGen {
		if n == 0 {
			t.Errorf("generation %q received no placements", cfg.MachineGens[gi].Name)
		}
	}
	res8, err := RunSim(context.Background(), cfg, events, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hashLog(res.Log) != hashLog(res8.Log) || res.Placed != res8.Placed {
		t.Error("heterogeneous run is not worker-count invariant")
	}
}

// TestAllocSpreadReducesViolations pins the Navarro-style allocation
// benchmark: on a fixed contention-heavy run, the load-spreading policy
// admits the same arrivals but lands them on wider-headroom machines, so it
// must produce strictly fewer measured SLO violations than the default
// greedy bestfit packing. The exact margin is not pinned — only the
// ordering, which is the claim the policy exists to make.
func TestAllocSpreadReducesViolations(t *testing.T) {
	base := synthSimConfig(t, 100, 2, 97)
	base.Workload.ArrivalRate = 3600
	base.Workload.MeanDuration = 0.05
	base.Workload.Churn = 0.05
	base.Policy = PolicySLO
	base.SLO = sloSimParams()
	events, err := GenerateEvents(base)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alloc string) SimResult {
		cfg := base
		cfg.Alloc = alloc
		res, err := RunSim(context.Background(), cfg, events, 4)
		if err != nil {
			t.Fatalf("alloc %q: %v", alloc, err)
		}
		return res
	}
	greedy := run("bestfit")
	spread := run("spread")
	t.Logf("bestfit: placed=%d violations=%d; spread: placed=%d violations=%d",
		greedy.Placed, greedy.Violations, spread.Placed, spread.Violations)
	if greedy.Violations == 0 {
		t.Fatal("baseline run has no violations; benchmark is vacuous")
	}
	if spread.Violations >= greedy.Violations {
		t.Errorf("spread allocation (%d violations) does not beat greedy bestfit (%d)",
			spread.Violations, greedy.Violations)
	}
	// bestfit must be the literal default: explicit name and empty name
	// agree bit for bit.
	def := run("")
	if hashLog(def.Log) != hashLog(greedy.Log) {
		t.Error("explicit bestfit diverges from the default allocation")
	}
}

// inflateActual returns a copy of the table whose measured degradations
// are factor× the predicted world believes — systematic under-prediction,
// the same injection device the closed-loop drift tests use. Every
// admissible placement near the budget boundary then measures over it,
// giving the enforcement ladder violations to absorb.
func inflateActual(pt *PredTable, factor float64) *PredTable {
	q := *pt
	q.ActualDeg = scaleSlice(pt.ActualDeg, factor)
	return &q
}

// TestGoldenIsolClusterSim pins the heterogeneous isolation run end to
// end: a 100-machine two-generation fleet with 1.5× under-predicted
// interference under PolicyIsolation, with the summary's isolation block
// (escalations, resolutions, migrations, tax) and the full placement log
// hashed into the fixture.
func TestGoldenIsolClusterSim(t *testing.T) {
	cfg := synthGenConfig(t, 100, 2, 97)
	cfg.Workload.ArrivalRate = 3600
	cfg.Workload.MeanDuration = 0.05
	cfg.Workload.Churn = 0.05
	for i := range cfg.MachineGens {
		cfg.MachineGens[i].Table = inflateActual(cfg.MachineGens[i].Table, 1.5)
	}
	cfg.Policy = PolicyIsolation
	cfg.SLO = sloSimParams()
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Isolations == 0 {
		t.Fatal("golden isolation run never escalated; fixture would pin a dead ladder")
	}
	got := goldenRun{
		Summary: res.Summary(),
		LogLen:  len(res.Log),
		LogHash: hashLog(res.Log),
	}
	head := 5
	if len(res.Log) < head {
		head = len(res.Log)
	}
	got.Head = res.Log[:head]
	checkGolden(t, "golden_isol.json", got)
}

// TestIsolationSummaryByteStable: marshalling the same isolation run's
// summary twice is byte-identical, and a replay of the same events
// reproduces those bytes — the contract `clustersim -summary-json`
// consumers rely on.
func TestIsolationSummaryByteStable(t *testing.T) {
	cfg := synthGenConfig(t, 40, 1, 11)
	cfg.Policy = PolicyIsolation
	cfg.SLO = sloSimParams()
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	marshal := func() []byte {
		res, err := RunSim(context.Background(), cfg, events, 3)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res.Summary())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if string(a) != string(b) {
		t.Errorf("summary JSON not byte-stable across replays:\n%s\n%s", a, b)
	}
}
