// Package branch implements the branch predictor substrate: a classic table
// of 2-bit saturating counters indexed by branch tag.
//
// Branch behaviour matters to SMiTe in two ways: port 5 executes branches
// (so branch-heavy SPEC_INT codes are sensitive to FP_SHF-Ruler pressure,
// Finding 6), and branch mispredictions are one of the "other resources"
// the model's constant term c0 absorbs (Section III-C2). The PMU baseline
// model also consumes a branch-mispredictions/cycle counter.
package branch

// Predictor is a bimodal 2-bit saturating counter predictor.
// It is not safe for concurrent use.
type Predictor struct {
	table []uint8
	mask  uint32

	predictions uint64
	mispredicts uint64
}

// New builds a predictor with the given number of entries, which must be a
// positive power of two.
func New(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: entries must be a positive power of two")
	}
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 2 // weakly taken: matches the usual reset state
	}
	return &Predictor{table: t, mask: uint32(entries - 1)}
}

// Lookup predicts and immediately trains on the actual outcome, returning
// whether the prediction was correct. The engine calls it once per
// allocated branch uop.
func (p *Predictor) Lookup(tag uint32, taken bool) (correct bool) {
	i := tag & p.mask
	ctr := p.table[i]
	predicted := ctr >= 2
	if taken && ctr < 3 {
		p.table[i] = ctr + 1
	} else if !taken && ctr > 0 {
		p.table[i] = ctr - 1
	}
	p.predictions++
	if predicted != taken {
		p.mispredicts++
		return false
	}
	return true
}

// Stats returns cumulative prediction and misprediction counts.
func (p *Predictor) Stats() (predictions, mispredicts uint64) {
	return p.predictions, p.mispredicts
}

// ResetStats zeroes the counters, keeping learned state.
func (p *Predictor) ResetStats() { p.predictions, p.mispredicts = 0, 0 }

// Reset restores the predictor to its post-New state: every counter back to
// weakly taken and statistics zeroed.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 2
	}
	p.ResetStats()
}

// MispredictRate returns mispredictions per prediction (0 when idle).
func (p *Predictor) MispredictRate() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.mispredicts) / float64(p.predictions)
}
