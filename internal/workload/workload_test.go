package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/isa"
)

func TestRegistryShape(t *testing.T) {
	if n := len(SPECCPU2006()); n != 29 {
		t.Errorf("SPEC CPU2006 has %d models, want 29", n)
	}
	if n := len(CloudSuiteApps()); n != 4 {
		t.Errorf("CloudSuite has %d models, want 4", n)
	}
	if n := len(All()); n != 33 {
		t.Errorf("All has %d models, want 33", n)
	}
	even, odd := EvenSPEC(), OddSPEC()
	if len(even)+len(odd) != 29 {
		t.Errorf("parity split %d+%d != 29", len(even), len(odd))
	}
	for _, s := range even {
		if s.Number%2 != 0 {
			t.Errorf("%s in the even set", s.Name)
		}
	}
	for _, s := range odd {
		if s.Number%2 != 1 {
			t.Errorf("%s in the odd set", s.Name)
		}
	}
}

func TestAllSpecsValid(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if sum := s.Mix.Sum(); sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: mix sums to %f", s.Name, sum)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("429.mcf")
	if err != nil || s.Name != "429.mcf" {
		t.Errorf("ByName failed: %v", err)
	}
	if _, err := ByName("430.nonexistent"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCloudSuiteProperties(t *testing.T) {
	for _, s := range CloudSuiteApps() {
		if !s.LatencySensitive() {
			t.Errorf("%s should be latency-sensitive", s.Name)
		}
		if s.ThreadCount() < 2 {
			t.Errorf("%s should be multithreaded", s.Name)
		}
		if s.ArrivalRate >= s.ServiceRate {
			t.Errorf("%s queue unstable", s.Name)
		}
	}
	// The paper: Data-Serving and Graph-Analytics report no percentiles.
	reporting := 0
	for _, s := range CloudSuiteApps() {
		if s.ReportsPercentile {
			reporting++
		}
	}
	if reporting != 2 {
		t.Errorf("%d services report percentiles, want 2 (Web-Search, Data-Caching)", reporting)
	}
}

func TestPaperCalloutsEncoded(t *testing.T) {
	// The table should preserve the contrasts the paper names.
	namd, _ := ByName("444.namd")
	mcf, _ := ByName("429.mcf")
	if namd.Mix.FPAdd < 0.25 {
		t.Error("namd should be FP_ADD-heavy (paper: 71% port-1 sensitivity)")
	}
	if mcf.Mix.FPAdd != 0 || mcf.Mix.FPMul != 0 {
		t.Error("mcf should have no FP work (paper: 6% port-1 sensitivity)")
	}
	calculix, _ := ByName("454.calculix")
	lbm, _ := ByName("470.lbm")
	if calculix.Mix.FPMul <= calculix.Mix.FPAdd {
		t.Error("calculix should lean FP_MUL (paper: contentious on port 0)")
	}
	if lbm.Mix.FPAdd <= lbm.Mix.FPMul {
		t.Error("lbm should lean FP_ADD (paper: contentious on port 1)")
	}
	if calculix.FootprintBytes > 32<<10 {
		t.Error("calculix should be L1-resident (paper: high L1 reliance)")
	}
	// CloudSuite: big shared-cache footprints (paper Finding 8).
	for _, s := range CloudSuiteApps() {
		if s.FootprintBytes < 8<<20 {
			t.Errorf("%s footprint %d too small for L3 contentiousness", s.Name, s.FootprintBytes)
		}
	}
}

func TestGenDeterminism(t *testing.T) {
	spec, _ := ByName("403.gcc")
	a, b := NewGen(spec, 42), NewGen(spec, 42)
	var ua, ub isa.Uop
	for i := 0; i < 10000; i++ {
		ua, ub = isa.Uop{}, isa.Uop{}
		a.Next(&ua)
		b.Next(&ub)
		if ua != ub {
			t.Fatalf("same-seed generators diverged at uop %d", i)
		}
	}
}

func TestGenSeedsDiffer(t *testing.T) {
	spec, _ := ByName("403.gcc")
	a, b := NewGen(spec, 1), NewGen(spec, 2)
	same := 0
	var ua, ub isa.Uop
	for i := 0; i < 1000; i++ {
		ua, ub = isa.Uop{}, isa.Uop{}
		a.Next(&ua)
		b.Next(&ub)
		if ua == ub {
			same++
		}
	}
	if same > 900 {
		t.Errorf("different seeds produced %d/1000 identical uops", same)
	}
}

// Property: generated uops respect the spec's structural invariants.
func TestGenInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64, pick uint8) bool {
		specs := All()
		spec := specs[int(pick)%len(specs)]
		g := NewGen(spec, seed)
		var u isa.Uop
		for i := 0; i < 2000; i++ {
			u = isa.Uop{}
			g.Next(&u)
			switch u.Kind {
			case isa.Load, isa.Store:
				if u.Addr >= spec.FootprintBytes && u.Addr >= spec.HotBytes && u.Addr >= spec.WarmBytes {
					return false // address outside every region
				}
				if u.Addr%8 != 0 {
					return false // unaligned
				}
			case isa.Branch:
				if int(u.BrTag) >= spec.BranchTags {
					return false
				}
			case isa.Nop:
				if u.Dep1 != 0 || u.Dep2 != 0 {
					return false // nops carry no dependencies
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The empirical mix must track the spec's mix.
func TestGenMixFrequencies(t *testing.T) {
	spec, _ := ByName("444.namd")
	g := NewGen(spec, 9)
	counts := make(map[isa.UopKind]int)
	const n = 200000
	var u isa.Uop
	for i := 0; i < n; i++ {
		u = isa.Uop{}
		g.Next(&u)
		counts[u.Kind]++
	}
	check := func(kind isa.UopKind, want float64) {
		got := float64(counts[kind]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("%v frequency %.4f, want %.3f", kind, got, want)
		}
	}
	check(isa.FPMul, spec.Mix.FPMul)
	check(isa.FPAdd, spec.Mix.FPAdd)
	check(isa.Load, spec.Mix.Load)
	check(isa.Branch, spec.Mix.Branch)
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	base := func() Spec {
		s := *mustByName(t, "456.hmmer")
		return s
	}
	mutations := []struct {
		name string
		f    func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"bad mix sum", func(s *Spec) { s.Mix.Load += 0.5 }},
		{"dep < 1", func(s *Spec) { s.MeanDepDist = 0.5 }},
		{"no footprint", func(s *Spec) { s.FootprintBytes = 0 }},
		{"bad bias", func(s *Spec) { s.BranchBias = 1.5 }},
		{"bad frac", func(s *Spec) { s.IndepFrac = -0.1 }},
		{"hot frac no bytes", func(s *Spec) { s.HotFrac = 0.5; s.HotBytes = 0 }},
		{"warm frac no bytes", func(s *Spec) { s.WarmFrac = 0.5; s.WarmBytes = 0 }},
		{"fracs > 1", func(s *Spec) { s.HotFrac = 0.6; s.HotBytes = 1; s.WarmFrac = 0.6; s.WarmBytes = 1 }},
		{"unstable queue", func(s *Spec) { s.ServiceRate = 100; s.ArrivalRate = 100 }},
	}
	for _, m := range mutations {
		s := base()
		m.f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func mustByName(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteStrings(t *testing.T) {
	if SpecINT.String() != "SPEC_INT" || SpecFP.String() != "SPEC_FP" || Cloud.String() != "CloudSuite" {
		t.Error("suite names wrong")
	}
	if PatternRandom.String() != "random" || PatternStride.String() != "stride" || PatternMixed.String() != "mixed" {
		t.Error("pattern names wrong")
	}
}

func TestPrewarmFootprintRules(t *testing.T) {
	// Random patterns declare their main footprint.
	mcf := mustByName(t, "429.mcf")
	g := NewGen(mcf, 1)
	found := false
	for _, s := range g.PrewarmFootprint() {
		if s == mcf.FootprintBytes {
			found = true
		}
	}
	if !found {
		t.Error("random-pattern main footprint not declared")
	}
	// Long streams do not (no reuse before wraparound).
	lbm := mustByName(t, "470.lbm")
	g = NewGen(lbm, 1)
	for _, s := range g.PrewarmFootprint() {
		if s == lbm.FootprintBytes {
			t.Error("streaming main footprint declared resident")
		}
	}
	// Short-wrap strided regions do (h264ref's 512 KiB wraps quickly).
	h264 := mustByName(t, "464.h264ref")
	g = NewGen(h264, 1)
	found = false
	for _, s := range g.PrewarmFootprint() {
		if s == h264.FootprintBytes {
			found = true
		}
	}
	if !found {
		t.Error("short-wrap strided footprint not declared")
	}
}
