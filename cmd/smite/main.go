// Command smite is the command-line front end to the SMiTe methodology:
// list the stock application models, characterize an application with the
// Ruler suite, and predict (or actually measure) co-location degradations.
//
// Usage:
//
//	smite list
//	smite characterize -app 444.namd [-machine ivb|snb] [-placement smt|cmp] [-fast]
//	smite predict -victim web-search -aggressor 470.lbm [-fast]
//	smite measure -victim 444.namd -aggressor 429.mcf [-fast]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/smite"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels in-flight simulation work instead of leaving a long
	// characterization running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "characterize":
		err = characterize(ctx, os.Args[2:])
	case "predict":
		err = predict(ctx, os.Args[2:])
	case "measure":
		err = measure(ctx, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smite: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  smite list
  smite characterize -app <name> [-machine ivb|snb] [-placement smt|cmp] [-fast]
  smite predict -victim <name> -aggressor <name> [-fast]
  smite measure -victim <name> -aggressor <name> [-fast]`)
}

func list() error {
	fmt.Println("SPEC CPU2006:")
	for _, s := range smite.SPECWorkloads() {
		fmt.Printf("  %-16s %s\n", s.Name, s.Suite)
	}
	fmt.Println("CloudSuite (latency-sensitive):")
	for _, s := range smite.CloudWorkloads() {
		fmt.Printf("  %-16s %d threads, %g QPS/thread\n", s.Name, s.ThreadCount(), s.ServiceRate)
	}
	return nil
}

func commonFlags(fs *flag.FlagSet) (machine *string, placement *string, fast *bool) {
	machine = fs.String("machine", "ivb", "machine: ivb (i7-3770) or snb (Xeon E5-2420)")
	placement = fs.String("placement", "smt", "placement: smt or cmp")
	fast = fs.Bool("fast", false, "use reduced measurement windows")
	return
}

func newSystem(machine string, fast bool) (*smite.System, error) {
	opts := smite.DefaultOptions()
	if fast {
		opts = smite.FastOptions()
	}
	m := smite.IvyBridge
	if machine == "snb" {
		m = smite.SandyBridgeEN
	} else if machine != "ivb" {
		return nil, fmt.Errorf("unknown machine %q", machine)
	}
	return smite.New(m.Config(), smite.WithOptions(opts))
}

func parsePlacement(s string) (smite.Placement, error) {
	switch s {
	case "smt":
		return smite.SMT, nil
	case "cmp":
		return smite.CMP, nil
	}
	return smite.SMT, fmt.Errorf("unknown placement %q", s)
}

func characterize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	app := fs.String("app", "", "application name")
	machine, placementS, fast := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("characterize: -app is required")
	}
	spec, err := smite.WorkloadByName(*app)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	ch, err := sys.CharacterizeContext(ctx, spec, placement)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%v placement): solo IPC %.3f\n", ch.App, sys.Machine().Name, placement, ch.SoloIPC)
	fmt.Printf("%-16s %12s %12s\n", "dimension", "sensitivity", "contentiousness")
	for d := smite.Dimension(0); d < smite.NumDimensions; d++ {
		fmt.Printf("%-16s %11.2f%% %11.2f%%\n", d, ch.Sen[d]*100, ch.Con[d]*100)
	}
	return nil
}

// trainModel trains on the paper's even-numbered SPEC training set.
func trainModel(ctx context.Context, sys *smite.System, placement smite.Placement) (smite.Model, error) {
	train, _ := smite.TrainTestSplit()
	m, _, err := sys.TrainFromSetsContext(ctx, train, placement)
	return m, err
}

func predict(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	victim := fs.String("victim", "", "latency-sensitive / victim application")
	aggressor := fs.String("aggressor", "", "co-located batch / aggressor application")
	machine, placementS, fast := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("predict: -victim and -aggressor are required")
	}
	v, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	a, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	fmt.Println("training the prediction model on the even-numbered SPEC set...")
	m, err := trainModel(ctx, sys, placement)
	if err != nil {
		return err
	}
	chV, err := sys.CharacterizeContext(ctx, v, placement)
	if err != nil {
		return err
	}
	chA, err := sys.CharacterizeContext(ctx, a, placement)
	if err != nil {
		return err
	}
	deg := m.PredictPair(chV, chA)
	fmt.Printf("predicted degradation of %s next to %s (%v): %.2f%%\n", v.Name, a.Name, placement, deg*100)
	for _, target := range []float64{0.95, 0.90, 0.85} {
		verdict := "UNSAFE"
		if m.SafeColocation(chV, chA, target) {
			verdict = "safe"
		}
		fmt.Printf("  QoS target %.0f%%: %s\n", target*100, verdict)
	}
	return nil
}

func measure(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	victim := fs.String("victim", "", "victim application")
	aggressor := fs.String("aggressor", "", "aggressor application")
	machine, placementS, fast := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("measure: -victim and -aggressor are required")
	}
	v, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	a, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	pm, err := sys.MeasurePairContext(ctx, v, a, placement)
	if err != nil {
		return err
	}
	fmt.Printf("measured co-location (%v) on %s:\n", placement, sys.Machine().Name)
	fmt.Printf("  %-16s degrades %6.2f%%\n", pm.A, pm.DegA*100)
	fmt.Printf("  %-16s degrades %6.2f%%\n", pm.B, pm.DegB*100)
	return nil
}
