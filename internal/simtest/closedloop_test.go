package simtest

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// closedLoopConfig turns a seed's randomized cluster run into the
// drift-injection experiment: SLO parameters on, and the measured
// degradation surface tripling a third of the way through the horizon
// while the prediction table stays pre-drift.
func closedLoopConfig(t *testing.T, seed uint64) cluster.SimConfig {
	t.Helper()
	cfg := clusterSimConfig(t, seed)
	cfg.Policy = cluster.PolicyClosedLoop
	cfg.SLO = &cluster.SLOSimParams{
		Classes: []cluster.SLOSimClass{
			{Name: "critical", Budget: 0.020, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "standard", Budget: 0.060, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "sheddable", Budget: 0.150, Percentile: 0.90, Mu: 1000, Lambda: 700},
		},
		Headroom: 0.1,
	}
	cfg.Drift = &cluster.DriftSpec{At: cfg.Workload.Horizon / 3, Factor: 3}
	return cfg
}

// TestClosedLoopBeatsStaticSLO is the closed loop's success-metric law:
// under injected mid-run drift, the drift-detecting, re-characterizing,
// migrating policy must place strictly fewer actually-violating
// co-locations than the static SLO gate on identical event streams, on at
// least 18 of 20 seeds (the drifted surface drives violation accounting
// for both, so the comparison is apples-to-apples).
func TestClosedLoopBeatsStaticSLO(t *testing.T) {
	wins, ties := 0, 0
	for seed := uint64(0); seed < numSeeds; seed++ {
		cfg := closedLoopConfig(t, seed)
		events, err := cluster.GenerateEvents(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		loop, err := cluster.RunSim(context.Background(), cfg, events, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		static := cfg
		static.Policy = cluster.PolicySLO
		gate, err := cluster.RunSim(context.Background(), static, events, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch {
		case loop.Violations < gate.Violations:
			wins++
		case loop.Violations == gate.Violations:
			ties++
			t.Logf("seed %d: tie at %d violations (%d detections)", seed, loop.Violations, loop.Detections)
		default:
			t.Logf("seed %d: closed loop lost, %d vs %d violations (%d detections, %d migrations)",
				seed, loop.Violations, gate.Violations, loop.Detections, loop.Migrations)
		}
	}
	if wins < 18 {
		t.Errorf("closed loop beat the static SLO gate on %d/%d seeds (%d ties), want ≥18", wins, numSeeds, ties)
	}
}

// TestClosedLoopReplayDeterminism extends the replay law to the closed
// loop: detector state, re-characterizations and migrations are all
// shard-local and event-ordered, so a recorded drift run must replay bit
// for bit at sequential and 8-way fan-out.
func TestClosedLoopReplayDeterminism(t *testing.T) {
	for seed := uint64(0); seed < numSeeds; seed++ {
		cfg := closedLoopConfig(t, seed)
		events, err := cluster.GenerateEvents(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		orig, err := cluster.RunSim(context.Background(), cfg, events, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		var trace bytes.Buffer
		if err := cluster.WriteTrace(&trace, cfg, events); err != nil {
			t.Fatalf("seed %d: record: %v", seed, err)
		}
		rcfg, revents, err := cluster.ReadTrace(bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if rcfg.Drift == nil || rcfg.Drift.Factor != cfg.Drift.Factor {
			t.Fatalf("seed %d: drift spec lost in the trace round-trip", seed)
		}
		for _, workers := range []int{1, 8} {
			replay, err := cluster.RunSim(context.Background(), rcfg, revents, workers)
			if err != nil {
				t.Fatalf("seed %d: replay workers=%d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(orig, replay) {
				t.Errorf("seed %d: closed-loop replay at workers=%d diverged from recorded run", seed, workers)
			}
		}
	}
}
