// Package service models latency-sensitive WSC applications as queueing
// systems: each worker thread owns a per-thread FCFS queue (the Memcached
// arrangement the paper cites), so a service is k independent M/M/1 queues
// whose service rate scales with the thread's achieved performance.
//
// It connects the simulator world to the QoS world: a co-location
// degradation measured (or predicted) on the chip becomes a service-rate
// reduction, which becomes average and percentile latency.
package service

import (
	"fmt"

	"repro/internal/queueing"
	"repro/internal/workload"
)

// Service is one deployed latency-sensitive application.
type Service struct {
	// Name labels the service.
	Name string
	// Mu is the per-thread service rate and Lambda the per-thread offered
	// load (requests/second) at solo performance.
	Mu, Lambda float64
	// QoSPercentile is the percentile the service's latency SLO is
	// defined at (0.90 in the paper's experiments).
	QoSPercentile float64
	// ReportsPercentile mirrors the paper's note that Data-Serving and
	// Graph-Analytics do not export percentile statistics.
	ReportsPercentile bool
}

// FromSpec builds the Service for a latency-sensitive workload spec.
func FromSpec(spec *workload.Spec) (Service, error) {
	if !spec.LatencySensitive() {
		return Service{}, fmt.Errorf("service: %s is not latency-sensitive", spec.Name)
	}
	return Service{
		Name:              spec.Name,
		Mu:                spec.ServiceRate,
		Lambda:            spec.ArrivalRate,
		QoSPercentile:     0.90,
		ReportsPercentile: spec.ReportsPercentile,
	}, nil
}

// Queue returns the per-thread M/M/1 under a given degradation.
func (s Service) Queue(deg float64) queueing.MM1 {
	return queueing.MM1{Lambda: s.Lambda, Mu: (1 - deg) * s.Mu}
}

// PredictTail applies Equation 6: the closed-form percentile latency under
// a (predicted) degradation.
func (s Service) PredictTail(deg float64) float64 {
	return queueing.DegradedPercentile(s.QoSPercentile, s.Mu, s.Lambda, deg)
}

// BaselineTail is the solo percentile latency.
func (s Service) BaselineTail() float64 { return s.PredictTail(0) }

// MeasureTail "measures" the percentile latency under a degradation by
// running requests through the per-thread queue simulator — the measured
// side of the paper's Figure 13 comparison.
func (s Service) MeasureTail(deg float64, requests int, seed uint64) (float64, error) {
	q := s.Queue(deg)
	if err := q.Validate(); err != nil {
		return 0, fmt.Errorf("service: %s under deg=%.3f: %w", s.Name, deg, err)
	}
	res, err := q.Simulate(requests, seed)
	if err != nil {
		return 0, err
	}
	return res.Percentile(s.QoSPercentile), nil
}

// TailQoS expresses tail-latency QoS as the solo-to-degraded latency ratio
// (1.0 = unaffected, lower = worse). A saturated queue yields 0.
func (s Service) TailQoS(deg float64) float64 {
	t := s.PredictTail(deg)
	if t <= 0 {
		return 0
	}
	base := s.BaselineTail()
	q := base / t
	if q > 1 {
		q = 1
	}
	return q
}

// AvgQoS expresses average-performance QoS as retained performance 1−deg.
func AvgQoS(deg float64) float64 {
	q := 1 - deg
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
