package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func randomUop(rng *xrand.Rand) isa.Uop {
	u := isa.Uop{Kind: isa.UopKind(rng.Intn(int(isa.NumKinds)))}
	if rng.Bool(0.5) {
		u.Dep1 = uint16(rng.Intn(64))
	}
	if rng.Bool(0.3) {
		u.Dep2 = uint16(rng.Intn(64))
	}
	switch u.Kind {
	case isa.Load, isa.Store:
		u.Addr = rng.Uint64n(1 << 30)
	case isa.Branch:
		u.BrTag = rng.Uint32() % 4096
		u.Taken = rng.Bool(0.5)
	}
	u.ICacheMiss = rng.Bool(0.01)
	u.ITLBMiss = rng.Bool(0.01)
	return u
}

// Property: encode/decode round-trips arbitrary uop sequences.
func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw)%200 + 1
		in := make([]isa.Uop, n)
		for i := range in {
			in[i] = randomUop(rng)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := range in {
			if err := w.Write(&in[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("short header accepted")
	}
	if _, err := ReadAll(bytes.NewReader([]byte("XXXX\x01"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadAll(bytes.NewReader([]byte("SMTR\x09"))); err == nil {
		t.Error("future version accepted")
	}
	if _, err := ReadAll(bytes.NewReader([]byte{'S', 'M', 'T', 'R', 1, 200, 0})); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestCaptureFromWorkload(t *testing.T) {
	spec, err := workload.ByName("445.gobmk")
	if err != nil {
		t.Fatal(err)
	}
	uops := Capture(workload.NewGen(spec, 42), 5000)
	if len(uops) != 5000 {
		t.Fatalf("captured %d", len(uops))
	}
	// Capture is deterministic per seed.
	again := Capture(workload.NewGen(spec, 42), 5000)
	for i := range uops {
		if uops[i] != again[i] {
			t.Fatal("capture not deterministic")
		}
	}
}

func TestLoopedReplayWraps(t *testing.T) {
	uops := []isa.Uop{{Kind: isa.FPMul}, {Kind: isa.FPAdd}}
	s := NewStream(uops, true)
	var u isa.Uop
	for i := 0; i < 10; i++ {
		u = isa.Uop{}
		s.Next(&u)
		want := uops[i%2].Kind
		if u.Kind != want {
			t.Fatalf("replay %d: %v, want %v", i, u.Kind, want)
		}
	}
}

func TestUnloopedReplayPadsWithNops(t *testing.T) {
	s := NewStream([]isa.Uop{{Kind: isa.FPMul}}, false)
	var u isa.Uop
	s.Next(&u)
	u = isa.Uop{}
	s.Next(&u)
	if u.Kind != isa.Nop {
		t.Errorf("past-end uop = %v, want NOP", u.Kind)
	}
}

// A replayed trace drives the simulator just like the generator it was
// captured from: same IPC on the same machine.
func TestReplayMatchesGeneratorIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	spec, _ := workload.ByName("456.hmmer")

	run := func(s engine.Stream) float64 {
		chip := engine.MustNew(cfg)
		chip.Assign(0, 0, s)
		chip.Prewarm(20000)
		chip.Run(5000)
		chip.ResetCounters()
		chip.Run(15000)
		return chip.Counters(0, 0).IPC()
	}
	genIPC := run(workload.NewGen(spec, 42))

	// Capture enough uops to cover prewarm + the measured window, loop it.
	trace := Capture(workload.NewGen(spec, 42), 150_000)
	st := NewStream(trace, true)
	st.DeclareFootprint(spec.FootprintBytes)
	replayIPC := run(st)
	if diff := replayIPC - genIPC; diff > 0.05*genIPC || diff < -0.05*genIPC {
		t.Errorf("replay IPC %.3f differs from generator IPC %.3f", replayIPC, genIPC)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	u := isa.Uop{Kind: isa.IntAdd}
	for i := 0; i < 7; i++ {
		if err := w.Write(&u); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Errorf("count = %d", w.Count())
	}
}
