// Quickstart: characterize two applications with the Ruler suite, train
// the SMiTe model on a small application set, and compare its co-location
// prediction against the measured ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/smite"
)

func main() {
	// A System is one simulated SMT machine plus the measurement harness.
	// FastOptions keeps this example snappy; use DefaultOptions for the
	// paper-scale windows.
	sys, err := smite.New(smite.IvyBridge.Config(), smite.WithOptions(smite.FastOptions()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s\n\n", sys.Machine().Name)

	// Pick a compute-dense victim and a memory-hungry aggressor.
	namd, err := smite.WorkloadByName("444.namd")
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := smite.WorkloadByName("429.mcf")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: characterize each application once. This is the only
	// profiling SMiTe ever needs per application — no cross-product.
	fmt.Println("characterizing with the Ruler suite...")
	chNamd, err := sys.Characterize(namd, smite.SMT)
	if err != nil {
		log.Fatal(err)
	}
	chMcf, err := sys.Characterize(mcf, smite.SMT)
	if err != nil {
		log.Fatal(err)
	}
	printProfile(chNamd)
	printProfile(chMcf)

	// Step 2: train the Equation 3 model on the paper's training set
	// (even-numbered SPEC benchmarks; truncated here for speed).
	train, _ := smite.TrainTestSplit()
	train = train[:8]
	fmt.Printf("training on %d applications (%d co-location measurements)...\n",
		len(train), len(train)*(len(train)-1)/2)
	m, _, err := sys.TrainFromSets(train, smite.SMT)
	if err != nil {
		log.Fatal(err)
	}
	coef, c0 := m.Coefficients()
	fmt.Printf("model coefficients: %v, c0=%.4f\n\n", coef, c0)

	// Step 3: predict both directions of the co-location, then verify
	// against an actual co-located run.
	predNamd := m.PredictPair(chNamd, chMcf)
	predMcf := m.PredictPair(chMcf, chNamd)
	actual, err := sys.MeasurePair(namd, mcf, smite.SMT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-location namd | mcf on sibling SMT contexts:")
	fmt.Printf("  %-10s predicted %6.2f%%  measured %6.2f%%\n", "namd:", predNamd*100, actual.DegA*100)
	fmt.Printf("  %-10s predicted %6.2f%%  measured %6.2f%%\n", "mcf:", predMcf*100, actual.DegB*100)
	for _, target := range []float64{0.95, 0.90} {
		fmt.Printf("  safe for namd at %.0f%% QoS? %v\n", target*100, m.SafeColocation(chNamd, chMcf, target))
	}
}

func printProfile(ch smite.Characterization) {
	fmt.Printf("%s (solo IPC %.2f):\n", ch.App, ch.SoloIPC)
	for d := smite.Dimension(0); d < smite.NumDimensions; d++ {
		fmt.Printf("  %-14s sen %6.2f%%  con %6.2f%%\n", d, ch.Sen[d]*100, ch.Con[d]*100)
	}
	fmt.Println()
}
