package engine

import (
	"context"
	"testing"
)

// countingSampler records the chip cycles at which it was consulted.
type countingSampler struct {
	cycles []uint64
}

func (s *countingSampler) OnSample(c *Chip) { s.cycles = append(s.cycles, c.Cycle()) }
func (s *countingSampler) OnReset(c *Chip)  {}

// A sampler attached to RunContext must observe the chip at every slice
// boundary without perturbing results: counters and the chip clock stay
// bit-identical to an unsampled run over the same window, even under a
// background context (which otherwise takes the unsliced fast path).
func TestRunContextSamplerBitIdentical(t *testing.T) {
	const warmup, measure = 10_000, 2*runContextSlice + 777

	plain := runCtxChip(t)
	plain.Run(warmup)
	plain.ResetCounters()
	plain.Run(measure)

	sampled := runCtxChip(t)
	s := &countingSampler{}
	sampled.SetSampler(s)
	ctx := context.Background()
	if err := sampled.RunContext(ctx, warmup); err != nil {
		t.Fatal(err)
	}
	sampled.ResetCounters()
	if err := sampled.RunContext(ctx, measure); err != nil {
		t.Fatal(err)
	}

	if plain.Cycle() != sampled.Cycle() {
		t.Fatalf("chip clocks diverged: %d vs %d", plain.Cycle(), sampled.Cycle())
	}
	for ctxIdx := 0; ctxIdx < 2; ctxIdx++ {
		a, b := plain.Counters(0, ctxIdx), sampled.Counters(0, ctxIdx)
		if a != b {
			t.Errorf("context %d counters diverged:\nplain:   %+v\nsampled: %+v", ctxIdx, a, b)
		}
	}

	// warmup (10_000 < one slice) → 1 boundary; measure (2 full slices +
	// a partial) → 3 boundaries.
	if len(s.cycles) != 4 {
		t.Fatalf("sampler consulted %d times, want 4 (%v)", len(s.cycles), s.cycles)
	}
	for i := 1; i < len(s.cycles); i++ {
		if s.cycles[i] <= s.cycles[i-1] {
			t.Fatalf("sample cycles not strictly increasing: %v", s.cycles)
		}
	}
}

// Detaching the sampler restores the background fast path (no samples).
func TestSetSamplerDetach(t *testing.T) {
	chip := runCtxChip(t)
	s := &countingSampler{}
	chip.SetSampler(s)
	chip.SetSampler(nil)
	if err := chip.RunContext(context.Background(), 3*runContextSlice); err != nil {
		t.Fatal(err)
	}
	if len(s.cycles) != 0 {
		t.Fatalf("detached sampler still consulted: %v", s.cycles)
	}
}
