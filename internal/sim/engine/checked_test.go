package engine_test

import (
	"testing"

	"repro/internal/rulers"
	"repro/internal/sim/check"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

// TestEngineInvariantsUnderLoad drives every stock machine configuration
// with a mixed SMT load — application streams, a functional-unit Ruler and
// a bandwidth Ruler on sibling contexts — under the runtime invariant
// checker, and requires zero violations. This is the engine's standing
// guard against silent counter drift: any change to fetch, issue, retire or
// the hierarchy walk that breaks a conservation law fails here rather than
// shifting experiment results quietly.
func TestEngineInvariantsUnderLoad(t *testing.T) {
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	lbm, err := workload.ByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []isa.Config{isa.IvyBridge(), isa.SandyBridgeEN(), isa.Power7Like()} {
		cfg := cfg
		cfg.Cores = 2
		t.Run(cfg.Name, func(t *testing.T) {
			chip := engine.MustNew(cfg)
			k := check.Attach(chip, 333) // off-power-of-two so checks straddle window edges
			chip.Assign(0, 0, workload.NewGen(mcf, 17))
			chip.Assign(0, 1, rulers.MemBW(uint64(cfg.L3.SizeBytes)).NewStream(23))
			chip.Assign(1, 0, workload.NewGen(lbm, 29))
			chip.Assign(1, 1, rulers.IntAdd().NewStream(31))
			chip.Prewarm(60_000)
			chip.Run(10_000)
			chip.ResetCounters()
			chip.Run(25_000)
			if err := chip.CheckErr(); err != nil {
				t.Errorf("invariant violation: %v", err)
			}
			for _, v := range k.Violations {
				t.Errorf("violation: %v", v)
			}
			if k.Checks < 25_000/333 {
				t.Errorf("checker ran only %d times", k.Checks)
			}
		})
	}
}
