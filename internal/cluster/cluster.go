// Package cluster implements the paper's scale-out studies (Sections IV-C
// and IV-D): a warehouse-scale cluster whose servers each run a half-loaded
// latency-sensitive application (one thread per core, the sibling SMT
// contexts idle in the baseline), and a cluster scheduler that decides how
// many batch-application instances may be co-located on each server's idle
// contexts without violating the latency application's QoS target.
//
// Three policies are compared, as in the paper: SMiTe (predicted
// degradations steer admission), Oracle (measured degradations steer
// admission) and Random (interference-oblivious placement matched to
// SMiTe's utilisation gain, to expose the QoS violations prediction
// avoids).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/service"
	"repro/internal/xrand"
)

// Entry records the measured and predicted degradation of a latency
// application co-located with a number of batch-application instances.
type Entry struct {
	Actual    float64
	Predicted float64
}

// Table is the co-location degradation table driving a study: one Entry
// per (latency app, batch app, instance count 1..MaxInstances).
type Table struct {
	LatencyApps  []string
	BatchApps    []string
	MaxInstances int
	entries      map[string]Entry
}

func tkey(lat, batch string, n int) string { return fmt.Sprintf("%s|%s|%d", lat, batch, n) }

// NewTable builds an empty table.
func NewTable(latencyApps, batchApps []string, maxInstances int) *Table {
	return &Table{
		LatencyApps:  append([]string(nil), latencyApps...),
		BatchApps:    append([]string(nil), batchApps...),
		MaxInstances: maxInstances,
		entries:      make(map[string]Entry),
	}
}

// Set stores the entry for (lat, batch, n).
func (t *Table) Set(lat, batch string, n int, e Entry) {
	t.entries[tkey(lat, batch, n)] = e
}

// Get fetches the entry for (lat, batch, n); n == 0 returns zero
// degradations.
func (t *Table) Get(lat, batch string, n int) (Entry, error) {
	if n == 0 {
		return Entry{}, nil
	}
	e, ok := t.entries[tkey(lat, batch, n)]
	if !ok {
		return Entry{}, fmt.Errorf("cluster: no table entry for %s|%s|%d", lat, batch, n)
	}
	return e, nil
}

// Complete verifies every (lat, batch, 1..MaxInstances) entry is present.
func (t *Table) Complete() error {
	for _, l := range t.LatencyApps {
		for _, b := range t.BatchApps {
			for n := 1; n <= t.MaxInstances; n++ {
				if _, err := t.Get(l, b, n); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// The Predictor seam (predictor.go) supplies predicted degradations from
// outside the table — for example the qosd serving daemon, letting a
// study's SMiTe policy consult a live service instead of pre-baked
// predictions.

// QoSKind selects how QoS is defined.
type QoSKind int

const (
	// QoSAvg defines QoS as retained average performance (1 − degradation).
	QoSAvg QoSKind = iota
	// QoSTail defines QoS as the solo-to-degraded ratio of the service's
	// percentile latency, which shrinks super-linearly with degradation
	// because of queueing.
	QoSTail
)

// String names the QoS kind.
func (k QoSKind) String() string {
	if k == QoSAvg {
		return "average-performance"
	}
	return "tail-latency"
}

// PolicyKind selects the admission policy.
type PolicyKind int

const (
	// PolicySMiTe admits on predicted degradations.
	PolicySMiTe PolicyKind = iota
	// PolicyOracle admits on measured degradations.
	PolicyOracle
	// PolicyRandom places the same total number of instances as SMiTe
	// would, but on randomly chosen servers without consulting
	// predictions.
	PolicyRandom
	// PolicySLO admits on the error-bound-inflated Eq. 6 tail-latency
	// estimate against per-class budgets (SimConfig.SLO), mirroring
	// qosd's POST /v1/admit gate inside the discrete-event simulator.
	PolicySLO
	// PolicyClosedLoop starts from the PolicySLO gate and closes the loop
	// (DESIGN.md §14): each shard runs a drift detector over its observed
	// degradations, re-characterizes confirmed (lat, batch) pairs against
	// the measured surface, re-scores its admission gate, and migrates the
	// worst-offending machine's newest instance off the drifted cell.
	PolicyClosedLoop
	// PolicyIsolation starts from the PolicySLO gate but actuates hardware
	// QoS enforcement before migrating (DESIGN.md §15): a violating
	// co-location escalates its machine through the discrete isolation
	// ladder (SimConfig.Isol — way partitions and bandwidth throttles
	// abstracted to their modeled shielding), and only when no operating
	// point clears the class budget does the instance migrate away.
	PolicyIsolation
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicySMiTe:
		return "SMiTe"
	case PolicyOracle:
		return "Oracle"
	case PolicyRandom:
		return "Random"
	case PolicySLO:
		return "SLO"
	case PolicyClosedLoop:
		return "ClosedLoop"
	case PolicyIsolation:
		return "Isolation"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// Study describes one scale-out experiment.
type Study struct {
	// Table holds the co-location degradations.
	Table *Table
	// Services supplies queueing parameters for tail-latency QoS, keyed by
	// latency-application name (only needed for QoSTail).
	Services map[string]service.Service
	// ServersPerApp is the number of servers dedicated to each latency
	// application (1,000 in the paper, 4,000 servers total).
	ServersPerApp int
	// ThreadsPerServer is the latency application's thread count per
	// server (6: one per core, half-loading the 12-context servers).
	ThreadsPerServer int
	// ContextsPerServer is the total hardware contexts per server (12).
	ContextsPerServer int
	// Seed drives batch-application arrival randomness.
	Seed uint64
	// Predictor, when non-nil, replaces Table.Predicted as the source of
	// predicted degradations for admission. The Oracle policy still reads
	// measured values, and scoring always uses measured values — only the
	// prediction side is swappable.
	Predictor Predictor
}

// Result summarises one policy × QoS-target run.
type Result struct {
	Policy PolicyKind
	QoS    QoSKind
	Target float64

	// UtilizationGain is the relative increase in busy hardware contexts
	// over the no-co-location baseline (e.g. 0.42 = +42%).
	UtilizationGain float64
	// BaselineUtilization and Utilization are absolute context
	// utilisations before and after co-location.
	BaselineUtilization float64
	Utilization         float64
	// MeanInstances is the average number of batch instances per server.
	MeanInstances float64

	// ColocatedServers counts servers that received at least one batch
	// instance; ViolationFrac is the violating share of those (the paper's
	// server_violated/server_co-located); ViolationMean/Max the normalised
	// violation magnitudes ((target − actual)/target).
	ColocatedServers int
	ViolationFrac    float64
	ViolationMean    float64
	ViolationMax     float64

	// PerApp breaks utilisation gain down by latency application.
	PerApp map[string]float64
}

func (s *Study) validate() error {
	if s.Table == nil {
		return fmt.Errorf("cluster: study needs a table")
	}
	if err := s.Table.Complete(); err != nil {
		return err
	}
	if s.ServersPerApp <= 0 || s.ThreadsPerServer <= 0 || s.ContextsPerServer <= 0 {
		return fmt.Errorf("cluster: server geometry must be positive")
	}
	if s.ThreadsPerServer > s.ContextsPerServer {
		return fmt.Errorf("cluster: %d threads exceed %d contexts", s.ThreadsPerServer, s.ContextsPerServer)
	}
	if s.Table.MaxInstances > s.ContextsPerServer-s.ThreadsPerServer {
		return fmt.Errorf("cluster: %d instances exceed %d idle contexts", s.Table.MaxInstances, s.ContextsPerServer-s.ThreadsPerServer)
	}
	return nil
}

// qosOf maps a degradation to QoS under the study's definition.
func (s *Study) qosOf(kind QoSKind, lat string, deg float64) (float64, error) {
	return qosValue(kind, s.Services, lat, deg)
}

// server is one placement decision.
type server struct {
	lat   string
	batch string
	n     int
}

// Run executes the study for one policy at one QoS target.
func (s *Study) Run(policy PolicyKind, qos QoSKind, target float64) (Result, error) {
	if err := s.validate(); err != nil {
		return Result{}, err
	}
	if target <= 0 || target > 1 {
		return Result{}, fmt.Errorf("cluster: QoS target %.3f outside (0,1]", target)
	}

	// Deterministic batch-application arrival per server.
	rng := xrand.New(s.Seed ^ 0xC1A5)
	servers := make([]server, 0, len(s.Table.LatencyApps)*s.ServersPerApp)
	for _, lat := range s.Table.LatencyApps {
		for i := 0; i < s.ServersPerApp; i++ {
			b := s.Table.BatchApps[rng.Intn(len(s.Table.BatchApps))]
			servers = append(servers, server{lat: lat, batch: b})
		}
	}

	// Admission: the predictive policies choose the largest instance count
	// whose (predicted or measured) QoS stays within target.
	admit := func(sv *server, useActual bool) error {
		best := 0
		for n := 1; n <= s.Table.MaxInstances; n++ {
			e, err := s.Table.Get(sv.lat, sv.batch, n)
			if err != nil {
				return err
			}
			d := e.Predicted
			if useActual {
				d = e.Actual
			} else if s.Predictor != nil {
				pred, err := s.Predictor.Predict(sv.lat, sv.batch, n)
				if err != nil {
					return err
				}
				d = pred.Deg
			}
			q, err := s.qosOf(qos, sv.lat, d)
			if err != nil {
				return err
			}
			if q >= target {
				best = n
			}
		}
		sv.n = best
		return nil
	}

	switch policy {
	case PolicySMiTe, PolicyOracle:
		for i := range servers {
			if err := admit(&servers[i], policy == PolicyOracle); err != nil {
				return Result{}, err
			}
		}
	case PolicyRandom:
		// Match SMiTe's utilisation: compute SMiTe's choices, then deal the
		// same multiset of instance counts to random servers.
		counts := make([]int, len(servers))
		for i := range servers {
			if err := admit(&servers[i], false); err != nil {
				return Result{}, err
			}
			counts[i] = servers[i].n
		}
		perm := rng.Perm(len(counts))
		for i := range servers {
			servers[i].n = counts[perm[i]]
		}
	default:
		return Result{}, fmt.Errorf("cluster: unknown policy %d", policy)
	}

	return s.score(policy, qos, target, servers)
}

func (s *Study) score(policy PolicyKind, qos QoSKind, target float64, servers []server) (Result, error) {
	res := Result{
		Policy: policy, QoS: qos, Target: target,
		PerApp: make(map[string]float64),
	}
	perAppInstances := make(map[string]int)
	total := 0
	violations := 0
	var violSum, violMax float64
	for _, sv := range servers {
		total += sv.n
		perAppInstances[sv.lat] += sv.n
		if sv.n == 0 {
			continue
		}
		res.ColocatedServers++
		e, err := s.Table.Get(sv.lat, sv.batch, sv.n)
		if err != nil {
			return Result{}, err
		}
		q, err := s.qosOf(qos, sv.lat, e.Actual)
		if err != nil {
			return Result{}, err
		}
		if q < target {
			violations++
			m := (target - q) / target
			violSum += m
			if m > violMax {
				violMax = m
			}
		}
	}
	nServers := len(servers)
	busyBase := float64(s.ThreadsPerServer * nServers)
	res.BaselineUtilization = busyBase / float64(s.ContextsPerServer*nServers)
	res.Utilization = (busyBase + float64(total)) / float64(s.ContextsPerServer*nServers)
	res.UtilizationGain = float64(total) / busyBase
	res.MeanInstances = float64(total) / float64(nServers)
	for app, n := range perAppInstances {
		res.PerApp[app] = float64(n) / float64(s.ThreadsPerServer*s.ServersPerApp)
	}
	if res.ColocatedServers > 0 {
		res.ViolationFrac = float64(violations) / float64(res.ColocatedServers)
		if violations > 0 {
			res.ViolationMean = violSum / float64(violations)
		}
	}
	res.ViolationMax = violMax
	return res, nil
}

// BatchAbsorbed returns how many dedicated batch servers the co-located
// instances replace, assuming a dedicated batch server runs one instance
// per core (ThreadsPerServer instances).
func (s *Study) BatchAbsorbed(r Result) float64 {
	totalInstances := r.MeanInstances * float64(len(s.Table.LatencyApps)*s.ServersPerApp)
	return totalInstances / float64(s.ThreadsPerServer)
}

// SortedApps returns the per-app keys of a result in stable order.
func (r Result) SortedApps() []string {
	out := make([]string, 0, len(r.PerApp))
	for a := range r.PerApp {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
