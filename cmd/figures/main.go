// Command figures regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and prints the results as
// text tables (the per-experiment index lives in DESIGN.md).
//
// Usage:
//
//	figures [-scale full|test] [-fig all|table1|2|3|6|7|9|10|11|12|13|14|16|18]
//
// At -scale full the run uses the paper's experiment sizes (all 29 SPEC
// benchmarks, 4 CloudSuite applications, 4,000-server cluster) and takes
// several minutes; -scale test runs reduced sizes in seconds. Ctrl-C
// cancels the in-flight experiment; figures already printed stay printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "test", "experiment scale: full or test")
	figFlag := flag.String("fig", "all", "comma-separated figure ids (table1,2,3,4,6,7,9,10,11,12,13,14,16,18,ablation,crossmachine) or all")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale()
	case "test":
		scale = experiments.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q (want full or test)\n", *scaleFlag)
		os.Exit(2)
	}
	lab := experiments.NewLab(scale)

	// A long -scale full run should die cleanly on Ctrl-C: the signal
	// context cancels the in-flight simulations and the completed figures
	// already flushed to stdout are the partial result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	want := map[string]bool{}
	for _, f := range strings.Split(*figFlag, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	type step struct {
		id  string
		run func(context.Context) (fmt.Stringer, error)
	}
	steps := []step{
		{"table1", func(context.Context) (fmt.Stringer, error) { return lab.Table1(), nil }},
		{"2", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig2FunctionalUnitsContext(ctx) }},
		{"3", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig3And5PortUtilizationContext(ctx) }},
		{"4", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig4MemorySubsystemContext(ctx) }},
		{"6", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig6SummaryContext(ctx) }},
		{"7", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig7CorrelationContext(ctx) }},
		{"9", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig9RulerValidationContext(ctx) }},
		{"10", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig10SpecSMTContext(ctx) }},
		{"11", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig11SpecCMPContext(ctx) }},
		{"12", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig12CloudSuiteContext(ctx) }},
		{"13", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig13TailLatencyContext(ctx) }},
		{"14", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig14And15AvgQoSContext(ctx) }},
		{"16", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig16And17TailQoSContext(ctx) }},
		{"18", func(ctx context.Context) (fmt.Stringer, error) { return lab.Fig18TCOContext(ctx) }},
		{"ablation", func(ctx context.Context) (fmt.Stringer, error) { return lab.ModelAblationContext(ctx) }},
		{"crossmachine", func(ctx context.Context) (fmt.Stringer, error) { return lab.CrossMachineContext(ctx) }},
	}
	ran := 0
	for _, s := range steps {
		if !sel(s.id) {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		res, err := s.run(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				break
			}
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", s.id, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %v]\n\n", s.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "figures: interrupted after %d figure(s); printed results are complete\n", ran)
		os.Exit(130)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: no figure matched %q\n", *figFlag)
		os.Exit(2)
	}
}
