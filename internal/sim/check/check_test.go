package check_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/check"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

func twoCoreIVB() isa.Config {
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	return cfg
}

// runWorkload assigns streams and runs warmup + a measured window with the
// checker attached, mimicking a profile run.
func runWorkload(t *testing.T, cfg isa.Config, assign func(*engine.Chip)) (*engine.Chip, *check.Checker) {
	t.Helper()
	chip := engine.MustNew(cfg)
	k := check.Attach(chip, 512)
	assign(chip)
	chip.Prewarm(40_000)
	chip.Run(8_000)
	chip.ResetCounters()
	chip.Run(20_000)
	return chip, k
}

// TestCleanEngineHasNoViolations runs representative workload mixtures —
// solo, SMT co-location with a cache Ruler, and a bandwidth-bound pair —
// and requires the seed engine to satisfy every invariant.
func TestCleanEngineHasNoViolations(t *testing.T) {
	cfg := twoCoreIVB()
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	lbm, err := workload.ByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		assign func(chip *engine.Chip)
	}{
		{"solo", func(chip *engine.Chip) {
			chip.Assign(0, 0, workload.NewGen(mcf, 7))
		}},
		{"smt-vs-ruler", func(chip *engine.Chip) {
			chip.Assign(0, 0, workload.NewGen(mcf, 7))
			chip.Assign(0, 1, rulers.L2(uint64(cfg.L2.SizeBytes)).NewStream(11))
		}},
		{"bandwidth-pair", func(chip *engine.Chip) {
			chip.Assign(0, 0, workload.NewGen(lbm, 3))
			chip.Assign(0, 1, rulers.MemBW(uint64(cfg.L3.SizeBytes)).NewStream(5))
			chip.Assign(1, 0, workload.NewGen(lbm, 9))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chip, k := runWorkload(t, cfg, tc.assign)
			if err := chip.CheckErr(); err != nil {
				t.Errorf("invariant violation: %v", err)
			}
			for _, v := range k.Violations {
				t.Errorf("violation: %v", v)
			}
			if k.Checks == 0 {
				t.Fatal("checker never ran")
			}
		})
	}
}

// TestCheckerCatchesInjectedDrift corrupts the retired-instruction counter
// mid-run — the silent-drift failure mode the verification layer exists to
// catch — and requires a structured uop-conservation violation naming the
// counter, core and context.
func TestCheckerCatchesInjectedDrift(t *testing.T) {
	cfg := twoCoreIVB()
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	chip := engine.MustNew(cfg)
	check.Attach(chip, 256)
	chip.Assign(0, 0, workload.NewGen(mcf, 7))
	chip.Run(2_000)
	if err := chip.CheckErr(); err != nil {
		t.Fatalf("violation before corruption: %v", err)
	}
	chip.CorruptCounterForTest(0, 0, +50)
	chip.Run(2_000)
	err = chip.CheckErr()
	if err == nil {
		t.Fatal("checker missed injected counter drift")
	}
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("violation is not structured: %T %v", err, err)
	}
	if v.Invariant != "uop-conservation" || v.Counter != "Instructions" {
		t.Errorf("wrong attribution: invariant %q counter %q", v.Invariant, v.Counter)
	}
	if v.Core != 0 || v.Context != 0 {
		t.Errorf("wrong location: core %d ctx %d", v.Core, v.Context)
	}
	if v.Cycle == 0 {
		t.Error("violation has no cycle")
	}
	for _, frag := range []string{"uop-conservation", "cycle", "core 0 ctx 0", "Instructions"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("violation message %q missing %q", err.Error(), frag)
		}
	}
}

// TestCheckerCatchesBackwardDrift injects a counter decrease and requires
// a monotonicity violation.
func TestCheckerCatchesBackwardDrift(t *testing.T) {
	cfg := twoCoreIVB()
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	chip := engine.MustNew(cfg)
	check.Attach(chip, 256)
	chip.Assign(0, 0, workload.NewGen(mcf, 7))
	chip.Run(2_000)
	chip.CorruptCounterForTest(0, 0, -40)
	chip.Run(2_000)
	err = chip.CheckErr()
	if err == nil {
		t.Fatal("checker missed backward counter drift")
	}
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("violation is not structured: %T %v", err, err)
	}
	if v.Invariant != "pmu-monotonicity" || v.Counter != "Instructions" {
		t.Errorf("wrong attribution: invariant %q counter %q", v.Invariant, v.Counter)
	}
}

// TestProfileCheckOption runs the standard characterization path with the
// checker enabled through profile.Options and expects zero violations.
func TestProfileCheckOption(t *testing.T) {
	opts := profile.FastOptions()
	opts.Check = true
	opts.CheckInterval = 512
	cfg := twoCoreIVB()
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := profile.Solo(cfg, profile.App(mcf), opts); err != nil {
		t.Errorf("checked solo run failed: %v", err)
	}
	r := rulers.For(cfg, rulers.DimL3)
	if _, err := profile.Colocate(cfg, profile.App(mcf), profile.Rulers(r, 1), profile.SMT, opts); err != nil {
		t.Errorf("checked SMT co-location failed: %v", err)
	}
	if _, err := profile.Colocate(cfg, profile.App(mcf), profile.Rulers(r, 1), profile.CMP, opts); err != nil {
		t.Errorf("checked CMP co-location failed: %v", err)
	}
}

// TestCheckerSurvivesReassignment exercises the OnReset path: reusing a
// chip across Assign/ResetCounters cycles must not produce spurious
// violations.
func TestCheckerSurvivesReassignment(t *testing.T) {
	cfg := twoCoreIVB()
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	chip := engine.MustNew(cfg)
	k := check.Attach(chip, 200)
	for round := 0; round < 3; round++ {
		chip.Assign(0, 0, workload.NewGen(mcf, uint64(round)+1))
		if round%2 == 1 {
			chip.Assign(0, 1, rulers.IntAdd().NewStream(uint64(round)))
		} else {
			chip.Assign(0, 1, nil)
		}
		chip.Run(1_500)
		chip.ResetCounters()
		chip.Run(1_500)
		if err := chip.CheckErr(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if k.Checks == 0 {
		t.Fatal("checker never ran")
	}
}
