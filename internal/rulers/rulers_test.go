package rulers

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/isa"
)

func TestStandardSetCoversAllDimensions(t *testing.T) {
	cfg := isa.IvyBridge()
	set := StandardSet(cfg)
	if len(set) != int(NumDimensions) {
		t.Fatalf("standard set has %d rulers, want %d", len(set), NumDimensions)
	}
	seen := make(map[Dimension]bool)
	for _, r := range set {
		if seen[r.Dim] {
			t.Errorf("dimension %v duplicated", r.Dim)
		}
		seen[r.Dim] = true
		if r.Intensity != 1 {
			t.Errorf("%s intensity %g, want 1", r.Name, r.Intensity)
		}
	}
}

func TestMemoryRulersSizedToCaches(t *testing.T) {
	cfg := isa.IvyBridge()
	if got := For(cfg, DimL1).FootprintBytes(); got != uint64(cfg.L1D.SizeBytes) {
		t.Errorf("L1 ruler footprint %d, want %d", got, cfg.L1D.SizeBytes)
	}
	if got := For(cfg, DimL2).FootprintBytes(); got != uint64(cfg.L2.SizeBytes) {
		t.Errorf("L2 ruler footprint %d", got)
	}
	if got := For(cfg, DimL3).FootprintBytes(); got != uint64(cfg.L3.SizeBytes) {
		t.Errorf("L3 ruler footprint %d", got)
	}
}

func TestFunctionalUnitRulersTargetKinds(t *testing.T) {
	cases := []struct {
		r    *Ruler
		kind isa.UopKind
	}{
		{FPMul(), isa.FPMul},
		{FPAdd(), isa.FPAdd},
		{FPShf(), isa.FPShuf},
		{IntAdd(), isa.IntAdd},
	}
	for _, c := range cases {
		if c.r.TargetKind() != c.kind {
			t.Errorf("%s targets %v", c.r.Name, c.r.TargetKind())
		}
	}
}

// A full-intensity functional-unit Ruler emits only its target kind with no
// dependencies — the paper's dependency-free unrolled loop.
func TestFUStreamPurity(t *testing.T) {
	s := FPAdd().NewStream(1)
	var u isa.Uop
	for i := 0; i < 10000; i++ {
		u = isa.Uop{}
		s.Next(&u)
		if u.Kind != isa.FPAdd {
			t.Fatalf("uop %d has kind %v", i, u.Kind)
		}
		if u.Dep1 != 0 || u.Dep2 != 0 {
			t.Fatalf("uop %d carries dependencies", i)
		}
	}
}

// A diluted functional-unit Ruler still emits only its target uop — no nop
// filler, which would steal shared front-end bandwidth instead of port
// bandwidth — but chains a fraction 1-intensity of uops onto their
// predecessor to throttle the unit's issue rate.
func TestFUStreamIntensityDutyCycle(t *testing.T) {
	s := FPMul().WithIntensity(0.3).NewStream(2)
	var u isa.Uop
	independent := 0
	const n = 100000
	for i := 0; i < n; i++ {
		u = isa.Uop{}
		s.Next(&u)
		if u.Kind != isa.FPMul {
			t.Fatalf("unexpected kind %v", u.Kind)
		}
		switch u.Dep1 {
		case 0:
			independent++
		case 1:
		default:
			t.Fatalf("uop %d chained at distance %d, want 1", i, u.Dep1)
		}
	}
	frac := float64(independent) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("independent fraction %.3f, want ~0.30", frac)
	}
}

// The memory Ruler reproduces Fig. 9(e)'s increment semantics: each load is
// followed by a dependent store to the same address, within the footprint.
func TestMemStreamIncrementSemantics(t *testing.T) {
	r := L2(256 << 10)
	s := r.NewStream(3)
	var u isa.Uop
	for i := 0; i < 10000; i++ {
		u = isa.Uop{}
		s.Next(&u)
		if u.Kind != isa.Load {
			t.Fatalf("pair %d did not start with a load (%v)", i, u.Kind)
		}
		if u.Addr >= r.FootprintBytes() {
			t.Fatalf("address %#x outside footprint", u.Addr)
		}
		loadAddr := u.Addr
		u = isa.Uop{}
		s.Next(&u)
		if u.Kind != isa.Store || u.Addr != loadAddr || u.Dep1 != 1 {
			t.Fatalf("pair %d store = %+v, want dependent store to %#x", i, u, loadAddr)
		}
	}
}

// The literal Fig. 9(f) stride Ruler alternates halves with a 64-byte
// stride.
func TestStrideL3Pattern(t *testing.T) {
	r := StrideL3(8 << 20)
	s := r.NewStream(1)
	half := r.FootprintBytes() / 2
	var u isa.Uop
	sawLow, sawHigh := false, false
	for i := 0; i < 4000; i++ {
		u = isa.Uop{}
		s.Next(&u)
		if u.Kind == isa.Load || u.Kind == isa.Store {
			if u.Addr < half {
				sawLow = true
			} else {
				sawHigh = true
			}
			if u.Addr%64 != 0 {
				t.Fatalf("stride address %#x not line-aligned", u.Addr)
			}
		}
	}
	if !sawLow || !sawHigh {
		t.Error("Fig. 9(f) ruler did not alternate between chunk halves")
	}
}

func TestWithIntensityDutyCyclesMemRuler(t *testing.T) {
	r := L3(8 << 20).WithIntensity(0.5)
	s := r.NewStream(1).(*memStream)
	if s.footBytes != 8<<20 {
		t.Errorf("footprint changed to %d; intensity must not rescale it", s.footBytes)
	}
	if r.Name != "L3@0.50" {
		t.Errorf("name = %q", r.Name)
	}
	// Increment semantics survive dilution — every uop is still a load/store
	// pair — and roughly half the loads chain onto the previous load
	// (distance 2) to throttle the access rate.
	var u isa.Uop
	independent, chained := 0, 0
	for i := 0; i < 40000; i++ {
		u = isa.Uop{}
		s.Next(&u)
		switch u.Kind {
		case isa.Load:
			switch u.Dep1 {
			case 0:
				independent++
			case 2:
				chained++
			default:
				t.Fatalf("load %d chained at distance %d, want 2", i, u.Dep1)
			}
		case isa.Store:
		default:
			t.Fatalf("unexpected kind %v", u.Kind)
		}
	}
	frac := float64(independent) / float64(independent+chained)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("independent fraction %.3f, want ~0.5", frac)
	}
}

// Property: intensity is clamped into (0, 1].
func TestWithIntensityClamps(t *testing.T) {
	if err := quick.Check(func(x float64) bool {
		r := FPAdd().WithIntensity(x)
		return r.Intensity > 0 && r.Intensity <= 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMemStreamDeterminism(t *testing.T) {
	a := L1(32 << 10).NewStream(7)
	b := L1(32 << 10).NewStream(7)
	var ua, ub isa.Uop
	for i := 0; i < 1000; i++ {
		ua, ub = isa.Uop{}, isa.Uop{}
		a.Next(&ua)
		b.Next(&ub)
		if ua != ub {
			t.Fatal("same-seed mem streams diverged")
		}
	}
}

func TestDimensionNames(t *testing.T) {
	if DimFPMul.String() != "FP_MUL(P0)" || DimL3.String() != "L3" {
		t.Error("dimension names wrong")
	}
	if !DimL1.IsMemory() || DimIntAdd.IsMemory() {
		t.Error("IsMemory wrong")
	}
	if len(Dimensions()) != int(NumDimensions) {
		t.Error("Dimensions() wrong length")
	}
}

func TestPrewarmFootprintDeclared(t *testing.T) {
	s := L3(8 << 20).NewStream(1)
	fd, ok := s.(interface{ PrewarmFootprint() []uint64 })
	if !ok {
		t.Fatal("memory ruler stream does not declare its footprint")
	}
	sizes := fd.PrewarmFootprint()
	if len(sizes) != 1 || sizes[0] != 8<<20 {
		t.Errorf("declared %v", sizes)
	}
}
