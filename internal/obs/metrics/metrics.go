// Package metrics is a typed, dependency-free metrics registry with
// OpenMetrics text exposition.
//
// It supports the three instrument kinds the serving layer needs:
//
//   - Counter / CounterVec: monotonically increasing uint64 counts,
//     optionally split by a fixed label set.
//   - Gauge / GaugeFunc: a settable float64, or a callback sampled at
//     exposition time (for values the owner already tracks, e.g. registry
//     sizes or cache hit counts).
//   - Histogram: fixed-bound cumulative buckets with sum and count,
//     le-semantics identical to OpenMetrics (a value equal to a bound
//     falls into that bound's bucket).
//
// All instruments are safe for concurrent use and update via atomics;
// exposition takes a point-in-time snapshot. Instrument registration is
// get-or-create: asking for an existing name with a matching kind returns
// the prior instrument, while a kind or label mismatch panics — metric
// names are code-level constants, so a mismatch is a programming error.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed le-buckets.
type Histogram struct {
	bounds  []float64 // strictly increasing; +Inf is implicit
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v; if none, the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound float64 // math.Inf(1) for the last bucket
	Count      uint64  // observations <= UpperBound
}

// HistogramSnapshot is a point-in-time histogram view.
type HistogramSnapshot struct {
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Snapshot returns cumulative bucket counts, the sum and the total count.
// Concurrent Observe calls may land between field reads; each field is
// itself consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.bounds)+1),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Count:   h.count.Load(),
	}
	var cum uint64
	for i := range s.Buckets {
		cum += h.buckets[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: bound, Count: cum}
	}
	return s
}

// CounterVec is a family of counters split by a fixed set of label names.
type CounterVec struct {
	labels []string

	mu     sync.Mutex
	series map[string]*Counter // key: label values joined by 0xff
	order  []string            // insertion order of keys, for Snapshot
	values map[string][]string
}

// With returns the counter for the given label values, creating it on first
// use. The number of values must match the label names the vec was
// registered with.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: CounterVec.With got %d label values, want %d", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.series[key]
	if !ok {
		c = &Counter{}
		v.series[key] = c
		v.order = append(v.order, key)
		vals := make([]string, len(values))
		copy(vals, values)
		v.values[key] = vals
	}
	return c
}

// LabeledCount is one (labels, count) series of a CounterVec.
type LabeledCount struct {
	Labels []string // values, aligned with the vec's label names
	Count  uint64
}

// Snapshot returns all series sorted by label values.
func (v *CounterVec) Snapshot() []LabeledCount {
	v.mu.Lock()
	out := make([]LabeledCount, 0, len(v.order))
	for _, key := range v.order {
		out = append(out, LabeledCount{Labels: v.values[key], Count: v.series[key].Value()})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Labels, out[j].Labels
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// LabelNames returns the label names the vec was registered with.
func (v *CounterVec) LabelNames() []string { return v.labels }

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterVec
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type entry struct {
	kind metricKind
	help string

	counter   *Counter
	vec       *CounterVec
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// Registry holds named instruments and renders them as OpenMetrics text.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) get(name, help string, kind metricKind) (*entry, bool) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	e, ok := r.entries[name]
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q already registered with a different kind", name))
		}
		return e, true
	}
	e = &entry{kind: kind, help: help}
	r.entries[name] = e
	return e, false
}

// Counter returns the counter registered under name, creating it if needed.
// Counter names should not carry the _total suffix; exposition adds it.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.get(name, help, kindCounter)
	if !ok {
		e.counter = &Counter{}
	}
	return e.counter
}

// CounterVec returns the labelled counter family registered under name,
// creating it if needed. Label names must match on repeat registration.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("metrics: CounterVec needs at least one label name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.get(name, help, kindCounterVec)
	if !ok {
		labels := make([]string, len(labelNames))
		copy(labels, labelNames)
		e.vec = &CounterVec{
			labels: labels,
			series: make(map[string]*Counter),
			values: make(map[string][]string),
		}
	} else if strings.Join(e.vec.labels, "\xff") != strings.Join(labelNames, "\xff") {
		panic(fmt.Sprintf("metrics: %q already registered with labels %v", name, e.vec.labels))
	}
	return e.vec
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.get(name, help, kindGauge)
	if !ok {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers fn to be sampled at exposition time. Re-registering
// the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if fn == nil {
		panic("metrics: GaugeFunc requires a non-nil callback")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, _ := r.get(name, help, kindGaugeFunc)
	e.gaugeFn = fn
}

// Histogram returns the histogram registered under name, creating it with
// the given strictly increasing bucket bounds. Bounds must match on repeat
// registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: Histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly increasing: %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.get(name, help, kindHistogram)
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		e.histogram = &Histogram{
			bounds:  b,
			buckets: make([]atomic.Uint64, len(b)+1),
		}
	} else if len(e.histogram.bounds) != len(bounds) {
		panic(fmt.Sprintf("metrics: %q already registered with different bounds", name))
	} else {
		for i, b := range bounds {
			if e.histogram.bounds[i] != b {
				panic(fmt.Sprintf("metrics: %q already registered with different bounds", name))
			}
		}
	}
	return e.histogram
}
