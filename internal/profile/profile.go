// Package profile implements SMiTe's characterization methodology
// (Section III-B): placing applications and Rulers on the simulated chip,
// measuring solo and co-located IPCs, and extracting per-dimension
// sensitivity and contentiousness vectors (Equations 1 and 2):
//
//	Sen_i^A = (IPC_solo^A − IPC_co/Ruler_i^A) / IPC_solo^A
//	Con_i^A = (IPC_solo^Ruler_i − IPC_co/A^Ruler_i) / IPC_solo^Ruler_i
//
// The same machinery measures ground-truth degradations for arbitrary
// application pairs (Equation 7), in both SMT placement (sibling hardware
// contexts of one core) and CMP placement (separate cores sharing only the
// L3 and memory bandwidth), including the half-loaded multithreaded
// CloudSuite arrangements of Section IV-B2.
package profile

import (
	"context"
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
	"repro/internal/rulers"
	"repro/internal/sched"
	"repro/internal/sim/check"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// Placement selects how co-runners share the chip.
type Placement int

const (
	// SMT places co-runners on sibling hardware contexts of the same
	// core(s): all on-core resources are shared.
	SMT Placement = iota
	// CMP places co-runners on distinct cores: only the L3 and memory
	// bandwidth are shared.
	CMP
)

// String names the placement.
func (p Placement) String() string {
	if p == SMT {
		return "SMT"
	}
	return "CMP"
}

// Options control measurement windows and reproducibility.
type Options struct {
	// PrewarmUops functionally executes this many micro-ops per context to
	// install data footprints before timing starts.
	PrewarmUops int
	// WarmupCycles run timed but unmeasured (pipeline and small-structure
	// warm-up); MeasureCycles are the measurement window.
	WarmupCycles  uint64
	MeasureCycles uint64
	// BaseSeed decorrelates repeated studies; everything derived from it
	// is deterministic.
	BaseSeed uint64
	// Parallelism bounds the worker pool (internal/sched) that fans
	// characterization and pair-measurement cells across CPUs
	// (0 = GOMAXPROCS). Results are bit-identical at any value — the
	// scheduler's reduction is index-ordered — so this is purely a
	// throughput/footprint knob.
	Parallelism int
	// Progress, when non-nil, receives batch progress from the scheduled
	// helpers (CharacterizeAll, MeasurePairs and their Context forms):
	// done counts completed simulation cells of the current batch, total
	// the batch's cell count. It may be invoked concurrently from worker
	// goroutines; done is monotone per batch but calls can arrive out of
	// order. Excluded from cache keys — it never influences results.
	Progress func(done, total int)
	// Check attaches the runtime invariant checker (internal/sim/check) to
	// every chip this Options drives: run results are validated against the
	// engine's conservation laws every CheckInterval cycles, and a
	// violation fails the run with a structured error. Costs a few percent
	// of simulation time; meant for tests and verification sweeps.
	Check bool
	// CheckInterval is the cycle distance between invariant checks
	// (0 = engine default, 1024).
	CheckInterval uint64
	// Cache, when non-nil, memoises run results across identical
	// (config, job, partner, placement, options) tuples. Only jobs that
	// implement Fingerprinter participate; others always simulate. The
	// cache may be shared across profilers and goroutines.
	Cache *simcache.Cache[RunResult]
	// Sampler, when non-nil, is attached to every chip this Options drives
	// (engine.SetSampler): the timeline recorder observes PMU deltas at
	// each RunContext slice boundary. Sampling is read-only, so results are
	// bit-identical with or without it, but a sampled run always simulates
	// — the cache is bypassed, since a cache hit would produce no samples.
	// Excluded from cache keys for the same reason Progress is. Note that
	// a shared Sampler receives samples from every run under this Options;
	// attach it to a dedicated Options value to isolate one co-location.
	Sampler engine.Sampler
}

// cacheKey canonically identifies a run for memoisation, or ok=false when
// either job cannot be fingerprinted (e.g. closure-backed StreamJobs).
// Cache, Parallelism and Progress are excluded: none influences the
// result (and a func field would print as a run-variable pointer).
// Check/CheckInterval stay in the key so a checked run is never silently
// satisfied by an unchecked one.
func cacheKey(cfg isa.Config, job, partner Job, placement Placement, opts Options) (simcache.Key, bool) {
	jf, ok := fingerprint(job)
	if !ok {
		return simcache.Key{}, false
	}
	pf := "<solo>"
	if partner != nil {
		if pf, ok = fingerprint(partner); !ok {
			return simcache.Key{}, false
		}
	}
	opts.Cache = nil
	opts.Parallelism = 0
	opts.Progress = nil
	opts.Sampler = nil
	return simcache.KeyOf("profile.run/v1", cfg, placement, jf, pf, opts), true
}

// Fingerprinter is implemented by Jobs whose behavior is fully determined
// by printable value state; only such jobs are eligible for simcache
// memoisation. The string must change whenever NewStream's behavior would.
type Fingerprinter interface {
	Fingerprint() string
}

func fingerprint(j Job) (string, bool) {
	f, ok := j.(Fingerprinter)
	if !ok {
		return "", false
	}
	return f.Fingerprint(), true
}

// DefaultOptions returns the measurement windows used by the full-scale
// experiments.
func DefaultOptions() Options {
	return Options{
		PrewarmUops:   400_000,
		WarmupCycles:  50_000,
		MeasureCycles: 100_000,
		BaseSeed:      1,
	}
}

// FastOptions returns reduced windows for tests and benchmarks.
func FastOptions() Options {
	return Options{
		PrewarmUops:   60_000,
		WarmupCycles:  12_000,
		MeasureCycles: 25_000,
		BaseSeed:      1,
	}
}

func (o Options) workers() int { return sched.Workers(o.Parallelism) }

// progress fires the Progress callback when one is set.
func (o Options) progress(done, total int) {
	if o.Progress != nil {
		o.Progress(done, total)
	}
}

// Job is a schedulable entity: an application with one stream per thread,
// or a Ruler with one stream per instance.
type Job interface {
	// Name labels the job in results.
	Name() string
	// Instances is the number of hardware contexts the job occupies.
	Instances() int
	// NewStream builds the deterministic stream for one instance.
	NewStream(instance int, seed uint64) engine.Stream
}

type appJob struct {
	spec    *workload.Spec
	threads int
}

// App wraps a workload spec as a Job using its natural thread count.
func App(spec *workload.Spec) Job { return appJob{spec: spec, threads: spec.ThreadCount()} }

// AppThreads wraps a workload spec as a Job with an explicit thread count
// (the paper halves CloudSuite thread counts for the CMP experiments).
func AppThreads(spec *workload.Spec, threads int) Job {
	if threads < 1 {
		threads = 1
	}
	return appJob{spec: spec, threads: threads}
}

func (j appJob) Name() string   { return j.spec.Name }
func (j appJob) Instances() int { return j.threads }

// Fingerprint covers the full spec (streams are pure functions of spec and
// seed; seeds derive from the name, which the spec contains).
func (j appJob) Fingerprint() string { return fmt.Sprintf("app|%#v|t=%d", *j.spec, j.threads) }
func (j appJob) NewStream(instance int, seed uint64) engine.Stream {
	return workload.NewGen(j.spec, mix(seed, uint64(instance)+0x51))
}

type rulerJob struct {
	r         *rulers.Ruler
	instances int
}

// Rulers wraps a Ruler as a Job with the given instance count (one
// instance per occupied context).
func Rulers(r *rulers.Ruler, instances int) Job {
	if instances < 1 {
		instances = 1
	}
	return rulerJob{r: r, instances: instances}
}

func (j rulerJob) Name() string   { return j.r.Name }
func (j rulerJob) Instances() int { return j.instances }

// Fingerprint prints the Ruler by value: %#v includes the unexported
// kind/footprint/stride fields, so distinct intensities and dimensions
// cannot collide even if misnamed.
func (j rulerJob) Fingerprint() string { return fmt.Sprintf("ruler|%#v|n=%d", *j.r, j.instances) }
func (j rulerJob) NewStream(instance int, seed uint64) engine.Stream {
	return j.r.NewStream(mix(seed, uint64(instance)+0xA7))
}

// streamJob adapts an arbitrary stream factory to the Job interface, so
// trace replays and hand-built generators characterize exactly like stock
// workloads.
type streamJob struct {
	name      string
	instances int
	factory   func(instance int, seed uint64) engine.Stream
}

// StreamJob wraps a stream factory as a Job. The factory receives the
// instance index and a deterministic seed.
func StreamJob(name string, instances int, factory func(instance int, seed uint64) engine.Stream) Job {
	if instances < 1 {
		instances = 1
	}
	return streamJob{name: name, instances: instances, factory: factory}
}

func (j streamJob) Name() string   { return j.name }
func (j streamJob) Instances() int { return j.instances }
func (j streamJob) NewStream(instance int, seed uint64) engine.Stream {
	return j.factory(instance, mix(seed, uint64(instance)+0x33))
}

// mix combines a seed with a salt deterministically.
func mix(seed, salt uint64) uint64 {
	z := seed ^ salt*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return z ^ (z >> 27)
}

func seedFor(name string, base uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return mix(base, h.Sum64())
}

// RunResult reports one measurement run.
type RunResult struct {
	// AppIPC is the mean IPC across the primary job's instances;
	// AppCounters the per-instance window counters.
	AppIPC      float64
	AppCounters []pmu.Counters
	// PartnerIPC/PartnerCounters describe the co-runner (zero value when
	// the run was solo).
	PartnerIPC      float64
	PartnerCounters []pmu.Counters
}

// clone deep-copies the counter slices so cache hits hand every caller an
// independent result.
func (r RunResult) clone() RunResult {
	if r.AppCounters != nil {
		r.AppCounters = append([]pmu.Counters(nil), r.AppCounters...)
	}
	if r.PartnerCounters != nil {
		r.PartnerCounters = append([]pmu.Counters(nil), r.PartnerCounters...)
	}
	return r
}

// Solo measures a job running alone on the chip (one instance per core,
// context 0).
func Solo(cfg isa.Config, job Job, opts Options) (RunResult, error) {
	return run(context.Background(), cfg, job, nil, SMT, opts)
}

// SoloContext is Solo with cooperative cancellation: the simulation aborts
// mid-window (engine.RunContext) when ctx is cancelled, and a cancelled
// leader never poisons concurrent cache followers (simcache.DoContext).
func SoloContext(ctx context.Context, cfg isa.Config, job Job, opts Options) (RunResult, error) {
	return run(ctx, cfg, job, nil, SMT, opts)
}

// Colocate measures job and partner sharing the chip under the given
// placement. For SMT, instance i of the job runs on core i context 0 and
// partner instance j on core j context 1. For CMP, the partner occupies
// cores after the job's.
func Colocate(cfg isa.Config, job, partner Job, placement Placement, opts Options) (RunResult, error) {
	return run(context.Background(), cfg, job, partner, placement, opts)
}

// ColocateContext is Colocate with cooperative cancellation.
func ColocateContext(ctx context.Context, cfg isa.Config, job, partner Job, placement Placement, opts Options) (RunResult, error) {
	return run(ctx, cfg, job, partner, placement, opts)
}

// startRunSpan opens a span describing one simulation run; a no-op
// returning (ctx, nil) when no tracer rides on ctx.
func startRunSpan(ctx context.Context, name string, job, partner Job, placement Placement) (context.Context, *trace.Span) {
	if trace.FromContext(ctx) == nil {
		return ctx, nil
	}
	p := "<solo>"
	if partner != nil {
		p = partner.Name()
	}
	return trace.Start(ctx, name,
		trace.String("job", job.Name()),
		trace.String("partner", p),
		trace.String("placement", placement.String()))
}

func run(ctx context.Context, cfg isa.Config, job, partner Job, placement Placement, opts Options) (RunResult, error) {
	// A sampled run must actually simulate — a cache hit would silently
	// yield an empty timeline — so Sampler forces the uncached path.
	if opts.Cache != nil && opts.Sampler == nil {
		if key, ok := cacheKey(cfg, job, partner, placement, opts); ok {
			res, _, err := opts.Cache.DoContext(ctx, key, func(ctx context.Context) (RunResult, error) {
				return simulate(ctx, cfg, job, partner, placement, opts)
			})
			if err != nil {
				return RunResult{}, err
			}
			return res.clone(), nil
		}
	}
	return simulate(ctx, cfg, job, partner, placement, opts)
}

// chipBox is the per-worker chip cache a scheduler Slot holds for the
// batched simulation path: one engine instance per sched.Map worker, reused
// (via engine.Reset) across every cell that worker executes instead of
// allocating a chip per cell.
type chipBox struct {
	cfg  isa.Config
	chip *engine.Chip
}

// chipFor returns a chip for cfg, reusing the enclosing scheduler worker's
// cached instance when one exists. Reuse is invisible in results: Reset
// restores a chip bit-identically to its post-New state (the engine pins
// this), so batched runs hash equal to one-chip-per-cell runs. Callers
// outside a sched.Map (one-off Solo/Colocate) get a fresh chip.
func chipFor(ctx context.Context, cfg isa.Config) (*engine.Chip, error) {
	slot := sched.SlotFrom(ctx)
	if slot == nil {
		return engine.New(cfg)
	}
	if box, ok := slot.Value.(*chipBox); ok && reflect.DeepEqual(box.cfg, cfg) {
		box.chip.Reset()
		return box.chip, nil
	}
	if slot.Value != nil {
		if _, ok := slot.Value.(*chipBox); !ok {
			// The slot belongs to some other per-worker cache; leave it be.
			return engine.New(cfg)
		}
	}
	chip, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	slot.Value = &chipBox{cfg: cfg, chip: chip}
	return chip, nil
}

// simulate performs one actual measurement run, on the scheduler worker's
// pooled chip when running under sched.Map and a fresh chip otherwise.
func simulate(ctx context.Context, cfg isa.Config, job, partner Job, placement Placement, opts Options) (RunResult, error) {
	ctx, span := startRunSpan(ctx, "profile.simulate", job, partner, placement)
	defer span.End()
	chip, err := chipFor(ctx, cfg)
	if err != nil {
		return RunResult{}, err
	}
	if opts.Check {
		check.Attach(chip, opts.CheckInterval)
	}
	if opts.Sampler != nil {
		chip.SetSampler(opts.Sampler)
	}
	n := job.Instances()
	if n > cfg.Cores {
		return RunResult{}, fmt.Errorf("profile: job %s needs %d contexts but %s has %d cores", job.Name(), n, cfg.Name, cfg.Cores)
	}
	jobSeed := seedFor(job.Name(), opts.BaseSeed)
	for i := 0; i < n; i++ {
		chip.Assign(i, 0, job.NewStream(i, jobSeed))
	}
	var m int
	if partner != nil {
		m = partner.Instances()
		// The partner uses the same name-derived seed as its own solo
		// runs so an application behaves identically in either role;
		// instance salts inside NewStream decorrelate co-located
		// instances of the same job.
		partnerSeed := seedFor(partner.Name(), opts.BaseSeed)
		switch placement {
		case SMT:
			// Partner instance j lands on core j%Cores, context 1+j/Cores:
			// identical to the historical one-per-core mapping for
			// m ≤ Cores, and overflowing into the third, fourth, ...
			// sibling contexts on >2-way SMT parts.
			if m > cfg.Cores*(cfg.ContextsPerCore-1) {
				return RunResult{}, fmt.Errorf("profile: partner %s needs %d sibling contexts but %s has %d", partner.Name(), m, cfg.Name, cfg.Cores*(cfg.ContextsPerCore-1))
			}
			for j := 0; j < m; j++ {
				chip.Assign(j%cfg.Cores, 1+j/cfg.Cores, partner.NewStream(j, partnerSeed))
			}
		case CMP:
			if n+m > cfg.Cores {
				return RunResult{}, fmt.Errorf("profile: CMP placement of %s+%s needs %d cores but %s has %d", job.Name(), partner.Name(), n+m, cfg.Name, cfg.Cores)
			}
			for j := 0; j < m; j++ {
				chip.Assign(n+j, 0, partner.NewStream(j, partnerSeed))
			}
		default:
			return RunResult{}, fmt.Errorf("profile: unknown placement %d", placement)
		}
	}

	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	_, stage := trace.Start(ctx, "profile.prewarm", trace.Int("uops", opts.PrewarmUops))
	chip.Prewarm(opts.PrewarmUops)
	stage.End()
	_, stage = trace.Start(ctx, "profile.warmup", trace.Uint64("cycles", opts.WarmupCycles))
	if err := chip.RunContext(ctx, opts.WarmupCycles); err != nil {
		stage.End()
		return RunResult{}, fmt.Errorf("profile: run of %s cancelled: %w", job.Name(), err)
	}
	stage.End()
	chip.ResetCounters()
	_, stage = trace.Start(ctx, "profile.measure", trace.Uint64("cycles", opts.MeasureCycles))
	if err := chip.RunContext(ctx, opts.MeasureCycles); err != nil {
		stage.End()
		return RunResult{}, fmt.Errorf("profile: run of %s cancelled: %w", job.Name(), err)
	}
	stage.End()
	if err := chip.CheckErr(); err != nil {
		return RunResult{}, fmt.Errorf("profile: invariant violation running %s: %w", job.Name(), err)
	}

	res := RunResult{}
	for i := 0; i < n; i++ {
		c := chip.Counters(i, 0)
		res.AppCounters = append(res.AppCounters, c)
		res.AppIPC += c.IPC()
	}
	res.AppIPC /= float64(n)
	if partner != nil {
		for j := 0; j < m; j++ {
			var c pmu.Counters
			if placement == SMT {
				c = chip.Counters(j%cfg.Cores, 1+j/cfg.Cores)
			} else {
				c = chip.Counters(n+j, 0)
			}
			res.PartnerCounters = append(res.PartnerCounters, c)
			res.PartnerIPC += c.IPC()
		}
		res.PartnerIPC /= float64(m)
	}
	return res, nil
}

// Degradation returns the relative performance loss (Equation 7), clamped
// below at 0 only by the caller if desired; negative values mean speed-up.
func Degradation(soloIPC, coIPC float64) float64 {
	if soloIPC <= 0 {
		return 0
	}
	return (soloIPC - coIPC) / soloIPC
}

// Characterization is an application's decoupled contention profile: its
// sensitivity and contentiousness in each of the seven sharing dimensions,
// plus the solo measurements the PMU baseline model consumes.
type Characterization struct {
	App       string
	Placement Placement
	SoloIPC   float64
	// SoloPMU aggregates the solo window counters of instance 0 (the PMU
	// baseline uses per-cycle rates, so one representative thread
	// suffices; threads are statistically identical).
	SoloPMU pmu.Counters
	Sen     [rulers.NumDimensions]float64
	Con     [rulers.NumDimensions]float64
}

// Profiler characterises applications and measures co-locations on one
// machine configuration, memoising solo runs. It is safe for concurrent
// use.
type Profiler struct {
	cfg  isa.Config
	set  []*rulers.Ruler
	opts Options

	mu        sync.Mutex
	appSolo   map[string]RunResult
	rulerSolo map[string]float64
}

// NewProfiler builds a profiler for the configuration using the standard
// Ruler set sized to its caches. Unless the caller supplied one, every
// profiler gets its own simulation cache so repeated co-location queries
// (e.g. the same Ruler pairing reached via different sweeps) simulate once.
func NewProfiler(cfg isa.Config, opts Options) *Profiler {
	if opts.Cache == nil {
		opts.Cache = simcache.New[RunResult]()
	}
	return &Profiler{
		cfg:       cfg,
		set:       rulers.StandardSet(cfg),
		opts:      opts,
		appSolo:   make(map[string]RunResult),
		rulerSolo: make(map[string]float64),
	}
}

// Config returns the profiler's machine configuration.
func (p *Profiler) Config() isa.Config { return p.cfg }

// Options returns the profiler's measurement options.
func (p *Profiler) Options() Options { return p.opts }

// RulerSet returns the profiler's standard rulers.
func (p *Profiler) RulerSet() []*rulers.Ruler { return p.set }

// CacheStats reports the profiler's simulation-cache counters (zero value
// when the profiler was built without a cache).
func (p *Profiler) CacheStats() simcache.Stats {
	if p.opts.Cache == nil {
		return simcache.Stats{}
	}
	return p.opts.Cache.Stats()
}

func soloKey(job Job) string { return fmt.Sprintf("%s/%d", job.Name(), job.Instances()) }

// SoloRun measures (and memoises) a job running alone.
func (p *Profiler) SoloRun(job Job) (RunResult, error) {
	return p.SoloRunContext(context.Background(), job)
}

// SoloRunContext is SoloRun with cooperative cancellation.
func (p *Profiler) SoloRunContext(ctx context.Context, job Job) (RunResult, error) {
	key := soloKey(job)
	p.mu.Lock()
	if r, ok := p.appSolo[key]; ok {
		p.mu.Unlock()
		return r, nil
	}
	p.mu.Unlock()
	r, err := SoloContext(ctx, p.cfg, job, p.opts)
	if err != nil {
		return RunResult{}, err
	}
	p.mu.Lock()
	p.appSolo[key] = r
	p.mu.Unlock()
	return r, nil
}

// rulerSoloIPC measures (and memoises) a single Ruler instance running
// alone; this is the Con denominator of Equation 2.
func (p *Profiler) rulerSoloIPC(ctx context.Context, r *rulers.Ruler) (float64, error) {
	p.mu.Lock()
	if ipc, ok := p.rulerSolo[r.Name]; ok {
		p.mu.Unlock()
		return ipc, nil
	}
	p.mu.Unlock()
	res, err := SoloContext(ctx, p.cfg, Rulers(r, 1), p.opts)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.rulerSolo[r.Name] = res.AppIPC
	p.mu.Unlock()
	return res.AppIPC, nil
}

// jobFor builds the Job arrangement Characterize uses for a spec:
// multithreaded applications are clamped to the machine (half the cores
// under the CMP half-loaded arrangement).
func (p *Profiler) jobFor(spec *workload.Spec, placement Placement) Job {
	threads := spec.ThreadCount()
	max := p.cfg.Cores
	if placement == CMP && threads > 1 {
		// Half-loaded CMP arrangement: the app occupies half the cores.
		max = p.cfg.Cores / 2
	}
	if threads > max {
		threads = max // clamp multithreaded apps to the machine
	}
	return AppThreads(spec, threads)
}

// JobFor exposes the spec→Job arrangement Characterize uses, so callers
// building their own cell batches (e.g. the surrogate fitter's sweeps) place
// applications exactly as the standard characterization would.
func (p *Profiler) JobFor(spec *workload.Spec, placement Placement) Job {
	return p.jobFor(spec, placement)
}

// Characterize measures an application's sensitivity and contentiousness in
// every sharing dimension by co-locating it with each standard Ruler under
// the given placement. Multithreaded applications are co-located with one
// Ruler instance per thread, as in the paper's CloudSuite setup.
func (p *Profiler) Characterize(spec *workload.Spec, placement Placement) (Characterization, error) {
	return p.CharacterizeContext(context.Background(), spec, placement)
}

// CharacterizeContext is Characterize with cooperative cancellation; the
// per-Ruler cells fan out across the Options.Parallelism worker pool.
func (p *Profiler) CharacterizeContext(ctx context.Context, spec *workload.Spec, placement Placement) (Characterization, error) {
	return p.CharacterizeJobContext(ctx, p.jobFor(spec, placement), placement)
}

// CharacterizeJob is Characterize for an explicit Job arrangement, using
// one Ruler instance per job instance (full pressure).
func (p *Profiler) CharacterizeJob(job Job, placement Placement) (Characterization, error) {
	return p.CharacterizeJobContext(context.Background(), job, placement)
}

// CharacterizeJobContext is CharacterizeJob with cooperative cancellation.
func (p *Profiler) CharacterizeJobContext(ctx context.Context, job Job, placement Placement) (Characterization, error) {
	return p.CharacterizeJobRulersContext(ctx, job, placement, job.Instances())
}

// CharacterizeJobRulers characterizes a job against a specific Ruler
// instance count. For multithreaded latency applications this measures the
// *partial-occupancy* sensitivity Sen(n) — the degradation when only n of
// the job's sibling contexts carry pressure — which the scale-out studies
// use to predict co-locations with fewer batch instances than threads.
// Profiling cost stays Ruler-only: no batch-application cross-product.
func (p *Profiler) CharacterizeJobRulers(job Job, placement Placement, rulerInstances int) (Characterization, error) {
	return p.CharacterizeJobRulersContext(context.Background(), job, placement, rulerInstances)
}

// CharacterizeJobRulersContext is CharacterizeJobRulers with cooperative
// cancellation. The per-Ruler (application, Ruler) cells — independent
// simulations — run on the internal/sched worker pool; because each cell
// writes only its own Sen/Con dimension, the result is bit-identical to
// the sequential sweep at any Parallelism.
func (p *Profiler) CharacterizeJobRulersContext(ctx context.Context, job Job, placement Placement, rulerInstances int) (Characterization, error) {
	ctx, span := trace.Start(ctx, "profile.characterize",
		trace.String("job", job.Name()), trace.String("placement", placement.String()))
	defer span.End()
	solo, err := p.SoloRunContext(ctx, job)
	if err != nil {
		return Characterization{}, err
	}
	ch := Characterization{
		App:       job.Name(),
		Placement: placement,
		SoloIPC:   solo.AppIPC,
		SoloPMU:   solo.AppCounters[0],
	}
	instances := rulerInstances
	if instances < 1 {
		instances = 1
	}
	if placement == CMP && job.Instances() > p.cfg.Cores/2 {
		return Characterization{}, fmt.Errorf("profile: job %s with %d instances cannot be CMP-characterized on %d cores", job.Name(), job.Instances(), p.cfg.Cores)
	}
	err = sched.Map(ctx, len(p.set), p.opts.workers(), func(ctx context.Context, i int) error {
		sen, con, err := p.rulerCell(ctx, job, p.set[i], instances, placement, solo.AppIPC)
		if err != nil {
			return err
		}
		ch.Sen[p.set[i].Dim] = sen
		ch.Con[p.set[i].Dim] = con
		return nil
	})
	if err != nil {
		return Characterization{}, err
	}
	return ch, nil
}

// rulerCell measures one (job, Ruler) characterization cell: the job's
// sensitivity and the Ruler's received contentiousness on the Ruler's
// dimension. Cells are independent simulations — the unit of work the
// scheduler fans out.
func (p *Profiler) rulerCell(ctx context.Context, job Job, r *rulers.Ruler, instances int, placement Placement, soloIPC float64) (sen, con float64, err error) {
	ctx, span := trace.Start(ctx, "profile.ruler-cell",
		trace.String("job", job.Name()), trace.String("ruler", r.Name))
	defer span.End()
	rulerIPC, err := p.rulerSoloIPC(ctx, r)
	if err != nil {
		return 0, 0, err
	}
	res, err := ColocateContext(ctx, p.cfg, job, Rulers(r, instances), placement, p.opts)
	if err != nil {
		return 0, 0, err
	}
	return Degradation(soloIPC, res.AppIPC), Degradation(rulerIPC, res.PartnerIPC), nil
}

// CharacterizeAll characterises a batch of applications concurrently.
func (p *Profiler) CharacterizeAll(specs []*workload.Spec, placement Placement) ([]Characterization, error) {
	return p.CharacterizeAllContext(context.Background(), specs, placement)
}

// CharacterizeAllContext is CharacterizeAll with cooperative cancellation.
// Instead of nesting one worker pool per application, the batch is
// flattened into its individual simulation cells — every solo run and
// every (application, Ruler) co-location — and those cells are fanned
// across one Options.Parallelism-bounded pool, so the batch scales
// near-linearly with workers even when it holds fewer applications than
// CPUs. Each cell writes only its own index-addressed slot; the result is
// bit-identical to the sequential sweep at any Parallelism (pinned by the
// internal/simtest parallelism-independence law).
func (p *Profiler) CharacterizeAllContext(ctx context.Context, specs []*workload.Spec, placement Placement) ([]Characterization, error) {
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = p.jobFor(s, placement)
	}
	return p.characterizeJobs(ctx, jobs, placement)
}

// CharacterizeJobsContext characterizes explicit Job arrangements with the
// same flat-cell scheduling as CharacterizeAllContext, for callers (such as
// the experiment Lab) that size thread counts themselves.
func (p *Profiler) CharacterizeJobsContext(ctx context.Context, jobs []Job, placement Placement) ([]Characterization, error) {
	return p.characterizeJobs(ctx, jobs, placement)
}

// characterizeJobs is the flat-cell scheduler behind CharacterizeAllContext.
func (p *Profiler) characterizeJobs(ctx context.Context, jobs []Job, placement Placement) ([]Characterization, error) {
	for _, job := range jobs {
		if placement == CMP && job.Instances() > p.cfg.Cores/2 {
			return nil, fmt.Errorf("profile: job %s with %d instances cannot be CMP-characterized on %d cores", job.Name(), job.Instances(), p.cfg.Cores)
		}
	}
	workers := p.opts.workers()
	nr := len(p.set)
	solos := len(jobs) + nr
	total := solos + len(jobs)*nr
	var done atomic.Int64
	tick := func() { p.opts.progress(int(done.Add(1)), total) }

	// Phase 1: every solo run — each application arrangement plus the
	// Ruler baselines of Equation 2 — warms the profiler memos in
	// parallel, so phase 2's cells never duplicate a solo simulation.
	phaseCtx, phase := trace.Start(ctx, "profile.solo-phase",
		trace.Int("jobs", len(jobs)), trace.Int("rulers", nr))
	out := make([]Characterization, len(jobs))
	err := sched.Map(phaseCtx, solos, workers, func(ctx context.Context, i int) error {
		if i < len(jobs) {
			solo, err := p.SoloRunContext(ctx, jobs[i])
			if err != nil {
				return err
			}
			out[i] = Characterization{
				App:       jobs[i].Name(),
				Placement: placement,
				SoloIPC:   solo.AppIPC,
				SoloPMU:   solo.AppCounters[0],
			}
			tick()
			return nil
		}
		if _, err := p.rulerSoloIPC(ctx, p.set[i-len(jobs)]); err != nil {
			return err
		}
		tick()
		return nil
	})
	phase.End()
	if err != nil {
		return nil, err
	}

	// Phase 2: the (application, Ruler) co-location cells, flattened into
	// one index space. Cell (ji, ri) writes only out[ji].Sen/Con[dim] —
	// disjoint memory — keeping the reduction order-free.
	phaseCtx, phase = trace.Start(ctx, "profile.pair-phase",
		trace.Int("cells", len(jobs)*nr))
	err = sched.Map(phaseCtx, len(jobs)*nr, workers, func(ctx context.Context, i int) error {
		ji, ri := i/nr, i%nr
		sen, con, err := p.rulerCell(ctx, jobs[ji], p.set[ri], jobs[ji].Instances(), placement, out[ji].SoloIPC)
		if err != nil {
			return err
		}
		out[ji].Sen[p.set[ri].Dim] = sen
		out[ji].Con[p.set[ri].Dim] = con
		tick()
		return nil
	})
	phase.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepSample is one measured cell of an intensity sweep: the job's
// sensitivity to — and the Ruler's received contentiousness at — one Ruler
// duty cycle on one sharing dimension.
type SweepSample struct {
	Intensity float64
	Sen, Con  float64
}

// SweepResult is the full (dimension × intensity) characterization grid for
// one job: the standard intensity-1.0 characterization plus, per dimension,
// the sen/con samples at every swept duty cycle (ascending intensity order).
// This grid is what the surrogate tier (internal/surrogate) fits its
// closed-form curves from.
type SweepResult struct {
	Characterization Characterization
	Samples          [rulers.NumDimensions][]SweepSample
}

// CharacterizeSweep measures the (dimension × intensity) grid for each job.
func (p *Profiler) CharacterizeSweep(jobs []Job, placement Placement, intensities []float64) ([]SweepResult, error) {
	return p.CharacterizeSweepContext(context.Background(), jobs, placement, intensities)
}

// SweepGrid normalizes a requested intensity list: clamped into (0, 1],
// deduplicated, ascending, with 1.0 always present (the grid's last column
// doubles as the standard characterization). Exported so sweep consumers
// (the surrogate fitter's content-addressed keys) hash the exact grid the
// sweep will run.
func SweepGrid(intensities []float64) []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, x := range append(append([]float64(nil), intensities...), 1.0) {
		if x <= 0 {
			x = 0.01
		}
		if x > 1 {
			x = 1
		}
		if !seen[x] {
			seen[x] = true
			xs = append(xs, x)
		}
	}
	sort.Float64s(xs)
	return xs
}

// CharacterizeSweepContext is CharacterizeSweep with cooperative
// cancellation. Like CharacterizeAllContext it flattens the batch into
// independent simulation cells — every job and Ruler solo plus one
// co-location per (job, dimension, intensity) — and fans them across one
// Parallelism-bounded worker pool, each worker reusing a single pooled chip
// across its cells. The intensity-1.0 column uses the unmodified standard
// Ruler set, so it is bit-identical to (and shares simulation-cache entries
// with) CharacterizeAllContext.
func (p *Profiler) CharacterizeSweepContext(ctx context.Context, jobs []Job, placement Placement, intensities []float64) ([]SweepResult, error) {
	for _, job := range jobs {
		if placement == CMP && job.Instances() > p.cfg.Cores/2 {
			return nil, fmt.Errorf("profile: job %s with %d instances cannot be CMP-characterized on %d cores", job.Name(), job.Instances(), p.cfg.Cores)
		}
	}
	xs := SweepGrid(intensities)
	nr, nx := len(p.set), len(xs)
	rulerAt := func(ri, xi int) *rulers.Ruler {
		if xs[xi] == 1 {
			return p.set[ri] // standard column: bit-identical to CharacterizeAll
		}
		return p.set[ri].WithIntensity(xs[xi])
	}
	workers := p.opts.workers()
	solos := len(jobs) + nr*nx
	total := solos + len(jobs)*nr*nx
	var done atomic.Int64
	tick := func() { p.opts.progress(int(done.Add(1)), total) }

	// Phase 1: all solo runs — each job plus every (Ruler, intensity)
	// baseline of Equation 2 — warm the profiler memos in parallel.
	phaseCtx, phase := trace.Start(ctx, "profile.sweep-solo-phase",
		trace.Int("jobs", len(jobs)), trace.Int("cells", solos))
	out := make([]SweepResult, len(jobs))
	err := sched.Map(phaseCtx, solos, workers, func(ctx context.Context, i int) error {
		if i < len(jobs) {
			solo, err := p.SoloRunContext(ctx, jobs[i])
			if err != nil {
				return err
			}
			out[i].Characterization = Characterization{
				App:       jobs[i].Name(),
				Placement: placement,
				SoloIPC:   solo.AppIPC,
				SoloPMU:   solo.AppCounters[0],
			}
			for d := range out[i].Samples {
				out[i].Samples[d] = make([]SweepSample, nx)
			}
			tick()
			return nil
		}
		ri, xi := (i-len(jobs))/nx, (i-len(jobs))%nx
		if _, err := p.rulerSoloIPC(ctx, rulerAt(ri, xi)); err != nil {
			return err
		}
		tick()
		return nil
	})
	phase.End()
	if err != nil {
		return nil, err
	}

	// Phase 2: the (job, dimension, intensity) co-location cells, flattened
	// into one index space; each writes only its own grid slot.
	phaseCtx, phase = trace.Start(ctx, "profile.sweep-pair-phase",
		trace.Int("cells", len(jobs)*nr*nx))
	err = sched.Map(phaseCtx, len(jobs)*nr*nx, workers, func(ctx context.Context, i int) error {
		ji, ri, xi := i/(nr*nx), (i/nx)%nr, i%nx
		r := rulerAt(ri, xi)
		sen, con, err := p.rulerCell(ctx, jobs[ji], r, jobs[ji].Instances(), placement, out[ji].Characterization.SoloIPC)
		if err != nil {
			return err
		}
		out[ji].Samples[p.set[ri].Dim][xi] = SweepSample{Intensity: xs[xi], Sen: sen, Con: con}
		if xs[xi] == 1 {
			out[ji].Characterization.Sen[p.set[ri].Dim] = sen
			out[ji].Characterization.Con[p.set[ri].Dim] = con
		}
		tick()
		return nil
	})
	phase.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PairMeasurement is the ground truth for one co-location (Equation 7).
type PairMeasurement struct {
	A, B      string
	Placement Placement
	// DegA is A's degradation when co-located with B; DegB the converse.
	DegA, DegB float64
}

// MeasurePair measures the mutual degradation of two applications under
// the given placement.
func (p *Profiler) MeasurePair(a, b *workload.Spec, placement Placement) (PairMeasurement, error) {
	return p.MeasurePairContext(context.Background(), a, b, placement)
}

// MeasurePairContext is MeasurePair with cooperative cancellation.
func (p *Profiler) MeasurePairContext(ctx context.Context, a, b *workload.Spec, placement Placement) (PairMeasurement, error) {
	return p.MeasureJobsContext(ctx, App(a), App(b), placement)
}

// MeasureJobs measures the mutual degradation of two explicit jobs.
func (p *Profiler) MeasureJobs(a, b Job, placement Placement) (PairMeasurement, error) {
	return p.MeasureJobsContext(context.Background(), a, b, placement)
}

// MeasureJobsContext is MeasureJobs with cooperative cancellation.
func (p *Profiler) MeasureJobsContext(ctx context.Context, a, b Job, placement Placement) (PairMeasurement, error) {
	soloA, err := p.SoloRunContext(ctx, a)
	if err != nil {
		return PairMeasurement{}, err
	}
	soloB, err := p.SoloRunContext(ctx, b)
	if err != nil {
		return PairMeasurement{}, err
	}
	res, err := ColocateContext(ctx, p.cfg, a, b, placement, p.opts)
	if err != nil {
		return PairMeasurement{}, err
	}
	return PairMeasurement{
		A: a.Name(), B: b.Name(), Placement: placement,
		DegA: Degradation(soloA.AppIPC, res.AppIPC),
		DegB: Degradation(soloB.AppIPC, res.PartnerIPC),
	}, nil
}

// MeasurePairs measures all distinct pairs {a, b} from the two sets
// concurrently. Each unordered pair is co-located once — a single run
// yields both sides' degradations — and same-name pairs are skipped.
func (p *Profiler) MeasurePairs(as, bs []*workload.Spec, placement Placement) ([]PairMeasurement, error) {
	return p.MeasurePairsContext(context.Background(), as, bs, placement)
}

// MeasurePairsContext is MeasurePairs with cooperative cancellation. The
// per-pair measurements run on the internal/sched worker pool; each writes
// its own index-addressed slot, so results are bit-identical to the
// sequential sweep at any Parallelism. Options.Progress, when set, is
// fired once per completed pair.
func (p *Profiler) MeasurePairsContext(ctx context.Context, as, bs []*workload.Spec, placement Placement) ([]PairMeasurement, error) {
	type task struct{ a, b *workload.Spec }
	var tasks []task
	seen := make(map[string]bool)
	for _, a := range as {
		for _, b := range bs {
			if a.Name == b.Name {
				continue
			}
			key := a.Name + "\x00" + b.Name
			if b.Name < a.Name {
				key = b.Name + "\x00" + a.Name
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			tasks = append(tasks, task{a, b})
		}
	}
	ctx, span := trace.Start(ctx, "profile.measure-pairs", trace.Int("pairs", len(tasks)))
	defer span.End()
	out := make([]PairMeasurement, len(tasks))
	var done atomic.Int64
	err := sched.Map(ctx, len(tasks), p.opts.workers(), func(ctx context.Context, i int) error {
		pm, err := p.MeasurePairContext(ctx, tasks[i].a, tasks[i].b, placement)
		if err != nil {
			return err
		}
		out[i] = pm
		p.opts.progress(int(done.Add(1)), len(tasks))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
