// Package isol defines the hardware QoS-enforcement policy vocabulary: the
// per-context LLC way-partition masks and memory-bandwidth budgets a chip
// configuration carries (enforced by internal/sim/cache and
// internal/sim/mem), and the discrete isolation operating points the
// cluster scheduler actuates (internal/cluster PolicyIsolation).
//
// The mechanisms mirror the enforcement features warehouse schedulers use
// on real parts (Larsson et al., PAPERS.md): Intel CAT-style way
// partitioning — a context *allocates* only into the L3 ways it owns but
// *hits* anywhere — and MBA-style bandwidth throttling — a token-bucket
// shaper on each context's DRAM request stream. Both are strictly
// additive: the zero Policy disables every mechanism and simulation
// results stay bit-identical to configurations predating it.
package isol

import "fmt"

// Policy is the chip-wide hardware QoS-enforcement configuration. The zero
// value disables all enforcement.
type Policy struct {
	// WayMasks[g] is the L3 way-allocation mask for global hardware
	// context g (core*contextsPerCore + ctx): bit i set means context g
	// may allocate into way i of every L3 set. Zero (or a missing entry)
	// means unrestricted — the context allocates anywhere, as without CAT.
	// Hits are always served from any way.
	WayMasks []uint64
	// MemBudgets[g] is the DRAM request budget for global context g; the
	// zero MemBudget (or a missing entry) leaves the context unthrottled.
	MemBudgets []MemBudget
}

// MemBudget is one context's token-bucket memory-bandwidth budget: the
// context may issue bursts of up to Tokens back-to-back DRAM requests and
// sustain one request per RefillCycles cycles. Both fields zero = no
// throttle.
type MemBudget struct {
	// Tokens is the bucket capacity (maximum burst length), ≥ 1 when the
	// budget is enabled.
	Tokens uint64
	// RefillCycles is the steady-state spacing: one token refills every
	// RefillCycles cycles.
	RefillCycles uint64
}

// Enabled reports whether the budget throttles at all.
func (b MemBudget) Enabled() bool { return b.Tokens != 0 || b.RefillCycles != 0 }

// Enabled reports whether any mechanism is configured. Engines skip every
// isolation hook when false, keeping the hot loop byte-identical to the
// pre-isolation code.
func (p Policy) Enabled() bool {
	for _, m := range p.WayMasks {
		if m != 0 {
			return true
		}
	}
	for _, b := range p.MemBudgets {
		if b.Enabled() {
			return true
		}
	}
	return false
}

// WayMaskFor returns the effective allocation mask for context g on a
// cache with the given way count: the configured mask clipped to real
// ways, or the full mask when the context is unrestricted.
func (p Policy) WayMaskFor(g, ways int) uint64 {
	full := uint64(1)<<uint(ways) - 1
	if g < 0 || g >= len(p.WayMasks) || p.WayMasks[g] == 0 {
		return full
	}
	return p.WayMasks[g] & full
}

// BudgetFor returns the budget for context g (zero value when none).
func (p Policy) BudgetFor(g int) MemBudget {
	if g < 0 || g >= len(p.MemBudgets) {
		return MemBudget{}
	}
	return p.MemBudgets[g]
}

// ConfigError is the typed validation error for degenerate isolation
// configurations — a mask that owns zero ways would make every allocation
// impossible, a zero-token budget would never admit a DRAM request
// (a livelock, not a throttle). Callers match it with errors.As.
type ConfigError struct {
	// Field names the offending entry ("WayMasks[3]", "MemBudgets[0]").
	Field string
	// Reason says what is degenerate about it.
	Reason string
}

func (e *ConfigError) Error() string { return "isol: " + e.Field + ": " + e.Reason }

// Validate rejects degenerate policies for a chip with the given total
// context count and L3 associativity.
func (p Policy) Validate(contexts, l3Ways int) error {
	if len(p.WayMasks) > contexts {
		return &ConfigError{
			Field:  "WayMasks",
			Reason: fmt.Sprintf("%d masks for a chip with %d contexts", len(p.WayMasks), contexts),
		}
	}
	if len(p.MemBudgets) > contexts {
		return &ConfigError{
			Field:  "MemBudgets",
			Reason: fmt.Sprintf("%d budgets for a chip with %d contexts", len(p.MemBudgets), contexts),
		}
	}
	full := uint64(1)<<uint(l3Ways) - 1
	for g, m := range p.WayMasks {
		if m == 0 {
			continue // unrestricted
		}
		if m&full == 0 {
			return &ConfigError{
				Field:  fmt.Sprintf("WayMasks[%d]", g),
				Reason: fmt.Sprintf("mask %#x owns 0 of the %d L3 ways", m, l3Ways),
			}
		}
		if m&^full != 0 {
			return &ConfigError{
				Field:  fmt.Sprintf("WayMasks[%d]", g),
				Reason: fmt.Sprintf("mask %#x names ways beyond the %d L3 ways", m, l3Ways),
			}
		}
	}
	for g, b := range p.MemBudgets {
		if !b.Enabled() {
			continue
		}
		if b.Tokens == 0 {
			return &ConfigError{
				Field:  fmt.Sprintf("MemBudgets[%d]", g),
				Reason: "0-token budget would never admit a DRAM request",
			}
		}
		if b.RefillCycles == 0 {
			return &ConfigError{
				Field:  fmt.Sprintf("MemBudgets[%d]", g),
				Reason: "refill interval must be positive",
			}
		}
	}
	return nil
}

// SplitWays builds the canonical two-party partition masks: the victim
// owns the low victimWays ways, the aggressor the remaining ways-victimWays.
// It returns (victimMask, aggressorMask).
func SplitWays(victimWays, ways int) (uint64, uint64) {
	full := uint64(1)<<uint(ways) - 1
	v := uint64(1)<<uint(victimWays) - 1
	return v & full, full &^ v
}
