package engine

import (
	"testing"

	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

// streamFunc adapts a function to the Stream interface.
type streamFunc func(u *isa.Uop)

func (f streamFunc) Next(u *isa.Uop) { f(u) }

// TestWorkConservingFrontEnd: a port-bound Ruler whose ROB is full must
// leave nearly all front-end bandwidth to its sibling — otherwise every
// dimension would couple through fetch and SMiTe's decoupling would break.
func TestWorkConservingFrontEnd(t *testing.T) {
	cfg := testConfig()
	// An INT-heavy app that needs the full 4-wide front end.
	intStream := func() Stream {
		i := 0
		return streamFunc(func(u *isa.Uop) {
			i++
			u.Kind = isa.IntAdd
			if i%4 == 0 {
				u.Kind = isa.Nop
			}
		})
	}
	solo := MustNew(cfg)
	solo.Assign(0, 0, intStream())
	solo.Run(20000)
	soloIPC := solo.Counters(0, 0).IPC()

	co := MustNew(cfg)
	co.Assign(0, 0, intStream())
	co.Assign(0, 1, rulers.FPMul().NewStream(1))
	co.Run(20000)
	coIPC := co.Counters(0, 0).IPC()
	// FP_MUL uses port 0 (shared with IntAdd) but allocates only ~1
	// uop/cycle: front-end loss must be small, port-0 loss moderate.
	deg := (soloIPC - coIPC) / soloIPC
	if deg > 0.35 {
		t.Errorf("front end not work-conserving: %.3f degradation from a 1-uop/cycle ruler (solo %.2f, co %.2f)", deg, soloIPC, coIPC)
	}
}

// TestMSHRBackpressure: a pure miss stream is limited by MSHRs ×
// latency, not by issue width.
func TestMSHRBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = false // defeat the prefetcher with its knob
	chip := MustNew(cfg)
	// Strided loads, every access a new line: all DRAM misses once warm.
	next := uint64(0)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		u.Kind = isa.Load
		u.Addr = next
		next += 64
	}))
	chip.Run(30000)
	c := chip.Counters(0, 0)
	// Upper bound: MSHRs / (base latency + interval headroom).
	maxRate := float64(cfg.MSHRsPerContext) / float64(cfg.MemBaseLatency)
	gotRate := float64(c.Loads) / float64(c.Cycles)
	if gotRate > maxRate*1.3 {
		t.Errorf("load rate %.4f exceeds MSHR bound %.4f", gotRate, maxRate)
	}
	if c.L3Misses == 0 {
		t.Error("stride stream produced no DRAM traffic")
	}
}

// TestStoreBackpressure: an L3-missing store stream must not saturate the
// memory controller unboundedly (stores occupy MSHRs until fill).
func TestStoreBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = false
	chip := MustNew(cfg)
	next := uint64(0)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		u.Kind = isa.Store
		u.Addr = next
		next += 64
	}))
	chip.Run(30000)
	_, avgQ, _ := chip.Memory().Stats()
	// Bounded demand: the queue must not be growing without limit.
	if avgQ > float64(cfg.MemBaseLatency)*4 {
		t.Errorf("store stream built an unbounded memory queue: avg %.0f cycles", avgQ)
	}
}

// TestPrefetcherHidesStreamLatency: with the prefetcher on, a sequential
// stream runs far faster than the MSHR×DRAM-latency bound.
func TestPrefetcherHidesStreamLatency(t *testing.T) {
	run := func(prefetch bool) float64 {
		cfg := testConfig()
		cfg.StreamPrefetcher = prefetch
		chip := MustNew(cfg)
		next := uint64(0)
		chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
			u.Kind = isa.Load
			u.Addr = next
			next += 8 // element-wise sequential
		}))
		chip.Run(30000)
		return chip.Counters(0, 0).IPC()
	}
	with, without := run(true), run(false)
	if with < without*1.5 {
		t.Errorf("prefetcher gains too little: %.3f vs %.3f", with, without)
	}
}

// TestCMPIsolation: on separate cores, only uncore interference remains;
// an L1-resident compute app must be unaffected by any co-runner.
func TestCMPIsolation(t *testing.T) {
	cfg := testConfig()
	spec, _ := workload.ByName("454.calculix")
	solo := MustNew(cfg)
	solo.Assign(0, 0, workload.NewGen(spec, 3))
	solo.Prewarm(30000)
	solo.Run(30000)
	soloIPC := solo.Counters(0, 0).IPC()

	co := MustNew(cfg)
	co.Assign(0, 0, workload.NewGen(spec, 3))
	co.Assign(1, 0, rulers.FPMul().NewStream(5)) // other core
	co.Prewarm(30000)
	co.Run(30000)
	coIPC := co.Counters(0, 0).IPC()
	deg := (soloIPC - coIPC) / soloIPC
	if deg > 0.02 || deg < -0.02 {
		t.Errorf("CMP co-location perturbed an L1-resident app by %.3f", deg)
	}
}

// TestPrewarmInstallsFootprints: after Prewarm, an L3-sized working set is
// resident.
func TestPrewarmInstallsFootprints(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.Assign(0, 0, rulers.For(cfg, rulers.DimL3).NewStream(1))
	occBefore := chip.L3().Occupancy()
	chip.Prewarm(1000)
	occAfter := chip.L3().Occupancy()
	if occAfter < 0.8 {
		t.Errorf("L3 occupancy after prewarm = %.2f (before %.2f)", occAfter, occBefore)
	}
}

// TestAssignValidation: out-of-range placement panics (programming error).
func TestAssignValidation(t *testing.T) {
	chip := MustNew(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Assign did not panic")
		}
	}()
	chip.Assign(99, 0, rulers.FPAdd().NewStream(1))
}

// TestResetCountersStartsCleanWindow: counters restart while state stays.
func TestResetCountersStartsCleanWindow(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	spec, _ := workload.ByName("456.hmmer")
	chip.Assign(0, 0, workload.NewGen(spec, 1))
	chip.Run(5000)
	chip.ResetCounters()
	if c := chip.Counters(0, 0); c.Cycles != 0 || c.Instructions != 0 {
		t.Error("counters survived reset")
	}
	chip.Run(1000)
	if c := chip.Counters(0, 0); c.Cycles != 1000 {
		t.Errorf("window cycles = %d, want 1000", c.Cycles)
	}
}

// TestInactiveContextsStayQuiet: unassigned contexts accumulate nothing.
func TestInactiveContextsStayQuiet(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	spec, _ := workload.ByName("456.hmmer")
	chip.Assign(0, 0, workload.NewGen(spec, 1))
	chip.Run(2000)
	for core := 0; core < cfg.Cores; core++ {
		for ctx := 0; ctx < cfg.ContextsPerCore; ctx++ {
			if core == 0 && ctx == 0 {
				continue
			}
			if c := chip.Counters(core, ctx); c.Cycles != 0 || c.Instructions != 0 {
				t.Errorf("idle context (%d,%d) accumulated counters", core, ctx)
			}
		}
	}
}

// TestNopOnlyStreamRetiresAtFetchWidth: nops need no ports, so throughput
// is bounded by the front end.
func TestNopOnlyStreamRetiresAtFetchWidth(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) { u.Kind = isa.Nop }))
	chip.Run(10000)
	ipc := chip.Counters(0, 0).IPC()
	if ipc < float64(cfg.FetchWidth)*0.95 {
		t.Errorf("nop IPC = %.2f, want ~%d", ipc, cfg.FetchWidth)
	}
}

// TestBranchMispredictsThrottleFetch: unpredictable branches slow a
// context down via flush stalls.
func TestBranchMispredictsThrottleFetch(t *testing.T) {
	cfg := testConfig()
	run := func(bias float64) float64 {
		spec := *mustSpec(t, "456.hmmer")
		spec.Name = "branchy"
		spec.Mix = workload.Mix{IntAdd: 0.70, Branch: 0.29, Nop: 0.01}
		spec.BranchBias = bias
		spec.BranchTags = 512
		chip := MustNew(cfg)
		chip.Assign(0, 0, workload.NewGen(&spec, 1))
		chip.Run(20000)
		return chip.Counters(0, 0).IPC()
	}
	predictable, random := run(0.99), run(0.5)
	if random > predictable*0.6 {
		t.Errorf("random branches too cheap: %.2f vs %.2f", random, predictable)
	}
}

func mustSpec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCountersConsistency: port dispatches, loads and stores line up.
func TestCountersConsistency(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	spec, _ := workload.ByName("403.gcc")
	chip.Assign(0, 0, workload.NewGen(spec, 2))
	chip.Prewarm(20000)
	chip.Run(20000)
	c := chip.Counters(0, 0)
	if c.Loads != c.PortUops[2]+c.PortUops[3] {
		t.Errorf("loads %d != port2+port3 dispatches %d", c.Loads, c.PortUops[2]+c.PortUops[3])
	}
	if c.Stores != c.PortUops[4] {
		t.Errorf("stores %d != port4 dispatches %d", c.Stores, c.PortUops[4])
	}
	if c.L1DHits+c.L1DMisses != c.Loads+c.Stores {
		t.Errorf("L1 accesses %d != memory ops %d", c.L1DHits+c.L1DMisses, c.Loads+c.Stores)
	}
	if c.L2Hits+c.L2Misses != c.L1DMisses {
		t.Errorf("L2 accesses %d != L1 misses %d", c.L2Hits+c.L2Misses, c.L1DMisses)
	}
	if c.L3Hits+c.L3Misses != c.L2Misses {
		t.Errorf("L3 accesses %d != L2 misses %d", c.L3Hits+c.L3Misses, c.L2Misses)
	}
	if c.MemAccesses != c.L3Misses {
		t.Errorf("DRAM accesses %d != L3 misses %d", c.MemAccesses, c.L3Misses)
	}
	if c.BranchMispredicts > c.Branches {
		t.Error("more mispredicts than branches")
	}
}

// TestPower7RulerCollapse demonstrates the paper's per-microarchitecture
// Ruler caveat: on a POWER7-like core with symmetric FP pipes, the FP_MUL
// Ruler pressures the FP_ADD dimension too (they share ports), unlike on
// Sandy Bridge where the two decouple.
func TestPower7RulerCollapse(t *testing.T) {
	p7 := isa.Power7Like()
	p7.Cores = 2
	soloIPC, _ := runSolo(t, p7, rulers.FPAdd().NewStream(1), 2000, 20000)

	chip := MustNew(p7)
	chip.Assign(0, 0, rulers.FPAdd().NewStream(1))
	chip.Assign(0, 1, rulers.FPMul().NewStream(2))
	chip.Run(2000)
	chip.ResetCounters()
	chip.Run(20000)
	deg := (soloIPC - chip.Counters(0, 0).IPC()) / soloIPC
	if deg < 0.3 {
		t.Errorf("FP_MUL ruler degraded FP_ADD ruler by only %.3f on symmetric FPUs; dimensions should collapse", deg)
	}

	// On Sandy Bridge the same pair is port-disjoint (near-zero).
	snb := testConfig()
	soloSNB, _ := runSolo(t, snb, rulers.FPAdd().NewStream(1), 2000, 20000)
	chip2 := MustNew(snb)
	chip2.Assign(0, 0, rulers.FPAdd().NewStream(1))
	chip2.Assign(0, 1, rulers.FPMul().NewStream(2))
	chip2.Run(2000)
	chip2.ResetCounters()
	chip2.Run(20000)
	degSNB := (soloSNB - chip2.Counters(0, 0).IPC()) / soloSNB
	if degSNB > 0.05 {
		t.Errorf("Sandy Bridge FP rulers should decouple, got %.3f", degSNB)
	}
}
