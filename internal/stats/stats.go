// Package stats provides the statistics used throughout the reproduction:
// Pearson correlation (the paper's decorrelation analysis, Figures 7 and
// the Ruler linearity validation), percentiles, empirical CDFs and summary
// helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than two values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min and Max return the extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns an error when the lengths differ, fewer than two points are
// given, or either series is constant (undefined correlation).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 points, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Percentile returns the p-th percentile (p in [0,1]) using linear
// interpolation between order statistics. It returns 0 for empty input and
// clamps p to [0,1].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over the samples (copied and sorted).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) of the samples.
func (e *ECDF) Quantile(q float64) float64 { return Percentile(e.sorted, q) }

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// Median returns the 50th percentile of the samples.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Summary holds the five-number-plus-mean description used in experiment
// tables.
type Summary struct {
	N                   int
	Mean, Std           float64
	Min, P25, P50, P75  float64
	P90, P95, P99, Max1 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		P25:  Percentile(xs, 0.25),
		P50:  Percentile(xs, 0.50),
		P75:  Percentile(xs, 0.75),
		P90:  Percentile(xs, 0.90),
		P95:  Percentile(xs, 0.95),
		P99:  Percentile(xs, 0.99),
		Max1: Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max1)
}

// Window is a fixed-capacity sliding window of samples: once full, each
// Add overwrites the oldest sample. It is the storage behind qosd's
// request-latency percentiles, deduplicating the ring-buffer logic that
// used to live there. Not safe for concurrent use; callers lock.
type Window struct {
	buf   []float64
	idx   int
	count int
}

// NewWindow builds a window holding at most n samples (n must be positive).
func NewWindow(n int) *Window {
	if n <= 0 {
		panic("stats: window capacity must be positive")
	}
	return &Window{buf: make([]float64, n)}
}

// Add records one sample, evicting the oldest when the window is full.
func (w *Window) Add(v float64) {
	w.buf[w.idx] = v
	w.idx = (w.idx + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int { return w.count }

// Samples returns a copy of the held samples (unordered from the caller's
// perspective; suitable for Percentile/Max).
func (w *Window) Samples() []float64 {
	return append([]float64(nil), w.buf[:w.count]...)
}

// Percentile returns the p-th percentile of the held samples.
func (w *Window) Percentile(p float64) float64 { return Percentile(w.buf[:w.count], p) }

// Max returns the largest held sample (0 when empty).
func (w *Window) Max() float64 { return Max(w.buf[:w.count]) }

// MeanAbs returns the mean of |x| over xs.
func MeanAbs(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x)
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
