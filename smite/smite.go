// Package smite is the public API of the SMiTe reproduction: precise QoS
// prediction for SMT co-location, as described in "SMiTe: Precise QoS
// Prediction on Real-System SMT Processors to Improve Utilization in
// Warehouse Scale Computers" (MICRO 2014).
//
// The package wraps the methodology end to end:
//
//  1. Characterize applications with the Ruler stressor suite, obtaining a
//     decoupled sensitivity/contentiousness vector per sharing dimension
//     (FP_MUL, FP_ADD, FP_SHF, INT_ADD, L1, L2, L3).
//  2. Train the Equation 3 regression model from characterizations plus a
//     set of measured co-location degradations.
//  3. Predict the degradation of arbitrary co-locations — and, through the
//     M/M/1 queueing extension, percentile (tail) latency — without ever
//     co-locating the applications for real.
//
// The "real system" underneath is a deterministic cycle-approximate SMT
// multicore simulator (see DESIGN.md for the substitution rationale); the
// methodology layers are exactly the paper's.
//
// A minimal session:
//
//	sys, _ := smite.New(smite.IvyBridge.Config())
//	a, _ := smite.WorkloadByName("444.namd")
//	b, _ := smite.WorkloadByName("429.mcf")
//	chA, _ := sys.Characterize(a, smite.SMT)
//	chB, _ := sys.Characterize(b, smite.SMT)
//	m, _ := sys.TrainFromSets(trainApps, smite.SMT)
//	deg := m.PredictPair(chA, chB) // namd's degradation next to mcf
//
// Every measurement method has a ...Context form taking a context.Context
// that cancels in-flight simulation, and batch methods fan their
// independent simulation cells across a worker pool sized by
// WithParallelism — results are bit-identical at any worker count:
//
//	sys, _ := smite.New(smite.IvyBridge.Config(),
//	    smite.WithOptions(smite.FastOptions()),
//	    smite.WithParallelism(8),
//	    smite.WithProgress(func(done, total int) { fmt.Printf("\r%d/%d", done, total) }))
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	chars, err := sys.CharacterizeAllContext(ctx, apps, smite.SMT)
package smite

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/queueing"
	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/surrogate"
	"repro/internal/workload"
)

// Re-exported building blocks. These are aliases so that values flow
// freely between the public API and the internal packages.
type (
	// Spec describes an application model (instruction mix, working sets,
	// branch behaviour). Use the registry helpers or build your own.
	Spec = workload.Spec
	// Mix is a Spec's dynamic micro-op mix.
	Mix = workload.Mix
	// Characterization is an application's decoupled Sen/Con profile.
	Characterization = profile.Characterization
	// PairMeasurement is a measured co-location ground truth.
	PairMeasurement = profile.PairMeasurement
	// Options control measurement windows and reproducibility.
	Options = profile.Options
	// Placement selects SMT (same core) or CMP (across cores) sharing.
	Placement = profile.Placement
	// Dimension identifies one of the seven sharing dimensions.
	Dimension = rulers.Dimension
	// Ruler is one stressor of the measurement suite.
	Ruler = rulers.Ruler
	// MachineConfig is a full microarchitecture description.
	MachineConfig = isa.Config
	// MM1 is the FCFS queueing model for tail-latency prediction.
	MM1 = queueing.MM1
	// Surrogate is a fitted surrogate model set: closed-form curves that
	// answer characterization and degradation queries in microseconds,
	// each answer carrying an engine-backed error bound (see System.Fit).
	Surrogate = surrogate.Set
	// SurrogateModel is one application's fitted curves within a Surrogate.
	SurrogateModel = surrogate.Model
	// SurrogatePrediction is a surrogate degradation answer plus its bound.
	SurrogatePrediction = surrogate.Prediction
	// FitOptions parameterize surrogate fitting (training grid, ridge).
	FitOptions = surrogate.FitOptions
	// ProfileStore is the content-addressed on-disk store surrogate fits
	// warm-start from (see OpenProfileStore).
	ProfileStore = profstore.Store
	// FitStats reports how a warm-started fit was served (store hits vs
	// engine re-fits).
	FitStats = surrogate.StoreStats
)

// AccessPattern selects how a Spec generates data addresses.
type AccessPattern = workload.AccessPattern

// Access patterns.
const (
	// PatternRandom draws uniformly random addresses from the footprint.
	PatternRandom = workload.PatternRandom
	// PatternStride walks the footprint with a fixed stride.
	PatternStride = workload.PatternStride
	// PatternMixed mixes random and strided access per RandomFrac.
	PatternMixed = workload.PatternMixed
)

// Placements.
const (
	// SMT places co-runners on sibling hardware contexts.
	SMT = profile.SMT
	// CMP places co-runners on separate cores.
	CMP = profile.CMP
)

// Sharing dimensions.
const (
	DimFPMul  = rulers.DimFPMul
	DimFPAdd  = rulers.DimFPAdd
	DimFPShf  = rulers.DimFPShf
	DimIntAdd = rulers.DimIntAdd
	DimL1     = rulers.DimL1
	DimL2     = rulers.DimL2
	DimL3     = rulers.DimL3
	DimMemBW  = rulers.DimMemBW
	// NumDimensions is the sharing-dimension count.
	NumDimensions = rulers.NumDimensions
)

// Machine selects a stock microarchitecture (Table I of the paper).
type Machine int

const (
	// IvyBridge models the Intel i7-3770 (4 cores, 8 contexts).
	IvyBridge Machine = iota
	// SandyBridgeEN models the Intel Xeon E5-2420 (6 cores, 12 contexts).
	SandyBridgeEN
)

// Config returns the machine's full configuration for inspection or
// customisation (pass a modified copy to New).
func (m Machine) Config() MachineConfig {
	if m == SandyBridgeEN {
		return isa.SandyBridgeEN()
	}
	return isa.IvyBridge()
}

// DefaultOptions returns full-scale measurement windows; FastOptions
// returns reduced windows for quick experimentation.
func DefaultOptions() Options { return profile.DefaultOptions() }

// FastOptions returns reduced measurement windows.
func FastOptions() Options { return profile.FastOptions() }

// WorkloadByName finds a stock application model ("429.mcf",
// "web-search", ...).
func WorkloadByName(name string) (*Spec, error) { return workload.ByName(name) }

// SPECWorkloads returns the 29 SPEC CPU2006 models; CloudWorkloads the four
// CloudSuite latency-sensitive models.
func SPECWorkloads() []*Spec { return workload.SPECCPU2006() }

// CloudWorkloads returns the CloudSuite application models.
func CloudWorkloads() []*Spec { return workload.CloudSuiteApps() }

// TrainTestSplit returns the paper's even/odd SPEC split.
func TrainTestSplit() (train, test []*Spec) { return workload.EvenSPEC(), workload.OddSPEC() }

// StandardRulers returns the seven-Ruler suite sized to a machine.
func StandardRulers(cfg MachineConfig) []*Ruler { return rulers.StandardSet(cfg) }

// System is the characterization and measurement facade: one simulated
// machine plus memoised solo runs. It is safe for concurrent use.
type System struct {
	prof *profile.Profiler
	sur  *Surrogate
}

// sysOptions aggregates everything New configures: the measurement
// options plus construction-time extras that live outside profile.Options
// (the attached surrogate tier).
type sysOptions struct {
	opts Options
	sur  *Surrogate
}

// Option configures a System at construction (see New).
type Option func(*sysOptions)

// WithOptions replaces the System's measurement options wholesale. Apply
// it before the targeted options (WithCheck, WithParallelism, ...), which
// modify whatever base it established.
func WithOptions(o Options) Option {
	return func(dst *sysOptions) { dst.opts = o }
}

// WithCheck attaches the runtime invariant checker to every simulation the
// System runs, validating the engine's conservation laws every interval
// cycles (0 = engine default). Costs a few percent of simulation time.
func WithCheck(interval uint64) Option {
	return func(dst *sysOptions) {
		dst.opts.Check = true
		dst.opts.CheckInterval = interval
	}
}

// WithParallelism bounds the worker pool that batch operations
// (CharacterizeAll, MeasurePairs, TrainFromSets) fan their independent
// simulation cells across (0 = GOMAXPROCS). Results are bit-identical at
// any value; this is purely a throughput/footprint knob.
func WithParallelism(n int) Option {
	return func(dst *sysOptions) { dst.opts.Parallelism = n }
}

// WithProgress installs a progress callback for batch operations: done
// counts completed simulation cells of the current batch, total the
// batch's cell count. It may be invoked concurrently from worker
// goroutines.
func WithProgress(fn func(done, total int)) Option {
	return func(dst *sysOptions) { dst.opts.Progress = fn }
}

// WithSurrogate attaches a fitted surrogate set (System.Fit, LoadSurrogate)
// to the System, so surrogate-eligible queries can be answered in
// microseconds with an error bound instead of simulating. The engine path
// stays authoritative — consumers such as qosd fall back to it whenever an
// answer's bound exceeds their accuracy budget.
func WithSurrogate(set *Surrogate) Option {
	return func(dst *sysOptions) { dst.sur = set }
}

// New builds a System for a machine configuration (use Machine.Config for
// the two stock Table I machines). With no options it measures with
// DefaultOptions; functional options adjust from there:
//
//	sys, err := smite.New(smite.SandyBridgeEN.Config(),
//	    smite.WithOptions(smite.FastOptions()),
//	    smite.WithParallelism(8))
func New(cfg MachineConfig, opts ...Option) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	so := sysOptions{opts: DefaultOptions()}
	for _, opt := range opts {
		opt(&so)
	}
	return &System{prof: profile.NewProfiler(cfg, so.opts), sur: so.sur}, nil
}

// Machine returns the system's configuration.
func (s *System) Machine() MachineConfig { return s.prof.Config() }

// Surrogate returns the attached surrogate set, or nil when the System
// was built without one (WithSurrogate).
func (s *System) Surrogate() *Surrogate { return s.sur }

// Fit fits a surrogate set for the applications on this System's machine
// and measurement options: each application's (dimension, intensity) grid
// is sampled through the engine and closed-form curves are fitted per
// resource, recording max/mean absolute error bounds (see the Surrogate
// type). The zero FitOptions uses the standard training grid.
func (s *System) Fit(ctx context.Context, apps []*Spec, placement Placement, fo FitOptions) (*Surrogate, error) {
	return surrogate.Fit(ctx, s.prof, apps, placement, fo)
}

// FitWithStore is Fit with a warm-start against a content-addressed
// profile store: models already on disk under their content address load
// instead of re-simulating, and fresh fits are written back. Corrupt or
// version-skewed entries re-fit and heal.
func (s *System) FitWithStore(ctx context.Context, store *ProfileStore, apps []*Spec, placement Placement, fo FitOptions) (*Surrogate, FitStats, error) {
	return surrogate.FitWithStore(ctx, store, s.prof, apps, placement, fo)
}

// TrainSurrogate measures engine ground-truth degradations for every
// distinct pair among apps and embeds the trained Equation 3 model in the
// set, enabling Surrogate.Predict. Needs at least 4 applications.
func (s *System) TrainSurrogate(ctx context.Context, set *Surrogate, apps []*Spec) error {
	return set.TrainEq3(ctx, s.prof, apps)
}

// OpenProfileStore opens (creating if needed) a content-addressed on-disk
// profile store rooted at dir, for warm-starting fits across processes.
func OpenProfileStore(dir string) (*ProfileStore, error) { return profstore.Open(dir) }

// SaveSurrogate writes a fitted set to path as versioned JSON (atomic
// write); LoadSurrogate reads it back, rejecting version or dimension
// skew with typed errors.
func SaveSurrogate(path string, set *Surrogate) error { return surrogate.WriteSetFile(path, set) }

// LoadSurrogate reads a set saved by SaveSurrogate.
func LoadSurrogate(path string) (*Surrogate, error) { return surrogate.ReadSetFile(path) }

// Characterize measures an application's sensitivity and contentiousness
// along every sharing dimension by co-locating it with each Ruler.
func (s *System) Characterize(spec *Spec, placement Placement) (Characterization, error) {
	return s.prof.Characterize(spec, placement)
}

// CharacterizeContext is Characterize with cooperative cancellation: the
// simulation aborts mid-window when ctx is cancelled.
func (s *System) CharacterizeContext(ctx context.Context, spec *Spec, placement Placement) (Characterization, error) {
	return s.prof.CharacterizeContext(ctx, spec, placement)
}

// CharacterizeAll characterizes a batch of applications concurrently.
func (s *System) CharacterizeAll(specs []*Spec, placement Placement) ([]Characterization, error) {
	return s.prof.CharacterizeAll(specs, placement)
}

// CharacterizeAllContext is CharacterizeAll with cooperative cancellation.
// The batch's independent simulation cells fan across the WithParallelism
// worker pool with index-addressed reduction, so results are bit-identical
// to the sequential path at any worker count.
func (s *System) CharacterizeAllContext(ctx context.Context, specs []*Spec, placement Placement) ([]Characterization, error) {
	return s.prof.CharacterizeAllContext(ctx, specs, placement)
}

// MeasurePair measures the mutual degradation of two applications — the
// ground truth used for model training and validation.
func (s *System) MeasurePair(a, b *Spec, placement Placement) (PairMeasurement, error) {
	return s.prof.MeasurePair(a, b, placement)
}

// MeasurePairContext is MeasurePair with cooperative cancellation.
func (s *System) MeasurePairContext(ctx context.Context, a, b *Spec, placement Placement) (PairMeasurement, error) {
	return s.prof.MeasurePairContext(ctx, a, b, placement)
}

// MeasurePairs measures all distinct pairs between two sets.
func (s *System) MeasurePairs(as, bs []*Spec, placement Placement) ([]PairMeasurement, error) {
	return s.prof.MeasurePairs(as, bs, placement)
}

// MeasurePairsContext is MeasurePairs with cooperative cancellation and
// worker-pool fan-out (see CharacterizeAllContext).
func (s *System) MeasurePairsContext(ctx context.Context, as, bs []*Spec, placement Placement) ([]PairMeasurement, error) {
	return s.prof.MeasurePairsContext(ctx, as, bs, placement)
}

// SoloIPC returns an application's solo IPC (memoised).
func (s *System) SoloIPC(spec *Spec) (float64, error) {
	return s.SoloIPCContext(context.Background(), spec)
}

// SoloIPCContext is SoloIPC with cooperative cancellation.
func (s *System) SoloIPCContext(ctx context.Context, spec *Spec) (float64, error) {
	r, err := s.prof.SoloRunContext(ctx, profile.App(spec))
	if err != nil {
		return 0, err
	}
	return r.AppIPC, nil
}

// Model is the trained Equation 3 predictor.
type Model struct {
	inner model.Smite
}

// NewModel builds a Model from explicit Equation 3 coefficients — the
// programmatic counterpart of LoadModel for callers that already hold a
// trained model in memory (e.g. handing an experiment-trained model to a
// qosd registry without a round-trip through JSON).
func NewModel(coef [NumDimensions]float64, intercept float64) Model {
	return Model{inner: model.Smite{Coef: coef, Intercept: intercept}}
}

// Coefficients returns the per-dimension weights and the intercept c0.
func (m Model) Coefficients() ([NumDimensions]float64, float64) {
	return m.inner.Coef, m.inner.Intercept
}

// PredictPair predicts the victim's degradation when co-located with the
// aggressor, from their characterizations alone.
func (m Model) PredictPair(victim, aggressor Characterization) float64 {
	return m.inner.Predict(model.PairObs{SenA: victim.Sen, ConB: aggressor.Con})
}

// PredictPartial predicts a partial-occupancy co-location in which only
// `instances` of the victim's `threads` sibling contexts receive an
// aggressor instance. The victim characterization should be the
// partial-occupancy profile Sen(n) (see Profiler.CharacterizeJobRulers);
// the intercept is scaled by the occupied fraction so it vanishes at
// n = 0. This is the per-candidate formula of the CloudSuite and
// scale-out studies, and the one the qosd daemon serves.
func (m Model) PredictPartial(victim, aggressor Characterization, instances, threads int) float64 {
	return m.inner.PredictPartial(model.PairObs{SenA: victim.Sen, ConB: aggressor.Con}, instances, threads)
}

// PredictSurrogate evaluates this model on the surrogate feature vectors
// of the named pair, returning the prediction together with its
// propagated error bound. Use when the Equation 3 model was trained
// elsewhere (e.g. a qosd registry) rather than embedded in the set.
func (m Model) PredictSurrogate(set *Surrogate, victim, aggressor string) (SurrogatePrediction, error) {
	return set.PredictWith(m.inner, victim, aggressor)
}

// PredictScaled predicts a multithreaded victim's aggregate degradation
// when only `instances` of its `threads` hardware contexts receive an
// aggressor instance (the occupancy scaling used in the CloudSuite and
// scale-out studies).
func (m Model) PredictScaled(victim, aggressor Characterization, instances, threads int) float64 {
	if threads <= 0 {
		return 0
	}
	f := float64(instances) / float64(threads)
	if f > 1 {
		f = 1
	}
	return f * m.PredictPair(victim, aggressor)
}

// Train fits the model from characterizations and measured pairs
// (non-negative least squares on the Equation 3 features).
func Train(chars []Characterization, pairs []PairMeasurement) (Model, error) {
	obs, err := model.BuildObservations(chars, pairs)
	if err != nil {
		return Model{}, err
	}
	inner, err := model.TrainSmiteNNLS(obs)
	if err != nil {
		return Model{}, err
	}
	return Model{inner: inner}, nil
}

// TrainFromSets characterizes the given applications, measures all their
// pairwise co-locations and trains a model — the one-call training path.
func (s *System) TrainFromSets(apps []*Spec, placement Placement) (Model, []Characterization, error) {
	return s.TrainFromSetsContext(context.Background(), apps, placement)
}

// TrainFromSetsContext is TrainFromSets with cooperative cancellation and
// worker-pool fan-out of both the characterization and pair-measurement
// stages.
func (s *System) TrainFromSetsContext(ctx context.Context, apps []*Spec, placement Placement) (Model, []Characterization, error) {
	chars, err := s.CharacterizeAllContext(ctx, apps, placement)
	if err != nil {
		return Model{}, nil, err
	}
	pairs, err := s.MeasurePairsContext(ctx, apps, apps, placement)
	if err != nil {
		return Model{}, nil, err
	}
	m, err := Train(chars, pairs)
	if err != nil {
		return Model{}, nil, err
	}
	return m, chars, nil
}

// PredictTailLatency applies the queueing extension (Equation 6): the
// percentile latency of a service with per-thread service rate mu and
// offered load lambda under a predicted degradation.
func PredictTailLatency(percentile, mu, lambda, degradation float64) (float64, error) {
	if percentile <= 0 || percentile >= 1 {
		return 0, fmt.Errorf("smite: percentile %.3f outside (0,1)", percentile)
	}
	t := queueing.DegradedPercentile(percentile, mu, lambda, degradation)
	return t, nil
}

// SafeColocation reports whether co-locating aggressor next to victim keeps
// the victim's QoS (defined as retained average performance) within target,
// according to the model — the admission check a cluster scheduler runs.
func (m Model) SafeColocation(victim, aggressor Characterization, qosTarget float64) bool {
	return 1-m.PredictPair(victim, aggressor) >= qosTarget
}
