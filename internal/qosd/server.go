package qosd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/obs/trace"
	"repro/internal/queueing"
	"repro/internal/service"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/smite"
)

// maxBodyBytes bounds request bodies; profile uploads are the largest
// legitimate payload and stay far below this.
const maxBodyBytes = 8 << 20

// latencyWindow is the sliding-window size of the request-latency metric.
const latencyWindow = 1024

// Config tunes the server's production plumbing. The zero value picks
// sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrently-served requests; excess requests
	// queue until a slot frees or their timeout fires (then 429).
	// Defaults to 64.
	MaxInFlight int
	// RequestTimeout bounds each request end to end, including queueing
	// for a concurrency slot. Defaults to 5s.
	RequestTimeout time.Duration
	// Logger receives one structured line per request. Nil disables
	// request logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// System, when set, enables POST /v1/characterize: the daemon
	// simulates the Ruler sweep in-process under the request's context,
	// so the per-request timeout genuinely cancels in-flight simulation.
	// Nil disables the endpoint (501).
	System *smite.System
	// EnableTrace enables per-request span tracing: a request carrying
	// ?trace=1 is traced end to end and the rendered Chrome trace is kept
	// for GET /debug/trace/last (which is only mounted when this is set).
	// Off by default; tracing one request costs one Tracer allocation and
	// a JSON render.
	EnableTrace bool
	// Surrogate, when set, enables the microsecond surrogate tier: a
	// full-occupancy prediction whose victim and aggressor both have
	// fitted models is answered from the closed-form curves — with its
	// error bound in the response — whenever that bound stays within
	// SurrogateThreshold. Everything else falls back to the engine tier
	// (registry profiles). The set must not be mutated after NewServer.
	Surrogate *smite.Surrogate
	// SurrogateThreshold is the largest surrogate error bound the daemon
	// will serve: an answer whose bound is exactly the threshold is still
	// served from the surrogate tier, one strictly above it falls back to
	// the engine tier. 0 means DefaultSurrogateThreshold; a negative value
	// disables the surrogate tier outright (no bound is below it).
	SurrogateThreshold float64
	// SLO, when set, enables POST /v1/admit: predictive admission control
	// against per-class tail-latency budgets (DESIGN.md §13). Nil leaves
	// the endpoint mounted but answering 501 slo_disabled.
	SLO *SLOConfig
}

// DefaultSurrogateThreshold is the default accuracy budget of the
// surrogate tier: bounds above five degradation points fall back to the
// engine tier.
const DefaultSurrogateThreshold = 0.05

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	// Only the zero value means "default": an explicitly negative
	// threshold is a request to disable the surrogate tier (no error bound
	// is ever negative), not a mistake to paper over.
	if c.SurrogateThreshold == 0 {
		c.SurrogateThreshold = DefaultSurrogateThreshold
	}
	if c.SLO != nil {
		slo := c.SLO.withDefaults()
		c.SLO = &slo
	}
	return c
}

// Server serves placement decisions from a Registry over HTTP/JSON.
// Construct with NewServer and mount Handler on an http.Server.
type Server struct {
	cfg      Config
	reg      *Registry
	mux      *http.ServeMux
	inflight chan struct{}
	// memo collapses repeated identical predictions (a scheduler asks the
	// same pair many times as machines churn). Keys include the registry
	// generation, so uploads invalidate it wholesale.
	memo    *simcache.Cache[float64]
	metrics *serverMetrics

	// slo is the saturation analyzer behind /v1/admit; nil when the
	// daemon runs without an SLO config.
	slo *sloAnalyzer

	// lastTrace holds the Chrome-trace render of the most recent ?trace=1
	// request, served by /debug/trace/last.
	traceMu   sync.Mutex
	lastTrace []byte
}

// NewServer builds a Server over the registry.
func NewServer(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		memo:     simcache.New[float64](),
		metrics:  newServerMetrics(),
	}
	if cfg.SLO != nil {
		s.slo = newSLOAnalyzer(*cfg.SLO)
	}
	s.mux.HandleFunc("/healthz", s.method(http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.method(http.MethodGet, s.handleMetrics))
	s.mux.HandleFunc("/v1/predict", s.method(http.MethodPost, s.handlePredict))
	s.mux.HandleFunc("/v1/colocate", s.method(http.MethodPost, s.handleColocate))
	s.mux.HandleFunc("/v1/admit", s.method(http.MethodPost, s.handleAdmit))
	s.mux.HandleFunc("/v1/batch", s.method(http.MethodPost, s.handleBatch))
	s.mux.HandleFunc("/v1/profiles", s.method(http.MethodPost, s.handleProfiles))
	s.mux.HandleFunc("/v1/characterize", s.method(http.MethodPost, s.handleCharacterize))
	if cfg.EnableTrace {
		s.mux.HandleFunc("/debug/trace/last", s.method(http.MethodGet, s.handleTraceLast))
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &APIError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no route %s", r.URL.Path)})
	})
	s.registerGauges()
	return s
}

// registerGauges exposes the state the JSON /metrics endpoint reports from
// its owners as exposition-time callbacks, so the OpenMetrics view carries
// the same facts without a second bookkeeping path.
func (s *Server) registerGauges() {
	reg, m := s.metrics.reg, s.metrics
	reg.GaugeFunc("qosd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return m.now().Sub(m.start).Seconds() })
	reg.GaugeFunc("qosd_profiles", "Characterization profiles loaded in the registry.",
		func() float64 { return float64(s.reg.Len()) })
	reg.GaugeFunc("qosd_model_loaded", "1 when a prediction model is loaded, else 0.",
		func() float64 {
			if _, ok := s.reg.Model(); ok {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("qosd_prediction_cache_hits", "Prediction memo hits since start.",
		func() float64 { return float64(s.memo.Stats().Hits) })
	reg.GaugeFunc("qosd_prediction_cache_misses", "Prediction memo misses since start.",
		func() float64 { return float64(s.memo.Stats().Misses) })
	reg.GaugeFunc("qosd_prediction_cache_entries", "Prediction memo entries stored.",
		func() float64 { return float64(s.memo.Stats().Entries) })
	reg.GaugeFunc("qosd_inflight_requests", "Requests currently holding a concurrency slot.",
		func() float64 { return float64(len(s.inflight)) })
	reg.GaugeFunc("qosd_max_inflight", "Configured concurrency limit.",
		func() float64 { return float64(s.cfg.MaxInFlight) })
	// SLO gauges only exist on daemons running the admission gate, so
	// the OpenMetrics exposition of an SLO-less daemon is unchanged.
	if s.slo != nil {
		m.admits = reg.CounterVec("qosd_admit_decisions",
			"SLO admission decisions, by class and outcome.", "class", "outcome")
		reg.GaugeFunc("qosd_slo_rejection_rate",
			"Windowed fraction of rejected admissions.",
			func() float64 { rate, _ := s.slo.rejectionRate(); return rate })
		reg.GaugeFunc("qosd_slo_signal",
			"Saturation signal: 1 scale-up, 0 steady, -1 scale-down.",
			func() float64 {
				rate, _ := s.slo.rejectionRate()
				switch SaturationSignal(rate, s.cfg.SLO.ScaleUpThreshold, s.cfg.SLO.ScaleDownThreshold) {
				case SignalScaleUp:
					return 1
				case SignalScaleDown:
					return -1
				}
				return 0
			})
	}
}

// Registry returns the server's registry (for in-process loading).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the full middleware stack: instrumentation (logging +
// metrics) around the per-request timeout around the concurrency gate
// around the routes.
func (s *Server) Handler() http.Handler {
	h := http.Handler(s.mux)
	h = s.limitConcurrency(h)
	h = s.withTimeout(h)
	h = s.instrument(h)
	return h
}

// method gates a route on one HTTP method, answering anything else with
// the typed 405 envelope (the stdlib mux would answer in plain text).
func (s *Server) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			writeError(w, &APIError{Status: http.StatusMethodNotAllowed, Code: CodeMethodNotAllowed,
				Message: fmt.Sprintf("%s requires %s", r.URL.Path, want)})
			return
		}
		h(w, r)
	}
}

// withTimeout bounds every request with the configured deadline. Handlers
// are cheap; the deadline's real job is bounding time queued at the
// concurrency gate.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// limitConcurrency admits at most MaxInFlight requests at once. A request
// that cannot get a slot before its deadline is answered 429 so a loaded
// daemon degrades by shedding, not by queue collapse.
func (s *Server) limitConcurrency(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		case <-r.Context().Done():
			writeError(w, &APIError{Status: http.StatusTooManyRequests, Code: CodeOverloaded,
				Message: fmt.Sprintf("no capacity within %v (%d in flight)", s.cfg.RequestTimeout, s.cfg.MaxInFlight)})
		}
	})
}

// instrument records metrics, optionally traces the request, and emits one
// structured log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.metrics.now()
		rec := &statusRecorder{ResponseWriter: w}
		if s.cfg.EnableTrace && r.URL.Query().Get("trace") == "1" {
			s.serveTraced(rec, r, next)
		} else {
			next.ServeHTTP(rec, r)
		}
		elapsed := s.metrics.now().Sub(start)
		route := routeLabel(r)
		s.metrics.record(route, rec.code(), elapsed)
		if s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.code()),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// serveTraced runs one request under a fresh tracer and keeps the rendered
// Chrome trace for /debug/trace/last. Each traced request replaces the
// previous render; tracing is per-request opt-in, so the steady-state cost
// of an enabled-but-untraced server is one query-parameter check.
func (s *Server) serveTraced(rec *statusRecorder, r *http.Request, next http.Handler) {
	tr := trace.New()
	ctx, root := trace.Start(trace.NewContext(r.Context(), tr), routeLabel(r),
		trace.String("remote", r.RemoteAddr))
	next.ServeHTTP(rec, r.WithContext(ctx))
	root.SetAttr(trace.Int("status", rec.code()))
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err == nil {
		s.traceMu.Lock()
		s.lastTrace = buf.Bytes()
		s.traceMu.Unlock()
	}
}

// routeLabel buckets a request for metrics: known routes individually,
// pprof and everything else in catch-all buckets.
func routeLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/healthz", "/metrics", "/v1/predict", "/v1/colocate", "/v1/admit", "/v1/batch", "/v1/profiles", "/v1/characterize", "/debug/trace/last":
		return r.Method + " " + r.URL.Path
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		return "pprof"
	}
	return "other"
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) code() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}

// latencyBounds buckets request durations (milliseconds) for the
// OpenMetrics histogram. The JSON percentiles come from the sliding window
// instead, which the fixed bounds cannot reproduce.
var latencyBounds = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// serverMetrics is the serving-layer view over the obs/metrics registry:
// request counts live in a (route, class)-labelled counter family, request
// durations in both a fixed-bound histogram (for exposition) and a
// stats.Window (for the JSON percentile report the v1 API promises).
//
// now is the clock; tests inject a fake for deterministic durations and
// uptime. It is read without synchronization, so replace it before the
// server handles traffic.
type serverMetrics struct {
	now   func() time.Time
	start time.Time

	reg      *metrics.Registry
	requests *metrics.CounterVec
	latency  *metrics.Histogram
	// admits counts SLO admission decisions by (class, outcome); nil on
	// daemons without the admission gate.
	admits *metrics.CounterVec

	mu     sync.Mutex
	window *stats.Window
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	return &serverMetrics{
		now:   time.Now,
		start: time.Now(),
		reg:   reg,
		requests: reg.CounterVec("qosd_requests",
			"Requests served, by route and status class.", "route", "class"),
		latency: reg.Histogram("qosd_request_duration_ms",
			"End-to-end request duration in milliseconds.", latencyBounds),
		window: stats.NewWindow(latencyWindow),
	}
}

// statusClass buckets an HTTP status the way the v1 JSON metrics report
// does: 2xx, 4xx, 5xx, and "other" for everything else (1xx, 3xx).
func statusClass(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 400 && status < 500:
		return "4xx"
	case status >= 500 && status < 600:
		return "5xx"
	default:
		return "other"
	}
}

func (m *serverMetrics) record(route string, status int, d time.Duration) {
	m.requests.With(route, statusClass(status)).Inc()
	ms := float64(d) / float64(time.Millisecond)
	m.latency.Observe(ms)
	m.mu.Lock()
	m.window.Add(ms)
	m.mu.Unlock()
}

// snapshot folds the labelled counters back into the per-route structs the
// v1 JSON metrics response has always exposed, so migrating the storage
// onto the registry is invisible on the wire.
func (m *serverMetrics) snapshot() (map[string]RouteMetrics, LatencyMetrics, float64) {
	routes := make(map[string]RouteMetrics)
	for _, lc := range m.requests.Snapshot() {
		route, class := lc.Labels[0], lc.Labels[1]
		rm := routes[route]
		rm.Total += lc.Count
		switch class {
		case "2xx":
			rm.Status2xx += lc.Count
		case "4xx":
			rm.Status4xx += lc.Count
		case "5xx":
			rm.Status5xx += lc.Count
		default:
			rm.StatusElse += lc.Count
		}
		routes[route] = rm
	}
	m.mu.Lock()
	lat := LatencyMetrics{
		Window: m.window.Len(),
		P50:    m.window.Percentile(0.50),
		P90:    m.window.Percentile(0.90),
		P99:    m.window.Percentile(0.99),
		Max:    m.window.Max(),
	}
	m.mu.Unlock()
	return routes, lat, m.now().Sub(m.start).Seconds()
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, hasModel := s.reg.Model()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Profiles:    s.reg.Len(),
		ModelLoaded: hasModel,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// OpenMetrics text on request (scrapers); the JSON report stays the
	// default for the v1 API's existing consumers.
	if r.URL.Query().Get("format") == "openmetrics" ||
		strings.Contains(r.Header.Get("Accept"), "openmetrics") {
		w.Header().Set("Content-Type", metrics.ContentType)
		_ = s.metrics.reg.WriteOpenMetrics(w)
		return
	}
	routes, lat, uptime := s.metrics.snapshot()
	cs := s.memo.Stats()
	_, hasModel := s.reg.Model()
	var sloReport *SLOMetricsReport
	if s.slo != nil {
		sloReport = s.slo.report()
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeSeconds: uptime,
		Requests:      routes,
		Latency:       lat,
		Profiles:      s.reg.Len(),
		ModelLoaded:   hasModel,
		PredictionCache: CacheMetrics{
			Hits:    cs.Hits,
			Misses:  cs.Misses,
			Entries: cs.Entries,
		},
		MaxInFlight: s.cfg.MaxInFlight,
		SLO:         sloReport,
	})
}

func (s *Server) handleTraceLast(w http.ResponseWriter, _ *http.Request) {
	s.traceMu.Lock()
	b := s.lastTrace
	s.traceMu.Unlock()
	if b == nil {
		writeError(w, &APIError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no traced request yet (send one with ?trace=1)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	pred, apiErr := s.predict(r.Context(), req.Victim, req.Aggressor, req.Instances, req.Threads)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Victim:      req.Victim,
		Aggressor:   req.Aggressor,
		Degradation: pred.deg,
		Tier:        pred.tier,
		ErrorBound:  pred.bound,
		Generation:  pred.gen,
	})
}

func (s *Server) handleColocate(w http.ResponseWriter, r *http.Request) {
	var req ColocateRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.QoSTarget <= 0 || req.QoSTarget > 1 {
		writeError(w, invalidArgument("qos_target %g outside (0,1]", req.QoSTarget))
		return
	}
	var p float64
	if req.Queue != nil {
		q := req.Queue
		if q.Mu <= 0 || q.Lambda <= 0 {
			writeError(w, invalidArgument("queue rates must be positive (mu=%g, lambda=%g)", q.Mu, q.Lambda))
			return
		}
		p = q.Percentile
		if p == 0 {
			p = 0.90
		}
		if p <= 0 || p >= 1 {
			writeError(w, invalidArgument("queue percentile %g outside (0,1)", q.Percentile))
			return
		}
	}
	pred, apiErr := s.predict(r.Context(), req.Victim, req.Aggressor, req.Instances, req.Threads)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	deg := pred.deg
	// Same comparison as Model.SafeColocation, on the (possibly partial)
	// predicted degradation.
	resp := ColocateResponse{
		Victim:      req.Victim,
		Aggressor:   req.Aggressor,
		Degradation: deg,
		QoS:         service.AvgQoS(deg),
		Safe:        1-deg >= req.QoSTarget,
	}
	if req.Queue != nil {
		t := queueing.DegradedPercentile(p, req.Queue.Mu, req.Queue.Lambda, deg)
		if math.IsInf(t, 1) {
			// The degradation pushed the queue past stability; the closed
			// form saturates to +Inf, which JSON cannot carry.
			resp.Saturated = true
		} else {
			resp.TailLatency = &t
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdmit is the predictive SLO admission gate: predict the pair's
// degradation through the tiered predictor, inflate it by the surrogate
// error bound when the surrogate tier answered, and admit only if the
// Eq. 6 tail estimate at the class percentile fits the class budget
// minus the configured headroom. Every decision feeds the saturation
// analyzer.
func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if s.cfg.SLO == nil {
		writeError(w, &APIError{Status: http.StatusNotImplemented, Code: CodeSLODisabled,
			Message: "daemon started without SLO classes (run smited with -slo-config)"})
		return
	}
	if req.Class == "" {
		writeError(w, invalidArgument("class must be set"))
		return
	}
	class, ok := s.cfg.SLO.Class(req.Class)
	if !ok {
		writeError(w, &APIError{Status: http.StatusNotFound, Code: CodeUnknownClass,
			Message: fmt.Sprintf("no SLO class %q configured", req.Class)})
		return
	}
	if req.Queue.Mu <= 0 || req.Queue.Lambda <= 0 {
		writeError(w, invalidArgument("queue rates must be positive (mu=%g, lambda=%g)", req.Queue.Mu, req.Queue.Lambda))
		return
	}
	if req.Queue.Percentile != 0 {
		writeError(w, invalidArgument("queue percentile is fixed by the SLO class (%q uses %g); leave it unset",
			class.Name, class.Percentile))
		return
	}
	pred, apiErr := s.predict(r.Context(), req.Victim, req.Aggressor, req.Instances, req.Threads)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	dec := EvaluateAdmission(pred.deg, pred.bound, req.Queue.Mu, req.Queue.Lambda, class, s.cfg.SLO.Headroom)
	s.slo.record(class.Name, dec.Admitted)
	if s.metrics.admits != nil {
		outcome := "admitted"
		if !dec.Admitted {
			outcome = "rejected"
		}
		s.metrics.admits.With(class.Name, outcome).Inc()
	}
	resp := AdmitResponse{
		Victim:               req.Victim,
		Aggressor:            req.Aggressor,
		Class:                class.Name,
		Admitted:             dec.Admitted,
		Reason:               dec.Reason,
		Degradation:          pred.deg,
		EffectiveDegradation: dec.EffectiveDegradation,
		Tier:                 pred.tier,
		ErrorBound:           pred.bound,
		Generation:           pred.gen,
		Budget:               class.Budget,
		EffectiveBudget:      dec.EffectiveBudget,
		Percentile:           class.Percentile,
		Headroom:             s.cfg.SLO.Headroom,
	}
	if dec.Saturated {
		// +Inf cannot travel as JSON; the flag carries the fact.
		resp.Saturated = true
	} else {
		t := dec.Tail
		resp.TailLatency = &t
	}
	if !dec.Admitted {
		resp.IsolationRemedy = SuggestIsolation(pred.deg, pred.bound,
			req.Queue.Mu, req.Queue.Lambda, class, s.cfg.SLO.Headroom, nil)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.QoSTarget < 0 || req.QoSTarget > 1 {
		writeError(w, invalidArgument("qos_target %g outside [0,1]", req.QoSTarget))
		return
	}
	resp := BatchResponse{Victim: req.Victim, Results: make([]BatchResult, 0, len(req.Candidates))}
	for i, c := range req.Candidates {
		pred, apiErr := s.predict(r.Context(), req.Victim, c.Aggressor, c.Instances, req.Threads)
		if apiErr != nil {
			apiErr.Message = fmt.Sprintf("candidate %d: %s", i, apiErr.Message)
			writeError(w, apiErr)
			return
		}
		deg := pred.deg
		res := BatchResult{Aggressor: c.Aggressor, Instances: c.Instances, Degradation: deg}
		if req.QoSTarget > 0 {
			safe := 1-deg >= req.QoSTarget
			res.Safe = &safe
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	added, err := s.reg.LoadProfiles(r.Body)
	if err != nil {
		writeError(w, uploadError(err))
		return
	}
	writeJSON(w, http.StatusOK, ProfilesResponse{Added: added, Total: s.reg.Len()})
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req CharacterizeRequest
	if apiErr := decodeJSON(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if s.cfg.System == nil {
		writeError(w, &APIError{Status: http.StatusNotImplemented, Code: CodeSimulationDisabled,
			Message: "daemon started without a simulation system (run smited with -simulate)"})
		return
	}
	var placement smite.Placement
	switch strings.ToLower(req.Placement) {
	case "", "smt":
		placement = smite.SMT
	case "cmp":
		placement = smite.CMP
	default:
		writeError(w, invalidArgument("placement %q is not smt or cmp", req.Placement))
		return
	}
	spec, err := smite.WorkloadByName(req.App)
	if err != nil {
		writeError(w, &APIError{Status: http.StatusNotFound, Code: CodeUnknownProfile,
			Message: err.Error()})
		return
	}
	char, err := s.cfg.System.CharacterizeContext(r.Context(), spec, placement)
	if err != nil {
		if apiErr := ctxError(err); apiErr != nil {
			writeError(w, apiErr)
			return
		}
		writeError(w, &APIError{Status: http.StatusInternalServerError, Code: "internal",
			Message: err.Error()})
		return
	}
	resp := CharacterizeResponse{App: req.App, Placement: placement.String(), Profile: char}
	if req.Register {
		s.reg.AddProfiles([]smite.Characterization{char})
		resp.Registered = true
		resp.Total = s.reg.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// prediction is the result of the shared prediction core: the degradation
// plus which tier produced it (and the certificate bound on surrogate
// answers). Only /v1/predict exposes the tier on the wire; colocate and
// batch use the degradation alone.
type prediction struct {
	deg   float64
	tier  string
	bound float64
	// gen is the registry generation the answer was computed under. A
	// closed-loop controller compares it across calls to tell whether a
	// re-characterization (profile upload, model swap) landed between two
	// predictions for the same pair.
	gen uint64
}

// predict is the shared prediction core. It tries the surrogate tier
// first: a full-occupancy pair whose victim and aggressor both have
// fitted curves is answered from the closed forms when the propagated
// error bound stays within the configured threshold — microseconds, no
// memo needed. Everything else (partial occupancy, apps without fitted
// models, bounds over threshold) takes the engine tier: resolve profiles
// and model under one registry snapshot, validate the partial-occupancy
// arguments, and memoize by (generation, pair, occupancy). The context
// bounds the memo wait: a request whose deadline fires while another
// request computes the same key stops waiting instead of burning its
// remaining budget.
func (s *Server) predict(ctx context.Context, victim, aggressor string, instances, threads int) (prediction, *APIError) {
	if victim == "" {
		return prediction{}, invalidArgument("victim must be set")
	}
	if aggressor == "" {
		return prediction{}, invalidArgument("aggressor must be set")
	}
	if threads < 0 || instances < 0 {
		return prediction{}, invalidArgument("instances (%d) and threads (%d) must be non-negative", instances, threads)
	}
	if threads == 0 && instances > 0 {
		return prediction{}, invalidArgument("instances (%d) set without threads", instances)
	}
	if threads > 0 && (instances < 1 || instances > threads) {
		return prediction{}, invalidArgument("instances (%d) outside [1, threads=%d]", instances, threads)
	}
	ctx, span := trace.Start(ctx, "qosd.predict",
		trace.String("victim", victim), trace.String("aggressor", aggressor))
	defer span.End()
	if set := s.cfg.Surrogate; set != nil && threads == 0 {
		// The surrogate curves encode the full-occupancy characterization
		// only, so partial-occupancy requests always take the engine tier.
		if m, gen, ok := s.reg.modelGen(); ok {
			if pred, err := m.PredictSurrogate(set, victim, aggressor); err == nil && pred.Bound <= s.cfg.SurrogateThreshold {
				span.SetAttr(trace.String("tier", TierSurrogate))
				return prediction{deg: sanitizeDeg(pred.Degradation), tier: TierSurrogate, bound: pred.Bound, gen: gen}, nil
			}
		}
	}
	v, a, m, gen, apiErr := s.reg.snapshot(victim, aggressor)
	if apiErr != nil {
		return prediction{}, apiErr
	}
	key := simcache.KeyOf("qosd/predict/v2", gen, victim, aggressor, instances, threads)
	deg, _, err := s.memo.DoContext(ctx, key, func(context.Context) (float64, error) {
		// threads == 0 degenerates to the plain Equation 3 pair prediction.
		return m.PredictPartial(v, a, instances, threads), nil
	})
	if err != nil {
		if apiErr := ctxError(err); apiErr != nil {
			return prediction{}, apiErr
		}
		// The compute function cannot fail; kept for the Do contract.
		return prediction{}, &APIError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	return prediction{deg: sanitizeDeg(deg), tier: TierEngine, gen: gen}, nil
}

// sanitizeDeg clamps a non-finite predicted degradation to 1 (complete
// degradation). A NaN or ±Inf can only come from corrupt profile
// features; JSON cannot carry it, and before this guard it aborted the
// response encoder mid-reply (the client saw an EOF instead of an
// answer). Every consumer treats deg >= 1 as a saturated, never-safe
// co-location, which is the conservative reading of a garbage profile.
func sanitizeDeg(deg float64) float64 {
	if math.IsNaN(deg) || math.IsInf(deg, 0) {
		return 1
	}
	return deg
}

// ---- helpers ----

// ctxError maps a context cancellation onto the 504 envelope, or nil if
// the error is not a cancellation. Both deadline expiry and client
// disconnects land here; either way the simulation work was stopped.
func ctxError(err error) *APIError {
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		return nil
	}
	return &APIError{Status: http.StatusGatewayTimeout, Code: CodeDeadlineExceeded,
		Message: fmt.Sprintf("request cancelled while computing: %v", err)}
}

func invalidArgument(format string, args ...any) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: CodeInvalidArgument,
		Message: fmt.Sprintf(format, args...)}
}

// uploadError maps a profile-load failure onto the 422 envelope. All of
// smite's typed load errors (ErrCorrupt, ErrVersionSkew,
// ErrDimensionMismatch) land here, as do transport-level truncations;
// the message keeps the specific class visible to the caller.
func uploadError(err error) *APIError {
	return &APIError{Status: http.StatusUnprocessableEntity, Code: CodeUnprocessable,
		Message: err.Error()}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *APIError {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		return &APIError{Status: http.StatusBadRequest, Code: CodeBadJSON,
			Message: fmt.Sprintf("decoding request body: %v", err)}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, e *APIError) {
	writeJSON(w, e.Status, errorEnvelope{Error: e})
}
