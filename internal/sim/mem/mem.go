// Package mem models the chip's memory controller as a bandwidth-limited
// FIFO service point.
//
// Every L3 miss is serialised at one request per ServiceInterval cycles
// chip-wide on top of a fixed base latency, so memory-bandwidth contention
// — the uncore dimension prior CMP work (Bubble-Up) models — emerges as
// queueing delay when co-located workloads stream together.
package mem

// Controller serialises memory requests. It is not safe for concurrent use.
type Controller struct {
	baseLatency     uint64
	serviceInterval uint64

	nextFree uint64

	requests   uint64
	queuedFor  uint64 // cumulative cycles spent waiting behind other requests
	maxBacklog uint64
}

// New builds a controller with the given DRAM base latency and the
// bandwidth-defining service interval (cycles between request grants).
func New(baseLatency, serviceInterval uint64) *Controller {
	if serviceInterval == 0 {
		panic("mem: service interval must be positive")
	}
	return &Controller{baseLatency: baseLatency, serviceInterval: serviceInterval}
}

// Request admits a memory request at cycle now and returns the cycle at
// which the data is available.
func (m *Controller) Request(now uint64) (completeAt uint64) {
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + m.serviceInterval
	wait := start - now
	m.requests++
	m.queuedFor += wait
	if wait > m.maxBacklog {
		m.maxBacklog = wait
	}
	return start + m.baseLatency
}

// Backlog returns how many cycles of already-granted service extend beyond
// cycle now — the queueing delay the next request admitted at now would
// see. Zero means the controller is idle. Read-only; the timeline sampler
// uses it as the DRAM queue-occupancy signal.
func (m *Controller) Backlog(now uint64) uint64 {
	if m.nextFree > now {
		return m.nextFree - now
	}
	return 0
}

// Stats returns the request count, the average queueing delay in cycles and
// the maximum backlog observed.
func (m *Controller) Stats() (requests uint64, avgQueue float64, maxBacklog uint64) {
	avg := 0.0
	if m.requests > 0 {
		avg = float64(m.queuedFor) / float64(m.requests)
	}
	return m.requests, avg, m.maxBacklog
}

// ResetStats zeroes the counters without releasing the current backlog.
func (m *Controller) ResetStats() {
	m.requests, m.queuedFor, m.maxBacklog = 0, 0, 0
}

// Reset restores the controller to its post-New state: backlog released and
// statistics zeroed.
func (m *Controller) Reset() {
	m.nextFree = 0
	m.ResetStats()
}
