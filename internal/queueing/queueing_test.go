package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (MM1{Lambda: 1, Mu: 2}).Validate(); err != nil {
		t.Errorf("stable queue rejected: %v", err)
	}
	for _, q := range []MM1{
		{Lambda: 2, Mu: 1},
		{Lambda: 1, Mu: 1},
		{Lambda: 0, Mu: 1},
		{Lambda: 1, Mu: 0},
	} {
		if err := q.Validate(); err == nil {
			t.Errorf("invalid queue %+v accepted", q)
		}
	}
}

func TestClosedFormsKnown(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100}
	if rho := q.Utilization(); rho != 0.5 {
		t.Errorf("rho = %g", rho)
	}
	if m := q.MeanResponseTime(); math.Abs(m-0.02) > 1e-12 {
		t.Errorf("mean response = %g, want 0.02", m)
	}
	// t_p = -ln(1-p)/(mu-lambda)
	want := -math.Log(0.1) / 50
	if p90 := q.Percentile(0.90); math.Abs(p90-want) > 1e-12 {
		t.Errorf("p90 = %g, want %g", p90, want)
	}
	// CDF(Percentile(p)) == p
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got := q.ResponseTimeCDF(q.Percentile(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(t_%g) = %g", p, got)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	q := MM1{Lambda: 30, Mu: 100}
	// Trapezoidal integration of Equation 4.
	sum := 0.0
	dt := 1e-5
	for x := 0.0; x < 0.5; x += dt {
		sum += q.ResponseTimePDF(x) * dt
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("PDF integral = %g", sum)
	}
	if q.ResponseTimePDF(-1) != 0 {
		t.Error("PDF positive at negative time")
	}
}

func TestDegraded(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100}
	d := q.Degraded(0.2)
	if d.Mu != 80 || d.Lambda != 50 {
		t.Errorf("Degraded = %+v", d)
	}
	// Equation 6 agrees with composing Degraded and Percentile.
	p90a := DegradedPercentile(0.9, 100, 50, 0.2)
	p90b := d.Percentile(0.9)
	if math.Abs(p90a-p90b) > 1e-12 {
		t.Errorf("Equation 6 mismatch: %g vs %g", p90a, p90b)
	}
}

// Regression: an unstable queue (λ ≥ μ, or any queue Degraded pushed past
// saturation) must report +Inf latency from every closed form — the naked
// 1/(μ−λ) formulas used to return silently *negative* latencies, which a
// serving daemon would have handed to schedulers as "great tail latency".
func TestUnstableQueueClosedFormsSaturate(t *testing.T) {
	base := MM1{Lambda: 50, Mu: 100}
	unstable := []MM1{
		{Lambda: 100, Mu: 100}, // λ == μ
		{Lambda: 150, Mu: 100}, // λ > μ
		base.Degraded(0.5),     // μ' = 50 == λ
		base.Degraded(0.9),     // μ' = 10 < λ
		base.Degraded(1.0),     // μ' = 0
		base.Degraded(1.1),     // μ' < 0
		{Lambda: 50, Mu: -10},  // negative service rate directly
	}
	for _, q := range unstable {
		if q.Validate() == nil {
			t.Errorf("queue %+v should fail validation", q)
		}
		if m := q.MeanResponseTime(); !math.IsInf(m, 1) {
			t.Errorf("MeanResponseTime(%+v) = %g, want +Inf", q, m)
		}
		for _, p := range []float64{0.5, 0.9, 0.99} {
			if v := q.Percentile(p); !math.IsInf(v, 1) {
				t.Errorf("Percentile(%+v, %g) = %g, want +Inf", q, p, v)
			}
		}
		if v := q.ResponseTimeCDF(1); v != 0 {
			t.Errorf("ResponseTimeCDF(%+v, 1) = %g, want 0", q, v)
		}
		if v := q.ResponseTimePDF(1); v != 0 {
			t.Errorf("ResponseTimePDF(%+v, 1) = %g, want 0", q, v)
		}
	}
	// Degraded composes with the guards exactly like Equation 6's own
	// saturation branch, across the stability boundary.
	for _, deg := range []float64{0.9, 1.0, 1.1} {
		direct := DegradedPercentile(0.9, base.Mu, base.Lambda, deg)
		composed := base.Degraded(deg).Percentile(0.9)
		if direct != composed && !(math.IsInf(direct, 1) && math.IsInf(composed, 1)) {
			t.Errorf("deg=%g: DegradedPercentile %g != Degraded().Percentile %g", deg, direct, composed)
		}
		if composed < 0 {
			t.Errorf("deg=%g: negative percentile latency %g", deg, composed)
		}
	}
	// A still-stable degradation keeps its finite value.
	if v := base.Degraded(0.2).Percentile(0.9); math.IsInf(v, 1) || v <= 0 {
		t.Errorf("stable degraded queue p90 = %g, want finite positive", v)
	}
}

func TestDegradedPercentileSaturation(t *testing.T) {
	if !math.IsInf(DegradedPercentile(0.9, 100, 50, 0.6), 1) {
		t.Error("saturated queue should have infinite percentile latency")
	}
	if DegradedPercentile(0, 100, 50, 0) != 0 {
		t.Error("0th percentile should be 0")
	}
}

// Regression: degradations at or past the saturation boundary — deg = 1.0
// exactly (μ' = 0) and non-finite values from corrupt profiles — must all
// return +Inf. Before the explicit guard, NaN leaked through `d <= 0` (NaN
// comparisons are false) and deg = −Inf produced d = +Inf and a zero
// "latency".
func TestDegradedPercentileNonFiniteEdges(t *testing.T) {
	cases := []struct {
		name string
		deg  float64
	}{
		{"deg exactly 1.0", 1.0},
		{"deg just past 1.0", 1.0 + 1e-12},
		{"NaN degradation", math.NaN()},
		{"+Inf degradation", math.Inf(1)},
		{"-Inf degradation", math.Inf(-1)},
		{"deg at stability boundary", 0.5}, // μ' = 50 == λ
	}
	for _, tc := range cases {
		got := DegradedPercentile(0.9, 100, 50, tc.deg)
		if !math.IsInf(got, 1) {
			t.Errorf("%s: DegradedPercentile = %g, want +Inf", tc.name, got)
		}
	}
	// NaN rates must not escape as finite-looking results either.
	if got := DegradedPercentile(0.9, math.NaN(), 50, 0.1); !math.IsInf(got, 1) {
		t.Errorf("NaN mu: DegradedPercentile = %g, want +Inf", got)
	}
	if got := DegradedPercentile(0.9, 100, math.NaN(), 0.1); !math.IsInf(got, 1) {
		t.Errorf("NaN lambda: DegradedPercentile = %g, want +Inf", got)
	}
}

// Property: percentile latency is monotone in p and in degradation.
func TestPercentileMonotonicity(t *testing.T) {
	if err := quick.Check(func(seedMu, seedLam uint8) bool {
		mu := 10 + float64(seedMu)
		lambda := mu * (0.1 + 0.8*float64(seedLam)/255)
		q := MM1{Lambda: lambda, Mu: mu}
		prev := 0.0
		for p := 0.1; p < 1; p += 0.1 {
			v := q.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		// Degradation monotonicity at fixed p.
		prev = 0
		for d := 0.0; (1-d)*mu > lambda; d += 0.05 {
			v := DegradedPercentile(0.9, mu, lambda, d)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// The discrete-event simulator must agree with the closed forms — this is
// the validation behind using it as the "measured" side of Figure 13.
func TestSimulateMatchesClosedForm(t *testing.T) {
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		q := MM1{Lambda: 100 * rho, Mu: 100}
		res, err := q.Simulate(300_000, 42)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.Mean-q.MeanResponseTime()) / q.MeanResponseTime(); rel > 0.03 {
			t.Errorf("rho=%.1f: simulated mean %.5f vs closed form %.5f (%.1f%% off)", rho, res.Mean, q.MeanResponseTime(), rel*100)
		}
		for _, p := range []float64{0.5, 0.9, 0.99} {
			want := q.Percentile(p)
			got := res.Percentile(p)
			if rel := math.Abs(got-want) / want; rel > 0.05 {
				t.Errorf("rho=%.1f p%.0f: simulated %.5f vs closed form %.5f", rho, p*100, got, want)
			}
		}
	}
}

func TestSimulateDeterminism(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100}
	a, err := q.Simulate(10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := q.Simulate(10000, 7)
	if a.P90 != b.P90 || a.Mean != b.Mean {
		t.Error("simulation not deterministic")
	}
	c, _ := q.Simulate(10000, 8)
	if a.P90 == c.P90 {
		t.Error("different seeds produced identical results")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := (MM1{Lambda: 2, Mu: 1}).Simulate(100, 1); err == nil {
		t.Error("unstable queue simulated")
	}
	if _, err := (MM1{Lambda: 1, Mu: 2}).Simulate(0, 1); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestSimResultPercentileBounds(t *testing.T) {
	q := MM1{Lambda: 10, Mu: 100}
	res, err := q.Simulate(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Percentile(0) > res.P50 || res.P50 > res.P90 || res.P90 > res.MaxSojourn {
		t.Errorf("percentile ordering violated: %+v", res)
	}
}
