// Package pmu defines the per-context performance monitoring counters the
// simulator exposes.
//
// The counter set is the one the paper's PMU-based baseline model consumes
// (Section IV-B1): instructions/cycle, iTLB misses, dTLB load/store misses,
// i-cache misses, per-level cache hits/misses, memory accesses and branch
// mispredictions — plus the per-port dispatch counters
// (UOPS_DISPATCHED_PORT:PORT0,1,5) used to validate Ruler port utilisation
// and to produce the Figure 3/5 utilisation CDFs.
package pmu

import (
	"fmt"

	"repro/internal/sim/isa"
)

// Counters is a snapshot of one hardware context's PMU state.
// All counts are cumulative since the last reset.
type Counters struct {
	Cycles       uint64
	Instructions uint64

	// PortUops[p] counts micro-ops dispatched to port p
	// (UOPS_DISPATCHED_PORT:PORTp).
	PortUops [isa.NumPorts]uint64

	L1DHits     uint64
	L1DMisses   uint64
	L2Hits      uint64
	L2Misses    uint64
	L3Hits      uint64
	L3Misses    uint64
	MemAccesses uint64 // requests that reached DRAM (== L3Misses)

	Branches          uint64
	BranchMispredicts uint64

	DTLBLoadMisses  uint64
	DTLBStoreMisses uint64
	ITLBMisses      uint64
	ICacheMisses    uint64

	Loads  uint64
	Stores uint64
}

// Sub returns c - base, counter-wise. Used to extract a measurement window
// from cumulative counts.
func (c Counters) Sub(base Counters) Counters {
	d := c
	d.Cycles -= base.Cycles
	d.Instructions -= base.Instructions
	for p := range d.PortUops {
		d.PortUops[p] -= base.PortUops[p]
	}
	d.L1DHits -= base.L1DHits
	d.L1DMisses -= base.L1DMisses
	d.L2Hits -= base.L2Hits
	d.L2Misses -= base.L2Misses
	d.L3Hits -= base.L3Hits
	d.L3Misses -= base.L3Misses
	d.MemAccesses -= base.MemAccesses
	d.Branches -= base.Branches
	d.BranchMispredicts -= base.BranchMispredicts
	d.DTLBLoadMisses -= base.DTLBLoadMisses
	d.DTLBStoreMisses -= base.DTLBStoreMisses
	d.ITLBMisses -= base.ITLBMisses
	d.ICacheMisses -= base.ICacheMisses
	d.Loads -= base.Loads
	d.Stores -= base.Stores
	return d
}

// IPC returns instructions per cycle for the window (0 when no cycles).
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// PortUtilization returns the fraction of window cycles port p dispatched a
// micro-op from this context.
func (c Counters) PortUtilization(p isa.Port) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.PortUops[p]) / float64(c.Cycles)
}

// PerCycle divides a raw count by the window's cycle count.
func (c Counters) PerCycle(count uint64) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(count) / float64(c.Cycles)
}

// NumPMUFeatures is the number of rates returned by Features: the 11
// counters the paper's best PMU baseline model uses.
const NumPMUFeatures = 11

// FeatureNames lists the Features entries in order, matching the paper's
// Section IV-B1 enumeration.
var FeatureNames = [NumPMUFeatures]string{
	"instructions/cycle",
	"iTLB-misses/cycle",
	"dTLB-load-misses/cycle",
	"dTLB-store-misses/cycle",
	"i-cache-misses/cycle",
	"L1D-hits/cycle",
	"L2-hits/cycle",
	"L2-misses/cycle",
	"L3-hits/cycle",
	"MEM-hits/cycle",
	"branch-mispredictions/cycle",
}

// Features extracts the 11 per-cycle rates used by the PMU-based baseline
// prediction model (Equation 9).
func (c Counters) Features() [NumPMUFeatures]float64 {
	return [NumPMUFeatures]float64{
		c.IPC(),
		c.PerCycle(c.ITLBMisses),
		c.PerCycle(c.DTLBLoadMisses),
		c.PerCycle(c.DTLBStoreMisses),
		c.PerCycle(c.ICacheMisses),
		c.PerCycle(c.L1DHits),
		c.PerCycle(c.L2Hits),
		c.PerCycle(c.L2Misses),
		c.PerCycle(c.L3Hits),
		c.PerCycle(c.MemAccesses),
		c.PerCycle(c.BranchMispredicts),
	}
}

// Field is one named counter value, as enumerated by FieldList.
type Field struct {
	Name  string
	Value uint64
}

// FieldList enumerates every counter with its name, in a fixed order. The
// verification layer uses it to compare snapshots counter-by-counter (so a
// violation can name the offending counter) and to hash counter dumps for
// determinism checks. Any counter added to the struct must be added here;
// TestFieldListComplete enforces that with reflection.
func (c Counters) FieldList() []Field {
	fields := []Field{
		{"Cycles", c.Cycles},
		{"Instructions", c.Instructions},
	}
	for p := range c.PortUops {
		fields = append(fields, Field{fmt.Sprintf("PortUops[%d]", p), c.PortUops[p]})
	}
	return append(fields,
		Field{"L1DHits", c.L1DHits},
		Field{"L1DMisses", c.L1DMisses},
		Field{"L2Hits", c.L2Hits},
		Field{"L2Misses", c.L2Misses},
		Field{"L3Hits", c.L3Hits},
		Field{"L3Misses", c.L3Misses},
		Field{"MemAccesses", c.MemAccesses},
		Field{"Branches", c.Branches},
		Field{"BranchMispredicts", c.BranchMispredicts},
		Field{"DTLBLoadMisses", c.DTLBLoadMisses},
		Field{"DTLBStoreMisses", c.DTLBStoreMisses},
		Field{"ITLBMisses", c.ITLBMisses},
		Field{"ICacheMisses", c.ICacheMisses},
		Field{"Loads", c.Loads},
		Field{"Stores", c.Stores},
	)
}

// String renders a compact human-readable summary.
func (c Counters) String() string {
	return fmt.Sprintf("cycles=%d insts=%d ipc=%.3f ports=[%d %d %d %d %d %d] l1=%d/%d l2=%d/%d l3=%d/%d mem=%d brmiss=%d",
		c.Cycles, c.Instructions, c.IPC(),
		c.PortUops[0], c.PortUops[1], c.PortUops[2], c.PortUops[3], c.PortUops[4], c.PortUops[5],
		c.L1DHits, c.L1DMisses, c.L2Hits, c.L2Misses, c.L3Hits, c.L3Misses,
		c.MemAccesses, c.BranchMispredicts)
}
