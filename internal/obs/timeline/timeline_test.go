package timeline

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

// testChip builds an IvyBridge chip with an SMT pair (memory-bound mcf
// against compute-bound namd) assigned to core 0, prewarmed.
func testChip(t testing.TB) *engine.Chip {
	t.Helper()
	chip := engine.MustNew(isa.IvyBridge())
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	namd, err := workload.ByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	chip.Assign(0, 0, workload.NewGen(mcf, 11))
	chip.Assign(0, 1, workload.NewGen(namd, 12))
	chip.Prewarm(40_000)
	return chip
}

const slice = 16 * 1024 // engine.runContextSlice

func record(t testing.TB) *Recorder {
	t.Helper()
	chip := testChip(t)
	rec := New()
	chip.SetSampler(rec)
	ctx := context.Background()
	if err := chip.RunContext(ctx, 10_000); err != nil { // warmup
		t.Fatal(err)
	}
	chip.ResetCounters()
	if err := chip.RunContext(ctx, 2*slice+500); err != nil { // measure
		t.Fatal(err)
	}
	return rec
}

func TestRecorderSamples(t *testing.T) {
	rec := record(t)
	samples := rec.Samples()
	chipSamples := rec.ChipSamples()

	// 1 warmup boundary + 3 measure boundaries, two active contexts each.
	if len(samples) != 4*2 {
		t.Fatalf("got %d samples, want 8", len(samples))
	}
	if len(chipSamples) != 4 {
		t.Fatalf("got %d chip samples, want 4", len(chipSamples))
	}

	perCtx := map[int][]Sample{}
	for _, s := range samples {
		if s.Core != 0 {
			t.Fatalf("sample on unexpected core %d", s.Core)
		}
		perCtx[s.Ctx] = append(perCtx[s.Ctx], s)
	}
	for ctxIdx, ss := range perCtx {
		if len(ss) != 4 {
			t.Fatalf("context %d has %d samples, want 4", ctxIdx, len(ss))
		}
		// First sample (warmup) starts a window, as does the first after
		// ResetCounters; later ones continue.
		if !ss[0].WindowStart || !ss[1].WindowStart {
			t.Errorf("context %d: samples 0 and 1 should both be window starts: %+v", ctxIdx, ss[:2])
		}
		if ss[2].WindowStart || ss[3].WindowStart {
			t.Errorf("context %d: samples 2 and 3 must not be window starts", ctxIdx)
		}
		for i, s := range ss {
			if s.Delta.Cycles == 0 {
				t.Errorf("context %d sample %d has zero-cycle delta", ctxIdx, i)
			}
			if i > 0 && s.Cycle <= ss[i-1].Cycle {
				t.Errorf("context %d sample cycles not increasing: %d then %d", ctxIdx, ss[i-1].Cycle, s.Cycle)
			}
		}
		// The measurement window deltas must cover the window: two full
		// slices and the 500-cycle tail.
		if got := ss[1].Delta.Cycles; got != slice {
			t.Errorf("context %d: first measure delta = %d cycles, want %d", ctxIdx, got, slice)
		}
		if got := ss[3].Delta.Cycles; got != 500 {
			t.Errorf("context %d: tail delta = %d cycles, want 500", ctxIdx, got)
		}
	}

	// mcf on context 0 is memory-bound: it must record LLC misses in the
	// measurement window; namd must retire more instructions per cycle.
	var mcfMisses, mcfInstr, namdInstr, mcfCycles, namdCycles uint64
	for _, s := range perCtx[0][1:] {
		mcfMisses += s.Delta.L3Misses
		mcfInstr += s.Delta.Instructions
		mcfCycles += s.Delta.Cycles
	}
	for _, s := range perCtx[1][1:] {
		namdInstr += s.Delta.Instructions
		namdCycles += s.Delta.Cycles
	}
	if mcfMisses == 0 {
		t.Error("memory-bound context recorded zero LLC misses")
	}
	if float64(namdInstr)/float64(namdCycles) <= float64(mcfInstr)/float64(mcfCycles) {
		t.Errorf("compute-bound IPC (%d/%d) not above memory-bound IPC (%d/%d)",
			namdInstr, namdCycles, mcfInstr, mcfCycles)
	}
}

// The recorder must be deterministic: identical simulations produce
// identical sample sets and byte-identical Chrome exports.
func TestRecorderDeterministic(t *testing.T) {
	a, b := record(t), record(t)
	if !reflect.DeepEqual(a.Samples(), b.Samples()) {
		t.Fatal("per-context samples differ between identical runs")
	}
	if !reflect.DeepEqual(a.ChipSamples(), b.ChipSamples()) {
		t.Fatal("chip samples differ between identical runs")
	}
	var ba, bb bytes.Buffer
	if err := a.WriteChrome(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChrome(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("Chrome exports differ between identical runs")
	}
}

func TestWriteChrome(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var env struct {
		TraceEvents []struct {
			Name  string             `json:"name"`
			Phase string             `json:"ph"`
			TS    float64            `json:"ts"`
			Args  map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	tracks := map[string]int{}
	lastTS := map[string]float64{}
	for _, e := range env.TraceEvents {
		if e.Phase != "C" {
			t.Fatalf("unexpected phase %q", e.Phase)
		}
		tracks[e.Name]++
		if prev, ok := lastTS[e.Name]; ok && e.TS < prev {
			t.Fatalf("track %q timestamps not monotone", e.Name)
		}
		lastTS[e.Name] = e.TS
	}
	for _, want := range []string{"c0t0 IPC", "c0t1 IPC", "c0t0 port uops/cycle", "c0t0 misses/kcycle", "DRAM"} {
		if tracks[want] == 0 {
			t.Errorf("missing counter track %q; have %v", want, tracks)
		}
	}
	// Every per-context sample produced one event per resource row.
	if got := tracks["c0t0 IPC"]; got != 4 {
		t.Errorf("c0t0 IPC has %d events, want 4", got)
	}
}

func TestReset(t *testing.T) {
	rec := record(t)
	rec.Reset()
	if len(rec.Samples()) != 0 || len(rec.ChipSamples()) != 0 {
		t.Fatal("Reset left samples behind")
	}
}
