// Package tco implements the 3-year total-cost-of-ownership model the
// paper applies in Section IV-E, following the analytical methodology of
// Barroso, Clidaras and Hölzle ("The Datacenter as a Computer"): server
// capital amortisation, datacenter capital amortisation per provisioned
// watt, electricity scaled by PUE, and maintenance.
package tco

import "fmt"

// Params parameterise the cost model. All money is in dollars.
type Params struct {
	// ServerCapex is the purchase cost of one server; servers amortise
	// over ServerLifetimeYears.
	ServerCapex         float64
	ServerLifetimeYears float64

	// DatacenterCapexPerWatt is the facility construction cost per
	// provisioned watt of critical power, amortised over
	// DatacenterLifetimeYears.
	DatacenterCapexPerWatt  float64
	DatacenterLifetimeYears float64

	// ServerPowerWatts is the average server draw; PUE multiplies it to
	// facility power (the paper uses Google's published PUE).
	ServerPowerWatts float64
	PUE              float64
	// ElectricityPerKWh prices the energy.
	ElectricityPerKWh float64

	// AnnualMaintenanceFrac is yearly maintenance as a fraction of server
	// capex.
	AnnualMaintenanceFrac float64

	// HorizonYears is the analysis window (3 in the paper).
	HorizonYears float64
}

// Google2014 returns parameters representative of the paper's setting:
// commodity 2-socket servers and Google's published trailing PUE of 1.12
// (the paper cites Google's datacenter efficiency page, accessed May 2014).
func Google2014() Params {
	return Params{
		ServerCapex:             2000,
		ServerLifetimeYears:     3,
		DatacenterCapexPerWatt:  10,
		DatacenterLifetimeYears: 12,
		ServerPowerWatts:        250,
		PUE:                     1.12,
		ElectricityPerKWh:       0.07,
		AnnualMaintenanceFrac:   0.05,
		HorizonYears:            3,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.ServerCapex <= 0, p.ServerLifetimeYears <= 0:
		return fmt.Errorf("tco: server capex/lifetime must be positive")
	case p.DatacenterCapexPerWatt < 0, p.DatacenterLifetimeYears <= 0:
		return fmt.Errorf("tco: datacenter capex must be non-negative with positive lifetime")
	case p.ServerPowerWatts <= 0, p.PUE < 1:
		return fmt.Errorf("tco: power must be positive and PUE >= 1")
	case p.ElectricityPerKWh < 0, p.AnnualMaintenanceFrac < 0, p.HorizonYears <= 0:
		return fmt.Errorf("tco: negative cost parameter")
	}
	return nil
}

// PerServerPerYear returns the yearly TCO of one server: amortised server
// and datacenter capital, energy at PUE, and maintenance.
func (p Params) PerServerPerYear() float64 {
	serverAmort := p.ServerCapex / p.ServerLifetimeYears
	dcAmort := p.DatacenterCapexPerWatt * p.ServerPowerWatts * p.PUE / p.DatacenterLifetimeYears
	energy := p.ServerPowerWatts * p.PUE / 1000 * 24 * 365 * p.ElectricityPerKWh
	maintenance := p.ServerCapex * p.AnnualMaintenanceFrac
	return serverAmort + dcAmort + energy + maintenance
}

// Total returns the TCO of a fleet over the analysis horizon.
func (p Params) Total(servers float64) float64 {
	if servers < 0 {
		servers = 0
	}
	return p.PerServerPerYear() * p.HorizonYears * servers
}

// Improvement returns the fractional TCO saving of running newServers
// instead of baselineServers for the same work.
func (p Params) Improvement(baselineServers, newServers float64) float64 {
	base := p.Total(baselineServers)
	if base <= 0 {
		return 0
	}
	return (base - p.Total(newServers)) / base
}
