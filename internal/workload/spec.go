// Package workload models the applications SMiTe is evaluated on: the 29
// SPEC CPU2006 benchmarks and the four CloudSuite latency-sensitive
// services (Web-Search, Data-Caching, Data-Serving, Graph-Analytics).
//
// Each application is described by a Spec — an instruction-mix model with
// dependency structure, memory footprint and access pattern, and branch
// behaviour — from which a deterministic micro-op stream generator is
// instantiated per hardware context. The parameters are drawn from the
// benchmarks' published characterisations at the granularity the SMiTe
// methodology is sensitive to: which execution ports a code exercises, how
// much of each cache level it lives in, how predictable its branches are,
// and how much instruction-level parallelism it exposes.
package workload

import (
	"fmt"

	"repro/internal/sim/isa"
)

// Suite labels a benchmark's origin.
type Suite int

const (
	// SpecINT is the SPEC CPU2006 integer suite.
	SpecINT Suite = iota
	// SpecFP is the SPEC CPU2006 floating-point suite.
	SpecFP
	// Cloud is CloudSuite (latency-sensitive WSC workloads).
	Cloud
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case SpecINT:
		return "SPEC_INT"
	case SpecFP:
		return "SPEC_FP"
	case Cloud:
		return "CloudSuite"
	}
	return fmt.Sprintf("Suite(%d)", int(s))
}

// AccessPattern selects how data addresses are generated.
type AccessPattern int

const (
	// PatternRandom draws uniformly random lines from the footprint
	// (pointer-chasing-like behaviour).
	PatternRandom AccessPattern = iota
	// PatternStride walks the footprint with a fixed stride
	// (streaming behaviour).
	PatternStride
	// PatternMixed draws randomly with probability RandomFrac and
	// strides otherwise.
	PatternMixed
)

// String names the pattern.
func (p AccessPattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternStride:
		return "stride"
	case PatternMixed:
		return "mixed"
	}
	return fmt.Sprintf("AccessPattern(%d)", int(p))
}

// Mix holds the dynamic micro-op mix as fractions that must sum to 1.
type Mix struct {
	FPMul, FPAdd, FPShuf float64
	IntAdd, IntMul       float64
	Load, Store          float64
	Branch               float64
	Nop                  float64
}

// Sum returns the total of all fractions.
func (m Mix) Sum() float64 {
	return m.FPMul + m.FPAdd + m.FPShuf + m.IntAdd + m.IntMul + m.Load + m.Store + m.Branch + m.Nop
}

// kinds pairs each mix entry with its uop kind, in cumulative-sampling order.
func (m Mix) kinds() [9]struct {
	k isa.UopKind
	f float64
} {
	return [9]struct {
		k isa.UopKind
		f float64
	}{
		{isa.FPMul, m.FPMul},
		{isa.FPAdd, m.FPAdd},
		{isa.FPShuf, m.FPShuf},
		{isa.IntAdd, m.IntAdd},
		{isa.IntMul, m.IntMul},
		{isa.Load, m.Load},
		{isa.Store, m.Store},
		{isa.Branch, m.Branch},
		{isa.Nop, m.Nop},
	}
}

// Spec is one application model.
type Spec struct {
	// Name is the benchmark name ("429.mcf", "web-search").
	Name string
	// Number is the SPEC benchmark number (0 for CloudSuite); the paper
	// splits training/testing sets by its parity.
	Number int
	Suite  Suite

	// Mix is the dynamic micro-op mix.
	Mix Mix

	// MeanDepDist is the mean backward dependency distance (geometric);
	// larger values expose more instruction-level parallelism. Dep2Prob is
	// the probability a dependent uop carries a second input dependency.
	// IndepFrac is the probability an ALU uop has no register dependency
	// at all (unrolled/vectorised code exposes many independent ops).
	MeanDepDist float64
	Dep2Prob    float64
	IndepFrac   float64

	// PointerChaseFrac is the fraction of loads whose *address* depends on
	// a recent value (linked-structure traversal); the remaining loads are
	// address-independent and can overlap, exposing memory-level
	// parallelism.
	PointerChaseFrac float64

	// FootprintBytes is the main data working-set size; Pattern/
	// StrideBytes/RandomFrac describe the address stream over it.
	// Temporal locality is a three-level mixture: HotFrac of accesses go
	// to a small hot region of HotBytes (L1-scale reuse), WarmFrac to a
	// warm region of WarmBytes (L2/L3-scale reuse), and the remainder to
	// the main footprint with the configured pattern.
	FootprintBytes uint64
	Pattern        AccessPattern
	StrideBytes    uint64
	RandomFrac     float64
	HotBytes       uint64
	HotFrac        float64
	WarmBytes      uint64
	WarmFrac       float64

	// BranchTags is the number of static branches; BranchBias the
	// probability a branch follows its per-tag bias (predictability).
	BranchTags int
	BranchBias float64

	// ICacheMissRate and ITLBMissRate are per-fetched-uop front-end miss
	// probabilities synthesised from the code footprint.
	ICacheMissRate float64
	ITLBMissRate   float64

	// Threads is the natural thread count for multithreaded (CloudSuite)
	// applications; 0 or 1 means single-threaded.
	Threads int

	// QoS parameters for latency-sensitive applications: the mean service
	// rate (requests/s, per thread, at solo performance) and the offered
	// per-thread arrival rate. Zero for batch applications.
	ServiceRate float64
	ArrivalRate float64
	// ReportsPercentile marks services that export percentile latency
	// statistics (the paper notes Data-Serving and Graph-Analytics do not).
	ReportsPercentile bool
}

// LatencySensitive reports whether the spec models a latency-sensitive
// service with queueing-based QoS.
func (s *Spec) LatencySensitive() bool { return s.ServiceRate > 0 }

// Validate checks that the spec is internally consistent.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec with empty name")
	}
	if sum := s.Mix.Sum(); sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: %s: mix sums to %.4f, want 1", s.Name, sum)
	}
	if s.MeanDepDist < 1 {
		return fmt.Errorf("workload: %s: mean dependency distance %.2f < 1", s.Name, s.MeanDepDist)
	}
	if s.Mix.Load+s.Mix.Store > 0 && s.FootprintBytes == 0 {
		return fmt.Errorf("workload: %s: memory ops but zero footprint", s.Name)
	}
	if s.Pattern != PatternRandom && s.StrideBytes == 0 && s.Mix.Load+s.Mix.Store > 0 {
		return fmt.Errorf("workload: %s: stride pattern with zero stride", s.Name)
	}
	if s.Mix.Branch > 0 && s.BranchTags <= 0 {
		return fmt.Errorf("workload: %s: branches but no branch tags", s.Name)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"IndepFrac", s.IndepFrac}, {"PointerChaseFrac", s.PointerChaseFrac}, {"HotFrac", s.HotFrac}, {"Dep2Prob", s.Dep2Prob}, {"RandomFrac", s.RandomFrac}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload: %s: %s = %.3f outside [0,1]", s.Name, f.name, f.v)
		}
	}
	if s.HotFrac > 0 && s.HotBytes == 0 {
		return fmt.Errorf("workload: %s: HotFrac set but HotBytes zero", s.Name)
	}
	if s.WarmFrac > 0 && s.WarmBytes == 0 {
		return fmt.Errorf("workload: %s: WarmFrac set but WarmBytes zero", s.Name)
	}
	if s.HotFrac+s.WarmFrac > 1 {
		return fmt.Errorf("workload: %s: HotFrac+WarmFrac = %.3f exceeds 1", s.Name, s.HotFrac+s.WarmFrac)
	}
	if s.BranchBias < 0 || s.BranchBias > 1 {
		return fmt.Errorf("workload: %s: branch bias %.2f outside [0,1]", s.Name, s.BranchBias)
	}
	if s.ICacheMissRate < 0 || s.ICacheMissRate > 0.5 || s.ITLBMissRate < 0 || s.ITLBMissRate > 0.5 {
		return fmt.Errorf("workload: %s: front-end miss rates out of range", s.Name)
	}
	if s.LatencySensitive() && s.ArrivalRate >= s.ServiceRate {
		return fmt.Errorf("workload: %s: offered load %.1f >= service rate %.1f (unstable queue)", s.Name, s.ArrivalRate, s.ServiceRate)
	}
	return nil
}

// ThreadCount returns the effective thread count (at least 1).
func (s *Spec) ThreadCount() int {
	if s.Threads < 1 {
		return 1
	}
	return s.Threads
}
