package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/tco"
)

func syntheticScaleOut(qos cluster.QoSKind) ScaleOutResult {
	r := ScaleOutResult{
		QoS:     qos,
		Targets: scaleOutTargets,
		Cells:   make(map[float64]map[cluster.PolicyKind]cluster.Result),
	}
	for i, target := range r.Targets {
		r.Cells[target] = map[cluster.PolicyKind]cluster.Result{
			cluster.PolicySMiTe:  {UtilizationGain: 0.1 * float64(i+1), MeanInstances: float64(i + 1), PerApp: map[string]float64{"svc": 0.1}},
			cluster.PolicyOracle: {UtilizationGain: 0.11 * float64(i+1), PerApp: map[string]float64{"svc": 0.1}},
			cluster.PolicyRandom: {UtilizationGain: 0.1 * float64(i+1), ViolationFrac: 0.3, ViolationMax: 0.5, PerApp: map[string]float64{"svc": 0.1}},
		}
	}
	return r
}

func TestScaleOutResultString(t *testing.T) {
	s := syntheticScaleOut(cluster.QoSAvg).String()
	for _, want := range []string{"Figures 14 & 15", "95.00%", "SMiTe util gain", "paper:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	s = syntheticScaleOut(cluster.QoSTail).String()
	if !strings.Contains(s, "Figures 16 & 17") {
		t.Error("tail variant mislabeled")
	}
}

func TestFig18RowsRender(t *testing.T) {
	r := Fig18Result{
		Params: tco.Google2014(),
		Rows: []Fig18Row{
			{QoS: cluster.QoSAvg, Target: 0.9, BaselineServers: 8000, CoLocatedServers: 6000, Improvement: 0.25},
		},
	}
	s := r.String()
	for _, want := range []string{"Figure 18", "25.00%", "8000", "6000"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestAblationResultString(t *testing.T) {
	r := AblationResult{
		MeasuredMean: 0.15,
		Rows: []AblationRow{
			{Model: "SMiTe (Eq.3, NNLS)", TestErr: 0.05, TrainErr: 0.02},
		},
	}
	s := r.String()
	if !strings.Contains(s, "SMiTe (Eq.3, NNLS)") || !strings.Contains(s, "15.00%") {
		t.Errorf("ablation render:\n%s", s)
	}
}

func TestCrossMachineResultString(t *testing.T) {
	s := CrossMachineResult{NativeErr: 0.05, TransferErr: 0.06, RetrainedErr: 0.055}.String()
	for _, want := range []string{"transfer", "retrained", "5.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}
