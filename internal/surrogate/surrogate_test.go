package surrogate

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

func testConfig() isa.Config {
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	return cfg
}

func testOptions() profile.Options {
	return profile.Options{
		PrewarmUops:   20_000,
		WarmupCycles:  4_000,
		MeasureCycles: 10_000,
		BaseSeed:      1,
		Parallelism:   2,
	}
}

func mustSpec(t testing.TB, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCurveFitRepresentable pins the fitter on a function inside its own
// basis: residuals must vanish and At must reproduce the samples.
func TestCurveFitRepresentable(t *testing.T) {
	xs := []float64{0.25, 0.5, 0.75, 1.0}
	truth := func(x float64) float64 { return 0.3*x + 0.1*math.Sqrt(x) - 0.05*x*x }
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth(x)
	}
	c, err := fitCurve(xs, ys, DefaultRidge)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxAbsErr > 1e-6 {
		t.Errorf("representable curve left MaxAbsErr %g, want ~0", c.MaxAbsErr)
	}
	for i, x := range xs {
		if d := math.Abs(c.At(x) - ys[i]); d > 1e-6 {
			t.Errorf("At(%g) = %g, want %g", x, c.At(x), ys[i])
		}
	}
	if c.MeanAbsErr > c.MaxAbsErr {
		t.Errorf("MeanAbsErr %g exceeds MaxAbsErr %g", c.MeanAbsErr, c.MaxAbsErr)
	}
}

// TestCurveAtClamps pins the domain clamp: zero below zero pressure,
// saturation above full intensity.
func TestCurveAtClamps(t *testing.T) {
	c := Curve{Coef: [3]float64{1, 1, 1}}
	if got := c.At(-0.5); got != 0 {
		t.Errorf("At(-0.5) = %g, want 0", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %g, want 0", got)
	}
	if got, want := c.At(2), c.At(1); got != want {
		t.Errorf("At(2) = %g, want saturation at At(1) = %g", got, want)
	}
}

// syntheticSet builds a two-app set with hand-picked curve values and
// residual bounds so bound propagation is checkable by hand.
func syntheticSet() *Set {
	mk := func(app string, sen, con, senErr, conErr float64) *Model {
		m := &Model{App: app, SoloIPC: 1}
		for d := range m.Sen {
			// Coef{x} alone: At(1) == Coef[0].
			m.Sen[d] = Curve{Coef: [3]float64{sen}, MaxAbsErr: senErr}
			m.Con[d] = Curve{Coef: [3]float64{con}, MaxAbsErr: conErr}
		}
		return m
	}
	return &Set{
		Machine: "synthetic",
		Models: map[string]*Model{
			"a": mk("a", 0.4, 0.2, 0.01, 0.02),
			"b": mk("b", 0.1, 0.5, 0.03, 0.04),
		},
	}
}

// TestPredictWithBound checks the hand-computable propagation: with every
// dimension identical, prediction and bound are NumDimensions times the
// per-dimension terms.
func TestPredictWithBound(t *testing.T) {
	s := syntheticSet()
	var m model.Smite
	for d := range m.Coef {
		m.Coef[d] = 0.5
	}
	m.Intercept = 0.05

	pred, err := s.PredictWith(m, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	nd := float64(rulers.NumDimensions)
	wantDeg := 0.05 + nd*0.5*0.4*0.5
	// Per dimension: |0.5|·(|sen|·Ec + Es·|con| + Es·Ec) with sen=0.4 of a,
	// con=0.5 of b, Es=0.01 (a's sen), Ec=0.04 (b's con).
	wantBound := nd * 0.5 * (0.4*0.04 + 0.01*0.5 + 0.01*0.04)
	if math.Abs(pred.Degradation-wantDeg) > 1e-12 {
		t.Errorf("Degradation = %g, want %g", pred.Degradation, wantDeg)
	}
	if math.Abs(pred.Bound-wantBound) > 1e-12 {
		t.Errorf("Bound = %g, want %g", pred.Bound, wantBound)
	}

	if _, err := s.PredictWith(m, "a", "nope"); err == nil {
		t.Error("PredictWith with unknown aggressor succeeded")
	}
	if _, err := s.Predict("a", "b"); err == nil {
		t.Error("Predict without an embedded Eq3 model succeeded")
	}
	s.Eq3 = &m
	if pred2, err := s.Predict("a", "b"); err != nil || pred2 != pred {
		t.Errorf("Predict = %+v, %v; want %+v", pred2, err, pred)
	}
}

// TestFitBoundContainment is the fit contract on real engine data: at the
// training grid's full-intensity point, the surrogate characterization may
// deviate from the engine's by at most the recorded per-curve bound.
func TestFitBoundContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("engine fit sweep in short mode")
	}
	cfg := testConfig()
	opts := testOptions()
	specs := []*workload.Spec{mustSpec(t, "429.mcf"), mustSpec(t, "444.namd")}

	p := profile.NewProfiler(cfg, opts)
	set, err := Fit(context.Background(), p, specs, profile.SMT, FitOptions{Intensities: []float64{0.25, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := profile.NewProfiler(cfg, opts).CharacterizeAll(specs, profile.SMT)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-12
	for _, ch := range engine {
		m, err := set.Model(ch.App)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Characterization(); got.SoloIPC != ch.SoloIPC || got.SoloPMU != ch.SoloPMU {
			t.Errorf("%s: surrogate solo measurements diverged from engine", ch.App)
		}
		if want := profile.SweepGrid([]float64{0.25, 0.5}); !reflect.DeepEqual(m.Intensities, want) {
			t.Errorf("%s: training grid %v, want %v", ch.App, m.Intensities, want)
		}
		for d := range ch.Sen {
			if diff := math.Abs(m.Sen[d].At(1) - ch.Sen[d]); diff > m.Sen[d].MaxAbsErr+eps {
				t.Errorf("%s dim %d: |surrogate−engine| sensitivity %g exceeds recorded bound %g", ch.App, d, diff, m.Sen[d].MaxAbsErr)
			}
			if diff := math.Abs(m.Con[d].At(1) - ch.Con[d]); diff > m.Con[d].MaxAbsErr+eps {
				t.Errorf("%s dim %d: |surrogate−engine| contentiousness %g exceeds recorded bound %g", ch.App, d, diff, m.Con[d].MaxAbsErr)
			}
		}
	}
}

// TestFitRejectsTinyGrid pins the degrees-of-freedom guard.
func TestFitRejectsTinyGrid(t *testing.T) {
	p := profile.NewProfiler(testConfig(), testOptions())
	_, err := Fit(context.Background(), p, []*workload.Spec{mustSpec(t, "429.mcf")}, profile.SMT, FitOptions{Intensities: []float64{1.0}})
	if err == nil {
		t.Fatal("Fit with a 1-point grid succeeded; 3-coefficient curves need ≥3 points")
	}
}

// TestFitWithStoreWarmStart pins the store round trip: a cold fit misses
// and writes back; a second fit with a fresh profiler serves every model
// from disk and reproduces the set exactly.
func TestFitWithStoreWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("engine fit sweep in short mode")
	}
	cfg := testConfig()
	opts := testOptions()
	specs := []*workload.Spec{mustSpec(t, "429.mcf"), mustSpec(t, "444.namd")}
	st, err := profstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fo := FitOptions{Intensities: []float64{0.25, 0.5}}

	cold, stats, err := FitWithStore(context.Background(), st, profile.NewProfiler(cfg, opts), specs, profile.SMT, fo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 0 || stats.Misses != len(specs) {
		t.Errorf("cold fit stats %+v, want 0 hits / %d misses", stats, len(specs))
	}

	warm, stats, err := FitWithStore(context.Background(), st, profile.NewProfiler(cfg, opts), specs, profile.SMT, fo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != len(specs) || stats.Misses != 0 {
		t.Errorf("warm fit stats %+v, want %d hits / 0 misses", stats, len(specs))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-started set diverged from cold fit:\ncold: %+v\nwarm: %+v", cold, warm)
	}

	// A corrupt entry heals: truncate one model's file, refit, expect one miss.
	key := KeyFor(profile.NewProfiler(cfg, opts), specs[0], profile.SMT, fo)
	if err := truncateFile(st.Path(key)); err != nil {
		t.Fatal(err)
	}
	healed, stats, err := FitWithStore(context.Background(), st, profile.NewProfiler(cfg, opts), specs, profile.SMT, fo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("healing fit stats %+v, want 1 hit / 1 miss", stats)
	}
	if !reflect.DeepEqual(cold, healed) {
		t.Error("healed set diverged from cold fit")
	}
	var m Model
	if err := st.Get(key, &m); err != nil {
		t.Errorf("healed entry still unreadable: %v", err)
	}
}

func truncateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data[:len(data)/3], 0o644)
}

// TestKeyDiscriminates pins that every semantic fit input moves the
// content address, and the non-semantic Options fields do not.
func TestKeyDiscriminates(t *testing.T) {
	cfg := testConfig()
	opts := testOptions()
	spec := mustSpec(t, "429.mcf")
	base := KeyFor(profile.NewProfiler(cfg, opts), spec, profile.SMT, FitOptions{})

	if got := KeyFor(profile.NewProfiler(cfg, opts), spec, profile.SMT, FitOptions{}); got != base {
		t.Error("identical inputs produced different keys")
	}
	o2 := opts
	o2.Parallelism = 7
	o2.Progress = func(int, int) {}
	if got := KeyFor(profile.NewProfiler(cfg, o2), spec, profile.SMT, FitOptions{}); got != base {
		t.Error("non-semantic Options fields moved the key")
	}

	variants := map[string]func() bool{
		"placement": func() bool {
			return KeyFor(profile.NewProfiler(cfg, opts), spec, profile.CMP, FitOptions{}) != base
		},
		"grid": func() bool {
			return KeyFor(profile.NewProfiler(cfg, opts), spec, profile.SMT, FitOptions{Intensities: []float64{0.5}}) != base
		},
		"ridge": func() bool {
			return KeyFor(profile.NewProfiler(cfg, opts), spec, profile.SMT, FitOptions{Ridge: 1e-6}) != base
		},
		"spec": func() bool {
			return KeyFor(profile.NewProfiler(cfg, opts), mustSpec(t, "470.lbm"), profile.SMT, FitOptions{}) != base
		},
		"measure window": func() bool {
			o := opts
			o.MeasureCycles++
			return KeyFor(profile.NewProfiler(cfg, o), spec, profile.SMT, FitOptions{}) != base
		},
		"machine": func() bool {
			c2 := isa.IvyBridge()
			c2.Cores = 4
			return KeyFor(profile.NewProfiler(c2, opts), spec, profile.SMT, FitOptions{}) != base
		},
	}
	for name, moved := range variants {
		if !moved() {
			t.Errorf("changing %s did not move the key", name)
		}
	}
}

// TestSetFileRoundTrip pins persistence: save, load, identical; plus the
// typed failure taxonomy.
func TestSetFileRoundTrip(t *testing.T) {
	s := syntheticSet()
	eq3 := model.Smite{Intercept: 0.01}
	eq3.Coef[0] = 0.9
	s.Eq3 = &eq3

	var buf bytes.Buffer
	if err := SaveSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip mangled set:\n in: %+v\nout: %+v", s, got)
	}

	if _, err := LoadSet(strings.NewReader("{garbage")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage: got %v, want ErrCorrupt", err)
	}
	if _, err := LoadSet(strings.NewReader(strings.Replace(buf.String(), `"version": 1`, `"version": 9`, 1))); !errors.Is(err, ErrVersionSkew) {
		t.Errorf("version skew: got %v, want ErrVersionSkew", err)
	}
	if _, err := LoadSet(strings.NewReader(strings.Replace(buf.String(), `"dimensions": 8`, `"dimensions": 7`, 1))); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("dimension skew: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := LoadSet(strings.NewReader(`{"version":1,"dimensions":8}`)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing set: got %v, want ErrCorrupt", err)
	}

	path := t.TempDir() + "/set.json"
	if err := WriteSetFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Error("file round trip mangled set")
	}
}

// TestTrainEq3 fits four applications, trains the embedded Equation 3
// model against engine pair ground truth and checks the surrogate serves
// bounded predictions for every ordered pair.
func TestTrainEq3(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on engine pair measurements; skipped in -short")
	}
	cfg := testConfig()
	opts := testOptions()
	specs := []*workload.Spec{
		mustSpec(t, "429.mcf"), mustSpec(t, "444.namd"),
		mustSpec(t, "470.lbm"), mustSpec(t, "462.libquantum"),
	}
	p := profile.NewProfiler(cfg, opts)
	set, err := Fit(context.Background(), p, specs, profile.SMT, FitOptions{Intensities: []float64{0.25, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.TrainEq3(context.Background(), p, specs); err != nil {
		t.Fatal(err)
	}
	if set.Eq3 == nil {
		t.Fatal("TrainEq3 left no embedded model")
	}
	for _, v := range specs {
		for _, a := range specs {
			if v.Name == a.Name {
				continue
			}
			pred, err := set.Predict(v.Name, a.Name)
			if err != nil {
				t.Fatalf("%s vs %s: %v", v.Name, a.Name, err)
			}
			if math.IsNaN(pred.Degradation) || math.IsNaN(pred.Bound) || pred.Bound < 0 {
				t.Errorf("%s vs %s: degenerate prediction %+v", v.Name, a.Name, pred)
			}
		}
	}
}
