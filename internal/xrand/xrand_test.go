package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedZeroIsValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestDistinctSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between adjacent seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %.4f, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const lambda = 4.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Errorf("Exp(%g) mean = %.4f, want %.4f", lambda, mean, 1/lambda)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	for _, mean := range []float64{2, 5, 12} {
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			g := r.Geometric(mean)
			if g < 1 {
				t.Fatalf("Geometric(%g) returned %d < 1", mean, g)
			}
			sum += float64(g)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Geometric(%g) mean = %.3f", mean, got)
		}
	}
}

func TestGeometricSmallMean(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(0.5); g != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", g)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.5, 3, 30, 120} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Errorf("Poisson(%g) mean = %.3f", mean, got)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean, variance := sum/n, sq/n
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %.4f", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %.4f", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

// TestLFSRMatchesPaperFormula checks the LFSR against a direct
// transliteration of the paper's Figure 9(e) macro.
func TestLFSRMatchesPaperFormula(t *testing.T) {
	ref := uint32(0xACE1)
	l := NewLFSR(0xACE1)
	for i := 0; i < 10000; i++ {
		const mask = 0xd0000001
		ref = (ref >> 1) ^ ((0 - (ref & 1)) & mask)
		if got := l.Next(); got != ref {
			t.Fatalf("LFSR diverged from the paper's recurrence at step %d: %#x vs %#x", i, got, ref)
		}
	}
}

func TestLFSRZeroSeed(t *testing.T) {
	l := NewLFSR(0)
	if l.Next() == 0 {
		t.Error("zero-seeded LFSR stuck at zero")
	}
}

func TestLFSRPeriodIsLong(t *testing.T) {
	l := NewLFSR(1)
	first := l.Next()
	for i := 0; i < 1_000_000; i++ {
		if l.Next() == first && i > 0 {
			// Returning to the first value this early would make Ruler
			// address streams degenerate.
			if i < 100_000 {
				t.Fatalf("LFSR period too short: %d", i)
			}
			return
		}
	}
}
