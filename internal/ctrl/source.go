package ctrl

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/qosd"
	"repro/internal/sched"
	"repro/internal/surrogate"
	"repro/internal/workload"
)

// Source produces refreshed surrogate models for flagged applications —
// the re-characterization half of the closed loop. Implementations must
// return a model for every requested app or an error; the controller
// hot-swaps the returned models behind the tiered predictor wholesale.
type Source interface {
	Recharacterize(ctx context.Context, apps []string) (map[string]*surrogate.Model, error)
}

// SweepSource re-characterizes in-process: each flagged application's
// (dimension, intensity) grid is re-swept through the engine — the same
// batched profile.SweepGrid path the original fit used — and refitted
// into surrogate curves. With a Store attached the refit goes through
// surrogate.FitWithStore: applications whose workload fingerprint is
// unchanged warm-start from the content-addressed store, while drifted
// applications (new spec ⇒ new fingerprint) miss and re-measure, so a
// mixed flag set only pays the engine for the apps that actually moved.
type SweepSource struct {
	// Profiler runs the sweeps; Specs maps application name to its
	// *current* workload model (the drifted one, for drifted apps).
	Profiler *profile.Profiler
	Specs    map[string]*workload.Spec
	// Placement is the sweep placement (SMT for the paper's pipeline).
	Placement profile.Placement
	// Options are the fit options; the zero value uses the standard grid.
	Options surrogate.FitOptions
	// Store, when non-nil, warm-starts unchanged fits (FitWithStore).
	Store *profstore.Store
}

// Recharacterize implements Source.
func (s *SweepSource) Recharacterize(ctx context.Context, apps []string) (map[string]*surrogate.Model, error) {
	if s.Profiler == nil {
		return nil, fmt.Errorf("ctrl: sweep source needs a profiler")
	}
	specs := make([]*workload.Spec, 0, len(apps))
	for _, app := range apps {
		spec, ok := s.Specs[app]
		if !ok {
			return nil, fmt.Errorf("ctrl: no workload spec for flagged app %q", app)
		}
		specs = append(specs, spec)
	}
	var set *surrogate.Set
	var err error
	if s.Store != nil {
		set, _, err = surrogate.FitWithStore(ctx, s.Store, s.Profiler, specs, s.Placement, s.Options)
	} else {
		set, err = surrogate.Fit(ctx, s.Profiler, specs, s.Placement, s.Options)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]*surrogate.Model, len(apps))
	for _, app := range apps {
		m, ok := set.Models[app]
		if !ok {
			return nil, fmt.Errorf("ctrl: refit returned no model for %q", app)
		}
		out[app] = m
	}
	return out, nil
}

// DefaultDaemonCurveErr is the conservative per-curve error bound stamped
// on daemon-sourced models: two degradation points, loose enough that
// pair bounds usually exceed the tier threshold, so daemon-refreshed apps
// are served by the (freshly re-characterized) engine tier until a full
// in-process sweep refit tightens the curves.
const DefaultDaemonCurveErr = 0.02

// DaemonSource re-characterizes through a live qosd daemon's parallel
// POST /v1/characterize path: each flagged application is re-simulated
// through the daemon's full Ruler sweep and registered, so the daemon's
// engine tier serves the refreshed profile immediately. The returned
// characterizations are lifted into surrogate models with linear curves
// anchored at the measured full-intensity values and a conservative
// CurveErr bound — sound but loose, by design (see DefaultDaemonCurveErr).
type DaemonSource struct {
	Client *qosd.Client
	// Placement is "smt" (default) or "cmp", as POST /v1/characterize
	// accepts it.
	Placement string
	// Parallelism bounds concurrent characterize requests (0 = all CPUs).
	Parallelism int
	// CurveErr overrides the error bound stamped on the lifted curves
	// (0 = DefaultDaemonCurveErr).
	CurveErr float64
}

// Recharacterize implements Source, fanning the flagged apps across the
// daemon with sched.Map.
func (s *DaemonSource) Recharacterize(ctx context.Context, apps []string) (map[string]*surrogate.Model, error) {
	if s.Client == nil {
		return nil, fmt.Errorf("ctrl: daemon source needs a client")
	}
	curveErr := s.CurveErr
	if curveErr == 0 {
		curveErr = DefaultDaemonCurveErr
	}
	models := make([]*surrogate.Model, len(apps))
	err := sched.Map(ctx, len(apps), s.Parallelism, func(ctx context.Context, i int) error {
		resp, err := s.Client.Characterize(ctx, qosd.CharacterizeRequest{
			App:       apps[i],
			Placement: s.Placement,
			Register:  true,
		})
		if err != nil {
			return fmt.Errorf("ctrl: re-characterizing %q: %w", apps[i], err)
		}
		models[i] = modelFromCharacterization(resp.Profile, curveErr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*surrogate.Model, len(apps))
	for i, app := range apps {
		out[app] = models[i]
	}
	return out, nil
}

// modelFromCharacterization lifts a single-point (full-intensity)
// characterization into a surrogate model: linear curves c·x anchored at
// the measured value (At(1) recovers it exactly), with the conservative
// curveErr as the recorded residual on every curve.
func modelFromCharacterization(ch profile.Characterization, curveErr float64) *surrogate.Model {
	m := &surrogate.Model{
		App:         ch.App,
		Placement:   ch.Placement,
		SoloIPC:     ch.SoloIPC,
		SoloPMU:     ch.SoloPMU,
		Intensities: []float64{1},
	}
	for d := range m.Sen {
		m.Sen[d] = surrogate.Curve{Coef: [3]float64{ch.Sen[d]}, MaxAbsErr: curveErr, MeanAbsErr: curveErr}
		m.Con[d] = surrogate.Curve{Coef: [3]float64{ch.Con[d]}, MaxAbsErr: curveErr, MeanAbsErr: curveErr}
	}
	return m
}

// sortedApps returns map keys in stable order, so re-characterization
// batches are deterministic regardless of flag arrival order.
func sortedApps(set map[string][]int) []string {
	out := make([]string, 0, len(set))
	for app := range set {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}
