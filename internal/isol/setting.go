package isol

import (
	"fmt"
	"math"
)

// Setting is one discrete isolation operating point the cluster scheduler
// can actuate on a machine: a way-partition/throttle combination abstracted
// to its modeled effect — how much it shields latency-critical victims
// (DegScale multiplies their interference degradation) and what it costs
// the throttled batch co-runners (ThroughputTax, a fraction of their
// throughput). Level 0 is always "off" (DegScale 1, tax 0); higher levels
// reserve more ways and clamp more bandwidth.
//
// The DegScale ladder is calibrated against the simulator's own
// mechanisms: the `smite isol` partition sweep shows victim degradation
// falling roughly linearly as the victim's exclusive way share grows, with
// the aggressor throttle taking another large bite out of the residual
// bandwidth interference.
type Setting struct {
	// Name labels the operating point ("off", "ways-half", ...).
	Name string `json:"name"`
	// VictimWayFrac is the fraction of L3 ways reserved exclusively for
	// the latency-critical context(s) at this level (0 = no partition).
	VictimWayFrac float64 `json:"victim_way_frac"`
	// ThrottleFrac is the fraction of full memory bandwidth the batch
	// aggressors keep (1 = unthrottled).
	ThrottleFrac float64 `json:"throttle_frac"`
	// DegScale multiplies the victim's predicted/actual degradation when
	// the level is engaged; in (0, 1], non-increasing across the ladder.
	DegScale float64 `json:"deg_scale"`
	// ThroughputTax is the fraction of batch throughput the level costs,
	// in [0, 1), non-decreasing across the ladder.
	ThroughputTax float64 `json:"throughput_tax"`
}

// DefaultSettings is the stock four-level ladder: off, a half-way
// partition, a quarter-aggressor partition plus mild throttle, and a full
// clamp-down.
func DefaultSettings() []Setting {
	return []Setting{
		{Name: "off", VictimWayFrac: 0, ThrottleFrac: 1, DegScale: 1, ThroughputTax: 0},
		{Name: "ways-half", VictimWayFrac: 0.5, ThrottleFrac: 1, DegScale: 0.70, ThroughputTax: 0.05},
		{Name: "ways-3q+throttle", VictimWayFrac: 0.75, ThrottleFrac: 0.5, DegScale: 0.50, ThroughputTax: 0.12},
		{Name: "clamp", VictimWayFrac: 0.875, ThrottleFrac: 0.25, DegScale: 0.35, ThroughputTax: 0.25},
	}
}

// ValidateSettings rejects degenerate ladders: the first level must be the
// identity (off), DegScale must stay in (0,1] and never increase, and the
// tax must stay in [0,1) and never decrease. A DegScale of 0 would claim
// isolation erases interference entirely — no hardware knob does.
func ValidateSettings(levels []Setting) error {
	if len(levels) == 0 {
		return &ConfigError{Field: "Settings", Reason: "need at least the identity level"}
	}
	if levels[0].DegScale != 1 || levels[0].ThroughputTax != 0 {
		return &ConfigError{Field: "Settings[0]", Reason: "level 0 must be the identity (DegScale 1, tax 0)"}
	}
	prevScale, prevTax := 1.0, 0.0
	for i, s := range levels {
		if !(s.DegScale > 0 && s.DegScale <= 1) || math.IsNaN(s.DegScale) {
			return &ConfigError{Field: fmt.Sprintf("Settings[%d]", i), Reason: fmt.Sprintf("DegScale %g outside (0,1]", s.DegScale)}
		}
		if s.ThroughputTax < 0 || s.ThroughputTax >= 1 || math.IsNaN(s.ThroughputTax) {
			return &ConfigError{Field: fmt.Sprintf("Settings[%d]", i), Reason: fmt.Sprintf("ThroughputTax %g outside [0,1)", s.ThroughputTax)}
		}
		if s.DegScale > prevScale {
			return &ConfigError{Field: fmt.Sprintf("Settings[%d]", i), Reason: "DegScale must not increase with level"}
		}
		if s.ThroughputTax < prevTax {
			return &ConfigError{Field: fmt.Sprintf("Settings[%d]", i), Reason: "ThroughputTax must not decrease with level"}
		}
		prevScale, prevTax = s.DegScale, s.ThroughputTax
	}
	return nil
}
