package model

import (
	"sort"
	"testing"

	"repro/internal/profile"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

// TestEndToEndSpecPrediction runs a reduced-scale version of the paper's
// Figure 10 experiment: characterize SPEC with Rulers, train the SMiTe and
// PMU models on even-numbered-benchmark pairs and evaluate on odd ones.
// SMiTe must beat the PMU baseline and land in single-digit error.
func TestEndToEndSpecPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end prediction in short mode")
	}
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	p := profile.NewProfiler(cfg, profile.FastOptions())

	train := workload.EvenSPEC()
	test := workload.OddSPEC()

	all := append(append([]*workload.Spec{}, train...), test...)
	chars, err := p.CharacterizeAll(all, profile.SMT)
	if err != nil {
		t.Fatal(err)
	}

	trainPairs, err := p.MeasurePairs(train, train, profile.SMT)
	if err != nil {
		t.Fatal(err)
	}
	testPairs, err := p.MeasurePairs(test, test, profile.SMT)
	if err != nil {
		t.Fatal(err)
	}

	trainObs, err := BuildObservations(chars, trainPairs)
	if err != nil {
		t.Fatal(err)
	}
	testObs, err := BuildObservations(chars, testPairs)
	if err != nil {
		t.Fatal(err)
	}

	smite, err := TrainSmiteNNLS(trainObs)
	if err != nil {
		t.Fatal(err)
	}
	pmuM, err := TrainPMULinear(trainObs)
	if err != nil {
		t.Fatal(err)
	}

	evS := Evaluate(smite, testObs)
	evP := Evaluate(pmuM, testObs)
	t.Logf("SMiTe coef=%v c0=%.4f", smite.Coef, smite.Intercept)
	t.Logf("test: SMiTe err=%.4f PMU err=%.4f (train: SMiTe %.4f, PMU %.4f)",
		evS.MeanAbsError, evP.MeanAbsError,
		Evaluate(smite, trainObs).MeanAbsError, Evaluate(pmuM, trainObs).MeanAbsError)

	type oe struct {
		o PairObs
		e float64
	}
	var worst []oe
	for i, o := range testObs {
		worst = append(worst, oe{o, evS.Errors[i]})
	}
	sort.Slice(worst, func(a, b int) bool { return worst[a].e > worst[b].e })
	for i := 0; i < 14 && i < len(worst); i++ {
		w := worst[i]
		t.Logf("worst %2d: %-14s | %-14s deg=%.3f pred=%.3f", i, w.o.A, w.o.B, w.o.Deg, smite.Predict(w.o))
	}

	measured := 0.0
	for _, o := range testObs {
		measured += o.Deg
	}
	t.Logf("mean measured degradation (test set): %.4f over %d obs", measured/float64(len(testObs)), len(testObs))

	if evS.MeanAbsError > 0.08 {
		t.Errorf("SMiTe test error %.4f exceeds 8%% at reduced scale", evS.MeanAbsError)
	}
	if evS.MeanAbsError >= evP.MeanAbsError {
		t.Errorf("SMiTe (%.4f) should beat the PMU baseline (%.4f)", evS.MeanAbsError, evP.MeanAbsError)
	}
}
