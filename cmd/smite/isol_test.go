package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the partition-sweep golden fixture")

// TestIsolSweepGolden pins the full `smite isol` partition sweep bit for
// bit: the default way ladder plus an aggressor throttle on one Ivy
// Bridge core at reduced windows. The fixture is the calibration evidence
// behind isol.DefaultSettings — regenerating it (go test -run
// TestIsolSweepGolden -update ./cmd/smite) is a reviewable event, not
// noise. The sweep's shape is asserted independently of the exact bytes:
// once partitioned, growing the victim's exclusive way share never
// increases its degradation.
func TestIsolSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed partition sweep in short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "sweep.json")
	var buf bytes.Buffer
	err := isolCmd(context.Background(), []string{
		"-victim", "web-search", "-aggressor", "470.lbm",
		"-fast", "-throttle", "64", "-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("isol: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_isol_sweep.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("partition sweep diverged from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	var res isolSweepResult
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 || res.Points[0].VictimWays != 0 {
		t.Fatalf("sweep shape %+v", res.Points)
	}
	const eps = 0.02
	for i := 2; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.VictimDeg > prev.VictimDeg+eps {
			t.Errorf("victim degradation rose %g -> %g as its partition grew %d -> %d ways",
				prev.VictimDeg, cur.VictimDeg, prev.VictimWays, cur.VictimWays)
		}
	}
}

func TestIsolFlagValidation(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	cases := []struct {
		name string
		args []string
	}{
		{"missing victim", []string{"-aggressor", "429.mcf", "-fast"}},
		{"missing aggressor", []string{"-victim", "444.namd", "-fast"}},
		{"unknown app", []string{"-victim", "999.nope", "-aggressor", "429.mcf", "-fast"}},
		{"unknown machine", []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-machine", "alpha", "-fast"}},
		{"garbage ways entry", []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-ways", "2,x", "-fast"}},
		{"ways leave aggressor nothing", []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-ways", "16", "-fast"}},
		{"negative ways", []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-ways", "-1", "-fast"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := isolCmd(ctx, tc.args, &buf); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

func TestParseWaysSweep(t *testing.T) {
	got, err := parseWaysSweep("", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 8, 14}
	if len(got) != len(want) {
		t.Fatalf("default sweep %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("default sweep %v, want %v", got, want)
		}
	}
	// Duplicates collapse, order normalises.
	got, err = parseWaysSweep("8,2,8,0", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("sweep %v, want [0 2 8]", got)
	}
}
