package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system accepted")
	}
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs length mismatch accepted")
	}
}

// Property: Solve recovers x from A·x for random well-conditioned A.
func TestSolveRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(6)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64()*2 - 1
			}
			a[i][i] += float64(n) // diagonal dominance: well conditioned
			x[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		// Solve mutates its inputs; pass copies.
		ac := make([][]float64, n)
		for i := range a {
			ac[i] = append([]float64(nil), a[i]...)
		}
		got, err := Solve(ac, append([]float64(nil), b...))
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LeastSquares recovers the generating coefficients from
// noise-free observations with more rows than columns.
func TestLeastSquaresRecovery(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 2 + rng.Intn(4)
		n := p*3 + rng.Intn(10)
		beta := make([]float64, p)
		for i := range beta {
			beta[i] = rng.Float64()*4 - 2
		}
		x := make([][]float64, n)
		y := make([]float64, n)
		for r := range x {
			x[r] = make([]float64, p)
			for c := range x[r] {
				x[r][c] = rng.Float64()*2 - 1
			}
			for c := range beta {
				y[r] += x[r][c] * beta[c]
			}
		}
		got, err := LeastSquares(x, y, 1e-12)
		if err != nil {
			return false
		}
		for i := range beta {
			if math.Abs(got[i]-beta[i]) > 1e-5 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil, 0); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Error("target length mismatch accepted")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative ridge accepted")
	}
}

func TestRidgeShrinks(t *testing.T) {
	// One feature, y = 2x: heavy ridge should shrink the coefficient.
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 4, 6}
	loose, err := LeastSquares(x, y, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := LeastSquares(x, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(tight[0] < loose[0]) {
		t.Errorf("ridge did not shrink: %g vs %g", tight[0], loose[0])
	}
	if math.Abs(loose[0]-2) > 1e-6 {
		t.Errorf("unridged fit = %g, want 2", loose[0])
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %g, want 32", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
