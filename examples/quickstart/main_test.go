package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickstartBuildsAndRuns compiles the example and executes it end to
// end — characterization, training and prediction at FastOptions — so the
// documented entry point cannot silently rot.
func TestQuickstartBuildsAndRuns(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "quickstart")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	if testing.Short() {
		t.Skip("quickstart execution in short mode")
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart run: %v\n%s", err, out)
	}
	for _, want := range []string{"machine:", "model coefficients:", "co-location namd | mcf"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
