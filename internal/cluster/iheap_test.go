package cluster

import (
	"sort"
	"testing"

	"repro/internal/xrand"
)

func TestIheapOrdering(t *testing.T) {
	h := newIheap()
	r := xrand.New(3)
	type key struct {
		at  float64
		seq uint64
	}
	keys := make(map[int64]key)
	for i := int64(0); i < 500; i++ {
		k := key{at: float64(r.Intn(50)), seq: r.Uint64() % 8}
		keys[i] = k
		h.Push(k.at, k.seq, i)
	}
	want := make([]int64, 0, len(keys))
	for hdl := range keys {
		want = append(want, hdl)
	}
	sort.Slice(want, func(i, j int) bool {
		a, b := keys[want[i]], keys[want[j]]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return want[i] < want[j]
	})
	for i, hdl := range want {
		if h.Min().handle != hdl {
			t.Fatalf("pop %d: Min = %d, want %d", i, h.Min().handle, hdl)
		}
		if got := h.Pop().handle; got != hdl {
			t.Fatalf("pop %d: got %d, want %d", i, got, hdl)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}

// TestIheapRemove removes random handles mid-stream and checks the
// remaining pops stay sorted and complete.
func TestIheapRemove(t *testing.T) {
	h := newIheap()
	r := xrand.New(17)
	const n = 400
	at := make(map[int64]float64, n)
	for i := int64(0); i < n; i++ {
		at[i] = r.Float64() * 100
		h.Push(at[i], 0, i)
	}
	removed := make(map[int64]bool)
	for i := int64(0); i < n; i += 3 {
		if !h.Remove(i) {
			t.Fatalf("Remove(%d) reported absent", i)
		}
		removed[i] = true
	}
	if h.Remove(0) {
		t.Fatal("double Remove succeeded")
	}
	last := -1.0
	seen := 0
	for h.Len() > 0 {
		e := h.Pop()
		if removed[e.handle] {
			t.Fatalf("popped removed handle %d", e.handle)
		}
		if e.at < last {
			t.Fatalf("out of order: %g after %g", e.at, last)
		}
		last = e.at
		seen++
	}
	if want := n - len(removed); seen != want {
		t.Fatalf("popped %d entries, want %d", seen, want)
	}
}

func TestIheapHandleReusePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handle did not panic")
		}
	}()
	h := newIheap()
	h.Push(1, 0, 7)
	h.Push(2, 0, 7)
}
