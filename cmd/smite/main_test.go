package main

import (
	"context"
	"errors"
	"testing"
)

// The CLI subcommands are exercised directly (they are plain functions over
// an args slice), so flag parsing, workload lookup and the full
// characterize/measure paths run in-process at reduced windows.

func TestListRuns(t *testing.T) {
	if err := list(); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestCharacterizeFast(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI characterization in short mode")
	}
	if err := characterize(context.Background(), []string{"-app", "444.namd", "-fast"}); err != nil {
		t.Fatalf("characterize: %v", err)
	}
}

func TestMeasureFast(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI measurement in short mode")
	}
	if err := measure(context.Background(), []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-placement", "cmp", "-fast"}); err != nil {
		t.Fatalf("measure: %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"characterize without -app", func() error { return characterize(context.Background(), []string{"-fast"}) }},
		{"characterize unknown app", func() error { return characterize(context.Background(), []string{"-app", "999.nope", "-fast"}) }},
		{"characterize unknown machine", func() error {
			return characterize(context.Background(), []string{"-app", "444.namd", "-machine", "alpha", "-fast"})
		}},
		{"characterize unknown placement", func() error {
			return characterize(context.Background(), []string{"-app", "444.namd", "-placement", "both", "-fast"})
		}},
		{"predict without -victim", func() error { return predict(context.Background(), []string{"-aggressor", "429.mcf", "-fast"}) }},
		{"measure without -aggressor", func() error { return measure(context.Background(), []string{"-victim", "444.namd", "-fast"}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

// A cancelled context aborts the simulation-backed subcommands.
func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := characterize(ctx, []string{"-app", "444.namd", "-fast"}); !errors.Is(err, context.Canceled) {
		t.Errorf("characterize: got %v, want context.Canceled", err)
	}
	if err := measure(ctx, []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-fast"}); !errors.Is(err, context.Canceled) {
		t.Errorf("measure: got %v, want context.Canceled", err)
	}
}
