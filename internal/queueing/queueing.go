// Package queueing implements the FCFS M/M/1 model SMiTe uses to translate
// average performance degradation into percentile (tail) latency
// (Section III-C3, Equations 4–6), together with a discrete-event M/M/1
// simulator used both to validate the closed forms and to play the role of
// the "measured" latency distribution in the latency experiments.
//
// The paper justifies M/M/1 by noting that WSC services typically queue
// per worker thread (each thread is an independent single-server system)
// and that service-time and inter-arrival coefficients of variation are
// small enough for exponential/Poisson approximations.
package queueing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// MM1 is a first-come-first-served M/M/1 queue with Poisson arrivals of
// rate Lambda and exponential service of rate Mu (both per second).
type MM1 struct {
	Lambda float64
	Mu     float64
}

// Validate checks stability (λ < μ) and positivity.
func (q MM1) Validate() error {
	if q.Mu <= 0 || q.Lambda <= 0 {
		return fmt.Errorf("queueing: rates must be positive (λ=%g, μ=%g)", q.Lambda, q.Mu)
	}
	if q.Lambda >= q.Mu {
		return fmt.Errorf("queueing: unstable queue: λ=%g >= μ=%g", q.Lambda, q.Mu)
	}
	return nil
}

// Utilization returns ρ = λ/μ.
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// drainRate returns μ−λ, the rate at which the queue drains excess work.
// It is non-positive for unstable queues (λ ≥ μ), including every queue a
// Degraded(deg ≥ 1) call produces (μ' ≤ 0): the closed forms below all
// divide by it, so each guards drainRate ≤ 0 explicitly instead of
// returning a negative "latency".
func (q MM1) drainRate() float64 { return q.Mu - q.Lambda }

// ResponseTimePDF evaluates Equation 4: f(t) = (μ−λ)·e^−(μ−λ)t, the
// probability density of the sojourn (queueing + service) time. An
// unstable queue has no stationary distribution; the density is 0.
func (q MM1) ResponseTimePDF(t float64) float64 {
	d := q.drainRate()
	if t < 0 || d <= 0 {
		return 0
	}
	return d * math.Exp(-d*t)
}

// ResponseTimeCDF evaluates P(T <= t) = 1 − e^−(μ−λ)t. For an unstable
// queue the sojourn time diverges, so P(T <= t) = 0 for every finite t.
func (q MM1) ResponseTimeCDF(t float64) float64 {
	d := q.drainRate()
	if t <= 0 || d <= 0 {
		return 0
	}
	return 1 - math.Exp(-d*t)
}

// MeanResponseTime returns E[T] = 1/(μ−λ), or +Inf for an unstable queue
// (λ ≥ μ), consistently with DegradedPercentile's saturation guard.
func (q MM1) MeanResponseTime() float64 {
	d := q.drainRate()
	if d <= 0 {
		return math.Inf(1)
	}
	return 1 / d
}

// Percentile inverts the CDF: t_p = −ln(1−p)/(μ−λ) for p in (0,1), or
// +Inf for an unstable queue (λ ≥ μ), consistently with
// DegradedPercentile's saturation guard.
func (q MM1) Percentile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	d := q.drainRate()
	if p >= 1 || d <= 0 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / d
}

// Degraded returns the queue with the service rate scaled by a co-location
// degradation (Equation 5): μ' = (1−deg)·μ. The arrival rate is unchanged
// (offered load does not care about the server's troubles).
func (q MM1) Degraded(deg float64) MM1 {
	return MM1{Lambda: q.Lambda, Mu: (1 - deg) * q.Mu}
}

// DegradedPercentile evaluates Equation 6 directly:
// t_p = −ln(1−p) / ((1−Deg)·μ − λ).
//
// Saturation is absorbing: any degradation that does not leave a strictly
// positive degraded drain rate — deg ≥ 1 − λ/μ, but also a NaN or ±Inf
// degradation from a corrupt profile — returns +Inf, never zero or a
// negative "latency". (Without the explicit non-finite guard, NaN deg
// slips past `d <= 0` because NaN comparisons are false, and deg = −Inf
// yields d = +Inf and a bogus zero latency.)
func DegradedPercentile(p, mu, lambda, deg float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if math.IsNaN(deg) || math.IsInf(deg, 0) {
		return math.Inf(1)
	}
	d := (1-deg)*mu - lambda
	if math.IsNaN(d) || d <= 0 {
		return math.Inf(1) // degradation pushed the queue past saturation
	}
	return -math.Log(1-p) / d
}

// SimResult summarises a simulated queue run.
type SimResult struct {
	N          int
	Mean       float64
	P50        float64
	P90        float64
	P95        float64
	P99        float64
	MaxSojourn float64
	// Sojourns holds every sample, arrival-ordered, for custom analysis.
	Sojourns []float64
}

// Percentile returns the p-th percentile of the simulated sojourn times.
func (r SimResult) Percentile(p float64) float64 {
	return percentileSorted(r.Sojourns, p)
}

// Simulate runs n requests through the FCFS single-server queue and returns
// the sojourn-time distribution. An M/M/1 FCFS queue needs no event list:
// departure(i) = max(arrival(i), departure(i−1)) + service(i).
func (q MM1) Simulate(n int, seed uint64) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if n <= 0 {
		return SimResult{}, fmt.Errorf("queueing: Simulate needs positive n, got %d", n)
	}
	rng := xrand.New(seed)
	sojourns := make([]float64, n)
	arrival, prevDeparture := 0.0, 0.0
	sum, maxS := 0.0, 0.0
	for i := 0; i < n; i++ {
		arrival += rng.Exp(q.Lambda)
		start := arrival
		if prevDeparture > start {
			start = prevDeparture
		}
		departure := start + rng.Exp(q.Mu)
		prevDeparture = departure
		s := departure - arrival
		sojourns[i] = s
		sum += s
		if s > maxS {
			maxS = s
		}
	}
	sorted := append([]float64(nil), sojourns...)
	sort.Float64s(sorted)
	return SimResult{
		N:          n,
		Mean:       sum / float64(n),
		P50:        percentileSorted(sorted, 0.50),
		P90:        percentileSorted(sorted, 0.90),
		P95:        percentileSorted(sorted, 0.95),
		P99:        percentileSorted(sorted, 0.99),
		MaxSojourn: maxS,
		Sojourns:   sorted,
	}, nil
}

// percentileSorted interpolates the p-th percentile of an ascending slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
