// Command smtop is a perf-stat-style inspector for the simulated SMT
// machine: it runs an application (optionally next to a co-runner or a
// Ruler) and prints the full PMU counter breakdown per hardware context —
// IPC, per-port utilisation, cache hit rates at every level, DRAM traffic,
// branch and TLB behaviour.
//
// Usage:
//
//	smtop -app 444.namd [-with 429.mcf | -ruler FP_ADD] [-machine ivb|snb]
//	      [-placement smt|cmp] [-cycles 100000] [-fast]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "smtop: %v\n", err)
		}
		os.Exit(2)
	}
}

// run parses args and executes one measurement, writing the report to w.
// Flag and validation errors return non-nil (the FlagSet prints usage).
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("smtop", flag.ContinueOnError)
	appFlag := fs.String("app", "", "application to run (required)")
	withFlag := fs.String("with", "", "co-located application")
	rulerFlag := fs.String("ruler", "", "co-located Ruler (FP_MUL, FP_ADD, FP_SHF, INT_ADD, L1, L2, L3, MEM_BW)")
	machineFlag := fs.String("machine", "ivb", "machine: ivb or snb")
	placementFlag := fs.String("placement", "smt", "placement: smt or cmp")
	cyclesFlag := fs.Uint64("cycles", 100_000, "measurement window in cycles")
	fastFlag := fs.Bool("fast", false, "use reduced warm-up windows")
	versionFlag := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		version.Fprint(w, "smtop")
		return nil
	}
	if *appFlag == "" {
		fs.Usage()
		return fmt.Errorf("-app is required")
	}
	return measure(ctx, w, *appFlag, *withFlag, *rulerFlag, *machineFlag, *placementFlag, *cyclesFlag, *fastFlag)
}

func measure(ctx context.Context, w io.Writer, app, with, ruler, machine, placementS string, cycles uint64, fast bool) error {
	cfg := isa.IvyBridge()
	if machine == "snb" {
		cfg = isa.SandyBridgeEN()
	} else if machine != "ivb" {
		return fmt.Errorf("unknown machine %q", machine)
	}
	var placement profile.Placement
	switch placementS {
	case "smt":
		placement = profile.SMT
	case "cmp":
		placement = profile.CMP
	default:
		return fmt.Errorf("unknown placement %q", placementS)
	}

	spec, err := workload.ByName(app)
	if err != nil {
		return err
	}
	opts := profile.DefaultOptions()
	if fast {
		opts = profile.FastOptions()
	}
	opts.MeasureCycles = cycles

	var partner profile.Job
	switch {
	case with != "" && ruler != "":
		return fmt.Errorf("choose one of -with and -ruler")
	case with != "":
		ps, err := workload.ByName(with)
		if err != nil {
			return err
		}
		partner = profile.App(ps)
	case ruler != "":
		r, err := rulerByName(cfg, ruler)
		if err != nil {
			return err
		}
		partner = profile.Rulers(r, 1)
	}

	// The signal context makes Ctrl-C abort a long window immediately
	// instead of waiting for the simulation to finish.
	var res profile.RunResult
	if partner == nil {
		res, err = profile.SoloContext(ctx, cfg, profile.App(spec), opts)
	} else {
		res, err = profile.ColocateContext(ctx, cfg, profile.App(spec), partner, placement, opts)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "machine: %s, window: %d cycles, placement: %v\n\n", cfg.Name, cycles, placement)
	printCounters(w, app, res.AppCounters[0])
	if partner != nil {
		fmt.Fprintln(w)
		printCounters(w, partner.Name(), res.PartnerCounters[0])
	}
	return nil
}

func rulerByName(cfg isa.Config, name string) (*rulers.Ruler, error) {
	for _, r := range rulers.StandardSet(cfg) {
		if r.Name == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("unknown ruler %q", name)
}

func printCounters(w io.Writer, name string, c pmu.Counters) {
	fmt.Fprintf(w, "=== %s ===\n", name)
	fmt.Fprintf(w, "%-28s %12d\n", "cycles", c.Cycles)
	fmt.Fprintf(w, "%-28s %12d   (%.3f IPC)\n", "instructions", c.Instructions, c.IPC())
	for p := isa.Port(0); p < isa.NumPorts; p++ {
		fmt.Fprintf(w, "port %d dispatches             %12d   (%.1f%% utilised)\n", p, c.PortUops[p], c.PortUtilization(p)*100)
	}
	level := func(label string, hits, misses uint64) {
		total := hits + misses
		rate := 0.0
		if total > 0 {
			rate = float64(hits) / float64(total) * 100
		}
		fmt.Fprintf(w, "%-28s %12d   (%.1f%% hit rate)\n", label, total, rate)
	}
	level("L1D accesses", c.L1DHits, c.L1DMisses)
	level("L2 accesses", c.L2Hits, c.L2Misses)
	level("L3 accesses", c.L3Hits, c.L3Misses)
	fmt.Fprintf(w, "%-28s %12d\n", "DRAM accesses", c.MemAccesses)
	mispct := 0.0
	if c.Branches > 0 {
		mispct = float64(c.BranchMispredicts) / float64(c.Branches) * 100
	}
	fmt.Fprintf(w, "%-28s %12d   (%.2f%% mispredicted)\n", "branches", c.Branches, mispct)
	fmt.Fprintf(w, "%-28s %12d   load / %d store\n", "dTLB misses", c.DTLBLoadMisses, c.DTLBStoreMisses)
	fmt.Fprintf(w, "%-28s %12d   iTLB / %d i-cache\n", "front-end misses", c.ITLBMisses, c.ICacheMisses)
}
