// Package check implements the runtime invariant checker for the SMT
// simulator engine — the first half of the verification layer (the second
// is the metamorphic harness in internal/simtest).
//
// Every prediction SMiTe makes is downstream of the engine's PMU counters,
// so a silent accounting regression corrupts the whole reproduction without
// failing a point-value test. The checker therefore validates physical
// conservation laws the engine must obey by construction, every N cycles
// and at the end of each Run window:
//
//   - PMU monotonicity: cumulative counters never decrease.
//   - Uop conservation: retired ≤ fetched; the retired-instruction counter
//     moves in lockstep with ROB head progress; in-flight uops fit the ROB;
//     fetch, retire and dispatch respect the configured widths.
//   - Per-port utilization ≤ 1: a core's two contexts together never
//     dispatch more than one micro-op per port per cycle.
//   - Cache accounting: hits+misses == accesses, evictions ≤ misses, and
//     lines present never exceed capacity, at every level.
//   - Memory-hierarchy conservation per context: every load/store resolves
//     at exactly one level (L1 hits+misses == loads+stores, L2 lookups ==
//     L1 misses, L3 lookups == L2 misses, DRAM accesses == L3 misses).
//   - Cycle accounting: an active context's cycle counter tracks chip time
//     exactly; an idle context's counters stay frozen.
//
// Violations are returned as structured *Violation errors naming the cycle,
// core, context and counter; the engine latches the first one (see
// engine.Chip.CheckErr). Cross-context isolation — co-scheduling affecting
// a context only through modeled contention paths — is a cross-run law and
// lives in internal/simtest.
package check

import (
	"fmt"

	"repro/internal/sim/cache"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
)

// Violation is one invariant failure. Core and Context are -1 when the
// violation is not attributable to a specific core or hardware context.
type Violation struct {
	// Invariant names the violated law ("pmu-monotonicity", ...).
	Invariant string
	// Cycle is the chip cycle at which the violation was detected.
	Cycle uint64
	// Core and Context locate the offender (-1 = chip- or core-level).
	Core, Context int
	// Counter names the offending counter or structure.
	Counter string
	// Detail is a human-readable account of the violated relation.
	Detail string
}

// Error renders the violation with all its coordinates.
func (v *Violation) Error() string {
	where := "chip"
	if v.Core >= 0 {
		where = fmt.Sprintf("core %d", v.Core)
		if v.Context >= 0 {
			where += fmt.Sprintf(" ctx %d", v.Context)
		}
	}
	return fmt.Sprintf("check: %s violated at cycle %d (%s, counter %s): %s",
		v.Invariant, v.Cycle, where, v.Counter, v.Detail)
}

// ctxSnap is one hardware context's state at the last baseline or check.
type ctxSnap struct {
	active           bool
	ctr              pmu.Counters
	fetched, retired uint64
	// baseRetired is ROB head progress at the last baseline (OnReset), used
	// to tie the cumulative Instructions counter to retirement progress.
	baseRetired uint64
}

// cacheSnap is one cache's statistics at the last check.
type cacheSnap struct {
	accesses, hits, misses, evicts uint64
}

// Checker implements engine.Checker. Attach it with engine.Chip.SetChecker
// or the Attach convenience. The zero value is ready to use; it baselines
// itself on the first OnReset/OnCycle. Not safe for concurrent use (neither
// is the Chip).
type Checker struct {
	baselined bool
	cycle     uint64
	ctxs      []ctxSnap // core-major: ctxs[core*ContextsPerCore+ctx]
	caches    []cacheSnap
	memReqs   uint64

	// Violations accumulates every violation seen (the engine additionally
	// latches the first); Checks counts OnCycle invocations.
	Violations []*Violation
	Checks     uint64
}

// New returns an empty checker.
func New() *Checker { return &Checker{} }

// Attach builds a checker and installs it on the chip with the given check
// interval (0 = engine default).
func Attach(chip *engine.Chip, interval uint64) *Checker {
	ch := New()
	chip.SetChecker(ch, interval)
	return ch
}

// Err returns the first recorded violation, or nil.
func (k *Checker) Err() error {
	if len(k.Violations) == 0 {
		return nil
	}
	return k.Violations[0]
}

// chipCaches enumerates the chip's caches in a stable order.
func chipCaches(c *engine.Chip) []*cache.Cache {
	cfg := c.Config()
	out := make([]*cache.Cache, 0, 2*cfg.Cores+1)
	for i := 0; i < cfg.Cores; i++ {
		out = append(out, c.CoreL1D(i), c.CoreL2(i))
	}
	return append(out, c.L3())
}

// OnReset re-baselines every snapshot; the engine calls it from Assign and
// ResetCounters, and SetChecker calls it on attach.
func (k *Checker) OnReset(c *engine.Chip) {
	cfg := c.Config()
	k.cycle = c.Cycle()
	k.ctxs = k.ctxs[:0]
	for core := 0; core < cfg.Cores; core++ {
		for ctx := 0; ctx < cfg.ContextsPerCore; ctx++ {
			fetched, retired := c.Progress(core, ctx)
			k.ctxs = append(k.ctxs, ctxSnap{
				active:      c.ContextActive(core, ctx),
				ctr:         c.Counters(core, ctx),
				fetched:     fetched,
				retired:     retired,
				baseRetired: retired - c.Counters(core, ctx).Instructions,
			})
		}
	}
	k.caches = k.caches[:0]
	for _, ca := range chipCaches(c) {
		h, m, e := ca.Stats()
		k.caches = append(k.caches, cacheSnap{accesses: ca.Accesses(), hits: h, misses: m, evicts: e})
	}
	reqs, _, _ := c.Memory().Stats()
	k.memReqs = reqs
	k.baselined = true
}

// OnCycle validates every invariant against the last snapshot, then
// re-snapshots. It returns the first violation found this check (all are
// also accumulated in Violations).
func (k *Checker) OnCycle(c *engine.Chip) error {
	if !k.baselined {
		k.OnReset(c)
		return nil
	}
	k.Checks++
	before := len(k.Violations)
	cfg := c.Config()
	now := c.Cycle()
	dCycles := now - k.cycle

	for core := 0; core < cfg.Cores; core++ {
		k.checkCore(c, core, dCycles)
	}
	k.checkCaches(c, now)

	reqs, _, _ := c.Memory().Stats()
	if reqs < k.memReqs {
		k.record(&Violation{
			Invariant: "pmu-monotonicity", Cycle: now, Core: -1, Context: -1,
			Counter: "mem.requests",
			Detail:  fmt.Sprintf("memory request count decreased %d -> %d", k.memReqs, reqs),
		})
	}

	// Re-baseline the rolling snapshots (keeping baseRetired fixed: the
	// Instructions/retirement tie is cumulative since the last reset).
	k.resnap(c)

	if len(k.Violations) > before {
		return k.Violations[before]
	}
	return nil
}

// resnap refreshes the rolling per-context and per-cache snapshots without
// moving the counter baselines.
func (k *Checker) resnap(c *engine.Chip) {
	cfg := c.Config()
	k.cycle = c.Cycle()
	for core := 0; core < cfg.Cores; core++ {
		for ctx := 0; ctx < cfg.ContextsPerCore; ctx++ {
			s := &k.ctxs[core*cfg.ContextsPerCore+ctx]
			s.active = c.ContextActive(core, ctx)
			s.ctr = c.Counters(core, ctx)
			s.fetched, s.retired = c.Progress(core, ctx)
		}
	}
	for i, ca := range chipCaches(c) {
		h, m, e := ca.Stats()
		k.caches[i] = cacheSnap{accesses: ca.Accesses(), hits: h, misses: m, evicts: e}
	}
	reqs, _, _ := c.Memory().Stats()
	k.memReqs = reqs
}

func (k *Checker) record(v *Violation) {
	k.Violations = append(k.Violations, v)
}

// checkCore validates all per-core and per-context invariants over the
// window of dCycles chip cycles since the last check.
func (k *Checker) checkCore(c *engine.Chip, core int, dCycles uint64) {
	cfg := c.Config()
	now := c.Cycle()
	var coreFetchDelta uint64
	var portDelta [isa.NumPorts]uint64

	for ctx := 0; ctx < cfg.ContextsPerCore; ctx++ {
		prev := &k.ctxs[core*cfg.ContextsPerCore+ctx]
		ctr := c.Counters(core, ctx)
		fetched, retired := c.Progress(core, ctx)
		active := c.ContextActive(core, ctx)

		// PMU monotonicity: cumulative counters never decrease.
		prevFields, nowFields := prev.ctr.FieldList(), ctr.FieldList()
		for i, f := range nowFields {
			if f.Value < prevFields[i].Value {
				k.record(&Violation{
					Invariant: "pmu-monotonicity", Cycle: now, Core: core, Context: ctx,
					Counter: f.Name,
					Detail:  fmt.Sprintf("counter decreased %d -> %d", prevFields[i].Value, f.Value),
				})
			}
		}

		// Cycle accounting: active contexts age exactly with the chip,
		// idle contexts not at all.
		dCtx := ctr.Cycles - prev.ctr.Cycles
		if active && prev.active && dCtx != dCycles {
			k.record(&Violation{
				Invariant: "cycle-accounting", Cycle: now, Core: core, Context: ctx,
				Counter: "Cycles",
				Detail:  fmt.Sprintf("active context aged %d cycles over a %d-cycle window", dCtx, dCycles),
			})
		}
		if !active && !prev.active && dCtx != 0 {
			k.record(&Violation{
				Invariant: "cycle-accounting", Cycle: now, Core: core, Context: ctx,
				Counter: "Cycles",
				Detail:  fmt.Sprintf("idle context aged %d cycles", dCtx),
			})
		}

		// Uop conservation.
		if retired > fetched {
			k.record(&Violation{
				Invariant: "uop-conservation", Cycle: now, Core: core, Context: ctx,
				Counter: "retired",
				Detail:  fmt.Sprintf("retired %d uops but fetched only %d", retired, fetched),
			})
		}
		if inflight := fetched - retired; inflight > uint64(cfg.ROBSize) {
			k.record(&Violation{
				Invariant: "uop-conservation", Cycle: now, Core: core, Context: ctx,
				Counter: "rob",
				Detail:  fmt.Sprintf("%d uops in flight exceed ROB size %d", inflight, cfg.ROBSize),
			})
		}
		if got, want := ctr.Instructions, retired-prev.baseRetired; got != want {
			k.record(&Violation{
				Invariant: "uop-conservation", Cycle: now, Core: core, Context: ctx,
				Counter: "Instructions",
				Detail:  fmt.Sprintf("retired-instruction counter %d does not match ROB retirement progress %d", got, want),
			})
		}
		if dRet := retired - prev.retired; dRet > uint64(cfg.RetireWidth)*dCycles {
			k.record(&Violation{
				Invariant: "uop-conservation", Cycle: now, Core: core, Context: ctx,
				Counter: "retired",
				Detail:  fmt.Sprintf("retired %d uops in %d cycles, exceeding retire width %d", dRet, dCycles, cfg.RetireWidth),
			})
		}
		// Every dispatched uop was fetched; in-flight boundary effects allow
		// at most one ROB of slack across a window.
		var dDispatch uint64
		for p := range ctr.PortUops {
			d := ctr.PortUops[p] - prev.ctr.PortUops[p]
			portDelta[p] += d
			dDispatch += d
		}
		if dFetch := fetched - prev.fetched; dDispatch > dFetch+uint64(cfg.ROBSize) {
			k.record(&Violation{
				Invariant: "uop-conservation", Cycle: now, Core: core, Context: ctx,
				Counter: "PortUops",
				Detail:  fmt.Sprintf("dispatched %d uops in a window that fetched %d (ROB %d)", dDispatch, dFetch, cfg.ROBSize),
			})
		}
		coreFetchDelta += fetched - prev.fetched

		// Memory-hierarchy conservation: each access resolves at exactly
		// one level, cumulatively since the last counter reset.
		for _, rel := range [...]struct {
			name       string
			got, want  uint64
			constraint string
		}{
			{"L1D", ctr.L1DHits + ctr.L1DMisses, ctr.Loads + ctr.Stores, "L1D hits+misses == loads+stores"},
			{"L2", ctr.L2Hits + ctr.L2Misses, ctr.L1DMisses, "L2 hits+misses == L1D misses"},
			{"L3", ctr.L3Hits + ctr.L3Misses, ctr.L2Misses, "L3 hits+misses == L2 misses"},
			{"MEM", ctr.MemAccesses, ctr.L3Misses, "DRAM accesses == L3 misses"},
		} {
			if rel.got != rel.want {
				k.record(&Violation{
					Invariant: "hierarchy-conservation", Cycle: now, Core: core, Context: ctx,
					Counter: rel.name,
					Detail:  fmt.Sprintf("%s: got %d, want %d", rel.constraint, rel.got, rel.want),
				})
			}
		}
		if ctr.BranchMispredicts > ctr.Branches {
			k.record(&Violation{
				Invariant: "hierarchy-conservation", Cycle: now, Core: core, Context: ctx,
				Counter: "BranchMispredicts",
				Detail:  fmt.Sprintf("%d mispredicts exceed %d branches", ctr.BranchMispredicts, ctr.Branches),
			})
		}
	}

	// Per-port utilization ≤ 1: one uop per port per cycle across the
	// core's two contexts.
	for p, d := range portDelta {
		if d > dCycles {
			k.record(&Violation{
				Invariant: "port-utilization", Cycle: now, Core: core, Context: -1,
				Counter: fmt.Sprintf("PortUops[%d]", p),
				Detail:  fmt.Sprintf("port dispatched %d uops in %d cycles (utilization > 1)", d, dCycles),
			})
		}
	}
	// Front-end conservation: the shared fetch unit allocates at most
	// FetchWidth uops per cycle across both contexts.
	if coreFetchDelta > uint64(cfg.FetchWidth)*dCycles {
		k.record(&Violation{
			Invariant: "uop-conservation", Cycle: now, Core: core, Context: -1,
			Counter: "fetched",
			Detail:  fmt.Sprintf("core fetched %d uops in %d cycles, exceeding fetch width %d", coreFetchDelta, dCycles, cfg.FetchWidth),
		})
	}
}

// checkCaches validates occupancy and tally accounting for every cache.
func (k *Checker) checkCaches(c *engine.Chip, now uint64) {
	for i, ca := range chipCaches(c) {
		h, m, e := ca.Stats()
		acc := ca.Accesses()
		prev := k.caches[i]
		if h < prev.hits || m < prev.misses || e < prev.evicts || acc < prev.accesses {
			k.record(&Violation{
				Invariant: "pmu-monotonicity", Cycle: now, Core: -1, Context: -1,
				Counter: ca.Name(),
				Detail: fmt.Sprintf("cache statistics decreased: %d/%d/%d/%d -> %d/%d/%d/%d",
					prev.accesses, prev.hits, prev.misses, prev.evicts, acc, h, m, e),
			})
		}
		if h+m != acc {
			k.record(&Violation{
				Invariant: "cache-accounting", Cycle: now, Core: -1, Context: -1,
				Counter: ca.Name(),
				Detail:  fmt.Sprintf("hits %d + misses %d != accesses %d", h, m, acc),
			})
		}
		if e > m {
			k.record(&Violation{
				Invariant: "cache-accounting", Cycle: now, Core: -1, Context: -1,
				Counter: ca.Name(),
				Detail:  fmt.Sprintf("evictions %d exceed misses %d", e, m),
			})
		}
		if lines, capacity := ca.LineCount(), ca.Sets()*ca.Ways(); lines > capacity {
			k.record(&Violation{
				Invariant: "cache-accounting", Cycle: now, Core: -1, Context: -1,
				Counter: ca.Name(),
				Detail:  fmt.Sprintf("%d lines present exceed capacity %d", lines, capacity),
			})
		}
	}
}
