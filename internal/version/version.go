// Package version derives a human-readable build identifier from the
// metadata the Go linker embeds in every binary, so the commands can answer
// -version without a stamping step in the build.
package version

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// String returns a one-line build description: the module version when the
// binary was built from a tagged module, otherwise the VCS revision (with a
// -dirty marker for modified trees), plus the Go toolchain and platform.
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return fmt.Sprintf("unknown (%s/%s)", runtime.GOOS, runtime.GOARCH)
	}
	v := info.Main.Version
	if v == "" || v == "(devel)" {
		// No module version stamped (plain `go build` before Go started
		// deriving pseudo-versions from VCS state): fall back to the raw
		// revision. When a version IS stamped it already encodes the
		// revision and dirty bit, so appending them again would be noise.
		v = "devel"
		var rev string
		dirty := false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			v += "+" + rev
		}
	}
	return fmt.Sprintf("%s (%s, %s/%s)", v, info.GoVersion, runtime.GOOS, runtime.GOARCH)
}

// Fprint writes the conventional "<cmd> <version>" line.
func Fprint(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s\n", cmd, String())
}
