// Package trace records and replays micro-op streams in a compact binary
// format.
//
// The workload models are generative; traces make them portable: capture a
// window of any stream (a workload, a Ruler, or a hand-built generator),
// store it, and replay it bit-exactly on any machine configuration. Looped
// replay turns a finite capture into the stationary infinite stream the
// measurement windows expect — the trace-driven analogue of the paper's
// long-running WSC applications.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sim/isa"
)

// magic identifies trace files; version gates the encoding.
var magic = [4]byte{'S', 'M', 'T', 'R'}

const version = 1

// Flag bits of the per-uop header byte.
const (
	flagDep1 = 1 << iota
	flagDep2
	flagAddr
	flagBranch
	flagTaken
	flagICache
	flagITLB
)

// Writer encodes micro-ops to an output stream.
type Writer struct {
	w     *bufio.Writer
	count uint64
	buf   [binary.MaxVarintLen64]byte
}

// NewWriter starts a trace on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func (t *Writer) varint(v uint64) error {
	n := binary.PutUvarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Write appends one micro-op.
func (t *Writer) Write(u *isa.Uop) error {
	if err := t.w.WriteByte(byte(u.Kind)); err != nil {
		return fmt.Errorf("trace: writing uop: %w", err)
	}
	var flags byte
	if u.Dep1 != 0 {
		flags |= flagDep1
	}
	if u.Dep2 != 0 {
		flags |= flagDep2
	}
	if u.Kind == isa.Load || u.Kind == isa.Store {
		flags |= flagAddr
	}
	if u.Kind == isa.Branch {
		flags |= flagBranch
		if u.Taken {
			flags |= flagTaken
		}
	}
	if u.ICacheMiss {
		flags |= flagICache
	}
	if u.ITLBMiss {
		flags |= flagITLB
	}
	if err := t.w.WriteByte(flags); err != nil {
		return fmt.Errorf("trace: writing uop: %w", err)
	}
	if flags&flagDep1 != 0 {
		if err := t.varint(uint64(u.Dep1)); err != nil {
			return err
		}
	}
	if flags&flagDep2 != 0 {
		if err := t.varint(uint64(u.Dep2)); err != nil {
			return err
		}
	}
	if flags&flagAddr != 0 {
		if err := t.varint(u.Addr); err != nil {
			return err
		}
	}
	if flags&flagBranch != 0 {
		if err := t.varint(uint64(u.BrTag)); err != nil {
			return err
		}
	}
	t.count++
	return nil
}

// Count returns the number of uops written.
func (t *Writer) Count() uint64 { return t.count }

// Flush pushes buffered bytes to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// ReadAll decodes a whole trace.
func ReadAll(r io.Reader) ([]isa.Uop, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	var out []isa.Uop
	for {
		kindB, err := br.ReadByte()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading uop %d: %w", len(out), err)
		}
		if kindB >= byte(isa.NumKinds) {
			return nil, fmt.Errorf("trace: uop %d has invalid kind %d", len(out), kindB)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading uop %d: %w", len(out), err)
		}
		u := isa.Uop{Kind: isa.UopKind(kindB)}
		read := func() (uint64, error) { return binary.ReadUvarint(br) }
		if flags&flagDep1 != 0 {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("trace: uop %d dep1: %w", len(out), err)
			}
			u.Dep1 = uint16(v)
		}
		if flags&flagDep2 != 0 {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("trace: uop %d dep2: %w", len(out), err)
			}
			u.Dep2 = uint16(v)
		}
		if flags&flagAddr != 0 {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("trace: uop %d addr: %w", len(out), err)
			}
			u.Addr = v
		}
		if flags&flagBranch != 0 {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("trace: uop %d brtag: %w", len(out), err)
			}
			u.BrTag = uint32(v)
			u.Taken = flags&flagTaken != 0
		}
		u.ICacheMiss = flags&flagICache != 0
		u.ITLBMiss = flags&flagITLB != 0
		out = append(out, u)
	}
}

// Source is anything producing micro-ops (engine.Stream-shaped).
type Source interface {
	Next(u *isa.Uop)
}

// Capture records n micro-ops from a source.
func Capture(s Source, n int) []isa.Uop {
	out := make([]isa.Uop, n)
	for i := range out {
		out[i] = isa.Uop{}
		s.Next(&out[i])
	}
	return out
}

// Stream replays a captured trace; when Loop is set it wraps around
// forever, otherwise it pads with Nops after the end.
type Stream struct {
	uops []isa.Uop
	pos  int
	loop bool
	// footprint optionally declares resident regions for cache prewarm.
	footprint []uint64
}

// NewStream builds a replay stream.
func NewStream(uops []isa.Uop, loop bool) *Stream {
	return &Stream{uops: uops, loop: loop}
}

// DeclareFootprint attaches resident-region sizes for the engine's
// functional prewarm (traces carry no generative locality model, so the
// recorder supplies it).
func (s *Stream) DeclareFootprint(sizes ...uint64) { s.footprint = sizes }

// PrewarmFootprint implements engine.FootprintDeclarer.
func (s *Stream) PrewarmFootprint() []uint64 { return s.footprint }

// Next implements engine.Stream.
func (s *Stream) Next(u *isa.Uop) {
	if len(s.uops) == 0 || (!s.loop && s.pos >= len(s.uops)) {
		u.Kind = isa.Nop
		return
	}
	*u = s.uops[s.pos%len(s.uops)]
	s.pos++
}

// Len returns the trace length.
func (s *Stream) Len() int { return len(s.uops) }
