package mem

import "testing"

func TestIdleLatencyIsBase(t *testing.T) {
	m := New(180, 8)
	if got := m.Request(100); got != 280 {
		t.Errorf("idle request completes at %d, want 280", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	m := New(100, 10)
	// Three simultaneous requests: grants at 0, 10, 20.
	c1 := m.Request(0)
	c2 := m.Request(0)
	c3 := m.Request(0)
	if c1 != 100 || c2 != 110 || c3 != 120 {
		t.Errorf("completions = %d,%d,%d, want 100,110,120", c1, c2, c3)
	}
	_, avgQ, maxB := m.Stats()
	if maxB != 20 {
		t.Errorf("max backlog = %d, want 20", maxB)
	}
	if avgQ != 10 { // (0+10+20)/3
		t.Errorf("avg queue = %g, want 10", avgQ)
	}
}

func TestQueueDrains(t *testing.T) {
	m := New(100, 10)
	m.Request(0)
	m.Request(0)
	// After the backlog clears, a late request sees no queueing.
	if got := m.Request(1000); got != 1100 {
		t.Errorf("late request completes at %d, want 1100", got)
	}
}

func TestSaturationGrowsQueue(t *testing.T) {
	m := New(100, 10)
	// Demand 1 request/cycle against capacity 1/10: queue grows linearly.
	var last uint64
	for now := uint64(0); now < 1000; now++ {
		last = m.Request(now)
	}
	// The 1000th request waits ~9990 cycles behind 999 predecessors.
	if last < 9000 {
		t.Errorf("saturated queue did not build: last completion %d", last)
	}
}

func TestResetStats(t *testing.T) {
	m := New(100, 10)
	m.Request(0)
	m.Request(0)
	m.ResetStats()
	if reqs, avgQ, maxB := m.Stats(); reqs != 0 || avgQ != 0 || maxB != 0 {
		t.Error("stats not reset")
	}
}

func TestZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero service interval accepted")
		}
	}()
	New(100, 0)
}

func TestThrottleBurstThenSpacing(t *testing.T) {
	tb := NewThrottle(2, 100)
	// Two back-to-back requests at cycle 0 conform (burst capacity)...
	if at := tb.Admit(0); at != 0 {
		t.Fatalf("first request admitted at %d, want 0", at)
	}
	if at := tb.Admit(0); at != 0 {
		t.Fatalf("second request admitted at %d, want 0 (burst)", at)
	}
	// ...then the shaper enforces one request per 100 cycles.
	if at := tb.Admit(0); at != 100 {
		t.Fatalf("third request admitted at %d, want 100", at)
	}
	if at := tb.Admit(0); at != 200 {
		t.Fatalf("fourth request admitted at %d, want 200", at)
	}
	if tb.Delayed() != 300 {
		t.Fatalf("cumulative delay %d, want 300", tb.Delayed())
	}
}

func TestThrottleIdleRefills(t *testing.T) {
	tb := NewThrottle(2, 100)
	tb.Admit(0)
	tb.Admit(0)
	// After a long idle stretch the bucket is full again: another burst of
	// two conforms immediately.
	if at := tb.Admit(10_000); at != 10_000 {
		t.Fatalf("post-idle request admitted at %d, want 10000", at)
	}
	if at := tb.Admit(10_000); at != 10_000 {
		t.Fatalf("post-idle burst admitted at %d, want 10000", at)
	}
	if at := tb.Admit(10_000); at != 10_100 {
		t.Fatalf("post-burst request admitted at %d, want 10100", at)
	}
}

func TestZeroThrottleAdmitsImmediately(t *testing.T) {
	var tb Throttle
	if tb.Enabled() {
		t.Fatal("zero throttle reports enabled")
	}
	for now := uint64(0); now < 10; now++ {
		if at := tb.Admit(now); at != now {
			t.Fatalf("zero throttle delayed a request to %d", at)
		}
	}
}

func TestThrottleSustainedRate(t *testing.T) {
	tb := NewThrottle(4, 50)
	var last uint64
	n := uint64(1000)
	for i := uint64(0); i < n; i++ {
		last = tb.Admit(0)
	}
	// n requests at a 1/50 sustained rate with burst 4: the last is
	// admitted at (n-4)*50.
	if want := (n - 4) * 50; last != want {
		t.Fatalf("request %d admitted at %d, want %d", n, last, want)
	}
	tb.Reset()
	if at := tb.Admit(0); at != 0 {
		t.Fatalf("post-Reset request admitted at %d, want 0", at)
	}
}
