package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestSummarySchema pins the -summary-json schema: the exact top-level
// and nested key sets, and the schema version. Consumers (benchci-style
// gates, dashboards) key on these names; renaming or removing one must
// bump SummarySchemaVersion and this fixture together.
func TestSummarySchema(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 41)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(context.Background(), cfg, events, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Summary())
	if err != nil {
		t.Fatal(err)
	}

	// Strict decode back into the struct: round-trips with no unknown
	// fields in either direction.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var back Summary
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("summary JSON does not round-trip strictly: %v", err)
	}
	if back.SchemaVersion != SummarySchemaVersion {
		t.Fatalf("schema_version %d, want %d", back.SchemaVersion, SummarySchemaVersion)
	}

	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	keys := map[string][]string{
		"":            {"schema_version", "policy", "qos", "target", "machines", "events", "utilization", "slo", "saturation", "isolation"},
		"machines":    {"start", "end", "ups", "downs"},
		"events":      {"total", "arrived", "placed", "rejected", "departed", "evicted"},
		"utilization": {"baseline", "mean", "peak"},
		"slo":         {"violations", "violation_frac"},
		"saturation":  {"rejection_frac", "signal", "scale_up_threshold", "scale_down_threshold"},
		"isolation":   {"enabled", "levels", "escalations", "resolved", "migrations", "throughput_tax"},
	}
	checkKeys := func(scope string, obj map[string]json.RawMessage, want []string) {
		if len(obj) != len(want) {
			t.Errorf("%q has %d keys, want %d", scope, len(obj), len(want))
		}
		for _, k := range want {
			if _, ok := obj[k]; !ok {
				t.Errorf("%q is missing key %q", scope, k)
			}
		}
	}
	checkKeys("", doc, keys[""])
	for _, scope := range []string{"machines", "events", "utilization", "slo", "saturation", "isolation"} {
		var nested map[string]json.RawMessage
		if err := json.Unmarshal(doc[scope], &nested); err != nil {
			t.Fatalf("%q: %v", scope, err)
		}
		checkKeys(scope, nested, keys[scope])
	}
}
