package profile

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/rulers"
	"repro/internal/sched"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

func batchConfig() isa.Config {
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	return cfg
}

func batchOptions() Options {
	return Options{
		PrewarmUops:   20_000,
		WarmupCycles:  4_000,
		MeasureCycles: 10_000,
		BaseSeed:      1,
	}
}

// TestBatchedMatchesFreshChips is the batched-path contract: a
// characterization computed through the pooled one-chip-per-worker
// scheduler must be bit-identical to one computed with a fresh engine
// instance per cell. The fresh side is assembled by hand from the package
// Solo/Colocate functions, which never see a scheduler slot and therefore
// always allocate.
func TestBatchedMatchesFreshChips(t *testing.T) {
	cfg := batchConfig()
	opts := batchOptions()
	specs := []*workload.Spec{
		mustByName(t, "429.mcf"),
		mustByName(t, "444.namd"),
	}

	for _, workers := range []int{1, 3} {
		o := opts
		o.Parallelism = workers
		batched, err := NewProfiler(cfg, o).CharacterizeAll(specs, SMT)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}

		var fresh []Characterization
		for _, spec := range specs {
			job := App(spec)
			solo, err := Solo(cfg, job, opts)
			if err != nil {
				t.Fatal(err)
			}
			ch := Characterization{
				App:       job.Name(),
				Placement: SMT,
				SoloIPC:   solo.AppIPC,
				SoloPMU:   solo.AppCounters[0],
			}
			for _, r := range rulers.StandardSet(cfg) {
				rulerSolo, err := Solo(cfg, Rulers(r, 1), opts)
				if err != nil {
					t.Fatal(err)
				}
				co, err := Colocate(cfg, job, Rulers(r, job.Instances()), SMT, opts)
				if err != nil {
					t.Fatal(err)
				}
				ch.Sen[r.Dim] = Degradation(solo.AppIPC, co.AppIPC)
				ch.Con[r.Dim] = Degradation(rulerSolo.AppIPC, co.PartnerIPC)
			}
			fresh = append(fresh, ch)
		}

		if !reflect.DeepEqual(batched, fresh) {
			t.Errorf("workers=%d: batched characterization diverged from fresh-chip-per-cell characterization\nbatched: %+v\n  fresh: %+v",
				workers, batched, fresh)
		}
	}
}

// TestChipForReusesSlotChip pins the pooling mechanics: under a scheduler
// Map the same chip instance serves consecutive cells of one worker, while
// direct calls (no slot) always allocate.
func TestChipForReusesSlotChip(t *testing.T) {
	cfg := batchConfig()
	err := sched.Map(context.Background(), 3, 1, func(ctx context.Context, i int) error {
		a, err := chipFor(ctx, cfg)
		if err != nil {
			return err
		}
		b, err := chipFor(ctx, cfg)
		if err != nil {
			return err
		}
		if a != b {
			t.Errorf("task %d: worker slot handed out two distinct chips", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	a, err := chipFor(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chipFor(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("chipFor outside a scheduler Map reused a chip")
	}
}

// TestChipForRespectsForeignSlot pins that a slot already claimed by some
// other per-worker cache is left untouched and the caller still gets a
// working chip.
func TestChipForRespectsForeignSlot(t *testing.T) {
	cfg := batchConfig()
	err := sched.Map(context.Background(), 1, 1, func(ctx context.Context, i int) error {
		slot := sched.SlotFrom(ctx)
		foreign := "someone else's state"
		slot.Value = foreign
		if _, err := chipFor(ctx, cfg); err != nil {
			return err
		}
		if slot.Value != foreign {
			t.Error("chipFor overwrote a foreign slot value")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCharacterizeSweep exercises the grid API: the intensity-1.0 column
// must be bit-identical to CharacterizeAll, every dimension must carry one
// sample per grid point in ascending order, and 1.0 must be appended when
// missing.
func TestCharacterizeSweep(t *testing.T) {
	cfg := batchConfig()
	opts := batchOptions()
	opts.Parallelism = 2
	specs := []*workload.Spec{mustByName(t, "429.mcf")}

	p := NewProfiler(cfg, opts)
	sweeps, err := p.CharacterizeSweep([]Job{App(specs[0])}, SMT, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 1 {
		t.Fatalf("got %d sweep results, want 1", len(sweeps))
	}
	sw := sweeps[0]
	for d := range sw.Samples {
		if len(sw.Samples[d]) != 2 {
			t.Fatalf("dimension %d: %d samples, want 2 (0.5 and the appended 1.0)", d, len(sw.Samples[d]))
		}
		if sw.Samples[d][0].Intensity != 0.5 || sw.Samples[d][1].Intensity != 1.0 {
			t.Errorf("dimension %d: grid %v, want ascending [0.5 1]", d, sw.Samples[d])
		}
		if sw.Samples[d][1].Sen != sw.Characterization.Sen[d] || sw.Samples[d][1].Con != sw.Characterization.Con[d] {
			t.Errorf("dimension %d: 1.0 column disagrees with the embedded characterization", d)
		}
	}

	chars, err := NewProfiler(cfg, opts).CharacterizeAll(specs, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sw.Characterization, chars[0]) {
		t.Errorf("sweep's intensity-1.0 characterization diverged from CharacterizeAll:\nsweep: %+v\n  all: %+v",
			sw.Characterization, chars[0])
	}
}

func mustByName(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
