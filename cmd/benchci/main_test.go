package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngineHotLoop/mem-bound-smt-16         	       1	 2500000 ns/op	     120 B/op	       3 allocs/op
BenchmarkEngineHotLoop/compute-bound-smt-16     	       1	 4000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig10SPECPairsIvyBridge-16             	       1	 90000000 ns/op
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	sum, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"EngineHotLoop/mem-bound-smt":     {NsPerOp: 2.5e6, AllocsPerOp: 3},
		"EngineHotLoop/compute-bound-smt": {NsPerOp: 4e6, AllocsPerOp: 0},
		"Fig10SPECPairsIvyBridge":         {NsPerOp: 9e7, AllocsPerOp: 0},
	}
	if len(sum.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(sum.Benchmarks), len(want), sum)
	}
	for name, w := range want {
		if got := sum.Benchmarks[name]; got != w {
			t.Errorf("%s = %+v, want %+v", name, got, w)
		}
	}
}

// With -count N every benchmark repeats; the fastest run must win.
func TestParseKeepsFastestOfRepeats(t *testing.T) {
	input := `BenchmarkX-16	1	300 ns/op	16 B/op	2 allocs/op
BenchmarkX-16	1	100 ns/op	8 B/op	1 allocs/op
BenchmarkX-16	1	200 ns/op	16 B/op	2 allocs/op
`
	sum, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := Result{NsPerOp: 100, AllocsPerOp: 1}
	if got := sum.Benchmarks["X"]; got != want {
		t.Errorf("X = %+v, want %+v (min of repeats)", got, want)
	}
}

func summaryOf(pairs map[string]float64) Summary {
	s := Summary{Benchmarks: make(map[string]Result)}
	for name, ns := range pairs {
		s.Benchmarks[name] = Result{NsPerOp: ns}
	}
	return s
}

func TestCompare(t *testing.T) {
	base := summaryOf(map[string]float64{"A": 100, "B": 100})
	var out bytes.Buffer

	if err := compare(&out, base, summaryOf(map[string]float64{"A": 110, "B": 124, "C": 5}), 25); err != nil {
		t.Errorf("within-threshold run failed: %v", err)
	}
	if !strings.Contains(out.String(), "new benchmark") {
		t.Error("new benchmark not reported")
	}
	if err := compare(&out, base, summaryOf(map[string]float64{"A": 126, "B": 100}), 25); err == nil {
		t.Error("26% regression passed a 25% gate")
	}
	if err := compare(&out, base, summaryOf(map[string]float64{"A": 100}), 25); err == nil {
		t.Error("missing benchmark passed the gate")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_baseline.json")
	ci := filepath.Join(dir, "BENCH_ci.json")

	// First: record the baseline.
	var out bytes.Buffer
	err := run([]string{"-out", baseline, "-write-baseline"}, strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	buf, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("baseline has %d benchmarks, want 3", len(sum.Benchmarks))
	}

	// Identical results must pass the gate and emit the CI artifact.
	out.Reset()
	err = run([]string{"-out", ci, "-baseline", baseline}, strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatalf("identical results failed the gate: %v", err)
	}
	if _, err := os.Stat(ci); err != nil {
		t.Fatalf("CI artifact not written: %v", err)
	}
	// The raw benchmark log must pass through for CI readability.
	if !strings.Contains(out.String(), "BenchmarkEngineHotLoop/mem-bound-smt") {
		t.Error("raw benchmark output not echoed")
	}

	// A big regression must fail.
	regressed := strings.Replace(sampleOutput, "2500000 ns/op", "9900000 ns/op", 1)
	err = run([]string{"-baseline", baseline}, strings.NewReader(regressed), &out)
	if err == nil || !strings.Contains(err.Error(), "REGRESSED") && !strings.Contains(err.Error(), "failed the gate") {
		t.Fatalf("regression not caught: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-bogus"},
		{}, // nothing to do
		{"-out", "x", "-write-baseline", "-baseline", "y"}, // mutually exclusive
		{"-baseline", "does-not-exist.json"},
		{"positional"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(sampleOutput), &out); err == nil {
			t.Errorf("args %q accepted", args)
		}
	}
}
