package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

func lruParams() isa.CacheParams {
	return isa.CacheParams{SizeBytes: 4096, Ways: 4, LineBytes: 64, Policy: isa.PolicyLRU}
}

func TestHitAfterFill(t *testing.T) {
	c := New("t", lruParams())
	if c.Access(0x1000, true) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, true) {
		t.Error("second access missed")
	}
	if !c.Access(0x103F, true) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040, true) {
		t.Error("next line hit without fill")
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestNoAllocateLeavesCacheCold(t *testing.T) {
	c := New("t", lruParams())
	c.Access(0x2000, false)
	if c.Contains(0x2000) {
		t.Error("non-allocating miss installed a line")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := lruParams() // 16 sets × 4 ways
	c := New("t", p)
	setStride := uint64(p.LineBytes * p.Sets()) // same-set stride
	// Fill one set's 4 ways.
	for w := uint64(0); w < 4; w++ {
		c.Access(w*setStride, true)
	}
	// Touch way 0 so way 1 becomes LRU.
	c.Access(0, true)
	// A fifth line must evict way 1, keeping way 0.
	c.Access(4*setStride, true)
	if !c.Contains(0) {
		t.Error("recently used line evicted")
	}
	if c.Contains(1 * setStride) {
		t.Error("LRU line survived")
	}
}

func TestFlush(t *testing.T) {
	c := New("t", lruParams())
	c.Access(0x40, true)
	c.Flush()
	if c.Contains(0x40) {
		t.Error("line survived flush")
	}
	if h, m, _ := c.Stats(); h != 0 || m != 0 {
		t.Error("stats survived flush")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New("t", lruParams())
	c.Access(0x40, true)
	c.ResetStats()
	if !c.Contains(0x40) {
		t.Error("ResetStats dropped contents")
	}
	if h, m, _ := c.Stats(); h != 0 || m != 0 {
		t.Error("counters not reset")
	}
}

func TestOccupancy(t *testing.T) {
	p := lruParams()
	c := New("t", p)
	if c.Occupancy() != 0 {
		t.Error("fresh cache not empty")
	}
	// Fill the whole cache with distinct lines.
	lines := p.SizeBytes / p.LineBytes
	for i := 0; i < lines; i++ {
		c.Access(uint64(i*p.LineBytes), true)
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %g after filling", c.Occupancy())
	}
}

// LineCount is maintained incrementally on fill/flush rather than scanned
// (the checker polls it for every cache at every interval); pin it to a
// ground-truth scan of the valid bits under a random access pattern.
func TestLineCountMatchesScan(t *testing.T) {
	for _, pol := range []isa.ReplacementPolicy{isa.PolicyLRU, isa.PolicyRandom} {
		p := lruParams()
		p.Policy = pol
		c := New("t", p)
		rng := xrand.New(7)
		scan := func() int {
			n := 0
			for _, tag := range c.tags {
				if tag != invalidTag {
					n++
				}
			}
			return n
		}
		for i := 0; i < 2000; i++ {
			c.Access(rng.Uint64()%uint64(4*p.SizeBytes), rng.Bool(0.8))
			if i%97 == 0 {
				if got, want := c.LineCount(), scan(); got != want {
					t.Fatalf("policy %v: LineCount = %d, scan = %d after %d accesses", pol, got, want, i+1)
				}
			}
		}
		if got, want := c.LineCount(), scan(); got != want {
			t.Fatalf("policy %v: LineCount = %d, scan = %d", pol, got, want)
		}
		c.Flush()
		if c.LineCount() != 0 {
			t.Errorf("policy %v: LineCount = %d after Flush", pol, c.LineCount())
		}
	}
}

// Property: a line just accessed with allocate=true is always Contains,
// under either policy.
func TestAccessThenContains(t *testing.T) {
	for _, pol := range []isa.ReplacementPolicy{isa.PolicyLRU, isa.PolicyRandom} {
		p := lruParams()
		p.Policy = pol
		c := New("t", p)
		if err := quick.Check(func(addr uint64) bool {
			c.Access(addr, true)
			return c.Contains(addr)
		}, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("policy %v: %v", pol, err)
		}
	}
}

// Property: working sets within capacity converge to 100% hit rate.
func TestResidentWorkingSetHits(t *testing.T) {
	for _, pol := range []isa.ReplacementPolicy{isa.PolicyLRU, isa.PolicyRandom} {
		p := lruParams()
		p.Policy = pol
		c := New("t", p)
		lines := p.SizeBytes / p.LineBytes
		rng := xrand.New(5)
		// Two full passes to install, then measure.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i*p.LineBytes), true)
			}
		}
		c.ResetStats()
		for i := 0; i < 10000; i++ {
			c.Access(uint64(rng.Intn(lines)*p.LineBytes), true)
		}
		hits, misses, _ := c.Stats()
		if misses != 0 {
			t.Errorf("policy %v: %d misses on a resident working set (hits %d)", pol, misses, hits)
		}
	}
}

// Random replacement shares capacity smoothly between two competing
// streams in proportion to their insertion rates.
func TestRandomPolicySharesByRate(t *testing.T) {
	p := isa.CacheParams{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, Policy: isa.PolicyRandom}
	c := New("t", p)
	rng := xrand.New(9)
	// Stream A inserts 3× as often as stream B; both overflow the cache.
	baseA, baseB := uint64(1)<<30, uint64(2)<<30
	regionLines := uint64(4096) // 256 KiB each, 4× the capacity combined
	for i := 0; i < 400000; i++ {
		if rng.Intn(4) != 3 {
			c.Access(baseA+rng.Uint64n(regionLines)*64, true)
		} else {
			c.Access(baseB+rng.Uint64n(regionLines)*64, true)
		}
	}
	a, b := 0, 0
	for i := uint64(0); i < regionLines; i++ {
		if c.Contains(baseA + i*64) {
			a++
		}
		if c.Contains(baseB + i*64) {
			b++
		}
	}
	ratio := float64(a) / float64(b)
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("occupancy ratio %d/%d = %.2f, want ≈3 (insertion-rate proportional)", a, b, ratio)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets accepted")
		}
	}()
	New("bad", isa.CacheParams{SizeBytes: 3000, Ways: 3, LineBytes: 64})
}

// AccessMasked with every way allowed must be bit-identical to Access —
// same hits, same victims, same RNG draws — so unrestricted contexts on a
// partitioned cache behave exactly as on an unpartitioned one.
func TestAccessMaskedFullMaskMatchesAccess(t *testing.T) {
	for _, pol := range []isa.ReplacementPolicy{isa.PolicyLRU, isa.PolicyRandom} {
		p := isa.CacheParams{SizeBytes: 16 << 10, Ways: 8, LineBytes: 64, Policy: pol}
		a, b := New("twin", p), New("twin", p)
		full := uint64(1)<<8 - 1
		rng := xrand.New(7)
		for i := 0; i < 200000; i++ {
			addr := rng.Uint64n(1 << 16)
			ha := a.Access(addr, true)
			hb := b.AccessMasked(addr, true, full)
			if ha != hb {
				t.Fatalf("policy %d: access %d diverged: %v vs %v", pol, i, ha, hb)
			}
		}
		ah, am, ae := a.Stats()
		bh, bm, be := b.Stats()
		if ah != bh || am != bm || ae != be {
			t.Fatalf("policy %d: stats diverged: %d/%d/%d vs %d/%d/%d", pol, ah, am, ae, bh, bm, be)
		}
		for i := uint64(0); i < 1<<16; i += 64 {
			if a.Contains(i) != b.Contains(i) {
				t.Fatalf("policy %d: contents diverged at %#x", pol, i)
			}
		}
	}
}

// A masked context allocates only into its owned ways: after arbitrary
// traffic, every resident line it inserted sits in an owned way.
func TestAccessMaskedConfinesAllocation(t *testing.T) {
	for _, pol := range []isa.ReplacementPolicy{isa.PolicyLRU, isa.PolicyRandom} {
		p := isa.CacheParams{SizeBytes: 8 << 10, Ways: 8, LineBytes: 64, Policy: pol}
		c := New("cat", p)
		ownedA, ownedB := uint64(0x0f), uint64(0xf0)
		baseA, baseB := uint64(1)<<30, uint64(2)<<30
		rng := xrand.New(3)
		for i := 0; i < 100000; i++ {
			c.AccessMasked(baseA+rng.Uint64n(1<<14), true, ownedA)
			c.AccessMasked(baseB+rng.Uint64n(1<<14), true, ownedB)
		}
		// Inspect placement: walk the tag array via Contains + way scan.
		for set := 0; set < c.Sets(); set++ {
			for way := 0; way < c.Ways(); way++ {
				tag := c.tags[set*c.Ways()+way]
				if tag == invalidTag {
					continue
				}
				addr := tag << c.lineShift
				owned := ownedA
				if addr >= baseB {
					owned = ownedB
				}
				if owned&(1<<uint(way)) == 0 {
					t.Fatalf("policy %d: line %#x resident in un-owned way %d", pol, addr, way)
				}
			}
		}
	}
}

// CAT semantics: a context still *hits* on lines outside its partition.
func TestAccessMaskedHitsAnywhere(t *testing.T) {
	p := isa.CacheParams{SizeBytes: 8 << 10, Ways: 8, LineBytes: 64, Policy: isa.PolicyLRU}
	c := New("cat", p)
	addr := uint64(0x1000)
	if c.AccessMasked(addr, true, 0xf0) {
		t.Fatal("cold access hit")
	}
	// The line sits in a high way; a context owning only low ways hits it.
	if !c.AccessMasked(addr, true, 0x0f) {
		t.Fatal("cross-partition lookup missed a resident line")
	}
}
