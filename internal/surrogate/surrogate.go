// Package surrogate is the learned analytical tier above the cycle-level
// engine: closed-form curves fitted from engine intensity sweeps answer
// characterization and degradation queries in microseconds, with the engine
// remaining the ground truth the curves are fitted — and bounded — against.
//
// The fitter (Fit) samples each application's (dimension, intensity) grid
// through profile.CharacterizeSweep, fits one saturating roofline-style
// curve per resource dimension by least squares (internal/linalg), and
// records the curve's maximum and mean absolute residual over the training
// grid as first-class artifacts. Those residuals make every surrogate
// answer carry a certificate: Set.Predict propagates the per-dimension
// curve bounds through Equation 3, so the returned Prediction.Bound is a
// sound upper bound on |surrogate − engine| at the training grid points —
// internal/simtest pins this containment as a law across seeds. Callers
// (the qosd serving tier) fall back to the engine whenever the bound
// exceeds their accuracy budget.
package surrogate

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/pmu"
)

// Curve is one fitted per-dimension response: a saturating function of
// Ruler intensity x ∈ (0, 1] through the origin (zero pressure degrades
// nothing), using the basis {x, √x, x²}. The √x term captures the
// roofline-style early saturation contended resources exhibit; x² the
// late super-linear pile-up of queueing-dominated dimensions.
type Curve struct {
	// Coef are the basis coefficients: Coef[0]·x + Coef[1]·√x + Coef[2]·x².
	Coef [3]float64 `json:"coef"`
	// MaxAbsErr and MeanAbsErr are the absolute residuals of the fit over
	// its training grid — the certificate every downstream bound builds on.
	MaxAbsErr  float64 `json:"max_abs_err"`
	MeanAbsErr float64 `json:"mean_abs_err"`
}

// At evaluates the curve, clamping x into [0, 1] (intensities outside the
// training domain saturate rather than extrapolate).
func (c Curve) At(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x > 1 {
		x = 1
	}
	return c.Coef[0]*x + c.Coef[1]*math.Sqrt(x) + c.Coef[2]*x*x
}

// Model is one application's fitted surrogate: per-dimension sensitivity
// and contentiousness curves plus the solo measurements the engine path
// would also report.
type Model struct {
	App       string            `json:"app"`
	Placement profile.Placement `json:"placement"`
	SoloIPC   float64           `json:"solo_ipc"`
	SoloPMU   pmu.Counters      `json:"solo_pmu"`
	// Intensities is the training grid the curves were fitted (and their
	// error bounds measured) on.
	Intensities []float64                   `json:"intensities"`
	Sen         [rulers.NumDimensions]Curve `json:"sen"`
	Con         [rulers.NumDimensions]Curve `json:"con"`
}

// Characterization evaluates the model at full intensity, yielding the
// surrogate's stand-in for the engine-measured profile.Characterization.
func (m *Model) Characterization() profile.Characterization {
	ch := profile.Characterization{
		App:       m.App,
		Placement: m.Placement,
		SoloIPC:   m.SoloIPC,
		SoloPMU:   m.SoloPMU,
	}
	for d := range ch.Sen {
		ch.Sen[d] = m.Sen[d].At(1)
		ch.Con[d] = m.Con[d].At(1)
	}
	return ch
}

// Bound returns the largest per-curve max-absolute-error across the
// model's dimensions — a coarse one-number summary of fit quality.
func (m *Model) Bound() float64 {
	var b float64
	for d := range m.Sen {
		b = math.Max(b, math.Max(m.Sen[d].MaxAbsErr, m.Con[d].MaxAbsErr))
	}
	return b
}

// Prediction is a surrogate answer together with its certificate.
type Prediction struct {
	// Degradation is the Equation 3 prediction evaluated on surrogate
	// feature vectors.
	Degradation float64
	// Bound upper-bounds |Degradation − engine-featured prediction|: the
	// per-dimension curve residual bounds propagated through the model's
	// coefficients. Callers needing tighter accuracy than Bound fall back
	// to the engine.
	Bound float64
}

// Set is a fleet of fitted models for one machine configuration and
// placement, optionally carrying the Equation 3 model trained against
// engine ground truth (TrainEq3) so the set alone can serve predictions.
type Set struct {
	// Machine is the isa.Config name the models were fitted on.
	Machine   string            `json:"machine"`
	Placement profile.Placement `json:"placement"`
	Models    map[string]*Model `json:"models"`
	// Eq3 is the embedded degradation model; nil until TrainEq3 (or a
	// caller) installs one.
	Eq3 *model.Smite `json:"eq3,omitempty"`
}

// Model returns the fitted model for app, or an error naming the miss.
func (s *Set) Model(app string) (*Model, error) {
	m, ok := s.Models[app]
	if !ok {
		return nil, fmt.Errorf("surrogate: no fitted model for %q", app)
	}
	return m, nil
}

// Characterizations evaluates every model in the set at full intensity.
// Order follows map iteration; callers needing stability should sort.
func (s *Set) Characterizations() []profile.Characterization {
	out := make([]profile.Characterization, 0, len(s.Models))
	for _, m := range s.Models {
		out = append(out, m.Characterization())
	}
	return out
}

// PredictWith evaluates Equation 3 with the given coefficient vector on
// the surrogate feature vectors of victim and aggressor, and propagates
// the curves' residual bounds into a certificate.
//
// Soundness of the bound: writing the surrogate features sen = sen* + εs
// and con = con* + εc against the engine features sen*, con* the curves
// were fitted to, the per-dimension prediction gap is
//
//	c·(sen·con − sen*·con*) = c·(sen·εc + εs·con − εs·εc)
//
// whose magnitude is at most |c|·(|sen|·Ec + Es·|con| + Es·Ec) with
// Es, Ec the recorded MaxAbsErr of the two curves. Summing over
// dimensions gives Bound ≥ |surrogate prediction − the same model
// evaluated on engine features at the training grid|.
func (s *Set) PredictWith(m model.Smite, victim, aggressor string) (Prediction, error) {
	mv, err := s.Model(victim)
	if err != nil {
		return Prediction{}, err
	}
	ma, err := s.Model(aggressor)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{Degradation: m.Intercept}
	for d := range m.Coef {
		sen, con := mv.Sen[d].At(1), ma.Con[d].At(1)
		es, ec := mv.Sen[d].MaxAbsErr, ma.Con[d].MaxAbsErr
		pred.Degradation += m.Coef[d] * sen * con
		pred.Bound += math.Abs(m.Coef[d]) * (math.Abs(sen)*ec + es*math.Abs(con) + es*ec)
	}
	return pred, nil
}

// Predict evaluates the set's embedded Equation 3 model (TrainEq3) on the
// pair; it errors when no model is embedded.
func (s *Set) Predict(victim, aggressor string) (Prediction, error) {
	if s.Eq3 == nil {
		return Prediction{}, fmt.Errorf("surrogate: set has no embedded Eq3 model (run TrainEq3 or smite fit -train)")
	}
	return s.PredictWith(*s.Eq3, victim, aggressor)
}
