package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PredictionResult is the Figure 10/11 experiment: SMiTe versus the PMU
// baseline on SPEC train/test splits.
type PredictionResult struct {
	Title     string
	Placement profile.Placement
	// Smite is the trained Equation 3 model (coefficients are themselves a
	// result: they weigh the sharing dimensions).
	Smite model.Smite
	// SmiteEval and PMUEval carry overall and per-victim mean absolute
	// errors on the testing set.
	SmiteEval, PMUEval model.Evaluation
	// TrainSmiteErr/TrainPMUErr are training-set errors (sanity numbers).
	TrainSmiteErr, TrainPMUErr float64
	// MeasuredPerApp is each test victim's mean measured degradation (the
	// "Measured" bars of the figures).
	MeasuredPerApp map[string]float64
}

// Fig10SpecSMT reproduces Figure 10: SMT co-location prediction on SPEC
// (even-numbered train, odd-numbered test, Ivy Bridge).
func (l *Lab) Fig10SpecSMT() (PredictionResult, error) {
	return l.Fig10SpecSMTContext(context.Background())
}

// Fig10SpecSMTContext is Fig10SpecSMT with cooperative cancellation.
func (l *Lab) Fig10SpecSMTContext(ctx context.Context) (PredictionResult, error) {
	return l.specPrediction(ctx, profile.SMT, "Figure 10: SMT co-location prediction accuracy (SPEC CPU2006)")
}

// Fig11SpecCMP reproduces Figure 11: the same protocol under CMP
// placement.
func (l *Lab) Fig11SpecCMP() (PredictionResult, error) {
	return l.Fig11SpecCMPContext(context.Background())
}

// Fig11SpecCMPContext is Fig11SpecCMP with cooperative cancellation.
func (l *Lab) Fig11SpecCMPContext(ctx context.Context) (PredictionResult, error) {
	return l.specPrediction(ctx, profile.CMP, "Figure 11: CMP co-location prediction accuracy (SPEC CPU2006)")
}

func (l *Lab) specPrediction(ctx context.Context, placement profile.Placement, title string) (PredictionResult, error) {
	train := l.specSet(workload.EvenSPEC())
	test := l.specSet(workload.OddSPEC())
	all := append(append([]*workload.Spec{}, train...), test...)
	chars, err := l.CharacterizationsContext(ctx, IvyBridge, placement, all, fmt.Sprintf("spec-%d", len(all)))
	if err != nil {
		return PredictionResult{}, err
	}
	p := l.Profiler(IvyBridge)
	trainPairs, err := p.MeasurePairsContext(ctx, train, train, placement)
	if err != nil {
		return PredictionResult{}, err
	}
	testPairs, err := p.MeasurePairsContext(ctx, test, test, placement)
	if err != nil {
		return PredictionResult{}, err
	}
	trainObs, err := model.BuildObservations(chars, trainPairs)
	if err != nil {
		return PredictionResult{}, err
	}
	testObs, err := model.BuildObservations(chars, testPairs)
	if err != nil {
		return PredictionResult{}, err
	}
	smite, err := model.TrainSmiteNNLS(trainObs)
	if err != nil {
		return PredictionResult{}, err
	}
	pmuM, err := model.TrainPMULinear(trainObs)
	if err != nil {
		return PredictionResult{}, err
	}
	res := PredictionResult{
		Title:          title,
		Placement:      placement,
		Smite:          smite,
		SmiteEval:      model.Evaluate(smite, testObs),
		PMUEval:        model.Evaluate(pmuM, testObs),
		TrainSmiteErr:  model.Evaluate(smite, trainObs).MeanAbsError,
		TrainPMUErr:    model.Evaluate(pmuM, trainObs).MeanAbsError,
		MeasuredPerApp: make(map[string]float64),
	}
	counts := make(map[string]int)
	for _, o := range testObs {
		res.MeasuredPerApp[o.A] += o.Deg
		counts[o.A]++
	}
	for a, s := range res.MeasuredPerApp {
		res.MeasuredPerApp[a] = s / float64(counts[a])
	}
	return res, nil
}

// String renders the per-application bars of the figure.
func (r PredictionResult) String() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	t := newTable("application", "measured deg", "SMiTe error", "PMU error")
	apps := make([]string, 0, len(r.MeasuredPerApp))
	for a := range r.MeasuredPerApp {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	for _, a := range apps {
		t.row(a, pct(r.MeasuredPerApp[a]), pct(r.SmiteEval.PerApp[a]), pct(r.PMUEval.PerApp[a]))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average: SMiTe %s, PMU %s (train: %s / %s)\n",
		pct(r.SmiteEval.MeanAbsError), pct(r.PMUEval.MeanAbsError), pct(r.TrainSmiteErr), pct(r.TrainPMUErr))
	if r.Placement == profile.SMT {
		b.WriteString("paper: SMiTe 2.80%, PMU 13.55%\n")
	} else {
		b.WriteString("paper: SMiTe 2.80%, PMU 9.43%\n")
	}
	return b.String()
}

// cloudEntry is one CloudSuite co-location cell.
type cloudEntry struct {
	lat, batch string
	n          int
	actual     float64
	predicted  float64
	pmuPred    float64
}

// cloudStudy caches the CloudSuite co-location measurements and models
// shared by Figure 12 and the scale-out studies.
type cloudStudy struct {
	placementTables map[profile.Placement][]cloudEntry
	smite           map[profile.Placement]model.Smite
	pmu             map[profile.Placement]model.PMULinear
	threads         int
	latApps         []string
	batchApps       []string
	services        map[string]service.Service
	// maxInstances per placement.
	maxInstances map[profile.Placement]int
	// servingSen and servingChars retain the SMT-placement inputs of the
	// table's predictions (Sen(n) per latency app, full characterizations
	// for the Con side) so ServingArtifacts can hand the exact prediction
	// inputs to a qosd daemon.
	servingSen   map[string][]profile.Characterization // lat app → index n-1
	servingChars map[string]profile.Characterization
}

// cloudStudyData builds (and memoises) the CloudSuite study: models are
// trained on odd-numbered SPEC pairs on the Sandy Bridge-EN machine, then
// every (latency app, even-SPEC batch app, instance count) co-location is
// measured and predicted under both placements (paper Section IV-B2).
func (l *Lab) cloudStudyData(ctx context.Context) (*cloudStudy, error) {
	// Single-flight, like Characterizations: the study is the most
	// expensive memo in the Lab, so two concurrent figures must not both
	// build it.
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		l.mu.Lock()
		if f := l.cloud; f != nil {
			l.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if !f.ok {
				continue // that flight failed; try to compute ourselves
			}
			return f.cs, nil
		}
		f := &cloudFlight{done: make(chan struct{})}
		l.cloud = f
		l.mu.Unlock()

		cs, err := l.buildCloudStudy(ctx)
		if err != nil {
			l.mu.Lock()
			l.cloud = nil
			l.mu.Unlock()
			close(f.done)
			return nil, err
		}
		f.cs, f.ok = cs, true
		close(f.done)
		return cs, nil
	}
}

// buildCloudStudy performs the actual measurement and training fan-out of
// cloudStudyData.
func (l *Lab) buildCloudStudy(ctx context.Context) (*cloudStudy, error) {
	threads := l.cloudThreads()
	cloudApps := l.cloudSet()
	// Paper protocol for CloudSuite: odd SPEC trains, even SPEC are the
	// co-located batch applications.
	train := l.specSet(workload.OddSPEC())
	batch := l.specSet(workload.EvenSPEC())

	cs := &cloudStudy{
		placementTables: make(map[profile.Placement][]cloudEntry),
		smite:           make(map[profile.Placement]model.Smite),
		pmu:             make(map[profile.Placement]model.PMULinear),
		threads:         threads,
		services:        make(map[string]service.Service),
		maxInstances: map[profile.Placement]int{
			profile.SMT: threads,
			profile.CMP: l.SNB.Cores / 2,
		},
	}
	for _, c := range cloudApps {
		cs.latApps = append(cs.latApps, c.Name)
		if c.LatencySensitive() {
			svc, err := service.FromSpec(c)
			if err != nil {
				return nil, err
			}
			cs.services[c.Name] = svc
		}
	}
	for _, b := range batch {
		cs.batchApps = append(cs.batchApps, b.Name)
	}

	p := l.Profiler(SandyBridgeEN)
	for _, placement := range []profile.Placement{profile.SMT, profile.CMP} {
		allApps := append(append([]*workload.Spec{}, train...), batch...)
		allApps = append(allApps, cloudApps...)
		chars, err := l.CharacterizationsContext(ctx, SandyBridgeEN, placement, allApps, fmt.Sprintf("cloud-%d-%d", placement, len(allApps)))
		if err != nil {
			return nil, err
		}
		charBy := make(map[string]profile.Characterization, len(chars))
		for _, c := range chars {
			charBy[c.App] = c
		}
		trainPairs, err := p.MeasurePairsContext(ctx, train, train, placement)
		if err != nil {
			return nil, err
		}
		trainObs, err := model.BuildObservations(chars, trainPairs)
		if err != nil {
			return nil, err
		}
		smite, err := model.TrainSmiteNNLS(trainObs)
		if err != nil {
			return nil, err
		}
		pmuM, err := model.TrainPMULinear(trainObs)
		if err != nil {
			return nil, err
		}
		cs.smite[placement] = smite
		cs.pmu[placement] = pmuM

		latThreads := threads
		if placement == profile.CMP {
			latThreads = l.SNB.Cores / 2
		}
		maxN := cs.maxInstances[placement]

		// Partial-occupancy sensitivities: Sen(n) per latency app and
		// instance count, measured with n Ruler instances (paper-style
		// Ruler-only profiling; no batch cross-product).
		senByCount := make(map[string][]profile.Characterization) // app → index n-1
		for _, latSpec := range cloudApps {
			latJob := profile.AppThreads(latSpec, latThreads)
			arr := make([]profile.Characterization, maxN)
			for n := 1; n <= maxN; n++ {
				chN, err := p.CharacterizeJobRulersContext(ctx, latJob, placement, n)
				if err != nil {
					return nil, err
				}
				arr[n-1] = chN
			}
			senByCount[latSpec.Name] = arr
		}
		if placement == profile.SMT {
			cs.servingSen = senByCount
			cs.servingChars = charBy
		}
		var entries []cloudEntry
		for _, latSpec := range cloudApps {
			for _, bspec := range batch {
				for n := 1; n <= maxN; n++ {
					entries = append(entries, cloudEntry{lat: latSpec.Name, batch: bspec.Name, n: n})
				}
			}
		}
		err = sched.Map(ctx, len(entries), l.workers(), func(ctx context.Context, i int) error {
			e := &entries[i]
			latSpec, err := workload.ByName(e.lat)
			if err != nil {
				return err
			}
			bspec, err := workload.ByName(e.batch)
			if err != nil {
				return err
			}
			latJob := profile.AppThreads(latSpec, latThreads)
			pm, err := p.MeasureJobsContext(ctx, latJob, profile.AppThreads(bspec, e.n), placement)
			if err != nil {
				return err
			}
			e.actual = pm.DegA
			// SMiTe prediction uses the partial-occupancy sensitivity
			// Sen(n) with the occupancy-scaled intercept; the formula
			// lives in model.Smite.PredictPartial so the qosd serving
			// daemon evaluates the exact same expression.
			obs := model.PairObs{
				SenA: senByCount[e.lat][e.n-1].Sen, ConB: charBy[e.batch].Con,
				PMUA: charBy[e.lat].SoloPMU.Features(), PMUB: charBy[e.batch].SoloPMU.Features(),
			}
			e.predicted = smite.PredictPartial(obs, e.n, latThreads)
			// The PMU baseline has no per-occupancy feature; scale by
			// occupancy as the strongest simple extension.
			e.pmuPred = float64(e.n) / float64(latThreads) * pmuM.Predict(obs)
			return nil
		})
		if err != nil {
			return nil, err
		}
		cs.placementTables[placement] = entries
	}
	return cs, nil
}

// Fig12Result is the CloudSuite prediction experiment.
type Fig12Result struct {
	// PerPlacement holds one row set per placement.
	PerPlacement map[profile.Placement]Fig12Placement
}

// Fig12Placement is one placement's rows.
type Fig12Placement struct {
	Rows []Fig12Row
	// SmiteErr and PMUErr are averaged over all cells.
	SmiteErr, PMUErr float64
}

// Fig12Row is one latency application's bars: measured min/avg/max over
// batch apps × instance counts, plus model errors.
type Fig12Row struct {
	App                                   string
	MeasuredMin, MeasuredAvg, MeasuredMax float64
	SmiteErr, PMUErr                      float64
}

// Fig12CloudSuite reproduces Figure 12: prediction accuracy for the
// CloudSuite latency-sensitive applications under SMT and CMP co-location
// with SPEC batch applications on the Sandy Bridge-EN machine.
func (l *Lab) Fig12CloudSuite() (Fig12Result, error) {
	return l.Fig12CloudSuiteContext(context.Background())
}

// Fig12CloudSuiteContext is Fig12CloudSuite with cooperative cancellation.
func (l *Lab) Fig12CloudSuiteContext(ctx context.Context) (Fig12Result, error) {
	cs, err := l.cloudStudyData(ctx)
	if err != nil {
		return Fig12Result{}, err
	}
	out := Fig12Result{PerPlacement: make(map[profile.Placement]Fig12Placement)}
	for placement, entries := range cs.placementTables {
		perApp := make(map[string][]cloudEntry)
		for _, e := range entries {
			perApp[e.lat] = append(perApp[e.lat], e)
		}
		var fp Fig12Placement
		var totalS, totalP float64
		for _, lat := range cs.latApps {
			es := perApp[lat]
			row := Fig12Row{App: lat, MeasuredMin: 1e9, MeasuredMax: -1e9}
			for _, e := range es {
				row.MeasuredAvg += e.actual
				if e.actual < row.MeasuredMin {
					row.MeasuredMin = e.actual
				}
				if e.actual > row.MeasuredMax {
					row.MeasuredMax = e.actual
				}
				row.SmiteErr += abs(e.predicted - e.actual)
				row.PMUErr += abs(e.pmuPred - e.actual)
			}
			n := float64(len(es))
			row.MeasuredAvg /= n
			row.SmiteErr /= n
			row.PMUErr /= n
			totalS += row.SmiteErr
			totalP += row.PMUErr
			fp.Rows = append(fp.Rows, row)
		}
		fp.SmiteErr = totalS / float64(len(fp.Rows))
		fp.PMUErr = totalP / float64(len(fp.Rows))
		out.PerPlacement[placement] = fp
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the figure's rows.
func (r Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: CloudSuite co-location prediction accuracy\n")
	for _, placement := range []profile.Placement{profile.SMT, profile.CMP} {
		fp, ok := r.PerPlacement[placement]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s co-location:\n", placement)
		t := newTable("application", "measured min/avg/max", "SMiTe error", "PMU error")
		for _, row := range fp.Rows {
			t.row(row.App,
				fmt.Sprintf("%s / %s / %s", pct(row.MeasuredMin), pct(row.MeasuredAvg), pct(row.MeasuredMax)),
				pct(row.SmiteErr), pct(row.PMUErr))
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "average: SMiTe %s, PMU %s\n", pct(fp.SmiteErr), pct(fp.PMUErr))
	}
	b.WriteString("paper: SMT SMiTe 1.79% vs PMU 17.45%; CMP SMiTe 1.36% vs PMU 27.01%\n")
	return b.String()
}

// ClusterTable exports the SMT cloud study as the degradation table the
// scale-out experiments consume.
func (l *Lab) ClusterTable() (*cluster.Table, map[string]service.Service, error) {
	return l.ClusterTableContext(context.Background())
}

// ClusterTableContext is ClusterTable with cooperative cancellation.
func (l *Lab) ClusterTableContext(ctx context.Context) (*cluster.Table, map[string]service.Service, error) {
	cs, err := l.cloudStudyData(ctx)
	if err != nil {
		return nil, nil, err
	}
	entries := cs.placementTables[profile.SMT]
	tbl := cluster.NewTable(cs.latApps, cs.batchApps, cs.maxInstances[profile.SMT])
	for _, e := range entries {
		tbl.Set(e.lat, e.batch, e.n, cluster.Entry{Actual: e.actual, Predicted: e.predicted})
	}
	return tbl, cs.services, nil
}

// ServingArtifacts is everything a qosd daemon needs to reproduce the
// SMT scale-out study's predictions: the exact characterizations the
// table's predicted degradations were computed from, plus the trained
// model and the study geometry.
type ServingArtifacts struct {
	// SenByCount maps each latency application to its partial-occupancy
	// sensitivity profiles (index n-1 holds Sen(n)).
	SenByCount map[string][]profile.Characterization
	// Chars holds the full SMT characterizations by application name (the
	// Con side of every prediction).
	Chars map[string]profile.Characterization
	// LatApps and BatchApps name the study's applications in table order.
	LatApps, BatchApps []string
	// Model is the trained Equation 3 model behind the predictions.
	Model model.Smite
	// Threads is the latency application's thread count per server;
	// MaxInstances the largest co-located instance count.
	Threads, MaxInstances int
}

// ServingArtifacts exports the SMT cloud study's prediction inputs (see
// the ServingArtifacts type). It builds the cloud study on first use.
func (l *Lab) ServingArtifacts() (ServingArtifacts, error) {
	return l.ServingArtifactsContext(context.Background())
}

// ServingArtifactsContext is ServingArtifacts with cooperative
// cancellation.
func (l *Lab) ServingArtifactsContext(ctx context.Context) (ServingArtifacts, error) {
	cs, err := l.cloudStudyData(ctx)
	if err != nil {
		return ServingArtifacts{}, err
	}
	return ServingArtifacts{
		SenByCount:   cs.servingSen,
		Chars:        cs.servingChars,
		LatApps:      append([]string(nil), cs.latApps...),
		BatchApps:    append([]string(nil), cs.batchApps...),
		Model:        cs.smite[profile.SMT],
		Threads:      cs.threads,
		MaxInstances: cs.maxInstances[profile.SMT],
	}, nil
}

// meanMeasured is a small helper used by tests.
func meanMeasured(rows []Fig12Row) float64 {
	var s []float64
	for _, r := range rows {
		s = append(s, r.MeasuredAvg)
	}
	return stats.Mean(s)
}
