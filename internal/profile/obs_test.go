package profile

import (
	"context"
	"testing"

	"repro/internal/obs/timeline"
	"repro/internal/obs/trace"
	"repro/internal/sim/isa"
	"repro/internal/simcache"
)

// A sampled run must bypass the cache (a hit would record nothing), must
// actually produce samples, and must return results bit-identical to the
// unsampled run.
func TestSamplerBypassesCacheAndMatches(t *testing.T) {
	cfg := isa.IvyBridge()
	cfg.Cores = 1
	app := App(mustSpec(t, "429.mcf"))
	partner := App(mustSpec(t, "470.lbm"))
	opts := cacheTestOptions()
	opts.MeasureCycles = 40_000 // > one 16K slice, so several samples land

	plain, err := Colocate(cfg, app, partner, SMT, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Cache = simcache.New[RunResult]()
	// Prime the cache so a non-bypassing implementation would hit it.
	if _, err := Colocate(cfg, app, partner, SMT, opts); err != nil {
		t.Fatal(err)
	}
	rec := timeline.New()
	opts.Sampler = rec
	sampled, err := Colocate(cfg, app, partner, SMT, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !sameResult(plain, sampled) {
		t.Errorf("sampled run diverged from plain run:\nplain:   %+v\nsampled: %+v", plain, sampled)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("sampled run recorded no timeline samples (cache not bypassed?)")
	}
	stats := opts.Cache.Stats()
	if stats.Hits != 0 {
		t.Errorf("sampled run hit the cache %d times; want bypass", stats.Hits)
	}
}

// Characterization under a tracer emits the stage spans the Chrome export
// renders: the characterize root, per-Ruler cells, simulate stages and
// simcache lookups, on worker tracks when parallel.
func TestCharacterizeEmitsSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := isa.IvyBridge()
	opts := cacheTestOptions()
	opts.Parallelism = 4
	p := NewProfiler(cfg, opts)

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := p.CharacterizeContext(ctx, mustSpec(t, "429.mcf"), SMT); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, s := range tr.Spans() {
		counts[s.Name]++
	}
	for _, want := range []string{"profile.characterize", "profile.ruler-cell", "profile.simulate", "profile.measure", "sched.task", "simcache.compute"} {
		if counts[want] == 0 {
			t.Errorf("no %q span recorded; have %v", want, counts)
		}
	}
	if counts["profile.ruler-cell"] != len(p.RulerSet()) {
		t.Errorf("ruler-cell spans = %d, want %d", counts["profile.ruler-cell"], len(p.RulerSet()))
	}
}
