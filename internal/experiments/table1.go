package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim/isa"
)

// Table1Result reports the modelled machine configurations (paper Table I).
type Table1Result struct {
	Machines []isa.Config
}

// Table1 returns the two machine configurations of the experimental setup.
func (l *Lab) Table1() Table1Result {
	return Table1Result{Machines: []isa.Config{l.IVB, l.SNB}}
}

// String renders the table.
func (r Table1Result) String() string {
	t := newTable("Processor", "Cores", "SMT contexts", "L1D", "L2", "L3", "Freq")
	for _, m := range r.Machines {
		t.row(
			m.Name,
			fmt.Sprint(m.Cores),
			fmt.Sprint(m.Contexts()),
			memSize(m.L1D.SizeBytes),
			memSize(m.L2.SizeBytes),
			memSize(m.L3.SizeBytes),
			fmt.Sprintf("%.1f GHz", m.FrequencyGHz),
		)
	}
	var b strings.Builder
	b.WriteString("Table I: machine specifications (simulated)\n")
	b.WriteString(t.String())
	return b.String()
}

func memSize(bytes int) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%d MiB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%d KiB", bytes>>10)
	}
	return fmt.Sprintf("%d B", bytes)
}
