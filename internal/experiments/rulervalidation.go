package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sched"
	"repro/internal/sim/isa"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FURulerCheck validates one functional-unit Ruler against the two design
// principles of Section III-B1: maximum pressure on the target port(s),
// minimal pressure anywhere else.
type FURulerCheck struct {
	Name string
	// TargetUtil is the minimum utilisation across the Ruler's target
	// port(s) when running solo (paper: > 99.99%, validated with
	// UOPS_DISPATCHED_PORT counters).
	TargetUtil float64
	// Leakage is the maximum utilisation observed on any non-target port.
	Leakage float64
	// MemAccesses counts hierarchy accesses (must be zero).
	MemAccesses uint64
}

// LinearityCheck validates a memory Ruler's intensity→interference
// linearity: the per-application Pearson correlation between working-set
// scale and induced degradation, averaged over the application set
// (paper: r = 0.92 for L1, 0.89 for L2, 0.95 for L3).
type LinearityCheck struct {
	Dim         rulers.Dimension
	Intensities []float64
	// MeanR is the mean per-application Pearson r; PerApp the individual
	// coefficients keyed by application.
	MeanR  float64
	PerApp map[string]float64
}

// Fig9Result aggregates the Ruler validation.
type Fig9Result struct {
	FU        []FURulerCheck
	Linearity []LinearityCheck
}

// Fig9RulerValidation validates the Ruler suite on the Ivy Bridge machine.
func (l *Lab) Fig9RulerValidation() (Fig9Result, error) {
	return l.Fig9RulerValidationContext(context.Background())
}

// Fig9RulerValidationContext is Fig9RulerValidation with cooperative
// cancellation; the intensity-sweep cells fan out on the internal/sched
// worker pool.
func (l *Lab) Fig9RulerValidationContext(ctx context.Context) (Fig9Result, error) {
	var out Fig9Result
	// Functional-unit Rulers: solo runs, check port counters.
	fuRulers := []*rulers.Ruler{rulers.FPMul(), rulers.FPAdd(), rulers.FPShf(), rulers.IntAdd()}
	for _, r := range fuRulers {
		res, err := profile.SoloContext(ctx, l.IVB, profile.Rulers(r, 1), l.Scale.Options)
		if err != nil {
			return Fig9Result{}, err
		}
		c := res.AppCounters[0]
		targets := l.IVB.PortMap[r.TargetKind()]
		check := FURulerCheck{Name: r.Name, TargetUtil: 1}
		for p := isa.Port(0); p < isa.NumPorts; p++ {
			u := c.PortUtilization(p)
			if targets.Has(p) {
				if u < check.TargetUtil {
					check.TargetUtil = u
				}
			} else if u > check.Leakage {
				check.Leakage = u
			}
		}
		check.MemAccesses = c.Loads + c.Stores
		out.FU = append(out.FU, check)
	}

	// Memory Rulers: intensity sweeps against a SPEC population.
	apps := l.specSet(workload.SPECCPU2006())
	points := l.Scale.RulerSweepPoints
	if points < 2 {
		points = 2
	}
	intensities := make([]float64, points)
	for i := range intensities {
		intensities[i] = float64(i+1) / float64(points)
	}
	p := l.Profiler(IvyBridge)
	for _, dim := range []rulers.Dimension{rulers.DimL1, rulers.DimL2, rulers.DimL3} {
		base := rulers.For(l.IVB, dim)
		lc := LinearityCheck{Dim: dim, Intensities: intensities, PerApp: make(map[string]float64)}
		type cell struct {
			app  int
			pt   int
			deg  float64
			solo float64
		}
		cells := make([]cell, 0, len(apps)*points)
		for ai := range apps {
			for pi := range intensities {
				cells = append(cells, cell{app: ai, pt: pi})
			}
		}
		err := sched.Map(ctx, len(cells), l.workers(), func(ctx context.Context, i int) error {
			c := &cells[i]
			app := apps[c.app]
			solo, err := p.SoloRunContext(ctx, profile.App(app))
			if err != nil {
				return err
			}
			r := base.WithIntensity(intensities[c.pt])
			res, err := profile.ColocateContext(ctx, l.IVB, profile.App(app), profile.Rulers(r, 1), profile.SMT, l.Scale.Options)
			if err != nil {
				return err
			}
			c.solo = solo.AppIPC
			c.deg = profile.Degradation(solo.AppIPC, res.AppIPC)
			return nil
		})
		if err != nil {
			return Fig9Result{}, err
		}
		degs := make(map[int][]float64)
		for _, c := range cells {
			degs[c.app] = append(degs[c.app], c.deg)
		}
		var rs []float64
		for ai, app := range apps {
			// Apps the Ruler barely affects contribute no slope signal —
			// their Pearson r is noise around zero. Average over apps with
			// a measurable response, as the paper's sensitivity curves do.
			if stats.Max(degs[ai]) < 0.03 {
				continue
			}
			r, err := stats.Pearson(intensities, degs[ai])
			if err != nil {
				continue // constant series: undefined correlation
			}
			lc.PerApp[app.Name] = r
			rs = append(rs, r)
		}
		lc.MeanR = stats.Mean(rs)
		out.Linearity = append(out.Linearity, lc)
	}
	return out, nil
}

// String renders the validation report.
func (r Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: Ruler validation\n")
	t := newTable("Ruler", "target-port util", "max leakage", "mem accesses")
	for _, c := range r.FU {
		t.row(c.Name, fmt.Sprintf("%.4f%%", c.TargetUtil*100), f3(c.Leakage), fmt.Sprint(c.MemAccesses))
	}
	b.WriteString(t.String())
	t2 := newTable("Ruler", "mean Pearson r (intensity vs degradation)", "paper")
	paper := map[rulers.Dimension]string{rulers.DimL1: "0.92", rulers.DimL2: "0.89", rulers.DimL3: "0.95"}
	for _, c := range r.Linearity {
		t2.row(c.Dim.String(), fmt.Sprintf("%.2f", c.MeanR), paper[c.Dim])
	}
	b.WriteString(t2.String())
	return b.String()
}
