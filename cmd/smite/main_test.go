package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI subcommands are exercised directly (they are plain functions over
// an args slice), so flag parsing, workload lookup and the full
// characterize/measure paths run in-process at reduced windows.

func TestListRuns(t *testing.T) {
	if err := list(); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestCharacterizeFast(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI characterization in short mode")
	}
	if err := characterize(context.Background(), []string{"-app", "444.namd", "-fast"}); err != nil {
		t.Fatalf("characterize: %v", err)
	}
}

func TestMeasureFast(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI measurement in short mode")
	}
	if err := measure(context.Background(), []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-placement", "cmp", "-fast"}); err != nil {
		t.Fatalf("measure: %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"characterize without -app", func() error { return characterize(context.Background(), []string{"-fast"}) }},
		{"characterize unknown app", func() error { return characterize(context.Background(), []string{"-app", "999.nope", "-fast"}) }},
		{"characterize unknown machine", func() error {
			return characterize(context.Background(), []string{"-app", "444.namd", "-machine", "alpha", "-fast"})
		}},
		{"characterize unknown placement", func() error {
			return characterize(context.Background(), []string{"-app", "444.namd", "-placement", "both", "-fast"})
		}},
		{"predict without -victim", func() error { return predict(context.Background(), []string{"-aggressor", "429.mcf", "-fast"}) }},
		{"measure without -aggressor", func() error { return measure(context.Background(), []string{"-victim", "444.namd", "-fast"}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

// TestFitAndSurrogateFast runs the full fit → warm re-fit → inspect loop
// through the CLI entry points at reduced windows: the second fit must be
// answered entirely from the profile store, and the written set file must
// load and render through the surrogate subcommand.
func TestFitAndSurrogateFast(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI fit sweep in short mode")
	}
	dir := t.TempDir()
	setPath := filepath.Join(dir, "set.json")
	store := filepath.Join(dir, "store")
	args := []string{"-apps", "444.namd", "-out", setPath, "-store", store, "-fast"}
	if err := fit(context.Background(), args); err != nil {
		t.Fatalf("cold fit: %v", err)
	}
	if err := fit(context.Background(), args); err != nil {
		t.Fatalf("warm fit: %v", err)
	}
	if err := surrogateCmd([]string{"-set", setPath}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	// Predicting from a set with no embedded Equation 3 model must fail
	// loudly rather than answer with garbage.
	if err := surrogateCmd([]string{"-set", setPath, "-victim", "444.namd", "-aggressor", "444.namd"}); err == nil {
		t.Fatal("predict without an embedded Eq3 model succeeded")
	}
}

func TestSurrogateFlagValidation(t *testing.T) {
	if err := surrogateCmd(nil); err == nil {
		t.Error("surrogate without -set accepted")
	}
	if err := surrogateCmd([]string{"-set", "nope.json"}); err == nil {
		t.Error("surrogate with a missing set file accepted")
	}
	dir := t.TempDir()
	setPath := filepath.Join(dir, "set.json")
	if err := os.WriteFile(setPath, []byte(`{"version":1,"dimensions":8,"set":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := surrogateCmd([]string{"-set", setPath, "-victim", "a"}); err == nil {
		t.Error("surrogate with -victim but no -aggressor accepted")
	}
	if err := fit(context.Background(), []string{"-apps", "999.nope", "-fast"}); err == nil {
		t.Error("fit with an unknown app accepted")
	}
}

// A cancelled context aborts the simulation-backed subcommands.
func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := characterize(ctx, []string{"-app", "444.namd", "-fast"}); !errors.Is(err, context.Canceled) {
		t.Errorf("characterize: got %v, want context.Canceled", err)
	}
	if err := measure(ctx, []string{"-victim", "444.namd", "-aggressor", "429.mcf", "-fast"}); !errors.Is(err, context.Canceled) {
		t.Errorf("measure: got %v, want context.Canceled", err)
	}
}

func TestVersionOutput(t *testing.T) {
	var buf bytes.Buffer
	printVersion(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "smite ") || !strings.Contains(out, "go1") {
		t.Errorf("version output = %q", out)
	}
}

// The contention timeline written by measure -timeline-out must be
// byte-identical across runs and across -parallelism settings: the sampled
// run is a single sequential simulation, so worker count cannot reorder it.
func TestMeasureTimelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI measurement in short mode")
	}
	dir := t.TempDir()
	run := func(path, parallelism string) []byte {
		t.Helper()
		err := measure(context.Background(), []string{
			"-victim", "444.namd", "-aggressor", "429.mcf", "-fast",
			"-parallelism", parallelism, "-timeline-out", path,
		})
		if err != nil {
			t.Fatalf("measure: %v", err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(filepath.Join(dir, "p1.json"), "1")
	four := run(filepath.Join(dir, "p4.json"), "4")
	if !bytes.Equal(one, four) {
		t.Error("timeline differs between -parallelism 1 and 4")
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(one, &doc); err != nil {
		t.Fatalf("timeline is not valid Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline holds no events")
	}
}

// -trace-out renders the run's internal stages.
func TestCharacterizeTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI characterization in short mode")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := characterize(context.Background(), []string{"-app", "444.namd", "-fast", "-trace-out", path}); err != nil {
		t.Fatalf("characterize: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"profile.characterize", "profile.ruler-cell", "profile.simulate"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("trace missing %q span", want)
		}
	}
}
