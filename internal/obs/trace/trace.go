// Package trace is a lightweight in-process span tracer.
//
// A Tracer travels through a context.Context; code instruments itself with
//
//	ctx, span := trace.Start(ctx, "profile.measure", trace.Int("pairs", n))
//	defer span.End()
//
// When no Tracer is attached to the context Start returns a nil *Span and
// every Span method is a no-op, so instrumented call sites cost one context
// lookup and nothing else. This is what lets tracing stay compiled into the
// hot characterization paths while the disabled-overhead benchmark pins it
// to the noise floor.
//
// Spans carry a name, wall-clock start/end offsets, string attributes, a
// parent link, and a track. Tracks map onto Chrome trace-viewer threads and
// exist so parallel workers (sched.Map) render as parallel rows instead of
// interleaving on one line. Finished spans are exported with WriteChrome in
// the Chrome trace-event JSON format understood by chrome://tracing and
// https://ui.perfetto.dev.
//
// All Tracer methods are safe for concurrent use. Span methods are not:
// a span belongs to the goroutine that started it until End is called.
package trace

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is a single key/value span attribute. Values are strings; use the
// String/Int/Uint64/Bool constructors rather than formatting at call sites.
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Uint64 builds an unsigned integer attribute.
func Uint64(key string, value uint64) Attr {
	return Attr{Key: key, Value: strconv.FormatUint(value, 10)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// SpanRecord is one finished span as stored by the tracer.
type SpanRecord struct {
	Name   string
	ID     uint64 // 1-based, unique per tracer
	Parent uint64 // 0 means no parent
	Track  int    // 0 is the default track
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// Tracer accumulates finished spans. The zero value is not usable; call New.
type Tracer struct {
	clock func() time.Duration
	start time.Time
	ids   atomic.Uint64

	mu     sync.Mutex
	spans  []SpanRecord
	tracks []string // names for track IDs 1..len(tracks); track 0 is "main"
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock replaces the wall clock with fn, which must return monotonically
// non-decreasing offsets. Tests use this for deterministic output.
func WithClock(fn func() time.Duration) Option {
	return func(t *Tracer) { t.clock = fn }
}

// New returns an empty tracer whose clock starts now.
func New(opts ...Option) *Tracer {
	t := &Tracer{start: time.Now()}
	for _, o := range opts {
		o(t)
	}
	return t
}

func (t *Tracer) now() time.Duration {
	if t.clock != nil {
		return t.clock()
	}
	return time.Since(t.start)
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	trackKey
)

// NewContext returns ctx with t attached. A nil tracer returns ctx unchanged.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the tracer attached to ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithTrack allocates a new named track and returns a context under which
// subsequently started spans render on it. Without a tracer it returns ctx
// unchanged.
func WithTrack(ctx context.Context, name string) context.Context {
	t := FromContext(ctx)
	if t == nil {
		return ctx
	}
	t.mu.Lock()
	t.tracks = append(t.tracks, name)
	id := len(t.tracks) // track 0 is implicit "main"
	t.mu.Unlock()
	return context.WithValue(ctx, trackKey, id)
}

// Span is an in-flight span. A nil *Span (returned when no tracer is
// attached) accepts every method as a no-op.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// Start begins a span under the tracer attached to ctx and returns a derived
// context carrying it as the current parent. With no tracer attached it
// returns (ctx, nil).
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t}
	s.rec.Name = name
	s.rec.ID = t.ids.Add(1)
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		s.rec.Parent = p.rec.ID
	}
	if track, _ := ctx.Value(trackKey).(int); track > 0 {
		s.rec.Track = track
	}
	if len(attrs) > 0 {
		s.rec.Attrs = attrs
	}
	s.rec.Start = t.now()
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr appends attributes to the span. No-op on a nil span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// End finishes the span and hands it to the tracer. No-op on a nil span.
// End must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.End = s.t.now()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, s.rec)
	s.t.mu.Unlock()
}

// Len reports the number of finished spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the finished spans ordered by (Start, ID), which
// is deterministic for a fixed clock regardless of End interleaving.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

func sortSpans(s []SpanRecord) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Start != s[j].Start {
			return s[i].Start < s[j].Start
		}
		return s[i].ID < s[j].ID
	})
}

// TrackName returns the display name of a track ID.
func (t *Tracer) TrackName(id int) string {
	if id == 0 {
		return "main"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 1 || id > len(t.tracks) {
		return "track-" + strconv.Itoa(id)
	}
	return t.tracks[id-1]
}

// trackCount reports how many tracks exist, including the implicit main one.
func (t *Tracer) trackCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tracks) + 1
}
