// Package cache implements the set-associative cache model used at every
// level of the simulated memory hierarchy (private L1D and L2, shared L3).
//
// The model is a classic tag array with true-LRU replacement. Hardware
// contexts are given disjoint address spaces by the engine, so two
// co-located applications never share lines but do contend for set capacity
// — which is exactly the interference channel SMiTe's L1/L2/L3 Rulers probe.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

// Cache is one level of set-associative cache with LRU replacement.
// It is not safe for concurrent use.
type Cache struct {
	name      string
	ways      int
	sets      int
	lineShift uint
	setMask   uint64

	tags    []uint64 // sets*ways entries; invalidTag marks an empty way
	lines   int      // number of valid entries
	stamp   []uint64 // LRU stamps
	clock   uint64
	policy  isa.ReplacementPolicy
	rng     *xrand.Rand // victim selection for PolicyRandom
	rngSeed uint64      // construction seed, so Reset restores the victim stream

	accesses uint64
	hits     uint64
	misses   uint64
	evicts   uint64
}

// New builds a cache from the geometry in p. It panics on invalid geometry;
// configurations are validated by isa.Config.Validate before reaching here.
func New(name string, p isa.CacheParams) *Cache {
	sets := p.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %s: set count %d must be a positive power of two", name, sets))
	}
	shift := uint(0)
	for l := p.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	if 1<<shift != p.LineBytes {
		panic(fmt.Sprintf("cache: %s: line size %d must be a power of two", name, p.LineBytes))
	}
	n := sets * p.Ways
	seed := uint64(len(name))*0x9E3779B97F4A7C15 + uint64(n)
	c := &Cache{
		name:      name,
		ways:      p.Ways,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		stamp:     make([]uint64, n),
		policy:    p.Policy,
		rng:       xrand.New(seed),
		rngSeed:   seed,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// invalidTag marks an empty way. A real tag is addr >> lineShift and would
// need an address above 2^63 to collide; the engine's per-context address
// spaces live many orders of magnitude below that.
const invalidTag = ^uint64(0)

// Name returns the label given at construction.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets; Ways the associativity.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Access looks up addr and, when allocate is true, fills the line on a miss
// (evicting the LRU way). It returns true on a hit.
func (c *Cache) Access(addr uint64, allocate bool) bool {
	c.clock++
	c.accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line // full line id as tag: unambiguous and cheap
	base := set * c.ways

	// Hit scan over the tag subslice alone: the common case touches one
	// array and defers all victim bookkeeping to the miss path.
	tags := c.tags[base : base+c.ways]
	for i, t := range tags {
		if t == tag {
			c.hits++
			c.stamp[base+i] = c.clock
			return true
		}
	}
	c.misses++

	// Victim selection: first invalid way, else first-oldest stamp (same
	// choice the former combined scan made).
	victim := base
	haveInvalid := false
	for i, t := range tags {
		if t == invalidTag {
			victim = base + i
			haveInvalid = true
			break
		}
	}
	if !haveInvalid {
		oldest := ^uint64(0)
		stamps := c.stamp[base : base+c.ways]
		for i, s := range stamps {
			if s < oldest {
				victim = base + i
				oldest = s
			}
		}
		if c.policy == isa.PolicyRandom {
			victim = base + c.rng.Intn(c.ways)
		}
	}
	if allocate {
		if haveInvalid {
			c.lines++
		} else {
			c.evicts++
		}
		c.tags[victim] = tag
		c.stamp[victim] = c.clock
	}
	return false
}

// AccessMasked is Access with Intel CAT semantics: the lookup hits in any
// way, but on an allocating miss the victim is chosen only among the ways
// set in mask (bit i = way i). With every way set the victim selection —
// including the random-replacement RNG draw — is bit-identical to Access,
// so unrestricted contexts on a partitioned cache behave exactly as on an
// unpartitioned one. A mask owning no real way (rejected upstream by
// isol.Policy.Validate) records the miss but allocates nothing.
func (c *Cache) AccessMasked(addr uint64, allocate bool, mask uint64) bool {
	c.clock++
	c.accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line
	base := set * c.ways

	tags := c.tags[base : base+c.ways]
	for i, t := range tags {
		if t == tag {
			c.hits++
			c.stamp[base+i] = c.clock
			return true
		}
	}
	c.misses++

	victim := -1
	haveInvalid := false
	for i, t := range tags {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if t == invalidTag {
			victim = base + i
			haveInvalid = true
			break
		}
	}
	if !haveInvalid {
		oldest := ^uint64(0)
		for i := 0; i < c.ways; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if s := c.stamp[base+i]; s < oldest {
				victim = base + i
				oldest = s
			}
		}
		if victim >= 0 && c.policy == isa.PolicyRandom {
			owned := bits.OnesCount64(mask & (uint64(1)<<uint(c.ways) - 1))
			k := c.rng.Intn(owned)
			m := mask
			for ; k > 0; k-- {
				m &= m - 1
			}
			victim = base + bits.TrailingZeros64(m)
		}
	}
	if allocate && victim >= 0 {
		if haveInvalid {
			c.lines++
		} else {
			c.evicts++
		}
		c.tags[victim] = tag
		c.stamp[victim] = c.clock
	}
	return false
}

// Contains reports whether addr is currently resident, without touching LRU
// state or counters. Intended for tests and invariant checks.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evicts uint64) {
	return c.hits, c.misses, c.evicts
}

// Accesses returns the cumulative lookup count. It is maintained
// independently of hits and misses so that the invariant checker can verify
// hits+misses == accesses (a tally any future fast-path refactor could
// silently break).
func (c *Cache) Accesses() uint64 { return c.accesses }

// LineCount returns the number of currently valid lines (≤ Sets()*Ways()).
// It is O(1): the count is maintained on fill and flush, so the invariant
// checker can poll it every interval without scanning the tag array.
func (c *Cache) LineCount() int { return c.lines }

// ResetStats zeroes the counters without disturbing cache contents, so
// measurement windows can exclude warm-up.
func (c *Cache) ResetStats() {
	c.accesses, c.hits, c.misses, c.evicts = 0, 0, 0, 0
}

// Flush invalidates every line and zeroes statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.stamp[i] = 0
	}
	c.lines = 0
	c.clock = 0
	c.ResetStats()
}

// Reset restores the cache to its post-New state: every line invalid, all
// statistics zero, and the random-replacement victim stream rewound to its
// construction seed — so a reused cache behaves bit-identically to a fresh
// one (Flush alone leaves the victim RNG advanced).
func (c *Cache) Reset() {
	c.Flush()
	c.rng.Seed(c.rngSeed)
}

// Occupancy returns the fraction of valid lines, a cheap proxy for how much
// of the capacity a workload has claimed.
func (c *Cache) Occupancy() float64 {
	return float64(c.LineCount()) / float64(len(c.tags))
}
