// Command smtop is a perf-stat-style inspector for the simulated SMT
// machine: it runs an application (optionally next to a co-runner or a
// Ruler) and prints the full PMU counter breakdown per hardware context —
// IPC, per-port utilisation, cache hit rates at every level, DRAM traffic,
// branch and TLB behaviour.
//
// Usage:
//
//	smtop -app 444.namd [-with 429.mcf | -ruler FP_ADD] [-machine ivb|snb]
//	      [-placement smt|cmp] [-cycles 100000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/workload"
)

func main() {
	appFlag := flag.String("app", "", "application to run (required)")
	withFlag := flag.String("with", "", "co-located application")
	rulerFlag := flag.String("ruler", "", "co-located Ruler (FP_MUL, FP_ADD, FP_SHF, INT_ADD, L1, L2, L3, MEM_BW)")
	machineFlag := flag.String("machine", "ivb", "machine: ivb or snb")
	placementFlag := flag.String("placement", "smt", "placement: smt or cmp")
	cyclesFlag := flag.Uint64("cycles", 100_000, "measurement window in cycles")
	flag.Parse()

	if *appFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*appFlag, *withFlag, *rulerFlag, *machineFlag, *placementFlag, *cyclesFlag); err != nil {
		fmt.Fprintf(os.Stderr, "smtop: %v\n", err)
		os.Exit(1)
	}
}

func run(app, with, ruler, machine, placementS string, cycles uint64) error {
	cfg := isa.IvyBridge()
	if machine == "snb" {
		cfg = isa.SandyBridgeEN()
	} else if machine != "ivb" {
		return fmt.Errorf("unknown machine %q", machine)
	}
	var placement profile.Placement
	switch placementS {
	case "smt":
		placement = profile.SMT
	case "cmp":
		placement = profile.CMP
	default:
		return fmt.Errorf("unknown placement %q", placementS)
	}

	spec, err := workload.ByName(app)
	if err != nil {
		return err
	}
	opts := profile.DefaultOptions()
	opts.MeasureCycles = cycles

	var partner profile.Job
	switch {
	case with != "" && ruler != "":
		return fmt.Errorf("choose one of -with and -ruler")
	case with != "":
		ps, err := workload.ByName(with)
		if err != nil {
			return err
		}
		partner = profile.App(ps)
	case ruler != "":
		r, err := rulerByName(cfg, ruler)
		if err != nil {
			return err
		}
		partner = profile.Rulers(r, 1)
	}

	var res profile.RunResult
	if partner == nil {
		res, err = profile.Solo(cfg, profile.App(spec), opts)
	} else {
		res, err = profile.Colocate(cfg, profile.App(spec), partner, placement, opts)
	}
	if err != nil {
		return err
	}

	fmt.Printf("machine: %s, window: %d cycles, placement: %v\n\n", cfg.Name, cycles, placement)
	printCounters(app, res.AppCounters[0])
	if partner != nil {
		fmt.Println()
		printCounters(partner.Name(), res.PartnerCounters[0])
	}
	return nil
}

func rulerByName(cfg isa.Config, name string) (*rulers.Ruler, error) {
	for _, r := range rulers.StandardSet(cfg) {
		if r.Name == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("unknown ruler %q", name)
}

func printCounters(name string, c pmu.Counters) {
	fmt.Printf("=== %s ===\n", name)
	fmt.Printf("%-28s %12d\n", "cycles", c.Cycles)
	fmt.Printf("%-28s %12d   (%.3f IPC)\n", "instructions", c.Instructions, c.IPC())
	for p := isa.Port(0); p < isa.NumPorts; p++ {
		fmt.Printf("port %d dispatches             %12d   (%.1f%% utilised)\n", p, c.PortUops[p], c.PortUtilization(p)*100)
	}
	level := func(label string, hits, misses uint64) {
		total := hits + misses
		rate := 0.0
		if total > 0 {
			rate = float64(hits) / float64(total) * 100
		}
		fmt.Printf("%-28s %12d   (%.1f%% hit rate)\n", label, total, rate)
	}
	level("L1D accesses", c.L1DHits, c.L1DMisses)
	level("L2 accesses", c.L2Hits, c.L2Misses)
	level("L3 accesses", c.L3Hits, c.L3Misses)
	fmt.Printf("%-28s %12d\n", "DRAM accesses", c.MemAccesses)
	mispct := 0.0
	if c.Branches > 0 {
		mispct = float64(c.BranchMispredicts) / float64(c.Branches) * 100
	}
	fmt.Printf("%-28s %12d   (%.2f%% mispredicted)\n", "branches", c.Branches, mispct)
	fmt.Printf("%-28s %12d   load / %d store\n", "dTLB misses", c.DTLBLoadMisses, c.DTLBStoreMisses)
	fmt.Printf("%-28s %12d   iTLB / %d i-cache\n", "front-end misses", c.ITLBMisses, c.ICacheMisses)
}
