package isol

import (
	"errors"
	"testing"
)

func TestPolicyEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if !(Policy{WayMasks: []uint64{0, 0x3}}).Enabled() {
		t.Fatal("way mask not detected")
	}
	if !(Policy{MemBudgets: []MemBudget{{Tokens: 4, RefillCycles: 100}}}).Enabled() {
		t.Fatal("budget not detected")
	}
}

func TestPolicyValidate(t *testing.T) {
	good := Policy{
		WayMasks:   []uint64{0x0f, 0xf0},
		MemBudgets: []MemBudget{{}, {Tokens: 2, RefillCycles: 64}},
	}
	if err := good.Validate(2, 8); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	cases := []struct {
		name     string
		p        Policy
		contexts int
		ways     int
	}{
		{"too many masks", Policy{WayMasks: []uint64{1, 1, 1}}, 2, 8},
		{"too many budgets", Policy{MemBudgets: make([]MemBudget, 3)}, 2, 8},
		{"zero owned ways", Policy{WayMasks: []uint64{0xf00}}, 2, 8},
		{"ways beyond cache", Policy{WayMasks: []uint64{0x1ff}}, 2, 8},
		{"zero-token budget", Policy{MemBudgets: []MemBudget{{Tokens: 0, RefillCycles: 10}}}, 2, 8},
		{"zero refill", Policy{MemBudgets: []MemBudget{{Tokens: 4, RefillCycles: 0}}}, 2, 8},
	}
	for _, tc := range cases {
		err := tc.p.Validate(tc.contexts, tc.ways)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
		}
	}
}

func TestWayMaskFor(t *testing.T) {
	p := Policy{WayMasks: []uint64{0x3, 0}}
	if got := p.WayMaskFor(0, 8); got != 0x3 {
		t.Fatalf("context 0 mask = %#x, want 0x3", got)
	}
	// Unset or out-of-range contexts get the full mask.
	for _, g := range []int{1, 2, -1} {
		if got := p.WayMaskFor(g, 8); got != 0xff {
			t.Fatalf("context %d mask = %#x, want 0xff", g, got)
		}
	}
}

func TestSplitWays(t *testing.T) {
	v, a := SplitWays(3, 8)
	if v != 0x07 || a != 0xf8 {
		t.Fatalf("SplitWays(3,8) = %#x,%#x", v, a)
	}
	if v&a != 0 {
		t.Fatal("partitions overlap")
	}
}

func TestValidateSettings(t *testing.T) {
	if err := ValidateSettings(DefaultSettings()); err != nil {
		t.Fatalf("default ladder rejected: %v", err)
	}
	bad := []struct {
		name   string
		levels []Setting
	}{
		{"empty", nil},
		{"level0 not identity", []Setting{{Name: "off", DegScale: 0.9, ThrottleFrac: 1}}},
		{"zero scale", []Setting{{Name: "off", DegScale: 1, ThrottleFrac: 1}, {Name: "x", DegScale: 0}}},
		{"scale increases", []Setting{{Name: "off", DegScale: 1, ThrottleFrac: 1}, {Name: "a", DegScale: 0.5}, {Name: "b", DegScale: 0.7}}},
		{"tax decreases", []Setting{{Name: "off", DegScale: 1, ThrottleFrac: 1}, {Name: "a", DegScale: 0.7, ThroughputTax: 0.2}, {Name: "b", DegScale: 0.5, ThroughputTax: 0.1}}},
	}
	for _, tc := range bad {
		err := ValidateSettings(tc.levels)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
		}
	}
}
