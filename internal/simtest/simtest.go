// Package simtest is the metamorphic/property test harness for the
// simulator substrate — the second half of the verification layer (the
// first is the runtime invariant checker in internal/sim/check).
//
// Instead of asserting point values, the harness asserts *laws* the
// substrate must obey across randomly generated workloads, Ruler
// intensities and placements:
//
//   - Determinism: the same seed yields a bit-identical PMU dump
//     (verified by hashing every counter of every context).
//   - Degradation non-negativity: co-running never speeds an application
//     up beyond measurement tolerance — contention paths only take.
//   - Ruler intensity monotonicity: a higher-intensity Ruler inflicts no
//     less interference on its target resource.
//   - Cross-context isolation: a co-runner that exercises no shared
//     resource (a pure-nop stream on another core) leaves a context's
//     counters bit-identical to its solo run.
//   - Scale consistency: reduced (TestScale) and full-scale measurement
//     windows agree on the sign and ordering of degradations.
//
// The package also owns the golden-PMU regression fixtures
// (testdata/golden_pmu.json): committed counter snapshots for canonical
// (workload, machine, placement) triples, regenerable with
// `go test ./internal/simtest -run TestGolden -update`, so engine changes
// that shift counters surface as reviewable diffs instead of silent drift.
package simtest

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/profile"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TinyOptions returns measurement windows sized for law sweeps: much
// smaller than profile.FastOptions so a suite can afford ≥ 20 seeds, with
// the runtime invariant checker enabled so every metamorphic run is also an
// invariant run.
func TinyOptions() profile.Options {
	return profile.Options{
		PrewarmUops:   20_000,
		WarmupCycles:  4_000,
		MeasureCycles: 10_000,
		BaseSeed:      1,
		Check:         true,
		CheckInterval: 512,
	}
}

// RandomSpec generates a random, always-valid workload model: a random
// micro-op mix, dependency structure, working-set geometry and branch
// behaviour, spanning compute-dense through cache-thrashing populations.
// The same generator state yields the same spec.
func RandomSpec(r *xrand.Rand, name string) *workload.Spec {
	// Random mix over the nine micro-op classes, normalised to 1. Keep the
	// nop share low so every spec makes real progress.
	var w [9]float64
	total := 0.0
	for i := range w {
		w[i] = 0.02 + r.Float64()
		total += w[i]
	}
	w[8] *= 0.2 // thin out nops before renormalising
	total = 0
	for i := range w {
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	spec := &workload.Spec{
		Name:   name,
		Number: 1 + r.Intn(400),
		Suite:  workload.SpecINT,
		Mix: workload.Mix{
			FPMul: w[0], FPAdd: w[1], FPShuf: w[2],
			IntAdd: w[3], IntMul: w[4],
			Load: w[5], Store: w[6],
			Branch: w[7], Nop: w[8],
		},
		MeanDepDist:      1 + r.Float64()*10,
		Dep2Prob:         r.Float64() * 0.5,
		IndepFrac:        r.Float64() * 0.8,
		PointerChaseFrac: r.Float64() * 0.5,
		FootprintBytes:   uint64(1) << (12 + r.Intn(12)), // 4 KiB .. 8 MiB
		BranchTags:       1 << (4 + r.Intn(8)),
		BranchBias:       0.5 + r.Float64()*0.5,
		ICacheMissRate:   r.Float64() * 0.01,
		ITLBMissRate:     r.Float64() * 0.004,
	}
	switch r.Intn(3) {
	case 0:
		spec.Pattern = workload.PatternRandom
	case 1:
		spec.Pattern = workload.PatternStride
		spec.StrideBytes = uint64(8) << r.Intn(5) // 8 .. 128 B
	default:
		spec.Pattern = workload.PatternMixed
		spec.StrideBytes = uint64(8) << r.Intn(5)
		spec.RandomFrac = r.Float64()
	}
	if r.Bool(0.7) {
		spec.HotBytes = uint64(4) << (10 + r.Intn(4)) // 4 .. 32 KiB
		spec.HotFrac = r.Float64() * 0.5
	}
	if r.Bool(0.5) {
		spec.WarmBytes = uint64(64) << (10 + r.Intn(4)) // 64 .. 512 KiB
		spec.WarmFrac = r.Float64() * (1 - spec.HotFrac) * 0.8
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("simtest: RandomSpec produced an invalid spec: %v", err))
	}
	return spec
}

// RandomIntensity draws a Ruler duty cycle from (0, 1].
func RandomIntensity(r *xrand.Rand) float64 {
	return 0.05 + r.Float64()*0.95
}

// RandomPlacement draws SMT or CMP.
func RandomPlacement(r *xrand.Rand) profile.Placement {
	if r.Bool(0.5) {
		return profile.SMT
	}
	return profile.CMP
}

// HashCounters folds any number of PMU counter snapshots into one FNV-64a
// digest, counter names included, so two runs hash equal iff every counter
// of every snapshot is bit-identical.
func HashCounters(snaps ...pmu.Counters) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range snaps {
		for _, f := range c.FieldList() {
			_, _ = h.Write([]byte(f.Name))
			binary.LittleEndian.PutUint64(buf[:], f.Value)
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// HashRun digests a full profile run: all app and partner counters.
func HashRun(res profile.RunResult) uint64 {
	return HashCounters(append(append([]pmu.Counters{}, res.AppCounters...), res.PartnerCounters...)...)
}

// SmallIVB returns the Ivy Bridge configuration reduced to n cores — the
// machine the law sweeps run on.
func SmallIVB(n int) isa.Config {
	cfg := isa.IvyBridge()
	cfg.Cores = n
	return cfg
}
