package simtest

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	clworkload "repro/internal/cluster/workload"
)

// isolGenTable builds one machine generation's prediction table on its
// generation-specific synthetic world, with the measured degradations
// inflated 1.5× over what the predictor believes — the same systematic
// under-prediction device the closed-loop laws use to inject SLO
// violations for the enforcement ladder to absorb.
func isolGenTable(t *testing.T, gen string, seed uint64) *cluster.PredTable {
	t.Helper()
	const nLat, nBatch, maxInst = 3, 4, 6
	set, tbl, err := cluster.SyntheticGenWorld(gen, nLat, nBatch, maxInst, seed)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	pred := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	pt, err := cluster.BuildPredTable(context.Background(), tbl, nil, cluster.QoSAvg, pred, 1)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	inflated := make([]float64, len(pt.ActualDeg))
	for i, d := range pt.ActualDeg {
		inflated[i] = d * 1.5
	}
	pt.ActualDeg = inflated
	return pt
}

// isolClusterConfig builds one randomized heterogeneous PolicyIsolation
// run: a 3:2 mix of two machine generations with distinct degradation
// surfaces and geometries, under-predicted interference, and per-class
// tail-latency budgets.
func isolClusterConfig(t *testing.T, seed uint64) cluster.SimConfig {
	t.Helper()
	const nLat, nBatch = 3, 4
	return cluster.SimConfig{
		Workload: clworkload.Config{
			Machines: 24 + int(seed%5)*8,
			Horizon:  1 + float64(seed%3)*0.5,
			Lats:     nLat, Batches: nBatch, Seed: seed,
			ArrivalRate:  500 + float64(seed%7)*100,
			MeanDuration: 0.05,
			Diurnal:      0.3,
			BurstProb:    0.1, BurstFactor: 2,
			Drift: 0.3,
			Churn: float64(seed%4) * 0.03,
		},
		Shards:            4 + int(seed%2)*4,
		Policy:            cluster.PolicyIsolation,
		Target:            0.92,
		ThreadsPerServer:  6,
		ContextsPerServer: 12,
		MachineGens: []cluster.MachineGenSpec{
			{Name: "snb", Count: 3, Table: isolGenTable(t, "snb", seed)},
			{Name: "ivb", Count: 2, Threads: 8, Contexts: 16, Table: isolGenTable(t, "ivb", seed)},
		},
		SLO: &cluster.SLOSimParams{
			Classes: []cluster.SLOSimClass{
				{Name: "critical", Budget: 0.020, Percentile: 0.95, Mu: 1000, Lambda: 600},
				{Name: "standard", Budget: 0.060, Percentile: 0.95, Mu: 1000, Lambda: 600},
				{Name: "sheddable", Budget: 0.150, Percentile: 0.90, Mu: 1000, Lambda: 700},
			},
			Headroom: 0.1,
		},
	}
}

// TestIsolationPolicyResolvesViolations is the enforcement-ladder law: on
// every seeded heterogeneous run with under-predicted interference, the
// isolation ladder must absorb at least half of the injected SLO
// violations (placements the level-0 surface measures over budget) without
// migrating anything — escalation before eviction is the subsystem's whole
// claim. The suite also requires the injection to be live: a run with
// nothing to resolve would make the law vacuous.
func TestIsolationPolicyResolvesViolations(t *testing.T) {
	totalInjected, totalResolved, totalEsc := 0, 0, 0
	for seed := uint64(0); seed < numSeeds; seed++ {
		cfg := isolClusterConfig(t, seed)
		events, err := cluster.GenerateEvents(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := cluster.RunSim(context.Background(), cfg, events, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		injected := res.IsolationResolved + res.Violations
		t.Logf("seed %2d: placed=%d injected=%d resolved=%d escalations=%d migrations=%d tax=%.4f",
			seed, res.Placed, injected, res.IsolationResolved, res.Isolations, res.Migrations, res.IsolationTax)
		totalInjected += injected
		totalResolved += res.IsolationResolved
		totalEsc += res.Isolations
		if res.IsolationTax < 0 {
			t.Errorf("seed %d: negative throughput tax %g", seed, res.IsolationTax)
		}
		if res.Isolations > 0 && res.IsolationTax == 0 && res.IsolationResolved > 0 {
			t.Errorf("seed %d: ladder engaged (%d escalations) but charged no throughput tax", seed, res.Isolations)
		}
	}
	if totalInjected == 0 {
		t.Fatal("no SLO violations injected across the suite; the law is vacuous")
	}
	if totalEsc == 0 {
		t.Fatal("the ladder never escalated across the suite")
	}
	if 2*totalResolved < totalInjected {
		t.Errorf("isolation resolved %d of %d injected violations (< half) without migration",
			totalResolved, totalInjected)
	}
}

// TestIsolationPolicyDeterminism: a PolicyIsolation run — escalations,
// migrations, tax integrals and all — is bit-identical at 1-way and 8-way
// shard fan-out, for every seed.
func TestIsolationPolicyDeterminism(t *testing.T) {
	for seed := uint64(0); seed < numSeeds; seed++ {
		cfg := isolClusterConfig(t, seed)
		events, err := cluster.GenerateEvents(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq, err := cluster.RunSim(context.Background(), cfg, events, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		par, err := cluster.RunSim(context.Background(), cfg, events, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("seed %d: isolation run diverges between 1 and 8 workers", seed)
		}
	}
}
