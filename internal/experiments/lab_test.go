package experiments

import (
	"sync"
	"testing"

	"repro/internal/profile"
	"repro/internal/workload"
)

// tinyLabScale keeps lab tests fast: two short-window machines and no
// experiment fan-out beyond what the test itself requests.
func tinyLabScale() Scale {
	return Scale{
		Options:          profile.FastOptions(),
		IvyBridgeCores:   2,
		SandyBridgeCores: 4,
	}
}

// Regression for the Characterizations check-then-act race: concurrent
// callers of the same memo key used to each run the full characterization
// fan-out, with every loser's work discarded. The memo is now
// single-flight, so exactly one fan-out may execute. Run under -race (the
// CI race job includes this package) to also catch unsynchronised map
// access.
func TestCharacterizationsSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization fan-out in short mode")
	}
	lab := NewLab(tinyLabScale())
	a, err := workload.ByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	// Same set contents in different orders: one memo key, and each caller
	// gets results in its own requested order.
	sets := [][]*workload.Spec{
		{a, b}, {b, a}, {a, b}, {b, a}, {a, b}, {b, a},
	}
	results := make([][]profile.Characterization, len(sets))
	errs := make([]error, len(sets))
	var wg sync.WaitGroup
	for i, set := range sets {
		wg.Add(1)
		go func(i int, set []*workload.Spec) {
			defer wg.Done()
			results[i], errs[i] = lab.Characterizations(IvyBridge, profile.SMT, set, "race-test")
		}(i, set)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if len(results[i]) != 2 {
			t.Fatalf("caller %d: %d characterizations", i, len(results[i]))
		}
		for j, s := range sets[i] {
			if results[i][j].App != s.Name {
				t.Errorf("caller %d slot %d: got %q, want %q", i, j, results[i][j].App, s.Name)
			}
		}
	}
	// All callers must observe identical characterizations per app.
	for i := 1; i < len(sets); i++ {
		for j, s := range sets[i] {
			want := results[0][0]
			if s.Name == sets[0][1].Name {
				want = results[0][1]
			}
			if results[i][j] != want {
				t.Errorf("caller %d: characterization of %s differs from caller 0", i, s.Name)
			}
		}
	}
	if runs := lab.charRuns.Load(); runs != 1 {
		t.Errorf("characterization fan-out executed %d times for one key, want 1 (single-flight)", runs)
	}
	// A second, sequential call is a pure memo hit.
	if _, err := lab.Characterizations(IvyBridge, profile.SMT, sets[0], "race-test"); err != nil {
		t.Fatal(err)
	}
	if runs := lab.charRuns.Load(); runs != 1 {
		t.Errorf("memo hit re-ran the fan-out (%d runs)", runs)
	}
}

// A reduced-core Scale (TestScale halves the Sandy Bridge-EN to 4 cores)
// must still characterize the 6-thread CloudSuite applications: the
// thread clamp lives in Characterizations' job construction, not in
// cloudSet, and this pins that it actually engages.
func TestScaleReducedCoresClampsCloudThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization fan-out in short mode")
	}
	scale := TestScale()
	scale.MaxCloudApps = 1
	lab := NewLab(scale)
	set := lab.cloudSet()
	if len(set) != 1 {
		t.Fatalf("cloudSet returned %d apps, want 1", len(set))
	}
	spec := set[0]
	// Premise: the stock thread count really exceeds the reduced machine,
	// so a missing clamp could not pass this test.
	if spec.ThreadCount() <= lab.SNB.Cores {
		t.Fatalf("%s has %d threads, not above the reduced %d cores — test premise broken",
			spec.Name, spec.ThreadCount(), lab.SNB.Cores)
	}
	// cloudSet leaves the spec untouched (its doc comment says so).
	if spec.ThreadCount() != workload.CloudSuiteApps()[0].ThreadCount() {
		t.Errorf("cloudSet modified %s's thread count", spec.Name)
	}
	// Unclamped, the machine cannot host the job ...
	p := lab.Profiler(SandyBridgeEN)
	if _, err := p.CharacterizeJob(profile.AppThreads(spec, spec.ThreadCount()), profile.SMT); err == nil {
		t.Errorf("%d-thread job on %d cores characterized without error — clamp premise broken",
			spec.ThreadCount(), lab.SNB.Cores)
	}
	// ... while Characterizations clamps and succeeds.
	chars, err := lab.Characterizations(SandyBridgeEN, profile.SMT, set, "clamp-test")
	if err != nil {
		t.Fatalf("Characterizations with reduced cores: %v", err)
	}
	if chars[0].App != spec.Name || chars[0].SoloIPC <= 0 {
		t.Errorf("clamped characterization looks wrong: %+v", chars[0])
	}
}
