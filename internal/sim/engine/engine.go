// Package engine implements the cycle-approximate multicore SMT processor
// simulator that substitutes for the paper's real Sandy Bridge / Ivy Bridge
// testbed.
//
// Each core has ContextsPerCore hardware contexts (two on the stock
// HyperThreading parts, up to isa.MaxContextsPerCore) that *competitively
// share* everything SMiTe identifies as an SMT interference dimension:
//
//   - the six execution ports (one micro-op per port per cycle, arbitration
//     alternates priority between contexts every cycle),
//   - the front end (4-wide allocation alternates between contexts; a
//     stalled or full context yields its slot, as on real HyperThreading),
//   - the private L1D and L2 caches, the DTLB and the branch predictor,
//
// while all cores share the L3 and a bandwidth-limited memory controller.
// Performance interference between co-located streams therefore *emerges*
// from the same mechanisms the paper measures, rather than being asserted.
//
// Deliberate approximations (documented per DESIGN.md):
//   - Branch mispredictions stall the front end from resolve for the flush
//     penalty instead of squashing in-flight younger uops.
//   - Instruction-cache and ITLB misses are produced by the workload
//     generator (from its code footprint) rather than a simulated L1I.
//   - Stores complete through a store buffer at a fixed latency; their
//     hierarchy side effects (fills, bandwidth) are still modelled.
package engine

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/sim/branch"
	"repro/internal/sim/cache"
	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/sim/pmu"
	"repro/internal/sim/tlb"
)

// Stream produces the dynamic micro-op stream of one hardware context.
// Implementations (workload models, Rulers) must be deterministic given
// their construction seed. Next must overwrite all fields it uses; the
// engine passes a zeroed Uop.
type Stream interface {
	Next(u *isa.Uop)
}

// FootprintDeclarer is an optional Stream extension: streams that keep
// byte ranges resident over a long execution declare their sizes (regions
// all start at the stream's address 0 and nest, so only sizes are needed).
// Chip.Prewarm installs qualifying regions directly into the cache
// hierarchy, approximating the steady-state residency that minutes of real
// execution would establish but short simulation windows cannot.
type FootprintDeclarer interface {
	// PrewarmFootprint returns region sizes in bytes, measured from the
	// stream's address 0.
	PrewarmFootprint() []uint64
}

// noDep marks an absent dependency.
const noDep = ^uint64(0)

// robEntry is one in-flight micro-op.
type robEntry struct {
	kind       isa.UopKind
	ports      isa.PortMask
	dep1, dep2 uint64 // absolute sequence numbers, noDep if none
	addr       uint64
	completeAt uint64
	// notReadyUntil caches the earliest cycle this entry's dependencies
	// could be satisfied, so the scheduler skips re-checking them. Issued
	// entries park at ^uint64(0): the issue scan then rejects both "already
	// issued" and "known not ready" with a single comparison.
	notReadyUntil uint64
	issued        bool
	mispredict    bool
}

// Context is one SMT hardware context: a stream, a private reorder buffer
// and its PMU counters.
type Context struct {
	stream   Stream
	active   bool
	addrBase uint64
	brSalt   uint32

	rob        []robEntry
	robMask    uint64 // len(rob)-1; ROB sizes are powers of two
	head, tail uint64 // absolute sequence numbers; entry i lives at rob[i&robMask]

	fetchStallUntil uint64
	missFree        []uint64 // completion cycles of outstanding L1D misses
	missMin         uint64   // earliest entry in missFree (fast-path skip)
	streams         []uint64 // stream prefetcher: last line id per tracked stream
	streamLRU       []uint64 // last-use stamps for stream replacement
	dtlb            *tlb.TLB // per-context half of the statically partitioned DTLB

	// uop is the fetch scratch buffer. Stream.Next is an interface call, so
	// a function-local Uop would escape to the heap on every fetch group;
	// reusing one per context keeps the cycle loop allocation-free.
	uop isa.Uop

	// ctr holds the cumulative PMU counters, except Cycles: an active
	// context ages exactly with the chip, so its cycle count is derived as
	// chip.cycle - cyclesBase when a snapshot is taken (Chip.Counters)
	// instead of being incremented per cycle per context.
	ctr        pmu.Counters
	cyclesBase uint64

	// Scan-park memo: while head and tail are unchanged and now is before
	// scanStallUntil, a previous full issue scan proved the window holds
	// nothing dispatchable — every entry was issued, waiting on a
	// dependency with a known completion cycle, or a memory op blocked
	// behind a full MSHR file (which frees exactly at missMin). Any event
	// that could change that verdict moves head (retire) or tail (fetch),
	// or arrives at one of those recorded cycles, so issueFrom can skip
	// the whole window scan until then.
	scanStallUntil     uint64
	scanHead, scanTail uint64

	// issuedPrefix is a scan accelerator: every sequence number in
	// [head, issuedPrefix) is issued. Issue scans start at the prefix end
	// instead of re-skipping the same issued entries each cycle; the
	// invariant holds because issued is monotonic for a live entry and
	// head never moves backwards.
	issuedPrefix uint64

	// awake is a per-ROB-slot bitmap (bit = slot&63 of word slot>>6) of
	// the entries an issue scan must visit: allocated non-Nop entries that
	// have not been dispatched and have not been parked on a stored
	// notReadyUntil hint. Parked entries drop out of the bitmap until
	// parkedMin — the minimum stored hint among them — expires, at which
	// point one full window scan rebuilds the bitmap and parkedMin. The
	// cheap bitmap walk is exact: while now < parkedMin every cleared
	// entry provably has notReadyUntil > now, which is precisely the set
	// a full scan would skip, so both paths dispatch identically.
	awake     []uint64
	parkedMin uint64 // 0 forces a full rebuild scan

	// wheel re-arms parked entries at exactly their hint cycle: bucket
	// c&63 holds awake-shaped bitmap words of the slots whose stored
	// notReadyUntil is cycle c (hints less than 64 cycles out; farther
	// hints fall back to parkedMin). step merges every due bucket into
	// awake before the cycle's issue scans — wheelMerged tracks the last
	// merged cycle so skipped-over buckets drain on arrival after an
	// idle skip. Early (spurious) wakes are harmless: the scan re-parks
	// the entry. Lost wakes cannot happen: every park records its hint
	// in exactly one of the two structures.
	wheel       []uint64 // 64 buckets × len(awake) words
	wheelMerged uint64

	// unissued counts live non-Nop ROB entries that have not dispatched;
	// when it is zero a wakeup scan has nothing to inspect (deep-stall
	// windows full of issued entries are bounded by the head completion).
	unissued uint64

	// minLat points at the chip-wide table of exact lower bounds on each
	// micro-op kind's issue-to-complete latency (see depHint).
	minLat *[isa.NumKinds]uint64

	// gid is the chip-global context id (core*ContextsPerCore + ctx),
	// the index into the isolation policy's way masks and DRAM budgets.
	gid int
}

func (c *Context) entry(seq uint64) *robEntry {
	return &c.rob[seq&c.robMask]
}

// park removes slot from the awake bitmap and schedules its re-arm: near
// hints go into the timing wheel at their exact cycle, far ones (and the
// ^uint64(0) issued sentinel, for which min is a no-op) into parkedMin.
func (c *Context) park(slot, hint, now uint64) {
	c.awake[slot>>6] &^= 1 << (slot & 63)
	if hint-now < 64 {
		c.wheel[(hint&63)*uint64(len(c.awake))+slot>>6] |= 1 << (slot & 63)
	} else if hint < c.parkedMin {
		c.parkedMin = hint
	}
}

// mergeWheel drains every wheel bucket due by now into the awake bitmap.
// Cycles can jump forward (Run's idle skip); a jump of 64 or more simply
// drains all buckets — content for cycles still in the future is woken
// early, which the scan handles by re-parking.
func (c *Context) mergeWheel(now uint64) {
	d := now - c.wheelMerged
	if d == 0 {
		return
	}
	c.wheelMerged = now
	if d > 64 {
		d = 64
	}
	nw := uint64(len(c.awake))
	for cyc := now - d + 1; cyc <= now; cyc++ {
		b := (cyc & 63) * nw
		for w := uint64(0); w < nw; w++ {
			if v := c.wheel[b+w]; v != 0 {
				c.awake[w] |= v
				c.wheel[b+w] = 0
			}
		}
	}
}

// depReady reports whether the dependency at absolute sequence dep has
// produced its result by cycle now.
func (c *Context) depReady(dep, now uint64) bool {
	if dep == noDep || dep < c.head {
		return true // retired (or no dependency)
	}
	e := c.entry(dep)
	return e.issued && e.completeAt <= now
}

// depHint reports whether e's dependencies are satisfied at now; when they
// are not, it returns the earliest future cycle at which a re-check could
// succeed. An issued dependency has an exact completion cycle. An unissued
// one has already been passed over this cycle (dependencies are older than
// their consumers and both scans — issueFrom and wakeup — visit the window
// oldest-first), so it issues at earliest now+1 and completes at earliest
// now+1+minLat[kind]; minLat is an exact lower bound on each kind's
// issue-to-complete latency, so the hint never overshoots the true ready
// cycle and results stay bit-identical.
func (c *Context) depHint(e *robEntry, now uint64) (hint uint64, ready bool) {
	hint = now
	if dep := e.dep1; dep != noDep && dep >= c.head {
		if d := &c.rob[dep&c.robMask]; !d.issued {
			hint = now + 1 + c.minLat[d.kind]
		} else if d.completeAt > hint {
			hint = d.completeAt
		}
	}
	if dep := e.dep2; dep != noDep && dep >= c.head {
		if d := &c.rob[dep&c.robMask]; !d.issued {
			if h := now + 1 + c.minLat[d.kind]; h > hint {
				hint = h
			}
		} else if d.completeAt > hint {
			hint = d.completeAt
		}
	}
	return hint, hint <= now
}

// Core is one physical core: ContextsPerCore SMT contexts sharing private
// caches, the DTLB, the branch predictor and the execution ports.
type Core struct {
	chip *Chip
	idx  int

	ctxs []*Context

	l1d  *cache.Cache
	l2   *cache.Cache
	pred *branch.Predictor

	// Per-core execution resources: copies of the chip-level configuration
	// on homogeneous parts, of the core's class on asymmetric (big/little)
	// ones. The hot paths read these instead of cfg so class dispatch costs
	// nothing per cycle.
	portMap [isa.NumKinds]isa.PortMask
	lat     [isa.NumKinds]uint64
	l1Lat   uint64
	l2Lat   uint64
}

// Checker is the narrow verification hook the runtime invariant checker
// (internal/sim/check) implements. The engine nil-checks it once per cycle,
// so simulation without a checker pays a single predictable branch.
//
// OnCycle is called with the chip after a cycle completes — every
// CheckInterval cycles and once more when a Run window ends (the retire
// barrier) — and returns a structured error describing the first invariant
// violation found, or nil. OnReset is called whenever counter baselines
// move (Assign, ResetCounters) so the checker can re-snapshot.
type Checker interface {
	OnCycle(c *Chip) error
	OnReset(c *Chip)
}

// Sampler is the observability hook the timeline recorder
// (internal/obs/timeline) implements. OnSample fires at RunContext slice
// boundaries (every runContextSlice cycles and once at the end of the
// window) with the chip paused between cycles; implementations may only
// read — Counters, Cycle, Memory and friends — never mutate, so an
// attached sampler cannot perturb simulation results. OnReset fires, like
// Checker.OnReset, whenever counter baselines move (Assign, ResetCounters)
// so the sampler can re-baseline its deltas. The engine never calls the
// sampler from Run, which keeps the uninstrumented hot loop byte-for-byte
// unchanged.
type Sampler interface {
	OnSample(c *Chip)
	OnReset(c *Chip)
}

// Chip is the full simulated processor.
// It is not safe for concurrent use; run independent experiments on
// independent Chips.
type Chip struct {
	cfg     isa.Config
	cores   []*Core
	l3      *cache.Cache
	memc    *mem.Controller
	cycle   uint64
	skipped uint64 // cycles jumped over by Run's idle-skip (telemetry only)

	// minLat holds, per micro-op kind, an exact lower bound on the
	// issue-to-complete latency; every Context points here (see depHint).
	minLat [isa.NumKinds]uint64

	checker       Checker
	checkInterval uint64
	checkErr      error

	sampler Sampler

	// iso is the compiled isolation policy (cfg.Isolation): per-global-
	// context L3 allocation masks and DRAM token buckets. nil when the
	// policy is disabled, which keeps every hot-path hook a single
	// predictable branch and results bit-identical to pre-isolation code.
	iso *isoState
}

// isoState is the engine-side compilation of an enabled isol.Policy.
type isoState struct {
	wayMask []uint64       // per gid: L3 way-allocation mask
	tb      []mem.Throttle // per gid: DRAM request shaper (zero = unthrottled)
}

// New builds a chip for the given configuration. It returns an error if the
// configuration is invalid.
func New(cfg isa.Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{
		cfg:  cfg,
		l3:   cache.New("L3", cfg.L3),
		memc: mem.New(cfg.MemBaseLatency, cfg.MemServiceInterval),
	}
	// Exact issue-to-complete latency floors: ALU kinds and branches always
	// take Latency[kind]; a store completes through the store buffer in
	// StoreLatency; a load's best case is a DTLB hit plus an L1D hit. On
	// asymmetric parts the floor is the minimum across classes — a lower
	// bound stays a lower bound, and an early hint only re-runs a scan.
	c.minLat = cfg.Latency
	c.minLat[isa.Nop] = 0
	c.minLat[isa.Load] = cfg.L1D.LatencyCycles
	c.minLat[isa.Store] = cfg.StoreLatency
	for i := range cfg.Classes {
		cl := &cfg.Classes[i]
		for k := isa.UopKind(1); k < isa.NumKinds; k++ {
			if k != isa.Load && k != isa.Store && cl.Latency[k] < c.minLat[k] {
				c.minLat[k] = cl.Latency[k]
			}
		}
		if cl.L1D.LatencyCycles < c.minLat[isa.Load] {
			c.minLat[isa.Load] = cl.L1D.LatencyCycles
		}
	}
	if cfg.Isolation.Enabled() {
		n := cfg.Contexts()
		c.iso = &isoState{
			wayMask: make([]uint64, n),
			tb:      make([]mem.Throttle, n),
		}
		for g := 0; g < n; g++ {
			c.iso.wayMask[g] = cfg.Isolation.WayMaskFor(g, cfg.L3.Ways)
			if b := cfg.Isolation.BudgetFor(g); b.Enabled() {
				c.iso.tb[g] = mem.NewThrottle(b.Tokens, b.RefillCycles)
			}
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		l1d, l2 := cfg.L1D, cfg.L2
		portMap, lat := cfg.PortMap, cfg.Latency
		if _, cl := cfg.CoreClassOf(i); cl != nil {
			l1d, l2 = cl.L1D, cl.L2
			portMap, lat = cl.PortMap, cl.Latency
		}
		co := &Core{
			chip:    c,
			idx:     i,
			ctxs:    make([]*Context, cfg.ContextsPerCore),
			l1d:     cache.New(fmt.Sprintf("core%d.L1D", i), l1d),
			l2:      cache.New(fmt.Sprintf("core%d.L2", i), l2),
			pred:    branch.New(cfg.BranchPredictorEntries),
			portMap: portMap,
			lat:     lat,
			l1Lat:   l1d.LatencyCycles,
			l2Lat:   l2.LatencyCycles,
		}
		for k := range co.ctxs {
			gid := i*cfg.ContextsPerCore + k
			co.ctxs[k] = &Context{
				rob:      make([]robEntry, cfg.ROBSize),
				robMask:  uint64(cfg.ROBSize - 1),
				awake:    make([]uint64, (cfg.ROBSize+63)/64),
				wheel:    make([]uint64, 64*((cfg.ROBSize+63)/64)),
				addrBase: (uint64(gid) + 1) << 44,
				brSalt:   uint32(gid+1) * 0x9E3779B9,
				missFree: make([]uint64, 0, cfg.MSHRsPerContext),
				// The DTLB is statically partitioned between the core's
				// hardware contexts, as several per-thread front-end
				// structures are on real SMT parts; this keeps TLB reach
				// identical between solo and co-located runs.
				dtlb:   tlb.New(cfg.DTLBEntries/cfg.ContextsPerCore, cfg.PageBytes),
				minLat: &c.minLat,
				gid:    gid,
			}
			if cfg.StreamPrefetcher {
				ns := cfg.PrefetchStreams
				if ns < 1 {
					ns = 4
				}
				co.ctxs[k].streams = make([]uint64, ns)
				co.ctxs[k].streamLRU = make([]uint64, ns)
				for i := range co.ctxs[k].streams {
					co.ctxs[k].streams[i] = ^uint64(0)
				}
			}
		}
		c.cores = append(c.cores, co)
	}
	return c, nil
}

// MustNew is New but panics on error; convenient for tests and internal
// callers that pass stock configurations.
func MustNew(cfg isa.Config) *Chip {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetSampler attaches (or, with nil, detaches) a timeline sampler.
// See Sampler for the observation contract; only RunContext consults it.
func (c *Chip) SetSampler(s Sampler) { c.sampler = s }

// Config returns the chip's configuration.
func (c *Chip) Config() isa.Config { return c.cfg }

// Cycle returns the current simulation cycle.
func (c *Chip) Cycle() uint64 { return c.cycle }

// IdleSkipped returns the cumulative number of cycles Run's idle-skip
// jumped over instead of iterating. Telemetry only: skipped cycles are
// indistinguishable from iterated ones in every counter and result.
func (c *Chip) IdleSkipped() uint64 { return c.skipped }

// SetChecker attaches (or, with nil, detaches) a runtime invariant checker.
// OnCycle fires every interval cycles (0 means every 1024) and at the end
// of each Run window; the first violation is latched and readable via
// CheckErr. Attaching re-baselines the checker immediately.
func (c *Chip) SetChecker(ch Checker, interval uint64) {
	c.checker = ch
	if interval == 0 {
		interval = 1024
	}
	c.checkInterval = interval
	c.checkErr = nil
	if ch != nil {
		ch.OnReset(c)
	}
}

// CheckErr returns the first invariant violation the attached checker has
// reported (nil when no checker is attached or no violation occurred).
func (c *Chip) CheckErr() error { return c.checkErr }

// Progress returns a context's absolute pipeline progress: micro-ops
// allocated (fetched) into and retired from its ROB since the last Assign.
// The invariant checker uses it for uop-conservation accounting.
func (c *Chip) Progress(core, ctx int) (fetched, retired uint64) {
	x := c.cores[core].ctxs[ctx]
	return x.tail, x.head
}

// ContextActive reports whether a hardware context has a stream assigned.
func (c *Chip) ContextActive(core, ctx int) bool {
	return c.cores[core].ctxs[ctx].active
}

// CorruptCounterForTest deliberately injects retired-instruction counter
// drift into a context — the kind of silent accounting bug the verification
// layer exists to catch. It is exported only so the checker's tests can
// prove a violation is detected; never call it outside tests.
func (c *Chip) CorruptCounterForTest(core, ctx int, delta int64) {
	c.cores[core].ctxs[ctx].ctr.Instructions += uint64(delta)
}

// Assign places a stream on the given hardware context. Passing a nil
// stream deactivates the context. Assign resets the context's pipeline
// state and counters but leaves shared state (caches, predictor) warm.
func (c *Chip) Assign(core, ctx int, s Stream) {
	if core < 0 || core >= len(c.cores) || ctx < 0 || ctx >= c.cfg.ContextsPerCore {
		panic(fmt.Sprintf("engine: Assign(%d,%d) out of range for %d cores × %d contexts", core, ctx, len(c.cores), c.cfg.ContextsPerCore))
	}
	x := c.cores[core].ctxs[ctx]
	x.stream = s
	x.active = s != nil
	x.head, x.tail = 0, 0
	x.fetchStallUntil = 0
	x.scanStallUntil = 0
	x.issuedPrefix = 0
	for i := range x.awake {
		x.awake[i] = 0
	}
	x.parkedMin = 0
	for i := range x.wheel {
		x.wheel[i] = 0
	}
	x.wheelMerged = c.cycle
	x.unissued = 0
	x.missFree = x.missFree[:0]
	x.missMin = ^uint64(0)
	for i := range x.streams {
		x.streams[i] = ^uint64(0)
		x.streamLRU[i] = 0
	}
	x.ctr = pmu.Counters{}
	x.cyclesBase = c.cycle
	if c.iso != nil {
		c.iso.tb[x.gid].Reset()
	}
	if c.checker != nil {
		c.checker.OnReset(c)
	}
	if c.sampler != nil {
		c.sampler.OnReset(c)
	}
}

// Reset restores the chip to its post-New state: all contexts idle, every
// cache, TLB, predictor and the memory controller back to construction state
// (including random-replacement victim streams), the cycle counter at zero,
// and any checker or sampler detached. A Reset chip is bit-identical to a
// freshly constructed one in every subsequent simulation (pinned by
// TestResetBitIdentical), which is what lets the batched characterization
// path reuse one chip per scheduler worker instead of allocating per cell.
func (c *Chip) Reset() {
	c.cycle, c.skipped = 0, 0
	c.checker, c.checkErr = nil, nil
	c.checkInterval = 0
	c.sampler = nil
	c.l3.Reset()
	c.memc.Reset()
	if c.iso != nil {
		for i := range c.iso.tb {
			c.iso.tb[i].Reset()
		}
	}
	for _, co := range c.cores {
		co.l1d.Reset()
		co.l2.Reset()
		co.pred.Reset()
		for _, x := range co.ctxs {
			x.stream = nil
			x.active = false
			x.head, x.tail = 0, 0
			x.fetchStallUntil = 0
			x.scanStallUntil = 0
			x.scanHead, x.scanTail = 0, 0
			x.issuedPrefix = 0
			for i := range x.awake {
				x.awake[i] = 0
			}
			x.parkedMin = 0
			for i := range x.wheel {
				x.wheel[i] = 0
			}
			x.wheelMerged = 0
			x.unissued = 0
			x.missFree = x.missFree[:0]
			x.missMin = 0
			for i := range x.streams {
				x.streams[i] = ^uint64(0)
				x.streamLRU[i] = 0
			}
			x.dtlb.Flush()
			x.uop = isa.Uop{}
			x.ctr = pmu.Counters{}
			x.cyclesBase = 0
		}
	}
}

// Counters returns a snapshot of the context's cumulative PMU counters.
func (c *Chip) Counters(core, ctx int) pmu.Counters {
	x := c.cores[core].ctxs[ctx]
	ctr := x.ctr
	if x.active {
		ctr.Cycles = c.cycle - x.cyclesBase
	}
	return ctr
}

// ResetCounters zeroes every context's PMU counters (and the shared
// structures' statistics), marking the start of a measurement window while
// keeping all microarchitectural state warm.
func (c *Chip) ResetCounters() {
	for _, co := range c.cores {
		for _, x := range co.ctxs {
			x.ctr = pmu.Counters{}
			x.cyclesBase = c.cycle
		}
		co.l1d.ResetStats()
		co.l2.ResetStats()
		co.pred.ResetStats()
		for _, x := range co.ctxs {
			x.dtlb.ResetStats()
		}
	}
	c.l3.ResetStats()
	c.memc.ResetStats()
	if c.checker != nil {
		c.checker.OnReset(c)
	}
	if c.sampler != nil {
		c.sampler.OnReset(c)
	}
}

// L3 exposes the shared cache for tests and occupancy inspection.
func (c *Chip) L3() *cache.Cache { return c.l3 }

// Memory exposes the memory controller statistics.
func (c *Chip) Memory() *mem.Controller { return c.memc }

// CoreL1D exposes a core's private L1D (tests, occupancy inspection).
func (c *Chip) CoreL1D(core int) *cache.Cache { return c.cores[core].l1d }

// CoreL2 exposes a core's private L2.
func (c *Chip) CoreL2(core int) *cache.Cache { return c.cores[core].l2 }

// Prewarm functionally executes n micro-ops from every active context's
// stream, round-robin in small chunks, installing data footprints into the
// TLBs and cache hierarchy without advancing simulated time or touching the
// memory controller. It approximates the cache state a long-running
// co-location would have reached, which matters for working sets (multi-MiB
// warm regions) that timed warm-up windows cannot touch often enough.
// Counter pollution is removed by the ResetCounters call that starts every
// measurement window.
func (c *Chip) Prewarm(n int) {
	c.prewarmFootprints()
	const chunk = 64
	for done := 0; done < n; done += chunk {
		for _, co := range c.cores {
			for _, x := range co.ctxs {
				if x == nil || !x.active {
					continue
				}
				u := &x.uop // reused scratch, as in fetchInto
				for i := 0; i < chunk; i++ {
					*u = isa.Uop{}
					x.stream.Next(u)
					switch u.Kind {
					case isa.Branch:
						// Train the predictor in uop time: large branch
						// working sets take hundreds of thousands of
						// cycles to converge in timed execution.
						co.pred.Lookup(u.BrTag*2654435761+x.brSalt, u.Taken)
					case isa.Load, isa.Store:
						addr := x.addrBase | u.Addr
						x.dtlb.Access(addr)
						if co.l1d.Access(addr, true) {
							continue
						}
						if co.l2.Access(addr, true) {
							continue
						}
						c.l3Access(x, addr)
					}
				}
			}
		}
	}
}

// prewarmFootprints installs each active context's declared resident
// regions into its core's caches and the L3. A region qualifies when it
// fits within twice the L3 capacity (larger regions have no steady-state
// residency to model). Regions nest at address 0, so only the largest
// qualifying size is walked. The job on context 0 is installed before its
// sibling on context 1, matching the steady state in which the
// higher-rate co-runner (a Ruler) owns contended lines.
func (c *Chip) prewarmFootprints() {
	line := uint64(c.cfg.L3.LineBytes)
	type job struct {
		co   *Core
		x    *Context
		size uint64
		pos  uint64
	}
	var jobs []job
	for _, co := range c.cores {
		for _, x := range co.ctxs {
			if x == nil || !x.active {
				continue
			}
			fd, ok := x.stream.(FootprintDeclarer)
			if !ok {
				continue
			}
			size := uint64(0)
			for _, s := range fd.PrewarmFootprint() {
				if s > size {
					size = s
				}
			}
			if size > 0 {
				jobs = append(jobs, job{co: co, x: x, size: size})
			}
		}
	}
	if len(jobs) == 0 {
		return
	}
	// Allocate installation budgets max-min fairly within the L3 capacity:
	// contexts with small resident sets install them fully (a small,
	// frequently re-touched working set retains near-full occupancy at
	// steady state), while larger footprints split the remaining capacity.
	// Flooding the cache with one context's huge footprint would start the
	// measurement window from a state no steady state resembles.
	for j := range jobs {
		if max := uint64(c.cfg.L3.SizeBytes); jobs[j].size > max {
			jobs[j].size = max
		}
	}
	remaining := uint64(c.cfg.L3.SizeBytes)
	unmet := len(jobs)
	// Iteratively satisfy the smallest demands.
	done := make([]bool, len(jobs))
	for unmet > 0 {
		share := remaining / uint64(unmet)
		progressed := false
		for j := range jobs {
			if !done[j] && jobs[j].size <= share {
				done[j] = true
				remaining -= jobs[j].size
				unmet--
				progressed = true
			}
		}
		if !progressed {
			for j := range jobs {
				if !done[j] {
					jobs[j].size = share
					done[j] = true
					remaining -= share
					unmet--
				}
			}
		}
	}
	// Interleave installs across contexts in chunks so shared-cache LRU
	// starts from a fair mixture rather than last-writer-wins.
	const chunk = 16
	for {
		busy := false
		for j := range jobs {
			jb := &jobs[j]
			for n := uint64(0); n < chunk && jb.pos < jb.size; n++ {
				a := jb.x.addrBase | jb.pos
				jb.x.dtlb.Access(a)
				if !jb.co.l1d.Access(a, true) {
					if !jb.co.l2.Access(a, true) {
						c.l3Access(jb.x, a)
					}
				}
				jb.pos += line
			}
			if jb.pos < jb.size {
				busy = true
			}
		}
		if !busy {
			return
		}
	}
}

// Run advances the chip by the given number of cycles. When a checker is
// attached it is consulted every checkInterval cycles and once at the end
// of the window; the first violation is latched (see CheckErr).
//
// Cycles on which no context can make progress are not iterated one by one:
// when a stepped cycle performs no fetch, issue or retirement, Run jumps
// directly to the earliest cycle at which any context could act again (a
// completion, an MSHR release or a front-end stall expiry — see
// Context.wakeup for the correctness argument). The skip changes no
// architectural or counter state, only how many times the loop spins; the
// golden PMU fixtures (internal/simtest) pin this bit-exactly. Checked runs
// do not skip, so the checker samples its invariants at exact interval
// boundaries; this also makes every checked-vs-unchecked counter comparison
// a test of the skip itself.
func (c *Chip) Run(cycles uint64) {
	end := c.cycle + cycles
	for c.cycle < end {
		now := c.cycle
		progress := false
		for _, co := range c.cores {
			if co.step(now) {
				progress = true
			}
		}
		c.cycle++
		if c.checker != nil {
			if c.cycle%c.checkInterval == 0 {
				c.runCheck()
			}
			continue
		}
		if !progress {
			if t := c.nextWakeup(now); t > c.cycle {
				if t > end {
					t = end
				}
				c.skipped += t - c.cycle
				c.cycle = t
			}
		}
	}
	if c.checker != nil {
		c.runCheck()
	}
}

// runContextSlice is the cancellation granularity of RunContext: the
// context is polled once per this many simulated cycles. Small enough
// that a request deadline aborts a measurement window in a few
// milliseconds of wall-clock, large enough that the poll is invisible
// next to the per-cycle work.
const runContextSlice = 16 * 1024

// RunContext is Run with cooperative cancellation: the window is executed
// in runContextSlice-cycle slices with ctx polled between slices, so a
// request deadline or client disconnect aborts an in-flight simulation
// mid-window instead of after it. On cancellation the chip stops at a
// slice boundary and ctx.Err() is returned; the chip remains valid but
// its window is incomplete, so callers must discard the measurement.
//
// Chunking is invisible to results: cycle counts derive from the chip
// clock (not per-call state), an idle-skip clamped at a slice boundary
// resumes identically in the next slice, and a checker consulted at the
// extra boundaries only validates — it mutates nothing. A completed
// RunContext is therefore bit-identical to Run over the same window
// (pinned by TestRunContextMatchesRun against the golden fixtures' path).
// When a Sampler is attached the window is always sliced — even under a
// background context — and the sampler observes the chip at every slice
// boundary. Sampling is read-only, so the simulated results stay
// bit-identical with or without it (TestRunContextSamplerBitIdentical).
func (c *Chip) RunContext(ctx context.Context, cycles uint64) error {
	if ctx.Done() == nil && c.sampler == nil {
		// Background contexts cannot cancel; skip the slicing entirely.
		c.Run(cycles)
		return nil
	}
	for cycles > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		slice := uint64(runContextSlice)
		if slice > cycles {
			slice = cycles
		}
		c.Run(slice)
		cycles -= slice
		if c.sampler != nil {
			c.sampler.OnSample(c)
		}
	}
	return ctx.Err()
}

// nextWakeup returns a conservative lower bound (> now) on the next cycle
// at which any active context could make progress, assuming none did at
// cycle now. ^uint64(0) means no context has a pending event (e.g. the
// chip is empty).
func (c *Chip) nextWakeup(now uint64) uint64 {
	t := ^uint64(0)
	for _, co := range c.cores {
		for _, x := range co.ctxs {
			if x == nil || !x.active {
				continue
			}
			if w := x.wakeup(&c.cfg, now); w < t {
				t = w
			}
		}
	}
	return t
}

// wakeup computes the earliest cycle (> now) at which the context could
// fetch, issue or retire, given that it made no progress at cycle now. The
// bound is conservative — waking early merely re-runs the idle check —
// and it is exact for the three event sources a stalled context has:
//
//   - fetch resumes when fetchStallUntil expires (or, if the ROB is full,
//     only after a retirement, which the other bounds cover);
//   - the head of the ROB retires when its completion cycle arrives;
//   - an unissued micro-op becomes issueable when its dependencies
//     complete (depHint) or, for memory ops under a full MSHR file, when
//     the earliest outstanding miss resolves (missMin).
//
// Anything that could create a *new* event before those cycles would
// itself be progress at cycle now, which the caller has ruled out. The
// defensive now+1 returns cover states the no-progress precondition should
// exclude; they turn the skip into a no-op rather than risking one.
func (x *Context) wakeup(cfg *isa.Config, now uint64) uint64 {
	t := ^uint64(0)
	if x.tail-x.head < uint64(cfg.ROBSize) {
		if x.fetchStallUntil <= now {
			return now + 1 // fetch is possible immediately
		}
		t = x.fetchStallUntil
	}
	if x.head == x.tail {
		return t // empty ROB: only fetch can create work
	}
	if e := x.entry(x.head); e.issued {
		if e.completeAt <= now {
			return now + 1 // retirement is already due
		}
		if e.completeAt < t {
			t = e.completeAt
		}
	}
	if x.unissued == 0 {
		return t // window is all issued: bounded by the head completion
	}
	mshrFull := len(x.missFree) >= cfg.MSHRsPerContext
	limit := x.head + uint64(cfg.IssueScanDepth)
	if limit > x.tail {
		limit = x.tail
	}
	start := x.head
	if x.issuedPrefix > start {
		start = x.issuedPrefix // [head, issuedPrefix) is all issued
	}
	for s := start; s < limit; s++ {
		e := x.entry(s)
		if e.issued {
			continue
		}
		// Always re-derive the hint here: a dependency may have issued
		// since it was stored, turning a weak lower bound into an exact
		// completion cycle — and a longer provably-idle stretch. Write it
		// back so the issue scan benefits too.
		hint, ready := x.depHint(e, now)
		if !ready {
			e.notReadyUntil = hint
			if hint < t {
				t = hint
			}
			continue
		}
		if mshrFull && (e.kind == isa.Load || e.kind == isa.Store) {
			if x.missMin < t {
				t = x.missMin
			}
			continue
		}
		return now + 1 // a ready micro-op exists; do not skip
	}
	return t
}

// runCheck consults the attached checker, latching its first violation.
func (c *Chip) runCheck() {
	if err := c.checker.OnCycle(c); err != nil && c.checkErr == nil {
		c.checkErr = err
	}
}

// step advances one core by one cycle: expire MSHRs, retire, issue, fetch.
// It reports whether any context made progress (retired, issued or fetched
// at least one micro-op) — the signal Run's idle-skip relies on.
func (co *Core) step(now uint64) bool {
	anyActive := false
	progress := false
	for _, x := range co.ctxs {
		if x == nil || !x.active {
			continue
		}
		anyActive = true
		x.mergeWheel(now)
		x.expireMisses(now)
		if x.retire(now, co.chip.cfg.RetireWidth) > 0 {
			progress = true
		}
	}
	if !anyActive {
		return false
	}
	if co.issue(now) {
		progress = true
	}
	if co.fetch(now) {
		progress = true
	}
	return progress
}

func (x *Context) expireMisses(now uint64) {
	if len(x.missFree) == 0 || x.missMin > now {
		return
	}
	out := x.missFree[:0]
	earliest := ^uint64(0)
	for _, t := range x.missFree {
		if t > now {
			out = append(out, t)
			if t < earliest {
				earliest = t
			}
		}
	}
	x.missFree = out
	x.missMin = earliest
}

// retire retires up to width completed micro-ops in order, returning the
// number retired. The Instructions counter is updated once per call, not
// per micro-op.
func (x *Context) retire(now uint64, width int) int {
	n := 0
	for ; n < width && x.head < x.tail; n++ {
		e := x.entry(x.head)
		if !e.issued || e.completeAt > now {
			break
		}
		x.head++
	}
	x.ctr.Instructions += uint64(n)
	return n
}

// issue performs the per-cycle dispatch: context priority rotates every
// cycle; the priority context's oldest ready micro-ops claim free ports
// first (each port accepts one micro-op per cycle), then its siblings fill
// what remains in rotation order. Under saturation each of the core's N
// contexts therefore receives 1/N of a contended port's slots, which is
// the competitive sharing SMiTe measures.
func (co *Core) issue(now uint64) bool {
	const allPorts = isa.PortMask(1<<isa.NumPorts - 1)
	free := allPorts
	nc := len(co.ctxs)
	// Rotate priority across the contexts every cycle; for nc == 2 the
	// visit order is bit-identical to the historical two-way alternation.
	pri := int((now + uint64(co.idx)) % uint64(nc))
	for t := 0; t < nc && free != 0; t++ {
		i := pri + t
		if i >= nc {
			i -= nc
		}
		x := co.ctxs[i]
		if x == nil || !x.active {
			continue
		}
		free = co.issueFrom(x, free, now)
	}
	return free != allPorts
}

// issueFrom scans x's oldest IssueScanDepth ROB entries (the reservation-
// station view) oldest-first, dispatching each ready micro-op to the lowest
// free port in its mask. It returns the ports still free.
func (co *Core) issueFrom(x *Context, free isa.PortMask, now uint64) isa.PortMask {
	if now < x.scanStallUntil && x.head == x.scanHead && x.tail == x.scanTail {
		return free // parked: window proven non-dispatchable until then
	}
	cfg := &co.chip.cfg
	mshrFull := len(x.missFree) >= cfg.MSHRsPerContext
	limit := x.head + uint64(cfg.IssueScanDepth)
	if limit > x.tail {
		limit = x.tail
	}
	// Local ring view: keeps the scan free of repeated slice-header loads,
	// and the notReadyUntil sentinel rejects issued and known-not-ready
	// entries with one comparison each.
	rob, mask := x.rob, x.robMask
	start := x.head
	if x.issuedPrefix > start {
		start = x.issuedPrefix
	}
	for start < limit && rob[start&mask].issued {
		start++
	}
	x.issuedPrefix = start
	if now < x.parkedMin {
		// Every bitmap-cleared entry still has notReadyUntil > now, so the
		// cheap walk over set bits visits exactly the entries a full scan
		// would not skip.
		return co.issueAwake(x, free, now, start, limit, mshrFull)
	}
	// Full rebuild scan: visit the whole window, re-deriving which entries
	// stay awake and the next parkedMin re-arm cycle.
	// parkable stays true only while every skipped entry carries an exact
	// future wakeup cycle (accumulated in parkUntil); a dispatch or a skip
	// for a transient reason (port taken this cycle) forbids parking.
	parkable := true
	parkUntil := ^uint64(0)
	x.parkedMin = ^uint64(0) // re-accumulated by the park calls below
	for s := start; s < limit; s++ {
		if free == 0 {
			// Unvisited entries keep stale bitmap state; rebuild next cycle.
			x.parkedMin = now + 1
			parkable = false
			break
		}
		slot := s & mask
		e := &rob[slot]
		if e.notReadyUntil > now {
			x.park(slot, e.notReadyUntil, now)
			if e.notReadyUntil < parkUntil {
				parkUntil = e.notReadyUntil
			}
			continue
		}
		avail := e.ports & free
		if avail == 0 {
			x.awake[slot>>6] |= 1 << (slot & 63)
			parkable = false
			continue
		}
		if mshrFull && (e.kind == isa.Load || e.kind == isa.Store) {
			// The MSHR file frees exactly at missMin, which cannot move
			// earlier while this context's memory ops are blocked, so the
			// entry can park on it like a dependency hint.
			e.notReadyUntil = x.missMin
			x.park(slot, x.missMin, now)
			if x.missMin < parkUntil {
				parkUntil = x.missMin
			}
			continue
		}
		if hint, ready := x.depHint(e, now); !ready {
			e.notReadyUntil = hint
			x.park(slot, hint, now)
			if hint < parkUntil {
				parkUntil = hint
			}
			continue
		}
		p := isa.Port(bits.TrailingZeros8(uint8(avail)))
		co.execute(x, e, p, now)
		x.awake[slot>>6] &^= 1 << (slot & 63)
		free &^= 1 << p
		parkable = false
	}
	if parkable && parkUntil > now+1 {
		x.scanStallUntil = parkUntil
		x.scanHead, x.scanTail = x.head, x.tail
	}
	return free
}

// issueAwake is issueFrom's fast path: it walks only the bitmap-set window
// entries (see Context.awake), dispatching by the same rules and in the
// same oldest-first order as the full scan.
func (co *Core) issueAwake(x *Context, free isa.PortMask, now uint64, start, limit uint64, mshrFull bool) isa.PortMask {
	rob, mask := x.rob, x.robMask
	n := uint64(len(rob))
	for base := start; base < limit && free != 0; {
		slot := base & mask
		word := slot >> 6
		off := slot & 63
		span := limit - base
		if rem := 64 - off; span > rem {
			span = rem // stay within one bitmap word
		}
		if rem := n - slot; span > rem {
			span = rem // stay within the ring
		}
		w := x.awake[word] >> off
		if span < 64 {
			w &= 1<<span - 1
		}
		for w != 0 && free != 0 {
			i := uint64(bits.TrailingZeros64(w))
			w &= w - 1
			e := &rob[slot+i]
			if e.notReadyUntil > now {
				// Issued or parked since the bit was set.
				x.park(slot+i, e.notReadyUntil, now)
				continue
			}
			avail := e.ports & free
			if avail == 0 {
				continue
			}
			if mshrFull && (e.kind == isa.Load || e.kind == isa.Store) {
				e.notReadyUntil = x.missMin // exact: MSHRs free at missMin
				x.park(slot+i, x.missMin, now)
				continue
			}
			if hint, ready := x.depHint(e, now); !ready {
				e.notReadyUntil = hint
				x.park(slot+i, hint, now)
				continue
			}
			p := isa.Port(bits.TrailingZeros8(uint8(avail)))
			co.execute(x, e, p, now)
			x.awake[word] &^= 1 << (off + i)
			free &^= 1 << p
		}
		base += span
	}
	return free
}

// execute dispatches e on port p at cycle now, computing its completion.
func (co *Core) execute(x *Context, e *robEntry, p isa.Port, now uint64) {
	cfg := &co.chip.cfg
	e.issued = true
	e.notReadyUntil = ^uint64(0) // sentinel: drop out of the issue scan
	x.unissued--
	x.ctr.PortUops[p]++
	switch e.kind {
	case isa.Load:
		lat, missed := co.loadLatency(x, e.addr, now)
		e.completeAt = now + lat
		if missed {
			x.missFree = append(x.missFree, e.completeAt)
			if e.completeAt < x.missMin || len(x.missFree) == 1 {
				x.missMin = e.completeAt
			}
		}
	case isa.Store:
		fillAt, missed := co.storeAccess(x, e.addr, now)
		// The store itself completes through the store buffer, but a
		// missing store occupies an MSHR until its fill returns — that
		// backpressure bounds a store stream's memory-bandwidth demand.
		e.completeAt = now + cfg.StoreLatency
		if missed {
			x.missFree = append(x.missFree, fillAt)
			if fillAt < x.missMin || len(x.missFree) == 1 {
				x.missMin = fillAt
			}
		}
	case isa.Branch:
		e.completeAt = now + co.lat[isa.Branch]
		if e.mispredict {
			until := e.completeAt + cfg.MispredictPenalty
			if until > x.fetchStallUntil {
				x.fetchStallUntil = until
			}
		}
	default:
		e.completeAt = now + co.lat[e.kind]
	}
}

// l3Access routes an L3 lookup through the way-partition mask when an
// isolation policy is active; otherwise it is exactly the historical
// unmasked access.
func (c *Chip) l3Access(x *Context, addr uint64) bool {
	if c.iso == nil {
		return c.l3.Access(addr, true)
	}
	return c.l3.AccessMasked(addr, true, c.iso.wayMask[x.gid])
}

// memRequest admits a DRAM request for context x at cycle now, first
// shaping it through the context's token bucket when one is configured.
// The throttle delay is added to x's completion time rather than to the
// controller's admission time: reserving the shared FIFO at the shaped
// (future) arrival would block every other context's requests behind the
// throttled one, inverting the isolation. Relief for the victims comes
// from back-pressure — the throttled context's loads complete later, its
// MSHRs stay full longer, and its DRAM request rate falls.
func (c *Chip) memRequest(x *Context, now uint64) uint64 {
	done := c.memc.Request(now)
	if c.iso != nil {
		done += c.iso.tb[x.gid].Admit(now) - now
	}
	return done
}

// streamHit reports whether line continues a tracked ascending stream of
// context x, training the prefetcher either way.
func (x *Context) streamHit(line, now uint64) bool {
	if x.streams == nil {
		return false
	}
	for i, last := range x.streams {
		if line == last+1 {
			x.streams[i] = line
			x.streamLRU[i] = now
			return true
		}
	}
	// Allocate the least-recently-used stream slot.
	victim, oldest := 0, ^uint64(0)
	for i, st := range x.streamLRU {
		if x.streams[i] == ^uint64(0) {
			victim = i
			break
		}
		if st < oldest {
			victim, oldest = i, st
		}
	}
	x.streams[victim] = line
	x.streamLRU[victim] = now
	return false
}

// loadLatency walks the hierarchy for a load, returning the load-to-use
// latency and whether it missed the L1D (occupying an MSHR).
func (co *Core) loadLatency(x *Context, addr uint64, now uint64) (lat uint64, missedL1 bool) {
	cfg := &co.chip.cfg
	x.ctr.Loads++
	if !x.dtlb.Access(addr) {
		lat += cfg.DTLBMissPenalty
		x.ctr.DTLBLoadMisses++
	}
	if co.l1d.Access(addr, true) {
		x.ctr.L1DHits++
		return lat + co.l1Lat, false
	}
	x.ctr.L1DMisses++
	streamed := x.streamHit(addr>>6, now)
	if co.l2.Access(addr, true) {
		x.ctr.L2Hits++
		return lat + co.l2Lat, true
	}
	x.ctr.L2Misses++
	if co.chip.l3Access(x, addr) {
		x.ctr.L3Hits++
		return lat + cfg.L3.LatencyCycles, true
	}
	x.ctr.L3Misses++
	x.ctr.MemAccesses++
	complete := co.chip.memRequest(x, now)
	if streamed {
		// The stream prefetcher fetched this line ahead of the demand:
		// the DRAM base latency is hidden, but bandwidth queueing (and any
		// throttle delay) is not, and a prefetched DRAM line is never
		// faster than an L3 hit.
		l := co.l2Lat + (complete - now - cfg.MemBaseLatency)
		if l < cfg.L3.LatencyCycles {
			l = cfg.L3.LatencyCycles
		}
		return lat + l, true
	}
	return lat + cfg.L3.LatencyCycles + (complete - now), true
}

// storeAccess performs a store's hierarchy side effects (write-allocate
// fills, DRAM bandwidth consumption), returning when the fill completes and
// whether the L1 missed (occupying an MSHR until fillAt).
func (co *Core) storeAccess(x *Context, addr uint64, now uint64) (fillAt uint64, missedL1 bool) {
	cfg := &co.chip.cfg
	x.ctr.Stores++
	if !x.dtlb.Access(addr) {
		x.ctr.DTLBStoreMisses++
	}
	if co.l1d.Access(addr, true) {
		x.ctr.L1DHits++
		return now, false
	}
	x.ctr.L1DMisses++
	streamed := x.streamHit(addr>>6, now)
	if co.l2.Access(addr, true) {
		x.ctr.L2Hits++
		return now + co.l2Lat, true
	}
	x.ctr.L2Misses++
	if co.chip.l3Access(x, addr) {
		x.ctr.L3Hits++
		return now + cfg.L3.LatencyCycles, true
	}
	x.ctr.L3Misses++
	x.ctr.MemAccesses++
	complete := co.chip.memRequest(x, now)
	if streamed {
		l := co.l2Lat + (complete - now - cfg.MemBaseLatency)
		if l < cfg.L3.LatencyCycles {
			l = cfg.L3.LatencyCycles
		}
		return now + l, true
	}
	return complete, true
}

// fetch allocates up to FetchWidth micro-ops per cycle. Front-end priority
// alternates between the contexts each cycle, but the front end is
// work-conserving: allocation slots the primary context cannot use (stall,
// full ROB, idle) flow to its sibling. This mirrors how a tiny
// loop-buffer-resident Ruler on real hardware leaves fetch bandwidth to its
// co-runner, and is what keeps the functional-unit Rulers decoupled from
// the front-end dimension.
func (co *Core) fetch(now uint64) bool {
	cfg := &co.chip.cfg
	width := cfg.FetchWidth
	nc := len(co.ctxs)
	first := int((now + uint64(co.idx)) % uint64(nc))
	for t := 0; t < nc && width > 0; t++ {
		i := first + t
		if i >= nc {
			i -= nc
		}
		x := co.ctxs[i]
		if x == nil || !x.active || x.fetchStallUntil > now {
			continue
		}
		width -= co.fetchInto(x, now, width)
	}
	return width != cfg.FetchWidth
}

// fetchInto allocates up to width micro-ops into x's ROB, returning the
// number allocated.
func (co *Core) fetchInto(x *Context, now uint64, width int) int {
	cfg := &co.chip.cfg
	u := &x.uop // per-context scratch: a local would escape through Stream.Next
	for n := 0; n < width; n++ {
		if x.tail-x.head >= uint64(cfg.ROBSize) {
			return n
		}
		*u = isa.Uop{}
		x.stream.Next(u)

		if u.ICacheMiss {
			x.ctr.ICacheMisses++
			until := now + cfg.ICacheMissPenalty
			if until > x.fetchStallUntil {
				x.fetchStallUntil = until
			}
		}
		if u.ITLBMiss {
			x.ctr.ITLBMisses++
			until := now + cfg.ITLBMissPenalty
			if until > x.fetchStallUntil {
				x.fetchStallUntil = until
			}
		}

		seq := x.tail
		e := x.entry(seq)
		*e = robEntry{kind: u.Kind, ports: co.portMap[u.Kind], dep1: noDep, dep2: noDep}
		if d := uint64(u.Dep1); d > 0 && d <= seq {
			e.dep1 = seq - d
		}
		if d := uint64(u.Dep2); d > 0 && d <= seq {
			e.dep2 = seq - d
		}
		switch u.Kind {
		case isa.Nop:
			// Nops consume front-end and ROB bandwidth but no port.
			e.issued = true
			e.notReadyUntil = ^uint64(0)
			e.completeAt = now
		case isa.Load, isa.Store:
			e.addr = x.addrBase | u.Addr
		case isa.Branch:
			x.ctr.Branches++
			if !co.pred.Lookup(u.BrTag*2654435761+x.brSalt, u.Taken) {
				e.mispredict = true
				x.ctr.BranchMispredicts++
			}
		}
		if u.Kind != isa.Nop {
			// New dispatchable entry: wake its bitmap slot (the previous
			// occupant retired issued, so the bit is currently clear).
			slot := seq & x.robMask
			x.awake[slot>>6] |= 1 << (slot & 63)
			x.unissued++
		}
		x.tail++

		if x.fetchStallUntil > now {
			return n + 1 // front-end stall takes effect immediately
		}
	}
	return width
}
