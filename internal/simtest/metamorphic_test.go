package simtest

import (
	"reflect"
	"testing"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/pmu"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// numSeeds is the width of every law sweep. The ISSUE floor is 20; keep it
// exactly there so the suite stays affordable under -race.
const numSeeds = 20

// nopSpec is a co-runner that consumes no shared resource: pure nops, no
// memory, no branches, no front-end misses. Used by the isolation law.
func nopSpec() *workload.Spec {
	s := &workload.Spec{
		Name:        "nop-partner",
		Suite:       workload.SpecINT,
		Mix:         workload.Mix{Nop: 1},
		MeanDepDist: 4,
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// TestDeterminism is the reproducibility law: for every seed, running the
// identical (workload, ruler, placement) configuration twice must produce a
// bit-identical PMU dump — hashed over every counter of every context.
func TestDeterminism(t *testing.T) {
	cfg := SmallIVB(2)
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0xD5)
		spec := RandomSpec(r, "rand-det")
		dim := rulers.Dimensions()[r.Intn(len(rulers.Dimensions()))]
		ruler := rulers.For(cfg, dim).WithIntensity(RandomIntensity(r))
		placement := RandomPlacement(r)
		opts := TinyOptions()
		opts.BaseSeed = seed + 1

		run := func() uint64 {
			res, err := profile.Colocate(cfg, profile.App(spec), profile.Rulers(ruler, 1), placement, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return HashRun(res)
		}
		h1, h2 := run(), run()
		if h1 != h2 {
			t.Errorf("seed %d (%s vs %s, %s): hashes differ: %016x != %016x",
				seed, spec.Name, ruler.Name, placement, h1, h2)
		}
	}
}

// TestDegradationNonNegative is the contention-only-takes law: co-running
// with a Ruler never speeds an application up beyond measurement noise.
// Shared-structure aliasing (branch predictor, replacement state) can move
// IPC a hair in either direction at Tiny windows, hence the small epsilon.
func TestDegradationNonNegative(t *testing.T) {
	const eps = 0.01
	cfg := SmallIVB(2)
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x9E)
		spec := RandomSpec(r, "rand-deg")
		dim := rulers.Dimensions()[r.Intn(len(rulers.Dimensions()))]
		ruler := rulers.For(cfg, dim)
		placement := RandomPlacement(r)
		opts := TinyOptions()
		opts.BaseSeed = seed + 1

		solo, err := profile.Solo(cfg, profile.App(spec), opts)
		if err != nil {
			t.Fatalf("seed %d solo: %v", seed, err)
		}
		co, err := profile.Colocate(cfg, profile.App(spec), profile.Rulers(ruler, 1), placement, opts)
		if err != nil {
			t.Fatalf("seed %d colocate: %v", seed, err)
		}
		deg := profile.Degradation(solo.AppIPC, co.AppIPC)
		t.Logf("seed %2d %s %-8s deg=%+.4f", seed, placement, ruler.Name, deg)
		if deg < -eps {
			t.Errorf("seed %d: co-location with %s (%s) sped the app up: degradation %.4f < -%.2f",
				seed, ruler.Name, placement, deg, eps)
		}
	}
}

// TestRulerIntensityMonotonicity is the pressure-dial law: raising a
// Ruler's duty cycle must not reduce the interference it inflicts on a
// co-runner, modulo measurement noise.
func TestRulerIntensityMonotonicity(t *testing.T) {
	const eps = 0.02
	cfg := SmallIVB(2)
	dims := rulers.Dimensions()
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x51)
		spec := RandomSpec(r, "rand-mono")
		dim := dims[int(seed)%len(dims)]
		placement := profile.SMT
		if dim.IsMemory() && r.Bool(0.5) {
			placement = profile.CMP // memory dims also contend cross-core
		}
		opts := TinyOptions()
		opts.BaseSeed = seed + 1

		solo, err := profile.Solo(cfg, profile.App(spec), opts)
		if err != nil {
			t.Fatalf("seed %d solo: %v", seed, err)
		}
		deg := func(intensity float64) float64 {
			ruler := rulers.For(cfg, dim).WithIntensity(intensity)
			res, err := profile.Colocate(cfg, profile.App(spec), profile.Rulers(ruler, 1), placement, opts)
			if err != nil {
				t.Fatalf("seed %d intensity %.1f: %v", seed, intensity, err)
			}
			return profile.Degradation(solo.AppIPC, res.AppIPC)
		}
		low, high := deg(0.3), deg(1.0)
		t.Logf("seed %2d %-8s %s low=%+.4f high=%+.4f", seed, dim, placement, low, high)
		if high < low-eps {
			t.Errorf("seed %d: %s ruler (%s) interference fell with intensity: deg(1.0)=%.4f < deg(0.3)=%.4f-%.2f",
				seed, dim, placement, high, low, eps)
		}
	}
}

// TestCrossContextIsolation is the no-shared-resource law: a CMP co-runner
// that issues only nops — touching no cache line, no port the app's core
// owns, no DRAM — must leave the app's counters *bit-identical* to its solo
// run. Any difference means state is leaking between contexts that share
// nothing architectural.
func TestCrossContextIsolation(t *testing.T) {
	cfg := SmallIVB(2)
	nop := nopSpec()
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x15)
		spec := RandomSpec(r, "rand-iso")
		opts := TinyOptions()
		opts.BaseSeed = seed + 1

		solo, err := profile.Solo(cfg, profile.App(spec), opts)
		if err != nil {
			t.Fatalf("seed %d solo: %v", seed, err)
		}
		co, err := profile.Colocate(cfg, profile.App(spec), profile.App(nop), profile.CMP, opts)
		if err != nil {
			t.Fatalf("seed %d colocate: %v", seed, err)
		}
		soloHash := HashCounters(solo.AppCounters...)
		coHash := HashCounters(co.AppCounters...)
		if soloHash != coHash {
			t.Errorf("seed %d: nop partner on another core perturbed the app's counters (solo %016x vs co %016x)",
				seed, soloHash, coHash)
			for _, pair := range diffFields(solo.AppCounters[0], co.AppCounters[0]) {
				t.Logf("  %s: solo %d co %d", pair.name, pair.a, pair.b)
			}
		}
	}
}

type fieldDiff struct {
	name string
	a, b uint64
}

func diffFields(a, b pmu.Counters) []fieldDiff {
	fa, fb := a.FieldList(), b.FieldList()
	var out []fieldDiff
	for i := range fa {
		if fa[i].Value != fb[i].Value {
			out = append(out, fieldDiff{fa[i].Name, fa[i].Value, fb[i].Value})
		}
	}
	return out
}

// TestScaleConsistency is the window-size law: a reduced measurement window
// (FastOptions) must agree with the full-scale window (DefaultOptions) on
// the *structure* of contention — which pairing hurts more — even if the
// point values drift. This is what licenses running the experiment suite at
// TestScale in CI.
func TestScaleConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale windows in short mode")
	}
	cfg := SmallIVB(2)
	mcf := mustSpec(t, "429.mcf")   // cache-thrashing: heavy SMT victim
	namd := mustSpec(t, "444.namd") // compute-dense: mild co-runner
	lbm := mustSpec(t, "470.lbm")   // bandwidth-bound: heavy aggressor

	degAt := func(opts profile.Options, a, b *workload.Spec) float64 {
		opts.Check = true
		solo, err := profile.Solo(cfg, profile.App(a), opts)
		if err != nil {
			t.Fatal(err)
		}
		co, err := profile.Colocate(cfg, profile.App(a), profile.App(b), profile.SMT, opts)
		if err != nil {
			t.Fatal(err)
		}
		return profile.Degradation(solo.AppIPC, co.AppIPC)
	}

	for _, scale := range []struct {
		name string
		opts profile.Options
	}{
		{"fast", profile.FastOptions()},
		{"full", profile.DefaultOptions()},
	} {
		heavy := degAt(scale.opts, mcf, lbm)  // mcf under a bandwidth hog
		light := degAt(scale.opts, namd, mcf) // namd barely shares ports with mcf
		t.Logf("%s: deg(mcf|lbm)=%.4f deg(namd|mcf)=%.4f", scale.name, heavy, light)
		if heavy <= 0.02 {
			t.Errorf("%s scale: mcf vs lbm degradation %.4f not clearly positive", scale.name, heavy)
		}
		if light < -0.02 {
			t.Errorf("%s scale: namd vs mcf degradation %.4f negative", scale.name, light)
		}
		if heavy <= light {
			t.Errorf("%s scale: ordering inverted: deg(mcf|lbm)=%.4f <= deg(namd|mcf)=%.4f",
				scale.name, heavy, light)
		}
	}
}

func mustSpec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelismIndependence is the scheduling-transparency law: the
// worker count is an execution detail, so a characterization sweep must
// produce bit-identical results at any Parallelism. Each seed gets a
// fresh profiler (and thus a fresh simulation cache) per worker count, so
// every cell genuinely re-simulates under the parallel schedule rather
// than reading the sequential run's memo.
func TestParallelismIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep in short mode")
	}
	cfg := SmallIVB(2)
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x7A)
		specs := []*workload.Spec{
			RandomSpec(r, "rand-par-a"),
			RandomSpec(r, "rand-par-b"),
		}
		placement := RandomPlacement(r)

		var baseline []profile.Characterization
		for _, workers := range []int{1, 2, 8} {
			opts := TinyOptions()
			opts.BaseSeed = seed + 1
			opts.Parallelism = workers
			got, err := profile.NewProfiler(cfg, opts).CharacterizeAll(specs, placement)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if baseline == nil {
				baseline = got
			} else if !reflect.DeepEqual(baseline, got) {
				t.Errorf("seed %d (%s): Parallelism=%d changed the characterization",
					seed, placement, workers)
			}
		}
	}
}
