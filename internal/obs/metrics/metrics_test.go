package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs", "requests") != c {
		t.Fatalf("re-registration returned a new counter")
	}

	v := r.CounterVec("by_route", "per route", "route", "class")
	v.With("/v1/predict", "2xx").Add(3)
	v.With("/healthz", "2xx").Inc()
	v.With("/v1/predict", "2xx").Inc()
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d series, want 2", len(snap))
	}
	// Sorted by label values: /healthz < /v1/predict.
	if snap[0].Labels[0] != "/healthz" || snap[0].Count != 1 {
		t.Errorf("series[0] = %+v", snap[0])
	}
	if snap[1].Labels[0] != "/v1/predict" || snap[1].Count != 4 {
		t.Errorf("series[1] = %+v", snap[1])
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(1)
	g.Add(-0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

// TestHistogramBuckets pins the le-semantics of bucket assignment:
// a value equal to a bound counts into that bound's bucket, values above
// every bound land in +Inf, and exposition buckets are cumulative.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency ms", []float64{1, 5, 25})

	for _, v := range []float64{0.2, 1, 1.0001, 5, 24.9, 25, 26, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 4 {
		t.Fatalf("got %d buckets, want 4", len(s.Buckets))
	}
	// ≤1: {0.2, 1} · ≤5: +{1.0001, 5} · ≤25: +{24.9, 25} · +Inf: +{26, 1000}
	wantCum := []uint64{2, 4, 6, 8}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, s.Buckets[i].UpperBound, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	wantSum := 0.2 + 1 + 1.0001 + 5 + 24.9 + 25 + 26 + 1000
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if s.Buckets[1].Count != 8000 {
		t.Fatalf("+Inf cumulative = %d, want 8000", s.Buckets[1].Count)
	}
	if s.Buckets[0].Count != 8*11*50 { // values 0..10 inclusive, 50 rounds each
		t.Fatalf("le=10 bucket = %d, want %d", s.Buckets[0].Count, 8*11*50)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	mustPanic(t, "kind mismatch", func() { r.Gauge("x", "") })
	mustPanic(t, "invalid name", func() { r.Counter("bad name", "") })
	r.CounterVec("v", "", "a")
	mustPanic(t, "label mismatch", func() { r.CounterVec("v", "", "b") })
	r.Histogram("h", "", []float64{1, 2})
	mustPanic(t, "bound mismatch", func() { r.Histogram("h", "", []float64{1, 3}) })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("h2", "", []float64{2, 1}) })
	v := r.CounterVec("v2", "", "a", "b")
	mustPanic(t, "arity mismatch", func() { v.With("only-one") })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "sorted last").Add(9)
	v := r.CounterVec("aa_requests", "per-route requests", "route", "class")
	v.With("/v1/predict", "2xx").Add(7)
	v.With(`/we"ird\n`, "5xx").Inc()
	r.Gauge("mid_gauge", "a gauge").Set(1.25)
	r.GaugeFunc("fn_gauge", "callback gauge", func() float64 { return 42 })
	h := r.Histogram("lat_ms", "latency", []float64{0.5, 10})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	want := strings.Join([]string{
		"# TYPE aa_requests counter",
		"# HELP aa_requests per-route requests",
		`aa_requests_total{route="/v1/predict",class="2xx"} 7`,
		`aa_requests_total{route="/we\"ird\\n",class="5xx"} 1`,
		"# TYPE fn_gauge gauge",
		"# HELP fn_gauge callback gauge",
		"fn_gauge 42",
		"# TYPE lat_ms histogram",
		"# HELP lat_ms latency",
		`lat_ms_bucket{le="0.5"} 1`,
		`lat_ms_bucket{le="10"} 2`,
		`lat_ms_bucket{le="+Inf"} 3`,
		"lat_ms_count 3",
		"lat_ms_sum 103.5",
		"# TYPE mid_gauge gauge",
		"# HELP mid_gauge a gauge",
		"mid_gauge 1.25",
		"# TYPE zz_last counter",
		"# HELP zz_last sorted last",
		"zz_last_total 9",
		"# EOF",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Deterministic across calls.
	var again bytes.Buffer
	if err := r.WriteOpenMetrics(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != got {
		t.Fatalf("exposition not deterministic")
	}
}
