package ctrl

import "repro/internal/ctrl/drift"

// The CUSUM detector itself lives in the leaf package internal/ctrl/drift
// so the simulator (internal/cluster, which this package imports for the
// hot-swap actuator) can embed one per shard without an import cycle.
// These aliases keep the controller-facing API in one place.

// DetectorConfig parameterises the drift detector; see drift.Config.
type DetectorConfig = drift.Config

// DetectorStats counts a detector's lifetime activity; see drift.Stats.
type DetectorStats = drift.Stats

// Detector is the per-cell windowed CUSUM test; see drift.Detector.
type Detector = drift.Detector

// Detector defaults, re-exported from the drift package.
const (
	DefaultMinSamples = drift.DefaultMinSamples
	DefaultAllowance  = drift.DefaultAllowance
	DefaultThreshold  = drift.DefaultThreshold
)

// NewDetector builds a detector with the (defaulted) config.
func NewDetector(cfg DetectorConfig) *Detector { return drift.New(cfg) }
