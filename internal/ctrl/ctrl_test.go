package ctrl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs/timeline"
	"repro/internal/profile"
	"repro/internal/qosd"
	"repro/internal/sim/pmu"
	"repro/internal/surrogate"
)

// fakeSource records the apps it was asked to refresh and hands back
// canned models (or a canned error).
type fakeSource struct {
	mu     sync.Mutex
	calls  [][]string
	models map[string]*surrogate.Model
	err    error
}

func (f *fakeSource) Recharacterize(_ context.Context, apps []string) (map[string]*surrogate.Model, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, append([]string(nil), apps...))
	if f.err != nil {
		return nil, f.err
	}
	out := make(map[string]*surrogate.Model, len(apps))
	for _, app := range apps {
		out[app] = f.models[app]
	}
	return out, nil
}

// driftController builds a controller over a synthetic world's tiered
// predictor, with a fake source serving refreshed models for every app.
func driftController(t *testing.T, src *fakeSource) (*Controller, *cluster.TieredPredictor) {
	t.Helper()
	const nLat, nBatch, maxInst = 2, 2, 4
	set, tbl, err := cluster.SyntheticWorld(nLat, nBatch, maxInst, 11)
	if err != nil {
		t.Fatal(err)
	}
	tiered := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	if src.models == nil {
		src.models = make(map[string]*surrogate.Model)
		for app, m := range set.Models {
			refreshed := *m
			src.models[app] = &refreshed
		}
	}
	return New(Config{
		Detector: DetectorConfig{MinSamples: 2, Threshold: 0.1},
		Source:   src,
		Tiered:   tiered,
	}), tiered
}

// confirmDrift streams out-of-bound samples until the controller flags
// the app.
func confirmDrift(t *testing.T, c *Controller, app string, cell int) {
	t.Helper()
	pred := cluster.Prediction{Deg: 0.1, Bound: 0.01, Tier: cluster.TierSurrogate}
	for i := 0; i < 10; i++ {
		if c.Observe(app, cell, 0.5, pred) {
			return
		}
	}
	t.Fatalf("drift on %q cell %d never confirmed", app, cell)
}

func TestControllerStepSwapsAndResets(t *testing.T) {
	src := &fakeSource{}
	c, tiered := driftController(t, src)
	if gen := tiered.Generation(); gen != 1 {
		t.Fatalf("initial generation = %d, want 1", gen)
	}

	confirmDrift(t, c, "latsvc-00", 3)
	confirmDrift(t, c, "latsvc-01", 7)
	if got := c.Pending(); len(got) != 2 || got[0] != "latsvc-00" || got[1] != "latsvc-01" {
		t.Fatalf("Pending = %v", got)
	}

	res, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 || res.Apps[0] != "latsvc-00" || res.Apps[1] != "latsvc-01" {
		t.Fatalf("Step apps = %v", res.Apps)
	}
	if res.Gen != 2 {
		t.Fatalf("Step gen = %d, want 2 (one bump for the batch)", res.Gen)
	}
	if gen := tiered.Generation(); gen != 2 {
		t.Fatalf("tiered generation = %d, want 2", gen)
	}
	if len(src.calls) != 1 {
		t.Fatalf("source called %d times, want 1", len(src.calls))
	}
	if got := c.Pending(); len(got) != 0 {
		t.Fatalf("Pending after Step = %v, want empty", got)
	}

	// Predictions through the swapped predictor carry the new generation.
	p, err := tiered.Predict("latsvc-00", "batch-00", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gen != 2 {
		t.Fatalf("post-swap Prediction.Gen = %d, want 2", p.Gen)
	}

	st := c.Stats()
	if st.Recharacterized != 2 || st.Swaps != 1 || st.Detections != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Detector state for the flagged cells was reset: a fresh single
	// in-bound sample neither panics nor re-confirms.
	if c.Observe("latsvc-00", 3, 0.1, cluster.Prediction{Deg: 0.1}) {
		t.Fatal("in-bound sample after reset confirmed drift")
	}
	// And drift is re-detectable from scratch on the same cell.
	confirmDrift(t, c, "latsvc-00", 3)
}

func TestControllerStepNoPending(t *testing.T) {
	src := &fakeSource{}
	c, _ := driftController(t, src)
	res, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 0 || res.Gen != 0 {
		t.Fatalf("idle Step = %+v, want zero", res)
	}
	if len(src.calls) != 0 {
		t.Fatal("idle Step invoked the source")
	}
}

func TestControllerFailedStepRetries(t *testing.T) {
	src := &fakeSource{err: errors.New("engine down")}
	c, tiered := driftController(t, src)
	confirmDrift(t, c, "latsvc-00", 3)

	if _, err := c.Step(context.Background()); err == nil {
		t.Fatal("Step should surface the source error")
	}
	if gen := tiered.Generation(); gen != 1 {
		t.Fatalf("failed Step bumped generation to %d", gen)
	}
	if got := c.Pending(); len(got) != 1 || got[0] != "latsvc-00" {
		t.Fatalf("Pending after failed Step = %v, want [latsvc-00]", got)
	}
	if st := c.Stats(); st.Recharacterized != 0 || st.Swaps != 0 {
		t.Fatalf("failed Step counted work: %+v", st)
	}

	// Clear the fault; the retry drains the same flags.
	src.mu.Lock()
	src.err = nil
	src.mu.Unlock()
	res, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 1 || res.Apps[0] != "latsvc-00" || res.Gen != 2 {
		t.Fatalf("retry Step = %+v", res)
	}
}

func TestControllerWithoutTiered(t *testing.T) {
	src := &fakeSource{models: map[string]*surrogate.Model{"a": {App: "a"}}}
	c := New(Config{Detector: DetectorConfig{MinSamples: 2, Threshold: 0.1}, Source: src})
	confirmDrift(t, c, "a", 0)
	res, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 1 || res.Gen != 0 {
		t.Fatalf("detector-only Step = %+v", res)
	}
	if st := c.Stats(); st.Swaps != 0 || st.Recharacterized != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDegradationFromSamples(t *testing.T) {
	samples := []timeline.Sample{
		{Delta: pmu.Counters{Instructions: 600, Cycles: 1000}},
		{Delta: pmu.Counters{Instructions: 200, Cycles: 1000}},
	}
	// Aggregate IPC = 800/2000 = 0.4; solo 0.8 → degradation 0.5.
	deg, ok := DegradationFromSamples(samples, 0.8)
	if !ok || deg != 0.5 {
		t.Fatalf("DegradationFromSamples = %g, %v; want 0.5, true", deg, ok)
	}
	if _, ok := DegradationFromSamples(nil, 0.8); ok {
		t.Fatal("no samples should not be observable")
	}
	if _, ok := DegradationFromSamples(samples, 0); ok {
		t.Fatal("soloIPC=0 should not be observable")
	}
	if _, ok := DegradationFromSamples([]timeline.Sample{{}}, 0.8); ok {
		t.Fatal("zero cycles should not be observable")
	}
}

func TestObserveTimelineFeedsDetector(t *testing.T) {
	src := &fakeSource{models: map[string]*surrogate.Model{"a": {App: "a"}}}
	c := New(Config{Detector: DetectorConfig{MinSamples: 2, Threshold: 0.1}, Source: src})
	samples := []timeline.Sample{{Delta: pmu.Counters{Instructions: 400, Cycles: 1000}}}
	pred := cluster.Prediction{Deg: 0.1, Bound: 0.01}
	// Observed degradation 1 − 0.4/0.8 = 0.5 ≫ 0.1 ± 0.01.
	confirmed := false
	for i := 0; i < 10 && !confirmed; i++ {
		confirmed = c.ObserveTimeline("a", 0, samples, 0.8, pred)
	}
	if !confirmed {
		t.Fatal("timeline-derived drift never confirmed")
	}
	// Unobservable samples leave the detector untouched.
	if c.ObserveTimeline("a", 1, nil, 0.8, pred) {
		t.Fatal("empty timeline confirmed drift")
	}
	if got := c.Stats().Observations; got == 0 {
		t.Fatal("timeline observations not counted")
	}
}

func TestDaemonSourceRecharacterizes(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]qosd.CharacterizeRequest)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/characterize" {
			http.NotFound(w, r)
			return
		}
		var req qosd.CharacterizeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		seen[req.App] = req
		mu.Unlock()
		var resp qosd.CharacterizeResponse
		resp.Profile.App = req.App
		resp.Profile.Placement = profile.SMT
		resp.Profile.SoloIPC = 1.5
		resp.Profile.Sen[0] = 0.3
		resp.Profile.Con[0] = 0.2
		json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()

	src := &DaemonSource{Client: qosd.NewClient(srv.URL, srv.Client()), Parallelism: 2}
	models, err := src.Recharacterize(context.Background(), []string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("got %d models, want 2", len(models))
	}
	for _, app := range []string{"alpha", "beta"} {
		req, ok := seen[app]
		if !ok {
			t.Fatalf("daemon never saw %q", app)
		}
		if !req.Register {
			t.Fatalf("%q characterized without Register", app)
		}
		m := models[app]
		if m == nil || m.App != app || m.SoloIPC != 1.5 {
			t.Fatalf("model for %q = %+v", app, m)
		}
		if got := m.Sen[0].At(1); got != 0.3 {
			t.Fatalf("Sen[0].At(1) = %g, want the measured 0.3", got)
		}
		if m.Sen[0].MaxAbsErr != DefaultDaemonCurveErr {
			t.Fatalf("curve error = %g, want %g", m.Sen[0].MaxAbsErr, DefaultDaemonCurveErr)
		}
	}
}

func TestModelFromCharacterization(t *testing.T) {
	var ch profile.Characterization
	ch.App = "x"
	ch.Placement = profile.SMT
	ch.SoloIPC = 2
	ch.Sen[1] = 0.4
	ch.Con[2] = 0.6
	m := modelFromCharacterization(ch, 0.05)
	if m.App != "x" || m.SoloIPC != 2 {
		t.Fatalf("lifted model = %+v", m)
	}
	for d := range m.Sen {
		if got := m.Sen[d].At(1); got != ch.Sen[d] {
			t.Fatalf("Sen[%d].At(1) = %g, want %g", d, got, ch.Sen[d])
		}
		if got := m.Con[d].At(1); got != ch.Con[d] {
			t.Fatalf("Con[%d].At(1) = %g, want %g", d, got, ch.Con[d])
		}
		if m.Sen[d].MaxAbsErr != 0.05 || m.Con[d].MeanAbsErr != 0.05 {
			t.Fatalf("dim %d error bounds not stamped", d)
		}
	}
	if len(m.Intensities) != 1 || m.Intensities[0] != 1 {
		t.Fatalf("Intensities = %v", m.Intensities)
	}
}

func TestSweepSourceMissingSpec(t *testing.T) {
	src := &SweepSource{Profiler: nil}
	if _, err := src.Recharacterize(context.Background(), []string{"a"}); err == nil {
		t.Fatal("nil profiler should error")
	}
	src = &SweepSource{Profiler: &profile.Profiler{}}
	_, err := src.Recharacterize(context.Background(), []string{"ghost"})
	if err == nil {
		t.Fatal("missing spec should error")
	}
	if want := fmt.Sprintf("%q", "ghost"); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q should name the app", err)
	}
}
