package cluster

import (
	"strings"
	"testing"
)

// TestResultSortedApps pins the stable ordering helper.
func TestResultSortedApps(t *testing.T) {
	r := Result{PerApp: map[string]float64{"b": 1, "a": 2}}
	apps := r.SortedApps()
	if len(apps) != 2 || apps[0] != "a" || apps[1] != "b" {
		t.Errorf("SortedApps = %v", apps)
	}
}

// TestViolationAccounting checks the violation magnitude formula
// ((target − actual)/target) against a hand-computed case.
func TestViolationAccounting(t *testing.T) {
	tbl := NewTable([]string{"svc"}, []string{"b"}, 1)
	// Predicted degradation 2% admits 1 instance at a 95% target, but the
	// actual degradation is 10% → QoS 0.90 < 0.95.
	tbl.Set("svc", "b", 1, Entry{Actual: 0.10, Predicted: 0.02})
	s := &Study{
		Table:             tbl,
		ServersPerApp:     10,
		ThreadsPerServer:  6,
		ContextsPerServer: 12,
		Seed:              1,
	}
	r, err := s.Run(PolicySMiTe, QoSAvg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r.ViolationFrac != 1 {
		t.Errorf("every co-location should violate, got %.3f", r.ViolationFrac)
	}
	want := (0.95 - 0.90) / 0.95
	if d := r.ViolationMax - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("violation magnitude %.5f, want %.5f", r.ViolationMax, want)
	}
	if !strings.Contains(QoSAvg.String(), "average") {
		t.Error("QoS kind name")
	}
}
