package workload

import (
	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

// Gen generates the deterministic micro-op stream for one hardware context
// running the application described by a Spec. It implements engine.Stream.
type Gen struct {
	spec *Spec
	rng  *xrand.Rand

	// cumulative mix thresholds aligned with Mix.kinds order
	cum   [9]float64
	kinds [9]isa.UopKind

	footWords uint64 // main footprint in 8-byte words
	hotWords  uint64 // hot region in 8-byte words
	warmWords uint64 // warm region in 8-byte words
	stridePos uint64

	// branch bias bits derived from (tag, spec number): all threads of an
	// application share its static branch behaviour.
	biasSalt uint64

	// depGeo samples dependency distances; one sampler per Gen hoists the
	// log constant out of the per-uop path.
	depGeo xrand.GeometricSampler
}

// NewGen builds a generator for spec with the given seed. Distinct seeds
// yield decorrelated but statistically identical streams (threads of a
// multithreaded app, repeated runs).
func NewGen(spec *Spec, seed uint64) *Gen {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &Gen{
		spec:     spec,
		rng:      xrand.New(seed ^ uint64(spec.Number+1)*0x9E3779B97F4A7C15),
		biasSalt: uint64(spec.Number+1) * 0xA24BAED4963EE407,
		depGeo:   xrand.NewGeometric(spec.MeanDepDist),
	}
	c := 0.0
	for i, kf := range spec.Mix.kinds() {
		c += kf.f
		g.cum[i] = c
		g.kinds[i] = kf.k
	}
	g.footWords = max64(spec.FootprintBytes/8, 1)
	g.hotWords = max64(spec.HotBytes/8, 1)
	g.warmWords = max64(spec.WarmBytes/8, 1)
	if spec.FootprintBytes > 0 {
		// Start stride walks at a seed-dependent offset so co-scheduled
		// instances do not march in lockstep.
		g.stridePos = (g.rng.Uint64n(g.footWords) * 8) &^ 63
	}
	return g
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Spec returns the generator's application model.
func (g *Gen) Spec() *Spec { return g.spec }

// PrewarmFootprint declares the regions a long-running execution keeps
// resident: the hot and warm reuse regions always, and the main footprint
// only when its access pattern actually re-touches it (random or
// mostly-random mixed). A stride walk has no reuse before wraparound, so
// installing it would fake residency it never earns.
func (g *Gen) PrewarmFootprint() []uint64 {
	var out []uint64
	if g.spec.HotFrac > 0 {
		out = append(out, g.spec.HotBytes)
	}
	if g.spec.WarmFrac > 0 {
		out = append(out, g.spec.WarmBytes)
	}
	if g.mainReuses() {
		out = append(out, g.spec.FootprintBytes)
	}
	return out
}

// mainReuses reports whether the main footprint is re-touched on the
// timescale of a measurement window: random patterns always are, strided
// patterns only when the walk wraps quickly enough to revisit lines.
func (g *Gen) mainReuses() bool {
	s := g.spec
	if s.Pattern == PatternRandom {
		return true
	}
	if s.Pattern == PatternMixed && s.RandomFrac >= 0.5 {
		return true
	}
	if s.StrideBytes == 0 {
		return false
	}
	return s.FootprintBytes/s.StrideBytes <= 256*1024 // accesses per wrap
}

// Next fills u with the next micro-op of the stream.
func (g *Gen) Next(u *isa.Uop) {
	s := g.spec
	r := g.rng.Float64()
	kind := isa.Nop
	for i := range g.cum {
		if r < g.cum[i] {
			kind = g.kinds[i]
			break
		}
	}
	u.Kind = kind

	switch kind {
	case isa.Nop:
		// No dependencies, no operands.
	case isa.Load:
		u.Addr = g.nextAddr()
		// Only pointer-chasing loads carry an address dependency; the
		// rest are address-independent and overlap (MLP).
		if g.rng.Bool(s.PointerChaseFrac) {
			u.Dep1 = g.depDist()
		}
	case isa.Store:
		// The stored value depends on recent computation.
		u.Dep1 = g.depDist()
		u.Addr = g.nextAddr()
	case isa.Branch:
		// The compare operand depends on recent computation.
		u.Dep1 = g.depDist()
		tag := uint32(g.rng.Intn(s.BranchTags))
		u.BrTag = tag
		// Each static branch has a fixed bias direction; the outcome
		// follows the bias with probability BranchBias.
		bias := (uint64(tag)*0x9E3779B97F4A7C15^g.biasSalt)>>17&1 == 1
		if g.rng.Bool(s.BranchBias) {
			u.Taken = bias
		} else {
			u.Taken = !bias
		}
	default:
		// ALU ops: independent with probability IndepFrac, otherwise a
		// geometric backward dependency (and sometimes a second one).
		if !g.rng.Bool(s.IndepFrac) {
			u.Dep1 = g.depDist()
			if s.Dep2Prob > 0 && g.rng.Bool(s.Dep2Prob) {
				u.Dep2 = g.depDist()
			}
		}
	}

	// Front-end events from the code footprint.
	if s.ICacheMissRate > 0 && g.rng.Bool(s.ICacheMissRate) {
		u.ICacheMiss = true
	}
	if s.ITLBMissRate > 0 && g.rng.Bool(s.ITLBMissRate) {
		u.ITLBMiss = true
	}
}

func (g *Gen) depDist() uint16 {
	d := g.depGeo.Sample(g.rng)
	if d > 64 {
		d = 64
	}
	return uint16(d)
}

// nextAddr produces the next data address (8-byte aligned) according to the
// spec's three-level locality model: HotFrac of accesses hit the hot
// region, WarmFrac the warm region, and the rest follow the main pattern
// over the full footprint. The regions nest at the bottom of the address
// space (hot ⊂ warm ⊂ main), as reuse regions do in real programs.
func (g *Gen) nextAddr() uint64 {
	s := g.spec
	if s.HotFrac > 0 || s.WarmFrac > 0 {
		r := g.rng.Float64()
		if r < s.HotFrac {
			return g.rng.Uint64n(g.hotWords) * 8
		}
		if r < s.HotFrac+s.WarmFrac {
			return g.rng.Uint64n(g.warmWords) * 8
		}
	}
	random := false
	switch s.Pattern {
	case PatternRandom:
		random = true
	case PatternStride:
		random = false
	case PatternMixed:
		random = g.rng.Bool(s.RandomFrac)
	}
	if random {
		return g.rng.Uint64n(g.footWords) * 8
	}
	g.stridePos += s.StrideBytes
	if g.stridePos >= s.FootprintBytes {
		g.stridePos %= s.FootprintBytes
	}
	return g.stridePos &^ 7
}
