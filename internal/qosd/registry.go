package qosd

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/smite"
)

// Registry is the daemon's in-memory store of application profiles and
// the trained model. It is safe for concurrent use: reads take a shared
// lock, uploads take an exclusive one. Re-uploading a profile replaces
// the previous one by application name.
type Registry struct {
	mu       sync.RWMutex
	profiles map[string]smite.Characterization
	model    smite.Model
	hasModel bool
	// gen increments on every mutation; prediction memo keys include it so
	// cached results can never outlive the profiles they were computed from.
	gen uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{profiles: make(map[string]smite.Characterization)}
}

// LoadProfiles reads a persisted profile file (smite.SaveProfiles format)
// into the registry. Errors are smite's typed load errors.
func (r *Registry) LoadProfiles(src io.Reader) (added int, err error) {
	chars, err := smite.LoadProfiles(src)
	if err != nil {
		return 0, err
	}
	r.AddProfiles(chars)
	return len(chars), nil
}

// AddProfiles stores characterizations already in memory, replacing any
// existing profile with the same application name.
func (r *Registry) AddProfiles(chars []smite.Characterization) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range chars {
		r.profiles[c.App] = c
	}
	r.gen++
}

// LoadModel reads a persisted model file (smite.SaveModel format).
func (r *Registry) LoadModel(src io.Reader) error {
	m, err := smite.LoadModel(src)
	if err != nil {
		return err
	}
	r.SetModel(m)
	return nil
}

// SetModel installs a trained model.
func (r *Registry) SetModel(m smite.Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.model = m
	r.hasModel = true
	r.gen++
}

// Profile returns the named characterization.
func (r *Registry) Profile(app string) (smite.Characterization, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.profiles[app]
	return c, ok
}

// Model returns the trained model, or false if none is loaded.
func (r *Registry) Model() (smite.Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.model, r.hasModel
}

// modelGen returns the trained model together with the registry
// generation it belongs to, resolved under one lock so the pair stays
// consistent while uploads race. Callers that only need the model use
// Model.
func (r *Registry) modelGen() (smite.Model, uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.model, r.gen, r.hasModel
}

// Len returns the number of registered profiles.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.profiles)
}

// Apps returns the registered application names, sorted.
func (r *Registry) Apps() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.profiles))
	for name := range r.profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// snapshot resolves everything one prediction needs under a single shared
// lock, so the profiles, model and generation are mutually consistent
// even while uploads race.
func (r *Registry) snapshot(victim, aggressor string) (v, a smite.Characterization, m smite.Model, gen uint64, err *APIError) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, okV := r.profiles[victim]
	if !okV {
		return v, a, m, 0, &APIError{Status: 404, Code: CodeUnknownProfile,
			Message: fmt.Sprintf("no profile registered for victim %q", victim)}
	}
	a, okA := r.profiles[aggressor]
	if !okA {
		return v, a, m, 0, &APIError{Status: 404, Code: CodeUnknownProfile,
			Message: fmt.Sprintf("no profile registered for aggressor %q", aggressor)}
	}
	if !r.hasModel {
		return v, a, m, 0, &APIError{Status: 503, Code: CodeNoModel,
			Message: "no trained model loaded"}
	}
	return v, a, r.model, r.gen, nil
}

// PartialProfileName is the registry naming convention for
// partial-occupancy sensitivity profiles: the Sen(n) profile of app
// measured with n Ruler instances is registered as "app#n". The plain
// name remains the full-occupancy characterization.
func PartialProfileName(app string, instances int) string {
	return fmt.Sprintf("%s#%d", app, instances)
}
