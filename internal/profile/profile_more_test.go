package profile

import (
	"testing"

	"repro/internal/rulers"
	"repro/internal/workload"
)

func TestDegradationHelper(t *testing.T) {
	if d := Degradation(2, 1); d != 0.5 {
		t.Errorf("Degradation(2,1) = %g", d)
	}
	if d := Degradation(0, 1); d != 0 {
		t.Errorf("zero solo IPC should yield 0, got %g", d)
	}
	if d := Degradation(1, 1.1); d >= 0 {
		t.Error("speed-ups should be negative degradations")
	}
}

func TestJobWrappers(t *testing.T) {
	spec, err := workload.ByName("web-search")
	if err != nil {
		t.Fatal(err)
	}
	if j := App(spec); j.Name() != "web-search" || j.Instances() != spec.ThreadCount() {
		t.Errorf("App wrapper: %s/%d", j.Name(), j.Instances())
	}
	if j := AppThreads(spec, 3); j.Instances() != 3 {
		t.Errorf("AppThreads: %d", j.Instances())
	}
	if j := AppThreads(spec, 0); j.Instances() != 1 {
		t.Errorf("AppThreads clamps to 1, got %d", j.Instances())
	}
	r := rulers.FPAdd()
	if j := Rulers(r, 4); j.Name() != "FP_ADD" || j.Instances() != 4 {
		t.Errorf("Rulers wrapper: %s/%d", j.Name(), j.Instances())
	}
	if j := Rulers(r, 0); j.Instances() != 1 {
		t.Error("Rulers clamps to 1")
	}
}

func TestPlacementValidation(t *testing.T) {
	cfg := testConfig() // 2 cores
	spec, _ := workload.ByName("456.hmmer")
	opts := FastOptions()
	// SMT partner beyond core count.
	if _, err := Colocate(cfg, App(spec), Rulers(rulers.FPAdd(), 3), SMT, opts); err == nil {
		t.Error("oversubscribed SMT placement accepted")
	}
	// CMP needs job+partner cores.
	if _, err := Colocate(cfg, App(spec), Rulers(rulers.FPAdd(), 2), CMP, opts); err == nil {
		t.Error("oversubscribed CMP placement accepted")
	}
	// Job larger than the machine.
	ws, _ := workload.ByName("web-search") // 6 threads
	if _, err := Solo(cfg, App(ws), opts); err == nil {
		t.Error("6-thread job accepted on a 2-core machine")
	}
}

func TestSoloRunMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	p := NewProfiler(testConfig(), FastOptions())
	spec, _ := workload.ByName("456.hmmer")
	a, err := p.SoloRun(App(spec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SoloRun(App(spec))
	if err != nil {
		t.Fatal(err)
	}
	if a.AppIPC != b.AppIPC {
		t.Error("memoized solo run differed")
	}
}

func TestCharacterizationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	spec, _ := workload.ByName("445.gobmk")
	p1 := NewProfiler(testConfig(), FastOptions())
	p2 := NewProfiler(testConfig(), FastOptions())
	c1, err := p1.Characterize(spec, SMT)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p2.Characterize(spec, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Sen != c2.Sen || c1.Con != c2.Con || c1.SoloIPC != c2.SoloIPC {
		t.Error("characterization not reproducible across profilers")
	}
}

func TestMeasurePairsDeduplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	p := NewProfiler(testConfig(), FastOptions())
	a, _ := workload.ByName("456.hmmer")
	b, _ := workload.ByName("444.namd")
	set := []*workload.Spec{a, b}
	pairs, err := p.MeasurePairs(set, set, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Errorf("2-app set produced %d measurements, want 1 unordered pair", len(pairs))
	}
}

func TestMultithreadedCharacterizationClamped(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	// web-search wants 6 threads; a 2-core machine must clamp, not fail.
	p := NewProfiler(testConfig(), FastOptions())
	ws, _ := workload.ByName("web-search")
	ch, err := p.Characterize(ws, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if ch.SoloIPC <= 0 {
		t.Error("clamped characterization produced no IPC")
	}
}

func TestOptionsWorkers(t *testing.T) {
	o := Options{Parallelism: 3}
	if o.workers() != 3 {
		t.Error("explicit parallelism ignored")
	}
	if (Options{}).workers() < 1 {
		t.Error("default workers < 1")
	}
}
