package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/tco"
)

// ScaleOutResult holds one scale-out study (a QoS definition × targets ×
// policies grid): Figures 14/15 for average-performance QoS, Figures 16/17
// for tail-latency QoS.
type ScaleOutResult struct {
	QoS     cluster.QoSKind
	Targets []float64
	// Cells[target][policy] holds the run results.
	Cells map[float64]map[cluster.PolicyKind]cluster.Result
}

// scaleOutTargets are the paper's QoS targets.
var scaleOutTargets = []float64{0.95, 0.90, 0.85}

// Fig14And15AvgQoS runs the average-performance-QoS scale-out study
// (utilization: Figure 14; violations: Figure 15).
func (l *Lab) Fig14And15AvgQoS() (ScaleOutResult, error) {
	return l.ScaleOutStudyContext(context.Background(), cluster.QoSAvg, nil)
}

// Fig14And15AvgQoSContext is Fig14And15AvgQoS with cooperative
// cancellation.
func (l *Lab) Fig14And15AvgQoSContext(ctx context.Context) (ScaleOutResult, error) {
	return l.ScaleOutStudyContext(ctx, cluster.QoSAvg, nil)
}

// Fig16And17TailQoS runs the tail-latency-QoS study over the two services
// that report percentile latency (utilization: Figure 16; violations:
// Figure 17).
func (l *Lab) Fig16And17TailQoS() (ScaleOutResult, error) {
	return l.ScaleOutStudyContext(context.Background(), cluster.QoSTail, nil)
}

// Fig16And17TailQoSContext is Fig16And17TailQoS with cooperative
// cancellation.
func (l *Lab) Fig16And17TailQoSContext(ctx context.Context) (ScaleOutResult, error) {
	return l.ScaleOutStudyContext(ctx, cluster.QoSTail, nil)
}

// ScaleOutStudy runs a scale-out study under either QoS definition. A
// non-nil pred replaces the table's baked-in predicted degradations as
// the SMiTe policy's prediction source (cmd/clustersim --server passes a
// predictor backed by a live qosd daemon); nil keeps the in-process
// predictions. Measured degradations always come from the table.
func (l *Lab) ScaleOutStudy(qos cluster.QoSKind, pred cluster.Predictor) (ScaleOutResult, error) {
	return l.ScaleOutStudyContext(context.Background(), qos, pred)
}

// ScaleOutStudyContext is ScaleOutStudy with cooperative cancellation: the
// underlying cloud-study measurements abort mid-simulation when ctx is
// cancelled, and the queueing sweeps check ctx between cells.
func (l *Lab) ScaleOutStudyContext(ctx context.Context, qos cluster.QoSKind, pred cluster.Predictor) (ScaleOutResult, error) {
	tbl, services, err := l.ClusterTableContext(ctx)
	if err != nil {
		return ScaleOutResult{}, err
	}
	if qos == cluster.QoSTail {
		// Restrict to percentile-reporting services (Web-Search,
		// Data-Caching).
		var keep []string
		for _, lat := range tbl.LatencyApps {
			if svc, ok := services[lat]; ok && svc.ReportsPercentile {
				keep = append(keep, lat)
			}
		}
		if len(keep) == 0 {
			return ScaleOutResult{}, fmt.Errorf("experiments: no percentile-reporting services in the study")
		}
		sub := cluster.NewTable(keep, tbl.BatchApps, tbl.MaxInstances)
		for _, lat := range keep {
			for _, b := range tbl.BatchApps {
				for n := 1; n <= tbl.MaxInstances; n++ {
					e, err := tbl.Get(lat, b, n)
					if err != nil {
						return ScaleOutResult{}, err
					}
					sub.Set(lat, b, n, e)
				}
			}
		}
		tbl = sub
	}
	return l.runScaleOut(ctx, tbl, services, qos, pred)
}

func (l *Lab) runScaleOut(ctx context.Context, tbl *cluster.Table, services map[string]service.Service, qos cluster.QoSKind, pred cluster.Predictor) (ScaleOutResult, error) {
	study := &cluster.Study{
		Table:             tbl,
		Services:          services,
		ServersPerApp:     l.Scale.ServersPerApp,
		ThreadsPerServer:  l.cloudThreads(),
		ContextsPerServer: l.SNB.Contexts(),
		Seed:              7,
		Predictor:         pred,
	}
	out := ScaleOutResult{
		QoS:     qos,
		Targets: scaleOutTargets,
		Cells:   make(map[float64]map[cluster.PolicyKind]cluster.Result),
	}
	for _, target := range out.Targets {
		out.Cells[target] = make(map[cluster.PolicyKind]cluster.Result)
		for _, pol := range []cluster.PolicyKind{cluster.PolicySMiTe, cluster.PolicyOracle, cluster.PolicyRandom} {
			if err := ctx.Err(); err != nil {
				return ScaleOutResult{}, err
			}
			r, err := study.Run(pol, qos, target)
			if err != nil {
				return ScaleOutResult{}, err
			}
			out.Cells[target][pol] = r
		}
	}
	return out, nil
}

// String renders utilisation and violation tables.
func (r ScaleOutResult) String() string {
	var b strings.Builder
	if r.QoS == cluster.QoSAvg {
		b.WriteString("Figures 14 & 15: scale-out under average-performance QoS\n")
	} else {
		b.WriteString("Figures 16 & 17: scale-out under 90th-percentile-latency QoS\n")
	}
	t := newTable("QoS target", "SMiTe util gain", "Oracle util gain", "SMiTe violations", "SMiTe worst viol.", "Random violations", "Random worst viol.")
	for _, target := range r.Targets {
		cells := r.Cells[target]
		sm, or, rd := cells[cluster.PolicySMiTe], cells[cluster.PolicyOracle], cells[cluster.PolicyRandom]
		t.row(
			pct(target),
			pct(sm.UtilizationGain),
			pct(or.UtilizationGain),
			pct(sm.ViolationFrac),
			pct(sm.ViolationMax),
			pct(rd.ViolationFrac),
			pct(rd.ViolationMax),
		)
	}
	b.WriteString(t.String())
	if r.QoS == cluster.QoSAvg {
		b.WriteString("paper: SMiTe gains 9.24/25.90/42.97% at 95/90/85% (Oracle 9.82/26.78/43.75%); Random violates up to 26%, SMiTe at most 1.67%\n")
	} else {
		b.WriteString("paper: SMiTe gains 0/10.72/22.03% at 95/90/85% (Oracle 0.59/12.50/24.99%); Random violates up to 110%... SMiTe at most 0.96%\n")
	}
	return b.String()
}

// Fig18Result is the TCO analysis.
type Fig18Result struct {
	Params tco.Params
	// Rows are indexed by QoS kind then target.
	Rows []Fig18Row
}

// Fig18Row is one QoS-definition × target cell.
type Fig18Row struct {
	QoS    cluster.QoSKind
	Target float64
	// BaselineServers and CoLocatedServers are fleet sizes for the same
	// work; Improvement is the fractional 3-year TCO saving.
	BaselineServers  float64
	CoLocatedServers float64
	Improvement      float64
}

// Fig18TCO evaluates the total-cost-of-ownership impact of SMiTe-steered
// co-location under both QoS definitions (paper Figure 18). The baseline
// fleet is half latency servers, half batch servers; co-location absorbs
// batch work onto the latency servers' idle contexts.
func (l *Lab) Fig18TCO() (Fig18Result, error) {
	return l.Fig18TCOContext(context.Background())
}

// Fig18TCOContext is Fig18TCO with cooperative cancellation.
func (l *Lab) Fig18TCOContext(ctx context.Context) (Fig18Result, error) {
	params := tco.Google2014()
	avg, err := l.Fig14And15AvgQoSContext(ctx)
	if err != nil {
		return Fig18Result{}, err
	}
	tail, err := l.Fig16And17TailQoSContext(ctx)
	if err != nil {
		return Fig18Result{}, err
	}
	out := Fig18Result{Params: params}
	add := func(res ScaleOutResult) {
		nLatApps := 0
		for range res.Cells[res.Targets[0]][cluster.PolicySMiTe].PerApp {
			nLatApps++
		}
		latServers := float64(nLatApps * l.Scale.ServersPerApp)
		for _, target := range res.Targets {
			sm := res.Cells[target][cluster.PolicySMiTe]
			// Dedicated batch servers run one instance per core; the
			// co-located instances replace that many of them.
			absorbed := sm.MeanInstances * latServers / float64(l.cloudThreads())
			baseline := 2 * latServers // half latency, half batch
			colocated := baseline - absorbed
			out.Rows = append(out.Rows, Fig18Row{
				QoS: res.QoS, Target: target,
				BaselineServers:  baseline,
				CoLocatedServers: colocated,
				Improvement:      params.Improvement(baseline, colocated),
			})
		}
	}
	add(avg)
	add(tail)
	return out, nil
}

// String renders the figure.
func (r Fig18Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 18: 3-year TCO improvement from SMiTe co-location\n")
	t := newTable("QoS definition", "target", "baseline servers", "co-located servers", "TCO saving")
	for _, row := range r.Rows {
		t.row(row.QoS.String(), pct(row.Target), fmt.Sprintf("%.0f", row.BaselineServers), fmt.Sprintf("%.0f", row.CoLocatedServers), pct(row.Improvement))
	}
	b.WriteString(t.String())
	b.WriteString("paper: up to 21.05% under average-performance QoS, up to 10.70% under p90 QoS\n")
	return b.String()
}
