package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/workload"
)

// AblationResult compares every prediction model on the Figure 10 protocol
// (even-train / odd-test SPEC SMT co-locations). It reproduces the paper's
// baseline search (Section IV-B1 mentions trying linear regression,
// decision trees and higher-order polynomials before settling on the
// Equation 9 PMU baseline) and adds two ablations of SMiTe itself:
// unconstrained least squares versus the non-negative fit, and a
// Bubble-Up-style single-metric model that demonstrates why SMT
// interference needs multidimensional decoupling.
type AblationResult struct {
	Rows []AblationRow
	// MeasuredMean is the testing set's mean measured degradation, the
	// scale against which errors should be read.
	MeasuredMean float64
}

// AblationRow is one model's test error.
type AblationRow struct {
	Model    string
	TestErr  float64
	TrainErr float64
}

// ModelAblation runs the comparison.
func (l *Lab) ModelAblation() (AblationResult, error) {
	return l.ModelAblationContext(context.Background())
}

// ModelAblationContext is ModelAblation with cooperative cancellation.
func (l *Lab) ModelAblationContext(ctx context.Context) (AblationResult, error) {
	train := l.specSet(workload.EvenSPEC())
	test := l.specSet(workload.OddSPEC())
	all := append(append([]*workload.Spec{}, train...), test...)
	chars, err := l.CharacterizationsContext(ctx, IvyBridge, profile.SMT, all, fmt.Sprintf("spec-%d", len(all)))
	if err != nil {
		return AblationResult{}, err
	}
	p := l.Profiler(IvyBridge)
	trainPairs, err := p.MeasurePairsContext(ctx, train, train, profile.SMT)
	if err != nil {
		return AblationResult{}, err
	}
	testPairs, err := p.MeasurePairsContext(ctx, test, test, profile.SMT)
	if err != nil {
		return AblationResult{}, err
	}
	trainObs, err := model.BuildObservations(chars, trainPairs)
	if err != nil {
		return AblationResult{}, err
	}
	testObs, err := model.BuildObservations(chars, testPairs)
	if err != nil {
		return AblationResult{}, err
	}

	var out AblationResult
	for _, o := range testObs {
		out.MeasuredMean += o.Deg
	}
	if len(testObs) > 0 {
		out.MeasuredMean /= float64(len(testObs))
	}

	type trained struct {
		name string
		m    model.Predictor
		err  error
	}
	var models []trained
	if m, err := model.TrainSmiteNNLS(trainObs); err == nil {
		models = append(models, trained{"SMiTe (Eq.3, NNLS)", m, nil})
	} else {
		models = append(models, trained{"SMiTe (Eq.3, NNLS)", nil, err})
	}
	if m, err := model.TrainSmite(trainObs); err == nil {
		models = append(models, trained{"SMiTe (Eq.3, OLS)", m, nil})
	} else {
		models = append(models, trained{"SMiTe (Eq.3, OLS)", nil, err})
	}
	if m, err := model.TrainBubbleUp(trainObs); err == nil {
		models = append(models, trained{"Bubble-Up-style (1 dim)", m, nil})
	} else {
		models = append(models, trained{"Bubble-Up-style (1 dim)", nil, err})
	}
	if m, err := model.TrainPMULinear(trainObs); err == nil {
		models = append(models, trained{"PMU linear (Eq.9)", m, nil})
	} else {
		models = append(models, trained{"PMU linear (Eq.9)", nil, err})
	}
	if m, err := model.TrainPMUPoly(trainObs); err == nil {
		models = append(models, trained{"PMU polynomial", m, nil})
	} else {
		models = append(models, trained{"PMU polynomial", nil, err})
	}
	if m, err := model.TrainCART(trainObs, 0, 0); err == nil {
		models = append(models, trained{"PMU decision tree", m, nil})
	} else {
		models = append(models, trained{"PMU decision tree", nil, err})
	}

	for _, tr := range models {
		if tr.err != nil {
			return AblationResult{}, fmt.Errorf("experiments: training %s: %w", tr.name, tr.err)
		}
		out.Rows = append(out.Rows, AblationRow{
			Model:    tr.name,
			TestErr:  model.Evaluate(tr.m, testObs).MeanAbsError,
			TrainErr: model.Evaluate(tr.m, trainObs).MeanAbsError,
		})
	}
	return out, nil
}

// String renders the comparison.
func (r AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Model ablation (Figure 10 protocol: SPEC SMT, even-train/odd-test)\n")
	t := newTable("model", "test error", "train error")
	for _, row := range r.Rows {
		t.row(row.Model, pct(row.TestErr), pct(row.TrainErr))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean measured degradation of the testing set: %s\n", pct(r.MeasuredMean))
	return b.String()
}
