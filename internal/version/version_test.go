package version

import (
	"bytes"
	"strings"
	"testing"
)

func TestStringCarriesToolchain(t *testing.T) {
	s := String()
	if s == "" {
		t.Fatal("empty version string")
	}
	// Test binaries always embed build info, so the toolchain and platform
	// must be present.
	if !strings.Contains(s, "go1") {
		t.Errorf("version %q missing Go toolchain", s)
	}
	if !strings.Contains(s, "/") {
		t.Errorf("version %q missing GOOS/GOARCH", s)
	}
}

func TestFprintFormat(t *testing.T) {
	var buf bytes.Buffer
	Fprint(&buf, "smite")
	out := buf.String()
	if !strings.HasPrefix(out, "smite ") || !strings.HasSuffix(out, "\n") {
		t.Errorf("Fprint = %q, want \"smite <version>\\n\"", out)
	}
}
