package pmu

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim/isa"
)

func sample() Counters {
	c := Counters{
		Cycles:       1000,
		Instructions: 1500,
		L1DHits:      300, L1DMisses: 50,
		L2Hits: 30, L2Misses: 20,
		L3Hits: 15, L3Misses: 5, MemAccesses: 5,
		Branches: 200, BranchMispredicts: 10,
		DTLBLoadMisses: 4, DTLBStoreMisses: 2,
		ITLBMisses: 1, ICacheMisses: 3,
		Loads: 350, Stores: 100,
	}
	c.PortUops = [isa.NumPorts]uint64{100, 200, 300, 50, 100, 250}
	return c
}

func TestIPC(t *testing.T) {
	c := sample()
	if got := c.IPC(); got != 1.5 {
		t.Errorf("IPC = %g", got)
	}
	if (Counters{}).IPC() != 0 {
		t.Error("zero-cycle IPC not 0")
	}
}

func TestPortUtilization(t *testing.T) {
	c := sample()
	if got := c.PortUtilization(1); got != 0.2 {
		t.Errorf("port 1 utilization = %g", got)
	}
	if (Counters{}).PortUtilization(0) != 0 {
		t.Error("zero-cycle utilization not 0")
	}
}

func TestSubRoundTrip(t *testing.T) {
	if err := quick.Check(func(aRaw, bRaw uint32) bool {
		base := sample()
		window := sample()
		window.Cycles += uint64(aRaw)
		window.Instructions += uint64(bRaw)
		window.PortUops[3] += uint64(aRaw % 100)
		d := window.Sub(base)
		return d.Cycles == uint64(aRaw) && d.Instructions == uint64(bRaw) && d.PortUops[3] == uint64(aRaw%100)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSubOfSelfIsZero(t *testing.T) {
	c := sample()
	d := c.Sub(c)
	if d != (Counters{}) {
		t.Errorf("c - c = %+v", d)
	}
}

func TestFeaturesMatchPaperList(t *testing.T) {
	c := sample()
	f := c.Features()
	if len(f) != NumPMUFeatures || NumPMUFeatures != 11 {
		t.Fatalf("feature count %d, want the paper's 11", len(f))
	}
	if f[0] != c.IPC() {
		t.Error("feature 0 should be instructions/cycle")
	}
	if f[10] != float64(c.BranchMispredicts)/float64(c.Cycles) {
		t.Error("feature 10 should be branch-mispredictions/cycle")
	}
	// All feature names must match the paper's terminology.
	for _, name := range FeatureNames {
		if !strings.Contains(name, "/cycle") {
			t.Errorf("feature name %q is not a rate", name)
		}
	}
}

func TestStringIsInformative(t *testing.T) {
	s := sample().String()
	for _, frag := range []string{"ipc=1.500", "cycles=1000"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

// TestFieldListComplete proves FieldList covers every counter in the
// struct: summing a reflected total over all numeric fields must equal the
// sum over FieldList. A counter added to Counters but not to FieldList
// would silently escape the verification layer's monotonicity checks.
func TestFieldListComplete(t *testing.T) {
	c := sample()
	c.PortUops = [6]uint64{1, 2, 3, 4, 5, 6}
	want := uint64(0)
	v := reflect.ValueOf(c)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			want += f.Uint()
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				want += f.Index(j).Uint()
			}
		default:
			t.Fatalf("Counters field %s has unexpected kind %v", v.Type().Field(i).Name, f.Kind())
		}
	}
	got := uint64(0)
	names := make(map[string]bool)
	for _, fl := range c.FieldList() {
		if names[fl.Name] {
			t.Errorf("duplicate FieldList name %q", fl.Name)
		}
		names[fl.Name] = true
		got += fl.Value
	}
	if got != want {
		t.Errorf("FieldList sum %d != reflected struct sum %d: a counter is missing from FieldList", got, want)
	}
}
