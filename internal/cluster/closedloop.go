package cluster

import (
	"fmt"
	"math"

	"repro/internal/ctrl/drift"
	"repro/internal/qosd"
	"repro/internal/queueing"
)

// This file closes the loop inside the discrete-event simulator
// (DESIGN.md §14): DriftSpec injects a mid-run shift of the *measured*
// degradation surface — the ground truth moves, the prediction table does
// not — and PolicyClosedLoop reacts: each shard runs a windowed CUSUM
// detector (internal/ctrl/drift) over its observed-vs-predicted
// degradations, re-characterizes confirmed (lat, batch) pairs against the
// measured surface, re-scores its admission gate through the same
// qosd.EvaluateAdmission check the static gate was built with, and
// migrates the worst-offending machine's newest instance off the drifted
// cell. Everything is shard-local and event-ordered, so runs stay
// bit-identical at any worker count.

// DriftSpec injects one step change of the measured degradation surface
// at time At: affected cells' actual degradation becomes
// clamp01(ActualDeg·Factor) (and their actual QoS loses proportionally).
// Predictions — the table, the SLO gate — are built pre-drift and go
// stale, which is exactly what the closed loop must detect. A nil spec
// means a stationary world.
type DriftSpec struct {
	// At is the simulated time the shift lands.
	At float64 `json:"at"`
	// Factor scales the affected cells' measured degradation (>1 makes
	// co-locations worse, <1 better; 1 is a no-op).
	Factor float64 `json:"factor"`
	// Batches lists the batch-application indices whose cells shift; nil
	// means every batch application.
	Batches []int `json:"batches,omitempty"`
}

// Validate rejects specs RunSim cannot execute.
func (d *DriftSpec) Validate(nBatch int) error {
	if d == nil {
		return nil
	}
	if math.IsNaN(d.At) || math.IsInf(d.At, 0) || d.At < 0 {
		return fmt.Errorf("cluster: drift time %g must be non-negative and finite", d.At)
	}
	if !(d.Factor > 0) || math.IsInf(d.Factor, 0) {
		return fmt.Errorf("cluster: drift factor %g must be positive and finite", d.Factor)
	}
	for _, b := range d.Batches {
		if b < 0 || b >= nBatch {
			return fmt.Errorf("cluster: drift batch %d outside [0,%d)", b, nBatch)
		}
	}
	return nil
}

// affects reports whether batch application b shifts.
func (d *DriftSpec) affects(b int) bool {
	if len(d.Batches) == 0 {
		return true
	}
	for _, x := range d.Batches {
		if x == b {
			return true
		}
	}
	return false
}

// driftWorld is the precomputed post-drift measured surface, shared
// read-only across shards: the drifted ActualDeg/ActualQoS per cell, and
// — when SLO parameters are set — whether each cell's true post-drift
// tail blows its class budget.
type driftWorld struct {
	at        float64
	actualDeg []float64
	actualQoS []float64
	violate   []bool // non-nil iff SLO parameters are set
}

// buildDriftWorld evaluates the drifted surface once per cell.
func buildDriftWorld(t *PredTable, p *SLOSimParams, spec *DriftSpec) *driftWorld {
	cells := len(t.ActualQoS)
	w := &driftWorld{
		at:        spec.At,
		actualQoS: make([]float64, cells),
	}
	if t.HasDegradations() {
		w.actualDeg = make([]float64, cells)
		copy(w.actualDeg, t.ActualDeg)
	}
	copy(w.actualQoS, t.ActualQoS)
	if p != nil {
		w.violate = make([]bool, cells)
	}
	for l := 0; l < len(t.LatencyApps); l++ {
		var cl SLOSimClass
		if p != nil {
			cl = p.classFor(l)
		}
		for b := 0; b < len(t.BatchApps); b++ {
			shifted := spec.affects(b)
			for n := 1; n <= t.MaxInstances; n++ {
				i := t.Cell(l, b, n)
				if shifted {
					if w.actualDeg != nil {
						w.actualDeg[i] = clamp01(t.ActualDeg[i] * spec.Factor)
					}
					// QoS is 1 − loss; the loss scales with the degradation.
					w.actualQoS[i] = clamp01(1 - (1-t.ActualQoS[i])*spec.Factor)
				}
				if p != nil {
					actualTail := queueing.DegradedPercentile(cl.Percentile, cl.Mu, cl.Lambda, w.actualDeg[i])
					w.violate[i] = !(actualTail <= cl.Budget)
				}
			}
		}
	}
	return w
}

// simDriftDetector is the per-shard detector tuning: the synthetic
// world's measurement noise (|actual − predicted| a few thousandths) sits
// well under the allowance, while a drifted cell's excess is tens of
// points per placement, so confirmation lands at the MinSamples floor.
var simDriftDetector = drift.Config{MinSamples: 4, Allowance: 0.02, Threshold: 0.12}

// closedLoop is one shard's mutable copy of the admission surface plus
// its detector — PolicyClosedLoop's working state. Cells re-characterize
// at (lat, batch)-pair granularity: one confirmed detection refreshes the
// pair's whole instance-count column.
type closedLoop struct {
	params *SLOSimParams

	det *drift.Detector

	// Shard-local working surfaces, seeded from the static table/gate and
	// rewritten in place on re-characterization.
	predDeg   []float64
	predBound []float64
	admit     []bool
	slack     []float64

	// gen counts re-characterizations — the shard-local analogue of
	// TieredPredictor's generation counter, echoed on migrate log entries.
	gen uint64
}

// newClosedLoop seeds the working state from the static surfaces.
func newClosedLoop(t *PredTable, g *sloGate, p *SLOSimParams) *closedLoop {
	cells := len(t.PredDeg)
	cl := &closedLoop{
		params:    p,
		det:       drift.New(simDriftDetector),
		predDeg:   make([]float64, cells),
		predBound: make([]float64, cells),
		admit:     make([]bool, cells),
		slack:     make([]float64, cells),
	}
	copy(cl.predDeg, t.PredDeg)
	copy(cl.predBound, t.PredBound)
	copy(cl.admit, g.admit)
	copy(cl.slack, g.slack)
	return cl
}

// pairID keys the detector: one accumulator per (lat, batch) pair.
func (s *shardSim) pairID(lat, b int) int { return lat*s.nBatch + b }

// actualDegAt reads the measured degradation surface in effect at time at.
func (s *shardSim) actualDegAt(at float64, cell int) float64 {
	if s.dw != nil && at >= s.dw.at && s.dw.actualDeg != nil {
		return s.dw.actualDeg[cell]
	}
	return s.t.ActualDeg[cell]
}

// observeClosedLoop feeds one placement's observed degradation to the
// shard's detector and, on confirmation, re-characterizes the pair and
// attempts a migration. Called from place() after the instance landed.
func (s *shardSim) observeClosedLoop(lat, b int, cell int, at float64) {
	cl := s.cl
	observed := s.actualDegAt(at, cell)
	if !cl.det.Observe(s.pairID(lat, b), observed, cl.predDeg[cell], cl.predBound[cell]) {
		return
	}
	s.res.detections++
	s.recharacterize(lat, b, at)
	s.migrateWorst(lat, b, at)
}

// recharacterize refreshes a confirmed pair's whole instance-count column
// against the measured surface — the simulator's analogue of routing the
// flagged app back through the characterization sweep — and re-scores the
// admission gate with the same qosd check the static gate used, now with
// a zero bound (the refreshed cells are measured, not predicted).
func (s *shardSim) recharacterize(lat, b int, at float64) {
	cl := s.cl
	slo := cl.params.classFor(lat)
	class := qosd.SLOClass{Name: slo.Name, Budget: slo.Budget, Percentile: slo.Percentile}
	for n := 1; n <= s.maxInst; n++ {
		i := s.t.Cell(lat, b, n)
		cl.predDeg[i] = s.actualDegAt(at, i)
		cl.predBound[i] = 0
		dec := qosd.EvaluateAdmission(cl.predDeg[i], 0, slo.Mu, slo.Lambda, class, cl.params.Headroom)
		cl.admit[i] = dec.Admitted
		cl.slack[i] = dec.EffectiveBudget - dec.Tail
	}
	cl.gen++
	cl.det.Reset(s.pairID(lat, b))
	s.res.recharacterized++
}

// migrateWorst re-scores the pair's occupied cells through the refreshed
// gate, picks the worst still-occupied offender (most negative slack
// among now-inadmissible cells, lowest machine id within the bucket), and
// moves its newest instance to the machine the refreshed admission policy
// would pick — a logged, typed decision, so replays stay bit-identical.
func (s *shardSim) migrateWorst(lat, b int, at float64) {
	cl := s.cl
	worstState, worstSlack := -1, math.Inf(1)
	for n := s.maxInst; n >= 1; n-- {
		state := s.bucketIdx(0, 0, lat, 1+b, n)
		if s.buckets[state].Len() == 0 {
			continue
		}
		cell := s.t.Cell(lat, b, n)
		if cl.admit[cell] {
			continue
		}
		if sl := cl.slack[cell]; sl < worstSlack {
			worstSlack = sl
			worstState = state
		}
	}
	if worstState < 0 {
		return
	}
	victim := int32(s.buckets[worstState].Min().handle)
	vm := &s.machines[victim]
	// Take the victim out of the bucket scan so the admission pass cannot
	// stack the instance straight back onto the machine it came from.
	s.buckets[worstState].Remove(int64(victim))
	target := s.admit(b)
	if target < 0 {
		s.buckets[worstState].Push(0, 0, int64(victim))
		s.res.migrationsFailed++
		return
	}
	// Detach the newest instance (its departure event rides along).
	h := vm.jobs[len(vm.jobs)-1]
	vm.jobs = vm.jobs[:len(vm.jobs)-1]
	vm.n--
	if vm.n == 0 {
		vm.batch = -1
	}
	s.buckets[s.stateOf(vm)].Push(0, 0, int64(victim))

	tm := &s.machines[target]
	s.buckets[s.stateOf(tm)].Remove(int64(target))
	tm.batch = int16(b)
	tm.n++
	s.buckets[s.stateOf(tm)].Push(0, 0, int64(target))
	tm.jobs = append(tm.jobs, h)
	s.owner[h] = target

	s.res.migrations++
	s.res.log = append(s.res.log, Placement{
		At: at, Shard: int32(s.shard), Seq: uint32(len(s.res.log)),
		Machine: s.globalID(target), Lat: tm.lat, Batch: int16(b), N: tm.n,
		Kind: PlacementMigrate, From: s.globalID(victim),
	})
}
