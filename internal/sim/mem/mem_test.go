package mem

import "testing"

func TestIdleLatencyIsBase(t *testing.T) {
	m := New(180, 8)
	if got := m.Request(100); got != 280 {
		t.Errorf("idle request completes at %d, want 280", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	m := New(100, 10)
	// Three simultaneous requests: grants at 0, 10, 20.
	c1 := m.Request(0)
	c2 := m.Request(0)
	c3 := m.Request(0)
	if c1 != 100 || c2 != 110 || c3 != 120 {
		t.Errorf("completions = %d,%d,%d, want 100,110,120", c1, c2, c3)
	}
	_, avgQ, maxB := m.Stats()
	if maxB != 20 {
		t.Errorf("max backlog = %d, want 20", maxB)
	}
	if avgQ != 10 { // (0+10+20)/3
		t.Errorf("avg queue = %g, want 10", avgQ)
	}
}

func TestQueueDrains(t *testing.T) {
	m := New(100, 10)
	m.Request(0)
	m.Request(0)
	// After the backlog clears, a late request sees no queueing.
	if got := m.Request(1000); got != 1100 {
		t.Errorf("late request completes at %d, want 1100", got)
	}
}

func TestSaturationGrowsQueue(t *testing.T) {
	m := New(100, 10)
	// Demand 1 request/cycle against capacity 1/10: queue grows linearly.
	var last uint64
	for now := uint64(0); now < 1000; now++ {
		last = m.Request(now)
	}
	// The 1000th request waits ~9990 cycles behind 999 predecessors.
	if last < 9000 {
		t.Errorf("saturated queue did not build: last completion %d", last)
	}
}

func TestResetStats(t *testing.T) {
	m := New(100, 10)
	m.Request(0)
	m.Request(0)
	m.ResetStats()
	if reqs, avgQ, maxB := m.Stats(); reqs != 0 || avgQ != 0 || maxB != 0 {
		t.Error("stats not reset")
	}
}

func TestZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero service interval accepted")
		}
	}()
	New(100, 0)
}
