package qosd

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a stepping clock: every Now advances by one step, so
// request durations and uptime become deterministic functions of how many
// times the server consulted the clock.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// newObsServer is newTestServer without the typed client: the observability
// tests speak raw HTTP because they exercise query parameters (?trace=1,
// ?format=openmetrics) the client does not model.
func newObsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	reg.AddProfiles(testChars())
	reg.SetModel(testModel())
	s := NewServer(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestOpenMetricsGolden drives a fixed request sequence under a stepping
// clock and pins the full OpenMetrics exposition byte for byte. Regenerate
// with go test ./internal/qosd -run OpenMetricsGolden -update after
// intentional changes.
func TestOpenMetricsGolden(t *testing.T) {
	s, ts := newObsServer(t, Config{MaxInFlight: 8})
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0), step: 250 * time.Microsecond}
	s.metrics.start = clock.t
	s.metrics.now = clock.Now

	// Two identical predictions (miss then memo hit), one unknown profile
	// (4xx): populates the request vec, the latency histogram and the
	// prediction-cache gauges.
	ok := `{"victim":"web-search","aggressor":"429.mcf"}`
	if code, _ := postJSON(t, ts.URL+"/v1/predict", ok); code != http.StatusOK {
		t.Fatalf("predict = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/predict", ok); code != http.StatusOK {
		t.Fatalf("predict = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/predict", `{"victim":"web-search","aggressor":"nope"}`); code != http.StatusNotFound {
		t.Fatalf("unknown predict = %d", code)
	}

	resp, body := get(t, ts.URL+"/metrics?format=openmetrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("Content-Type = %q, want openmetrics-text", ct)
	}

	golden := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("OpenMetrics exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// The Accept header is the standard negotiation path for scrapers.
func TestOpenMetricsViaAccept(t *testing.T) {
	_, ts := newObsServer(t, Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(b), "# TYPE ") {
		t.Errorf("Accept negotiation did not yield OpenMetrics text:\n%s", b)
	}
	if !strings.HasSuffix(string(b), "# EOF\n") {
		t.Errorf("exposition missing # EOF terminator")
	}
}

// A ?trace=1 request on a trace-enabled server is recorded end to end and
// its Chrome render served by /debug/trace/last, replacing prior traces.
func TestTraceEndpointCapturesPredict(t *testing.T) {
	_, ts := newObsServer(t, Config{EnableTrace: true})

	resp, _ := get(t, ts.URL+"/debug/trace/last")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace/last before any trace = %d, want 404", resp.StatusCode)
	}

	// An untraced request must leave nothing behind.
	body := `{"victim":"web-search","aggressor":"429.mcf"}`
	if code, _ := postJSON(t, ts.URL+"/v1/predict", body); code != http.StatusOK {
		t.Fatalf("predict = %d", code)
	}
	if resp, _ := get(t, ts.URL+"/debug/trace/last"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace/last after untraced request = %d, want 404", resp.StatusCode)
	}

	// A fresh pair, so the traced request genuinely computes (the earlier
	// untraced predict already memoized the first pair).
	traced := `{"victim":"web-search","aggressor":"444.namd"}`
	if code, _ := postJSON(t, ts.URL+"/v1/predict?trace=1", traced); code != http.StatusOK {
		t.Fatalf("traced predict = %d", code)
	}
	resp, b := get(t, ts.URL+"/debug/trace/last")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace/last = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace/last is not valid Chrome-trace JSON: %v\n%s", err, b)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"POST /v1/predict", "qosd.predict", "simcache.compute"} {
		if !names[want] {
			t.Errorf("traced request missing %q span; have %v", want, names)
		}
	}

	// The second traced request replaces the first: a memo hit renders a
	// simcache.lookup span instead of a compute.
	if code, _ := postJSON(t, ts.URL+"/v1/predict?trace=1", traced); code != http.StatusOK {
		t.Fatalf("traced predict = %d", code)
	}
	if _, b2 := get(t, ts.URL+"/debug/trace/last"); !strings.Contains(string(b2), "simcache.lookup") {
		t.Errorf("second trace missing simcache.lookup (memo hit):\n%s", b2)
	}
}

// Without EnableTrace, ?trace=1 is inert and the debug route is unmounted.
func TestTraceDisabledByDefault(t *testing.T) {
	_, ts := newObsServer(t, Config{})
	body := `{"victim":"web-search","aggressor":"429.mcf"}`
	if code, _ := postJSON(t, ts.URL+"/v1/predict?trace=1", body); code != http.StatusOK {
		t.Fatalf("predict with ignored trace param = %d", code)
	}
	resp, _ := get(t, ts.URL+"/debug/trace/last")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace/last on untraced server = %d, want 404", resp.StatusCode)
	}
}
