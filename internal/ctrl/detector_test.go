package ctrl

import (
	"math"
	"testing"
)

// TestDetectorConfirmsSustainedDrift drives the canonical path: a cell
// whose observed degradation sits far outside the certified bound
// confirms after MinSamples, not before.
func TestDetectorConfirmsSustainedDrift(t *testing.T) {
	d := NewDetector(DetectorConfig{MinSamples: 4, Allowance: 0.01, Threshold: 0.1})
	for i := 0; i < 3; i++ {
		if d.Observe(7, 0.40, 0.10, 0.02) {
			t.Fatalf("sample %d confirmed before MinSamples", i+1)
		}
	}
	if !d.Observe(7, 0.40, 0.10, 0.02) {
		t.Fatal("4th far-out-of-bound sample should confirm drift")
	}
	if !d.Confirmed(7) {
		t.Fatal("cell should be in confirmed state")
	}
	// Later samples on a confirmed cell don't re-fire.
	if d.Observe(7, 0.40, 0.10, 0.02) {
		t.Fatal("already-confirmed cell re-fired")
	}
	if got := d.Stats().Detections; got != 1 {
		t.Fatalf("Detections = %d, want 1", got)
	}
}

// TestDetectorOneNoisySampleNeverTriggers is the structural guarantee:
// even a wildly wrong single sample cannot confirm, regardless of
// threshold, because MinSamples is floored at 2.
func TestDetectorOneNoisySampleNeverTriggers(t *testing.T) {
	d := NewDetector(DetectorConfig{MinSamples: 1, Threshold: 0.001})
	if d.Observe(0, 1.0, 0.0, 0.0) {
		t.Fatal("a single sample confirmed drift")
	}
	if d.Confirmed(0) {
		t.Fatal("cell confirmed after one sample")
	}
}

// TestDetectorConstantZeroDegradation: a cell that always observes
// exactly what was predicted (both zero) accumulates nothing and never
// triggers, no matter how many samples stream in.
func TestDetectorConstantZeroDegradation(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	for i := 0; i < 1000; i++ {
		if d.Observe(3, 0, 0, 0) {
			t.Fatalf("constant-zero observation confirmed drift at sample %d", i+1)
		}
	}
	if d.Score(3) != 0 {
		t.Fatalf("score = %g, want 0", d.Score(3))
	}
}

// TestDetectorBoundExactlyCoversError: when the bound equals the observed
// error exactly, the excess is zero (minus the allowance) — certified
// error is not drift, so the detector must stay quiet forever.
func TestDetectorBoundExactlyCoversError(t *testing.T) {
	d := NewDetector(DetectorConfig{Allowance: -1}) // -1 disables the leak: strictest setting
	for i := 0; i < 1000; i++ {
		if d.Observe(5, 0.30, 0.25, 0.05) {
			t.Fatalf("bound-covered error confirmed drift at sample %d", i+1)
		}
	}
	if d.Score(5) != 0 {
		t.Fatalf("score = %g, want 0 when |obs-pred| == bound", d.Score(5))
	}
}

// TestDetectorNaNInfIgnored: non-finite samples must neither trigger nor
// panic nor perturb the cell's accumulated state.
func TestDetectorNaNInfIgnored(t *testing.T) {
	d := NewDetector(DetectorConfig{MinSamples: 4, Threshold: 0.1})
	d.Observe(9, 0.4, 0.1, 0)
	before := d.Score(9)
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		if d.Observe(9, v, 0.1, 0) {
			t.Fatalf("observed=%v confirmed drift", v)
		}
		if d.Observe(9, 0.4, v, 0) {
			t.Fatalf("predicted=%v confirmed drift", v)
		}
		if d.Observe(9, 0.4, 0.1, v) {
			t.Fatalf("bound=%v confirmed drift", v)
		}
	}
	if d.Score(9) != before {
		t.Fatalf("non-finite samples changed the score: %g -> %g", before, d.Score(9))
	}
	if got := d.Stats().Ignored; got != 9 {
		t.Fatalf("Ignored = %d, want 9", got)
	}
	if got := d.Stats().Observations; got != 1 {
		t.Fatalf("Observations = %d, want 1", got)
	}
}

// TestDetectorResetAfterRecharacterization: Reset returns the cell to a
// clean slate — not confirmed, zero score, and the MinSamples guard
// applies afresh.
func TestDetectorResetAfterRecharacterization(t *testing.T) {
	d := NewDetector(DetectorConfig{MinSamples: 2, Threshold: 0.1})
	d.Observe(4, 0.5, 0.1, 0)
	if !d.Observe(4, 0.5, 0.1, 0) {
		t.Fatal("setup: drift should confirm after 2 samples")
	}
	d.Reset(4)
	if d.Confirmed(4) {
		t.Fatal("cell still confirmed after Reset")
	}
	if d.Score(4) != 0 {
		t.Fatalf("score = %g after Reset, want 0", d.Score(4))
	}
	// One in-bound sample after reset: quiet.
	if d.Observe(4, 0.1, 0.1, 0) {
		t.Fatal("in-bound sample after Reset confirmed drift")
	}
	// Drift can be re-detected from scratch.
	d.Reset(4)
	d.Observe(4, 0.5, 0.1, 0)
	if !d.Observe(4, 0.5, 0.1, 0) {
		t.Fatal("drift not re-detectable after Reset")
	}
	if got := d.Stats().Detections; got != 2 {
		t.Fatalf("Detections = %d, want 2", got)
	}
}

// TestDetectorScoreDecays: sustained in-bound prediction leaks the score
// back toward zero, so an old burst of noise does not linger forever.
func TestDetectorScoreDecays(t *testing.T) {
	d := NewDetector(DetectorConfig{MinSamples: 100, Allowance: 0.01, Threshold: 10})
	d.Observe(1, 0.2, 0.1, 0) // excess 0.09
	if d.Score(1) <= 0 {
		t.Fatal("out-of-bound sample should raise the score")
	}
	for i := 0; i < 20; i++ {
		d.Observe(1, 0.1, 0.1, 0) // in-bound: leaks Allowance per sample
	}
	if d.Score(1) != 0 {
		t.Fatalf("score = %g after sustained in-bound samples, want 0", d.Score(1))
	}
}

// TestDetectorDefaults pins the normalisation of the zero config.
func TestDetectorDefaults(t *testing.T) {
	cfg := NewDetector(DetectorConfig{}).Config()
	if cfg.MinSamples != DefaultMinSamples || cfg.Allowance != DefaultAllowance || cfg.Threshold != DefaultThreshold {
		t.Fatalf("defaults = %+v", cfg)
	}
	if got := NewDetector(DetectorConfig{MinSamples: 1}).Config().MinSamples; got != 2 {
		t.Fatalf("MinSamples floor = %d, want 2", got)
	}
	if got := NewDetector(DetectorConfig{Allowance: -5}).Config().Allowance; got != 0 {
		t.Fatalf("negative allowance should normalise to 0, got %g", got)
	}
}
