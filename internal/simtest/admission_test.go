package simtest

import (
	"math"
	"testing"

	"repro/internal/qosd"
	"repro/internal/xrand"
)

// randomAdmissionCase draws one admission problem: a predicted degradation
// with an error bound, an M/M/1 queue that is solo-stable, and a class
// percentile. Budgets and headrooms are swept by the law itself.
type admissionCase struct {
	deg, bound, mu, lambda, percentile float64
}

func randomAdmissionCase(r *xrand.Rand) admissionCase {
	mu := 100 + r.Float64()*2000
	return admissionCase{
		deg:        r.Float64() * 1.1, // past 1.0 to sweep the saturated region
		bound:      r.Float64() * 0.2,
		mu:         mu,
		lambda:     mu * (0.1 + r.Float64()*0.85),
		percentile: 0.5 + r.Float64()*0.49,
	}
}

// TestAdmissionBudgetMonotonicity is the admission-monotonicity law: for
// any co-location candidate, tightening the budget never admits what the
// looser budget rejected — the admitted sets are nested as the budget
// grows. Swept over numSeeds random candidates and a budget ladder.
func TestAdmissionBudgetMonotonicity(t *testing.T) {
	budgets := []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1}
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0xAD)
		c := randomAdmissionCase(r)
		headroom := r.Float64() * 0.5
		prevAdmitted := false
		for _, budget := range budgets {
			class := qosd.SLOClass{Name: "law", Budget: budget, Percentile: c.percentile}
			d := qosd.EvaluateAdmission(c.deg, c.bound, c.mu, c.lambda, class, headroom)
			if prevAdmitted && !d.Admitted {
				t.Errorf("seed %d: budget %g admitted but looser budget %g rejected (case %+v)",
					seed, budget/3, budget, c)
			}
			prevAdmitted = d.Admitted
		}
	}
}

// TestAdmissionHeadroomMonotonicity: raising the headroom (shrinking the
// effective budget) never admits what the smaller headroom rejected.
func TestAdmissionHeadroomMonotonicity(t *testing.T) {
	headrooms := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8}
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x4EAD)
		c := randomAdmissionCase(r)
		budget := 0.001 + r.Float64()*0.2
		class := qosd.SLOClass{Name: "law", Budget: budget, Percentile: c.percentile}
		prevAdmitted := true
		for _, h := range headrooms {
			d := qosd.EvaluateAdmission(c.deg, c.bound, c.mu, c.lambda, class, h)
			if d.Admitted && !prevAdmitted {
				t.Errorf("seed %d: headroom %g admitted after a smaller headroom rejected (case %+v)",
					seed, h, c)
			}
			prevAdmitted = d.Admitted
		}
	}
}

// TestAdmissionSaturationAbsorbing: once the inflated degradation
// saturates the queue, no budget and no headroom ever admits — the
// saturated region is absorbing, and the tail is always +Inf.
func TestAdmissionSaturationAbsorbing(t *testing.T) {
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x5A7)
		c := randomAdmissionCase(r)
		// Force saturation: degradation at or past the stability boundary.
		boundary := 1 - c.lambda/c.mu
		c.deg = boundary + r.Float64()
		c.bound = 0
		for _, budget := range []float64{0.01, 1, 1e6} {
			class := qosd.SLOClass{Name: "law", Budget: budget, Percentile: c.percentile}
			d := qosd.EvaluateAdmission(c.deg, c.bound, c.mu, c.lambda, class, 0)
			if d.Admitted || !d.Saturated {
				t.Errorf("seed %d: saturated candidate admitted at budget %g: %+v (case %+v)",
					seed, budget, d, c)
			}
			if !math.IsInf(d.Tail, 1) {
				t.Errorf("seed %d: saturated tail %v, want +Inf", seed, d.Tail)
			}
		}
	}
}

// TestAdmissionBoundMonotonicity: a larger error bound (a less certain
// prediction) never admits what the more certain prediction rejected.
func TestAdmissionBoundMonotonicity(t *testing.T) {
	bounds := []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5}
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0xB0)
		c := randomAdmissionCase(r)
		budget := 0.001 + r.Float64()*0.2
		class := qosd.SLOClass{Name: "law", Budget: budget, Percentile: c.percentile}
		prevAdmitted := true
		for _, b := range bounds {
			d := qosd.EvaluateAdmission(c.deg, b, c.mu, c.lambda, class, 0.1)
			if d.Admitted && !prevAdmitted {
				t.Errorf("seed %d: bound %g admitted after a smaller bound rejected (case %+v)",
					seed, b, c)
			}
			prevAdmitted = d.Admitted
		}
	}
}
