package qosd

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/smite"
)

// fastSystem builds a simulation System on the shortened windows.
func fastSystem(t *testing.T, opts ...smite.Option) *smite.System {
	t.Helper()
	sys, err := smite.New(smite.IvyBridge.Config(),
		append([]smite.Option{smite.WithOptions(smite.FastOptions())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// A daemon started without -simulate answers /v1/characterize with 501.
func TestCharacterizeDisabledWithoutSystem(t *testing.T) {
	_, c := newTestServer(t, Config{})
	_, err := c.Characterize(context.Background(), CharacterizeRequest{App: "444.namd"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeSimulationDisabled || apiErr.Status != 501 {
		t.Fatalf("got %v, want %s/501", err, CodeSimulationDisabled)
	}
}

// The endpoint validates its arguments before touching the simulator.
func TestCharacterizeValidation(t *testing.T) {
	_, c := newTestServer(t, Config{System: fastSystem(t)})
	cases := []struct {
		name     string
		req      CharacterizeRequest
		wantCode string
		wantHTTP int
	}{
		{"unknown app", CharacterizeRequest{App: "no-such-app"}, CodeUnknownProfile, 404},
		{"empty app", CharacterizeRequest{}, CodeUnknownProfile, 404},
		{"bad placement", CharacterizeRequest{App: "444.namd", Placement: "sideways"}, CodeInvalidArgument, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Characterize(context.Background(), tc.req)
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("got %v, want *APIError", err)
			}
			if apiErr.Code != tc.wantCode || apiErr.Status != tc.wantHTTP {
				t.Errorf("got %s/%d, want %s/%d", apiErr.Code, apiErr.Status, tc.wantCode, tc.wantHTTP)
			}
		})
	}
}

// A characterization with register=true becomes immediately predictable:
// the profile lands in the registry and /v1/predict can use it.
func TestCharacterizeRegistersProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated Ruler sweep in short mode")
	}
	s, c := newTestServer(t, Config{System: fastSystem(t), RequestTimeout: 5 * time.Minute})
	resp, err := c.Characterize(context.Background(), CharacterizeRequest{
		App: "470.lbm", Placement: "smt", Register: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.App != "470.lbm" || resp.Placement != "SMT" {
		t.Errorf("response header %q/%q, want 470.lbm/SMT", resp.App, resp.Placement)
	}
	if resp.Profile.App != "470.lbm" || resp.Profile.SoloIPC <= 0 {
		t.Errorf("profile %+v lacks app name or positive solo IPC", resp.Profile)
	}
	if !resp.Registered || resp.Total != 4 {
		t.Errorf("registered=%v total=%d, want true/4", resp.Registered, resp.Total)
	}
	if _, ok := s.Registry().Profile("470.lbm"); !ok {
		t.Error("registry has no 470.lbm profile after register=true")
	}
	if _, err := c.Predict(context.Background(), PredictRequest{
		Victim: "470.lbm", Aggressor: "429.mcf",
	}); err != nil {
		t.Errorf("predict with the freshly-registered victim: %v", err)
	}
}

// The tentpole guarantee: a request deadline far shorter than the sweep's
// wall-clock aborts the in-flight simulation instead of burning the worker
// budget. The measurement windows below take minutes uncancelled, so the
// elapsed-time bound proves the simulation actually stopped.
func TestCharacterizeTimeoutCancelsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation timing in short mode")
	}
	opts := smite.FastOptions()
	opts.WarmupCycles = 10_000_000
	opts.MeasureCycles = 100_000_000
	sys, err := smite.New(smite.IvyBridge.Config(), smite.WithOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{System: sys, RequestTimeout: 50 * time.Millisecond})

	start := time.Now()
	_, err = c.Characterize(context.Background(), CharacterizeRequest{App: "429.mcf"})
	elapsed := time.Since(start)

	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeDeadlineExceeded || apiErr.Status != 504 {
		t.Fatalf("got %v, want %s/504", err, CodeDeadlineExceeded)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled request took %v; the simulation kept running past the deadline", elapsed)
	}
}
