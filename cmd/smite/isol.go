package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isol"
	"repro/internal/profile"
	"repro/smite"
)

// isolSweepResult is the machine-readable form of one partition sweep,
// written by -json. The points are ordered by growing victim way share;
// point 0 (victim_ways 0) is the enforcement-free baseline.
type isolSweepResult struct {
	Machine   string           `json:"machine"`
	Victim    string           `json:"victim"`
	Aggressor string           `json:"aggressor"`
	L3Ways    int              `json:"l3_ways"`
	Throttle  uint64           `json:"throttle_refill_cycles,omitempty"`
	Points    []isolSweepPoint `json:"points"`
}

// isolSweepPoint is one operating point: the victim's exclusive way count
// and both parties' degradations against their solo runs.
type isolSweepPoint struct {
	VictimWays   int     `json:"victim_ways"`
	VictimDeg    float64 `json:"victim_deg"`
	AggressorDeg float64 `json:"aggressor_deg"`
	Throttled    bool    `json:"throttled,omitempty"`
}

// isolCmd is the single-machine hardware QoS-enforcement sweep: co-locate
// the victim with the aggressor on one SMT core and walk the L3
// way-partition ladder (optionally with an aggressor bandwidth throttle),
// reporting how the victim's degradation shrinks — and what the partition
// costs the aggressor — at each point. This is the calibration experiment
// behind the cluster scheduler's isol.DefaultSettings DegScale ladder.
func isolCmd(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("isol", flag.ExitOnError)
	victim := fs.String("victim", "", "latency-sensitive / victim application")
	aggressor := fs.String("aggressor", "", "co-located batch / aggressor application")
	waysFlag := fs.String("ways", "", "comma-separated victim way counts to sweep (default: 0, 2, half, all-but-2)")
	throttle := fs.Uint64("throttle", 0, "also throttle the aggressor to one DRAM request per this many cycles at every partitioned point (0 = no throttle)")
	jsonOut := fs.String("json", "", "write the machine-readable sweep to this file (- for stdout)")
	machine, _, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("isol: -victim and -aggressor are required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	vspec, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	aspec, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	m, opts, err := machineOptions(*machine, *fast)
	if err != nil {
		return err
	}
	// One SMT core: the victim on context 0, the aggressor filling the
	// siblings. The partition has exactly two parties, so the sweep
	// isolates the mechanism from placement effects.
	cfg := m.Config()
	cfg.Cores = 1
	ways := cfg.L3.Ways

	points, err := parseWaysSweep(*waysFlag, ways)
	if err != nil {
		return err
	}

	vJob := profile.AppThreads(vspec, 1)
	aJob := profile.AppThreads(aspec, cfg.ContextsPerCore-1)
	vSolo, err := profile.SoloContext(ctx, cfg, vJob, opts)
	if err != nil {
		return err
	}
	aSolo, err := profile.SoloContext(ctx, cfg, aJob, opts)
	if err != nil {
		return err
	}

	res := isolSweepResult{
		Machine: cfg.Name, Victim: vspec.Name, Aggressor: aspec.Name,
		L3Ways: ways, Throttle: *throttle,
	}
	fmt.Fprintf(w, "partition sweep on %s (1 core, %d contexts, %d L3 ways): %s vs %s\n",
		cfg.Name, cfg.ContextsPerCore, ways, vspec.Name, aspec.Name)
	fmt.Fprintf(w, "%12s %12s %14s\n", "victim ways", "victim deg", "aggressor deg")
	for _, v := range points {
		pcfg := cfg
		pol := isol.Policy{}
		if v > 0 {
			vMask, aMask := isol.SplitWays(v, ways)
			pol.WayMasks = make([]uint64, cfg.ContextsPerCore)
			pol.WayMasks[0] = vMask
			for g := 1; g < cfg.ContextsPerCore; g++ {
				pol.WayMasks[g] = aMask
			}
			if *throttle > 0 {
				pol.MemBudgets = make([]isol.MemBudget, cfg.ContextsPerCore)
				for g := 1; g < cfg.ContextsPerCore; g++ {
					pol.MemBudgets[g] = isol.MemBudget{Tokens: 4, RefillCycles: *throttle}
				}
			}
		}
		if err := pol.Validate(pcfg.Contexts(), ways); err != nil {
			return fmt.Errorf("isol: victim ways %d: %w", v, err)
		}
		pcfg.Isolation = pol
		run, err := profile.ColocateContext(ctx, pcfg, vJob, aJob, profile.SMT, opts)
		if err != nil {
			return err
		}
		pt := isolSweepPoint{
			VictimWays:   v,
			VictimDeg:    profile.Degradation(vSolo.AppIPC, run.AppIPC),
			AggressorDeg: profile.Degradation(aSolo.AppIPC, run.PartnerIPC),
			Throttled:    v > 0 && *throttle > 0,
		}
		res.Points = append(res.Points, pt)
		label := ""
		if pt.Throttled {
			label = "  (throttled)"
		}
		fmt.Fprintf(w, "%12d %11.2f%% %13.2f%%%s\n", pt.VictimWays, pt.VictimDeg*100, pt.AggressorDeg*100, label)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			_, err = w.Write(data)
		} else {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	return finishTrace()
}

// parseWaysSweep resolves the -ways flag (or the stock ladder) into a
// sorted, deduplicated list of victim way counts. Zero means no partition
// and anchors the sweep; every other count must leave the aggressor at
// least one way.
func parseWaysSweep(spec string, ways int) ([]int, error) {
	var points []int
	if spec == "" {
		points = []int{0, 2, ways / 2, ways - 2}
	} else {
		for _, f := range strings.Split(spec, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("isol: bad -ways entry %q: %v", f, err)
			}
			points = append(points, v)
		}
	}
	seen := map[int]bool{}
	out := points[:0]
	for _, v := range points {
		if v < 0 || v >= ways {
			return nil, fmt.Errorf("isol: victim ways %d outside [0, %d); the aggressor needs at least one way", v, ways)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}
