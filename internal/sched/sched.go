// Package sched is the deterministic parallel scheduler underneath the
// v2 characterization API: it fans independent simulation cells — one
// (application, Ruler) co-location, one pair measurement — out across a
// bounded worker pool while guaranteeing that results are bit-identical
// to a sequential run.
//
// Determinism comes from two rules:
//
//   - Workers communicate only through index-addressed slots. A task may
//     write out[i] and nothing else, so completion order cannot influence
//     the reduction; internal/simtest pins this with a metamorphic law
//     (result independence from Parallelism).
//   - Error selection is by index, not by time: when several tasks fail,
//     Map reports the lowest-index error, exactly what a sequential loop
//     breaking at the first failure would surface.
//
// Cancellation is cooperative at two granularities: Map stops dispatching
// new tasks once ctx is done, and tasks receive ctx so long-running
// simulation (engine.RunContext) can abort mid-window instead of burning
// the worker budget.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
)

// Workers resolves a parallelism setting: values above zero are taken as
// is, anything else means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Slot is per-worker storage for tasks running under Map: each worker of one
// Map invocation — including the single implicit worker of the sequential
// fast path — owns a distinct Slot for the duration of the call, and every
// task that worker executes sees the same Slot. Tasks use it to amortize
// expensive setup across the cells one worker processes (the batched
// characterization path caches one simulator chip per worker here). A Slot
// is only ever touched by its owning worker, so no synchronization is
// needed; its contents are dropped when Map returns.
type Slot struct {
	// Value is the cached per-worker state; nil until a task populates it.
	Value any
}

type slotKey struct{}

// SlotFrom returns the per-worker Slot of the innermost enclosing Map, or
// nil when ctx does not descend from a Map task. Callers must tolerate nil:
// code paths invoked both under Map and directly (e.g. one-off runs) fall
// back to non-amortized setup.
func SlotFrom(ctx context.Context) *Slot {
	s, _ := ctx.Value(slotKey{}).(*Slot)
	return s
}

func withSlot(ctx context.Context) context.Context {
	return context.WithValue(ctx, slotKey{}, &Slot{})
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// (Workers-resolved, clamped to n) and returns after all started tasks
// finish. Tasks must confine their writes to index-addressed slots of
// caller-owned storage; under that contract the result of Map is
// identical for every workers value, including 1.
//
// Error semantics are deterministic: if any task returned an error, Map
// returns the one with the lowest index — regardless of which failure
// happened first in wall-clock time. Once ctx is cancelled no new tasks
// start; if cancellation caused tasks to be skipped and no task error
// outranks it, Map returns ctx.Err(). A fully-completed run returns nil
// even if ctx was cancelled after the last dispatch.
func Map(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// With a tracer on ctx, every task gets a span and each pool worker
	// its own track, so the dispatch renders as parallel rows in the
	// Chrome trace view. traced is checked once here: when false (the
	// common case) the task closures below add zero work.
	traced := trace.FromContext(ctx) != nil
	runTask := func(ctx context.Context, i int) error {
		if !traced {
			return fn(ctx, i)
		}
		tctx, span := trace.Start(ctx, "sched.task", trace.Int("task", i))
		err := fn(tctx, i)
		if err != nil {
			span.SetAttr(trace.String("error", err.Error()))
		}
		span.End()
		return err
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, first error wins naturally.
		// The loop still owns a worker Slot so per-worker state amortizes
		// identically to the pooled path.
		sctx := withSlot(ctx)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(sctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var skipped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		wctx := ctx
		if traced {
			wctx = trace.WithTrack(ctx, fmt.Sprintf("sched.worker-%02d", w))
		}
		wctx = withSlot(wctx)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if wctx.Err() != nil {
					skipped.Store(true)
					return
				}
				errs[i] = runTask(wctx, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}
