// Command smited is the SMiTe QoS-prediction daemon: it loads persisted
// application profiles and a trained Equation 3 model, then serves
// placement decisions over HTTP/JSON so a cluster scheduler can ask
// "what happens if I co-locate these?" without ever touching the
// simulator or training pipeline at decision time.
//
// Usage:
//
//	smited -profiles profiles.json -model model.json -addr :8080
//
// Endpoints: POST /v1/predict, /v1/colocate, /v1/batch, /v1/profiles;
// POST /v1/characterize with -simulate (in-process Ruler-sweep
// simulation, cancelled when the request's deadline fires);
// GET /healthz, /metrics; /debug/pprof/ with -pprof; and, with -trace,
// per-request span tracing for requests carrying ?trace=1 plus
// GET /debug/trace/last serving the most recent render. The daemon
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight requests
// for up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/qosd"
	"repro/internal/version"
	"repro/smite"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "smited: %v\n", err)
		}
		os.Exit(2)
	}
}

// FlagError reports a flag value that fails validation; main exits 2 on
// it, and tests assert the flag name through errors.As.
type FlagError struct {
	Flag   string
	Value  string
	Reason string
}

func (e *FlagError) Error() string {
	return fmt.Sprintf("invalid -%s value %q: %s", e.Flag, e.Value, e.Reason)
}

// config is the parsed command line.
type config struct {
	addr         string
	profiles     stringList
	model        string
	surrogate    string
	surThreshold float64
	maxInFlight  int
	timeout      time.Duration
	drain        time.Duration
	pprof        bool
	trace        bool
	quiet        bool
	simulate     bool
	machine      string
	fast         bool
	parallelism  int
	version      bool
	sloConfig    string
	sloHeadroom  float64
	slo          *qosd.SLOConfig
}

// stringList lets -profiles repeat.
type stringList []string

func (l *stringList) String() string     { return fmt.Sprint([]string(*l)) }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

// run parses args, builds the daemon and serves until ctx is cancelled
// (the signal path in main). Flag and validation errors return non-nil.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	if cfg.version {
		version.Fprint(stdout, "smited")
		return nil
	}
	a, err := newApp(cfg, stdout, stderr)
	if err != nil {
		return err
	}
	return a.Run(ctx)
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("smited", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.Var(&cfg.profiles, "profiles", "persisted profile file (smite.SaveProfiles format; repeatable)")
	fs.StringVar(&cfg.model, "model", "", "persisted model file (smite.SaveModel format)")
	fs.StringVar(&cfg.surrogate, "surrogate", "", "fitted surrogate set file (smite fit format); enables the microsecond surrogate tier on /v1/predict")
	fs.Float64Var(&cfg.surThreshold, "surrogate-threshold", 0, "largest surrogate error bound to serve before falling back to the engine tier (0 = default)")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 64, "maximum concurrently-served requests")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request timeout (including queueing)")
	fs.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain window")
	fs.BoolVar(&cfg.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	fs.BoolVar(&cfg.trace, "trace", false, "trace requests carrying ?trace=1 and serve the render at GET /debug/trace/last")
	fs.BoolVar(&cfg.quiet, "quiet", false, "disable per-request logging")
	fs.BoolVar(&cfg.simulate, "simulate", false, "enable POST /v1/characterize with an in-process simulation system")
	fs.StringVar(&cfg.machine, "machine", "ivb", "simulation machine with -simulate: ivb or snb")
	fs.BoolVar(&cfg.fast, "fast", false, "use the shortened measurement windows with -simulate")
	fs.IntVar(&cfg.parallelism, "parallelism", 0, "characterization worker count with -simulate (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.sloConfig, "slo-config", "", "SLO classes as name:budget[:percentile],... (budgets are Go durations); enables POST /v1/admit")
	fs.Float64Var(&cfg.sloHeadroom, "slo-headroom", 0.1, "admission headroom in [0,1) with -slo-config; budgets shrink to budget*(1-headroom) for admission")
	fs.BoolVar(&cfg.version, "version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.version {
		return cfg, nil
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.addr == "" {
		return cfg, errors.New("-addr must not be empty")
	}
	if cfg.maxInFlight <= 0 {
		return cfg, fmt.Errorf("-max-inflight must be positive, got %d", cfg.maxInFlight)
	}
	if cfg.timeout <= 0 {
		return cfg, fmt.Errorf("-timeout must be positive, got %v", cfg.timeout)
	}
	if cfg.drain <= 0 {
		return cfg, fmt.Errorf("-drain must be positive, got %v", cfg.drain)
	}
	if cfg.machine != "ivb" && cfg.machine != "snb" {
		return cfg, fmt.Errorf("-machine must be ivb or snb, got %q", cfg.machine)
	}
	if cfg.parallelism < 0 {
		return cfg, fmt.Errorf("-parallelism must be non-negative, got %d", cfg.parallelism)
	}
	if cfg.surThreshold < 0 {
		return cfg, fmt.Errorf("-surrogate-threshold must be non-negative, got %g", cfg.surThreshold)
	}
	if cfg.surThreshold > 0 && cfg.surrogate == "" {
		return cfg, errors.New("-surrogate-threshold is set but no -surrogate file is given")
	}
	if cfg.sloConfig != "" {
		classes, err := qosd.ParseSLOClasses(cfg.sloConfig)
		if err != nil {
			return cfg, &FlagError{Flag: "slo-config", Value: cfg.sloConfig, Reason: err.Error()}
		}
		if cfg.sloHeadroom < 0 || cfg.sloHeadroom >= 1 {
			return cfg, &FlagError{Flag: "slo-headroom", Value: fmt.Sprint(cfg.sloHeadroom), Reason: "headroom must be in [0,1)"}
		}
		cfg.slo = &qosd.SLOConfig{Classes: classes, Headroom: cfg.sloHeadroom}
		if err := cfg.slo.Validate(); err != nil {
			return cfg, &FlagError{Flag: "slo-config", Value: cfg.sloConfig, Reason: err.Error()}
		}
	}
	return cfg, nil
}

// app is the assembled daemon: registry loaded from disk, qosd server,
// http server. Tests drive it directly to reach the bound address.
type app struct {
	cfg      config
	stdout   io.Writer
	logger   *slog.Logger
	reg      *qosd.Registry
	srv      *http.Server
	ln       net.Listener
	serveErr chan error
}

// newApp loads the configured profile and model files into a registry and
// wires up the server. Load failures are fatal at startup (a daemon
// serving from a half-loaded registry would hand out wrong placements).
func newApp(cfg config, stdout, stderr io.Writer) (*app, error) {
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	reg := qosd.NewRegistry()
	for _, path := range cfg.profiles {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("opening profiles: %w", err)
		}
		n, err := reg.LoadProfiles(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading profiles from %s: %w", path, err)
		}
		logger.Info("profiles loaded", "path", path, "count", n)
	}
	if cfg.model != "" {
		f, err := os.Open(cfg.model)
		if err != nil {
			return nil, fmt.Errorf("opening model: %w", err)
		}
		err = reg.LoadModel(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading model from %s: %w", cfg.model, err)
		}
		logger.Info("model loaded", "path", cfg.model)
	}
	qcfg := qosd.Config{
		MaxInFlight:        cfg.maxInFlight,
		RequestTimeout:     cfg.timeout,
		EnablePprof:        cfg.pprof,
		EnableTrace:        cfg.trace,
		SurrogateThreshold: cfg.surThreshold,
		SLO:                cfg.slo,
	}
	if cfg.slo != nil {
		logger.Info("SLO admission enabled", "classes", len(cfg.slo.Classes), "headroom", cfg.sloHeadroom)
	}
	if cfg.surrogate != "" {
		set, err := smite.LoadSurrogate(cfg.surrogate)
		if err != nil {
			return nil, fmt.Errorf("loading surrogate set from %s: %w", cfg.surrogate, err)
		}
		qcfg.Surrogate = set
		logger.Info("surrogate tier enabled", "path", cfg.surrogate,
			"models", len(set.Models), "threshold", cfg.surThreshold)
	}
	if !cfg.quiet {
		qcfg.Logger = logger
	}
	if cfg.simulate {
		machine := smite.IvyBridge
		if cfg.machine == "snb" {
			machine = smite.SandyBridgeEN
		}
		opts := smite.DefaultOptions()
		if cfg.fast {
			opts = smite.FastOptions()
		}
		sys, err := smite.New(machine.Config(),
			smite.WithOptions(opts),
			smite.WithParallelism(cfg.parallelism))
		if err != nil {
			return nil, fmt.Errorf("building simulation system: %w", err)
		}
		qcfg.System = sys
		logger.Info("simulation enabled", "machine", cfg.machine, "fast", cfg.fast,
			"parallelism", cfg.parallelism)
	}
	server := qosd.NewServer(reg, qcfg)
	return &app{
		cfg:    cfg,
		stdout: stdout,
		logger: logger,
		reg:    reg,
		srv:    &http.Server{Handler: server.Handler()},
	}, nil
}

// Start binds the listener and begins serving in the background.
func (a *app) Start() error {
	ln, err := net.Listen("tcp", a.cfg.addr)
	if err != nil {
		return err
	}
	a.ln = ln
	a.serveErr = make(chan error, 1)
	go func() {
		if err := a.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.serveErr <- err
		}
	}()
	return nil
}

// Addr returns the bound address (useful with -addr :0).
func (a *app) Addr() net.Addr { return a.ln.Addr() }

// Run serves until ctx is cancelled, then drains in-flight requests for
// up to the configured window before closing.
func (a *app) Run(ctx context.Context) error {
	if err := a.Start(); err != nil {
		return err
	}
	// The listening line goes to stdout so scripts (and the smoke test)
	// can discover the bound port when -addr ends in :0.
	fmt.Fprintf(a.stdout, "smited listening on %s\n", a.Addr())
	a.logger.Info("listening", "addr", a.Addr().String(),
		"profiles", a.reg.Len(), "max_inflight", a.cfg.maxInFlight)

	select {
	case err := <-a.serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	return a.Shutdown()
}

// Shutdown drains gracefully, falling back to a hard close if the drain
// window expires.
func (a *app) Shutdown() error {
	a.logger.Info("shutting down", "drain", a.cfg.drain)
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.drain)
	defer cancel()
	if err := a.srv.Shutdown(ctx); err != nil {
		a.srv.Close()
		return fmt.Errorf("drain window expired: %w", err)
	}
	a.logger.Info("drained")
	return nil
}
