// Command figures regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and prints the results as
// text tables (the per-experiment index lives in DESIGN.md).
//
// Usage:
//
//	figures [-scale full|test] [-fig all|table1|2|3|6|7|9|10|11|12|13|14|16|18]
//
// At -scale full the run uses the paper's experiment sizes (all 29 SPEC
// benchmarks, 4 CloudSuite applications, 4,000-server cluster) and takes
// several minutes; -scale test runs reduced sizes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "test", "experiment scale: full or test")
	figFlag := flag.String("fig", "all", "comma-separated figure ids (table1,2,3,4,6,7,9,10,11,12,13,14,16,18,ablation,crossmachine) or all")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale()
	case "test":
		scale = experiments.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q (want full or test)\n", *scaleFlag)
		os.Exit(2)
	}
	lab := experiments.NewLab(scale)

	want := map[string]bool{}
	for _, f := range strings.Split(*figFlag, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	type step struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	steps := []step{
		{"table1", func() (fmt.Stringer, error) { return lab.Table1(), nil }},
		{"2", func() (fmt.Stringer, error) { return lab.Fig2FunctionalUnits() }},
		{"3", func() (fmt.Stringer, error) { return lab.Fig3And5PortUtilization() }},
		{"4", func() (fmt.Stringer, error) { return lab.Fig4MemorySubsystem() }},
		{"6", func() (fmt.Stringer, error) { return lab.Fig6Summary() }},
		{"7", func() (fmt.Stringer, error) { return lab.Fig7Correlation() }},
		{"9", func() (fmt.Stringer, error) { return lab.Fig9RulerValidation() }},
		{"10", func() (fmt.Stringer, error) { return lab.Fig10SpecSMT() }},
		{"11", func() (fmt.Stringer, error) { return lab.Fig11SpecCMP() }},
		{"12", func() (fmt.Stringer, error) { return lab.Fig12CloudSuite() }},
		{"13", func() (fmt.Stringer, error) { return lab.Fig13TailLatency() }},
		{"14", func() (fmt.Stringer, error) { return lab.Fig14And15AvgQoS() }},
		{"16", func() (fmt.Stringer, error) { return lab.Fig16And17TailQoS() }},
		{"18", func() (fmt.Stringer, error) { return lab.Fig18TCO() }},
		{"ablation", func() (fmt.Stringer, error) { return lab.ModelAblation() }},
		{"crossmachine", func() (fmt.Stringer, error) { return lab.CrossMachine() }},
	}
	ran := 0
	for _, s := range steps {
		if !sel(s.id) {
			continue
		}
		start := time.Now()
		res, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", s.id, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %v]\n\n", s.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: no figure matched %q\n", *figFlag)
		os.Exit(2)
	}
}
