package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	clworkload "repro/internal/cluster/workload"
)

// Trace format: line-oriented JSON. The first line is a header carrying
// the format tag, the version, and the complete SimConfig — including the
// prediction table — so a trace is self-contained: replaying it needs no
// lab, no predictor and no flags, and reproduces the original run's
// placement log bit for bit at any parallelism. Every following line is
// one exogenous event tagged with its shard. Writing is deterministic
// (fixed field order, shortest float encoding), so record → replay →
// re-record round-trips to identical bytes; the trace tests pin that.
//
// Versioning: TraceVersion bumps on any incompatible change to the header
// or event schema. Readers reject unknown versions with ErrTraceVersion
// (wrapped in a *TraceVersionError naming both sides) rather than
// guessing, and anything structurally broken surfaces as ErrTraceCorrupt.

// TraceFormat tags the header line of a cluster trace.
const TraceFormat = "smite-cluster-trace"

// TraceVersion is the current trace schema version.
const TraceVersion = 1

// ErrTraceVersion reports a trace written by an incompatible schema
// version.
var ErrTraceVersion = errors.New("cluster: unsupported trace version")

// ErrTraceCorrupt reports a structurally invalid trace.
var ErrTraceCorrupt = errors.New("cluster: corrupt trace")

// TraceVersionError carries the version mismatch detail; errors.Is
// matches it against ErrTraceVersion.
type TraceVersionError struct {
	Got, Want int
}

func (e *TraceVersionError) Error() string {
	return fmt.Sprintf("cluster: trace version %d, this build reads %d", e.Got, e.Want)
}

// Is matches ErrTraceVersion.
func (e *TraceVersionError) Is(target error) bool { return target == ErrTraceVersion }

type traceHeader struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	Config  SimConfig `json:"config"`
	Events  int       `json:"events"`
}

type traceEvent struct {
	Shard int `json:"s"`
	clworkload.Event
}

// WriteTrace records a run's inputs: the normalised config and the
// per-shard exogenous event streams.
func WriteTrace(w io.Writer, cfg SimConfig, shards [][]clworkload.Event) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(shards) != cfg.Shards {
		return fmt.Errorf("cluster: %d event shards for %d sim shards", len(shards), cfg.Shards)
	}
	total := 0
	for _, ev := range shards {
		total += len(ev)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends exactly one '\n' per value
	if err := enc.Encode(traceHeader{Format: TraceFormat, Version: TraceVersion, Config: cfg, Events: total}); err != nil {
		return err
	}
	for s, evs := range shards {
		for _, ev := range evs {
			if err := enc.Encode(traceEvent{Shard: s, Event: ev}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a recorded trace back into the config and per-shard
// event streams WriteTrace was given.
func ReadTrace(r io.Reader) (SimConfig, [][]clworkload.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // headers embed the prediction table
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return SimConfig{}, nil, err
		}
		return SimConfig{}, nil, fmt.Errorf("%w: empty file", ErrTraceCorrupt)
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return SimConfig{}, nil, fmt.Errorf("%w: header: %v", ErrTraceCorrupt, err)
	}
	if hdr.Format != TraceFormat {
		return SimConfig{}, nil, fmt.Errorf("%w: format %q", ErrTraceCorrupt, hdr.Format)
	}
	if hdr.Version != TraceVersion {
		return SimConfig{}, nil, &TraceVersionError{Got: hdr.Version, Want: TraceVersion}
	}
	cfg := hdr.Config.withDefaults()
	if err := cfg.Validate(); err != nil {
		return SimConfig{}, nil, fmt.Errorf("%w: config: %v", ErrTraceCorrupt, err)
	}
	shards := make([][]clworkload.Event, cfg.Shards)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return SimConfig{}, nil, fmt.Errorf("%w: event %d: %v", ErrTraceCorrupt, n, err)
		}
		if ev.Shard < 0 || ev.Shard >= cfg.Shards {
			return SimConfig{}, nil, fmt.Errorf("%w: event %d names shard %d of %d", ErrTraceCorrupt, n, ev.Shard, cfg.Shards)
		}
		shards[ev.Shard] = append(shards[ev.Shard], ev.Event)
		n++
	}
	if err := sc.Err(); err != nil {
		return SimConfig{}, nil, err
	}
	if n != hdr.Events {
		return SimConfig{}, nil, fmt.Errorf("%w: header promises %d events, file has %d", ErrTraceCorrupt, hdr.Events, n)
	}
	return cfg, shards, nil
}
