package sched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// The core determinism contract: index-addressed output is identical for
// every worker count, including the sequential fast path.
func TestMapDeterministicAcrossWorkers(t *testing.T) {
	const n = 100
	run := func(workers int) []int {
		out := make([]int, n)
		if err := Map(context.Background(), n, workers, func(_ context.Context, i int) error {
			out[i] = i*i + 7
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 3, 8, n, n * 2} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d produced different output", w)
		}
	}
}

// Error selection is by index: the lowest-index failure wins even when a
// higher-index task fails first in wall-clock time.
func TestMapLowestIndexErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := Map(context.Background(), 8, 8, func(_ context.Context, i int) error {
			switch i {
			case 2:
				time.Sleep(2 * time.Millisecond) // fail late
				return errLow
			case 7:
				return errHigh // fail immediately
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

// A sequential run (workers=1) stops at the first error like a plain loop.
func TestMapSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Map(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks after error at index 3, want 4", got)
	}
}

// Cancellation stops dispatch and surfaces ctx.Err when work was skipped.
func TestMapCancellationSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		cancel()
	}()
	err := Map(ctx, 1000, 2, func(ctx context.Context, i int) error {
		ran.Add(1)
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		<-ctx.Done() // hold the workers until cancelled
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation did not skip work (%d tasks ran)", got)
	}
}

// A run whose tasks all complete returns nil even if ctx is cancelled
// immediately afterwards, so callers never discard complete results.
func TestMapCompletedRunIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if err := Map(ctx, 50, 4, func(context.Context, int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	cancel()
}

// Zero and negative n are no-ops; workers<=0 resolves to GOMAXPROCS.
func TestMapEdgeCases(t *testing.T) {
	called := false
	if err := Map(context.Background(), 0, 4, func(context.Context, int) error {
		called = true
		return nil
	}); err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
	out := make([]int, 5)
	if err := Map(context.Background(), 5, 0, func(_ context.Context, i int) error {
		out[i] = 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 1 {
			t.Fatalf("task %d never ran", i)
		}
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive parallelism to >= 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers must pass explicit parallelism through")
	}
}

// Pre-cancelled contexts do no work at any worker count.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		var ran atomic.Int64
		err := Map(ctx, 10, w, func(context.Context, int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", w, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran under a dead context", w, ran.Load())
		}
	}
}

func ExampleMap() {
	squares := make([]int, 4)
	_ = Map(context.Background(), len(squares), 2, func(_ context.Context, i int) error {
		squares[i] = i * i
		return nil
	})
	fmt.Println(squares)
	// Output: [0 1 4 9]
}

// TestSlotPerWorker pins the Slot contract: every task sees a non-nil Slot,
// the same Slot is reused across the tasks one worker executes, and no Slot
// is ever shared between two workers (checked by counting distinct Slots
// against the worker bound).
func TestSlotPerWorker(t *testing.T) {
	for _, workers := range []int{1, 3} {
		const n = 24
		slots := make([]*Slot, n)
		err := Map(context.Background(), n, workers, func(ctx context.Context, i int) error {
			s := SlotFrom(ctx)
			if s == nil {
				t.Errorf("workers=%d task %d: no slot", workers, i)
				return nil
			}
			if s.Value == nil {
				s.Value = new(int)
			}
			*(s.Value.(*int))++
			slots[i] = s
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		distinct := make(map[*Slot]int)
		for _, s := range slots {
			distinct[s]++
		}
		if len(distinct) > workers {
			t.Errorf("workers=%d: %d distinct slots, want at most the worker count", workers, len(distinct))
		}
		total := 0
		for s, uses := range distinct {
			got := *(s.Value.(*int))
			if got != uses {
				t.Errorf("workers=%d: slot executed %d tasks but accumulated %d", workers, uses, got)
			}
			total += got
		}
		if total != n {
			t.Errorf("workers=%d: slots accumulated %d task executions, want %d", workers, total, n)
		}
	}
}

// TestSlotAbsentOutsideMap pins the nil fallback for direct calls.
func TestSlotAbsentOutsideMap(t *testing.T) {
	if s := SlotFrom(context.Background()); s != nil {
		t.Errorf("SlotFrom outside Map = %v, want nil", s)
	}
}
