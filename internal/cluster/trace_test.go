package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 31)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := WriteTrace(&rec, cfg, events); err != nil {
		t.Fatal(err)
	}
	rcfg, revents, err := ReadTrace(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Record → read → re-record must reproduce the trace byte for byte:
	// that is what makes a trace a stable artifact, not just a lossy dump.
	var rerec bytes.Buffer
	if err := WriteTrace(&rerec, rcfg, revents); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Bytes(), rerec.Bytes()) {
		t.Fatal("re-recorded trace differs from original bytes")
	}
}

func TestTraceVersionRejected(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 31)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := WriteTrace(&rec, cfg, events); err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(rec.String(), `"version":1`, `"version":99`, 1)
	_, _, err = ReadTrace(strings.NewReader(future))
	if !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("future version read returned %v, want ErrTraceVersion", err)
	}
	var ve *TraceVersionError
	if !errors.As(err, &ve) || ve.Got != 99 || ve.Want != TraceVersion {
		t.Fatalf("version error detail = %+v", ve)
	}
}

func TestTraceCorruptRejected(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 31)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := WriteTrace(&rec, cfg, events); err != nil {
		t.Fatal(err)
	}
	good := rec.String()
	lines := strings.SplitAfter(good, "\n")

	cases := map[string]string{
		"empty":        "",
		"not json":     "hello\n",
		"wrong format": strings.Replace(good, TraceFormat, "not-a-trace", 1),
		"event junk":   lines[0] + "{\n",
		"bad shard":    lines[0] + strings.Replace(lines[1], `"s":0`, `"s":999`, 1),
		"truncated":    strings.Join(lines[:len(lines)/2], ""),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := ReadTrace(strings.NewReader(in))
			if !errors.Is(err, ErrTraceCorrupt) {
				t.Fatalf("ReadTrace = %v, want ErrTraceCorrupt", err)
			}
		})
	}
}
