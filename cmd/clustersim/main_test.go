package main

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

// Bad invocations must be rejected with an error (main turns any error into
// a non-zero exit after the FlagSet prints usage).
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"undefined flag", []string{"-bogus"}},
		{"unknown scale", []string{"-scale", "huge"}},
		{"unknown qos", []string{"-qos", "p50"}},
		{"malformed target", []string{"-targets", "0.95,banana"}},
		{"target out of range", []string{"-targets", "1.5"}},
		{"negative target", []string{"-targets", "-0.9"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(context.Background(), tc.args, &out); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

// TestServerModeMatchesInProcess is the --server acceptance check: the
// same lab run once with in-process predictions and once with every
// SMiTe prediction routed through an embedded smited daemon must produce
// bit-identical study results — same admissions, same utilisation, same
// violation statistics, down to reflect.DeepEqual on the full result.
func TestServerModeMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out study in short mode")
	}
	scale := experiments.TestScale()
	scale.ServersPerApp = 12
	lab := experiments.NewLab(scale)

	for _, qos := range []cluster.QoSKind{cluster.QoSAvg, cluster.QoSTail} {
		inProc, err := lab.ScaleOutStudy(qos, nil)
		if err != nil {
			t.Fatalf("%v in-process: %v", qos, err)
		}
		viaDaemon, err := scaleOutViaDaemon(context.Background(), lab, qos, io.Discard)
		if err != nil {
			t.Fatalf("%v via daemon: %v", qos, err)
		}
		if !reflect.DeepEqual(inProc, viaDaemon) {
			t.Errorf("%v: daemon-served study diverged from in-process:\nin-process: %+v\nvia daemon: %+v",
				qos, inProc, viaDaemon)
		}
	}
}

// TestScaleOutSmoke runs the whole study at test scale; the experiments
// package covers the physics, this pins the CLI wiring and report shape.
func TestScaleOutSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out study in short mode")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "test", "-servers", "20"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"target 95%:", "SMiTe", "Oracle", "Random", "TCO model"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "clustersim ") || !strings.Contains(buf.String(), "go1") {
		t.Errorf("version output = %q", buf.String())
	}
}
