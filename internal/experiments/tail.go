package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/linalg"
	"repro/internal/profile"
)

// Fig13Row is one latency application's tail-latency prediction accuracy.
type Fig13Row struct {
	App string
	// CalMu and CalLambda are the queue parameters calibrated from the
	// Ruler co-location profiles (the paper trains Equation 6 on the
	// Ruler-degradation/latency points).
	CalMu, CalLambda float64
	// MeanAbsRelErr is the mean |predicted − measured|/measured of the
	// 90th-percentile latency across co-locations.
	MeanAbsRelErr float64
	// Cells carries the individual points for inspection.
	Cells []Fig13Cell
}

// Fig13Cell is one co-location's tail-latency comparison.
type Fig13Cell struct {
	Batch       string
	Instances   int
	ActualDeg   float64
	PredDeg     float64
	MeasuredP90 float64
	PredP90     float64
}

// Fig13Result reproduces Figure 13: 90th-percentile latency prediction for
// Web-Search and Data-Caching (the two CloudSuite services that report
// percentile statistics).
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13TailLatency runs the experiment: the queueing model is calibrated
// per service from its Ruler characterization (degradation → simulated p90
// points), then used to predict the p90 under SPEC batch co-locations; the
// "measured" p90 comes from the queue simulator driven by the measured
// degradation.
func (l *Lab) Fig13TailLatency() (Fig13Result, error) {
	return l.Fig13TailLatencyContext(context.Background())
}

// Fig13TailLatencyContext is Fig13TailLatency with cooperative
// cancellation.
func (l *Lab) Fig13TailLatencyContext(ctx context.Context) (Fig13Result, error) {
	cs, err := l.cloudStudyData(ctx)
	if err != nil {
		return Fig13Result{}, err
	}
	set, name := l.allAppsSet()
	chars, err := l.CharacterizationsContext(ctx, SandyBridgeEN, profile.SMT, set, name)
	if err != nil {
		return Fig13Result{}, err
	}
	charBy := make(map[string]profile.Characterization)
	for _, c := range chars {
		charBy[c.App] = c
	}

	var out Fig13Result
	for _, lat := range cs.latApps {
		svc, ok := cs.services[lat]
		if !ok || !svc.ReportsPercentile {
			continue // Data-Serving and Graph-Analytics export no percentiles
		}
		ch, ok := charBy[lat]
		if !ok {
			return Fig13Result{}, fmt.Errorf("experiments: no characterization for %s", lat)
		}
		// Calibration: the Ruler sensitivities give a spread of
		// degradations; simulating the service at each yields (deg, p90)
		// points; Equation 6 linearises as
		//   −ln(1−p)/t = μ·(1−deg) − λ,
		// so μ̂ and λ̂ come from a two-parameter least squares.
		var xs [][]float64
		var ys []float64
		seedBase := uint64(1000 + len(out.Rows))
		calPoints := append([]float64{0}, ch.Sen[:]...)
		for i, deg := range calPoints {
			if deg < 0 {
				deg = 0
			}
			if (1-deg)*svc.Mu <= svc.Lambda {
				continue // saturated points carry no calibration signal
			}
			p90, err := svc.MeasureTail(deg, l.Scale.TailRequests, seedBase+uint64(i))
			if err != nil {
				return Fig13Result{}, err
			}
			if p90 <= 0 {
				continue
			}
			xs = append(xs, []float64{1 - deg, -1})
			ys = append(ys, ln1p90(svc.QoSPercentile)/p90)
		}
		beta, err := linalg.LeastSquares(xs, ys, 1e-9)
		if err != nil {
			return Fig13Result{}, fmt.Errorf("experiments: tail calibration for %s: %w", lat, err)
		}
		muHat, lambdaHat := beta[0], beta[1]
		row := Fig13Row{App: lat, CalMu: muHat, CalLambda: lambdaHat}

		var errSum float64
		n := 0
		for _, e := range cs.placementTables[profile.SMT] {
			if e.lat != lat {
				continue
			}
			if (1-e.actual)*svc.Mu <= svc.Lambda {
				continue // measured saturation: latency unbounded
			}
			measured, err := svc.MeasureTail(clamp01(e.actual), l.Scale.TailRequests, seedBase^uint64(n+7))
			if err != nil {
				return Fig13Result{}, err
			}
			pred := predictTail(svc.QoSPercentile, muHat, lambdaHat, clamp01(e.predicted))
			cell := Fig13Cell{
				Batch: e.batch, Instances: e.n,
				ActualDeg: e.actual, PredDeg: e.predicted,
				MeasuredP90: measured, PredP90: pred,
			}
			row.Cells = append(row.Cells, cell)
			if measured > 0 && pred > 0 {
				errSum += abs(pred-measured) / measured
				n++
			}
		}
		if n > 0 {
			row.MeanAbsRelErr = errSum / float64(n)
		}
		sort.Slice(row.Cells, func(a, b int) bool {
			if row.Cells[a].Batch != row.Cells[b].Batch {
				return row.Cells[a].Batch < row.Cells[b].Batch
			}
			return row.Cells[a].Instances < row.Cells[b].Instances
		})
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ln1p90 is −ln(1−p), the numerator of Equation 6.
func ln1p90(p float64) float64 { return -math.Log(1 - p) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}

// predictTail evaluates Equation 6 with calibrated parameters.
func predictTail(p, mu, lambda, deg float64) float64 {
	d := (1-deg)*mu - lambda
	if d <= 0 {
		return 0
	}
	return ln1p90(p) / d
}

// String renders the figure.
func (r Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: 90th-percentile latency prediction\n")
	t := newTable("application", "calibrated mu", "calibrated lambda", "mean |pred-meas|/meas", "paper")
	paper := map[string]string{"web-search": "4.61%", "data-caching": "6.17%"}
	for _, row := range r.Rows {
		t.row(row.App, fmt.Sprintf("%.0f", row.CalMu), fmt.Sprintf("%.0f", row.CalLambda), pct(row.MeanAbsRelErr), paper[row.App])
	}
	b.WriteString(t.String())
	return b.String()
}
