package simtest

import (
	"testing"

	"repro/internal/isol"
	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// l3VictimSpec derives a randomized but L3-resident victim: the law needs
// workloads whose working set actually lives in the shared cache, or the
// partition has nothing to protect.
func l3VictimSpec(r *xrand.Rand, name string) *workload.Spec {
	spec := RandomSpec(r, name)
	spec.FootprintBytes = uint64(1) << (21 + r.Intn(2)) // 2 or 4 MiB
	spec.Pattern = workload.PatternRandom
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return spec
}

// TestWayPartitionMonotonicity is the CAT law: giving the victim more
// exclusive L3 ways (and the aggressor correspondingly fewer) never
// increases the victim's degradation, modulo measurement noise. The
// aggressor is the L3 Ruler at full intensity on the victim's SMT sibling.
func TestWayPartitionMonotonicity(t *testing.T) {
	const eps = 0.02
	cfg := SmallIVB(2)
	ways := cfg.L3.Ways
	ruler := rulers.For(cfg, rulers.DimL3)
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0xCA7)
		spec := l3VictimSpec(r, "rand-cat")
		opts := TinyOptions()
		opts.BaseSeed = seed + 1

		solo, err := profile.Solo(cfg, profile.App(spec), opts)
		if err != nil {
			t.Fatalf("seed %d solo: %v", seed, err)
		}
		deg := func(victimWays int) float64 {
			pcfg := cfg
			v, a := isol.SplitWays(victimWays, ways)
			// Victim on core 0 context 0 (gid 0), aggressor on its SMT
			// sibling (gid 1); the other core stays unrestricted.
			pcfg.Isolation = isol.Policy{WayMasks: []uint64{v, a}}
			res, err := profile.Colocate(pcfg, profile.App(spec), profile.Rulers(ruler, 1), profile.SMT, opts)
			if err != nil {
				t.Fatalf("seed %d ways %d: %v", seed, victimWays, err)
			}
			return profile.Degradation(solo.AppIPC, res.AppIPC)
		}
		d2, d8, d14 := deg(2), deg(ways/2), deg(ways-2)
		t.Logf("seed %2d ways2=%+.4f ways%d=%+.4f ways%d=%+.4f", seed, d2, ways/2, d8, ways-2, d14)
		if d8 > d2+eps {
			t.Errorf("seed %d: growing the victim partition 2→%d ways increased degradation %.4f→%.4f", seed, ways/2, d2, d8)
		}
		if d14 > d8+eps {
			t.Errorf("seed %d: growing the victim partition %d→%d ways increased degradation %.4f→%.4f", seed, ways/2, ways-2, d8, d14)
		}
	}
}

// TestThrottleMonotonicity is the MBA law: tightening the aggressor's
// memory-bandwidth budget never increases the victim's degradation. The
// aggressor is the DRAM-bandwidth Ruler on the victim's SMT sibling.
func TestThrottleMonotonicity(t *testing.T) {
	const eps = 0.02
	cfg := SmallIVB(2)
	ruler := rulers.For(cfg, rulers.DimMemBW)
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0x3BA)
		spec := RandomSpec(r, "rand-mba")
		opts := TinyOptions()
		opts.BaseSeed = seed + 1

		solo, err := profile.Solo(cfg, profile.App(spec), opts)
		if err != nil {
			t.Fatalf("seed %d solo: %v", seed, err)
		}
		deg := func(refill uint64) float64 {
			pcfg := cfg
			if refill > 0 {
				// Throttle only the aggressor (gid 1).
				pcfg.Isolation = isol.Policy{MemBudgets: []isol.MemBudget{{}, {Tokens: 4, RefillCycles: refill}}}
			}
			res, err := profile.Colocate(pcfg, profile.App(spec), profile.Rulers(ruler, 1), profile.SMT, opts)
			if err != nil {
				t.Fatalf("seed %d refill %d: %v", seed, refill, err)
			}
			return profile.Degradation(solo.AppIPC, res.AppIPC)
		}
		dFree, dLoose, dTight := deg(0), deg(32), deg(256)
		t.Logf("seed %2d free=%+.4f loose=%+.4f tight=%+.4f", seed, dFree, dLoose, dTight)
		if dLoose > dFree+eps {
			t.Errorf("seed %d: throttling the aggressor (refill 32) increased victim degradation %.4f→%.4f", seed, dFree, dLoose)
		}
		if dTight > dLoose+eps {
			t.Errorf("seed %d: tightening the throttle 32→256 increased victim degradation %.4f→%.4f", seed, dLoose, dTight)
		}
	}
}

// TestIsolationDeterminism: an isolation-enabled configuration is as
// reproducible as a plain one — same seed, bit-identical PMU dump.
func TestIsolationDeterminism(t *testing.T) {
	cfg := SmallIVB(2)
	v, a := isol.SplitWays(4, cfg.L3.Ways)
	cfg.Isolation = isol.Policy{
		WayMasks:   []uint64{v, a},
		MemBudgets: []isol.MemBudget{{}, {Tokens: 4, RefillCycles: 64}},
	}
	r := xrand.New(0x15)
	spec := RandomSpec(r, "rand-iso-det")
	ruler := rulers.For(cfg, rulers.DimL3)
	opts := TinyOptions()
	run := func() uint64 {
		res, err := profile.Colocate(cfg, profile.App(spec), profile.Rulers(ruler, 1), profile.SMT, opts)
		if err != nil {
			t.Fatal(err)
		}
		return HashRun(res)
	}
	if h1, h2 := run(), run(); h1 != h2 {
		t.Errorf("isolation-enabled run is not deterministic: %016x != %016x", h1, h2)
	}
}

// TestSMT4Smoke is the >2-way smoke test the hardcoded-2 audit demanded:
// a 4-context POWER8-like core runs one app against three Ruler siblings
// under the runtime invariant checker, every context makes progress, and
// three co-runners interfere no less than one.
func TestSMT4Smoke(t *testing.T) {
	const eps = 0.02
	cfg := isa.Power8SMT4()
	cfg.Cores = 1
	r := xrand.New(0x54)
	spec := RandomSpec(r, "rand-smt4")
	ruler := rulers.For(cfg, rulers.DimL2)
	opts := TinyOptions()

	solo, err := profile.Solo(cfg, profile.App(spec), opts)
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	one, err := profile.Colocate(cfg, profile.App(spec), profile.Rulers(ruler, 1), profile.SMT, opts)
	if err != nil {
		t.Fatalf("1 sibling: %v", err)
	}
	three, err := profile.Colocate(cfg, profile.App(spec), profile.Rulers(ruler, 3), profile.SMT, opts)
	if err != nil {
		t.Fatalf("3 siblings: %v", err)
	}
	if len(three.PartnerCounters) != 3 {
		t.Fatalf("expected 3 partner contexts, got %d", len(three.PartnerCounters))
	}
	for i, c := range append(append([]pmu.Counters{}, three.AppCounters...), three.PartnerCounters...) {
		if c.Instructions == 0 {
			t.Errorf("context %d retired nothing", i)
		}
	}
	d1 := profile.Degradation(solo.AppIPC, one.AppIPC)
	d3 := profile.Degradation(solo.AppIPC, three.AppIPC)
	t.Logf("deg 1-sibling=%+.4f 3-sibling=%+.4f", d1, d3)
	if d3 < d1-eps {
		t.Errorf("three SMT siblings interfere less than one: %.4f < %.4f", d3, d1)
	}
}

// TestBigLittleSmoke: on the asymmetric preset, the same FP-heavy workload
// retires faster on a big core than on a little one — proof the per-class
// port maps and latencies actually reach the pipeline.
func TestBigLittleSmoke(t *testing.T) {
	cfg := isa.BigLittle()
	cfg.Cores = 2
	cfg.Classes[0].Cores = 1
	cfg.Classes[1].Cores = 1
	spec := &workload.Spec{
		Name:        "fp-hot",
		Suite:       workload.SpecFP,
		Mix:         workload.Mix{FPMul: 0.45, FPAdd: 0.35, IntAdd: 0.15, Nop: 0.05},
		MeanDepDist: 6,
		IndepFrac:   0.7,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := TinyOptions()
	res, err := profile.Solo(cfg, profile.AppThreads(spec, 2), opts)
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	big, little := res.AppCounters[0].IPC(), res.AppCounters[1].IPC()
	t.Logf("big IPC=%.3f little IPC=%.3f", big, little)
	if big <= little {
		t.Errorf("big core (%.3f IPC) not faster than little core (%.3f IPC)", big, little)
	}
}
