// Package timeline records cycle-sampled PMU timelines from a running
// simulation and renders them as a per-resource contention waterfall.
//
// A Recorder implements engine.Sampler: attached to a chip (via
// profile.Options.Sampler or engine.SetSampler), it is invoked at every
// RunContext slice boundary (16K cycles) and snapshots, per hardware
// context, the deltas of the paper's PMU counter set — IPC, per-port
// dispatch, L1D/L2/LLC misses — plus the DRAM controller's queue backlog.
// Sampling only reads chip state, so results stay bit-identical to an
// unsampled run; and because slice boundaries are cycle-deterministic, the
// recorded timeline is identical across runs and across profile
// parallelism settings.
//
// WriteChrome exports the samples as Chrome trace-event counter tracks
// ("C" events, one per context × resource, timestamped in simulated
// cycles), viewable in chrome://tracing or https://ui.perfetto.dev: the
// per-resource rows line up vertically, so the moment one context's LLC
// miss rate spikes while its neighbour's IPC collapses is visible at a
// glance — the time-resolved version of the paper's scalar sensitivity
// story.
package timeline

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/obs/trace"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
)

// Sample is one observation window for one hardware context: the counter
// deltas accumulated between the previous slice boundary and Cycle.
type Sample struct {
	Cycle uint64 // chip cycle at the end of the window
	Core  int
	Ctx   int

	// WindowStart marks the first sample after the context's counters were
	// reset (measurement-window start); its delta baseline is zero.
	WindowStart bool

	Delta pmu.Counters // counter deltas over the window
}

// ChipSample is one chip-wide observation: the DRAM queue backlog at a
// slice boundary.
type ChipSample struct {
	Cycle         uint64
	DRAMBacklog   uint64 // cycles of granted service beyond Cycle (mem.Controller.Backlog)
	TotalRequests uint64 // cumulative DRAM requests since the last counter reset
}

type ctxKey struct{ core, ctx int }

// Recorder accumulates samples. It is safe for concurrent use so that a
// single Recorder can be inspected while a simulation runs, although the
// engine only calls OnSample from the simulating goroutine.
type Recorder struct {
	mu      sync.Mutex
	last    map[ctxKey]pmu.Counters
	samples []Sample
	chip    []ChipSample
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{last: make(map[ctxKey]pmu.Counters)}
}

// OnReset implements engine.Sampler: counter baselines moved (Assign or
// ResetCounters), so drop the stored snapshots. Each context's next sample
// is delta'd against zero and tagged WindowStart.
func (r *Recorder) OnReset(c *engine.Chip) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.last)
}

// OnSample implements engine.Sampler. It snapshots every active context's
// cumulative counters, stores the delta against the previous snapshot, and
// records the DRAM backlog. A cumulative count moving backwards (a reset
// the engine did not announce) also re-baselines at zero, as a safety net.
func (r *Recorder) OnSample(c *engine.Chip) {
	cfg := c.Config()
	now := c.Cycle()
	r.mu.Lock()
	defer r.mu.Unlock()
	for core := 0; core < cfg.Cores; core++ {
		for ctx := 0; ctx < cfg.ContextsPerCore; ctx++ {
			if !c.ContextActive(core, ctx) {
				continue
			}
			cur := c.Counters(core, ctx)
			key := ctxKey{core, ctx}
			base, seen := r.last[key]
			reset := seen && cur.Cycles < base.Cycles
			if !seen || reset {
				base = pmu.Counters{}
			}
			r.last[key] = cur
			delta := cur.Sub(base)
			if delta.Cycles == 0 {
				// The context was assigned after the previous boundary but
				// has not run yet; nothing to attribute.
				continue
			}
			r.samples = append(r.samples, Sample{
				Cycle:       now,
				Core:        core,
				Ctx:         ctx,
				WindowStart: !seen || reset,
				Delta:       delta,
			})
		}
	}
	requests, _, _ := c.Memory().Stats()
	r.chip = append(r.chip, ChipSample{
		Cycle:         now,
		DRAMBacklog:   c.Memory().Backlog(now),
		TotalRequests: requests,
	})
}

// Samples returns a copy of the per-context samples in record order
// (chronological; core-major within one boundary).
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// ChipSamples returns a copy of the chip-wide samples in record order.
func (r *Recorder) ChipSamples() []ChipSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ChipSample, len(r.chip))
	copy(out, r.chip)
	return out
}

// Reset drops all samples and baselines, returning the recorder to its
// initial state.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.last = make(map[ctxKey]pmu.Counters)
	r.samples = nil
	r.chip = nil
}

// WriteChrome renders the recorded timeline as Chrome trace-event counter
// tracks. Each context gets an IPC row, a port-utilisation row (uops per
// cycle per port), and a cache-miss row (misses per kilocycle per level);
// the chip gets a DRAM backlog row. Timestamps are simulated cycles
// reinterpreted as microseconds, so the viewer's time axis reads directly
// in cycles. Output is deterministic for a fixed sample set.
func (r *Recorder) WriteChrome(w io.Writer) error {
	samples := r.Samples()
	chip := r.ChipSamples()

	evs := make([]trace.ChromeEvent, 0, 3*len(samples)+len(chip))
	for _, s := range samples {
		prefix := fmt.Sprintf("c%dt%d", s.Core, s.Ctx)
		kilo := float64(s.Delta.Cycles) / 1000.0
		ports := make(map[string]float64, isa.NumPorts)
		for p := 0; p < isa.NumPorts; p++ {
			ports[fmt.Sprintf("p%d", p)] = round3(float64(s.Delta.PortUops[p]) / float64(s.Delta.Cycles))
		}
		evs = append(evs,
			trace.ChromeEvent{
				Name: prefix + " IPC", Phase: "C", TS: float64(s.Cycle), PID: 0, TID: 0,
				CArgs: map[string]float64{"ipc": round3(s.Delta.IPC())},
			},
			trace.ChromeEvent{
				Name: prefix + " port uops/cycle", Phase: "C", TS: float64(s.Cycle), PID: 0, TID: 0,
				CArgs: ports,
			},
			trace.ChromeEvent{
				Name: prefix + " misses/kcycle", Phase: "C", TS: float64(s.Cycle), PID: 0, TID: 0,
				CArgs: map[string]float64{
					"L1D": round3(float64(s.Delta.L1DMisses) / kilo),
					"L2":  round3(float64(s.Delta.L2Misses) / kilo),
					"LLC": round3(float64(s.Delta.L3Misses) / kilo),
				},
			},
		)
	}
	for _, s := range chip {
		evs = append(evs, trace.ChromeEvent{
			Name: "DRAM", Phase: "C", TS: float64(s.Cycle), PID: 0, TID: 0,
			CArgs: map[string]float64{"backlog_cycles": float64(s.DRAMBacklog)},
		})
	}
	return trace.WriteChromeEvents(w, evs)
}

// round3 rounds to three decimals so exported rates are stable,
// human-readable numbers rather than 17-digit float dumps.
func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
