package profile

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rulers"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/simcache"
	"repro/internal/workload"
)

func mustSpec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cacheTestOptions() Options {
	return Options{
		PrewarmUops:   20_000,
		WarmupCycles:  4_000,
		MeasureCycles: 8_000,
		BaseSeed:      1,
	}
}

func sameResult(a, b RunResult) bool {
	if a.AppIPC != b.AppIPC || a.PartnerIPC != b.PartnerIPC ||
		len(a.AppCounters) != len(b.AppCounters) || len(a.PartnerCounters) != len(b.PartnerCounters) {
		return false
	}
	for i := range a.AppCounters {
		if a.AppCounters[i] != b.AppCounters[i] {
			return false
		}
	}
	for i := range a.PartnerCounters {
		if a.PartnerCounters[i] != b.PartnerCounters[i] {
			return false
		}
	}
	return true
}

// TestCachedBitIdentical verifies a cache hit reproduces the uncached run
// exactly, counter for counter, for both solo and co-located runs.
func TestCachedBitIdentical(t *testing.T) {
	cfg := isa.IvyBridge()
	cfg.Cores = 1
	app := App(mustSpec(t, "429.mcf"))
	partner := App(mustSpec(t, "470.lbm"))

	opts := cacheTestOptions()
	uncachedSolo, err := Solo(cfg, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	uncachedCo, err := Colocate(cfg, app, partner, SMT, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Cache = simcache.New[RunResult]()
	firstSolo, err := Solo(cfg, app, opts) // miss: simulates
	if err != nil {
		t.Fatal(err)
	}
	cachedSolo, err := Solo(cfg, app, opts) // hit
	if err != nil {
		t.Fatal(err)
	}
	firstCo, err := Colocate(cfg, app, partner, SMT, opts)
	if err != nil {
		t.Fatal(err)
	}
	cachedCo, err := Colocate(cfg, app, partner, SMT, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		name     string
		got, ref RunResult
	}{
		{"solo miss vs uncached", firstSolo, uncachedSolo},
		{"solo hit vs uncached", cachedSolo, uncachedSolo},
		{"co miss vs uncached", firstCo, uncachedCo},
		{"co hit vs uncached", cachedCo, uncachedCo},
	} {
		if !sameResult(c.got, c.ref) {
			t.Errorf("%s: results differ: %+v vs %+v", c.name, c.got, c.ref)
		}
	}
	if st := opts.Cache.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

// TestCacheHitIsolation verifies a caller mutating a cache-hit result does
// not corrupt the stored entry.
func TestCacheHitIsolation(t *testing.T) {
	cfg := isa.IvyBridge()
	cfg.Cores = 1
	opts := cacheTestOptions()
	opts.Cache = simcache.New[RunResult]()
	app := App(mustSpec(t, "429.mcf"))

	first, err := Solo(cfg, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	first.AppCounters[0].Instructions = math.MaxUint64 // vandalise our copy
	second, err := Solo(cfg, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.AppCounters[0].Instructions == math.MaxUint64 {
		t.Fatal("cache returned an aliased slice: caller mutation reached the stored result")
	}
}

// TestCacheKeySensitivity verifies that runs which must differ — different
// Ruler intensity, placement, co-runner, options, or machine — never share
// a cache entry.
func TestCacheKeySensitivity(t *testing.T) {
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	l2 := rulers.For(cfg, rulers.DimL2)
	l1d := rulers.For(cfg, rulers.DimL1)

	app := App(mustSpec(t, "429.mcf"))
	opts := cacheTestOptions()

	base, ok := cacheKey(cfg, app, Rulers(l2, 1), SMT, opts)
	if !ok {
		t.Fatal("app+ruler jobs should be fingerprintable")
	}

	altCfg := cfg
	altCfg.Cores = 1
	altOpts := opts
	altOpts.MeasureCycles++
	altSeed := opts
	altSeed.BaseSeed++
	variants := []struct {
		name string
		key  func() (simcache.Key, bool)
	}{
		{"intensity", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, Rulers(l2.WithIntensity(l2.Intensity/2), 1), SMT, opts)
		}},
		{"placement", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, Rulers(l2, 1), CMP, opts)
		}},
		{"ruler dimension", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, Rulers(l1d, 1), SMT, opts)
		}},
		{"ruler instances", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, Rulers(l2, 2), SMT, opts)
		}},
		{"partner app", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, App(mustSpec(t, "470.lbm")), SMT, opts)
		}},
		{"solo vs co-located", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, nil, SMT, opts)
		}},
		{"options window", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, Rulers(l2, 1), SMT, altOpts)
		}},
		{"base seed", func() (simcache.Key, bool) {
			return cacheKey(cfg, app, Rulers(l2, 1), SMT, altSeed)
		}},
		{"machine config", func() (simcache.Key, bool) {
			return cacheKey(altCfg, app, Rulers(l2, 1), SMT, opts)
		}},
	}
	for _, v := range variants {
		k, ok := v.key()
		if !ok {
			t.Errorf("%s: not fingerprintable", v.name)
			continue
		}
		if k == base {
			t.Errorf("%s: collided with base key", v.name)
		}
	}

	// Cache pointer and Parallelism must NOT affect the key: they do not
	// influence results, and keying them would shatter sharing.
	shared := opts
	shared.Cache = simcache.New[RunResult]()
	shared.Parallelism = 7
	if k, _ := cacheKey(cfg, app, Rulers(l2, 1), SMT, shared); k != base {
		t.Error("Cache/Parallelism leaked into the key")
	}
}

// TestStreamJobBypassesCache verifies closure-backed jobs never get keyed
// (their behavior is invisible to the fingerprint).
func TestStreamJobBypassesCache(t *testing.T) {
	cfg := isa.IvyBridge()
	sj := StreamJob("custom", 1, func(instance int, seed uint64) engine.Stream { return nil })
	if _, ok := cacheKey(cfg, sj, nil, SMT, cacheTestOptions()); ok {
		t.Fatal("streamJob produced a cache key; closures must bypass the cache")
	}
	if _, ok := cacheKey(cfg, App(mustSpec(t, "429.mcf")), sj, SMT, cacheTestOptions()); ok {
		t.Fatal("streamJob partner produced a cache key")
	}
}

// TestCacheConcurrent drives one shared cache from a pool of goroutines
// re-requesting a small set of runs; under -race this validates the
// single-flight path against the worker pools above it.
func TestCacheConcurrent(t *testing.T) {
	cfg := isa.IvyBridge()
	cfg.Cores = 1
	opts := cacheTestOptions()
	opts.PrewarmUops = 5_000
	opts.WarmupCycles = 1_000
	opts.MeasureCycles = 2_000
	opts.Cache = simcache.New[RunResult]()

	apps := []Job{
		App(mustSpec(t, "429.mcf")),
		App(mustSpec(t, "470.lbm")),
		App(mustSpec(t, "453.povray")),
	}
	want := make([]RunResult, len(apps))
	for i, a := range apps {
		r, err := Solo(cfg, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				idx := (g + i) % len(apps)
				r, err := Solo(cfg, apps[idx], opts)
				if err != nil {
					t.Errorf("solo %s: %v", apps[idx].Name(), err)
					return
				}
				if !sameResult(r, want[idx]) {
					t.Errorf("%s: concurrent cached result diverged", apps[idx].Name())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := opts.Cache.Stats(); st.Misses != uint64(len(apps)) {
		t.Errorf("misses = %d, want %d (each app simulated once)", st.Misses, len(apps))
	}
}
