// Package simcache provides content-addressed memoization for simulation
// results. A Key canonically identifies everything that determines a run's
// outcome (workload spec, co-runner placement, machine configuration,
// measurement options); the cache then collapses the repeated identical
// simulations that characterization sweeps, prediction studies and
// ablations issue into a single execution per key.
//
// The cache is safe for concurrent use and single-flight per key: when
// several goroutines request the same missing key at once, exactly one
// computes while the rest block and share its result. Results must be
// treated as immutable by callers (or defensively copied on return, as
// internal/profile does for counter slices).
package simcache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
)

// Key is a content hash identifying one simulation. Construct it with
// KeyOf; the zero Key is valid but only matches itself.
type Key [sha256.Size]byte

// Short returns an abbreviated hex form of the key for logs and trace
// attributes.
func (k Key) Short() string { return hex.EncodeToString(k[:4]) }

// KeyOf derives a Key from the canonical Go-syntax representation (%#v) of
// each part, in order. This is deterministic for value types built from
// scalars, strings, arrays and (pointers to) such structs — including
// unexported fields — which covers isa.Config, workload.Spec, rulers.Ruler
// and profile.Options. Parts must not contain maps (iteration order would
// make the key non-deterministic) or cyclic pointers.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	for _, p := range parts {
		// \x1f separates parts so ("ab","c") cannot collide with ("a","bc").
		fmt.Fprintf(h, "%#v\x1f", p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts Do calls served from a stored or in-flight computation;
	// Misses counts Do calls that executed their compute function.
	Hits, Misses uint64
	// Entries is the number of completed results currently stored.
	Entries int
}

// Cache memoizes values of type V by Key with single-flight semantics.
// The zero value is not usable; construct with New.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[Key]*entry[V]

	hits   atomic.Uint64
	misses atomic.Uint64
}

type entry[V any] struct {
	done chan struct{} // closed when the flight finishes (either way)
	val  V             // written before close(done)
	ok   bool          // false: the flight failed and the entry was removed
}

// New builds an empty cache.
func New[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[Key]*entry[V])}
}

// Do returns the cached value for k, computing it with compute on a miss.
// Concurrent callers of the same missing key block on the single in-flight
// computation and share its value (each counted as a hit). If compute
// fails or panics, nothing is cached, waiters of that flight retry, and
// the error (or panic) propagates to compute's caller. The returned bool
// reports whether the value came from the cache or another flight.
func (c *Cache[V]) Do(k Key, compute func() (V, error)) (V, bool, error) {
	return c.DoContext(context.Background(), k, func(context.Context) (V, error) { return compute() })
}

// DoContext is Do with request-context propagation, the single-flight
// form the qosd daemon and the context-aware profiling layer use. Two
// properties matter for serving:
//
//   - A cancelled *leader* does not poison followers: compute receives the
//     leader's ctx, and when it fails (including with ctx.Err()) nothing is
//     cached and the entry is removed, so a waiter whose own context is
//     still live retries and becomes the new leader instead of inheriting
//     the dead request's failure.
//   - A cancelled *waiter* stops waiting: blocked followers select on
//     their own ctx as well as the flight, so a client disconnect releases
//     the handler even while another request's computation is in flight.
func (c *Cache[V]) DoContext(ctx context.Context, k Key, compute func(ctx context.Context) (V, error)) (V, bool, error) {
	// With a tracer on ctx every lookup gets a span whose outcome attribute
	// distinguishes a hit, a single-flight wait behind another goroutine's
	// computation, and a miss that computed. tr == nil costs one context
	// lookup per call.
	tr := trace.FromContext(ctx)
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, false, err
		}
		c.mu.Lock()
		if e, ok := c.entries[k]; ok {
			c.mu.Unlock()
			var span *trace.Span
			if tr != nil {
				// An already-closed flight is a plain hit; an open one means
				// this caller blocks behind the in-flight leader.
				outcome := "hit"
				select {
				case <-e.done:
				default:
					outcome = "wait"
				}
				_, span = trace.Start(ctx, "simcache.lookup",
					trace.String("key", k.Short()), trace.String("outcome", outcome))
			}
			select {
			case <-e.done:
			case <-ctx.Done():
				span.SetAttr(trace.String("error", "cancelled"))
				span.End()
				return zero, false, ctx.Err()
			}
			if !e.ok {
				span.SetAttr(trace.String("retry", "flight-failed"))
				span.End()
				continue // that flight failed; try to compute ourselves
			}
			c.hits.Add(1)
			span.End()
			return e.val, true, nil
		}
		e := &entry[V]{done: make(chan struct{})}
		c.entries[k] = e
		c.mu.Unlock()
		c.misses.Add(1)

		var span *trace.Span
		if tr != nil {
			ctx, span = trace.Start(ctx, "simcache.compute",
				trace.String("key", k.Short()), trace.String("outcome", "miss"))
		}
		v, err := c.fly(k, e, func() (V, error) { return compute(ctx) })
		span.End()
		if err != nil {
			return zero, false, err
		}
		return v, false, nil
	}
}

// fly runs one computation for k, publishing into e. On failure (error or
// panic) the entry is removed so a later Do can retry.
func (c *Cache[V]) fly(k Key, e *entry[V], compute func() (V, error)) (v V, err error) {
	completed := false
	defer func() {
		if !completed { // error return or panic unwinding
			c.mu.Lock()
			delete(c.entries, k)
			c.mu.Unlock()
		}
		close(e.done)
	}()
	v, err = compute()
	if err != nil {
		return v, err
	}
	e.val, e.ok = v, true
	completed = true
	return v, nil
}

// Get returns the completed value for k without computing. It does not
// wait for an in-flight computation and does not count toward hit/miss
// statistics.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			if e.ok {
				return e.val, true
			}
		default:
		}
	}
	var zero V
	return zero, false
}

// Stats snapshots the cache counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	n := 0
	for _, e := range c.entries {
		select {
		case <-e.done:
			if e.ok {
				n++
			}
		default:
		}
	}
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
