package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func baseConfig() Config {
	return Config{
		Machines: 100, Horizon: 10, Lats: 3, Batches: 4, Seed: 42,
		ArrivalRate: 200, MeanDuration: 0.5,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Diurnal = 0.5
	cfg.BurstProb, cfg.BurstFactor = 0.2, 3
	cfg.Drift = 0.3
	cfg.Churn = 0.05
	for shard := 0; shard < 4; shard++ {
		a, err := Generate(cfg, shard, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(cfg, shard, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d: two generations differ", shard)
		}
		if len(a) == 0 {
			t.Fatalf("shard %d: empty stream", shard)
		}
	}
	// Different shards must not replay each other's stream.
	s0, _ := Generate(cfg, 0, 4)
	s1, _ := Generate(cfg, 1, 4)
	if len(s0) == len(s1) && reflect.DeepEqual(s0, s1) {
		t.Fatal("shards 0 and 1 generated identical streams")
	}
}

func TestGenerateOrderedAndValid(t *testing.T) {
	cfg := baseConfig()
	cfg.Churn = 0.1
	ev, err := Generate(cfg, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for i, e := range ev {
		if e.At < 0 || e.At >= cfg.Horizon {
			t.Fatalf("event %d at %g outside [0, %g)", i, e.At, cfg.Horizon)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && ev[i-1].At > e.At {
			t.Fatalf("events out of order at %d: %g after %g", i, e.At, ev[i-1].At)
		}
		kinds[e.Kind]++
		switch e.Kind {
		case KindJobArrive:
			if e.Batch < 0 || e.Batch >= cfg.Batches || e.Duration <= 0 {
				t.Fatalf("bad job arrival %+v", e)
			}
		case KindMachineUp:
			if e.Lat < 0 || e.Lat >= cfg.Lats {
				t.Fatalf("bad machine-up %+v", e)
			}
		case KindMachineDown:
			if e.Rank < 0 || e.Rank >= 1 {
				t.Fatalf("bad machine-down %+v", e)
			}
		}
	}
	for _, k := range []Kind{KindJobArrive, KindMachineUp, KindMachineDown} {
		if kinds[k] == 0 {
			t.Errorf("no %v events generated", k)
		}
	}
}

// TestDiurnalShapesRate checks the temporal modulation does what it says:
// with a full-amplitude-ish sinusoid over one period, the quarter of the
// horizon around the crest must see more arrivals than the trough quarter.
func TestDiurnalShapesRate(t *testing.T) {
	cfg := baseConfig()
	cfg.ArrivalRate = 2000
	cfg.Diurnal = 0.8
	cfg.Period = cfg.Horizon
	ev, err := Generate(cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	crest, trough := 0, 0 // sin peaks at H/4, bottoms at 3H/4
	for _, e := range ev {
		if e.Kind != KindJobArrive {
			continue
		}
		switch {
		case e.At >= cfg.Horizon/8 && e.At < 3*cfg.Horizon/8:
			crest++
		case e.At >= 5*cfg.Horizon/8 && e.At < 7*cfg.Horizon/8:
			trough++
		}
	}
	if crest <= trough {
		t.Fatalf("diurnal modulation invisible: crest %d <= trough %d arrivals", crest, trough)
	}
}

// TestMixDrift checks per-window drift actually moves the batch mix: with
// a strong drift the first and last window populations should differ more
// than the uniform-mix sampling noise.
func TestMixDrift(t *testing.T) {
	cfg := baseConfig()
	cfg.ArrivalRate = 5000
	cfg.Horizon = 20
	cfg.Window = 10
	cfg.Drift = 1.5
	ev, err := Generate(cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]float64, cfg.Batches)
	last := make([]float64, cfg.Batches)
	var nf, nl float64
	for _, e := range ev {
		if e.Kind != KindJobArrive {
			continue
		}
		if e.At < cfg.Window {
			first[e.Batch]++
			nf++
		} else {
			last[e.Batch]++
			nl++
		}
	}
	var dist float64
	for b := range first {
		dist += math.Abs(first[b]/nf - last[b]/nl)
	}
	if dist < 0.1 {
		t.Fatalf("mix drift invisible: total-variation distance %g between windows", dist)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"machines", func(c *Config) { c.Machines = -1 }, "Machines"},
		// Horizon = 0 must stay rejected even for otherwise-degenerate
		// worlds: the window length derives from it, and a zero horizon
		// turns the per-window rates into NaNs.
		{"horizon", func(c *Config) { c.Horizon = 0 }, "Horizon"},
		{"apps", func(c *Config) { c.Batches = 0 }, "application counts"},
		{"arrival", func(c *Config) { c.ArrivalRate = -1 }, "ArrivalRate"},
		{"duration", func(c *Config) { c.MeanDuration = 0 }, "MeanDuration"},
		{"diurnal", func(c *Config) { c.Diurnal = 1 }, "Diurnal"},
		{"burst", func(c *Config) { c.BurstProb = 0.5 }, "BurstFactor"},
		{"drift", func(c *Config) { c.Drift = -0.1 }, "Drift"},
		{"churn", func(c *Config) { c.Churn = -1 }, "Churn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.frag)
			}
		})
	}
	if _, err := Generate(baseConfig(), 2, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestDegenerateWorlds pins that zero-machine and zero-arrival configs
// are legal and generate the streams they imply: no arrivals at rate 0,
// no churn with no machines. The simulator round-trips these to empty
// placement logs (see cluster's trace tests).
func TestDegenerateWorlds(t *testing.T) {
	empty := baseConfig()
	empty.Machines = 0
	empty.ArrivalRate = 0
	empty.MeanDuration = 0 // only required when arrivals are enabled
	empty.Churn = 0.5      // churn scales with the (zero) fleet size
	if err := empty.Validate(); err != nil {
		t.Fatalf("degenerate config rejected: %v", err)
	}
	ev, err := Generate(empty, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No machines means no churn events even with Churn > 0, and a zero
	// arrival rate means no jobs: the stream must be empty.
	if len(ev) != 0 {
		t.Fatalf("degenerate world generated %d events, want 0", len(ev))
	}

	quiet := baseConfig()
	quiet.ArrivalRate = 0
	quiet.MeanDuration = 0
	quiet.Churn = 0
	ev, err = Generate(quiet, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Fatalf("zero-arrival world generated %d events, want 0", len(ev))
	}
}
