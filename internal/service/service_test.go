package service

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func sampleService() Service {
	return Service{Name: "svc", Mu: 1000, Lambda: 500, QoSPercentile: 0.9, ReportsPercentile: true}
}

func TestFromSpec(t *testing.T) {
	ws, err := workload.ByName("web-search")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := FromSpec(ws)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Mu != ws.ServiceRate || svc.Lambda != ws.ArrivalRate || svc.QoSPercentile != 0.90 {
		t.Errorf("FromSpec = %+v", svc)
	}
	batch, _ := workload.ByName("429.mcf")
	if _, err := FromSpec(batch); err == nil {
		t.Error("batch app accepted as a service")
	}
}

func TestPredictTailBaseline(t *testing.T) {
	svc := sampleService()
	want := -math.Log(0.1) / 500 // (mu-lambda) = 500
	if got := svc.BaselineTail(); math.Abs(got-want) > 1e-12 {
		t.Errorf("baseline p90 = %g, want %g", got, want)
	}
}

// Property: tail latency grows with degradation; TailQoS shrinks.
func TestTailMonotonicity(t *testing.T) {
	svc := sampleService()
	if err := quick.Check(func(a, b uint8) bool {
		d1 := float64(a%40) / 100
		d2 := float64(b%40) / 100
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return svc.PredictTail(d1) <= svc.PredictTail(d2) && svc.TailQoS(d1) >= svc.TailQoS(d2)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTailQoSBounds(t *testing.T) {
	svc := sampleService()
	if q := svc.TailQoS(0); q != 1 {
		t.Errorf("TailQoS(0) = %g", q)
	}
	if q := svc.TailQoS(0.6); q != 0 { // saturated
		t.Errorf("TailQoS(saturated) = %g", q)
	}
}

// The super-linear effect the paper highlights: at 50% load, a 30%
// degradation must inflate tail latency by far more than 30%.
func TestQueueingSuperLinearity(t *testing.T) {
	svc := sampleService()
	inflation := svc.PredictTail(0.30) / svc.BaselineTail()
	if inflation < 2 {
		t.Errorf("30%% degradation inflated p90 only %.2fx; queueing effect missing", inflation)
	}
}

func TestMeasureTailMatchesPredictTail(t *testing.T) {
	svc := sampleService()
	for _, deg := range []float64{0, 0.2} {
		measured, err := svc.MeasureTail(deg, 300_000, 5)
		if err != nil {
			t.Fatal(err)
		}
		predicted := svc.PredictTail(deg)
		if rel := math.Abs(measured-predicted) / predicted; rel > 0.05 {
			t.Errorf("deg=%.1f: measured %.5f vs predicted %.5f", deg, measured, predicted)
		}
	}
}

func TestMeasureTailSaturationError(t *testing.T) {
	svc := sampleService()
	if _, err := svc.MeasureTail(0.9, 1000, 1); err == nil {
		t.Error("saturated measurement accepted")
	}
}

func TestAvgQoS(t *testing.T) {
	cases := []struct{ deg, want float64 }{
		{0, 1}, {0.25, 0.75}, {1.5, 0}, {-0.5, 1},
	}
	for _, c := range cases {
		if got := AvgQoS(c.deg); got != c.want {
			t.Errorf("AvgQoS(%g) = %g, want %g", c.deg, got, c.want)
		}
	}
}
