// Package workload generates the exogenous event streams driving the
// warehouse-scale cluster simulation in internal/cluster: batch-job
// arrivals shaped by temporal rate curves (diurnal modulation, bursty
// windows), per-window request-mix drift over the batch-application
// population, and machine churn (arrivals and decommissions).
//
// Everything is deterministic from a seed. Each shard of the cluster
// draws its stream from an independent seeded xrand generator, and all
// window-level decisions (burst state, mix weights) come from per-window
// generators derived from (seed, shard, window index), so the stream of
// one window never depends on how many events earlier windows produced.
//
// The generated events are exogenous only: job arrivals carry their
// duration, machine decommissions carry a rank selecting the victim among
// the machines alive at processing time, and nothing here depends on
// placement decisions. That split is what makes trace record/replay exact:
// a recorded stream replayed through the simulator reproduces the original
// run's placement log bit for bit (internal/simtest pins this as a law).
package workload

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Kind discriminates exogenous cluster events.
type Kind uint8

const (
	// KindMachineUp adds a machine running latency application Lat.
	KindMachineUp Kind = iota + 1
	// KindMachineDown decommissions the machine selected by Rank among
	// the machines alive when the event is processed.
	KindMachineDown
	// KindJobArrive offers a batch job of application Batch running for
	// Duration to the cluster scheduler.
	KindJobArrive
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMachineUp:
		return "machine-up"
	case KindMachineDown:
		return "machine-down"
	case KindJobArrive:
		return "job-arrive"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one exogenous cluster event. Fields not used by a kind stay
// zero; Seq is shard-local and strictly increasing, so (At, Seq) totally
// orders a shard's stream even when two events share a timestamp.
type Event struct {
	At   float64 `json:"t"`
	Seq  uint64  `json:"q"`
	Kind Kind    `json:"k"`
	// Lat is the latency-application index of a new machine (KindMachineUp).
	Lat int `json:"l,omitempty"`
	// Batch is the batch-application index of a job (KindJobArrive).
	Batch int `json:"b,omitempty"`
	// Duration is the job's run time (KindJobArrive).
	Duration float64 `json:"d,omitempty"`
	// Rank in [0, 1) selects the decommission victim (KindMachineDown).
	Rank float64 `json:"r,omitempty"`
}

// Config parameterises one generated cluster workload. Rates are
// fleet-wide; Generate divides them across shards.
type Config struct {
	// Machines is the initial fleet size (also the scale for churn rates).
	Machines int `json:"machines"`
	// Horizon is the simulated time span events are generated over.
	Horizon float64 `json:"horizon"`
	// Lats and Batches are the application population sizes; events carry
	// indices in [0, Lats) and [0, Batches).
	Lats    int `json:"lats"`
	Batches int `json:"batches"`
	// Seed drives every random draw.
	Seed uint64 `json:"seed"`

	// ArrivalRate is the mean fleet-wide batch-job arrival rate (jobs per
	// time unit) before temporal modulation.
	ArrivalRate float64 `json:"arrival_rate"`
	// MeanDuration is the mean exponential job duration.
	MeanDuration float64 `json:"mean_duration"`

	// Diurnal is the relative amplitude in [0, 1) of a sinusoidal rate
	// modulation with period Period: rate(t) scales by
	// 1 + Diurnal·sin(2πt/Period). Zero disables it.
	Diurnal float64 `json:"diurnal,omitempty"`
	// Period is the diurnal period; defaults to Horizon when zero and
	// Diurnal is set.
	Period float64 `json:"period,omitempty"`

	// BurstProb is the probability that a window is bursty, multiplying
	// its arrival rate by BurstFactor. Zero disables bursts.
	BurstProb float64 `json:"burst_prob,omitempty"`
	// BurstFactor is the bursty-window rate multiplier (> 1).
	BurstFactor float64 `json:"burst_factor,omitempty"`

	// Window is the length of the temporal windows burst state and mix
	// drift are re-drawn on. Defaults to Horizon/24 when zero and either
	// bursts or drift are enabled.
	Window float64 `json:"window,omitempty"`
	// Drift is the per-window log-scale random-walk step of the batch-mix
	// weights: each window, every batch application's weight is multiplied
	// by exp(Drift·u) with u uniform in [-1, 1], then the weights are
	// renormalised. Zero keeps the mix uniform forever.
	Drift float64 `json:"drift,omitempty"`

	// Churn is the per-machine rate of churn events: the fleet sees
	// Churn·Machines machine arrivals and as many decommissions per time
	// unit in expectation. Zero freezes the fleet.
	Churn float64 `json:"churn,omitempty"`
}

// Validate rejects configurations Generate cannot honour. Degenerate
// worlds are legal: zero machines and/or a zero arrival rate produce an
// empty (or churn-only) stream, which the simulator and trace codec
// round-trip to an empty placement log. Horizon stays strictly positive
// even then — the window length is derived from it, and a zero horizon
// would poison the per-window rate math with NaNs.
func (c Config) Validate() error {
	switch {
	case c.Machines < 0:
		return fmt.Errorf("workload: Machines must be non-negative, got %d", c.Machines)
	case c.Horizon <= 0:
		return fmt.Errorf("workload: Horizon must be positive, got %g", c.Horizon)
	case c.Lats <= 0 || c.Batches <= 0:
		return fmt.Errorf("workload: need positive application counts, got %d lats, %d batches", c.Lats, c.Batches)
	case c.ArrivalRate < 0:
		return fmt.Errorf("workload: ArrivalRate must be non-negative, got %g", c.ArrivalRate)
	case c.ArrivalRate > 0 && c.MeanDuration <= 0:
		return fmt.Errorf("workload: MeanDuration must be positive with arrivals enabled, got %g", c.MeanDuration)
	case c.Diurnal < 0 || c.Diurnal >= 1:
		return fmt.Errorf("workload: Diurnal must be in [0, 1), got %g", c.Diurnal)
	case c.Period < 0:
		return fmt.Errorf("workload: Period must be non-negative, got %g", c.Period)
	case c.BurstProb < 0 || c.BurstProb > 1:
		return fmt.Errorf("workload: BurstProb must be in [0, 1], got %g", c.BurstProb)
	case c.BurstProb > 0 && c.BurstFactor <= 1:
		return fmt.Errorf("workload: BurstFactor must exceed 1 with bursts enabled, got %g", c.BurstFactor)
	case c.Window < 0:
		return fmt.Errorf("workload: Window must be non-negative, got %g", c.Window)
	case c.Drift < 0:
		return fmt.Errorf("workload: Drift must be non-negative, got %g", c.Drift)
	case c.Churn < 0:
		return fmt.Errorf("workload: Churn must be non-negative, got %g", c.Churn)
	}
	return nil
}

// window returns the effective window length.
func (c Config) window() float64 {
	if c.Window > 0 {
		return c.Window
	}
	return c.Horizon / 24
}

// period returns the effective diurnal period.
func (c Config) period() float64 {
	if c.Period > 0 {
		return c.Period
	}
	return c.Horizon
}

// shardSeed decorrelates the per-shard generators: nearby shards of the
// same seed must not see shifted copies of one stream.
func shardSeed(seed uint64, shard int, salt uint64) uint64 {
	return seed ^ salt ^ (uint64(shard)+1)*0x9E3779B97F4A7C15
}

// windowState is the per-window temporal state: the arrival-rate
// multiplier and the drifted batch-mix CDF.
type windowState struct {
	rate float64   // shard arrival rate within the window
	cdf  []float64 // cumulative batch-mix weights, cdf[len-1] == 1
}

// windowWalk derives window w's state. Burst decisions come from an
// independent per-window generator so they do not depend on event counts;
// the mix weights are a random walk, advanced window by window (callers
// visit windows in order).
type windowWalk struct {
	cfg     Config
	shard   int
	share   float64   // base per-shard rate
	weights []float64 // current mix weights, sum 1
}

func newWindowWalk(cfg Config, shard, shards int) *windowWalk {
	w := &windowWalk{cfg: cfg, shard: shard, share: cfg.ArrivalRate / float64(shards)}
	w.weights = make([]float64, cfg.Batches)
	for i := range w.weights {
		w.weights[i] = 1 / float64(cfg.Batches)
	}
	return w
}

// state computes window w's state and advances the mix walk by one step.
func (ww *windowWalk) state(w int) windowState {
	cfg := ww.cfg
	wr := xrand.New(shardSeed(cfg.Seed, ww.shard, 0xB0A7^uint64(w)*0x94D049BB133111EB))
	if cfg.Drift > 0 {
		total := 0.0
		for i := range ww.weights {
			u := 2*wr.Float64() - 1
			ww.weights[i] *= math.Exp(cfg.Drift * u)
			total += ww.weights[i]
		}
		for i := range ww.weights {
			ww.weights[i] /= total
		}
	}
	st := windowState{cdf: make([]float64, len(ww.weights))}
	sum := 0.0
	for i, v := range ww.weights {
		sum += v
		st.cdf[i] = sum
	}
	st.cdf[len(st.cdf)-1] = 1
	mid := (float64(w) + 0.5) * cfg.window()
	st.rate = ww.share * (1 + cfg.Diurnal*math.Sin(2*math.Pi*mid/cfg.period()))
	if cfg.BurstProb > 0 && wr.Bool(cfg.BurstProb) {
		st.rate *= cfg.BurstFactor
	}
	return st
}

// sampleBatch draws a batch index from the window's mix.
func (st windowState) sampleBatch(r *xrand.Rand) int {
	u := r.Float64()
	for i, c := range st.cdf {
		if u < c {
			return i
		}
	}
	return len(st.cdf) - 1
}

// Generate produces shard's exogenous event stream for the configured
// workload, time-ordered with strictly increasing Seq. The fleet-wide
// arrival and churn rates are split evenly across shards; the same
// (Config, shard, shards) always yields the same stream.
func Generate(cfg Config, shard, shards int) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("workload: shard %d outside [0, %d)", shard, shards)
	}

	jr := xrand.New(shardSeed(cfg.Seed, shard, 0x10B5)) // job stream
	cr := xrand.New(shardSeed(cfg.Seed, shard, 0xC0DE)) // churn stream
	walk := newWindowWalk(cfg, shard, shards)
	window := cfg.window()
	curWin := 0
	st := walk.state(0)

	churnRate := cfg.Churn * float64(cfg.Machines) / float64(shards)
	inf := math.Inf(1)
	nextJob := jr.Exp(math.Max(st.rate, 1e-300))
	nextUp, nextDown := inf, inf
	if churnRate > 0 {
		nextUp = cr.Exp(churnRate)
		nextDown = cr.Exp(churnRate)
	}

	var out []Event
	var seq uint64
	emit := func(e Event) {
		e.Seq = seq
		seq++
		out = append(out, e)
	}
	for {
		t := math.Min(nextJob, math.Min(nextUp, nextDown))
		if t >= cfg.Horizon {
			break
		}
		switch {
		case t == nextJob:
			// Advance window state up to the arrival's window; the gap to
			// the next arrival is drawn at the new window's rate.
			for w := int(t / window); curWin < w; {
				curWin++
				st = walk.state(curWin)
			}
			emit(Event{At: t, Kind: KindJobArrive,
				Batch:    st.sampleBatch(jr),
				Duration: jr.Exp(1 / cfg.MeanDuration)})
			nextJob = t + jr.Exp(math.Max(st.rate, 1e-300))
		case t == nextUp:
			emit(Event{At: t, Kind: KindMachineUp, Lat: cr.Intn(cfg.Lats)})
			nextUp = t + cr.Exp(churnRate)
		default:
			emit(Event{At: t, Kind: KindMachineDown, Rank: cr.Float64()})
			nextDown = t + cr.Exp(churnRate)
		}
	}
	return out, nil
}
