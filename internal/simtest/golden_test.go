package simtest

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "regenerate golden PMU fixtures")

const goldenPath = "testdata/golden_pmu.json"

// goldenRun is one committed counter snapshot: every PMU counter of every
// context of a canonical (workload, machine, placement) triple.
type goldenRun struct {
	Name    string              `json:"name"`
	App     []map[string]uint64 `json:"app"`
	Partner []map[string]uint64 `json:"partner,omitempty"`
}

func countersToMap(c pmu.Counters) map[string]uint64 {
	m := make(map[string]uint64)
	for _, f := range c.FieldList() {
		m[f.Name] = f.Value
	}
	return m
}

func resultToGolden(name string, res profile.RunResult) goldenRun {
	g := goldenRun{Name: name}
	for _, c := range res.AppCounters {
		g.App = append(g.App, countersToMap(c))
	}
	for _, c := range res.PartnerCounters {
		g.Partner = append(g.Partner, countersToMap(c))
	}
	return g
}

func reduced(cfg isa.Config) isa.Config {
	cfg.Cores = 2
	return cfg
}

// goldenCases enumerates the canonical triples: solo, app-vs-app and
// app-vs-Ruler under both placements, across all three machine models,
// including a multithreaded CloudSuite arrangement. With check set the runs
// double as invariant runs; without it the engine takes its fast paths
// (idle-skip in particular), which the unchecked golden pass pins to the
// same fixtures.
func goldenCases(t *testing.T, check bool) []struct {
	name string
	run  func() (profile.RunResult, error)
} {
	t.Helper()
	ivb := reduced(isa.IvyBridge())
	snb := reduced(isa.SandyBridgeEN())
	p7 := reduced(isa.Power7Like())
	opts := profile.FastOptions()
	opts.Check = check

	spec := func(name string) *workload.Spec { return mustSpec(t, name) }
	app := func(name string) profile.Job { return profile.App(spec(name)) }

	return []struct {
		name string
		run  func() (profile.RunResult, error)
	}{
		{"ivb2/solo/429.mcf", func() (profile.RunResult, error) {
			return profile.Solo(ivb, app("429.mcf"), opts)
		}},
		{"ivb2/smt/444.namd+429.mcf", func() (profile.RunResult, error) {
			return profile.Colocate(ivb, app("444.namd"), app("429.mcf"), profile.SMT, opts)
		}},
		{"ivb2/smt/470.lbm+MEM_BW", func() (profile.RunResult, error) {
			r := rulers.For(ivb, rulers.DimMemBW)
			return profile.Colocate(ivb, app("470.lbm"), profile.Rulers(r, 1), profile.SMT, opts)
		}},
		{"ivb2/smt/401.bzip2+L3@0.50", func() (profile.RunResult, error) {
			r := rulers.For(ivb, rulers.DimL3).WithIntensity(0.5)
			return profile.Colocate(ivb, app("401.bzip2"), profile.Rulers(r, 1), profile.SMT, opts)
		}},
		{"ivb2/cmp/483.xalancbmk+429.mcf", func() (profile.RunResult, error) {
			return profile.Colocate(ivb, app("483.xalancbmk"), app("429.mcf"), profile.CMP, opts)
		}},
		{"snb2/smt/433.milc+456.hmmer", func() (profile.RunResult, error) {
			return profile.Colocate(snb, app("433.milc"), app("456.hmmer"), profile.SMT, opts)
		}},
		{"snb2/solo/web-search.x2", func() (profile.RunResult, error) {
			return profile.Solo(snb, profile.AppThreads(spec("web-search"), 2), opts)
		}},
		{"p7x2/smt/444.namd+429.mcf", func() (profile.RunResult, error) {
			return profile.Colocate(p7, app("444.namd"), app("429.mcf"), profile.SMT, opts)
		}},
	}
}

// TestGoldenPMU locks the engine's counter output for the canonical triples
// to the committed fixtures. A legitimate engine change regenerates them
// with
//
//	go test ./internal/simtest -run TestGolden -update
//
// and the fixture diff becomes part of the review: every counter shift is
// visible, none is silent.
func TestGoldenPMU(t *testing.T) {
	if testing.Short() {
		t.Skip("golden PMU runs in short mode")
	}
	cases := goldenCases(t, true)

	if *update {
		var out []goldenRun
		for _, c := range cases {
			res, err := c.run()
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			out = append(out, resultToGolden(c.name, res))
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d fixtures", goldenPath, len(out))
		return
	}

	runAgainstFixtures(t, cases)
}

// TestGoldenPMUUnchecked replays the same canonical triples against the
// same fixtures with the invariant checker detached. This is the path
// production sweeps take — the engine may idle-skip, park contexts and use
// its issue fast paths — and it must be bit-exact with the checked runs
// that generated the fixtures.
func TestGoldenPMUUnchecked(t *testing.T) {
	if testing.Short() {
		t.Skip("golden PMU runs in short mode")
	}
	runAgainstFixtures(t, goldenCases(t, false))
}

func runAgainstFixtures(t *testing.T, cases []struct {
	name string
	run  func() (profile.RunResult, error)
}) {
	t.Helper()
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (regenerate with -update): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixtures: %v", err)
	}
	byName := make(map[string]goldenRun, len(want))
	for _, g := range want {
		byName[g.Name] = g
	}
	if len(byName) != len(cases) {
		t.Errorf("fixture count %d != case count %d (regenerate with -update)", len(byName), len(cases))
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g, ok := byName[c.name]
			if !ok {
				t.Fatalf("no fixture for %s (regenerate with -update)", c.name)
			}
			res, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			got := resultToGolden(c.name, res)
			compareContexts(t, "app", g.App, got.App)
			compareContexts(t, "partner", g.Partner, got.Partner)
		})
	}
}

func compareContexts(t *testing.T, role string, want, got []map[string]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s context count: fixture %d, run %d", role, len(want), len(got))
		return
	}
	for i := range want {
		for name, wv := range want[i] {
			if gv, ok := got[i][name]; !ok || gv != wv {
				t.Errorf("%s[%d].%s = %d, fixture %d", role, i, name, got[i][name], wv)
			}
		}
		for name := range got[i] {
			if _, ok := want[i][name]; !ok {
				t.Errorf("%s[%d].%s missing from fixture (new counter? regenerate with -update)", role, i, name)
			}
		}
	}
}

// TestGoldenFixturesCommitted guards against an -update run that was never
// committed: the fixture file must exist and parse even in -short mode.
func TestGoldenFixturesCommitted(t *testing.T) {
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixtures not committed: %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixtures: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("golden fixture file is empty")
	}
	for _, g := range want {
		if g.Name == "" || len(g.App) == 0 {
			t.Errorf("fixture %+v missing name or app counters", g)
		}
	}
}
