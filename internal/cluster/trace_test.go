package cluster

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 31)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := WriteTrace(&rec, cfg, events); err != nil {
		t.Fatal(err)
	}
	rcfg, revents, err := ReadTrace(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Record → read → re-record must reproduce the trace byte for byte:
	// that is what makes a trace a stable artifact, not just a lossy dump.
	var rerec bytes.Buffer
	if err := WriteTrace(&rerec, rcfg, revents); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Bytes(), rerec.Bytes()) {
		t.Fatal("re-recorded trace differs from original bytes")
	}
}

func TestTraceVersionRejected(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 31)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := WriteTrace(&rec, cfg, events); err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(rec.String(), `"version":1`, `"version":99`, 1)
	_, _, err = ReadTrace(strings.NewReader(future))
	if !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("future version read returned %v, want ErrTraceVersion", err)
	}
	var ve *TraceVersionError
	if !errors.As(err, &ve) || ve.Got != 99 || ve.Want != TraceVersion {
		t.Fatalf("version error detail = %+v", ve)
	}
}

func TestTraceCorruptRejected(t *testing.T) {
	cfg := synthSimConfig(t, 40, 1, 31)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := WriteTrace(&rec, cfg, events); err != nil {
		t.Fatal(err)
	}
	good := rec.String()
	lines := strings.SplitAfter(good, "\n")

	cases := map[string]string{
		"empty":        "",
		"not json":     "hello\n",
		"wrong format": strings.Replace(good, TraceFormat, "not-a-trace", 1),
		"event junk":   lines[0] + "{\n",
		"bad shard":    lines[0] + strings.Replace(lines[1], `"s":0`, `"s":999`, 1),
		"truncated":    strings.Join(lines[:len(lines)/2], ""),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := ReadTrace(strings.NewReader(in))
			if !errors.Is(err, ErrTraceCorrupt) {
				t.Fatalf("ReadTrace = %v, want ErrTraceCorrupt", err)
			}
		})
	}
}

// TestTraceDegenerateRoundTrip pins the header-only edge: a trace of a
// zero-event world (no machines, no arrivals) must record, read back, and
// re-record byte-identically, and replay to an empty placement log.
func TestTraceDegenerateRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		machines int
		slo      bool
	}{
		{"empty world", 0, false},
		{"quiet fleet", 30, false},
		{"quiet fleet with SLO gate", 30, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := synthSimConfig(t, tc.machines, 1, 53)
			cfg.Workload.ArrivalRate = 0
			cfg.Workload.Churn = 0
			if tc.slo {
				cfg.Policy = PolicySLO
				cfg.SLO = sloSimParams()
			}
			events, err := GenerateEvents(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var rec bytes.Buffer
			if err := WriteTrace(&rec, cfg, events); err != nil {
				t.Fatal(err)
			}
			rcfg, revents, err := ReadTrace(bytes.NewReader(rec.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var rerec bytes.Buffer
			if err := WriteTrace(&rerec, rcfg, revents); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec.Bytes(), rerec.Bytes()) {
				t.Fatal("re-recorded degenerate trace differs from original bytes")
			}
			res, err := RunSim(context.Background(), rcfg, revents, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Log) != 0 || res.Events != 0 {
				t.Fatalf("degenerate trace replayed to %d log entries, %d events; want none",
					len(res.Log), res.Events)
			}
		})
	}
}
