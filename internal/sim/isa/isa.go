// Package isa defines the micro-op vocabulary and the microarchitecture
// configurations for the SMT processor simulator.
//
// The execution-port model follows Figure 1 of the SMiTe paper (the Intel
// Sandy Bridge execution cluster): six ports, where ports 0, 1 and 5 host
// functional units and ports 2, 3 and 4 handle memory accesses, and several
// operations are port-specific (FP_MUL only on port 0, FP_ADD only on
// port 1, FP_SHF and branches only on port 5, INT_ADD on ports 0/1/5,
// loads on ports 2/3, stores on port 4).
package isa

import (
	"fmt"

	"repro/internal/isol"
)

// NumPorts is the number of execution ports in the modelled core.
const NumPorts = 6

// Port identifies one execution port (0..5).
type Port uint8

// PortMask is a bit set of ports a micro-op may issue to.
type PortMask uint8

// Has reports whether the mask contains port p.
func (m PortMask) Has(p Port) bool { return m&(1<<p) != 0 }

// Ports returns the ports contained in the mask, in ascending order.
func (m PortMask) Ports() []Port {
	var out []Port
	for p := Port(0); p < NumPorts; p++ {
		if m.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// Mask builds a PortMask from a list of ports.
func Mask(ports ...Port) PortMask {
	var m PortMask
	for _, p := range ports {
		m |= 1 << p
	}
	return m
}

// String renders the mask like "{0,1,5}".
func (m PortMask) String() string {
	s := "{"
	first := true
	for p := Port(0); p < NumPorts; p++ {
		if m.Has(p) {
			if !first {
				s += ","
			}
			s += fmt.Sprintf("%d", p)
			first = false
		}
	}
	return s + "}"
}

// UopKind enumerates the micro-op classes the simulator executes. The set is
// intentionally the one SMiTe's Rulers and findings are phrased in terms of.
type UopKind uint8

const (
	// Nop allocates a ROB slot but needs no port; used to thin out streams.
	Nop UopKind = iota
	// FPMul is a floating-point multiply (port 0 only; `mulps`).
	FPMul
	// FPAdd is a floating-point add (port 1 only; `addps`).
	FPAdd
	// FPShuf is a floating-point shuffle (port 5 only; `shufps`).
	FPShuf
	// IntAdd is an integer ALU op (ports 0, 1 and 5; `addl`).
	IntAdd
	// IntMul is an integer multiply (port 1 only).
	IntMul
	// Load is a memory load (ports 2 or 3).
	Load
	// Store is a memory store (port 4; address generation folded in).
	Store
	// Branch is a conditional branch (port 5).
	Branch

	// NumKinds is the number of micro-op kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	Nop:    "NOP",
	FPMul:  "FP_MUL",
	FPAdd:  "FP_ADD",
	FPShuf: "FP_SHF",
	IntAdd: "INT_ADD",
	IntMul: "INT_MUL",
	Load:   "LOAD",
	Store:  "STORE",
	Branch: "BRANCH",
}

// String returns the conventional name of the micro-op kind.
func (k UopKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("UopKind(%d)", int(k))
}

// IsMem reports whether the kind accesses the memory hierarchy.
func (k UopKind) IsMem() bool { return k == Load || k == Store }

// Uop is one micro-op produced by a workload or Ruler stream.
//
// Dependencies are expressed as backward distances within the same hardware
// context's dynamic stream: Dep1/Dep2 == d means "this uop consumes the
// result of the uop issued d instructions earlier"; 0 means no dependency.
// Dependency-free unrolled loops (the Rulers) simply leave both at zero.
type Uop struct {
	Kind UopKind
	// Dep1 and Dep2 are backward dependency distances (0 = none).
	Dep1, Dep2 uint16
	// Addr is the byte address for Load/Store kinds.
	Addr uint64
	// BrTag identifies the static branch for the branch predictor and
	// Taken is the actual outcome; both are meaningful only for Branch.
	BrTag uint32
	Taken bool
	// ICacheMiss marks a front-end instruction-cache miss attributed to
	// this uop's fetch (synthesised by the workload generator from the
	// workload's code footprint).
	ICacheMiss bool
	// ITLBMiss marks an instruction-TLB miss on this uop's fetch.
	ITLBMiss bool
}

// ReplacementPolicy selects a cache level's victim-selection policy.
type ReplacementPolicy uint8

const (
	// PolicyLRU is true least-recently-used replacement (L1-scale
	// structures, where hardware tracks exact recency).
	PolicyLRU ReplacementPolicy = iota
	// PolicyRandom is random replacement, approximating the
	// not-recently-used schemes of large L2/L3 arrays. Its smooth,
	// rate-proportional sharing between competing contexts is what makes
	// cache interference respond continuously to co-runner pressure.
	PolicyRandom
)

// CacheParams describes one cache level.
type CacheParams struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// LatencyCycles is the load-to-use latency on a hit at this level.
	LatencyCycles uint64
	Policy        ReplacementPolicy
}

// MaxContextsPerCore bounds the SMT width the engine models. Eight covers
// every generation the policy literature studies (2-way HyperThreading
// through POWER8/9 SMT8).
const MaxContextsPerCore = 8

// CoreClass describes one class of cores in an asymmetric (big/little)
// configuration: a contiguous run of Cores cores that overrides the
// chip-level execution cluster and private caches. Chip-level resources
// (L3, memory controller, front-end widths, ROB geometry, predictor and
// TLB sizing) stay uniform — heterogeneity on real hybrid parts is
// concentrated in the execution ports and private cache capacities, which
// is exactly what SMiTe's port-specific Rulers are sensitive to.
type CoreClass struct {
	// Name labels the class in reports ("big", "little").
	Name string
	// Cores is how many consecutive cores belong to this class; the classes
	// partition [0, Config.Cores) in declaration order.
	Cores int
	// PortMap and Latency override the chip-level execution cluster.
	PortMap [NumKinds]PortMask
	Latency [NumKinds]uint64
	// L1D and L2 override the private cache geometry.
	L1D, L2 CacheParams
}

// Sets returns the number of sets implied by the geometry.
func (c CacheParams) Sets() int {
	return c.SizeBytes / (c.Ways * c.LineBytes)
}

// Config is a full microarchitecture description. The two stock
// configurations mirror Table I of the paper.
type Config struct {
	// Name identifies the configuration ("Sandy Bridge-EN", "Ivy Bridge").
	Name string
	// FrequencyGHz is used only for reporting; the simulator is cycle-based.
	FrequencyGHz float64

	// Cores is the number of physical cores; ContextsPerCore the number of
	// SMT hardware contexts per core (2 for HyperThreading).
	Cores           int
	ContextsPerCore int

	// FetchWidth is the per-cycle front-end allocation width (shared
	// between the contexts of a core by cycle alternation). RetireWidth is
	// the in-order retirement width per context per cycle.
	FetchWidth  int
	RetireWidth int
	// ROBSize is the per-context reorder-buffer capacity.
	ROBSize int
	// IssueScanDepth bounds the per-port scheduler scan into each
	// context's ROB (models finite reservation-station reach).
	IssueScanDepth int
	// MSHRsPerContext caps memory-level parallelism: the number of
	// outstanding L1 misses a context may have in flight.
	MSHRsPerContext int

	// PortMap assigns each uop kind its legal issue ports; Latency the
	// execution latency in cycles (memory kinds use the hierarchy instead).
	PortMap [NumKinds]PortMask
	Latency [NumKinds]uint64

	// L1D and L2 are private per core (shared by its SMT contexts); L3 is
	// shared chip-wide.
	L1D, L2, L3 CacheParams

	// MemBaseLatency is the DRAM access latency beyond L3; requests are
	// additionally serialised at one per MemServiceInterval cycles
	// chip-wide, so queueing delay emerges under bandwidth pressure.
	MemBaseLatency     uint64
	MemServiceInterval uint64

	// MispredictPenalty is the front-end refill delay after a branch
	// misprediction resolves.
	MispredictPenalty uint64
	// BranchPredictorEntries sizes the 2-bit counter table.
	BranchPredictorEntries int

	// DTLBEntries and PageBytes describe the data TLB; a DTLB miss adds
	// DTLBMissPenalty cycles to the access. ITLBMissPenalty stalls the
	// front-end when a stream flags an ITLB miss; ICacheMissPenalty
	// likewise for instruction-cache misses.
	DTLBEntries       int
	PageBytes         int
	DTLBMissPenalty   uint64
	ITLBMissPenalty   uint64
	ICacheMissPenalty uint64

	// StoreLatency is the store-buffer completion latency.
	StoreLatency uint64

	// StreamPrefetcher enables the per-context sequential-stream
	// prefetcher: demand misses that continue a detected ascending line
	// stream are served at L2 latency plus any memory-bandwidth queueing
	// delay (an idealised stream prefetcher with full coverage; bandwidth
	// consumption is still charged). PrefetchStreams is the number of
	// concurrent streams tracked per context.
	StreamPrefetcher bool
	PrefetchStreams  int

	// Classes, when non-empty, partitions the chip's cores into consecutive
	// asymmetric classes (sum of class Cores == Cores), each with its own
	// execution ports, latencies and private caches. Empty means every core
	// uses the chip-level PortMap/Latency/L1D/L2 — the homogeneous case, and
	// bit-identical to configurations predating this field.
	Classes []CoreClass

	// Isolation is the hardware QoS-enforcement policy (LLC way
	// partitioning, memory-bandwidth throttling) applied to this chip; the
	// zero value disables every mechanism and leaves simulation results
	// bit-identical to configurations predating this field. See
	// internal/isol.
	Isolation isol.Policy
}

// CoreClassOf returns the class index and class of the given core, or
// (-1, nil) when the configuration is homogeneous.
func (c *Config) CoreClassOf(core int) (int, *CoreClass) {
	if len(c.Classes) == 0 {
		return -1, nil
	}
	for i := range c.Classes {
		if core < c.Classes[i].Cores {
			return i, &c.Classes[i]
		}
		core -= c.Classes[i].Cores
	}
	return -1, nil
}

// Contexts returns the total number of hardware contexts on the chip.
func (c Config) Contexts() int { return c.Cores * c.ContextsPerCore }

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.ContextsPerCore <= 0 {
		return fmt.Errorf("isa: config %q: need positive cores (%d) and contexts per core (%d)", c.Name, c.Cores, c.ContextsPerCore)
	}
	if c.ContextsPerCore > MaxContextsPerCore {
		return fmt.Errorf("isa: config %q: the engine models at most %d SMT contexts per core, got %d", c.Name, MaxContextsPerCore, c.ContextsPerCore)
	}
	if c.FetchWidth <= 0 || c.RetireWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("isa: config %q: widths and ROB size must be positive", c.Name)
	}
	if c.ROBSize&(c.ROBSize-1) != 0 {
		return fmt.Errorf("isa: config %q: ROB size %d must be a power of two", c.Name, c.ROBSize)
	}
	if c.IssueScanDepth <= 0 || c.IssueScanDepth > c.ROBSize {
		return fmt.Errorf("isa: config %q: issue scan depth %d out of range (1..%d)", c.Name, c.IssueScanDepth, c.ROBSize)
	}
	if c.MSHRsPerContext <= 0 {
		return fmt.Errorf("isa: config %q: need at least one MSHR per context", c.Name)
	}
	for _, cp := range []struct {
		name string
		p    CacheParams
	}{{"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		p := cp.p
		if p.SizeBytes <= 0 || p.Ways <= 0 || p.LineBytes <= 0 {
			return fmt.Errorf("isa: config %q: %s geometry must be positive", c.Name, cp.name)
		}
		if p.SizeBytes%(p.Ways*p.LineBytes) != 0 {
			return fmt.Errorf("isa: config %q: %s size %d not divisible by ways*line", c.Name, cp.name, p.SizeBytes)
		}
		if s := p.Sets(); s&(s-1) != 0 {
			return fmt.Errorf("isa: config %q: %s set count %d is not a power of two", c.Name, cp.name, s)
		}
	}
	if c.MemServiceInterval == 0 {
		return fmt.Errorf("isa: config %q: memory service interval must be positive", c.Name)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("isa: config %q: page size must be a positive power of two", c.Name)
	}
	if c.BranchPredictorEntries <= 0 || c.BranchPredictorEntries&(c.BranchPredictorEntries-1) != 0 {
		return fmt.Errorf("isa: config %q: branch predictor entries must be a positive power of two", c.Name)
	}
	for k := UopKind(1); k < NumKinds; k++ {
		if c.PortMap[k] == 0 {
			return fmt.Errorf("isa: config %q: kind %s has no legal port", c.Name, k)
		}
	}
	if c.DTLBEntries < c.ContextsPerCore {
		return fmt.Errorf("isa: config %q: %d DTLB entries cannot be partitioned across %d contexts", c.Name, c.DTLBEntries, c.ContextsPerCore)
	}
	if len(c.Classes) > 0 {
		total := 0
		for i := range c.Classes {
			cl := &c.Classes[i]
			if cl.Cores <= 0 {
				return fmt.Errorf("isa: config %q: core class %d (%q) must span at least one core", c.Name, i, cl.Name)
			}
			total += cl.Cores
			for _, cp := range []struct {
				name string
				p    CacheParams
			}{{"L1D", cl.L1D}, {"L2", cl.L2}} {
				p := cp.p
				if p.SizeBytes <= 0 || p.Ways <= 0 || p.LineBytes <= 0 {
					return fmt.Errorf("isa: config %q: class %q %s geometry must be positive", c.Name, cl.Name, cp.name)
				}
				if p.SizeBytes%(p.Ways*p.LineBytes) != 0 {
					return fmt.Errorf("isa: config %q: class %q %s size %d not divisible by ways*line", c.Name, cl.Name, cp.name, p.SizeBytes)
				}
				if s := p.Sets(); s&(s-1) != 0 {
					return fmt.Errorf("isa: config %q: class %q %s set count %d is not a power of two", c.Name, cl.Name, cp.name, s)
				}
			}
			for k := UopKind(1); k < NumKinds; k++ {
				if cl.PortMap[k] == 0 {
					return fmt.Errorf("isa: config %q: class %q kind %s has no legal port", c.Name, cl.Name, k)
				}
			}
		}
		if total != c.Cores {
			return fmt.Errorf("isa: config %q: core classes span %d cores, chip has %d", c.Name, total, c.Cores)
		}
	}
	if err := c.Isolation.Validate(c.Contexts(), c.L3.Ways); err != nil {
		return fmt.Errorf("isa: config %q: %w", c.Name, err)
	}
	return nil
}

// sandyBridgePortMap is the Figure 1 port assignment shared by both stock
// configurations (Ivy Bridge keeps Sandy Bridge's execution cluster).
func sandyBridgePortMap() [NumKinds]PortMask {
	var m [NumKinds]PortMask
	m[FPMul] = Mask(0)
	m[FPAdd] = Mask(1)
	m[FPShuf] = Mask(5)
	m[IntAdd] = Mask(0, 1, 5)
	m[IntMul] = Mask(1)
	m[Load] = Mask(2, 3)
	m[Store] = Mask(4)
	m[Branch] = Mask(5)
	return m
}

func sandyBridgeLatencies() [NumKinds]uint64 {
	var l [NumKinds]uint64
	l[Nop] = 1
	l[FPMul] = 5
	l[FPAdd] = 3
	l[FPShuf] = 1
	l[IntAdd] = 1
	l[IntMul] = 3
	l[Branch] = 1
	// Load/Store latencies come from the memory hierarchy.
	return l
}

func baseConfig() Config {
	return Config{
		ContextsPerCore:        2,
		FetchWidth:             4,
		RetireWidth:            4,
		ROBSize:                128,
		IssueScanDepth:         32,
		MSHRsPerContext:        10,
		PortMap:                sandyBridgePortMap(),
		Latency:                sandyBridgeLatencies(),
		L1D:                    CacheParams{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycles: 4, Policy: PolicyLRU},
		L2:                     CacheParams{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, LatencyCycles: 12, Policy: PolicyRandom},
		MemBaseLatency:         180,
		MemServiceInterval:     8,
		MispredictPenalty:      15,
		BranchPredictorEntries: 4096,
		DTLBEntries:            512, // models the L1 DTLB + STLB reach
		PageBytes:              4096,
		DTLBMissPenalty:        25,
		ITLBMissPenalty:        20,
		ICacheMissPenalty:      8,
		StoreLatency:           3,
		StreamPrefetcher:       true,
		PrefetchStreams:        4,
	}
}

// SandyBridgeEN models the Intel Xeon E5-2420 from Table I: 6 cores, 12 SMT
// contexts, 15 MiB shared L3, 1.9 GHz.
func SandyBridgeEN() Config {
	c := baseConfig()
	c.Name = "Sandy Bridge-EN (Xeon E5-2420)"
	c.FrequencyGHz = 1.9
	c.Cores = 6
	c.L3 = CacheParams{SizeBytes: 15 << 20, Ways: 20, LineBytes: 64, LatencyCycles: 34, Policy: PolicyRandom}
	// 15 MiB / 20 ways / 64 B = 12288 sets: not a power of two; round the
	// modelled capacity to 16 MiB to keep power-of-two indexing.
	c.L3.SizeBytes = 16 << 20
	c.L3.Ways = 16
	return c
}

// Power7Like models an IBM POWER7-flavoured core, the other SMT
// microarchitecture the paper names when arguing the port-specific Ruler
// principle generalises (Section III-B1): two symmetric floating-point
// pipelines (both execute multiplies and adds), two fixed-point units, two
// load/store units and a branch pipeline. Note the consequence for Ruler
// design: FP_MUL and FP_ADD share the same ports here, so the two
// dimensions collapse into one — Ruler suites are per-microarchitecture.
func Power7Like() Config {
	c := baseConfig()
	c.Name = "POWER7-like"
	c.FrequencyGHz = 3.55
	c.Cores = 8
	var m [NumKinds]PortMask
	m[FPMul] = Mask(0, 1)  // FPU0/FPU1, symmetric
	m[FPAdd] = Mask(0, 1)  // FPU0/FPU1, symmetric
	m[FPShuf] = Mask(1)    // VSX permute pipe
	m[IntAdd] = Mask(2, 3) // FXU0/FXU1
	m[IntMul] = Mask(2)
	m[Load] = Mask(4, 5) // LSU0/LSU1
	m[Store] = Mask(4, 5)
	m[Branch] = Mask(3) // branch resolves in the FXU cluster
	c.PortMap = m
	c.L3 = CacheParams{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64, LatencyCycles: 40, Policy: PolicyRandom}
	return c
}

// IvyBridge models the Intel i7-3770 from Table I: 4 cores, 8 SMT contexts,
// 8 MiB shared L3, 3.4 GHz.
func IvyBridge() Config {
	c := baseConfig()
	c.Name = "Ivy Bridge (i7-3770)"
	c.FrequencyGHz = 3.4
	c.Cores = 4
	c.L3 = CacheParams{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, LatencyCycles: 30, Policy: PolicyRandom}
	return c
}

// Power8SMT4 models a POWER8-flavoured 4-way SMT part: the POWER7-like
// execution cluster with four hardware contexts per core. It is the stock
// >2-way generation the heterogeneous-fleet studies mix in.
func Power8SMT4() Config {
	c := Power7Like()
	c.Name = "POWER8-like SMT4"
	c.FrequencyGHz = 3.3
	c.Cores = 4
	c.ContextsPerCore = 4
	c.L3 = CacheParams{SizeBytes: 16 << 20, Ways: 16, LineBytes: 64, LatencyCycles: 40, Policy: PolicyRandom}
	return c
}

// BigLittle models an asymmetric hybrid part: four "big" cores with the
// full Sandy Bridge execution cluster next to four "little" cores with a
// narrower port map, slower functional units and half-size private caches.
// Both classes run 2-way SMT and share an 8 MiB L3.
func BigLittle() Config {
	c := baseConfig()
	c.Name = "Hybrid big.LITTLE-like"
	c.FrequencyGHz = 2.8
	c.Cores = 8
	c.L3 = CacheParams{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, LatencyCycles: 36, Policy: PolicyRandom}
	littlePorts := [NumKinds]PortMask{}
	littlePorts[FPMul] = Mask(0)
	littlePorts[FPAdd] = Mask(0)
	littlePorts[FPShuf] = Mask(1)
	littlePorts[IntAdd] = Mask(0, 1)
	littlePorts[IntMul] = Mask(1)
	littlePorts[Load] = Mask(2)
	littlePorts[Store] = Mask(3)
	littlePorts[Branch] = Mask(1)
	littleLat := sandyBridgeLatencies()
	littleLat[FPMul] = 7
	littleLat[FPAdd] = 4
	littleLat[IntMul] = 4
	c.Classes = []CoreClass{
		{
			Name: "big", Cores: 4,
			PortMap: sandyBridgePortMap(), Latency: sandyBridgeLatencies(),
			L1D: c.L1D, L2: c.L2,
		},
		{
			Name: "little", Cores: 4,
			PortMap: littlePorts, Latency: littleLat,
			L1D: CacheParams{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 3, Policy: PolicyLRU},
			L2:  CacheParams{SizeBytes: 128 << 10, Ways: 8, LineBytes: 64, LatencyCycles: 11, Policy: PolicyRandom},
		},
	}
	return c
}

// MachineGen is a named machine generation a heterogeneous fleet can mix:
// a short CLI-friendly name bound to a stock configuration constructor.
type MachineGen struct {
	// Name is the short identifier used by -machine / -machine-mix flags.
	Name string
	// Make builds a fresh configuration for the generation.
	Make func() Config
}

// MachineGens lists every named machine generation, in a stable order.
func MachineGens() []MachineGen {
	return []MachineGen{
		{Name: "snb", Make: SandyBridgeEN},
		{Name: "ivb", Make: IvyBridge},
		{Name: "power7", Make: Power7Like},
		{Name: "smt4", Make: Power8SMT4},
		{Name: "biglittle", Make: BigLittle},
	}
}

// MachineGenByName resolves a generation by its short name.
func MachineGenByName(name string) (Config, error) {
	for _, g := range MachineGens() {
		if g.Name == name {
			return g.Make(), nil
		}
	}
	names := ""
	for i, g := range MachineGens() {
		if i > 0 {
			names += ", "
		}
		names += g.Name
	}
	return Config{}, fmt.Errorf("isa: unknown machine generation %q (have %s)", name, names)
}
