package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/workload"
)

// runCtxSpecs are a memory-bound / compute-bound pair so the equivalence
// test covers both the idle-skip path (DRAM stalls) and the dense path.
func runCtxChip(t testing.TB) *Chip {
	t.Helper()
	cfg := testConfig()
	chip := MustNew(cfg)
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	namd, err := workload.ByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	chip.Assign(0, 0, workload.NewGen(mcf, 11))
	chip.Assign(0, 1, workload.NewGen(namd, 12))
	chip.Prewarm(40_000)
	return chip
}

// RunContext with a cancellable context must leave every counter of every
// context bit-identical to a single Run over the same window — the
// chunked loop is a pure control-flow change. The window deliberately
// exceeds runContextSlice so several slices execute, and is not a slice
// multiple so the final partial slice is covered too.
func TestRunContextMatchesRun(t *testing.T) {
	const warmup, measure = 10_000, 3*runContextSlice + 1234

	plain := runCtxChip(t)
	plain.Run(warmup)
	plain.ResetCounters()
	plain.Run(measure)

	chunked := runCtxChip(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := chunked.RunContext(ctx, warmup); err != nil {
		t.Fatal(err)
	}
	chunked.ResetCounters()
	if err := chunked.RunContext(ctx, measure); err != nil {
		t.Fatal(err)
	}

	if plain.Cycle() != chunked.Cycle() {
		t.Fatalf("chip clocks diverged: %d vs %d", plain.Cycle(), chunked.Cycle())
	}
	for ctxIdx := 0; ctxIdx < 2; ctxIdx++ {
		a, b := plain.Counters(0, ctxIdx), chunked.Counters(0, ctxIdx)
		if a != b {
			t.Errorf("context %d counters diverged:\nrun:        %+v\nruncontext: %+v", ctxIdx, a, b)
		}
	}
}

// A background context takes the unsliced fast path and never errors.
func TestRunContextBackgroundFastPath(t *testing.T) {
	chip := runCtxChip(t)
	if err := chip.RunContext(context.Background(), 5000); err != nil {
		t.Fatalf("background RunContext: %v", err)
	}
	if c := chip.Counters(0, 0); c.Instructions == 0 {
		t.Fatal("no forward progress")
	}
}

// Cancellation aborts the window at a slice boundary: a deadline far
// shorter than the window's wall-clock must surface context.DeadlineExceeded
// well before the full window could have simulated.
func TestRunContextCancelsMidWindow(t *testing.T) {
	chip := runCtxChip(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// A window this large takes on the order of seconds; the 1ms deadline
	// must cut it off after a handful of slices.
	err := chip.RunContext(ctx, 50_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if chip.Cycle() >= 50_000_000 {
		t.Fatal("window ran to completion despite cancellation")
	}
}

// A pre-cancelled context simulates nothing.
func TestRunContextPreCancelled(t *testing.T) {
	chip := runCtxChip(t)
	before := chip.Cycle()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := chip.RunContext(ctx, 10_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if chip.Cycle() != before {
		t.Fatal("pre-cancelled RunContext advanced the chip clock")
	}
}
