package cluster

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRun pins a 100-machine, ~10k-event simulation end to end:
// the summary aggregates, the placement-log length, a hash of every log
// entry, and the first placements verbatim. Any change to the workload
// generator, the event loop, the placement policy or the merge order
// shows up as a fixture diff; regenerate deliberately with -update.
type goldenRun struct {
	Summary Summary     `json:"summary"`
	LogLen  int         `json:"log_len"`
	LogHash uint64      `json:"log_hash"`
	Head    []Placement `json:"head"`
}

func goldenConfig(t *testing.T) SimConfig {
	cfg := synthSimConfig(t, 100, 2, 97)
	cfg.Workload.ArrivalRate = 3600
	cfg.Workload.MeanDuration = 0.05
	cfg.Workload.Churn = 0.05
	return cfg
}

func hashLog(log []Placement) uint64 {
	h := fnv.New64a()
	for _, p := range log {
		fmt.Fprintf(h, "%g|%d|%d|%d|%d|%d|%d\n", p.At, p.Shard, p.Seq, p.Machine, p.Lat, p.Batch, p.N)
	}
	return h.Sum64()
}

func TestGoldenClusterSim(t *testing.T) {
	cfg := goldenConfig(t)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 9_000 || res.Events > 20_000 {
		t.Fatalf("golden run drifted to %d events, want ~10k", res.Events)
	}
	got := goldenRun{
		Summary: res.Summary(),
		LogLen:  len(res.Log),
		LogHash: hashLog(res.Log),
	}
	head := 5
	if len(res.Log) < head {
		head = len(res.Log)
	}
	got.Head = res.Log[:head]

	checkGolden(t, "golden_cluster.json", got)
}

// checkGolden compares got against the named fixture, or rewrites the
// fixture under -update.
func checkGolden(t *testing.T, name string, got goldenRun) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gj, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("golden mismatch (run with -update if intentional):\ngot %s", gj)
	}
}

// TestGoldenSLOClusterSim pins the SLO-gated policy end to end the same
// way: summary (including the saturation block), log length, and log hash
// over a seeded run.
func TestGoldenSLOClusterSim(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.Policy = PolicySLO
	cfg.SLO = sloSimParams()
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenRun{
		Summary: res.Summary(),
		LogLen:  len(res.Log),
		LogHash: hashLog(res.Log),
	}
	head := 5
	if len(res.Log) < head {
		head = len(res.Log)
	}
	got.Head = res.Log[:head]
	checkGolden(t, "golden_cluster_slo.json", got)
}

// TestGoldenClosedLoopClusterSim pins the closed loop end to end: the
// same seeded run under injected drift, with the summary's closed-loop
// block (detections, re-characterizations, migrations) and the placement
// log — migrate entries included — hashed into the fixture.
func TestGoldenClosedLoopClusterSim(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.Policy = PolicyClosedLoop
	cfg.SLO = sloSimParams()
	cfg.Drift = &DriftSpec{At: cfg.Workload.Horizon / 3, Factor: 3}
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Fatal("golden closed-loop run confirmed no drift; fixture would pin a dead loop")
	}
	got := goldenRun{
		Summary: res.Summary(),
		LogLen:  len(res.Log),
		LogHash: hashLog(res.Log),
	}
	head := 5
	if len(res.Log) < head {
		head = len(res.Log)
	}
	got.Head = res.Log[:head]
	checkGolden(t, "golden_cluster_closedloop.json", got)
}

// TestGoldenDegenerateSim pins the empty-trace edge as a fixture: a world
// with no machines and no arrivals must reduce to a zeroed summary and an
// empty placement log, byte for byte.
func TestGoldenDegenerateSim(t *testing.T) {
	cfg := synthSimConfig(t, 0, 1, 53)
	cfg.Workload.ArrivalRate = 0
	cfg.Workload.Churn = 0
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenRun{
		Summary: res.Summary(),
		LogLen:  len(res.Log),
		LogHash: hashLog(res.Log),
		Head:    res.Log[:0],
	}
	checkGolden(t, "golden_cluster_degenerate.json", got)
}
