package profstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simcache"
)

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func testKey(parts ...any) simcache.Key {
	return simcache.KeyOf(append([]any{"profstore-test"}, parts...)...)
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	want := payload{Name: "alpha", Values: []float64{1, 0.5, 0.25}}
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := st.Get(key, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Values) != len(want.Values) {
		t.Errorf("round trip mangled payload: got %+v want %+v", got, want)
	}

	// Overwrite is allowed and atomic.
	want.Name = "beta"
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if err := st.Get(key, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "beta" {
		t.Errorf("overwrite not visible: got %+v", got)
	}
}

func TestGetNotFound(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := st.Get(testKey("missing"), &out); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing entry: got %v, want ErrNotFound", err)
	}
}

// corrupt writes raw bytes over an existing entry file.
func corrupt(t *testing.T, st *Store, key simcache.Key, data []byte) {
	t.Helper()
	if err := os.WriteFile(st.Path(key), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGetCorrupt(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("victim")
	if err := st.Put(key, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(st.Path(key))
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":    pristine[:len(pristine)/2],
		"not json":     []byte("!!"),
		"empty":        {},
		"bit flip":     append([]byte{}, pristine...),
		"foreign key":  nil, // filled below: valid envelope for a different key
		"bad checksum": []byte(strings.Replace(string(pristine), `"payload_sha256": "`, `"payload_sha256": "00`, 1)),
	}
	cases["bit flip"][len(pristine)/2] ^= 0x40

	other := testKey("other")
	if err := st.Put(other, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	foreign, err := os.ReadFile(st.Path(other))
	if err != nil {
		t.Fatal(err)
	}
	cases["foreign key"] = foreign

	for name, data := range cases {
		corrupt(t, st, key, data)
		var out payload
		err := st.Get(key, &out)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestGetVersionSkew(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("skew")
	if err := st.Put(key, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	corrupt(t, st, key, []byte(strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)))
	var out payload
	if err := st.Get(key, &out); !errors.Is(err, ErrVersionSkew) {
		t.Errorf("got %v, want ErrVersionSkew", err)
	}
}

func TestKeys(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []simcache.Key{testKey(1), testKey(2), testKey(3)}
	for _, k := range keys {
		if err := st.Put(k, payload{Name: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// Non-entry files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "short.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("Keys returned %d entries, want %d", len(got), len(keys))
	}
	want := make(map[simcache.Key]bool)
	for _, k := range keys {
		want[k] = true
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("Keys returned unexpected key %s", k.Short())
		}
	}
}

func TestOpenEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded, want error")
	}
}

// FuzzDecodeEntry is the corruption contract: arbitrary bytes fed to the
// entry decoder must yield a typed error (or decode cleanly) — never a
// panic, never an untyped failure class.
func FuzzDecodeEntry(f *testing.F) {
	st, err := Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	key := testKey("fuzz")
	if err := st.Put(key, payload{Name: "seed", Values: []float64{1, 2}}); err != nil {
		f.Fatal(err)
	}
	pristine, err := os.ReadFile(st.Path(key))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	f.Add(pristine[:len(pristine)/2])
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"key":"","payload_sha256":"","payload":null}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var out payload
		err := decodeEntry(data, key, &out)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersionSkew) {
			t.Errorf("decodeEntry returned an untyped error: %v", err)
		}
	})
}
