package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qosd"
	"repro/internal/surrogate"
	"repro/smite"
)

// writeArtifacts persists a small profile set and model to disk, the same
// files a real deployment hands to -profiles and -model.
func writeArtifacts(t *testing.T) (profilesPath, modelPath string, chars []smite.Characterization, m smite.Model) {
	t.Helper()
	dir := t.TempDir()
	victim := smite.Characterization{App: "web-search", SoloIPC: 1.2}
	aggr := smite.Characterization{App: "429.mcf", SoloIPC: 0.5}
	for d := range victim.Sen {
		victim.Sen[d] = 0.04 * float64(d+1)
		aggr.Con[d] = 0.09 * float64(d+1)
	}
	chars = []smite.Characterization{victim, aggr}

	var coef [smite.NumDimensions]float64
	for d := range coef {
		coef[d] = 0.15
	}
	m = smite.NewModel(coef, 0.02)

	profilesPath = filepath.Join(dir, "profiles.json")
	pf, err := os.Create(profilesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := smite.SaveProfiles(pf, chars); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := smite.SaveModel(mf, m); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	return profilesPath, modelPath, chars, m
}

func TestFlagValidation(t *testing.T) {
	profiles, model, _, _ := writeArtifacts(t)
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"positional args", []string{"stray"}, "unexpected arguments"},
		{"empty addr", []string{"-addr", ""}, "-addr must not be empty"},
		{"zero max-inflight", []string{"-max-inflight", "0"}, "-max-inflight must be positive"},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout must be positive"},
		{"zero drain", []string{"-drain", "0s"}, "-drain must be positive"},
		{"missing profiles file", []string{"-profiles", filepath.Join(dir, "nope.json")}, "opening profiles"},
		{"corrupt profiles file", []string{"-profiles", garbage}, "loading profiles"},
		{"missing model file", []string{"-profiles", profiles, "-model", filepath.Join(dir, "nope.json")}, "opening model"},
		{"corrupt model file", []string{"-profiles", profiles, "-model", garbage}, "loading model"},
		{"negative surrogate threshold", []string{"-surrogate", garbage, "-surrogate-threshold", "-0.1"}, "-surrogate-threshold must be non-negative"},
		{"surrogate threshold without file", []string{"-profiles", profiles, "-surrogate-threshold", "0.1"}, "no -surrogate file"},
		{"missing surrogate file", []string{"-profiles", profiles, "-surrogate", filepath.Join(dir, "nope.json")}, "loading surrogate"},
		{"corrupt surrogate file", []string{"-profiles", profiles, "-surrogate", garbage}, "loading surrogate"},
		{"malformed slo class", []string{"-profiles", profiles, "-slo-config", "critical:bogus"}, "invalid -slo-config"},
		{"empty slo class name", []string{"-profiles", profiles, "-slo-config", ":20ms"}, "invalid -slo-config"},
		{"duplicate slo class", []string{"-profiles", profiles, "-slo-config", "a:20ms,a:40ms"}, "invalid -slo-config"},
		{"slo percentile out of range", []string{"-profiles", profiles, "-slo-config", "a:20ms:2"}, "invalid -slo-config"},
		{"slo headroom out of range", []string{"-profiles", profiles, "-slo-config", "a:20ms", "-slo-headroom", "1"}, "invalid -slo-headroom"},
	}
	_ = model
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard, io.Discard)
			if err == nil {
				t.Fatal("run accepted bad flags")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSurrogateTierEndToEnd boots the daemon with a fitted surrogate set
// alongside the registry artifacts and checks that /v1/predict answers
// from the surrogate tier (with its bound on the wire) for fitted pairs
// and falls back to the engine tier for unfitted ones.
func TestSurrogateTierEndToEnd(t *testing.T) {
	profiles, model, chars, m := writeArtifacts(t)

	// Curves that reproduce the registry characterizations exactly at full
	// intensity, each with a small recorded error.
	set := &smite.Surrogate{Machine: "test", Models: map[string]*smite.SurrogateModel{}}
	for _, ch := range chars {
		sm := &smite.SurrogateModel{App: ch.App, SoloIPC: ch.SoloIPC}
		for d := range sm.Sen {
			sm.Sen[d] = surrogate.Curve{Coef: [3]float64{ch.Sen[d]}, MaxAbsErr: 0.001}
			sm.Con[d] = surrogate.Curve{Coef: [3]float64{ch.Con[d]}, MaxAbsErr: 0.001}
		}
		set.Models[ch.App] = sm
	}
	surPath := filepath.Join(t.TempDir(), "surrogate.json")
	if err := smite.SaveSurrogate(surPath, set); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-quiet",
		"-profiles", profiles, "-model", model, "-surrogate", surPath}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newApp(cfg, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	c := qosd.NewClient("http://"+a.Addr().String(), http.DefaultClient)

	got, err := c.Predict(context.Background(), qosd.PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != qosd.TierSurrogate {
		t.Fatalf("tier = %q, want %q", got.Tier, qosd.TierSurrogate)
	}
	want, err := m.PredictSurrogate(set, "web-search", "429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if got.Degradation != want.Degradation || got.ErrorBound != want.Bound {
		t.Errorf("served (%v, %v), want (%v, %v)", got.Degradation, got.ErrorBound, want.Degradation, want.Bound)
	}

	// Partial occupancy always takes the engine tier.
	eng, err := c.Predict(context.Background(), qosd.PredictRequest{
		Victim: "web-search", Aggressor: "429.mcf", Instances: 1, Threads: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Tier != qosd.TierEngine || eng.ErrorBound != 0 {
		t.Errorf("partial occupancy got tier %q bound %v, want engine tier with no bound", eng.Tier, eng.ErrorBound)
	}
}

// syncBuffer is a concurrency-safe writer the smoke test polls for the
// daemon's listening line.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`smited listening on (\S+)`)

// TestEndToEndSmoke runs the daemon exactly as main does — through run()
// with real flags and real files — against an ephemeral port, exercises
// /healthz and /v1/predict, then cancels the context (the SIGTERM path)
// and expects a clean exit.
func TestEndToEndSmoke(t *testing.T) {
	profiles, model, chars, m := writeArtifacts(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-profiles", profiles,
			"-model", model,
			"-quiet",
		}, &out, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		if match := listenLine.FindStringSubmatch(out.String()); match != nil {
			addr = match[1]
		} else {
			select {
			case err := <-errCh:
				t.Fatalf("daemon exited early: %v", err)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	c := qosd.NewClient("http://"+addr, nil)
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Profiles != 2 || !h.ModelLoaded {
		t.Errorf("health %+v, want ok with 2 profiles and a model", h)
	}

	got, err := c.Predict(ctx, qosd.PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	// Disk → daemon → HTTP → client must reproduce the in-process
	// prediction bit for bit.
	if want := m.PredictPair(chars[0], chars[1]); got.Degradation != want {
		t.Errorf("served degradation %v != in-process %v", got.Degradation, want)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
}

// TestGracefulShutdownDrains verifies the drain semantics: a request in
// flight when shutdown begins is allowed to finish and answered normally;
// only then does Shutdown return. The in-flight request is a raw TCP
// connection holding its request half-written, so the server is
// provably mid-request when the drain starts.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-quiet", "-drain", "10s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newApp(cfg, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	active := make(chan struct{}, 4)
	a.srv.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateActive {
			active <- struct{}{}
		}
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", a.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Complete headers, withheld body: the handler is now parked inside
	// the JSON decode waiting for the two body bytes, so the request is
	// provably in flight when the drain starts.
	if _, err := io.WriteString(conn,
		"POST /v1/predict HTTP/1.1\r\nHost: smited\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-active:
	case <-time.After(10 * time.Second):
		t.Fatal("connection never became active")
	}

	done := make(chan error, 1)
	go func() { done <- a.Shutdown() }()

	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(300 * time.Millisecond):
		// Still draining, as it should be.
	}

	// Complete the request; the draining server must still answer it
	// (400 invalid_argument — the empty predict body fails validation,
	// which is fine: the point is the request gets a real answer).
	if _, err := io.WriteString(conn, "{}"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("no response from draining server: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("draining server answered %d, want 400", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Shutdown returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the last request finished")
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, io.Discard); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(out.String(), "smited ") || !strings.Contains(out.String(), "go1") {
		t.Errorf("version output = %q", out.String())
	}
}

// With -trace, a ?trace=1 request leaves its Chrome render behind at
// /debug/trace/last; without it the route does not exist.
func TestTraceFlagEndToEnd(t *testing.T) {
	profiles, model, _, _ := writeArtifacts(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-profiles", profiles,
			"-model", model,
			"-quiet",
			"-trace",
		}, &out, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		if match := listenLine.FindStringSubmatch(out.String()); match != nil {
			addr = match[1]
		} else {
			select {
			case err := <-errCh:
				t.Fatalf("daemon exited early: %v", err)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	body := strings.NewReader(`{"victim":"web-search","aggressor":"429.mcf"}`)
	resp, err := http.Post("http://"+addr+"/v1/predict?trace=1", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced predict = %d", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/debug/trace/last")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace/last = %d: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "qosd.predict") {
		t.Errorf("trace render missing qosd.predict span:\n%s", b)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
}

// TestSLOFlagErrorsAreTyped pins that malformed SLO flags surface as
// *FlagError (main exits 2 on any error; the type is what separates
// flag mistakes from runtime failures in scripts and tests).
func TestSLOFlagErrorsAreTyped(t *testing.T) {
	for _, args := range [][]string{
		{"-slo-config", "critical:bogus"},
		{"-slo-config", "a:20ms", "-slo-headroom", "-0.5"},
	} {
		_, err := parseFlags(args, io.Discard)
		if err == nil {
			t.Fatalf("args %v accepted", args)
		}
		var fe *FlagError
		if !errors.As(err, &fe) {
			t.Errorf("args %v: error %v is not a *FlagError", args, err)
		}
	}
}

// TestSLOAdmitEndToEnd boots the daemon with -slo-config and drives
// POST /v1/admit through the typed client: the served decision must match
// the in-process admission math on the served prediction, a co-location
// whose inflated tail exceeds the class budget must be rejected, and a
// daemon without -slo-config must answer 501.
func TestSLOAdmitEndToEnd(t *testing.T) {
	profiles, model, _, _ := writeArtifacts(t)
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-quiet",
		"-profiles", profiles, "-model", model,
		"-slo-config", "critical:20ms:0.95,standard:60ms:0.95,sheddable:150ms:0.90",
		"-slo-headroom", "0.1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newApp(cfg, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	c := qosd.NewClient("http://"+a.Addr().String(), http.DefaultClient)
	ctx := context.Background()

	queue := qosd.QueueSpec{Mu: 1000, Lambda: 600}
	pred, err := c.Predict(ctx, qosd.PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"critical", "standard", "sheddable"} {
		got, err := c.Admit(ctx, qosd.AdmitRequest{
			Victim: "web-search", Aggressor: "429.mcf", Class: class, Queue: queue,
		})
		if err != nil {
			t.Fatalf("class %s: %v", class, err)
		}
		wantClass, ok := cfg.slo.Class(class)
		if !ok {
			t.Fatalf("class %s missing from parsed config", class)
		}
		want := qosd.EvaluateAdmission(pred.Degradation, pred.ErrorBound,
			queue.Mu, queue.Lambda, wantClass, cfg.slo.Headroom)
		if got.Admitted != want.Admitted || got.Reason != string(want.Reason) {
			t.Errorf("class %s: served (%v, %s), in-process math says (%v, %s)",
				class, got.Admitted, got.Reason, want.Admitted, want.Reason)
		}
		if got.Admitted {
			if got.TailLatency == nil {
				t.Errorf("class %s: admitted with no tail estimate", class)
			} else if *got.TailLatency > got.EffectiveBudget {
				t.Errorf("class %s: admitted with tail %g over effective budget %g",
					class, *got.TailLatency, got.EffectiveBudget)
			}
		}
	}

	// A queue this loaded cannot fit a 20ms p95 budget at the predicted
	// degradation: the admission gate must reject, never admit-and-hope.
	tight, err := c.Admit(ctx, qosd.AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "critical",
		Queue: qosd.QueueSpec{Mu: 1000, Lambda: 995},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Admitted {
		t.Errorf("near-saturated queue admitted: %+v", tight)
	}

	// Unknown class is a 404 with its own code.
	_, err = c.Admit(ctx, qosd.AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "bronze", Queue: queue,
	})
	var ae *qosd.APIError
	if !errors.As(err, &ae) || ae.Code != qosd.CodeUnknownClass {
		t.Errorf("unknown class error = %v, want code %s", err, qosd.CodeUnknownClass)
	}
}

// TestAdmitDisabledWithoutSLOConfig pins the 501 path: a daemon started
// without -slo-config mounts /v1/admit but refuses to serve it.
func TestAdmitDisabledWithoutSLOConfig(t *testing.T) {
	profiles, model, _, _ := writeArtifacts(t)
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-quiet",
		"-profiles", profiles, "-model", model}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newApp(cfg, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	c := qosd.NewClient("http://"+a.Addr().String(), http.DefaultClient)
	_, err = c.Admit(context.Background(), qosd.AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "critical",
		Queue: qosd.QueueSpec{Mu: 1000, Lambda: 600},
	})
	var ae *qosd.APIError
	if !errors.As(err, &ae) || ae.Code != qosd.CodeSLODisabled {
		t.Errorf("admit without SLO config = %v, want code %s", err, qosd.CodeSLODisabled)
	}
}
