package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// ChromeEvent is one entry in the Chrome trace-event JSON format
// (the "traceEvents" array consumed by chrome://tracing and Perfetto).
// Only the event phases this package emits are modelled:
//
//	"X" complete event  (a span: ts + dur)
//	"C" counter event   (a sampled value series: ts + args)
//	"M" metadata event  (thread_name, to label tracks)
type ChromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
	// CArgs carries numeric counter series for "C" events. It marshals into
	// the same "args" slot; Args and CArgs are mutually exclusive.
	CArgs map[string]float64 `json:"-"`
}

// chromeEnvelope is the top-level JSON document.
type chromeEnvelope struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// MarshalJSON folds CArgs into the "args" field for counter events.
func (e ChromeEvent) MarshalJSON() ([]byte, error) {
	type plain ChromeEvent // drop the method to avoid recursion
	if e.CArgs == nil {
		return json.Marshal(plain(e))
	}
	return json.Marshal(struct {
		plain
		Args map[string]float64 `json:"args"`
	}{plain: plain(e), Args: e.CArgs})
}

// WriteChromeEvents encodes events as a Chrome trace-event JSON document.
// Events are stably sorted so that metadata comes first and, within each
// (pid, tid) track, timestamps are monotonically non-decreasing — the
// ordering contract the fuzz test pins down.
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	sorted := make([]ChromeEvent, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if (a.Phase == "M") != (b.Phase == "M") {
			return a.Phase == "M"
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.TS < b.TS
	})

	env := chromeEnvelope{TraceEvents: make([]json.RawMessage, 0, len(sorted))}
	for _, e := range sorted {
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		env.TraceEvents = append(env.TraceEvents, raw)
	}
	return json.NewEncoder(w).Encode(env)
}

// micros converts a duration to trace-event microseconds.
func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// WriteChrome exports every finished span as Chrome trace-event JSON.
// All spans share pid 0; tracks map to tids labelled via thread_name
// metadata. Attributes surface in the event's args.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := make([]ChromeEvent, 0, len(spans)+t.trackCount())
	for id := 0; id < t.trackCount(); id++ {
		events = append(events, ChromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   id,
			Args:  map[string]string{"name": t.TrackName(id)},
		})
	}
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+1)
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if s.Parent != 0 {
			args["parent"] = "span-" + strconv.FormatUint(s.Parent, 10)
		}
		events = append(events, ChromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    micros(s.Start),
			Dur:   micros(s.End - s.Start),
			PID:   0,
			TID:   s.Track,
			Args:  args,
		})
	}
	return WriteChromeEvents(w, events)
}
