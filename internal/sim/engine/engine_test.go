package engine

import (
	"testing"

	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

func testConfig() isa.Config {
	cfg := isa.IvyBridge()
	cfg.Cores = 2 // smaller chip: faster tests
	return cfg
}

func runSolo(t testing.TB, cfg isa.Config, s Stream, warmup, measure uint64) (ipc float64, chip *Chip) {
	t.Helper()
	chip = MustNew(cfg)
	chip.Assign(0, 0, s)
	chip.Prewarm(50000)
	chip.Run(warmup)
	chip.ResetCounters()
	chip.Run(measure)
	return chip.Counters(0, 0).IPC(), chip
}

func TestSoloFPMulRulerSaturatesPort0(t *testing.T) {
	cfg := testConfig()
	r := rulers.FPMul()
	ipc, chip := runSolo(t, cfg, r.NewStream(1), 2000, 20000)
	ctr := chip.Counters(0, 0)
	util0 := ctr.PortUtilization(0)
	if util0 < 0.9999 {
		t.Errorf("FP_MUL ruler port-0 utilization = %.5f, want > 0.9999", util0)
	}
	for _, p := range []isa.Port{1, 2, 3, 4, 5} {
		if u := ctr.PortUtilization(p); u > 0.0001 {
			t.Errorf("FP_MUL ruler leaked onto port %d: utilization %.5f", p, u)
		}
	}
	if ipc < 0.99 || ipc > 1.01 {
		t.Errorf("FP_MUL ruler IPC = %.3f, want ~1 (port-throughput bound)", ipc)
	}
}

func TestSoloIntAddRulerSpreadsOverPorts015(t *testing.T) {
	cfg := testConfig()
	r := rulers.IntAdd()
	ipc, chip := runSolo(t, cfg, r.NewStream(1), 2000, 20000)
	ctr := chip.Counters(0, 0)
	for _, p := range []isa.Port{0, 1, 5} {
		if u := ctr.PortUtilization(p); u < 0.5 {
			t.Errorf("INT_ADD ruler port %d utilization = %.3f, want substantial", p, u)
		}
	}
	// Throughput is bounded by the 4-wide front end, not the 3 ports.
	if ipc < 2.7 {
		t.Errorf("INT_ADD ruler IPC = %.3f, want close to 3 (three ports at 1 uop/cycle)", ipc)
	}
}

func TestSMTPortContentionHalvesRulerThroughput(t *testing.T) {
	cfg := testConfig()
	soloIPC, _ := runSolo(t, cfg, rulers.FPAdd().NewStream(1), 2000, 20000)

	chip := MustNew(cfg)
	chip.Assign(0, 0, rulers.FPAdd().NewStream(1))
	chip.Assign(0, 1, rulers.FPAdd().NewStream(2))
	chip.Run(2000)
	chip.ResetCounters()
	chip.Run(20000)
	a := chip.Counters(0, 0).IPC()
	b := chip.Counters(0, 1).IPC()
	if a+b > soloIPC*1.05 {
		t.Errorf("two FP_ADD rulers on one SMT core: combined IPC %.3f exceeds port-1 capacity %.3f", a+b, soloIPC)
	}
	ratio := a / b
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("port arbitration unfair: context IPCs %.3f vs %.3f", a, b)
	}
	deg := (soloIPC - a) / soloIPC
	if deg < 0.4 || deg > 0.6 {
		t.Errorf("FP_ADD vs FP_ADD degradation = %.3f, want ~0.5 (even split)", deg)
	}
}

func TestDisjointPortsDoNotInterfere(t *testing.T) {
	cfg := testConfig()
	soloMul, _ := runSolo(t, cfg, rulers.FPMul().NewStream(1), 2000, 20000)

	chip := MustNew(cfg)
	chip.Assign(0, 0, rulers.FPMul().NewStream(1))
	chip.Assign(0, 1, rulers.FPAdd().NewStream(2))
	chip.Run(2000)
	chip.ResetCounters()
	chip.Run(20000)
	mul := chip.Counters(0, 0).IPC()
	deg := (soloMul - mul) / soloMul
	if deg > 0.05 {
		t.Errorf("FP_MUL degraded %.3f by FP_ADD ruler on a disjoint port, want ~0", deg)
	}
}

func TestCacheRulerDegradesMemoryBoundApp(t *testing.T) {
	cfg := testConfig()
	spec, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	solo, _ := runSolo(t, cfg, workload.NewGen(spec, 7), 20000, 50000)

	chip := MustNew(cfg)
	chip.Assign(0, 0, workload.NewGen(spec, 7))
	chip.Assign(0, 1, rulers.For(cfg, rulers.DimL3).NewStream(3))
	chip.Prewarm(50000)
	chip.Run(20000)
	chip.ResetCounters()
	chip.Run(50000)
	co := chip.Counters(0, 0).IPC()
	deg := (solo - co) / solo
	t.Logf("mcf solo IPC=%.3f co=%.3f deg=%.3f", solo, co, deg)
	if deg < 0.05 {
		t.Errorf("L3 ruler degraded mcf by only %.3f, want noticeable interference", deg)
	}
}

func TestFPHeavyAppSensitiveToItsPort(t *testing.T) {
	cfg := testConfig()
	spec, err := workload.ByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	solo, _ := runSolo(t, cfg, workload.NewGen(spec, 7), 10000, 40000)

	measure := func(r *rulers.Ruler) float64 {
		chip := MustNew(cfg)
		chip.Assign(0, 0, workload.NewGen(spec, 7))
		chip.Assign(0, 1, r.NewStream(3))
		chip.Prewarm(50000)
		chip.Run(10000)
		chip.ResetCounters()
		chip.Run(40000)
		co := chip.Counters(0, 0).IPC()
		return (solo - co) / solo
	}
	degAdd := measure(rulers.FPAdd())
	degL3 := measure(rulers.For(cfg, rulers.DimL3))
	t.Logf("namd solo IPC=%.3f degFPAdd=%.3f degL3=%.3f", solo, degAdd, degL3)
	if degAdd < 0.15 {
		t.Errorf("namd degradation under FP_ADD ruler = %.3f, want substantial", degAdd)
	}
	if degAdd < degL3 {
		t.Errorf("namd should be more sensitive to FP_ADD (%.3f) than L3 (%.3f)", degAdd, degL3)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	spec, err := workload.ByName("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	run := func() [2]uint64 {
		chip := MustNew(cfg)
		chip.Assign(0, 0, workload.NewGen(spec, 42))
		chip.Assign(0, 1, rulers.For(cfg, rulers.DimL2).NewStream(9))
		chip.Run(30000)
		return [2]uint64{chip.Counters(0, 0).Instructions, chip.Counters(0, 1).Instructions}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulation not deterministic: %v vs %v", a, b)
	}
}

func BenchmarkChipCycleSMTPair(b *testing.B) {
	cfg := testConfig()
	spec, _ := workload.ByName("403.gcc")
	chip := MustNew(cfg)
	chip.Assign(0, 0, workload.NewGen(spec, 1))
	chip.Assign(0, 1, rulers.For(cfg, rulers.DimL2).NewStream(2))
	chip.Run(5000)
	b.ResetTimer()
	chip.Run(uint64(b.N))
}
