package cluster

import (
	"testing"

	"repro/internal/service"
)

// syntheticStudy builds a study with a hand-made degradation table:
// latency app "svc" with batch apps "quiet" (1% per instance) and "noisy"
// (12% per instance), predictions biased slightly low for "noisy" so that
// violations are observable.
func syntheticStudy(t *testing.T, predBias float64) *Study {
	t.Helper()
	tbl := NewTable([]string{"svc"}, []string{"quiet", "noisy"}, 6)
	for n := 1; n <= 6; n++ {
		tbl.Set("svc", "quiet", n, Entry{Actual: 0.01 * float64(n), Predicted: 0.01 * float64(n)})
		tbl.Set("svc", "noisy", n, Entry{Actual: 0.12 * float64(n), Predicted: (0.12 - predBias) * float64(n)})
	}
	return &Study{
		Table:             tbl,
		Services:          map[string]service.Service{"svc": {Name: "svc", Mu: 1000, Lambda: 500, QoSPercentile: 0.9, ReportsPercentile: true}},
		ServersPerApp:     500,
		ThreadsPerServer:  6,
		ContextsPerServer: 12,
		Seed:              3,
	}
}

func TestSMiTeAdmitsUpToTarget(t *testing.T) {
	s := syntheticStudy(t, 0)
	r, err := s.Run(PolicySMiTe, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	// quiet: 10% budget allows 6 instances (6%); noisy: 10%/12% allows 0.
	// With ~half the servers drawing each batch app, the mean instances
	// should be ≈ 3 (6 on quiet servers, 0 on noisy ones).
	if r.MeanInstances < 2 || r.MeanInstances > 4 {
		t.Errorf("mean instances = %.2f, want ≈3", r.MeanInstances)
	}
	// Perfect predictions: zero violations.
	if r.ViolationFrac != 0 {
		t.Errorf("violations %.3f with a perfect predictor", r.ViolationFrac)
	}
	if r.BaselineUtilization != 0.5 {
		t.Errorf("baseline utilization = %.3f, want 0.5", r.BaselineUtilization)
	}
	wantUtil := 0.5 * (1 + r.UtilizationGain)
	if diff := r.Utilization - wantUtil; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("utilization %.4f inconsistent with gain %.4f", r.Utilization, r.UtilizationGain)
	}
}

func TestOracleNeverViolates(t *testing.T) {
	s := syntheticStudy(t, 0.05) // predictions underestimate noisy by 5%/instance
	r, err := s.Run(PolicyOracle, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if r.ViolationFrac != 0 {
		t.Errorf("oracle violated %.3f of co-locations", r.ViolationFrac)
	}
}

func TestBiasedPredictionsCauseViolations(t *testing.T) {
	s := syntheticStudy(t, 0.05)
	r, err := s.Run(PolicySMiTe, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	// Underestimating noisy by 5%/instance admits 1 instance (7% predicted
	// = fits budget; actual 12% > 10% budget → violation on noisy servers).
	if r.ViolationFrac == 0 {
		t.Error("biased predictor should violate")
	}
	if r.ViolationMax <= 0 {
		t.Error("violation magnitude not recorded")
	}
}

func TestRandomMatchesSMiTeUtilization(t *testing.T) {
	s := syntheticStudy(t, 0)
	sm, err := s.Run(PolicySMiTe, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := s.Run(PolicyRandom, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if sm.UtilizationGain != rd.UtilizationGain {
		t.Errorf("Random gain %.4f != SMiTe gain %.4f", rd.UtilizationGain, sm.UtilizationGain)
	}
	// Randomly placing instances sized for quiet servers onto noisy ones
	// must violate much more than SMiTe.
	if rd.ViolationFrac <= sm.ViolationFrac {
		t.Errorf("Random violations (%.3f) should exceed SMiTe's (%.3f)", rd.ViolationFrac, sm.ViolationFrac)
	}
}

func TestTailQoSAdmitsLess(t *testing.T) {
	s := syntheticStudy(t, 0)
	avg, err := s.Run(PolicySMiTe, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := s.Run(PolicySMiTe, QoSTail, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	// Tail latency degrades super-linearly: the same target admits less.
	if tail.UtilizationGain >= avg.UtilizationGain {
		t.Errorf("tail QoS gain %.3f should be below avg QoS gain %.3f", tail.UtilizationGain, avg.UtilizationGain)
	}
}

func TestUtilizationGainMonotoneInTarget(t *testing.T) {
	s := syntheticStudy(t, 0)
	prev := -1.0
	for _, target := range []float64{0.95, 0.90, 0.85} {
		r, err := s.Run(PolicySMiTe, QoSAvg, target)
		if err != nil {
			t.Fatal(err)
		}
		if r.UtilizationGain < prev {
			t.Errorf("gain at %.2f (%.3f) below gain at tighter target (%.3f)", target, r.UtilizationGain, prev)
		}
		prev = r.UtilizationGain
	}
}

func TestStudyValidation(t *testing.T) {
	s := syntheticStudy(t, 0)
	if _, err := s.Run(PolicySMiTe, QoSAvg, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := s.Run(PolicySMiTe, QoSAvg, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
	s.Table = NewTable([]string{"svc"}, []string{"x"}, 2) // incomplete
	if _, err := s.Run(PolicySMiTe, QoSAvg, 0.9); err == nil {
		t.Error("incomplete table accepted")
	}
	s2 := syntheticStudy(t, 0)
	s2.ThreadsPerServer = 20
	if _, err := s2.Run(PolicySMiTe, QoSAvg, 0.9); err == nil {
		t.Error("threads > contexts accepted")
	}
	s3 := syntheticStudy(t, 0)
	s3.Services = nil
	if _, err := s3.Run(PolicySMiTe, QoSTail, 0.9); err == nil {
		t.Error("tail QoS without services accepted")
	}
}

func TestTableGet(t *testing.T) {
	tbl := NewTable([]string{"a"}, []string{"b"}, 2)
	if _, err := tbl.Get("a", "b", 1); err == nil {
		t.Error("missing entry accepted")
	}
	if e, err := tbl.Get("a", "b", 0); err != nil || e != (Entry{}) {
		t.Error("zero instances should be free")
	}
	tbl.Set("a", "b", 1, Entry{Actual: 0.1, Predicted: 0.2})
	if e, err := tbl.Get("a", "b", 1); err != nil || e.Actual != 0.1 {
		t.Error("set/get round trip failed")
	}
}

func TestBatchAbsorbed(t *testing.T) {
	s := syntheticStudy(t, 0)
	r, err := s.Run(PolicySMiTe, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	absorbed := s.BatchAbsorbed(r)
	wantTotal := r.MeanInstances * 500 / 6
	if absorbed != wantTotal {
		t.Errorf("absorbed %.1f, want %.1f", absorbed, wantTotal)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := syntheticStudy(t, 0.02)
	a, err := s.Run(PolicyRandom, QoSAvg, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Run(PolicyRandom, QoSAvg, 0.90)
	if a.ViolationFrac != b.ViolationFrac || a.MeanInstances != b.MeanInstances {
		t.Error("study not deterministic")
	}
}

func TestStrings(t *testing.T) {
	if PolicySMiTe.String() != "SMiTe" || PolicyOracle.String() != "Oracle" || PolicyRandom.String() != "Random" {
		t.Error("policy names wrong")
	}
	if QoSAvg.String() == QoSTail.String() {
		t.Error("QoS kind names collide")
	}
}
