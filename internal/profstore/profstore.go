// Package profstore is the content-addressed on-disk profile store: fitted
// surrogate models, characterizations and other derived measurement
// artifacts persist under their simcache.Key, so repeated fleet studies and
// qosd restarts warm-start from disk instead of re-simulating.
//
// The store is a flat directory of JSON envelopes, one file per key. The
// address is the content hash of everything that determines the payload
// (machine configuration, measurement options, workload fingerprint — see
// the keying callers, e.g. internal/surrogate), so a stale entry can never
// be returned for changed inputs: changed inputs hash to a different file.
// Each envelope carries a format version, its own key and a payload
// checksum; decode failures are typed (ErrCorrupt, ErrVersionSkew,
// ErrNotFound) and never panic — the decode path is fuzzed.
package profstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/simcache"
)

// Load failures are typed so callers can react per class; match with
// errors.Is.
var (
	// ErrNotFound reports that no entry exists for the key.
	ErrNotFound = errors.New("profstore: entry not found")
	// ErrCorrupt wraps syntactically or structurally broken entries:
	// invalid JSON, a key that does not match the file's address, or a
	// payload failing its checksum.
	ErrCorrupt = errors.New("profstore: corrupt entry")
	// ErrVersionSkew marks an entry whose envelope version this build does
	// not understand.
	ErrVersionSkew = errors.New("profstore: unsupported entry version")
)

// envelopeVersion is the on-disk format version of an entry.
const envelopeVersion = 1

// envelope is the on-disk form of one entry. Key and SHA256 make silent
// corruption loud: Key must match the file's address, SHA256 the payload
// bytes.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"payload_sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Store is a content-addressed directory of JSON envelopes. It is safe for
// concurrent use by independent processes: writes are atomic
// (write-to-temp + rename) and entries are immutable once written — the
// same key always holds the same content, so a concurrent overwrite is a
// byte-identical no-op.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("profstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profstore: creating %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file holding key's entry (whether or not it exists).
func (s *Store) Path(key simcache.Key) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+".json")
}

// Put writes payload under key, replacing any existing entry atomically.
func (s *Store) Put(key simcache.Key, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("profstore: encoding payload for %s: %w", key.Short(), err)
	}
	sum := sha256.Sum256(raw)
	data, err := json.MarshalIndent(envelope{
		Version: envelopeVersion,
		Key:     hex.EncodeToString(key[:]),
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: raw,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("profstore: encoding envelope for %s: %w", key.Short(), err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("profstore: staging entry %s: %w", key.Short(), err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("profstore: writing entry %s: %w", key.Short(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("profstore: writing entry %s: %w", key.Short(), err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("profstore: publishing entry %s: %w", key.Short(), err)
	}
	return nil
}

// Get reads the entry for key into out (a JSON-decodable pointer). Missing
// entries return ErrNotFound; undecodable, mis-addressed or
// checksum-failing entries return ErrCorrupt; entries from an unknown
// format version return ErrVersionSkew.
func (s *Store) Get(key simcache.Key, out any) error {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, key.Short())
		}
		return fmt.Errorf("profstore: reading entry %s: %w", key.Short(), err)
	}
	return decodeEntry(data, key, out)
}

// decodeEntry validates and decodes one envelope. Factored out of Get so
// the fuzz harness can drive it with arbitrary bytes directly.
func decodeEntry(data []byte, key simcache.Key, out any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("%w: entry %s: %v", ErrCorrupt, key.Short(), err)
	}
	if env.Version != envelopeVersion {
		return fmt.Errorf("%w: entry %s has version %d, this build reads %d", ErrVersionSkew, key.Short(), env.Version, envelopeVersion)
	}
	if env.Key != hex.EncodeToString(key[:]) {
		return fmt.Errorf("%w: entry %s claims key %q", ErrCorrupt, key.Short(), env.Key)
	}
	// The envelope is stored indented, which re-indents the embedded
	// payload; compact it back to the canonical form Put hashed.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return fmt.Errorf("%w: entry %s payload: %v", ErrCorrupt, key.Short(), err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if env.SHA256 != hex.EncodeToString(sum[:]) {
		return fmt.Errorf("%w: entry %s payload checksum mismatch", ErrCorrupt, key.Short())
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("%w: entry %s payload: %v", ErrCorrupt, key.Short(), err)
	}
	return nil
}

// Keys lists every well-formed entry address currently in the store, in
// unspecified order. Files that are not entry-shaped are ignored.
func (s *Store) Keys() ([]simcache.Key, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("profstore: listing %s: %w", s.dir, err)
	}
	var out []simcache.Key
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".json"))
		if err != nil || len(raw) != len(simcache.Key{}) {
			continue
		}
		var k simcache.Key
		copy(k[:], raw)
		out = append(out, k)
	}
	return out, nil
}
