package experiments

import (
	"testing"
)

// TestCheckedSmokePath runs a full experiment driver with the runtime
// invariant checker enabled on every chip (profile.Options.Check), so the
// verification layer rides one of the real figure pipelines end to end: any
// conservation-law violation in any of the dozens of underlying simulation
// runs fails the experiment with a structured error.
func TestCheckedSmokePath(t *testing.T) {
	if testing.Short() {
		t.Skip("checked experiment driver in short mode")
	}
	scale := TestScale()
	scale.Options.Check = true
	l := NewLab(scale)

	fig2, err := l.Fig2FunctionalUnits()
	if err != nil {
		t.Fatalf("checked Fig2 run: %v", err)
	}
	if len(fig2.Chars) == 0 {
		t.Fatal("no characterizations")
	}

	fig9, err := l.Fig9RulerValidation()
	if err != nil {
		t.Fatalf("checked Fig9 run: %v", err)
	}
	for _, fu := range fig9.FU {
		if fu.TargetUtil < 0.9999 {
			t.Errorf("%s target-port utilisation %.5f < 99.99%% under checker", fu.Name, fu.TargetUtil)
		}
	}
}
