package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/workload"
)

// A pre-cancelled context never starts the characterization fan-out.
func TestCharacterizationsContextPreCancelled(t *testing.T) {
	l := NewLab(tinyLabScale())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set := l.specSet(workload.SPECCPU2006())[:2]
	if _, err := l.CharacterizationsContext(ctx, IvyBridge, profile.SMT, set, "pre-cancel"); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := l.charRuns.Load(); n != 0 {
		t.Fatalf("pre-cancelled call ran %d fan-outs", n)
	}
}

// A deadline far shorter than the sweep's wall-clock must abort the
// in-flight simulations, and a retry with a live context must succeed
// (the failed flight is not cached).
func TestCharacterizationsContextCancelsAndRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization fan-out in short mode")
	}
	scale := tinyLabScale()
	scale.Options.WarmupCycles = 10_000_000
	scale.Options.MeasureCycles = 50_000_000
	l := NewLab(scale)
	set := l.specSet(workload.SPECCPU2006())[:1]

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := l.CharacterizationsContext(ctx, IvyBridge, profile.SMT, set, "cancel-retry")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}

	// The retry must not inherit the dead flight. Shrink the windows so it
	// finishes quickly; the memo key ignores options, but the failed entry
	// must have been removed.
	l2 := NewLab(tinyLabScale())
	if _, err := l2.CharacterizationsContext(context.Background(), IvyBridge, profile.SMT, l2.specSet(workload.SPECCPU2006())[:1], "cancel-retry"); err != nil {
		t.Fatalf("fresh characterization after a cancelled one: %v", err)
	}
	if got := l.charRuns.Load(); got != 1 {
		t.Fatalf("cancelled lab ran %d fan-outs, want 1", got)
	}
}
