// Command smite is the command-line front end to the SMiTe methodology:
// list the stock application models, characterize an application with the
// Ruler suite, and predict (or actually measure) co-location degradations.
//
// Usage:
//
//	smite list
//	smite characterize -app 444.namd [-machine ivb|snb] [-placement smt|cmp] [-fast]
//	smite predict -victim web-search -aggressor 470.lbm [-fast]
//	smite measure -victim 444.namd -aggressor 429.mcf [-fast] [-timeline-out t.json]
//	smite fit [-apps 429.mcf,470.lbm,...] -out set.json [-store dir] [-train] [-fast]
//	smite surrogate -set set.json [-victim web-search -aggressor 470.lbm]
//	smite isol -victim web-search -aggressor 470.lbm [-ways 0,2,8] [-throttle 64]
//	smite version
//
// Every simulation subcommand accepts -trace-out to dump a Chrome trace of
// the run's internal stages; measure additionally accepts -timeline-out for
// a cycle-sampled contention timeline of the co-located pair. Both files
// load in chrome://tracing or Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/obs/timeline"
	"repro/internal/obs/trace"
	"repro/internal/profile"
	"repro/internal/version"
	"repro/smite"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels in-flight simulation work instead of leaving a long
	// characterization running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "characterize":
		err = characterize(ctx, os.Args[2:])
	case "predict":
		err = predict(ctx, os.Args[2:])
	case "measure":
		err = measure(ctx, os.Args[2:])
	case "fit":
		err = fit(ctx, os.Args[2:])
	case "surrogate":
		err = surrogateCmd(os.Args[2:])
	case "isol":
		err = isolCmd(ctx, os.Args[2:], os.Stdout)
	case "version", "-version", "--version":
		printVersion(os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smite: %v\n", err)
		os.Exit(1)
	}
}

func printVersion(w io.Writer) { version.Fprint(w, "smite") }

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  smite list
  smite characterize -app <name> [-machine ivb|snb] [-placement smt|cmp] [-fast]
  smite predict -victim <name> -aggressor <name> [-fast]
  smite measure -victim <name> -aggressor <name> [-fast] [-timeline-out <file>]
  smite fit [-apps a,b,...] -out <set.json> [-store <dir>] [-train] [-fast]
  smite surrogate -set <set.json> [-victim <name> -aggressor <name>]
  smite isol -victim <name> -aggressor <name> [-ways 0,2,8] [-throttle <cycles>] [-json <file>]
  smite version

simulation subcommands also accept -trace-out <file> (Chrome trace of the
run's stages; open in chrome://tracing)`)
}

func list() error {
	fmt.Println("SPEC CPU2006:")
	for _, s := range smite.SPECWorkloads() {
		fmt.Printf("  %-16s %s\n", s.Name, s.Suite)
	}
	fmt.Println("CloudSuite (latency-sensitive):")
	for _, s := range smite.CloudWorkloads() {
		fmt.Printf("  %-16s %d threads, %g QPS/thread\n", s.Name, s.ThreadCount(), s.ServiceRate)
	}
	return nil
}

func commonFlags(fs *flag.FlagSet) (machine *string, placement *string, fast *bool, traceOut *string) {
	machine = fs.String("machine", "ivb", "machine: ivb (i7-3770) or snb (Xeon E5-2420)")
	placement = fs.String("placement", "smt", "placement: smt or cmp")
	fast = fs.Bool("fast", false, "use reduced measurement windows")
	traceOut = fs.String("trace-out", "", "write a Chrome trace of the run's stages to this file")
	return
}

// traceTo attaches a span tracer to ctx when path is set. The returned
// finish renders the collected spans as Chrome-trace JSON to path; with no
// path it is a no-op and the run is completely untraced.
func traceTo(ctx context.Context, path string) (context.Context, func() error) {
	if path == "" {
		return ctx, func() error { return nil }
	}
	tr := trace.New()
	return trace.NewContext(ctx, tr), func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace to %s\n", path)
		return nil
	}
}

func machineOptions(machine string, fast bool) (smite.Machine, smite.Options, error) {
	opts := smite.DefaultOptions()
	if fast {
		opts = smite.FastOptions()
	}
	m := smite.IvyBridge
	if machine == "snb" {
		m = smite.SandyBridgeEN
	} else if machine != "ivb" {
		return m, opts, fmt.Errorf("unknown machine %q", machine)
	}
	return m, opts, nil
}

func newSystem(machine string, fast bool, extra ...smite.Option) (*smite.System, error) {
	m, opts, err := machineOptions(machine, fast)
	if err != nil {
		return nil, err
	}
	return smite.New(m.Config(), append([]smite.Option{smite.WithOptions(opts)}, extra...)...)
}

func parsePlacement(s string) (smite.Placement, error) {
	switch s {
	case "smt":
		return smite.SMT, nil
	case "cmp":
		return smite.CMP, nil
	}
	return smite.SMT, fmt.Errorf("unknown placement %q", s)
}

func characterize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	app := fs.String("app", "", "application name")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("characterize: -app is required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	spec, err := smite.WorkloadByName(*app)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	ch, err := sys.CharacterizeContext(ctx, spec, placement)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%v placement): solo IPC %.3f\n", ch.App, sys.Machine().Name, placement, ch.SoloIPC)
	fmt.Printf("%-16s %12s %12s\n", "dimension", "sensitivity", "contentiousness")
	for d := smite.Dimension(0); d < smite.NumDimensions; d++ {
		fmt.Printf("%-16s %11.2f%% %11.2f%%\n", d, ch.Sen[d]*100, ch.Con[d]*100)
	}
	return finishTrace()
}

// trainModel trains on the paper's even-numbered SPEC training set.
func trainModel(ctx context.Context, sys *smite.System, placement smite.Placement) (smite.Model, error) {
	train, _ := smite.TrainTestSplit()
	m, _, err := sys.TrainFromSetsContext(ctx, train, placement)
	return m, err
}

func predict(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	victim := fs.String("victim", "", "latency-sensitive / victim application")
	aggressor := fs.String("aggressor", "", "co-located batch / aggressor application")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("predict: -victim and -aggressor are required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	v, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	a, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	fmt.Println("training the prediction model on the even-numbered SPEC set...")
	m, err := trainModel(ctx, sys, placement)
	if err != nil {
		return err
	}
	chV, err := sys.CharacterizeContext(ctx, v, placement)
	if err != nil {
		return err
	}
	chA, err := sys.CharacterizeContext(ctx, a, placement)
	if err != nil {
		return err
	}
	deg := m.PredictPair(chV, chA)
	fmt.Printf("predicted degradation of %s next to %s (%v): %.2f%%\n", v.Name, a.Name, placement, deg*100)
	for _, target := range []float64{0.95, 0.90, 0.85} {
		verdict := "UNSAFE"
		if m.SafeColocation(chV, chA, target) {
			verdict = "safe"
		}
		fmt.Printf("  QoS target %.0f%%: %s\n", target*100, verdict)
	}
	return finishTrace()
}

func measure(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	victim := fs.String("victim", "", "victim application")
	aggressor := fs.String("aggressor", "", "aggressor application")
	timelineOut := fs.String("timeline-out", "", "write a cycle-sampled contention timeline of the co-located run to this file (Chrome-trace JSON)")
	parallelism := fs.Int("parallelism", 0, "simulation parallelism (0 = one worker per CPU)")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("measure: -victim and -aggressor are required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	v, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	a, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast, smite.WithParallelism(*parallelism))
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	pm, err := sys.MeasurePairContext(ctx, v, a, placement)
	if err != nil {
		return err
	}
	fmt.Printf("measured co-location (%v) on %s:\n", placement, sys.Machine().Name)
	fmt.Printf("  %-16s degrades %6.2f%%\n", pm.A, pm.DegA*100)
	fmt.Printf("  %-16s degrades %6.2f%%\n", pm.B, pm.DegB*100)
	if *timelineOut != "" {
		if err := writeTimeline(ctx, *machine, *fast, v, a, placement, *timelineOut); err != nil {
			return err
		}
		fmt.Printf("wrote contention timeline to %s\n", *timelineOut)
	}
	return finishTrace()
}

// fit builds a surrogate set: sample every application's (dimension,
// intensity) grid through the engine, fit closed-form curves with recorded
// error bounds, and write the set to -out. With -store, fits warm-start
// from (and are written back to) a content-addressed profile store, so a
// re-run with unchanged inputs touches no simulation at all.
func fit(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	apps := fs.String("apps", "", "comma-separated application names (default: the even-numbered SPEC training set)")
	out := fs.String("out", "surrogate.json", "write the fitted surrogate set to this file")
	storeDir := fs.String("store", "", "content-addressed profile store directory for warm starts (created if missing)")
	train := fs.Bool("train", false, "also measure pair ground truths and embed the Equation 3 model (needs >= 4 apps)")
	parallelism := fs.Int("parallelism", 0, "simulation parallelism (0 = one worker per CPU)")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	var specs []*smite.Spec
	if *apps == "" {
		specs, _ = smite.TrainTestSplit()
	} else {
		for _, name := range strings.Split(*apps, ",") {
			spec, err := smite.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			specs = append(specs, spec)
		}
	}
	sys, err := newSystem(*machine, *fast, smite.WithParallelism(*parallelism))
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	var set *smite.Surrogate
	if *storeDir != "" {
		store, err := smite.OpenProfileStore(*storeDir)
		if err != nil {
			return err
		}
		var stats smite.FitStats
		set, stats, err = sys.FitWithStore(ctx, store, specs, placement, smite.FitOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("profile store %s: %d warm, %d fitted\n", *storeDir, stats.Hits, stats.Misses)
	} else {
		set, err = sys.Fit(ctx, specs, placement, smite.FitOptions{})
		if err != nil {
			return err
		}
	}
	if *train {
		fmt.Printf("measuring %d pair ground truths for the embedded Equation 3 model...\n", len(specs)*(len(specs)-1)/2)
		if err := sys.TrainSurrogate(ctx, set, specs); err != nil {
			return err
		}
	}
	if err := smite.SaveSurrogate(*out, set); err != nil {
		return err
	}
	fmt.Printf("fitted %d models on %s (%v placement):\n", len(set.Models), set.Machine, placement)
	for _, spec := range specs {
		m := set.Models[spec.Name]
		fmt.Printf("  %-16s solo IPC %.3f, max curve error %.4f\n", m.App, m.SoloIPC, m.Bound())
	}
	fmt.Printf("wrote surrogate set to %s\n", *out)
	return finishTrace()
}

// surrogateCmd inspects a fitted set or answers a prediction from it —
// pure file I/O plus closed-form evaluation, no simulation.
func surrogateCmd(args []string) error {
	fs := flag.NewFlagSet("surrogate", flag.ExitOnError)
	setPath := fs.String("set", "", "surrogate set file written by smite fit")
	victim := fs.String("victim", "", "victim application (with -aggressor: predict instead of inspect)")
	aggressor := fs.String("aggressor", "", "aggressor application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *setPath == "" {
		return fmt.Errorf("surrogate: -set is required")
	}
	set, err := smite.LoadSurrogate(*setPath)
	if err != nil {
		return err
	}
	if (*victim == "") != (*aggressor == "") {
		return fmt.Errorf("surrogate: -victim and -aggressor go together")
	}
	if *victim != "" {
		pred, err := set.Predict(*victim, *aggressor)
		if err != nil {
			return err
		}
		fmt.Printf("predicted degradation of %s next to %s: %.2f%% (error bound %.2f%%)\n",
			*victim, *aggressor, pred.Degradation*100, pred.Bound*100)
		return nil
	}
	fmt.Printf("surrogate set on %s (%v placement): %d models, Equation 3 embedded: %v\n",
		set.Machine, set.Placement, len(set.Models), set.Eq3 != nil)
	names := make([]string, 0, len(set.Models))
	for name := range set.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := set.Models[name]
		fmt.Printf("  %-16s solo IPC %.3f, max curve error %.4f\n", m.App, m.SoloIPC, m.Bound())
	}
	return nil
}

// writeTimeline re-runs the co-located pair with a timeline recorder
// attached and renders the cycle-sampled counters as Chrome-trace JSON.
// The sampled run is a single sequential simulation — bit-identical to the
// measurement (the recorder is read-only) and independent of -parallelism,
// so the written file is deterministic across runs and worker counts.
func writeTimeline(ctx context.Context, machine string, fast bool, v, a *smite.Spec, placement smite.Placement, path string) error {
	m, opts, err := machineOptions(machine, fast)
	if err != nil {
		return err
	}
	rec := timeline.New()
	opts.Sampler = rec
	if _, err := profile.ColocateContext(ctx, m.Config(), profile.App(v), profile.App(a), placement, opts); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
