package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// FuzzWriteChrome drives an arbitrary byte program against the tracer API
// and checks the exporter round-trip invariants: the output always parses
// as valid JSON, and within every (pid, tid) track the event timestamps are
// monotonically non-decreasing with metadata events leading.
func FuzzWriteChrome(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 3})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Add([]byte{2, 0, 1, 2, 0, 1, 4, 4})
	f.Add([]byte{})
	f.Add([]byte{3, 3, 3, 0, 3, 1})

	f.Fuzz(func(t *testing.T, program []byte) {
		var clock time.Duration
		tr := New(WithClock(func() time.Duration { return clock }))
		root := NewContext(context.Background(), tr)

		type open struct {
			ctx  context.Context
			span *Span
		}
		stack := []open{{ctx: root}}
		names := []string{"alpha", "beta", "gamma", "delta"}

		for i, op := range program {
			switch op % 5 {
			case 0: // start a child span of the current top
				top := stack[len(stack)-1]
				ctx, s := Start(top.ctx, names[i%len(names)])
				stack = append(stack, open{ctx: ctx, span: s})
			case 1: // end the top span, if any
				if len(stack) > 1 {
					stack[len(stack)-1].span.End()
					stack = stack[:len(stack)-1]
				}
			case 2: // switch to a fresh track
				stack = append(stack, open{ctx: WithTrack(root, names[i%len(names)])})
			case 3: // advance the clock by a data-dependent step
				clock += time.Duration(op) * time.Microsecond
			case 4: // annotate the top span (nil-safe by contract)
				stack[len(stack)-1].span.SetAttr(Int("op", i))
			}
		}
		for len(stack) > 1 {
			stack[len(stack)-1].span.End()
			stack = stack[:len(stack)-1]
		}

		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		var env struct {
			TraceEvents []struct {
				Name  string  `json:"name"`
				Phase string  `json:"ph"`
				TS    float64 `json:"ts"`
				Dur   float64 `json:"dur"`
				PID   int     `json:"pid"`
				TID   int     `json:"tid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
			t.Fatalf("output does not parse as JSON: %v\n%s", err, buf.String())
		}

		type track struct{ pid, tid int }
		lastTS := map[track]float64{}
		sawSpan := false
		for _, e := range env.TraceEvents {
			switch e.Phase {
			case "M":
				if sawSpan {
					t.Fatalf("metadata event after span events")
				}
				continue
			case "X":
				sawSpan = true
			default:
				t.Fatalf("unexpected phase %q", e.Phase)
			}
			if e.Name == "" {
				t.Fatalf("span event with empty name")
			}
			if e.Dur < 0 {
				t.Fatalf("negative duration %v for %q", e.Dur, e.Name)
			}
			k := track{e.PID, e.TID}
			if prev, ok := lastTS[k]; ok && e.TS < prev {
				t.Fatalf("timestamps not monotone on track %+v: %v after %v", k, e.TS, prev)
			}
			lastTS[k] = e.TS
		}
		if got := len(env.TraceEvents); got < tr.Len() {
			t.Fatalf("exported %d events for %d finished spans", got, tr.Len())
		}
	})
}
