package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", v)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || Percentile(nil, 0.5) != 0 {
		t.Error("empty-input statistics should be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("Pearson = %g (%v), want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil || !almost(r, -1, 1e-12) {
		t.Errorf("Pearson = %g (%v), want -1", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant series accepted")
	}
}

// Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		xs := []float64{1, 5, 2, 8, 3, 9, 4}
		ys := []float64{2, 3, 7, 1, 9, 4, 6}
		r1, err1 := Pearson(xs, ys)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 3*x + 11
		}
		r2, err2 := Pearson(scaled, ys)
		return err1 == nil && err2 == nil && almost(r1, r2, 1e-9)
	}, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%.2f) = %g, want %g", c.p, got, c.want)
		}
	}
}

// Percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Percentile(xs, 0.5)
	if sort.Float64sAreSorted(xs) {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("ECDF.At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if m := e.Median(); !almost(m, 2, 1e-9) {
		t.Errorf("Median = %g", m)
	}
}

// ECDF.At is a monotone map into [0, 1].
func TestECDFProperties(t *testing.T) {
	if err := quick.Check(func(samples []float64, probes []float64) bool {
		var clean []float64
		for _, v := range samples {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		e := NewECDF(clean)
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			p := e.At(x)
			if p < 0 || p > 1 {
				return false
			}
			if p2 := e.At(x + 1); p2 < p {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || !almost(s.Mean, 5.5, 1e-12) || !almost(s.P50, 5.5, 1e-12) || s.Max1 != 10 || s.Min != 1 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestMeanAbs(t *testing.T) {
	if v := MeanAbs([]float64{-1, 1, -3, 3}); !almost(v, 2, 1e-12) {
		t.Errorf("MeanAbs = %g", v)
	}
	if MeanAbs(nil) != 0 {
		t.Error("MeanAbs(nil) != 0")
	}
}

// legacyRing replicates the inline latency ring buffer qosd carried before
// Window existed: fixed array, wrapping index, saturating count.
type legacyRing struct {
	window [64]float64
	idx    int
	count  int
}

func (m *legacyRing) record(v float64) {
	m.window[m.idx] = v
	m.idx = (m.idx + 1) % len(m.window)
	if m.count < len(m.window) {
		m.count++
	}
}

func (m *legacyRing) snapshot() (p50, p90, p99, max float64, n int) {
	samples := append([]float64(nil), m.window[:m.count]...)
	return Percentile(samples, 0.50), Percentile(samples, 0.90),
		Percentile(samples, 0.99), Max(samples), m.count
}

// TestWindowMatchesLegacyRing drives Window and the old ring with the same
// sample stream — shorter than, equal to, and far beyond capacity — and
// requires identical percentiles at every step. This is the equivalence
// proof for routing qosd's latency metric through stats.Window.
func TestWindowMatchesLegacyRing(t *testing.T) {
	w := NewWindow(64)
	var old legacyRing
	next := 12345.0
	for i := 0; i < 500; i++ {
		// Deterministic, wiggly sample stream with repeats and spikes.
		next = float64((int(next*31) + 17) % 997)
		v := next / 10
		w.Add(v)
		old.record(v)
		p50, p90, p99, max, n := old.snapshot()
		if w.Len() != n {
			t.Fatalf("step %d: Len = %d, want %d", i, w.Len(), n)
		}
		if got := w.Percentile(0.50); got != p50 {
			t.Fatalf("step %d: p50 = %v, want %v", i, got, p50)
		}
		if got := w.Percentile(0.90); got != p90 {
			t.Fatalf("step %d: p90 = %v, want %v", i, got, p90)
		}
		if got := w.Percentile(0.99); got != p99 {
			t.Fatalf("step %d: p99 = %v, want %v", i, got, p99)
		}
		if got := w.Max(); got != max {
			t.Fatalf("step %d: max = %v, want %v", i, got, max)
		}
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || w.Max() != 0 || w.Percentile(0.5) != 0 {
		t.Fatal("empty window not zero-valued")
	}
	for _, v := range []float64{5, 1, 9, 3} {
		w.Add(v)
	}
	if w.Len() != 4 || w.Max() != 9 {
		t.Fatalf("window = len %d max %v", w.Len(), w.Max())
	}
	w.Add(2) // evicts 5
	if got := w.Samples(); len(got) != 4 {
		t.Fatalf("samples = %v", got)
	}
	if w.Max() != 9 {
		t.Fatalf("max after eviction = %v", w.Max())
	}
	w.Add(1)
	w.Add(1)
	w.Add(1) // evicts 1, 9 and 3; window is now {2, 1, 1, 1}
	if w.Max() != 2 {
		t.Fatalf("max after evicting 9 = %v, want 2", w.Max())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}
