package branch

import (
	"testing"

	"repro/internal/xrand"
)

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(1024)
	// Always-taken branch: after warm-up, every prediction is correct.
	for i := 0; i < 10; i++ {
		p.Lookup(42, true)
	}
	p.ResetStats()
	for i := 0; i < 1000; i++ {
		if !p.Lookup(42, true) {
			t.Fatal("mispredicted a saturated always-taken branch")
		}
	}
	if r := p.MispredictRate(); r != 0 {
		t.Errorf("mispredict rate = %g on a monomorphic branch", r)
	}
}

func TestAlternatingBranchMispredicts(t *testing.T) {
	p := New(1024)
	taken := false
	for i := 0; i < 64; i++ {
		p.Lookup(7, taken)
		taken = !taken
	}
	p.ResetStats()
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Lookup(7, taken) {
			wrong++
		}
		taken = !taken
	}
	// A 2-bit counter on strict alternation mispredicts heavily.
	if wrong < 400 {
		t.Errorf("only %d/1000 mispredictions on alternating branch", wrong)
	}
}

func TestRandomOutcomesMispredictNearHalf(t *testing.T) {
	p := New(4096)
	rng := xrand.New(3)
	for i := 0; i < 50000; i++ {
		p.Lookup(uint32(rng.Intn(256)), rng.Bool(0.5))
	}
	r := p.MispredictRate()
	if r < 0.4 || r > 0.6 {
		t.Errorf("mispredict rate on random outcomes = %.3f, want ~0.5", r)
	}
}

func TestBiasedOutcomesMispredictNearBias(t *testing.T) {
	p := New(4096)
	rng := xrand.New(4)
	for i := 0; i < 50000; i++ {
		p.Lookup(uint32(rng.Intn(64)), rng.Bool(0.9))
	}
	r := p.MispredictRate()
	if r < 0.05 || r > 0.2 {
		t.Errorf("mispredict rate on 90%%-biased branches = %.3f, want ~0.1", r)
	}
}

func TestStats(t *testing.T) {
	p := New(16)
	p.Lookup(1, true)
	p.Lookup(1, true)
	preds, _ := p.Stats()
	if preds != 2 {
		t.Errorf("predictions = %d", preds)
	}
	p.ResetStats()
	if preds, miss := p.Stats(); preds != 0 || miss != 0 {
		t.Error("stats not reset")
	}
	if p.MispredictRate() != 0 {
		t.Error("idle mispredict rate not 0")
	}
}

func TestBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two table accepted")
		}
	}()
	New(100)
}
