package smite

import (
	"bytes"
	"math"
	"testing"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	cfg := IvyBridge.Config()
	cfg.Cores = 2
	sys, err := New(cfg, WithOptions(FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestWorkloadRegistry(t *testing.T) {
	if len(SPECWorkloads()) != 29 || len(CloudWorkloads()) != 4 {
		t.Error("registry sizes wrong")
	}
	if _, err := WorkloadByName("470.lbm"); err != nil {
		t.Error(err)
	}
	train, test := TrainTestSplit()
	if len(train)+len(test) != 29 {
		t.Error("split does not cover SPEC")
	}
}

func TestMachineConfigs(t *testing.T) {
	if IvyBridge.Config().Cores != 4 || SandyBridgeEN.Config().Cores != 6 {
		t.Error("stock core counts wrong")
	}
	if len(StandardRulers(IvyBridge.Config())) != int(NumDimensions) {
		t.Error("ruler suite size wrong")
	}
	bad := IvyBridge.Config()
	bad.Cores = 0
	if _, err := New(bad, WithOptions(FastOptions())); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEndToEndSession(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	sys := testSystem(t)
	namd, err := WorkloadByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	lbm, err := WorkloadByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}

	ipc, err := sys.SoloIPC(namd)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 || ipc > 4 {
		t.Errorf("namd solo IPC = %g", ipc)
	}

	ch, err := sys.Characterize(namd, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Sen[DimFPAdd] < 0.1 {
		t.Errorf("namd FP_ADD sensitivity = %g, want substantial", ch.Sen[DimFPAdd])
	}

	// Train on a small set and sanity-check a prediction against ground
	// truth.
	train, _ := TrainTestSplit()
	m, chars, err := sys.TrainFromSets(train[:8], SMT)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 8 {
		t.Errorf("got %d characterizations", len(chars))
	}
	coef, _ := m.Coefficients()
	for d, c := range coef {
		if c < 0 {
			t.Errorf("coefficient %d negative: %g", d, c)
		}
	}

	chLbm, err := sys.Characterize(lbm, SMT)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictPair(ch, chLbm)
	pm, err := sys.MeasurePair(namd, lbm, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-pm.DegA) > 0.25 {
		t.Errorf("prediction %.3f far from measured %.3f", pred, pm.DegA)
	}

	// Occupancy scaling: fewer instances, proportionally less damage.
	if got := m.PredictScaled(ch, chLbm, 1, 2); math.Abs(got-pred/2) > 1e-12 {
		t.Errorf("PredictScaled = %g, want %g", got, pred/2)
	}
	if got := m.PredictScaled(ch, chLbm, 5, 2); math.Abs(got-pred) > 1e-12 {
		t.Errorf("PredictScaled should clamp at full pressure")
	}
	if m.PredictScaled(ch, chLbm, 1, 0) != 0 {
		t.Error("zero threads should predict 0")
	}

	// SafeColocation consistency with PredictPair.
	if m.SafeColocation(ch, chLbm, 1-pred+0.01) {
		t.Error("SafeColocation accepted an unsafe target")
	}
	if !m.SafeColocation(ch, chLbm, 1-pred-0.01) {
		t.Error("SafeColocation rejected a safe target")
	}
}

func TestPredictTailLatency(t *testing.T) {
	base, err := PredictTailLatency(0.9, 1000, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(0.1) / 500
	if math.Abs(base-want) > 1e-12 {
		t.Errorf("baseline tail = %g, want %g", base, want)
	}
	degraded, err := PredictTailLatency(0.9, 1000, 500, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if degraded <= base {
		t.Error("degradation did not inflate the tail")
	}
	if _, err := PredictTailLatency(1.5, 1000, 500, 0); err == nil {
		t.Error("bad percentile accepted")
	}
	if !math.IsInf(mustTail(t, 0.9, 1000, 500, 0.6), 1) {
		t.Error("saturation should be infinite")
	}
}

func mustTail(t *testing.T, p, mu, lambda, deg float64) float64 {
	t.Helper()
	v, err := PredictTailLatency(p, mu, lambda, deg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTraceCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	sys := testSystem(t)
	spec, err := WorkloadByName("454.calculix")
	if err != nil {
		t.Fatal(err)
	}
	uops := CaptureTrace(spec, 200_000, 42)
	job := TraceJob("calculix-trace", uops, 1, spec.FootprintBytes)
	chTrace, err := sys.CharacterizeJob(job, SMT)
	if err != nil {
		t.Fatal(err)
	}
	chGen, err := sys.Characterize(spec, SMT)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed trace must carry the generator's contention character.
	if d := chTrace.Sen[DimFPMul] - chGen.Sen[DimFPMul]; d > 0.1 || d < -0.1 {
		t.Errorf("trace FP_MUL sensitivity %.3f far from generator's %.3f", chTrace.Sen[DimFPMul], chGen.Sen[DimFPMul])
	}
}

func TestTraceRoundTripPublicAPI(t *testing.T) {
	spec, err := WorkloadByName("445.gobmk")
	if err != nil {
		t.Fatal(err)
	}
	uops := CaptureTrace(spec, 1000, 7)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, uops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(uops) {
		t.Fatalf("round trip lost uops: %d vs %d", len(got), len(uops))
	}
	for i := range uops {
		if got[i] != uops[i] {
			t.Fatal("round trip changed a uop")
		}
	}
}
