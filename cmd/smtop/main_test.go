package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// Bad invocations must be rejected with an error (main turns any error into
// a non-zero exit after the FlagSet prints usage).
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no flags", nil},
		{"undefined flag", []string{"-bogus"}},
		{"missing app value", []string{"-app"}},
		{"unknown app", []string{"-app", "999.nope", "-fast"}},
		{"unknown machine", []string{"-app", "444.namd", "-machine", "alpha", "-fast"}},
		{"unknown placement", []string{"-app", "444.namd", "-placement", "both", "-fast"}},
		{"unknown ruler", []string{"-app", "444.namd", "-ruler", "L9", "-fast"}},
		{"with and ruler together", []string{"-app", "444.namd", "-with", "429.mcf", "-ruler", "L2", "-fast"}},
		{"unknown co-runner", []string{"-app", "444.namd", "-with", "999.nope", "-fast"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(context.Background(), tc.args, &out); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

func TestSoloSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smtop measurement in short mode")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-app", "429.mcf", "-fast", "-cycles", "20000"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"=== 429.mcf ===", "IPC", "L1D accesses", "DRAM accesses"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestColocatedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smtop measurement in short mode")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-app", "444.namd", "-ruler", "MEM_BW", "-fast", "-cycles", "20000"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "=== MEM_BW ===") {
		t.Errorf("report missing partner section:\n%s", out.String())
	}
}

// A cancelled context aborts the measurement rather than completing it.
func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, []string{"-app", "429.mcf", "-fast", "-cycles", "20000"}, &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "smtop ") || !strings.Contains(buf.String(), "go1") {
		t.Errorf("version output = %q", buf.String())
	}
}
