package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the media type for the OpenMetrics text format.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders every registered instrument in the OpenMetrics
// text format, families sorted by name and series by label values, ending
// with the required "# EOF" terminator. Output for fixed instrument values
// is byte-deterministic, which the qosd golden snapshot test relies on.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	entries := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		entries[name] = e
	}
	r.mu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		e := entries[name]
		writeHeader(bw, name, e)
		switch e.kind {
		case kindCounter:
			writeSample(bw, name+"_total", "", formatUint(e.counter.Value()))
		case kindCounterVec:
			for _, s := range e.vec.Snapshot() {
				writeSample(bw, name+"_total", formatLabels(e.vec.labels, s.Labels), formatUint(s.Count))
			}
		case kindGauge:
			writeSample(bw, name, "", formatFloat(e.gauge.Value()))
		case kindGaugeFunc:
			writeSample(bw, name, "", formatFloat(e.gaugeFn()))
		case kindHistogram:
			snap := e.histogram.Snapshot()
			for _, b := range snap.Buckets {
				writeSample(bw, name+"_bucket", formatLabels([]string{"le"}, []string{formatFloat(b.UpperBound)}), formatUint(b.Count))
			}
			writeSample(bw, name+"_count", "", formatUint(snap.Count))
			writeSample(bw, name+"_sum", "", formatFloat(snap.Sum))
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, name string, e *entry) {
	typ := ""
	switch e.kind {
	case kindCounter, kindCounterVec:
		typ = "counter"
	case kindGauge, kindGaugeFunc:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	}
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteString(" ")
	w.WriteString(typ)
	w.WriteString("\n")
	if e.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(name)
		w.WriteString(" ")
		w.WriteString(escapeHelp(e.help))
		w.WriteString("\n")
	}
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteString(" ")
	w.WriteString(value)
	w.WriteString("\n")
}

func formatLabels(names, values []string) string {
	var sb strings.Builder
	sb.WriteString("{")
	for i, n := range names {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteString(`"`)
	}
	sb.WriteString("}")
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
