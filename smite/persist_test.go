package smite

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
)

func sampleModel() Model {
	var inner model.Smite
	for d := range inner.Coef {
		inner.Coef[d] = float64(d) * 0.1
	}
	inner.Intercept = -0.02
	return Model{inner: inner}
}

func TestModelRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wc, wi := sampleModel().Coefficients()
	gc, gi := got.Coefficients()
	if wc != gc || wi != gi {
		t.Errorf("round trip changed the model: %v/%g vs %v/%g", gc, gi, wc, wi)
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	chars := []Characterization{
		{App: "a", SoloIPC: 1.5},
		{App: "b", SoloIPC: 0.4},
	}
	chars[0].Sen[DimFPAdd] = 0.4
	chars[1].Con[DimL3] = 0.6
	var buf bytes.Buffer
	if err := SaveProfiles(&buf, chars); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Sen != chars[0].Sen || got[1].Con != chars[1].Con {
		t.Errorf("round trip changed the profiles: %+v", got)
	}
}

func TestLoadRejectsWrongDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), "FP_MUL(P0)", "SOMETHING_ELSE", 1)
	if _, err := LoadModel(strings.NewReader(tampered)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	tampered = strings.Replace(buf.String(), `"version": 1`, `"version": 9`, 1)
	if _, err := LoadModel(strings.NewReader(tampered)); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage model accepted")
	}
	if _, err := LoadProfiles(strings.NewReader("{}")); err == nil {
		t.Error("empty profile file accepted (wrong version)")
	}
}

// Corrupted files must come back as structured errors, never as panics or
// silently wrong data — the scheduler acts on these profiles.

func TestLoadRejectsTruncatedFiles(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for _, frac := range []int{0, 1, 2, 3} { // empty, quarter, half, three-quarter
		cut := full[:len(full)*frac/4]
		if _, err := LoadModel(strings.NewReader(cut)); err == nil {
			t.Errorf("model truncated to %d/%d bytes accepted", len(cut), len(full))
		}
	}

	buf.Reset()
	chars := []Characterization{{App: "a", SoloIPC: 1.0}}
	if err := SaveProfiles(&buf, chars); err != nil {
		t.Fatal(err)
	}
	cut := buf.String()[:buf.Len()/2]
	if _, err := LoadProfiles(strings.NewReader(cut)); err == nil {
		t.Error("half-truncated profile file accepted")
	}
}

func TestLoadRejectsWrongCoefficientCount(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	// Drop one coefficient but keep the file otherwise valid.
	tampered := strings.Replace(buf.String(), "\n    0.1,", "", 1)
	if tampered == buf.String() {
		t.Fatal("tamper pattern did not match the encoded file")
	}
	_, err := LoadModel(strings.NewReader(tampered))
	if err == nil {
		t.Fatal("model with missing coefficient accepted")
	}
	if !strings.Contains(err.Error(), "coefficients") {
		t.Errorf("error %q does not name the coefficient mismatch", err)
	}
}

// Unknown fields are tolerated by design: a newer build may add fields, and
// an older reader should still load what it understands (the version field
// guards incompatible changes).
func TestLoadToleratesUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	extended := strings.Replace(buf.String(), `"version": 1,`, `"version": 1, "future_field": {"nested": [1,2,3]},`, 1)
	got, err := LoadModel(strings.NewReader(extended))
	if err != nil {
		t.Fatalf("unknown field rejected: %v", err)
	}
	wc, wi := sampleModel().Coefficients()
	gc, gi := got.Coefficients()
	if wc != gc || wi != gi {
		t.Error("unknown field corrupted the loaded model")
	}
}
