package cluster

import "repro/internal/qosd"

// Summary is the stable machine-readable aggregate of a discrete-event
// run, emitted by `clustersim -summary-json`. Its schema is versioned and
// pinned by a test so future benchci entries can gate fleet-level metrics
// (utilisation, SLO violations) on it without chasing field renames:
// additions bump nothing, renames/removals bump SummarySchemaVersion.
type Summary struct {
	SchemaVersion int     `json:"schema_version"`
	Policy        string  `json:"policy"`
	QoS           string  `json:"qos"`
	Target        float64 `json:"target"`

	Machines struct {
		Start int `json:"start"`
		End   int `json:"end"`
		Ups   int `json:"ups"`
		Downs int `json:"downs"`
	} `json:"machines"`

	Events struct {
		Total    int `json:"total"`
		Arrived  int `json:"arrived"`
		Placed   int `json:"placed"`
		Rejected int `json:"rejected"`
		Departed int `json:"departed"`
		Evicted  int `json:"evicted"`
	} `json:"events"`

	Utilization struct {
		Baseline float64 `json:"baseline"`
		Mean     float64 `json:"mean"`
		Peak     float64 `json:"peak"`
	} `json:"utilization"`

	SLO struct {
		Violations    int     `json:"violations"`
		ViolationFrac float64 `json:"violation_frac"`
	} `json:"slo"`

	// Saturation is the capacity-vs-demand signal over the whole run:
	// the fraction of arrivals the policy rejected, mapped onto a
	// scale-up/steady/scale-down signal under the same thresholds qosd's
	// live saturation analyzer uses (schema addition, version unchanged).
	Saturation SaturationSummary `json:"saturation"`

	// Baseline, when present, is the comparison run clustersim attaches:
	// the same event streams re-simulated under PolicySMiTe for
	// `-policy=slo`, or under the static PolicySLO gate for
	// `-policy=closedloop`, so violation rate and utilization can be
	// compared side by side (schema addition, version unchanged).
	Baseline *BaselineSummary `json:"baseline,omitempty"`

	// ClosedLoop, present for PolicyClosedLoop runs, counts the loop's
	// activity: confirmed drift detections, pair re-characterizations and
	// instance migrations (schema addition, version unchanged).
	ClosedLoop *ClosedLoopSummary `json:"closed_loop,omitempty"`

	// Isolation summarises the hardware QoS-enforcement activity. Always
	// present (schema addition, version unchanged): Enabled is false and
	// every counter zero under the other policies, so consumers can key on
	// the block unconditionally.
	Isolation IsolationSummary `json:"isolation"`
}

// IsolationSummary is PolicyIsolation's enforcement-ladder aggregate.
type IsolationSummary struct {
	Enabled bool `json:"enabled"`
	// Levels is the ladder depth (including the identity level 0).
	Levels int `json:"levels"`
	// Escalations counts level changes; Resolved the violations an engaged
	// operating point absorbed without migrating anything; Migrations the
	// last-resort moves after the ladder was exhausted.
	Escalations int `json:"escalations"`
	Resolved    int `json:"resolved"`
	Migrations  int `json:"migrations"`
	// ThroughputTax is the machine-time-weighted mean fraction of batch
	// throughput forfeited to engaged isolation levels.
	ThroughputTax float64 `json:"throughput_tax"`
}

// ClosedLoopSummary is the closed-loop controller's activity aggregate.
type ClosedLoopSummary struct {
	Detections       int `json:"detections"`
	Recharacterized  int `json:"recharacterized"`
	Migrations       int `json:"migrations"`
	MigrationsFailed int `json:"migrations_failed"`
}

// SaturationSummary mirrors qosd.SaturationReport for a whole simulated
// run.
type SaturationSummary struct {
	// RejectionFrac is rejected arrivals over all arrivals.
	RejectionFrac float64 `json:"rejection_frac"`
	// Signal is scale_up, steady, or scale_down.
	Signal             string  `json:"signal"`
	ScaleUpThreshold   float64 `json:"scale_up_threshold"`
	ScaleDownThreshold float64 `json:"scale_down_threshold"`
}

// BaselineSummary is the comparison policy's headline numbers.
type BaselineSummary struct {
	Policy          string  `json:"policy"`
	Placed          int     `json:"placed"`
	Rejected        int     `json:"rejected"`
	Violations      int     `json:"violations"`
	ViolationFrac   float64 `json:"violation_frac"`
	MeanUtilization float64 `json:"mean_utilization"`
	PeakUtilization float64 `json:"peak_utilization"`
}

// SummarySchemaVersion identifies the Summary JSON schema.
const SummarySchemaVersion = 1

// Summary reduces the result to its stable serialisable aggregate.
func (r SimResult) Summary() Summary {
	var s Summary
	s.SchemaVersion = SummarySchemaVersion
	s.Policy = r.Policy.String()
	s.QoS = r.QoS.String()
	s.Target = r.Target
	s.Machines.Start = r.MachinesStart
	s.Machines.End = r.MachinesEnd
	s.Machines.Ups = r.MachineUps
	s.Machines.Downs = r.MachineDowns
	s.Events.Total = r.Events
	s.Events.Arrived = r.Arrived
	s.Events.Placed = r.Placed
	s.Events.Rejected = r.Rejected
	s.Events.Departed = r.Departed
	s.Events.Evicted = r.Evicted
	s.Utilization.Baseline = r.BaselineUtilization
	s.Utilization.Mean = r.MeanUtilization
	s.Utilization.Peak = r.PeakUtilization
	s.SLO.Violations = r.Violations
	s.SLO.ViolationFrac = r.ViolationFrac
	up, down := qosd.DefaultScaleUpThreshold, qosd.DefaultScaleDownThreshold
	if r.SLOParams != nil {
		up, down = r.SLOParams.ScaleUpThreshold, r.SLOParams.ScaleDownThreshold
	}
	if r.Arrived > 0 {
		s.Saturation.RejectionFrac = float64(r.Rejected) / float64(r.Arrived)
	}
	s.Saturation.Signal = qosd.SaturationSignal(s.Saturation.RejectionFrac, up, down)
	s.Saturation.ScaleUpThreshold = up
	s.Saturation.ScaleDownThreshold = down
	if r.Policy == PolicyClosedLoop {
		s.ClosedLoop = &ClosedLoopSummary{
			Detections:       r.Detections,
			Recharacterized:  r.Recharacterized,
			Migrations:       r.Migrations,
			MigrationsFailed: r.MigrationsFailed,
		}
	}
	if r.Policy == PolicyIsolation {
		s.Isolation.Enabled = true
		s.Isolation.Levels = r.IsolationLevels
		s.Isolation.Escalations = r.Isolations
		s.Isolation.Resolved = r.IsolationResolved
		s.Isolation.Migrations = r.Migrations
		s.Isolation.ThroughputTax = r.IsolationTax
	}
	return s
}

// BaselineSummary reduces a comparison run to the fields Summary.Baseline
// carries.
func (r SimResult) BaselineSummary() *BaselineSummary {
	return &BaselineSummary{
		Policy:          r.Policy.String(),
		Placed:          r.Placed,
		Rejected:        r.Rejected,
		Violations:      r.Violations,
		ViolationFrac:   r.ViolationFrac,
		MeanUtilization: r.MeanUtilization,
		PeakUtilization: r.PeakUtilization,
	}
}
