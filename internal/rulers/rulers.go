// Package rulers implements SMiTe's Rulers: carefully designed software
// stressors that each apply maximum pressure to one shared-resource
// dimension while minimising pressure on every other dimension (paper
// Section III-B1, Figure 9).
//
// The seven standard Rulers cover the seven sharing dimensions the paper
// characterises:
//
//	FP_MUL  — port 0 only (the `mulps` loop of Fig. 9a)
//	FP_ADD  — port 1 only (the `addps` loop of Fig. 9b)
//	FP_SHF  — port 5 only (the `shufps` loop of Fig. 9c)
//	INT_ADD — ports 0, 1 and 5 (the `addl` loop of Fig. 9d)
//	L1, L2  — LFSR random increments over a cache-sized footprint (Fig. 9e)
//	L3      — 64-byte-stride increments over an L3-sized footprint (Fig. 9f)
//
// Functional-unit Rulers emit dependency-free unrolled streams of one
// port-specific micro-op kind, reaching >99.99% utilisation of the target
// port (validated against the simulated PMUs in this package's tests).
// Memory Rulers reproduce the paper's loops: the L1/L2 Ruler uses the exact
// LFSR from Fig. 9(e) to increment random elements of its footprint; the L3
// Ruler streams with a cache-line stride between two halves of its
// footprint. A Ruler's intensity is its duty cycle (functional-unit Rulers)
// or its working-set scale (memory Rulers); both relations are designed to
// be linear in the interference caused, which keeps profiling cost low.
package rulers

import (
	"fmt"

	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

// Dimension identifies one of the seven shared-resource sharing dimensions.
type Dimension int

const (
	// DimFPMul is floating-point multiply pressure on port 0.
	DimFPMul Dimension = iota
	// DimFPAdd is floating-point add pressure on port 1.
	DimFPAdd
	// DimFPShf is shuffle/branch-unit pressure on port 5.
	DimFPShf
	// DimIntAdd is integer ALU pressure spread over ports 0, 1 and 5.
	DimIntAdd
	// DimL1 is L1 data-cache capacity pressure.
	DimL1
	// DimL2 is L2 cache capacity pressure.
	DimL2
	// DimL3 is shared last-level-cache capacity pressure.
	DimL3
	// DimMemBW is DRAM bandwidth pressure. The paper folds bandwidth into
	// its L3 Ruler (on real hardware prefetchers make a cache-line-stride
	// walker both the maximal LLC and bandwidth stressor); on this
	// substrate capacity sensing requires a random walker whose bandwidth
	// demand is MSHR-bound, so bandwidth gets its own streaming Ruler —
	// the paper's multidimensional framework extended by one dimension.
	DimMemBW

	// NumDimensions is the number of sharing dimensions.
	NumDimensions
)

var dimNames = [NumDimensions]string{
	"FP_MUL(P0)", "FP_ADD(P1)", "FP_SHF(P5)", "INT_ADD(P015)", "L1", "L2", "L3", "MEM_BW",
}

// String names the dimension as the paper does.
func (d Dimension) String() string {
	if d >= 0 && d < NumDimensions {
		return dimNames[d]
	}
	return fmt.Sprintf("Dimension(%d)", int(d))
}

// IsMemory reports whether the dimension is a cache level (vs a
// functional-unit port).
func (d Dimension) IsMemory() bool { return d >= DimL1 }

// Dimensions returns all seven dimensions in order.
func Dimensions() []Dimension {
	out := make([]Dimension, NumDimensions)
	for i := range out {
		out[i] = Dimension(i)
	}
	return out
}

// Ruler describes one stressor instance. Construct via StandardSet, For or
// the specific constructors, then call NewStream per hardware context.
type Ruler struct {
	// Name identifies the Ruler ("FP_ADD", "L2@0.50").
	Name string
	// Dim is the sharing dimension this Ruler measures.
	Dim Dimension
	// Intensity in (0,1]: duty cycle for functional-unit Rulers, footprint
	// scale for memory Rulers.
	Intensity float64

	// kind is the port-specific micro-op (functional-unit Rulers).
	kind isa.UopKind
	// footprintBytes and stride describe memory Rulers; stride==0 selects
	// the LFSR random pattern of Fig. 9(e).
	footprintBytes uint64
	strideBytes    uint64
}

// TargetKind returns the port-specific micro-op kind for functional-unit
// Rulers (Nop for memory Rulers).
func (r *Ruler) TargetKind() isa.UopKind { return r.kind }

// FootprintBytes returns the working-set size for memory Rulers (0 for
// functional-unit Rulers).
func (r *Ruler) FootprintBytes() uint64 { return r.footprintBytes }

// WithIntensity returns a copy of the Ruler at a different intensity,
// clamped to (0, 1].
//
// The paper scales memory-Ruler intensity by working-set size; on this
// substrate a working-set sweep conflates two opposing effects (capacity
// pressure grows with the footprint while the Ruler's achievable access
// rate shrinks), so intensity throttles the Ruler's issue rate instead and
// the L1/L2/L3 footprints remain the three fixed capacity points.
//
// Intensity dilutes via *dependency chaining*, not nop filler: a diluted
// uop depends on its predecessor, serialising at the functional unit's (or
// the memory hierarchy's) latency. A chained Ruler therefore backs up in
// its own ROB and yields front-end slots to the work-conserving fetch
// stage — just like a saturated one — so the knob moves pressure only in
// the Ruler's target dimension. Nop filler gets this wrong in the opposite
// direction: nops retire at full width, so a diluted Ruler never stalls
// and *steals more* shared fetch bandwidth than a port-bound one, making
// interference fall as intensity rises. Chaining preserves what intensity
// is for: a knob whose relation to induced interference is monotone and
// close to linear, so two end points bound a sensitivity curve
// (Section III-B1).
func (r *Ruler) WithIntensity(i float64) *Ruler {
	if i <= 0 {
		i = 0.01
	}
	if i > 1 {
		i = 1
	}
	c := *r
	c.Intensity = i
	c.Name = fmt.Sprintf("%s@%.2f", baseName(r.Dim), i)
	return &c
}

func baseName(d Dimension) string {
	switch d {
	case DimFPMul:
		return "FP_MUL"
	case DimFPAdd:
		return "FP_ADD"
	case DimFPShf:
		return "FP_SHF"
	case DimIntAdd:
		return "INT_ADD"
	case DimL1:
		return "L1"
	case DimL2:
		return "L2"
	case DimL3:
		return "L3"
	case DimMemBW:
		return "MEM_BW"
	}
	return d.String()
}

// FPMul returns the port-0 Ruler (Fig. 9a).
func FPMul() *Ruler { return &Ruler{Name: "FP_MUL", Dim: DimFPMul, Intensity: 1, kind: isa.FPMul} }

// FPAdd returns the port-1 Ruler (Fig. 9b).
func FPAdd() *Ruler { return &Ruler{Name: "FP_ADD", Dim: DimFPAdd, Intensity: 1, kind: isa.FPAdd} }

// FPShf returns the port-5 Ruler (Fig. 9c).
func FPShf() *Ruler { return &Ruler{Name: "FP_SHF", Dim: DimFPShf, Intensity: 1, kind: isa.FPShuf} }

// IntAdd returns the ports-0/1/5 Ruler (Fig. 9d).
func IntAdd() *Ruler { return &Ruler{Name: "INT_ADD", Dim: DimIntAdd, Intensity: 1, kind: isa.IntAdd} }

// L1 returns the L1 cache Ruler (Fig. 9e) sized to the given L1 capacity.
func L1(cacheBytes uint64) *Ruler {
	return &Ruler{Name: "L1", Dim: DimL1, Intensity: 1, footprintBytes: cacheBytes}
}

// L2 returns the L2 cache Ruler (Fig. 9e binary with a larger working set).
func L2(cacheBytes uint64) *Ruler {
	return &Ruler{Name: "L2", Dim: DimL2, Intensity: 1, footprintBytes: cacheBytes}
}

// L3 returns the L3 Ruler sized to the shared cache. The paper's Fig. 9(f)
// design strides at the cache-line size; on this substrate the stream
// prefetcher hides a stride walker's own latency, which would compress the
// Ruler's ability to *sense* capacity theft (its degradation — the
// co-runner's contentiousness — would saturate). We therefore apply the
// same maximum-pressure/maximum-sensitivity design principle with the
// Fig. 9(e) LFSR random pattern at L3 scale, which is prefetch-immune.
// StrideL3 preserves the literal Fig. 9(f) construction for comparison.
func L3(cacheBytes uint64) *Ruler {
	return &Ruler{Name: "L3", Dim: DimL3, Intensity: 1, footprintBytes: cacheBytes}
}

// StrideL3 is the literal Fig. 9(f) Ruler: 64-byte-stride increments
// alternating between the two halves of an L3-sized footprint.
func StrideL3(cacheBytes uint64) *Ruler {
	return &Ruler{Name: "L3-stride", Dim: DimL3, Intensity: 1, footprintBytes: cacheBytes, strideBytes: 64}
}

// MemBW returns the DRAM-bandwidth Ruler: the Fig. 9(f) cache-line-stride
// walker over twice the L3 capacity, so every access streams from DRAM at
// the stream prefetcher's full rate — the maximum bandwidth one context
// can demand.
func MemBW(l3Bytes uint64) *Ruler {
	return &Ruler{Name: "MEM_BW", Dim: DimMemBW, Intensity: 1, footprintBytes: 2 * l3Bytes, strideBytes: 64}
}

// StandardSet returns the standard Ruler suite for a machine configuration,
// with memory Rulers sized to its cache hierarchy (the paper sizes the
// L1/L2/L3 Rulers' working sets to the cache capacities; the bandwidth
// Ruler streams beyond the L3).
func StandardSet(cfg isa.Config) []*Ruler {
	return []*Ruler{
		FPMul(),
		FPAdd(),
		FPShf(),
		IntAdd(),
		L1(uint64(cfg.L1D.SizeBytes)),
		L2(uint64(cfg.L2.SizeBytes)),
		L3(uint64(cfg.L3.SizeBytes)),
		MemBW(uint64(cfg.L3.SizeBytes)),
	}
}

// For returns the standard Ruler for one dimension of a configuration.
func For(cfg isa.Config, d Dimension) *Ruler {
	set := StandardSet(cfg)
	for _, r := range set {
		if r.Dim == d {
			return r
		}
	}
	panic(fmt.Sprintf("rulers: no standard ruler for %v", d))
}

// NewStream instantiates the Ruler's micro-op stream for one hardware
// context. Distinct seeds give decorrelated instances (for the
// multi-instance CloudSuite experiments).
func (r *Ruler) NewStream(seed uint64) Stream {
	if r.Dim.IsMemory() {
		return newMemStream(r.footprintBytes, r.strideBytes, r.Intensity, seed)
	}
	return &fuStream{kind: r.kind, intensity: r.Intensity, rng: xrand.New(seed)}
}

// Stream matches engine.Stream without importing the engine package (the
// dependency points the other way: profiling code hands Ruler streams to
// the engine).
type Stream interface {
	Next(u *isa.Uop)
}

// fuStream is an unrolled loop of one port-specific uop. At full intensity
// every uop is independent (maximum port pressure); below it, a uop is
// chained onto its predecessor with probability 1-intensity, serialising a
// fraction of the stream at the unit's latency.
type fuStream struct {
	kind      isa.UopKind
	intensity float64
	rng       *xrand.Rand
}

func (s *fuStream) Next(u *isa.Uop) {
	u.Kind = s.kind
	if s.intensity >= 1 || s.rng.Float64() < s.intensity {
		return
	}
	u.Dep1 = 1 // duty-cycled pressure: serialise on the predecessor
}

// memStream reproduces the paper's memory Rulers: increment (load+store)
// walks over the footprint, random via the Fig. 9(e) LFSR when stride is 0,
// otherwise alternating between the two halves with the given stride
// (Fig. 9f). Loops are "unrolled": the stream carries no branches, and at
// full intensity the only dependency is the store of each increment on its
// load. Below full intensity a fraction 1-intensity of the loads also chain
// onto the previous load, throttling the access rate without shrinking the
// footprint.
type memStream struct {
	footBytes uint64
	stride    uint64
	intensity float64

	lfsr *xrand.LFSR
	rng  *xrand.Rand
	pos  uint64 // stride cursor
	half bool   // Fig. 9(f): false => first_chunk, true => second_chunk

	pendingStore bool
	addr         uint64
}

func newMemStream(footprintBytes, strideBytes uint64, intensity float64, seed uint64) *memStream {
	return &memStream{
		footBytes: footprintBytes &^ 63,
		stride:    strideBytes,
		intensity: intensity,
		lfsr:      xrand.NewLFSR(uint32(seed) | 1),
		rng:       xrand.New(seed),
	}
}

// PrewarmFootprint declares the Ruler's working set for functional cache
// installation. Random walkers re-touch their whole footprint constantly;
// a strided walker only earns residency if it wraps quickly enough to
// revisit lines within a measurement window.
func (s *memStream) PrewarmFootprint() []uint64 {
	if s.stride > 0 && s.footBytes/s.stride > 131072 {
		return nil // streaming: no reuse before wraparound
	}
	return []uint64{s.footBytes}
}

func (s *memStream) Next(u *isa.Uop) {
	if s.pendingStore {
		// data_chunk[i]++ — the store consumes the loaded value.
		s.pendingStore = false
		u.Kind = isa.Store
		u.Addr = s.addr
		u.Dep1 = 1
		return
	}
	chase := s.intensity < 1 && !s.rng.Bool(s.intensity)
	if s.stride == 0 {
		// Fig. 9(e): data_chunk[RAND % FOOTPRINT]++
		words := s.footBytes / 8
		s.addr = (uint64(s.lfsr.Next()) % words) * 8
	} else {
		// Fig. 9(f): first_chunk[i] = second_chunk[i] + 1 alternating
		// between halves, with a cache-line stride.
		half := s.footBytes / 2
		base := uint64(0)
		if s.half {
			base = half
		}
		s.addr = base + s.pos
		if s.half {
			s.pos += s.stride
			if s.pos >= half {
				s.pos = 0
			}
		}
		s.half = !s.half
	}
	s.pendingStore = true
	u.Kind = isa.Load
	u.Addr = s.addr
	if chase {
		// Duty-cycled pressure: make this load's address depend on the
		// previous load (pointer-chase pacing), serialising the pair at the
		// hierarchy's latency. The walk order and footprint are unchanged —
		// only the achievable access rate drops.
		u.Dep1 = 2
	}
}
