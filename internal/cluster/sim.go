package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"

	clworkload "repro/internal/cluster/workload"
	"repro/internal/isol"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// This file is the warehouse-scale discrete-event core: tens of
// thousands of machines, millions of placement/churn events, seconds of
// wall-clock. It replaces full-fleet scans with incremental
// contention-aware placement: machines live in per-shard occupancy
// buckets keyed by (latency app, resident batch app, instance count), and
// because predicted QoS depends only on that state triple, best-fit
// admission is a scan over O(apps × instances) buckets instead of O(fleet)
// machines, independent of fleet size.
//
// Determinism. The fleet is statically sharded into scheduling cells
// (machine → shard, jobs dealt to shards by the workload generator), and
// each shard is a self-contained sequential simulation: one indexed
// min-heap of pending departures merged two-way with the shard's
// time-sorted exogenous stream, ties broken departures-first, then by
// shard-local sequence numbers. Shards never communicate, so fanning them
// across sched.Map workers is bit-identical at any worker count; the
// per-shard placement logs are merged by (At, Shard, Seq) afterwards.
// internal/simtest pins replay determinism as a 20-seed law.

// DefaultShards is the shard count used when SimConfig.Shards is zero:
// enough cells to keep a machine's worth of workers busy without
// fragmenting small fleets.
const DefaultShards = 16

// SimConfig parameterises one discrete-event cluster run. The workload
// config carries the fleet size, horizon, seed and application-population
// dimensions; the prediction table carries the QoS surface placements are
// decided (and scored) on.
type SimConfig struct {
	// Workload shapes the exogenous event streams (arrival curves, mix
	// drift, churn) and fixes Machines/Horizon/Seed/Lats/Batches.
	Workload clworkload.Config `json:"workload"`
	// Shards is the number of scheduling cells the fleet is split into
	// (0 = DefaultShards). More shards means more available parallelism
	// and smaller cells; results depend on the shard count but not on the
	// worker count.
	Shards int `json:"shards"`
	// Policy decides admissions: SMiTe places on predicted QoS, Oracle on
	// measured QoS, Random ignores interference and packs by capacity.
	Policy PolicyKind `json:"policy"`
	// Target is the QoS floor in (0, 1] placements must respect.
	Target float64 `json:"target"`
	// ThreadsPerServer and ContextsPerServer set the machine geometry;
	// ContextsPerServer − ThreadsPerServer idle contexts take batch
	// instances, at most Table.MaxInstances of them.
	ThreadsPerServer  int `json:"threads_per_server"`
	ContextsPerServer int `json:"contexts_per_server"`
	// Table is the precomputed QoS surface (BuildPredTable).
	Table *PredTable `json:"table"`
	// SLO carries the per-class tail-latency budgets and queue rates.
	// Required (with a table holding the degradation surface) when
	// Policy is PolicySLO or PolicyClosedLoop; optional otherwise, in
	// which case it only switches violation accounting from the QoS floor
	// to the class budgets so QoS-floor policies can be compared against
	// the SLO gate on identical terms.
	SLO *SLOSimParams `json:"slo,omitempty"`
	// Drift, when set, shifts the measured degradation surface mid-run
	// (closedloop.go). Violation accounting follows the shifted surface
	// for every policy, so static-vs-closed-loop comparisons are
	// apples-to-apples. Schema addition: traces without it replay
	// unchanged (trace format version 1).
	Drift *DriftSpec `json:"drift,omitempty"`
	// MachineGens, when set, makes the fleet heterogeneous: each machine
	// generation brings its own prediction table and geometry, with Table
	// left nil (isolation.go). Schema addition: homogeneous traces replay
	// unchanged.
	MachineGens []MachineGenSpec `json:"machine_gens,omitempty"`
	// Isol carries the isolation ladder PolicyIsolation escalates through;
	// nil picks isol.DefaultSettings. Only meaningful (and only accepted)
	// with PolicyIsolation.
	Isol *IsolSimParams `json:"isolation,omitempty"`
	// Alloc names the thread-to-core allocation policy scoring the
	// admission scan (AllocPolicies); empty is the bestfit default, which
	// reproduces the historical greedy behaviour bit-for-bit.
	Alloc string `json:"alloc,omitempty"`
}

// genTables returns the per-generation prediction tables (len ≥ 1; the
// homogeneous fleet is a single unnamed generation backed by Table).
func (c *SimConfig) genTables() []*PredTable {
	if len(c.MachineGens) > 0 {
		ts := make([]*PredTable, len(c.MachineGens))
		for i, g := range c.MachineGens {
			ts[i] = g.Table
		}
		return ts
	}
	return []*PredTable{c.Table}
}

// withDefaults normalises zero-valued knobs.
func (c SimConfig) withDefaults() SimConfig {
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	c.SLO = c.SLO.withDefaults()
	if c.Policy == PolicyIsolation {
		c.Isol = c.Isol.withDefaults()
	}
	return c
}

// Validate rejects configurations RunSim cannot execute.
func (c SimConfig) Validate() error {
	c = c.withDefaults()
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: sim shards must be non-negative, got %d", c.Shards)
	}
	switch c.Policy {
	case PolicySMiTe, PolicyOracle, PolicyRandom, PolicySLO, PolicyClosedLoop, PolicyIsolation:
	default:
		return fmt.Errorf("cluster: unknown policy %d", int(c.Policy))
	}
	if (c.Policy == PolicySLO || c.Policy == PolicyClosedLoop || c.Policy == PolicyIsolation) && c.SLO == nil {
		return fmt.Errorf("cluster: policy %s needs SLO parameters", c.Policy)
	}
	if c.Policy == PolicyIsolation {
		if err := c.Isol.Validate(); err != nil {
			return err
		}
		if c.Drift != nil {
			return fmt.Errorf("cluster: policy %s does not compose with drift injection", c.Policy)
		}
	} else if c.Isol != nil {
		return fmt.Errorf("cluster: isolation parameters need policy %s, got %s", PolicyIsolation, c.Policy)
	}
	if c.Alloc != "" {
		if _, err := AllocPolicyByName(c.Alloc); err != nil {
			return err
		}
		if c.Policy == PolicyRandom {
			return fmt.Errorf("cluster: alloc policy %q has no effect under policy %s", c.Alloc, c.Policy)
		}
	}
	if err := c.Drift.Validate(c.Workload.Batches); err != nil {
		return err
	}
	if c.SLO != nil {
		if err := c.SLO.Validate(); err != nil {
			return err
		}
	}
	if c.Target <= 0 || c.Target > 1 {
		return fmt.Errorf("cluster: QoS target %.3f outside (0,1]", c.Target)
	}
	if c.ThreadsPerServer <= 0 || c.ContextsPerServer <= 0 {
		return fmt.Errorf("cluster: server geometry must be positive")
	}
	if c.ThreadsPerServer >= c.ContextsPerServer {
		return fmt.Errorf("cluster: %d threads leave no idle context of %d", c.ThreadsPerServer, c.ContextsPerServer)
	}
	if err := c.validateFleet(); err != nil {
		return err
	}
	return nil
}

// validateFleet checks the prediction table(s) and per-generation geometry
// against the workload and policy — the homogeneous single-table fleet and
// the heterogeneous MachineGens fleet share every per-table rule.
func (c *SimConfig) validateFleet() error {
	checkTable := func(scope string, t *PredTable, threads, contexts int) error {
		wrap := func(err error) error {
			if scope == "" {
				return err
			}
			return fmt.Errorf("cluster: %s: %w", scope, err)
		}
		if err := t.Validate(); err != nil {
			return wrap(err)
		}
		if c.SLO != nil && !t.HasDegradations() {
			return wrap(fmt.Errorf("cluster: SLO-gated run needs a table with the degradation surface (rebuild with BuildPredTable)"))
		}
		if len(t.LatencyApps) != c.Workload.Lats || len(t.BatchApps) != c.Workload.Batches {
			return wrap(fmt.Errorf("cluster: table is %d×%d apps but workload generates %d×%d",
				len(t.LatencyApps), len(t.BatchApps), c.Workload.Lats, c.Workload.Batches))
		}
		if t.MaxInstances > contexts-threads {
			return wrap(fmt.Errorf("cluster: %d instances exceed %d idle contexts",
				t.MaxInstances, contexts-threads))
		}
		return nil
	}
	if len(c.MachineGens) == 0 {
		return checkTable("", c.Table, c.ThreadsPerServer, c.ContextsPerServer)
	}
	if c.Table != nil {
		return fmt.Errorf("cluster: machine generations carry their own tables; leave Table nil")
	}
	if c.Policy == PolicyClosedLoop {
		return fmt.Errorf("cluster: policy %s does not support heterogeneous machine generations yet", c.Policy)
	}
	if c.Drift != nil {
		return fmt.Errorf("cluster: drift injection does not support heterogeneous machine generations yet")
	}
	ref := c.MachineGens[0].Table
	seen := make(map[string]bool, len(c.MachineGens))
	for i, g := range c.MachineGens {
		if g.Name == "" {
			return fmt.Errorf("cluster: machine generation %d has no name", i)
		}
		if seen[g.Name] {
			return fmt.Errorf("cluster: duplicate machine generation %q", g.Name)
		}
		seen[g.Name] = true
		if g.Count <= 0 {
			return fmt.Errorf("cluster: machine generation %q count %d must be positive", g.Name, g.Count)
		}
		threads, contexts := g.geometry(c)
		if threads <= 0 || contexts <= 0 || threads >= contexts {
			return fmt.Errorf("cluster: machine generation %q geometry %d/%d leaves no idle context", g.Name, threads, contexts)
		}
		if err := checkTable(fmt.Sprintf("machine generation %q", g.Name), g.Table, threads, contexts); err != nil {
			return err
		}
		if ref != nil && g.Table != nil {
			if len(g.Table.LatencyApps) != len(ref.LatencyApps) ||
				len(g.Table.BatchApps) != len(ref.BatchApps) ||
				g.Table.MaxInstances != ref.MaxInstances ||
				g.Table.QoS != ref.QoS {
				return fmt.Errorf("cluster: machine generation %q table shape differs from %q (generations must share populations, MaxInstances, and QoS kind)",
					g.Name, c.MachineGens[0].Name)
			}
		}
	}
	return nil
}

// GenerateEvents produces the per-shard exogenous event streams for the
// configured workload — the recordable half of a run.
func GenerateEvents(cfg SimConfig) ([][]clworkload.Event, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := make([][]clworkload.Event, cfg.Shards)
	for s := range shards {
		ev, err := clworkload.Generate(cfg.Workload, s, cfg.Shards)
		if err != nil {
			return nil, err
		}
		shards[s] = ev
	}
	return shards, nil
}

// Placement is one scheduler decision in the merged log. Rejections are
// logged too (Machine = −1), so the log is a complete decision record and
// bit-for-bit comparable across replays.
type Placement struct {
	At      float64 `json:"t"`
	Shard   int32   `json:"s"`
	Seq     uint32  `json:"q"` // shard-local decision sequence
	Machine int64   `json:"m"` // global machine id; −1 = rejected
	Lat     int16   `json:"l"` // latency app of the machine; −1 = rejected
	Batch   int16   `json:"b"`
	N       int16   `json:"n"` // resident instances after placement; 0 = rejected
	// Kind types non-admission decisions (PlacementMigrate); empty for
	// ordinary placements and rejections, so pre-closed-loop logs decode
	// and hash identically.
	Kind string `json:"k,omitempty"`
	// From is the machine a migrated instance left (Kind=PlacementMigrate).
	From int64 `json:"f,omitempty"`
}

// PlacementMigrate marks a closed-loop migration decision in the log:
// Machine/Lat/N describe the receiving machine, From the drifted one.
const PlacementMigrate = "migrate"

// SimResult aggregates one discrete-event run.
type SimResult struct {
	Policy PolicyKind
	QoS    QoSKind
	Target float64

	// Events counts every processed event: exogenous arrivals/churn plus
	// endogenous job departures.
	Events int
	// Arrived/Placed/Rejected count batch jobs; Departed jobs that ran to
	// completion; Evicted jobs killed by a machine decommission.
	Arrived, Placed, Rejected, Departed, Evicted int
	// MachinesStart/End/Ups/Downs describe fleet churn.
	MachinesStart, MachinesEnd, MachineUps, MachineDowns int

	// BaselineUtilization is the no-co-location context utilisation;
	// MeanUtilization the machine-time-weighted mean with co-location;
	// PeakUtilization the largest instantaneous shard utilisation.
	BaselineUtilization float64
	MeanUtilization     float64
	PeakUtilization     float64

	// Violations counts placements that actually missed their objective
	// at the resulting occupancy — the measured QoS under the target for
	// QoS-floor runs, the measured Eq. 6 tail over the class budget when
	// SLO parameters are set (the post-drift surface once SimConfig.Drift
	// lands); ViolationFrac normalises by Placed.
	Violations    int
	ViolationFrac float64

	// Closed-loop activity (PolicyClosedLoop only): confirmed drift
	// detections, (lat, batch)-pair re-characterizations, and attempted
	// instance migrations. PolicyIsolation reuses the migration counters
	// for its last-resort moves.
	Detections       int
	Recharacterized  int
	Migrations       int
	MigrationsFailed int

	// Isolation activity (PolicyIsolation only): ladder escalations,
	// violations an engaged operating point absorbed without any
	// migration, the ladder depth, and the machine-time-weighted mean
	// throughput tax the engaged levels cost the fleet.
	Isolations        int
	IsolationResolved int
	IsolationLevels   int
	IsolationTax      float64

	// SLOParams echoes the run's (normalised) SLO parameters, nil for
	// QoS-floor runs; Summary reads its saturation thresholds.
	SLOParams *SLOSimParams

	// Log is the merged placement log, ordered by (At, Shard, Seq).
	Log []Placement
}

// RunSim executes the discrete-event simulation over the given per-shard
// exogenous streams (GenerateEvents for a fresh run, ReadTrace for a
// replay), fanning shards across at most workers sched workers. The
// result — including the merged placement log — is bit-identical for
// every workers value.
func RunSim(ctx context.Context, cfg SimConfig, shards [][]clworkload.Event, workers int) (SimResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	if len(shards) != cfg.Shards {
		return SimResult{}, fmt.Errorf("cluster: %d event shards for %d sim shards", len(shards), cfg.Shards)
	}
	// The admission/violation surfaces — one per (generation, isolation
	// level) pair — and the post-drift measured surface are pure functions
	// of the tables and parameters; precompute them once and share them
	// read-only across shards.
	world, err := buildSimWorld(&cfg)
	if err != nil {
		return SimResult{}, err
	}
	results := make([]shardResult, cfg.Shards)
	err = sched.Map(ctx, cfg.Shards, workers, func(ctx context.Context, i int) error {
		r, err := runShard(ctx, &cfg, world, i, shards[i])
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return SimResult{}, err
	}
	return mergeShards(cfg, results), nil
}

// shardResult is one cell's contribution before the deterministic merge.
type shardResult struct {
	events                        int
	arrived, placed, rejected     int
	departed, evicted             int
	machinesStart, machinesEnd    int
	ups, downs                    int
	violations                    int
	detections, recharacterized   int
	migrations, migrationsFailed  int
	isolations, isolationResolved int
	busyInt, ctxInt, baseInt      float64 // utilisation integrals
	taxInt                        float64 // throughput-tax integral (PolicyIsolation)
	peak                          float64
	log                           []Placement
}

func mergeShards(cfg SimConfig, rs []shardResult) SimResult {
	out := SimResult{Policy: cfg.Policy, QoS: cfg.genTables()[0].QoS, Target: cfg.Target, SLOParams: cfg.SLO}
	if cfg.Policy == PolicyIsolation {
		out.IsolationLevels = len(cfg.Isol.Levels)
	}
	logLen := 0
	for _, r := range rs {
		out.Events += r.events
		out.Arrived += r.arrived
		out.Placed += r.placed
		out.Rejected += r.rejected
		out.Departed += r.departed
		out.Evicted += r.evicted
		out.MachinesStart += r.machinesStart
		out.MachinesEnd += r.machinesEnd
		out.MachineUps += r.ups
		out.MachineDowns += r.downs
		out.Violations += r.violations
		out.Detections += r.detections
		out.Recharacterized += r.recharacterized
		out.Migrations += r.migrations
		out.MigrationsFailed += r.migrationsFailed
		out.Isolations += r.isolations
		out.IsolationResolved += r.isolationResolved
		if r.peak > out.PeakUtilization {
			out.PeakUtilization = r.peak
		}
		logLen += len(r.log)
	}
	var busy, ctx, base, tax float64
	for _, r := range rs {
		busy += r.busyInt
		ctx += r.ctxInt
		base += r.baseInt
		tax += r.taxInt
	}
	if ctx > 0 {
		out.MeanUtilization = busy / ctx
		out.BaselineUtilization = base / ctx
		out.IsolationTax = tax / ctx
	}
	if out.Placed > 0 {
		out.ViolationFrac = float64(out.Violations) / float64(out.Placed)
	}
	out.Log = make([]Placement, 0, logLen)
	for _, r := range rs {
		out.Log = append(out.Log, r.log...)
	}
	// Each shard log is already (At, Seq)-ordered; the global order is the
	// deterministic (At, Shard, Seq) merge.
	sort.Slice(out.Log, func(i, j int) bool {
		a, b := out.Log[i], out.Log[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return out
}

// simMachine is one server's live state inside a shard.
type simMachine struct {
	lat   int16
	batch int16 // −1 when no batch app is resident
	n     int16
	gen   int16 // machine generation index (0 for homogeneous fleets)
	level int16 // engaged isolation level (0 = off; resets when n hits 0)
	up    bool
	jobs  []int64 // live departure-event handles
}

// shardSim is the per-cell simulation state.
type shardSim struct {
	cfg   *SimConfig
	w     *simWorld   // shared read-only surfaces (tables, gates, drift)
	t     *PredTable  // w.tables[0]: bucket geometry (shapes are shared)
	dw    *driftWorld // non-nil when cfg.Drift is set; read-only
	cl    *closedLoop // non-nil for PolicyClosedLoop; shard-local
	shard int

	machines []simMachine
	upIDs    []int32 // sorted local ids of up machines
	buckets  []*iheap
	events   *iheap          // pending departures, keyed (time, handle)
	owner    map[int64]int32 // departure handle -> local machine id
	handle   int64
	rng      *xrand.Rand // Random-policy draws only

	nLat, nBatch, maxInst int
	nGens, nLevels        int

	// tables and gates alias simWorld for brevity in the hot loop; levels
	// is the isolation ladder (nil unless PolicyIsolation). qfAdmit and
	// qfSlack are the per-generation QoS-floor admission surfaces the
	// SMiTe/Oracle policies scan (q ≥ target, headroom q − target).
	tables  []*PredTable
	gates   [][]*sloGate
	levels  []isol.Setting
	qfAdmit [][]bool
	qfSlack [][]float64

	// Utilisation integrals. taxNow is exactly 0.0 whenever the isolation
	// ladder is off, so the integral never perturbs pre-isolation results.
	busyNow, ctxNow, baseNow int
	taxNow                   float64
	lastT                    float64
	res                      shardResult
}

// bucketIdx flattens machine state (generation, isolation level, lat,
// resident batch or −1, n) to its occupancy bucket. batchState 0 is
// "empty"; 1+b is "running batch b". Homogeneous, non-isolated fleets
// collapse to (gen, level) = (0, 0), reproducing the historical index.
func (s *shardSim) bucketIdx(gen, level, lat, batchState, n int) int {
	return (((gen*s.nLevels+level)*s.nLat+lat)*(s.nBatch+1)+batchState)*(s.maxInst+1) + n
}

func (s *shardSim) stateOf(m *simMachine) int {
	if m.batch < 0 {
		return s.bucketIdx(int(m.gen), int(m.level), int(m.lat), 0, 0)
	}
	return s.bucketIdx(int(m.gen), int(m.level), int(m.lat), 1+int(m.batch), int(m.n))
}

// genOf maps a global machine id to its generation: the id's slot in the
// repeating ΣCounts-long generation pattern, so membership is stable
// across churn and identical in every shard layout.
func (s *shardSim) genOf(global int64) int {
	cum := s.w.genCum
	if len(cum) == 0 {
		return 0
	}
	idx := int(global % int64(cum[len(cum)-1]))
	for g, c := range cum {
		if idx < c {
			return g
		}
	}
	return len(cum) - 1
}

// globalID reconstructs the fleet-wide machine id from a local one.
func (s *shardSim) globalID(local int32) int64 {
	return int64(s.shard) + int64(local)*int64(s.cfg.Shards)
}

// account integrates utilisation up to now.
func (s *shardSim) account(now float64) {
	dt := now - s.lastT
	if dt > 0 && s.ctxNow > 0 {
		s.res.busyInt += float64(s.busyNow) * dt
		s.res.ctxInt += float64(s.ctxNow) * dt
		s.res.baseInt += float64(s.baseNow) * dt
		s.res.taxInt += s.taxNow * dt
		if u := float64(s.busyNow) / float64(s.ctxNow); u > s.res.peak {
			s.res.peak = u
		}
	}
	s.lastT = now
}

// addMachine brings a machine up running latency app lat.
func (s *shardSim) addMachine(lat int) int32 {
	local := int32(len(s.machines))
	gen := s.genOf(s.globalID(local))
	s.machines = append(s.machines, simMachine{lat: int16(lat), batch: -1, gen: int16(gen)})
	m := &s.machines[local]
	m.up = true
	s.upIDs = append(s.upIDs, local) // ids are monotone, so append keeps order
	s.buckets[s.stateOf(m)].Push(0, 0, int64(local))
	s.busyNow += s.w.geoms[gen].threads
	s.baseNow += s.w.geoms[gen].threads
	s.ctxNow += s.w.geoms[gen].contexts
	return local
}

// dropMachine decommissions the up machine with the given rank, cancelling
// its pending departures via the indexed heap.
func (s *shardSim) dropMachine(rank float64) {
	if len(s.upIDs) == 0 {
		return
	}
	i := int(rank * float64(len(s.upIDs)))
	if i >= len(s.upIDs) {
		i = len(s.upIDs) - 1
	}
	local := s.upIDs[i]
	s.upIDs = append(s.upIDs[:i], s.upIDs[i+1:]...)
	m := &s.machines[local]
	s.buckets[s.stateOf(m)].Remove(int64(local))
	for _, h := range m.jobs {
		s.events.Remove(h)
		delete(s.owner, h)
		s.res.evicted++
	}
	geom := s.w.geoms[m.gen]
	s.busyNow -= geom.threads + int(m.n)
	s.baseNow -= geom.threads
	s.ctxNow -= geom.contexts
	s.taxNow -= s.taxOf(m)
	m.up = false
	m.jobs = m.jobs[:0]
	m.batch, m.n, m.level = -1, 0, 0
	s.res.downs++
}

// place puts one instance of batch b on local machine id, scheduling its
// departure.
func (s *shardSim) place(local int32, b int, at, duration float64) {
	m := &s.machines[local]
	s.buckets[s.stateOf(m)].Remove(int64(local))
	oldTax := s.taxOf(m)
	m.batch = int16(b)
	m.n++
	h := s.handle
	s.handle++
	s.events.Push(at+duration, uint64(h), h)
	s.owner[h] = local
	m.jobs = append(m.jobs, h)
	s.busyNow++
	s.res.placed++
	// Violation accounting: against the class tail-latency budget when
	// SLO parameters are set (for every policy, so greedy-vs-SLO studies
	// count violations identically), against the QoS floor otherwise —
	// reading the post-drift measured surface once the drift has landed,
	// again for every policy. PolicyIsolation interposes its enforcement
	// ladder: escalate the machine's operating point first, and only count
	// (and migrate) the violations no level can absorb.
	t := s.tables[m.gen]
	cell := t.Cell(int(m.lat), b, int(m.n))
	drifted := s.dw != nil && at >= s.dw.at
	unresolved := false
	switch {
	case s.nLevels > 1:
		unresolved = s.enforceIsolation(m, cell)
	case s.gates != nil:
		violate := s.gates[m.gen][0].violate
		if drifted {
			violate = s.dw.violate
		}
		if violate[cell] {
			s.res.violations++
		}
	default:
		qos := t.ActualQoS[cell]
		if drifted {
			qos = s.dw.actualQoS[cell]
		}
		if qos < s.cfg.Target {
			s.res.violations++
		}
	}
	s.buckets[s.stateOf(m)].Push(0, 0, int64(local))
	s.taxNow += s.taxOf(m) - oldTax
	s.res.log = append(s.res.log, Placement{
		At: at, Shard: int32(s.shard), Seq: uint32(len(s.res.log)),
		Machine: s.globalID(local), Lat: m.lat, Batch: int16(b), N: m.n,
	})
	if s.cl != nil {
		s.observeClosedLoop(int(m.lat), b, cell, at)
	}
	if unresolved {
		s.migrateNewest(local, b, at)
	}
}

// depart completes the job behind a popped departure event.
func (s *shardSim) depart(h int64) {
	local := s.owner[h]
	delete(s.owner, h)
	m := &s.machines[local]
	for i, jh := range m.jobs {
		if jh == h {
			m.jobs = append(m.jobs[:i], m.jobs[i+1:]...)
			break
		}
	}
	s.buckets[s.stateOf(m)].Remove(int64(local))
	oldTax := s.taxOf(m)
	m.n--
	if m.n == 0 {
		// Draining the last instance also disengages isolation: an empty
		// machine returns to the unpartitioned, unthrottled pool.
		m.batch = -1
		m.level = 0
	}
	s.buckets[s.stateOf(m)].Push(0, 0, int64(local))
	s.taxNow += s.taxOf(m) - oldTax
	s.busyNow--
	s.res.departed++
}

// admission returns the per-cell admissible/slack surfaces the scan reads
// for (generation, isolation level) candidates. QoS-floor policies pack by
// QoS headroom above the target; SLO-family policies by predicted
// tail-latency slack under the effective budget; the closed loop reads its
// shard-local re-scored working copy.
func (s *shardSim) admission(gen, level int) (admit []bool, slack []float64) {
	switch {
	case s.cfg.Policy == PolicyClosedLoop:
		return s.cl.admit, s.cl.slack
	case s.cfg.Policy == PolicySLO || s.cfg.Policy == PolicyIsolation:
		g := s.gates[gen][level]
		return g.admit, g.slack
	default:
		return s.qfAdmit[gen], s.qfSlack[gen]
	}
}

// admit picks the machine for one instance of batch b, or −1 to reject.
// All non-Random policies scan the occupancy buckets — O(generations ×
// levels × lats × instances) bucket peeks, never a fleet scan — scoring
// admissible candidates with the configured allocation policy (bestfit by
// default: tightest headroom wins) under deterministic tie-breaks (first
// admissible state in bucket-scan order, then lowest machine id). Random
// probes the up-machine ring for spare capacity, ignoring QoS.
func (s *shardSim) admit(b int) int32 {
	if s.cfg.Policy == PolicyRandom {
		if len(s.upIDs) == 0 {
			return -1
		}
		start := s.rng.Intn(len(s.upIDs))
		for k := 0; k < len(s.upIDs); k++ {
			local := s.upIDs[(start+k)%len(s.upIDs)]
			m := &s.machines[local]
			if (m.batch < 0 || int(m.batch) == b) && int(m.n) < s.maxInst {
				return local
			}
		}
		return -1
	}
	alloc := s.w.alloc
	bestState := -1
	bestScore := math.Inf(1)
	for gen := 0; gen < s.nGens; gen++ {
		t := s.tables[gen]
		for level := 0; level < s.nLevels; level++ {
			admit, slack := s.admission(gen, level)
			for lat := 0; lat < s.nLat; lat++ {
				// Empty machines take the first instance (they are always at
				// level 0 — isolation disengages when a machine drains);
				// occupied ones stack more of the same batch kind up to
				// MaxInstances.
				if level == 0 {
					if state := s.bucketIdx(gen, 0, lat, 0, 0); s.buckets[state].Len() > 0 {
						if cell := t.Cell(lat, b, 1); admit[cell] {
							sc := slack[cell]
							if alloc != nil {
								sc = alloc(slack[cell], 1, predDegOf(t, cell))
							}
							if sc < bestScore {
								bestScore = sc
								bestState = state
							}
						}
					}
				}
				for n := 1; n < s.maxInst; n++ {
					state := s.bucketIdx(gen, level, lat, 1+b, n)
					if s.buckets[state].Len() == 0 {
						continue
					}
					if cell := t.Cell(lat, b, n+1); admit[cell] {
						sc := slack[cell]
						if alloc != nil {
							sc = alloc(slack[cell], n+1, predDegOf(t, cell))
						}
						if sc < bestScore {
							bestScore = sc
							bestState = state
						}
					}
				}
			}
		}
	}
	if bestState < 0 {
		return -1
	}
	return int32(s.buckets[bestState].Min().handle)
}

// ctxCheckInterval bounds how stale a cancellation can go unnoticed in
// the per-shard event loop.
const ctxCheckInterval = 1 << 16

func runShard(ctx context.Context, cfg *SimConfig, w *simWorld, shard int, exo []clworkload.Event) (shardResult, error) {
	nLat, nBatch := cfg.Workload.Lats, cfg.Workload.Batches
	s := &shardSim{
		cfg: cfg, w: w, t: w.tables[0], dw: w.dw, shard: shard,
		nLat: nLat, nBatch: nBatch, maxInst: w.tables[0].MaxInstances,
		nGens: len(w.tables), nLevels: 1,
		tables: w.tables, gates: w.gates, levels: w.levels,
		events: newIheap(),
		owner:  make(map[int64]int32),
		rng:    xrand.New(cfg.Workload.Seed ^ 0x51A1 ^ (uint64(shard)+1)*0xBF58476D1CE4E5B9),
	}
	if len(w.levels) > 0 {
		s.nLevels = len(w.levels)
	}
	if cfg.Policy == PolicyClosedLoop {
		s.cl = newClosedLoop(cfg.Table, w.gates[0][0], cfg.SLO)
	}
	if cfg.Policy != PolicySLO && cfg.Policy != PolicyClosedLoop && cfg.Policy != PolicyIsolation && cfg.Policy != PolicyRandom {
		// Precompute the QoS-floor admission surfaces once per generation;
		// admit() then stays pure array lookups.
		s.qfAdmit = make([][]bool, s.nGens)
		s.qfSlack = make([][]float64, s.nGens)
		for gi, t := range s.tables {
			qos := t.PredQoS
			if cfg.Policy == PolicyOracle {
				qos = t.ActualQoS
			}
			ad := make([]bool, len(qos))
			sl := make([]float64, len(qos))
			for i, q := range qos {
				ad[i] = q >= cfg.Target
				sl[i] = q - cfg.Target
			}
			s.qfAdmit[gi], s.qfSlack[gi] = ad, sl
		}
	}
	s.buckets = make([]*iheap, s.nGens*s.nLevels*nLat*(nBatch+1)*(s.maxInst+1))
	for i := range s.buckets {
		s.buckets[i] = newIheap()
	}

	// Initial fleet: machines are dealt to shards round-robin, and their
	// latency apps round-robin over the population, so shard membership is
	// a pure function of the global machine id.
	for g := shard; g < cfg.Workload.Machines; g += cfg.Shards {
		s.addMachine(g % nLat)
	}
	s.res.machinesStart = len(s.upIDs)

	horizon := cfg.Workload.Horizon
	for ci := 0; ; {
		// Two-way deterministic merge: pending departures fire before
		// exogenous events at the same instant (capacity frees first).
		var at float64
		useDeparture := false
		switch {
		case s.events.Len() > 0 && ci < len(exo):
			at = exo[ci].At
			if d := s.events.Min().at; d <= at {
				at, useDeparture = d, true
			}
		case s.events.Len() > 0:
			at, useDeparture = s.events.Min().at, true
		case ci < len(exo):
			at = exo[ci].At
		default:
			at = horizon
		}
		if at >= horizon {
			break
		}
		if s.res.events%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return shardResult{}, err
			}
		}
		s.account(at)
		s.res.events++
		if useDeparture {
			s.depart(s.events.Pop().handle)
			continue
		}
		ev := exo[ci]
		ci++
		switch ev.Kind {
		case clworkload.KindMachineUp:
			s.addMachine(ev.Lat)
			s.res.ups++
		case clworkload.KindMachineDown:
			s.dropMachine(ev.Rank)
		case clworkload.KindJobArrive:
			s.res.arrived++
			if local := s.admit(ev.Batch); local >= 0 {
				s.place(local, ev.Batch, ev.At, ev.Duration)
			} else {
				s.res.rejected++
				s.res.log = append(s.res.log, Placement{
					At: ev.At, Shard: int32(s.shard), Seq: uint32(len(s.res.log)),
					Machine: -1, Lat: -1, Batch: int16(ev.Batch),
				})
			}
		default:
			return shardResult{}, fmt.Errorf("unknown event kind %d at seq %d", ev.Kind, ev.Seq)
		}
	}
	s.account(horizon)
	s.res.machinesEnd = len(s.upIDs)
	return s.res, nil
}
