package engine

import (
	"testing"

	"repro/internal/sim/isa"
)

// TestDependencyChainSerializes: a chain of FP multiplies, each depending
// on its predecessor, must run at one op per FPMul latency.
func TestDependencyChainSerializes(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		u.Kind = isa.FPMul
		u.Dep1 = 1 // strict chain
	}))
	chip.Run(20000)
	ipc := chip.Counters(0, 0).IPC()
	want := 1 / float64(cfg.Latency[isa.FPMul])
	if ipc > want*1.1 || ipc < want*0.85 {
		t.Errorf("chained FP_MUL IPC = %.3f, want ~%.3f (1/latency)", ipc, want)
	}
}

// TestIndependentOpsPipeline: without dependencies the same stream runs at
// port throughput (1/cycle), latency fully hidden.
func TestIndependentOpsPipeline(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) { u.Kind = isa.FPMul }))
	chip.Run(20000)
	ipc := chip.Counters(0, 0).IPC()
	if ipc < 0.99 {
		t.Errorf("independent FP_MUL IPC = %.3f, want ~1 (port-bound)", ipc)
	}
}

// TestDepDistanceExposesILP: dependency distance d allows d chains to
// overlap, so throughput scales with d up to the port bound.
func TestDepDistanceExposesILP(t *testing.T) {
	cfg := testConfig()
	run := func(dist uint16) float64 {
		chip := MustNew(cfg)
		chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
			u.Kind = isa.FPMul
			u.Dep1 = dist
		}))
		chip.Run(20000)
		return chip.Counters(0, 0).IPC()
	}
	lat := float64(cfg.Latency[isa.FPMul])
	for _, dist := range []uint16{1, 2, 4} {
		got := run(dist)
		want := float64(dist) / lat
		if want > 1 {
			want = 1
		}
		if got > want*1.15 || got < want*0.8 {
			t.Errorf("dep distance %d: IPC %.3f, want ~%.3f", dist, got, want)
		}
	}
}

// TestSecondDependencyBinds: a uop waits for the later of its two inputs.
func TestSecondDependencyBinds(t *testing.T) {
	cfg := testConfig()
	// Pattern: [mul(chain, d=2), add(dep on previous mul d=1 AND mul d=2)].
	// The adds are bound by the mul chain's latency.
	i := 0
	chip := MustNew(cfg)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		if i%2 == 0 {
			u.Kind = isa.FPMul
			u.Dep1 = 2
		} else {
			u.Kind = isa.FPAdd
			u.Dep1 = 1
			u.Dep2 = 2
		}
		i++
	}))
	chip.Run(20000)
	ipc := chip.Counters(0, 0).IPC()
	// Each mul takes 5 cycles on its own chain; one add retires with each
	// mul → IPC ≈ 2/5.
	if ipc > 0.5 || ipc < 0.3 {
		t.Errorf("two-input dependency IPC = %.3f, want ~0.4", ipc)
	}
}

// TestLoadToUseLatency: a strict load chain over an L1-resident line runs
// at one load per L1 latency.
func TestLoadToUseLatency(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		u.Kind = isa.Load
		u.Addr = 0 // same line: L1-resident after the first access
		u.Dep1 = 1 // pointer chase
	}))
	chip.Run(20000)
	ipc := chip.Counters(0, 0).IPC()
	want := 1 / float64(cfg.L1D.LatencyCycles)
	if ipc > want*1.15 || ipc < want*0.8 {
		t.Errorf("L1 pointer-chase IPC = %.3f, want ~%.3f", ipc, want)
	}
}

// TestTwoLoadPorts: independent L1-resident loads sustain two per cycle.
func TestTwoLoadPorts(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		u.Kind = isa.Load
		u.Addr = 0
	}))
	chip.Run(20000)
	c := chip.Counters(0, 0)
	if c.IPC() < 1.9 {
		t.Errorf("independent load IPC = %.3f, want ~2 (two load ports)", c.IPC())
	}
	if c.PortUops[2] == 0 || c.PortUops[3] == 0 {
		t.Error("loads did not spread over both load ports")
	}
}

// TestRetireIsInOrder: a long-latency head uop holds back younger
// already-complete uops, bounding retired count.
func TestRetireIsInOrder(t *testing.T) {
	cfg := testConfig()
	cfg.StreamPrefetcher = false
	chip := MustNew(cfg)
	i := 0
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		if i%128 == 0 {
			u.Kind = isa.Load
			u.Addr = uint64(i) * 1 << 20 // distinct pages: DRAM misses
		} else {
			u.Kind = isa.IntAdd
		}
		i++
	}))
	chip.Run(10000)
	c := chip.Counters(0, 0)
	// Each miss (~190+ cycles) stalls retirement with a 128-entry ROB:
	// throughput ≈ ROB/latency ≈ 0.67/cycle, far below the ALU bound of 3.
	if c.IPC() > 1.2 {
		t.Errorf("IPC %.3f too high: in-order retirement not enforced", c.IPC())
	}
}

// TestBranchSaltSeparatesContexts: identical branch tags from different
// contexts must not train each other's predictor entries into agreement
// when their outcomes conflict.
func TestBranchSaltSeparatesContexts(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	mk := func(taken bool) Stream {
		return streamFunc(func(u *isa.Uop) {
			u.Kind = isa.Branch
			u.BrTag = 7
			u.Taken = taken
		})
	}
	chip.Assign(0, 0, mk(true))
	chip.Assign(0, 1, mk(false))
	chip.Run(20000)
	a, b := chip.Counters(0, 0), chip.Counters(0, 1)
	missA := float64(a.BranchMispredicts) / float64(a.Branches)
	missB := float64(b.BranchMispredicts) / float64(b.Branches)
	if missA > 0.05 || missB > 0.05 {
		t.Errorf("context-salted monomorphic branches should predict well: %.3f / %.3f", missA, missB)
	}
}

// TestMispredictPenaltyThroughput: an always-mispredicting branch stream
// is bounded by the flush penalty.
func TestMispredictPenaltyThroughput(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	taken := false
	chip.Assign(0, 0, streamFunc(func(u *isa.Uop) {
		u.Kind = isa.Branch
		u.BrTag = 3
		u.Taken = taken
		taken = !taken // strict alternation: 2-bit counters stay wrong
	}))
	chip.Run(20000)
	c := chip.Counters(0, 0)
	missRate := float64(c.BranchMispredicts) / float64(c.Branches)
	if missRate < 0.4 {
		t.Skipf("alternation learned (%f); pattern-dependent", missRate)
	}
	// Each mispredict stalls the front end ~MispredictPenalty cycles.
	maxIPC := 1.2 / float64(cfg.MispredictPenalty) * 2
	if c.IPC() > maxIPC*2 {
		t.Errorf("mispredict-bound IPC %.3f too high (penalty not applied)", c.IPC())
	}
}
