// Command benchci turns `go test -bench` output into a machine-readable
// JSON summary and gates CI on benchmark regressions against a committed
// baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 . | benchci -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -run '^$' -bench . -benchtime 1x -count 3 . | benchci -out BENCH_baseline.json -write-baseline
//
// When -count repeats a benchmark, the fastest run wins: noise only ever
// adds time, so min-of-N is the robust estimator that keeps the gate from
// flaking on loaded runners.
//
// With -baseline, every benchmark present in the baseline must appear in
// the input and its ns/op must not exceed the baseline by more than
// -threshold percent; violations list to stderr and the exit status is
// non-zero. With -write-baseline the parsed results are simply written to
// -out, refreshing the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Summary is the file format of BENCH_ci.json / BENCH_baseline.json.
type Summary struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchci", flag.ContinueOnError)
	inFlag := fs.String("in", "", "benchmark output file (default: stdin)")
	outFlag := fs.String("out", "", "write parsed JSON summary here")
	baselineFlag := fs.String("baseline", "", "compare against this JSON baseline")
	thresholdFlag := fs.Float64("threshold", 25, "allowed ns/op regression in percent")
	writeBaseline := fs.Bool("write-baseline", false, "only write -out; do not compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *writeBaseline && *baselineFlag != "" {
		return fmt.Errorf("-write-baseline and -baseline are mutually exclusive")
	}
	if *outFlag == "" && *baselineFlag == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: need -out and/or -baseline")
	}

	input := stdin
	if *inFlag != "" {
		f, err := os.Open(*inFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	}
	// Echo the raw benchmark output so piping through benchci keeps the
	// human-readable log visible in CI.
	sum, err := parse(io.TeeReader(input, stdout))
	if err != nil {
		return err
	}
	if len(sum.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	if *outFlag != "" {
		buf, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFlag, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *baselineFlag != "" {
		base, err := readSummary(*baselineFlag)
		if err != nil {
			return err
		}
		if err := compare(stdout, base, sum, *thresholdFlag); err != nil {
			return err
		}
	}
	return nil
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub-case-8   	       3	 123456 ns/op	  12 B/op	   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix is the trailing -N the testing package appends; it is a
// property of the machine, not the benchmark, so names are stored without
// it to keep baselines portable.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (Summary, error) {
	sum := Summary{Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		var res Result
		// The tail alternates "value unit" pairs: 123 ns/op  12 B/op ...
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Summary{}, fmt.Errorf("bad value %q for %s: %v", fields[i], name, err)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		// With -count N the same benchmark appears N times; keep the fastest
		// run. The minimum is the standard robust estimator for gating: noise
		// (scheduling, frequency scaling) only ever adds time.
		if prev, seen := sum.Benchmarks[name]; !seen || res.NsPerOp < prev.NsPerOp {
			sum.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return Summary{}, err
	}
	return sum, nil
}

func readSummary(path string) (Summary, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	var sum Summary
	if err := json.Unmarshal(buf, &sum); err != nil {
		return Summary{}, fmt.Errorf("%s: %v", path, err)
	}
	return sum, nil
}

// compare fails if any baseline benchmark is missing from cur or regressed
// in ns/op beyond thresholdPct. Benchmarks only present in cur are reported
// as new but do not fail (they enter the baseline on its next refresh).
func compare(w io.Writer, base, cur Summary, thresholdPct float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but not in results", name))
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = (c.NsPerOp/b.NsPerOp - 1) * 100
		}
		status := "ok"
		if ratio > thresholdPct {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%% > %.0f%%)", name, c.NsPerOp, b.NsPerOp, ratio, thresholdPct))
		}
		fmt.Fprintf(w, "benchci: %-40s %12.0f ns/op  baseline %12.0f  (%+.1f%%) %s\n", name, c.NsPerOp, b.NsPerOp, ratio, status)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "benchci: %-40s new benchmark (not in baseline)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) failed the gate:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}
