package experiments

import (
	"fmt"
	"strings"
)

// tableWriter renders aligned text tables for experiment output.
type tableWriter struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *tableWriter {
	return &tableWriter{header: header}
}

func (t *tableWriter) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *tableWriter) rowf(format string, args ...any) {
	t.row(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *tableWriter) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// pct renders a fraction as a percentage with two decimals.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// f3 renders a float with three decimals.
func f3(f float64) string { return fmt.Sprintf("%.3f", f) }
