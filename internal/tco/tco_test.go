package tco

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoogle2014Valid(t *testing.T) {
	if err := Google2014().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.ServerCapex = 0 },
		func(p *Params) { p.ServerLifetimeYears = 0 },
		func(p *Params) { p.DatacenterLifetimeYears = 0 },
		func(p *Params) { p.ServerPowerWatts = 0 },
		func(p *Params) { p.PUE = 0.9 },
		func(p *Params) { p.ElectricityPerKWh = -1 },
		func(p *Params) { p.HorizonYears = 0 },
	}
	for i, mutate := range bad {
		p := Google2014()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPerServerPerYearComposition(t *testing.T) {
	p := Google2014()
	got := p.PerServerPerYear()
	// Recompute by hand.
	server := p.ServerCapex / p.ServerLifetimeYears
	dc := p.DatacenterCapexPerWatt * p.ServerPowerWatts * p.PUE / p.DatacenterLifetimeYears
	energy := p.ServerPowerWatts * p.PUE / 1000 * 24 * 365 * p.ElectricityPerKWh
	maint := p.ServerCapex * p.AnnualMaintenanceFrac
	want := server + dc + energy + maint
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PerServerPerYear = %g, want %g", got, want)
	}
	if got <= 0 {
		t.Error("non-positive per-server cost")
	}
}

func TestTotalLinearInServers(t *testing.T) {
	p := Google2014()
	if tot := p.Total(0); tot != 0 {
		t.Errorf("Total(0) = %g", tot)
	}
	if p.Total(-5) != 0 {
		t.Error("negative fleet should cost 0")
	}
	if math.Abs(p.Total(200)-2*p.Total(100)) > 1e-6 {
		t.Error("Total not linear in servers")
	}
}

func TestImprovement(t *testing.T) {
	p := Google2014()
	if imp := p.Improvement(100, 100); imp != 0 {
		t.Errorf("no change should save 0, got %g", imp)
	}
	if imp := p.Improvement(100, 50); math.Abs(imp-0.5) > 1e-9 {
		t.Errorf("halving the fleet should save 50%%, got %g", imp)
	}
	if imp := p.Improvement(0, 10); imp != 0 {
		t.Errorf("zero baseline should save 0, got %g", imp)
	}
}

// Property: fewer servers never cost more.
func TestImprovementMonotone(t *testing.T) {
	p := Google2014()
	if err := quick.Check(func(base uint16, cut uint8) bool {
		b := float64(base) + 1
		n1 := b * (1 - float64(cut)/512)
		n2 := n1 / 2
		return p.Improvement(b, n2) >= p.Improvement(b, n1)
	}, nil); err != nil {
		t.Error(err)
	}
}
