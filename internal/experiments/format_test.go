package experiments

import (
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/rulers"
)

func TestTableWriterAlignment(t *testing.T) {
	tw := newTable("name", "value")
	tw.row("a", "1")
	tw.row("longer-name", "2")
	out := tw.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator misaligned with header")
	}
	if !strings.HasPrefix(lines[3], "longer-name") {
		t.Errorf("row lost: %q", lines[3])
	}
}

func TestTableWriterRowf(t *testing.T) {
	tw := newTable("a", "b")
	tw.rowf("%d\t%s", 7, "x")
	if !strings.Contains(tw.String(), "7  x") {
		t.Errorf("rowf output: %q", tw.String())
	}
}

func TestFormatHelpers(t *testing.T) {
	if pct(0.1234) != "12.34%" {
		t.Errorf("pct = %q", pct(0.1234))
	}
	if f3(1.23456) != "1.235" {
		t.Errorf("f3 = %q", f3(1.23456))
	}
}

func TestTable1String(t *testing.T) {
	l := NewLab(TestScale())
	s := l.Table1().String()
	for _, want := range []string{"Ivy Bridge", "Sandy Bridge-EN", "32 KiB", "MiB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestMemSize(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{512, "512 B"}, {32 << 10, "32 KiB"}, {8 << 20, "8 MiB"},
	}
	for _, c := range cases {
		if got := memSize(c.in); got != c.want {
			t.Errorf("memSize(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// CorrelationFromChars on synthetic data: two perfectly correlated
// dimensions and one anti-correlated must be detected.
func TestCorrelationFromCharsSynthetic(t *testing.T) {
	var chars []profile.Characterization
	for i := 0; i < 10; i++ {
		var c profile.Characterization
		v := float64(i) / 10
		c.App = string(rune('a' + i))
		c.Sen[rulers.DimFPMul] = v
		c.Sen[rulers.DimFPAdd] = v * 2       // perfectly correlated with FPMul
		c.Sen[rulers.DimL3] = 1 - v          // anti-correlated
		c.Sen[rulers.DimL1] = float64(i % 3) // decorrelated
		c.Con[rulers.DimL2] = v * v
		chars = append(chars, c)
	}
	res, err := CorrelationFromChars(chars)
	if err != nil {
		t.Fatal(err)
	}
	get := func(a, b int) float64 { return res.AbsPearson[a][b] }
	if r := get(int(rulers.DimFPMul), int(rulers.DimFPAdd)); r < 0.999 {
		t.Errorf("correlated dims |r| = %g", r)
	}
	if r := get(int(rulers.DimFPMul), int(rulers.DimL3)); r < 0.999 {
		t.Errorf("anti-correlated dims |r| = %g (absolute value expected)", r)
	}
	if get(int(rulers.DimFPMul), int(rulers.DimFPMul)) != 1 {
		t.Error("diagonal not 1")
	}
	if res.FracBelow80 <= 0 || res.FracBelow80 > 1 {
		t.Errorf("FracBelow80 = %g", res.FracBelow80)
	}
	if s := res.String(); !strings.Contains(s, "paper: 97.96%") {
		t.Error("summary string missing the paper reference")
	}
}

func TestSenConResultFindings(t *testing.T) {
	r := SenConResult{
		Title: "t",
		Dims:  []rulers.Dimension{rulers.DimFPAdd},
		Chars: []profile.Characterization{
			{App: "a", Sen: [8]float64{1: 0.01}},
			{App: "b", Sen: [8]float64{1: 0.60}},
		},
	}
	report, ok := r.Findings()
	if !ok {
		t.Errorf("spread of 0.59 should pass variability check: %s", report)
	}
	flat := SenConResult{
		Title: "t",
		Dims:  []rulers.Dimension{rulers.DimFPAdd},
		Chars: []profile.Characterization{
			{App: "a", Sen: [8]float64{1: 0.10}},
			{App: "b", Sen: [8]float64{1: 0.11}},
		},
	}
	if _, ok := flat.Findings(); ok {
		t.Error("flat sensitivities should fail the variability check")
	}
}

func TestScaleHelpers(t *testing.T) {
	l := NewLab(TestScale())
	set := l.specSet(nil)
	if len(set) != 0 {
		t.Error("empty set mishandled")
	}
	if got := len(l.cloudSet()); got != TestScale().MaxCloudApps {
		t.Errorf("cloud set size %d", got)
	}
	if l.cloudThreads() != l.SNB.Cores {
		t.Error("cloud threads should equal SNB cores (half load)")
	}
	if IvyBridge.String() == SandyBridgeEN.String() {
		t.Error("machine names collide")
	}
}
