// Package linalg provides the small dense linear algebra the prediction
// models need: least-squares fitting via ridge-regularised normal equations
// solved by Gaussian elimination with partial pivoting.
//
// The design matrices here are tiny (tens of observations × at most a few
// dozen features), so the numerically straightforward approach is both
// adequate and dependency-free.
package linalg

import (
	"fmt"
	"math"
)

// Solve solves the square linear system A·x = b in place using Gaussian
// elimination with partial pivoting. A and b are not preserved. It returns
// an error if the system is singular to working precision.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %d rows, %d rhs", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linalg: Solve row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("linalg: singular system (pivot %g at column %d)", best, col)
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for c := i + 1; c < n; c++ {
			s -= a[i][c] * x[c]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// LeastSquares fits coefficients β minimising ‖X·β − y‖² + ridge·‖β‖²
// (ridge is applied to all coefficients; pass a small value such as 1e-9
// for numerical stability, larger values for actual regularisation). Rows
// of X are observations. It returns an error on dimension mismatch or a
// singular normal system.
func LeastSquares(x [][]float64, y []float64, ridge float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("linalg: LeastSquares with no observations")
	}
	if len(y) != n {
		return nil, fmt.Errorf("linalg: LeastSquares has %d rows but %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, fmt.Errorf("linalg: LeastSquares with no features")
	}
	for i := range x {
		if len(x[i]) != p {
			return nil, fmt.Errorf("linalg: LeastSquares row %d has %d features, want %d", i, len(x[i]), p)
		}
	}
	if ridge < 0 {
		return nil, fmt.Errorf("linalg: negative ridge %g", ridge)
	}
	// Normal equations: (XᵀX + λI)·β = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r := 0; r < n; r++ {
		row := x[r]
		for i := 0; i < p; i++ {
			xi := row[i]
			if xi == 0 {
				continue
			}
			for j := i; j < p; j++ {
				xtx[i][j] += xi * row[j]
			}
			xty[i] += xi * y[r]
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge
	}
	return Solve(xtx, xty)
}

// Dot returns the inner product of two equal-length vectors; it panics on
// length mismatch (programming error, not data error).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
