// Package model implements the performance-interference prediction models:
//
//   - Smite: the paper's regression model (Equation 3), combining the
//     victim's per-dimension sensitivity with the aggressor's
//     contentiousness: Deg^A = Σ_i c_i·Sen_i^A·Con_i^B + c0.
//   - PMULinear: the strongest PMU-based baseline the paper could construct
//     (Equation 9), a linear regression over 11 solo hardware-counter rates
//     of both applications.
//   - PMUPoly: the higher-order-polynomial PMU variant the paper mentions
//     trying during its baseline search.
//   - CART: the decision-tree variant from the same search.
//
// All models train on PairObs observations built from Ruler
// characterizations plus ground-truth co-location measurements.
package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/pmu"
)

// PairObs is one training/testing observation: application A (the victim)
// co-located with application B (the aggressor), with A's measured
// degradation as the target.
type PairObs struct {
	A, B string
	// SenA is A's sensitivity vector; ConB is B's contentiousness vector.
	SenA, ConB [rulers.NumDimensions]float64
	// PMUA and PMUB are the solo hardware-counter rates of each side.
	PMUA, PMUB [pmu.NumPMUFeatures]float64
	// Deg is A's measured degradation (Equation 7).
	Deg float64
}

// BuildObservations turns pair measurements into observations, two per
// measurement (one per victim), using the characterizations for the feature
// vectors. Pairs whose applications lack a characterization are an error.
func BuildObservations(chars []profile.Characterization, pairs []profile.PairMeasurement) ([]PairObs, error) {
	byName := make(map[string]profile.Characterization, len(chars))
	for _, c := range chars {
		byName[c.App] = c
	}
	var out []PairObs
	for _, p := range pairs {
		ca, ok := byName[p.A]
		if !ok {
			return nil, fmt.Errorf("model: no characterization for %q", p.A)
		}
		cb, ok := byName[p.B]
		if !ok {
			return nil, fmt.Errorf("model: no characterization for %q", p.B)
		}
		out = append(out,
			PairObs{A: p.A, B: p.B, SenA: ca.Sen, ConB: cb.Con, PMUA: ca.SoloPMU.Features(), PMUB: cb.SoloPMU.Features(), Deg: p.DegA},
			PairObs{A: p.B, B: p.A, SenA: cb.Sen, ConB: ca.Con, PMUA: cb.SoloPMU.Features(), PMUB: ca.SoloPMU.Features(), Deg: p.DegB},
		)
	}
	return out, nil
}

// Predictor predicts a victim's degradation from one observation's
// features (ignoring its Deg field).
type Predictor interface {
	Predict(obs PairObs) float64
	Name() string
}

// Smite is the paper's Equation 3 model.
type Smite struct {
	// Coef[i] weighs dimension i's Sen×Con product; Intercept is c0, the
	// paper's constant absorbing un-modelled resources.
	Coef      [rulers.NumDimensions]float64
	Intercept float64
}

// Name implements Predictor.
func (m Smite) Name() string { return "SMiTe" }

// nd is the feature dimensionality of the SMiTe model.
const nd = int(rulers.NumDimensions)

// Predict implements Predictor: Σ_i c_i·Sen_i^A·Con_i^B + c0.
func (m Smite) Predict(obs PairObs) float64 {
	s := m.Intercept
	for i := 0; i < nd; i++ {
		s += m.Coef[i] * obs.SenA[i] * obs.ConB[i]
	}
	return s
}

// PredictPartial predicts a partial-occupancy co-location: only instances
// of the victim's threads sibling contexts carry an aggressor instance.
// The caller supplies the victim's partial-occupancy sensitivity Sen(n)
// as obs.SenA (measured with n Ruler instances), so the n-dependence of
// on-core and shared pressure is already in the features; only the
// intercept c0 — which absorbs per-pair residual interference and must
// vanish at n = 0 — is scaled by the occupied fraction. This is the
// single source of the formula the CloudSuite/scale-out studies and the
// qosd serving daemon both evaluate, which is what keeps their decisions
// bit-identical.
func (m Smite) PredictPartial(obs PairObs, instances, threads int) float64 {
	if threads <= 0 {
		return m.Predict(obs)
	}
	scale := float64(instances) / float64(threads)
	if scale > 1 {
		scale = 1
	}
	if scale < 0 {
		scale = 0
	}
	return m.Predict(obs) - (1-scale)*m.Intercept
}

// TrainSmite fits the Equation 3 coefficients by least squares over the
// training observations.
func TrainSmite(obs []PairObs) (Smite, error) {
	if len(obs) < nd+1 {
		return Smite{}, fmt.Errorf("model: %d observations cannot fit %d+1 SMiTe coefficients", len(obs), nd)
	}
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for r, o := range obs {
		row := make([]float64, nd+1)
		for i := 0; i < nd; i++ {
			row[i] = o.SenA[i] * o.ConB[i]
		}
		row[nd] = 1
		x[r] = row
		y[r] = o.Deg
	}
	beta, err := linalg.LeastSquares(x, y, 1e-9)
	if err != nil {
		return Smite{}, fmt.Errorf("model: SMiTe fit: %w", err)
	}
	var m Smite
	copy(m.Coef[:], beta[:nd])
	m.Intercept = beta[nd]
	return m, nil
}

// TrainSmiteNNLS fits the Equation 3 coefficients with the dimension
// weights constrained non-negative (the intercept stays free). More
// contention in a dimension cannot reduce a victim's degradation, so the
// constraint removes the sign instability that collinear functional-unit
// features otherwise cause, at a small cost in training-set fit and a
// large gain in out-of-sample stability. Solved by cyclic coordinate
// descent with clamping, which converges for least squares.
func TrainSmiteNNLS(obs []PairObs) (Smite, error) {
	if len(obs) < nd+1 {
		return Smite{}, fmt.Errorf("model: %d observations cannot fit %d+1 SMiTe coefficients", len(obs), nd)
	}
	n := len(obs)
	p := nd + 1
	x := make([][]float64, n)
	y := make([]float64, n)
	for r, o := range obs {
		row := make([]float64, p)
		for i := 0; i < nd; i++ {
			row[i] = o.SenA[i] * o.ConB[i]
		}
		row[nd] = 1
		x[r] = row
		y[r] = o.Deg
	}
	beta := make([]float64, p)
	resid := append([]float64(nil), y...) // r = y - X·β, β = 0
	colSq := make([]float64, p)
	for j := 0; j < p; j++ {
		for r := 0; r < n; r++ {
			colSq[j] += x[r][j] * x[r][j]
		}
	}
	for iter := 0; iter < 500; iter++ {
		maxMove := 0.0
		for j := 0; j < p; j++ {
			if colSq[j] == 0 {
				continue
			}
			g := 0.0
			for r := 0; r < n; r++ {
				g += x[r][j] * resid[r]
			}
			nb := beta[j] + g/colSq[j]
			if j < nd && nb < 0 {
				nb = 0
			}
			d := nb - beta[j]
			if d != 0 {
				for r := 0; r < n; r++ {
					resid[r] -= d * x[r][j]
				}
				beta[j] = nb
			}
			if ad := math.Abs(d); ad > maxMove {
				maxMove = ad
			}
		}
		if maxMove < 1e-10 {
			break
		}
	}
	var m Smite
	copy(m.Coef[:], beta[:nd])
	m.Intercept = beta[nd]
	return m, nil
}

// PMULinear is the Equation 9 baseline: a linear regression over the 11
// solo PMU rates of the victim and of the aggressor.
type PMULinear struct {
	CoefA, CoefB [pmu.NumPMUFeatures]float64
	Intercept    float64
}

// Name implements Predictor.
func (m PMULinear) Name() string { return "PMU-linear" }

// Predict implements Predictor.
func (m PMULinear) Predict(obs PairObs) float64 {
	s := m.Intercept
	for i := 0; i < pmu.NumPMUFeatures; i++ {
		s += m.CoefA[i]*obs.PMUA[i] + m.CoefB[i]*obs.PMUB[i]
	}
	return s
}

// TrainPMULinear fits the Equation 9 baseline. A small ridge keeps the
// normal equations well conditioned (several counter rates are nearly
// collinear).
func TrainPMULinear(obs []PairObs) (PMULinear, error) {
	p := pmu.NumPMUFeatures
	if len(obs) < 2*p+1 {
		return PMULinear{}, fmt.Errorf("model: %d observations cannot fit %d PMU coefficients", len(obs), 2*p+1)
	}
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for r, o := range obs {
		row := make([]float64, 2*p+1)
		copy(row[:p], o.PMUA[:])
		copy(row[p:2*p], o.PMUB[:])
		row[2*p] = 1
		x[r] = row
		y[r] = o.Deg
	}
	beta, err := linalg.LeastSquares(x, y, 1e-6)
	if err != nil {
		return PMULinear{}, fmt.Errorf("model: PMU fit: %w", err)
	}
	var m PMULinear
	copy(m.CoefA[:], beta[:p])
	copy(m.CoefB[:], beta[p:2*p])
	m.Intercept = beta[2*p]
	return m, nil
}

// PMUPoly is the higher-order polynomial PMU baseline: linear terms plus
// squared terms for both sides.
type PMUPoly struct {
	beta []float64 // 4*p linear+quadratic terms then intercept
}

// Name implements Predictor.
func (m PMUPoly) Name() string { return "PMU-poly2" }

func polyRow(o PairObs) []float64 {
	p := pmu.NumPMUFeatures
	row := make([]float64, 4*p+1)
	for i := 0; i < p; i++ {
		row[i] = o.PMUA[i]
		row[p+i] = o.PMUB[i]
		row[2*p+i] = o.PMUA[i] * o.PMUA[i]
		row[3*p+i] = o.PMUB[i] * o.PMUB[i]
	}
	row[4*p] = 1
	return row
}

// Predict implements Predictor.
func (m PMUPoly) Predict(obs PairObs) float64 {
	return linalg.Dot(m.beta, polyRow(obs))
}

// TrainPMUPoly fits the quadratic PMU baseline with ridge regularisation.
func TrainPMUPoly(obs []PairObs) (PMUPoly, error) {
	p := pmu.NumPMUFeatures
	if len(obs) < 4*p+1 {
		return PMUPoly{}, fmt.Errorf("model: %d observations cannot fit %d polynomial coefficients", len(obs), 4*p+1)
	}
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for r, o := range obs {
		x[r] = polyRow(o)
		y[r] = o.Deg
	}
	beta, err := linalg.LeastSquares(x, y, 1e-4)
	if err != nil {
		return PMUPoly{}, fmt.Errorf("model: PMU poly fit: %w", err)
	}
	return PMUPoly{beta: beta}, nil
}

// Evaluation summarises a model's accuracy on a set of observations, in the
// paper's metric: mean absolute error between predicted and measured
// degradation (Equation 8), overall and per victim application.
type Evaluation struct {
	Model string
	// MeanAbsError is over all observations; PerApp groups by victim.
	MeanAbsError float64
	PerApp       map[string]float64
	// Errors are the individual absolute errors, observation-ordered.
	Errors []float64
}

// Evaluate applies the predictor to each observation and reports the
// Equation 8 absolute errors.
func Evaluate(m Predictor, obs []PairObs) Evaluation {
	ev := Evaluation{Model: m.Name(), PerApp: make(map[string]float64)}
	counts := make(map[string]int)
	for _, o := range obs {
		err := math.Abs(m.Predict(o) - o.Deg)
		ev.Errors = append(ev.Errors, err)
		ev.MeanAbsError += err
		ev.PerApp[o.A] += err
		counts[o.A]++
	}
	if len(obs) > 0 {
		ev.MeanAbsError /= float64(len(obs))
	}
	for app, sum := range ev.PerApp {
		ev.PerApp[app] = sum / float64(counts[app])
	}
	return ev
}

// Apps returns the victims in an evaluation, sorted by name.
func (e Evaluation) Apps() []string {
	out := make([]string, 0, len(e.PerApp))
	for a := range e.PerApp {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
