// Package qosd is the QoS-prediction serving layer: it packages the
// trained SMiTe model and a registry of application profiles behind an
// HTTP/JSON API, turning the repository's offline pipeline into the
// online placement oracle of the paper's deployment story (Section
// III-D) — a cluster scheduler characterizes each application once,
// keeps the profile, and consults the model at every placement decision.
//
// The package provides three pieces: a concurrent Registry of profiles
// and the model, a Server exposing the decision endpoints with
// production plumbing (bounded concurrency, per-request timeouts,
// structured logging, typed JSON errors, metrics), and a Client used by
// cmd/clustersim to replay the scale-out study through a live daemon.
// cmd/smited is the standalone daemon built on this package.
package qosd

import (
	"fmt"

	"repro/internal/isol"
	"repro/smite"
)

// API error codes. Every non-2xx response carries an envelope
// {"error": {"code": ..., "message": ...}} with one of these codes.
const (
	// CodeBadJSON: the request body is not valid JSON for the endpoint's
	// shape (HTTP 400).
	CodeBadJSON = "bad_json"
	// CodeInvalidArgument: a field value is out of range or inconsistent
	// (HTTP 400).
	CodeInvalidArgument = "invalid_argument"
	// CodeUnknownProfile: the named victim or aggressor has no registered
	// profile (HTTP 404).
	CodeUnknownProfile = "unknown_profile"
	// CodeNoModel: the registry has no trained model yet (HTTP 503).
	CodeNoModel = "no_model"
	// CodeUnprocessable: a profile upload failed smite's load validation —
	// corrupt JSON, version skew, or dimension-layout mismatch (HTTP 422).
	CodeUnprocessable = "unprocessable_profiles"
	// CodeOverloaded: the bounded-concurrency gate timed out before a
	// slot freed up (HTTP 429).
	CodeOverloaded = "overloaded"
	// CodeNotFound / CodeMethodNotAllowed: routing misses (HTTP 404/405).
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeDeadlineExceeded: the request's deadline fired (or the client
	// disconnected) while simulation or prediction work was in flight; the
	// work was cancelled, not left running (HTTP 504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeSimulationDisabled: the endpoint needs an in-process simulation
	// System and the daemon was started without one (HTTP 501).
	CodeSimulationDisabled = "simulation_disabled"
	// CodeSLODisabled: POST /v1/admit needs the SLO admission gate and
	// the daemon was started without one (run smited with -slo-config)
	// (HTTP 501).
	CodeSLODisabled = "slo_disabled"
	// CodeUnknownClass: the admission request names an SLO class the
	// daemon was not configured with (HTTP 404).
	CodeUnknownClass = "unknown_class"
)

// APIError is the typed error the server returns and the client decodes.
type APIError struct {
	// Status is the HTTP status (not serialized; the transport carries it).
	Status int `json:"-"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("qosd: %s (%d): %s", e.Code, e.Status, e.Message)
}

// errorEnvelope is the wire shape of an error response.
type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// PredictRequest asks for the victim's predicted degradation when
// co-located with the aggressor (Equation 3). With Instances and Threads
// set, the prediction is the partial-occupancy form: the victim profile
// should then be a Sen(n) profile and only n of the victim's threads
// sibling contexts are assumed occupied (see Model.PredictPartial).
type PredictRequest struct {
	Victim    string `json:"victim"`
	Aggressor string `json:"aggressor"`
	Instances int    `json:"instances,omitempty"`
	Threads   int    `json:"threads,omitempty"`
}

// Prediction tiers, reported in PredictResponse.Tier.
const (
	// TierSurrogate: answered in microseconds from the fitted surrogate
	// curves; the response carries the propagated error bound.
	TierSurrogate = "surrogate"
	// TierEngine: answered from engine-measured registry profiles — the
	// authoritative path, and the fallback whenever a surrogate answer's
	// bound exceeds the daemon's threshold.
	TierEngine = "engine"
)

// PredictResponse is the predicted degradation (0.07 = 7% slower).
type PredictResponse struct {
	Victim      string  `json:"victim"`
	Aggressor   string  `json:"aggressor"`
	Degradation float64 `json:"degradation"`
	// Tier reports which tier produced the answer (TierSurrogate or
	// TierEngine).
	Tier string `json:"tier"`
	// ErrorBound is the surrogate certificate — an upper bound on the
	// answer's deviation from the engine-featured prediction. Present only
	// on TierSurrogate answers.
	ErrorBound float64 `json:"error_bound,omitempty"`
	// Generation is the registry generation the answer was computed
	// under; it increments on every profile upload or model swap. A
	// closed-loop controller uses it to tell whether a
	// re-characterization landed between two predictions for the same
	// pair without re-fetching the profile list.
	Generation uint64 `json:"generation,omitempty"`
}

// QueueSpec carries the victim service's M/M/1 parameters for tail-latency
// prediction (Equation 6).
type QueueSpec struct {
	// Mu and Lambda are the per-thread service and arrival rates
	// (requests/second) at solo performance.
	Mu     float64 `json:"mu"`
	Lambda float64 `json:"lambda"`
	// Percentile is the SLO percentile in (0,1); 0 defaults to 0.90, the
	// paper's experiments.
	Percentile float64 `json:"percentile,omitempty"`
}

// ColocateRequest is the admission check a cluster scheduler runs before
// placing the aggressor next to the victim.
type ColocateRequest struct {
	Victim    string `json:"victim"`
	Aggressor string `json:"aggressor"`
	// QoSTarget is the retained-average-performance target in (0,1]
	// (0.95 = at most 5% degradation).
	QoSTarget float64 `json:"qos_target"`
	Instances int     `json:"instances,omitempty"`
	Threads   int     `json:"threads,omitempty"`
	// Queue, when present, additionally predicts the victim's percentile
	// latency under the degradation.
	Queue *QueueSpec `json:"queue,omitempty"`
}

// ColocateResponse reports the decision.
type ColocateResponse struct {
	Victim      string  `json:"victim"`
	Aggressor   string  `json:"aggressor"`
	Degradation float64 `json:"degradation"`
	// QoS is the retained average performance 1−deg, clamped to [0,1].
	QoS float64 `json:"qos"`
	// Safe reports Model.SafeColocation against the target.
	Safe bool `json:"safe"`
	// TailLatency is the Equation 6 percentile latency in seconds; omitted
	// (with Saturated set) when the degradation pushes the queue past
	// stability, where the latency is unbounded. It is never negative.
	TailLatency *float64 `json:"tail_latency,omitempty"`
	Saturated   bool     `json:"saturated,omitempty"`
}

// AdmitRequest is the predictive SLO admission check (POST /v1/admit):
// may this aggressor be co-located next to this victim without the
// victim's class tail-latency budget being blown? The daemon predicts
// the degradation through its tiered predictor, inflates it by the
// surrogate error bound when the answer came from the surrogate tier,
// evaluates Equation 6 at the class percentile, and admits only if the
// tail estimate fits the class budget minus the configured headroom.
type AdmitRequest struct {
	Victim    string `json:"victim"`
	Aggressor string `json:"aggressor"`
	// Class names the victim's SLO class (one of the daemon's configured
	// classes, e.g. "critical").
	Class string `json:"class"`
	// Instances and Threads select the partial-occupancy prediction, as
	// in PredictRequest.
	Instances int `json:"instances,omitempty"`
	Threads   int `json:"threads,omitempty"`
	// Queue carries the victim's M/M/1 rates. The percentile comes from
	// the SLO class; setting Queue.Percentile here is an error.
	Queue QueueSpec `json:"queue"`
}

// AdmitResponse reports the admission decision and the numbers behind
// it, so a scheduler (or a human) can audit why a co-location was
// rejected.
type AdmitResponse struct {
	Victim    string `json:"victim"`
	Aggressor string `json:"aggressor"`
	Class     string `json:"class"`
	// Admitted is the decision; Reason is one of the AdmitReason*
	// constants ("ok", "budget_exceeded", "saturated").
	Admitted bool   `json:"admitted"`
	Reason   string `json:"reason"`
	// Degradation is the raw predicted degradation; Tier reports the
	// producing tier and ErrorBound its certificate (surrogate answers
	// only). EffectiveDegradation = Degradation + ErrorBound is what the
	// budget check actually used.
	Degradation          float64 `json:"degradation"`
	EffectiveDegradation float64 `json:"effective_degradation"`
	Tier                 string  `json:"tier"`
	ErrorBound           float64 `json:"error_bound,omitempty"`
	// Generation is the registry generation the prediction was computed
	// under, as in PredictResponse.Generation.
	Generation uint64 `json:"generation,omitempty"`
	// TailLatency is the Equation 6 percentile latency in seconds at the
	// effective degradation; omitted (with Saturated set) when the queue
	// is pushed past stability. It is never negative.
	TailLatency *float64 `json:"tail_latency,omitempty"`
	Saturated   bool     `json:"saturated,omitempty"`
	// Budget is the class budget in seconds; EffectiveBudget is
	// Budget·(1−Headroom), the value TailLatency was checked against;
	// Percentile is the class SLO percentile.
	Budget          float64 `json:"budget"`
	EffectiveBudget float64 `json:"effective_budget"`
	Percentile      float64 `json:"percentile"`
	Headroom        float64 `json:"headroom"`
	// IsolationRemedy, present only on rejections, is the server's
	// actuation hint: the weakest level of the stock hardware
	// QoS-enforcement ladder (internal/isol) whose modeled interference
	// scaling brings the tail estimate back under the effective budget.
	// Absent when even the strongest level cannot — the scheduler must
	// then place the aggressor elsewhere.
	IsolationRemedy *IsolationRemedy `json:"isolation_remedy,omitempty"`
}

// IsolationRemedy names one isolation operating point that would turn a
// rejected admission into an admitted one, with the re-evaluated numbers
// at that level so the scheduler can weigh the throughput tax against a
// migration.
type IsolationRemedy struct {
	// Level is the ladder index (≥1; level 0 is "off" and by definition
	// cannot remedy anything). Setting carries the operating point's
	// name, way partition, throttle, and modeled effect.
	Level   int          `json:"level"`
	Setting isol.Setting `json:"setting"`
	// EffectiveDegradation and TailLatency are the budget-checked
	// degradation and Eq. 6 tail at the suggested level.
	EffectiveDegradation float64 `json:"effective_degradation"`
	TailLatency          float64 `json:"tail_latency"`
}

// BatchCandidate is one aggressor option in a batch scoring request.
type BatchCandidate struct {
	Aggressor string `json:"aggressor"`
	// Instances, with the request-level Threads, selects the
	// partial-occupancy prediction for this candidate.
	Instances int `json:"instances,omitempty"`
}

// BatchRequest scores a whole candidate set against one victim — the
// per-machine query of a cluster scheduler deciding what (and how much)
// to co-locate on a server's idle contexts.
type BatchRequest struct {
	Victim  string `json:"victim"`
	Threads int    `json:"threads,omitempty"`
	// QoSTarget, when non-zero, also classifies every candidate as
	// safe/unsafe against the target.
	QoSTarget  float64          `json:"qos_target,omitempty"`
	Candidates []BatchCandidate `json:"candidates"`
}

// BatchResult is one candidate's score.
type BatchResult struct {
	Aggressor   string  `json:"aggressor"`
	Instances   int     `json:"instances,omitempty"`
	Degradation float64 `json:"degradation"`
	// Safe is present only when the request carried a QoSTarget.
	Safe *bool `json:"safe,omitempty"`
}

// BatchResponse mirrors the candidate order of the request.
type BatchResponse struct {
	Victim  string        `json:"victim"`
	Results []BatchResult `json:"results"`
}

// CharacterizeRequest asks the daemon to characterize a workload by
// simulating the full Ruler sweep in-process (POST /v1/characterize).
// The daemon must have been started with a simulation System; the sweep
// runs under the request's context, so the per-request timeout (or a
// client disconnect) cancels the in-flight simulation.
type CharacterizeRequest struct {
	// App names a workload from the built-in registry
	// (smite.WorkloadByName).
	App string `json:"app"`
	// Placement is "smt" (default) or "cmp".
	Placement string `json:"placement,omitempty"`
	// Register adds the resulting profile to the registry so subsequent
	// predictions can use it immediately.
	Register bool `json:"register,omitempty"`
}

// CharacterizeResponse carries the measured profile.
type CharacterizeResponse struct {
	App       string `json:"app"`
	Placement string `json:"placement"`
	// Profile is the decoupled Sen/Con characterization.
	Profile smite.Characterization `json:"profile"`
	// Registered reports whether the profile was added to the registry;
	// Total is the registry size afterwards (only set when Registered).
	Registered bool `json:"registered,omitempty"`
	Total      int  `json:"total,omitempty"`
}

// ProfilesResponse acknowledges a profile upload.
type ProfilesResponse struct {
	// Added counts profiles in the upload (re-uploads replace by name);
	// Total is the registry size afterwards.
	Added int `json:"added"`
	Total int `json:"total"`
}

// HealthResponse is the liveness/readiness report.
type HealthResponse struct {
	Status      string `json:"status"`
	Profiles    int    `json:"profiles"`
	ModelLoaded bool   `json:"model_loaded"`
}

// CacheMetrics snapshots the prediction memo (an internal/simcache).
type CacheMetrics struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// RouteMetrics counts one route's requests by status class.
type RouteMetrics struct {
	Total      uint64 `json:"total"`
	Status2xx  uint64 `json:"2xx"`
	Status4xx  uint64 `json:"4xx"`
	Status5xx  uint64 `json:"5xx"`
	StatusElse uint64 `json:"other"`
}

// LatencyMetrics summarises request latency over a sliding window of the
// most recent requests (milliseconds; percentiles via internal/stats).
type LatencyMetrics struct {
	Window int     `json:"window"`
	P50    float64 `json:"p50_ms"`
	P90    float64 `json:"p90_ms"`
	P99    float64 `json:"p99_ms"`
	Max    float64 `json:"max_ms"`
}

// SLOClassMetrics counts one class's lifetime admission decisions.
type SLOClassMetrics struct {
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
}

// SaturationReport is the analyzer's capacity-vs-demand view: the
// rejection rate over the most recent decisions and the scaling signal
// it implies under the configured thresholds.
type SaturationReport struct {
	// Window is the number of decisions the rate was computed over (at
	// most the configured window size).
	Window int `json:"window"`
	// RejectionRate is the windowed fraction of rejected admissions.
	RejectionRate float64 `json:"rejection_rate"`
	// Signal is scale_up, steady, or scale_down.
	Signal             string  `json:"signal"`
	ScaleUpThreshold   float64 `json:"scale_up_threshold"`
	ScaleDownThreshold float64 `json:"scale_down_threshold"`
}

// SLOMetricsReport is the admission gate's slice of GET /metrics,
// present only on daemons running with an SLO config.
type SLOMetricsReport struct {
	Classes    map[string]SLOClassMetrics `json:"classes"`
	Saturation SaturationReport           `json:"saturation"`
	Headroom   float64                    `json:"headroom"`
}

// MetricsResponse is the GET /metrics payload.
type MetricsResponse struct {
	UptimeSeconds   float64                 `json:"uptime_seconds"`
	Requests        map[string]RouteMetrics `json:"requests"`
	Latency         LatencyMetrics          `json:"latency"`
	Profiles        int                     `json:"profiles"`
	ModelLoaded     bool                    `json:"model_loaded"`
	PredictionCache CacheMetrics            `json:"prediction_cache"`
	MaxInFlight     int                     `json:"max_in_flight"`
	// SLO is the admission gate's report; omitted when the daemon runs
	// without one, keeping the payload byte-compatible for old readers.
	SLO *SLOMetricsReport `json:"slo,omitempty"`
}
