// Package experiments implements one driver per table and figure of the
// paper's evaluation (Section IV), producing the same rows and series the
// paper reports. DESIGN.md carries the experiment index; EXPERIMENTS.md
// records paper-versus-measured values from a full-scale run.
//
// All drivers hang off a Lab, which owns the two machine configurations
// (Table I), memoises application characterizations and trained models so
// that later figures reuse earlier figures' measurements, and scales every
// experiment through a Scale so tests and benchmarks can run reduced
// versions of the same code paths.
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/sim/isa"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// workers bounds experiment-level fan-out, honouring the scale's
// Options.Parallelism (0 = GOMAXPROCS).
func (l *Lab) workers() int { return sched.Workers(l.Scale.Options.Parallelism) }

// Scale sizes an experiment run.
type Scale struct {
	// Options are the measurement windows.
	Options profile.Options
	// IvyBridgeCores/SandyBridgeCores override core counts (0 keeps the
	// stock configuration). Reducing cores speeds tests but caps CloudSuite
	// thread counts.
	IvyBridgeCores   int
	SandyBridgeCores int
	// MaxSpecApps truncates the SPEC train/test sets (0 = all).
	MaxSpecApps int
	// MaxCloudApps truncates the CloudSuite set (0 = all).
	MaxCloudApps int
	// MaxPairApps bounds the per-set app count for the all-pairs port
	// utilisation study (0 = all 29).
	MaxPairApps int
	// RulerSweepPoints is the intensity sweep resolution for the Ruler
	// linearity validation.
	RulerSweepPoints int
	// ServersPerApp sizes the scale-out cluster (paper: 1,000 per app).
	ServersPerApp int
	// TailRequests sizes the queueing simulations of the tail studies.
	TailRequests int
}

// FullScale reproduces the paper's experiment sizes.
func FullScale() Scale {
	return Scale{
		Options:          profile.DefaultOptions(),
		RulerSweepPoints: 4,
		ServersPerApp:    1000,
		TailRequests:     200_000,
	}
}

// TestScale is a reduced configuration exercising the same code paths
// quickly (for tests and benchmarks).
func TestScale() Scale {
	return Scale{
		Options:          profile.FastOptions(),
		IvyBridgeCores:   2,
		SandyBridgeCores: 4,
		MaxSpecApps:      8,
		MaxCloudApps:     2,
		MaxPairApps:      6,
		RulerSweepPoints: 3,
		ServersPerApp:    100,
		TailRequests:     20_000,
	}
}

// Lab owns configurations, profilers and memoised measurements.
type Lab struct {
	Scale Scale
	// IVB is the Ivy Bridge configuration used for the SPEC experiments
	// (Figures 10 and 11); SNB the Sandy Bridge-EN configuration used for
	// the CloudSuite and scale-out experiments.
	IVB isa.Config
	SNB isa.Config

	ivb *profile.Profiler
	snb *profile.Profiler

	mu     sync.Mutex
	chars  map[string]*charFlight // machine|placement|set-hash → single-flight entry
	models map[string]model.Smite
	pmus   map[string]model.PMULinear
	cloud  *cloudFlight

	// charRuns counts characterization fan-outs that actually executed
	// (i.e. single-flight misses); the concurrency tests assert on it.
	charRuns atomic.Uint64
}

// charFlight is one single-flight memo entry of Characterizations,
// mirroring internal/simcache: the first caller computes while later
// callers of the same key block on done; a failed flight is removed
// before done closes so waiters retry instead of caching the error.
type charFlight struct {
	done  chan struct{}
	byApp map[string]profile.Characterization // written before close(done)
	ok    bool                                // false: flight failed, entry removed
}

// cloudFlight single-flights cloudStudyData the same way.
type cloudFlight struct {
	done chan struct{}
	cs   *cloudStudy
	ok   bool
}

// Machine selects one of the Lab's two configurations.
type Machine int

const (
	// IvyBridge is the i7-3770 (SPEC experiments).
	IvyBridge Machine = iota
	// SandyBridgeEN is the Xeon E5-2420 (CloudSuite and scale-out).
	SandyBridgeEN
)

// String names the machine.
func (m Machine) String() string {
	if m == IvyBridge {
		return "Ivy Bridge"
	}
	return "Sandy Bridge-EN"
}

// NewLab builds a lab at the given scale. All drivers share one simulation
// cache (the machine configuration is part of every cache key, so the two
// profilers cannot collide), letting figures that revisit the same
// co-location — e.g. training and evaluation over the same pair set —
// simulate it once.
func NewLab(scale Scale) *Lab {
	ivb := isa.IvyBridge()
	if scale.IvyBridgeCores > 0 {
		ivb.Cores = scale.IvyBridgeCores
	}
	snb := isa.SandyBridgeEN()
	if scale.SandyBridgeCores > 0 {
		snb.Cores = scale.SandyBridgeCores
	}
	if scale.Options.Cache == nil {
		scale.Options.Cache = simcache.New[profile.RunResult]()
	}
	return &Lab{
		Scale:  scale,
		IVB:    ivb,
		SNB:    snb,
		ivb:    profile.NewProfiler(ivb, scale.Options),
		snb:    profile.NewProfiler(snb, scale.Options),
		chars:  make(map[string]*charFlight),
		models: make(map[string]model.Smite),
		pmus:   make(map[string]model.PMULinear),
	}
}

// Profiler returns the profiler for a machine.
func (l *Lab) Profiler(m Machine) *profile.Profiler {
	if m == IvyBridge {
		return l.ivb
	}
	return l.snb
}

// Config returns a machine's configuration.
func (l *Lab) Config(m Machine) isa.Config {
	if m == IvyBridge {
		return l.IVB
	}
	return l.SNB
}

// CacheStats reports the lab-wide simulation-cache counters.
func (l *Lab) CacheStats() simcache.Stats {
	if l.Scale.Options.Cache == nil {
		return simcache.Stats{}
	}
	return l.Scale.Options.Cache.Stats()
}

// specSet truncates a SPEC set per the scale, sampling evenly across the
// list so a reduced set keeps the population's diversity (compute-dense,
// streaming and cache-thrashing applications all survive truncation).
func (l *Lab) specSet(set []*workload.Spec) []*workload.Spec {
	max := l.Scale.MaxSpecApps
	if max <= 0 || len(set) <= max {
		return set
	}
	out := make([]*workload.Spec, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, set[i*len(set)/max])
	}
	return out
}

// cloudSet truncates the CloudSuite set per the scale. It does not touch
// thread counts: clamping multithreaded applications to a reduced core
// count happens where the specs become Jobs — Characterizations caps
// AppThreads at the machine's core count, and cloudStudyData sizes
// latency jobs from cloudThreads().
func (l *Lab) cloudSet() []*workload.Spec {
	set := workload.CloudSuiteApps()
	if l.Scale.MaxCloudApps > 0 && len(set) > l.Scale.MaxCloudApps {
		set = set[:l.Scale.MaxCloudApps]
	}
	return set
}

// cloudThreads is the per-server thread count of latency applications: one
// per core (half load).
func (l *Lab) cloudThreads() int { return l.SNB.Cores }

// Characterizations returns (and memoises) the characterizations of a set
// of applications on a machine under a placement. The memo key derives
// from the set's contents, so equal sets share work regardless of how a
// caller names them. The memo is single-flight per key: concurrent
// callers of the same missing key block on one characterization fan-out
// and share its result instead of each running the full sweep and
// discarding all but one (the check-then-act race this replaces).
func (l *Lab) Characterizations(m Machine, placement profile.Placement, set []*workload.Spec, setName string) ([]profile.Characterization, error) {
	return l.CharacterizationsContext(context.Background(), m, placement, set, setName)
}

// CharacterizationsContext is Characterizations with cooperative
// cancellation: the characterization fan-out aborts mid-simulation when ctx
// is cancelled, and a waiter blocked on another caller's flight stops
// waiting when its own ctx dies (the flight itself is unaffected). A
// cancelled leader's flight caches nothing, so later callers retry.
func (l *Lab) CharacterizationsContext(ctx context.Context, m Machine, placement profile.Placement, set []*workload.Spec, setName string) ([]profile.Characterization, error) {
	_ = setName // kept in the signature for log readability at call sites
	names := make([]string, len(set))
	for i, s := range set {
		names[i] = s.Name
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, n := range sorted {
		_, _ = h.Write([]byte(n))
		_, _ = h.Write([]byte{0})
	}
	key := fmt.Sprintf("%d|%d|%x", m, placement, h.Sum64())
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		l.mu.Lock()
		if f, ok := l.chars[key]; ok {
			l.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if !f.ok {
				continue // that flight failed; try to compute ourselves
			}
			out := make([]profile.Characterization, len(set))
			for i, s := range set {
				out[i] = f.byApp[s.Name]
			}
			return out, nil
		}
		f := &charFlight{done: make(chan struct{})}
		l.chars[key] = f
		l.mu.Unlock()

		chars, err := l.characterizeSet(ctx, m, placement, set)
		if err != nil {
			l.mu.Lock()
			delete(l.chars, key)
			l.mu.Unlock()
			close(f.done)
			return nil, err
		}
		f.byApp = make(map[string]profile.Characterization, len(chars))
		for _, c := range chars {
			f.byApp[c.App] = c
		}
		f.ok = true
		close(f.done)
		return chars, nil
	}
}

// characterizeSet runs the characterization fan-out for one memo key.
// Multithreaded apps occupy one context per thread; thread counts adapt
// to the machine here (one per core under SMT, one per half the cores
// under CMP), which is what keeps reduced-core Scales runnable. The
// per-cell scheduling — every solo and (application, Ruler) co-location
// on one worker pool — lives in profile.CharacterizeJobsContext.
func (l *Lab) characterizeSet(ctx context.Context, m Machine, placement profile.Placement, set []*workload.Spec) ([]profile.Characterization, error) {
	l.charRuns.Add(1)
	jobs := make([]profile.Job, len(set))
	for i, s := range set {
		switch {
		case s.ThreadCount() > 1 && placement == profile.CMP:
			jobs[i] = profile.AppThreads(s, l.Config(m).Cores/2)
		case s.ThreadCount() > 1:
			jobs[i] = profile.AppThreads(s, l.Config(m).Cores)
		default:
			jobs[i] = profile.App(s)
		}
	}
	return l.Profiler(m).CharacterizeJobsContext(ctx, jobs, placement)
}
