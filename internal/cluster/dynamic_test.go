package cluster

import "testing"

func dynamicStudy(t *testing.T, predBias float64) *DynamicStudy {
	t.Helper()
	return &DynamicStudy{
		Table:        syntheticStudy(t, predBias),
		ArrivalRate:  50, // jobs per time unit across the cluster
		MeanDuration: 5,
		Horizon:      100,
		Seed:         11,
	}
}

func TestDynamicPlacesAndDrains(t *testing.T) {
	d := dynamicStudy(t, 0)
	r, err := d.Run(PolicySMiTe, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrived == 0 || r.Placed == 0 {
		t.Fatalf("no traffic: %+v", r)
	}
	if r.Placed+r.Rejected != r.Arrived {
		t.Errorf("placed %d + rejected %d != arrived %d", r.Placed, r.Rejected, r.Arrived)
	}
	if r.MeanUtilization <= 0.5 {
		t.Errorf("mean utilization %.3f should exceed the half-loaded baseline", r.MeanUtilization)
	}
	if r.PeakUtilization > 1 {
		t.Errorf("peak utilization %.3f exceeds capacity", r.PeakUtilization)
	}
	if r.ViolationFrac != 0 {
		t.Errorf("perfect predictor violated %.3f of placements", r.ViolationFrac)
	}
}

func TestDynamicOracleNeverViolates(t *testing.T) {
	d := dynamicStudy(t, 0.05)
	r, err := d.Run(PolicyOracle, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if r.ViolationFrac != 0 {
		t.Errorf("oracle violated %.3f", r.ViolationFrac)
	}
}

func TestDynamicRandomViolatesMore(t *testing.T) {
	d := dynamicStudy(t, 0)
	sm, err := d.Run(PolicySMiTe, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := d.Run(PolicyRandom, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	// Random ignores the per-kind degradation: stacking 'noisy' instances
	// breaks the 10% budget where SMiTe would not place them.
	if rd.ViolationFrac <= sm.ViolationFrac {
		t.Errorf("random violations %.3f should exceed SMiTe's %.3f", rd.ViolationFrac, sm.ViolationFrac)
	}
}

func TestDynamicTighterTargetPlacesLess(t *testing.T) {
	d := dynamicStudy(t, 0)
	loose, err := d.Run(PolicySMiTe, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := d.Run(PolicySMiTe, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Placed >= loose.Placed {
		t.Errorf("tighter target placed %d >= looser target's %d", tight.Placed, loose.Placed)
	}
	if tight.MeanUtilization > loose.MeanUtilization {
		t.Error("tighter target should not raise utilization")
	}
}

func TestDynamicDeterminism(t *testing.T) {
	d := dynamicStudy(t, 0.02)
	a, err := d.Run(PolicySMiTe, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Run(PolicySMiTe, 0.90)
	if a != b {
		t.Errorf("dynamic study not deterministic: %+v vs %+v", a, b)
	}
}

func TestDynamicValidation(t *testing.T) {
	d := dynamicStudy(t, 0)
	d.ArrivalRate = 0
	if _, err := d.Run(PolicySMiTe, 0.9); err == nil {
		t.Error("zero arrival rate accepted")
	}
	if _, err := (&DynamicStudy{}).Run(PolicySMiTe, 0.9); err == nil {
		t.Error("missing table accepted")
	}
}
