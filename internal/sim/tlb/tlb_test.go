package tlb

import (
	"testing"

	"repro/internal/xrand"
)

func TestHitAfterFill(t *testing.T) {
	tl := New(64, 4096)
	if tl.Access(0x1000) {
		t.Error("cold translation hit")
	}
	if !tl.Access(0x1FFF) {
		t.Error("same-page access missed")
	}
	if tl.Access(0x2000) {
		t.Error("next page hit cold")
	}
	hits, misses := tl.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestSmallFootprintAlwaysHits(t *testing.T) {
	tl := New(64, 4096)
	rng := xrand.New(2)
	// 16 pages on a 64-entry TLB: after warm-up, no misses.
	for i := 0; i < 1000; i++ {
		tl.Access(uint64(rng.Intn(16)) * 4096)
	}
	tl.ResetStats()
	for i := 0; i < 10000; i++ {
		tl.Access(uint64(rng.Intn(16)) * 4096)
	}
	if _, misses := tl.Stats(); misses != 0 {
		t.Errorf("%d misses on a resident page set", misses)
	}
}

func TestLargeFootprintMisses(t *testing.T) {
	tl := New(64, 4096)
	rng := xrand.New(3)
	for i := 0; i < 20000; i++ {
		tl.Access(rng.Uint64n(4096) * 4096) // 4096 pages >> 64 entries
	}
	hits, misses := tl.Stats()
	missRate := float64(misses) / float64(hits+misses)
	if missRate < 0.9 {
		t.Errorf("miss rate %.3f on a 64× oversubscribed TLB, want ~1", missRate)
	}
}

func TestFlush(t *testing.T) {
	tl := New(16, 4096)
	tl.Access(0)
	tl.Flush()
	if tl.Access(0) {
		t.Error("translation survived flush")
	}
}

func TestEntriesRounding(t *testing.T) {
	if got := New(64, 4096).Entries(); got != 64 {
		t.Errorf("entries = %d, want 64", got)
	}
	// Non-multiple entry counts round down to full sets.
	if got := New(66, 4096).Entries(); got != 64 {
		t.Errorf("entries = %d, want 64", got)
	}
	// Tiny TLBs keep at least one set.
	if got := New(2, 4096).Entries(); got != 4 {
		t.Errorf("entries = %d, want 4", got)
	}
}

func TestBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4096) },
		func() { New(16, 1000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad TLB params accepted")
				}
			}()
			f()
		}()
	}
}
