package profile

import (
	"testing"

	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/workload"
)

func testConfig() isa.Config {
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	return cfg
}

func TestCharacterizeProducesDecoupledProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization run in short mode")
	}
	p := NewProfiler(testConfig(), FastOptions())

	namd, err := workload.ByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}

	chNamd, err := p.Characterize(namd, SMT)
	if err != nil {
		t.Fatal(err)
	}
	chMcf, err := p.Characterize(mcf, SMT)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("namd solo=%.3f Sen=%v", chNamd.SoloIPC, chNamd.Sen)
	t.Logf("namd Con=%v", chNamd.Con)
	t.Logf("mcf  solo=%.3f Sen=%v", chMcf.SoloIPC, chMcf.Sen)
	t.Logf("mcf  Con=%v", chMcf.Con)

	// namd is far more port-1 sensitive than mcf (paper Finding 2).
	if chNamd.Sen[rulers.DimFPAdd] < chMcf.Sen[rulers.DimFPAdd]+0.10 {
		t.Errorf("namd FP_ADD sensitivity %.3f should dominate mcf's %.3f", chNamd.Sen[rulers.DimFPAdd], chMcf.Sen[rulers.DimFPAdd])
	}
	// mcf is more sensitive to L3 pressure than namd.
	if chMcf.Sen[rulers.DimL3] < chNamd.Sen[rulers.DimL3] {
		t.Errorf("mcf L3 sensitivity %.3f should dominate namd's %.3f", chMcf.Sen[rulers.DimL3], chNamd.Sen[rulers.DimL3])
	}
	if chMcf.Sen[rulers.DimL3] < 0.05 {
		t.Errorf("mcf L3 sensitivity %.3f too small; cache interference not emerging", chMcf.Sen[rulers.DimL3])
	}
	// Sensitivities are degradations: within (-0.1, 1).
	for _, ch := range []Characterization{chNamd, chMcf} {
		for d, s := range ch.Sen {
			if s < -0.1 || s > 1 {
				t.Errorf("%s Sen[%v] = %.3f out of range", ch.App, rulers.Dimension(d), s)
			}
		}
	}
}

func TestMeasurePairSymmetricAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("pair measurement in short mode")
	}
	p := NewProfiler(testConfig(), FastOptions())
	a, _ := workload.ByName("456.hmmer")
	b, _ := workload.ByName("470.lbm")
	pm, err := p.MeasurePair(a, b, SMT)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hmmer vs lbm: degA=%.3f degB=%.3f", pm.DegA, pm.DegB)
	if pm.DegA < -0.05 || pm.DegA > 1 || pm.DegB < -0.05 || pm.DegB > 1 {
		t.Errorf("degradations out of range: %+v", pm)
	}
	cmp, err := p.MeasurePair(a, b, CMP)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hmmer vs lbm CMP: degA=%.3f degB=%.3f", cmp.DegA, cmp.DegB)
	// CMP shares only uncore: on-core-bound hmmer must degrade less.
	if cmp.DegA > pm.DegA+0.02 {
		t.Errorf("hmmer degrades more under CMP (%.3f) than SMT (%.3f)", cmp.DegA, pm.DegA)
	}
}
