package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite the experiment-render golden fixtures")

// checkGolden compares a rendered experiment report against its fixture
// under testdata/, rewriting the fixture with -update. The renders are the
// human-facing output of cmd/paperfigs-style runs, so drift (column order,
// number formatting, added rows) must be a deliberate, reviewed change.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Errorf("%s render drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// The synthetic results below are hand-built rather than simulated so the
// golden tests pin the rendering layer alone and stay fast; the numeric
// pipelines behind them are covered by the lab and smoke tests.

func TestTable1Golden(t *testing.T) {
	checkGolden(t, "table1", NewLab(TestScale()).Table1().String())
}

func TestAblationGolden(t *testing.T) {
	r := AblationResult{
		MeasuredMean: 0.153,
		Rows: []AblationRow{
			{Model: "SMiTe (Eq.3, NNLS)", TestErr: 0.041, TrainErr: 0.027},
			{Model: "SMiTe (unconstrained LS)", TestErr: 0.058, TrainErr: 0.024},
			{Model: "PMU linear (Eq.9)", TestErr: 0.112, TrainErr: 0.083},
			{Model: "Bubble-Up single metric", TestErr: 0.164, TrainErr: 0.151},
		},
	}
	checkGolden(t, "ablation", r.String())
}

func TestCrossMachineGolden(t *testing.T) {
	r := CrossMachineResult{NativeErr: 0.045, TransferErr: 0.063, RetrainedErr: 0.049}
	checkGolden(t, "crossmachine", r.String())
}

func TestFig13Golden(t *testing.T) {
	r := Fig13Result{
		Rows: []Fig13Row{
			{
				App: "web-search", CalMu: 812, CalLambda: 640, MeanAbsRelErr: 0.0461,
				Cells: []Fig13Cell{
					{Batch: "429.mcf", Instances: 2, ActualDeg: 0.21, PredDeg: 0.19, MeasuredP90: 0.0042, PredP90: 0.0040},
				},
			},
			{App: "data-caching", CalMu: 1530, CalLambda: 1210, MeanAbsRelErr: 0.0617},
		},
	}
	checkGolden(t, "fig13", r.String())
}

func TestScaleOutGolden(t *testing.T) {
	checkGolden(t, "scaleout", syntheticScaleOut(cluster.QoSAvg).String())
}
