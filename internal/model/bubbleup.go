package model

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/rulers"
)

// BubbleUp is a single-metric interference model in the style of Mars et
// al.'s Bubble-Up (MICRO 2011), the prior CMP work SMiTe argues cannot
// transfer to SMT: one unified "memory subsystem pressure" score per
// application — here the mean of the cache-dimension sensitivities and
// contentiousness — combined through a single coefficient.
//
// The paper's Section II shows why this fails on SMT: contention
// characteristics across the on-core dimensions do not correlate with the
// memory dimensions, so any monotonic single metric must mispredict
// port-bound co-locations. The model is included as an ablation baseline.
type BubbleUp struct {
	Coef      float64
	Intercept float64
}

// Name implements Predictor.
func (m BubbleUp) Name() string { return "BubbleUp-1D" }

func bubbleFeature(o PairObs) float64 {
	memDims := []rulers.Dimension{rulers.DimL1, rulers.DimL2, rulers.DimL3}
	var sen, con float64
	for _, d := range memDims {
		sen += o.SenA[d]
		con += o.ConB[d]
	}
	sen /= float64(len(memDims))
	con /= float64(len(memDims))
	return sen * con
}

// Predict implements Predictor.
func (m BubbleUp) Predict(obs PairObs) float64 {
	return m.Coef*bubbleFeature(obs) + m.Intercept
}

// TrainBubbleUp fits the single-metric model by least squares.
func TrainBubbleUp(obs []PairObs) (BubbleUp, error) {
	if len(obs) < 2 {
		return BubbleUp{}, fmt.Errorf("model: %d observations cannot fit the Bubble-Up baseline", len(obs))
	}
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		x[i] = []float64{bubbleFeature(o), 1}
		y[i] = o.Deg
	}
	beta, err := linalg.LeastSquares(x, y, 1e-9)
	if err != nil {
		return BubbleUp{}, fmt.Errorf("model: Bubble-Up fit: %w", err)
	}
	return BubbleUp{Coef: beta[0], Intercept: beta[1]}, nil
}
