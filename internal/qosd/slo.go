package qosd

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/isol"
	"repro/internal/queueing"
)

// This file is the predictive SLO admission gate (DESIGN.md §13): SLO
// classes with per-class tail-latency budgets, the pure Eq. 6 budget
// check EvaluateAdmission runs for POST /v1/admit, and the saturation
// analyzer that turns the recent admit/reject stream into a
// capacity-vs-demand scaling signal.

// SLOClass is one quality-of-service class an admission request names:
// a tail-latency budget at a percentile. The canonical trio is
// critical / standard / sheddable (DefaultSLOClasses), but any set of
// uniquely-named classes works.
type SLOClass struct {
	// Name identifies the class in requests and metrics.
	Name string `json:"name"`
	// Budget is the tail-latency budget in seconds: the largest Eq. 6
	// percentile latency the class tolerates.
	Budget float64 `json:"budget"`
	// Percentile is the SLO percentile in (0,1) the budget applies to
	// (0.95 means "95th-percentile latency within Budget").
	Percentile float64 `json:"percentile"`
}

// SLOConfig parameterises the admission gate.
type SLOConfig struct {
	// Classes are the admissible SLO classes; requests name one.
	Classes []SLOClass `json:"classes"`
	// Headroom reserves a fraction of every class budget in [0, 1): the
	// gate admits against Budget·(1−Headroom), so predictions that land
	// within Headroom of the budget are rejected as too close to call.
	Headroom float64 `json:"headroom"`
	// ScaleUpThreshold and ScaleDownThreshold bracket the saturation
	// analyzer's signal: a windowed rejection rate at or above the first
	// means demand exceeds capacity (scale up), at or below the second
	// means capacity is slack (scale down). Zero values pick
	// DefaultScaleUpThreshold / DefaultScaleDownThreshold.
	ScaleUpThreshold   float64 `json:"scale_up_threshold,omitempty"`
	ScaleDownThreshold float64 `json:"scale_down_threshold,omitempty"`
	// Window is the number of recent decisions the analyzer's rejection
	// rate is computed over (0 = DefaultSaturationWindow).
	Window int `json:"window,omitempty"`
}

// Saturation-analyzer defaults.
const (
	DefaultScaleUpThreshold   = 0.2
	DefaultScaleDownThreshold = 0.05
	DefaultSaturationWindow   = 256
)

// DefaultSLOClasses returns the canonical three-class set: critical
// (20 ms p95), standard (60 ms p95), sheddable (150 ms p90).
func DefaultSLOClasses() []SLOClass {
	return []SLOClass{
		{Name: "critical", Budget: 0.020, Percentile: 0.95},
		{Name: "standard", Budget: 0.060, Percentile: 0.95},
		{Name: "sheddable", Budget: 0.150, Percentile: 0.90},
	}
}

func (c SLOConfig) withDefaults() SLOConfig {
	if len(c.Classes) == 0 {
		c.Classes = DefaultSLOClasses()
	}
	if c.ScaleUpThreshold == 0 {
		c.ScaleUpThreshold = DefaultScaleUpThreshold
	}
	if c.ScaleDownThreshold == 0 {
		c.ScaleDownThreshold = DefaultScaleDownThreshold
	}
	if c.Window <= 0 {
		c.Window = DefaultSaturationWindow
	}
	return c
}

// Validate rejects configurations the gate cannot serve. Constructors
// (cmd/smited) call it before NewServer; NewServer itself trusts the
// config.
func (c SLOConfig) Validate() error {
	c = c.withDefaults()
	seen := make(map[string]bool, len(c.Classes))
	for _, cl := range c.Classes {
		if cl.Name == "" {
			return fmt.Errorf("qosd: SLO class with empty name")
		}
		if seen[cl.Name] {
			return fmt.Errorf("qosd: duplicate SLO class %q", cl.Name)
		}
		seen[cl.Name] = true
		if !(cl.Budget > 0) || math.IsInf(cl.Budget, 0) {
			return fmt.Errorf("qosd: SLO class %q budget %g must be positive and finite", cl.Name, cl.Budget)
		}
		if cl.Percentile <= 0 || cl.Percentile >= 1 {
			return fmt.Errorf("qosd: SLO class %q percentile %g outside (0,1)", cl.Name, cl.Percentile)
		}
	}
	if c.Headroom < 0 || c.Headroom >= 1 || math.IsNaN(c.Headroom) {
		return fmt.Errorf("qosd: SLO headroom %g outside [0,1)", c.Headroom)
	}
	if c.ScaleUpThreshold <= c.ScaleDownThreshold {
		return fmt.Errorf("qosd: scale-up threshold %g must exceed scale-down threshold %g",
			c.ScaleUpThreshold, c.ScaleDownThreshold)
	}
	return nil
}

// Class resolves a class by name.
func (c SLOConfig) Class(name string) (SLOClass, bool) {
	for _, cl := range c.Classes {
		if cl.Name == name {
			return cl, true
		}
	}
	return SLOClass{}, false
}

// ParseSLOClasses parses a comma-separated class spec of the form
// "name:budget[:percentile]" — budget as a Go duration ("20ms"),
// percentile defaulting to 0.95 — e.g.
// "critical:20ms:0.95,standard:60ms:0.95,sheddable:150ms:0.90".
// Both cmd/smited (-slo-config) and cmd/clustersim (-slo-classes) parse
// their flags through this one function so the two CLIs reject exactly
// the same malformed specs.
func ParseSLOClasses(spec string) ([]SLOClass, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty SLO class spec")
	}
	var classes []SLOClass
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty class entry in %q", spec)
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("class %q is not name:budget[:percentile]", part)
		}
		name := strings.TrimSpace(fields[0])
		if name == "" {
			return nil, fmt.Errorf("class %q has an empty name", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate class %q", name)
		}
		seen[name] = true
		budget, err := time.ParseDuration(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("class %q: budget: %v", name, err)
		}
		if budget <= 0 {
			return nil, fmt.Errorf("class %q: budget %v must be positive", name, budget)
		}
		p := 0.95
		if len(fields) == 3 {
			p, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("class %q: percentile: %v", name, err)
			}
			if p <= 0 || p >= 1 {
				return nil, fmt.Errorf("class %q: percentile %g outside (0,1)", name, p)
			}
		}
		classes = append(classes, SLOClass{Name: name, Budget: budget.Seconds(), Percentile: p})
	}
	return classes, nil
}

// Admission reasons, reported in AdmitResponse.Reason.
const (
	// AdmitReasonOK: the inflated tail estimate fits the effective budget.
	AdmitReasonOK = "ok"
	// AdmitReasonBudgetExceeded: the queue stays stable but the inflated
	// Eq. 6 tail estimate exceeds Budget·(1−Headroom).
	AdmitReasonBudgetExceeded = "budget_exceeded"
	// AdmitReasonSaturated: the inflated degradation pushes the queue at
	// or past saturation (μ' ≤ λ) — tail latency is unbounded, so the
	// co-location is rejected for every finite budget.
	AdmitReasonSaturated = "saturated"
)

// AdmitDecision is the outcome of one EvaluateAdmission call.
type AdmitDecision struct {
	// Admitted reports whether the co-location fits the class budget.
	Admitted bool
	// Reason is one of the AdmitReason* constants.
	Reason string
	// EffectiveDegradation is the budget-checked degradation: the
	// prediction inflated by its error bound (bound is 0 on engine-tier
	// answers, so inflation only applies to surrogate answers).
	EffectiveDegradation float64
	// Tail is the Eq. 6 percentile latency at the inflated degradation,
	// in seconds; +Inf when Saturated.
	Tail float64
	// EffectiveBudget is Budget·(1−Headroom), the value Tail was checked
	// against.
	EffectiveBudget float64
	// Saturated reports an unbounded tail (μ' ≤ λ at the inflated
	// degradation, or a non-finite degradation).
	Saturated bool
}

// EvaluateAdmission is the pure admission check behind POST /v1/admit:
// inflate the predicted degradation by its error bound, run it through
// Equation 6 at the class percentile, and admit only if the resulting
// tail estimate fits the class budget minus the configured headroom.
// Saturated queues — including deg = 1 exactly and non-finite
// degradations from corrupt profiles — are always rejected.
//
// The check is deliberately conservative on both axes: the error bound
// is added (the surrogate may have under-predicted) and the budget is
// shrunk by the headroom (the model may be wrong in ways the bound does
// not capture). internal/simtest pins the resulting monotonicity laws:
// a tighter budget or a larger headroom never admits what the looser
// setting rejected.
func EvaluateAdmission(deg, bound, mu, lambda float64, class SLOClass, headroom float64) AdmitDecision {
	if headroom < 0 || math.IsNaN(headroom) {
		headroom = 0
	}
	d := AdmitDecision{
		EffectiveDegradation: deg + bound,
		EffectiveBudget:      class.Budget * (1 - headroom),
	}
	d.Tail = queueing.DegradedPercentile(class.Percentile, mu, lambda, d.EffectiveDegradation)
	switch {
	case math.IsInf(d.Tail, 1):
		d.Saturated = true
		d.Reason = AdmitReasonSaturated
	case d.Tail <= d.EffectiveBudget:
		d.Admitted = true
		d.Reason = AdmitReasonOK
	default:
		d.Reason = AdmitReasonBudgetExceeded
	}
	return d
}

// SuggestIsolation is the remedy search behind a rejected admission:
// walk the enforcement ladder from its weakest engaged level and return
// the first one whose DegScale — applied to both the prediction and its
// error bound, exactly as the cluster simulator scales a machine's
// degradation surface — turns the decision into an admit. Returns nil
// when no level clears the budget (the ladder cannot save this pair) or
// when the ladder has no engaged levels. A nil levels slice means the
// stock isol.DefaultSettings ladder.
//
// Because ValidateSettings pins DegScale as non-increasing across the
// ladder, the first admitting level is also the cheapest in throughput
// tax — the suggestion is always the minimal actuation.
func SuggestIsolation(deg, bound, mu, lambda float64, class SLOClass, headroom float64, levels []isol.Setting) *IsolationRemedy {
	if levels == nil {
		levels = isol.DefaultSettings()
	}
	for l := 1; l < len(levels); l++ {
		scale := levels[l].DegScale
		d := EvaluateAdmission(deg*scale, bound*scale, mu, lambda, class, headroom)
		if d.Admitted {
			return &IsolationRemedy{
				Level:                l,
				Setting:              levels[l],
				EffectiveDegradation: d.EffectiveDegradation,
				TailLatency:          d.Tail,
			}
		}
	}
	return nil
}

// Saturation signals, reported by the analyzer.
const (
	// SignalScaleUp: rejection rate at or above the scale-up threshold —
	// demand exceeds the fleet's admissible capacity.
	SignalScaleUp = "scale_up"
	// SignalSteady: rejection rate between the thresholds.
	SignalSteady = "steady"
	// SignalScaleDown: rejection rate at or below the scale-down
	// threshold — capacity is slack.
	SignalScaleDown = "scale_down"
)

// SaturationSignal maps a rejection rate onto a scaling signal given the
// two thresholds. Shared by the daemon's live analyzer and the cluster
// simulator's Summary so both report the same semantics.
func SaturationSignal(rejectionRate, scaleUp, scaleDown float64) string {
	switch {
	case rejectionRate >= scaleUp:
		return SignalScaleUp
	case rejectionRate <= scaleDown:
		return SignalScaleDown
	default:
		return SignalSteady
	}
}

// sloClassCounters accumulates one class's lifetime decisions.
type sloClassCounters struct {
	admitted, rejected uint64
}

// sloAnalyzer is the daemon's saturation analyzer: lifetime per-class
// counters plus a fixed-size ring of the most recent decisions, whose
// rejection rate drives the capacity-vs-demand signal.
type sloAnalyzer struct {
	cfg SLOConfig

	mu      sync.Mutex
	classes map[string]*sloClassCounters
	ring    []bool // true = rejected
	next    int
	filled  int
}

func newSLOAnalyzer(cfg SLOConfig) *sloAnalyzer {
	return &sloAnalyzer{
		cfg:     cfg,
		classes: make(map[string]*sloClassCounters, len(cfg.Classes)),
		ring:    make([]bool, cfg.Window),
	}
}

func (a *sloAnalyzer) record(class string, admitted bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.classes[class]
	if c == nil {
		c = &sloClassCounters{}
		a.classes[class] = c
	}
	if admitted {
		c.admitted++
	} else {
		c.rejected++
	}
	a.ring[a.next] = !admitted
	a.next = (a.next + 1) % len(a.ring)
	if a.filled < len(a.ring) {
		a.filled++
	}
}

// rejectionRate returns the windowed rejection rate and the number of
// decisions in the window.
func (a *sloAnalyzer) rejectionRate() (float64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejectionRateLocked()
}

func (a *sloAnalyzer) rejectionRateLocked() (float64, int) {
	if a.filled == 0 {
		return 0, 0
	}
	rejected := 0
	for i := 0; i < a.filled; i++ {
		if a.ring[i] {
			rejected++
		}
	}
	return float64(rejected) / float64(a.filled), a.filled
}

// report snapshots the analyzer for the JSON /metrics payload.
func (a *sloAnalyzer) report() *SLOMetricsReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rate, window := a.rejectionRateLocked()
	out := &SLOMetricsReport{
		Headroom: a.cfg.Headroom,
		Classes:  make(map[string]SLOClassMetrics, len(a.classes)),
		Saturation: SaturationReport{
			Window:             window,
			RejectionRate:      rate,
			Signal:             SaturationSignal(rate, a.cfg.ScaleUpThreshold, a.cfg.ScaleDownThreshold),
			ScaleUpThreshold:   a.cfg.ScaleUpThreshold,
			ScaleDownThreshold: a.cfg.ScaleDownThreshold,
		},
	}
	for name, c := range a.classes {
		out.Classes[name] = SLOClassMetrics{Admitted: c.admitted, Rejected: c.rejected}
	}
	return out
}
