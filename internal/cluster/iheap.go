package cluster

// iheap is an indexed min-heap: entries are ordered by (at, seq, handle)
// and addressable by handle, so the simulator can cancel a decommissioned
// machine's pending departure events in O(log n) instead of tombstoning
// them. Each shard owns one iheap as its event queue; the placement
// buckets reuse the same structure with at = seq = 0, which degenerates
// the ordering to "lowest handle first" — exactly the deterministic
// lowest-machine-id tie-break placement needs.
//
// Handles must be unique among live entries; Push panics on reuse because
// a duplicate would silently corrupt the position index.
type iheap struct {
	items []heapEntry
	pos   map[int64]int // handle -> index in items
}

type heapEntry struct {
	at     float64
	seq    uint64
	handle int64
}

func (e heapEntry) less(o heapEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.seq != o.seq {
		return e.seq < o.seq
	}
	return e.handle < o.handle
}

func newIheap() *iheap {
	return &iheap{pos: make(map[int64]int)}
}

// Len returns the number of live entries.
func (h *iheap) Len() int { return len(h.items) }

// Min returns the smallest entry without removing it; Len must be > 0.
func (h *iheap) Min() heapEntry { return h.items[0] }

// Push inserts an entry.
func (h *iheap) Push(at float64, seq uint64, handle int64) {
	if _, dup := h.pos[handle]; dup {
		panic("cluster: iheap handle reused while live")
	}
	h.items = append(h.items, heapEntry{at: at, seq: seq, handle: handle})
	h.pos[handle] = len(h.items) - 1
	h.up(len(h.items) - 1)
}

// Pop removes and returns the smallest entry; Len must be > 0.
func (h *iheap) Pop() heapEntry {
	top := h.items[0]
	h.removeAt(0)
	return top
}

// Remove deletes the entry with the given handle, reporting whether it
// was present.
func (h *iheap) Remove(handle int64) bool {
	i, ok := h.pos[handle]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

func (h *iheap) removeAt(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].handle)
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].handle] = i
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		if !h.down(i) {
			h.up(i)
		}
	}
}

func (h *iheap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts items[i] toward the leaves, reporting whether it moved.
func (h *iheap) down(i int) bool {
	moved := false
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.items) {
			return moved
		}
		c := l
		if r < len(h.items) && h.items[r].less(h.items[l]) {
			c = r
		}
		if !h.items[c].less(h.items[i]) {
			return moved
		}
		h.swap(i, c)
		i = c
		moved = true
	}
}

func (h *iheap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].handle] = i
	h.pos[h.items[j].handle] = j
}
